#!/usr/bin/env python3
"""Flight recorder walkthrough: record → replay → divergence capsule.

Records a protected minx run (benign ab traffic followed by the
CVE-2013-2028 exploit), replays the trace to show the run is bit-for-bit
reproducible, and then replays the divergence *capsule* the alarm
snapshotted — re-raising the same alarm at the same guest PC from a
self-contained artifact.

Run:  python examples/record_replay_capsule.py
"""

import tempfile

from repro.attacks import run_exploit
from repro.trace import DivergenceCapsule, Trace, record_minx, replay_trace
from repro.workloads import ApacheBench


def main():
    print("1) record: protected minx, 3 requests, then the exploit")
    kernel, server, recorder = record_minx(
        protect="minx_http_process_request_line", smvx=True)
    result = ApacheBench(kernel, server).run(3)
    print(f"   benign traffic: {result.status_counts}")
    outcome = run_exploit(server)
    print(f"   attack detected and blocked: "
          f"{outcome.attack_detected_and_blocked}")
    trace = recorder.finish()
    print(f"   recorded {len(trace.script)} stimulus ops, "
          f"{trace.meta['ring']['emitted']} events, "
          f"{len(recorder.capsules)} capsule(s)")
    print(f"   virtual cycles: {trace.footer['counter_total_ns']:,.0f}  "
          f"instructions: {trace.footer['instructions_retired']:,}")

    print("\n2) replay the trace file: must be bit-identical")
    with tempfile.NamedTemporaryFile("w", suffix=".json") as fh:
        trace.save(fh.name)
        replayed = replay_trace(Trace.load(fh.name))
    print(f"   {replayed.summary()}")

    print("\n3) inspect and replay the divergence capsule")
    capsule = recorder.capsules[0]
    report = capsule.report
    print(f"   alarm: {report['kind']} during libc {report['libc_name']!r} "
          f"on task {report['task_id']}")
    print(f"   guest pc at detection: {report['guest_pc']:#x}")
    tail = [f"{e['kind']}:{e.get('name', '')}" for e in capsule.window[-5:]]
    print(f"   last events before the alarm: {tail}")
    with tempfile.NamedTemporaryFile("w", suffix=".json") as fh:
        capsule.save(fh.name)
        verdict = DivergenceCapsule.load(fh.name).replay()
    print(f"   {verdict.summary()}")


if __name__ == "__main__":
    main()
