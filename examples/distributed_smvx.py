#!/usr/bin/env python3
"""Distributed sMVX — variants and monitors on another host.

The dMVX deployment of selective MVX, end to end:

1. build a two-host cluster: leader minx on host 0, mirror variant +
   monitor on host 1, joined by 0.1 ms links; serve benign traffic —
   region events batch over the wire, the leader never blocks;
2. fire CVE-2013-2028 at the distributed deployment: the ``mkdir``
   sensitive-call sync point blocks for the remote verdict, the remote
   follower has already died on the leader-space ROP chain, and the
   alarm comes back with the *same guest PC* as in-process sMVX;
3. record the cluster (one trace per host), merge it causally by
   Lamport stamps, and show the merged order is bit-identical across
   runs.

Run:  python examples/distributed_smvx.py
"""

from repro.cluster.scenarios import (
    build_minx_cluster,
    compare_cve_alarms,
    replay_cluster,
)
from repro.workloads import ApacheBench


def banner(text):
    print(f"\n{'=' * 68}\n{text}\n{'=' * 68}")


def main():
    banner("1) benign traffic, leader on host 0, monitor on host 1")
    run = build_minx_cluster(seed="example-cluster")
    kernel = run.cluster.host(0).kernel
    result = ApacheBench(kernel, run.leader).run(6)
    run.dsmvx.settle()
    monitor = run.dsmvx.monitor
    out_link = run.cluster.link(0, 1)
    print(f"requests completed: {result.requests_completed}/6  "
          f"statuses: {result.status_counts}  alarms: "
          f"{len(run.leader.alarms.alarms)}")
    print(f"regions shipped: {monitor.stats.regions_entered}  "
          f"calls replayed remotely: "
          f"{run.dsmvx.runners[0].events_played}")
    print(f"wire frames leader->mirror: {out_link.frames_sent}  "
          f"({out_link.bytes_sent} bytes)")
    print(f"leader busy/request: "
          f"{result.busy_per_request_ns / 1000:.1f} us "
          f"(in-process sMVX pays ~3.7x vanilla; distributed ~1.07x)")

    banner("2) CVE-2013-2028 with the monitor a network hop away")
    comparison = compare_cve_alarms(seed="example-cve")
    pc = comparison["fields"]["guest_pc"]
    print(f"in-process blocked: {comparison['in_process_blocked']}  "
          f"distributed blocked: {comparison['distributed_blocked']}")
    print(f"alarm location identical: {comparison['match']}")
    print(f"guest pc  in-process:  {pc['in_process']:#x}")
    print(f"guest pc  distributed: {pc['distributed']:#x}")

    banner("3) per-host record, causal merge, bit-identical replay")
    outcome = replay_cluster(seed="example-replay", requests=3)
    for trace in outcome["traces"]:
        footer = trace.footer
        print(f"host {footer['host_id']}: {footer['wire_frames']} wire "
              f"frames, lamport_max={footer['lamport_max']}, "
              f"wire_digest={footer['wire_digest'][:16]}...")
    print(f"merged digest: {outcome['merged_digest'][:16]}...")
    print(f"cluster replay bit-identical: {outcome['ok']}")


if __name__ == "__main__":
    main()
