#!/usr/bin/env python3
"""Quickstart: protect a function with sMVX in ~40 lines.

Builds a tiny guest program with the three-line annotation of the paper's
Listing 1, runs it vanilla and under the sMVX monitor, and then shows the
monitor catching a layout-dependent divergence.

Run:  python examples/quickstart.py
"""

from repro.core import AlarmLog, attach_smvx, build_smvx_stub_image
from repro.errors import MvxDivergence
from repro.kernel import Kernel
from repro.libc import build_libc_image
from repro.loader import ImageBuilder
from repro.process import GuestProcess, to_signed


# --- the guest program ------------------------------------------------------

def greet(ctx, value):
    """The sensitive function we want replicated and checked."""
    buf = ctx.stack_alloc(32)
    ctx.write_cstring(buf, b"hello, smvx!")
    length = ctx.libc("strlen", buf)          # checked in lockstep
    return value * 2 + length


def evil_greet(ctx, value):
    """Behaves differently depending on where it is loaded — the
    signature of a memory-corruption payload."""
    if ctx.loaded.tag.startswith("variant:"):
        ctx.libc("getpid")                    # follower takes this path
    else:
        ctx.libc("time", 0)                   # leader takes this one
    return value


def main_program(ctx, value):
    # Listing 1: mvx_init();  mvx_start(...);  f(...);  mvx_end();
    ctx.libc("mvx_init")
    ctx.libc("mvx_start", ctx.symbol("greet_name"), 1, value)
    result = ctx.call("greet", value)
    ctx.libc("mvx_end")
    return result


def build_app():
    builder = ImageBuilder("quickstart")
    builder.import_libc("mvx_init", "mvx_start", "mvx_end",
                        "strlen", "getpid", "time")
    builder.add_hl_function("greet", greet, 1, calls=("strlen",))
    builder.add_hl_function("evil_greet", evil_greet, 1,
                            calls=("getpid", "time"))
    builder.add_hl_function("main_program", main_program, 1,
                            calls=("mvx_init", "mvx_start", "greet",
                                   "mvx_end"))
    builder.add_rodata("greet_name", b"greet\x00")
    return builder.build()


# --- host harness -------------------------------------------------------------

def make_process(protected: bool):
    kernel = Kernel()
    process = GuestProcess(kernel, "quickstart")
    process.load_image(build_libc_image(), tag="libc")
    process.load_image(build_smvx_stub_image(), tag="libsmvx")
    target = process.load_image(build_app(), main=True)
    alarms = AlarmLog()
    monitor = attach_smvx(process, target,
                          alarm_log=alarms) if protected else None
    return process, monitor, alarms


def main():
    print("1) vanilla run (mvx_* stubs are no-ops):")
    vanilla, _, _ = make_process(protected=False)
    print(f"   main_program(21) = {to_signed(vanilla.call_function('main_program', 21))}")

    print("\n2) same binary under the sMVX monitor:")
    protected, monitor, alarms = make_process(protected=True)
    result = to_signed(protected.call_function("main_program", 21))
    print(f"   main_program(21) = {result}")
    print(f"   regions entered:   {monitor.stats.regions_entered}")
    print(f"   lockstep'd calls:  leader={monitor.stats.leader_calls} "
          f"follower={monitor.stats.follower_calls}")
    print(f"   alarms:            {len(alarms.alarms)}")

    print("\n3) a layout-dependent function diverges and is caught:")
    process, monitor, alarms = make_process(protected=True)
    thread = process.main_thread()
    monitor.region_start(thread, "evil_greet", [7])
    try:
        process.guest_call(thread, process.resolve("evil_greet"), 7)
        monitor.region_end(thread)
        print("   (no divergence?!)")
    except MvxDivergence as alarm:
        print(f"   ALARM: {alarm.report}")
    print(f"   alarm log entries: {len(alarms.alarms)}")


if __name__ == "__main__":
    main()
