#!/usr/bin/env python3
"""Protecting a web server — the paper's headline scenario end to end.

1. serve normal traffic through minx (the Nginx 1.3.9 stand-in) under
   sMVX with the tainted root function protected;
2. fire the CVE-2013-2028 chunked-body exploit at a vanilla instance
   (the ROP chain runs: mkdir executes, the worker crashes);
3. fire the same exploit at the protected instance (the follower faults
   on leader-space gadget addresses; the monitor raises the alarm and
   mkdir never happens).

Run:  python examples/protect_web_server.py
"""

from repro.apps.minx import MinxServer
from repro.attacks import Cve20132028Exploit, run_exploit
from repro.attacks.cve_2013_2028 import VICTIM_DIRECTORY
from repro.kernel import Kernel
from repro.workloads import ApacheBench


def banner(text):
    print(f"\n{'=' * 68}\n{text}\n{'=' * 68}")


def main():
    banner("1) benign traffic under sMVX "
           "(protect=minx_http_process_request_line)")
    kernel = Kernel()
    protected = MinxServer(kernel, smvx=True,
                           protect="minx_http_process_request_line")
    protected.start()
    result = ApacheBench(kernel, protected).run(10)
    print(f"requests completed: {result.requests_completed}/10  "
          f"statuses: {result.status_counts}")
    print(f"server busy/request: {result.busy_per_request_ns / 1000:.1f} us")
    print(f"regions entered (one per request): "
          f"{protected.monitor.stats.regions_entered}")
    print(f"libc calls lockstep-checked: "
          f"{protected.monitor.stats.leader_calls}")
    print(f"alarms: {len(protected.alarms.alarms)}")

    banner("2) CVE-2013-2028 against VANILLA minx")
    kernel2 = Kernel()
    vanilla = MinxServer(kernel2)
    vanilla.start()
    exploit = Cve20132028Exploit(vanilla)
    head, body = exploit.build_payloads()
    print(f"payload: chunk size fffffffffffffff0 (-16 signed), "
          f"{len(body)} overflow bytes")
    print(f"ROP chain: {exploit.chain.description}")
    outcome = exploit.fire()
    print(f"mkdir('{VICTIM_DIRECTORY}') executed: "
          f"{outcome.directory_created}")
    print(f"worker crashed afterwards: {outcome.server_crashed}")
    print(f"detail: {outcome.detail}")

    banner("3) the same exploit against sMVX-protected minx")
    outcome = run_exploit(protected)
    print(f"mkdir executed: {outcome.directory_created}")
    print(f"divergence alarm: {outcome.divergence_detected}")
    print(f"alarm detail: {outcome.detail}")
    print(f"attack detected and blocked: "
          f"{outcome.attack_detected_and_blocked}")

    banner("4) the protected server keeps serving after the alarm")
    result = ApacheBench(kernel, protected).run(3)
    print(f"post-attack requests: {result.status_counts}")


if __name__ == "__main__":
    main()
