#!/usr/bin/env python3
"""The semi-automatic annotation workflow of paper §3.2.

1. run the application under the taint engine (libdft analogue) with the
   ab workload, marking network input as the taint source;
2. fuzz it (scout analogue) to widen coverage and watch the sensitive-
   function count grow (Figure 9);
3. map the tainted access sites to function symbols (the r2pipe step) and
   pick the outermost candidate from the call graph;
4. separately, discover authentication code by diffing the execution
   traces of a successful vs failed login;
5. protect the chosen root and verify the annotated run.

Run:  python examples/taint_guided_annotation.py
"""

from repro.analysis.callgraph import build_callgraph
from repro.apps.minx import MinxServer
from repro.kernel import Kernel
from repro.taint import TaintEngine, first_divergent_function
from repro.taint.authdiff import collect_trace
from repro.taint.report import build_report
from repro.workloads import ApacheBench, UrlFuzzer


def drive(kernel, server, raw):
    sock = kernel.network.connect(server.port)
    sock.send(raw)
    server.pump()
    while True:
        chunk = sock.recv_wait(8192)
        if isinstance(chunk, int) or chunk == b"":
            break
    sock.close()
    server.pump()


def main():
    kernel = Kernel()
    server = MinxServer(kernel)
    server.start()

    print("step 1: taint analysis under the ab workload")
    engine = TaintEngine(server.process).attach()
    ApacheBench(kernel, server).run(10)
    report = build_report(engine, server.loaded)
    print(f"  tainted bytes: {engine.tainted_count()}")
    print(f"  sensitive functions (ab): {report.count}")

    print("\nstep 2: scout-style fuzzing widens coverage")
    fuzzer = UrlFuzzer(seed=0x5EED)
    for bucket, count in (("1min", 10), ("5min", 30), ("30min", 80)):
        for method, path, body in fuzzer.batch(count):
            drive(kernel, server, fuzzer.request_bytes(method, path, body))
        report = build_report(engine, server.loaded)
        print(f"  after {bucket:>5} of fuzzing: {report.count} functions")
    engine.detach()

    print("\nstep 3: candidates -> outermost root via the call graph")
    print(report.dump_function_names())
    graph = build_callgraph(server.image)
    candidates = report.sensitive_functions
    outermost = [name for name in candidates
                 if not (graph.callers(name) & candidates)]
    root = "minx_http_process_request_line"
    print(f"  outermost tainted candidates: {sorted(outermost)}")
    print(f"  chosen protected root: {root}")
    print(f"  its subtree: {sorted(graph.subtree(root))}")

    print("\nstep 4: auth-code discovery by trace diffing")
    def login(secret):
        return lambda: drive(
            kernel, server,
            b"GET /admin HTTP/1.1\r\nHost: x\r\n"
            b"Authorization: " + secret + b"\r\n\r\n")
    good = collect_trace(server.process, login(b"secret123"))
    bad = collect_trace(server.process, login(b"nope"))
    print(f"  first divergent function: "
          f"{first_divergent_function(good, bad)}")

    print("\nstep 5: run with the chosen annotation")
    kernel2 = Kernel()
    protected = MinxServer(kernel2, smvx=True, protect=root)
    protected.start()
    result = ApacheBench(kernel2, protected).run(5)
    print(f"  protected run: {result.status_counts}, "
          f"alarms={len(protected.alarms.alarms)}")


if __name__ == "__main__":
    main()
