#!/usr/bin/env python3
"""Variant-creation strategies side by side (paper §4.1/§5).

Runs minx's per-request protected region three ways and fires the
CVE-2013-2028 exploit at each:

  1. shift           — the paper's prototype (pointer scan every region);
  2. shift + reuse   — §5's pre-scan/pre-update, implemented as parked
                       followers with dirty-page refresh;
  3. aligned         — §5's envisioned compiler-diversity strategy:
                       identical addresses, trap-diversified interiors,
                       zero pointer relocation.

Run:  python examples/variant_strategies.py
"""

from repro.apps.minx import MinxServer
from repro.attacks import run_exploit
from repro.kernel import Kernel
from repro.workloads import ApacheBench

ROOT = "minx_http_process_request_line"
REQUESTS = 12

CONFIGS = (
    ("shift (paper prototype)", {}),
    ("shift + dirty-page reuse", {"reuse_variants": True}),
    ("aligned interiors", {"variant_strategy": "aligned"}),
)


def main():
    kernel = Kernel()
    vanilla = MinxServer(kernel)
    vanilla.start()
    base = ApacheBench(kernel, vanilla).run(REQUESTS).busy_per_request_ns
    print(f"vanilla baseline: {base / 1000:.1f} us/request\n")

    print(f"{'strategy':32s} {'us/request':>11s} {'overhead':>9s} "
          f"{'ptrs relocated':>15s}  CVE-2013-2028")
    print("-" * 86)
    for label, config in CONFIGS:
        k = Kernel()
        server = MinxServer(k, smvx=True, protect=ROOT, **config)
        server.start()
        result = ApacheBench(k, server).run(REQUESTS)
        assert result.failures == 0 and not server.alarms.triggered
        busy = result.busy_per_request_ns
        pointers = server.monitor.last_variant_report \
            .relocation.total_pointers

        k2 = Kernel()
        victim = MinxServer(k2, smvx=True, protect=ROOT, **config)
        victim.start()
        outcome = run_exploit(victim)
        verdict = ("caught: " + outcome.detail[:40]
                   if outcome.divergence_detected else "MISSED")
        print(f"{label:32s} {busy / 1000:11.1f} "
              f"{(busy / base - 1) * 100:8.0f}% {pointers:15d}  {verdict}")

    print("\nAll three diversifications detect the exploit; they differ "
          "only in what mvx_start() costs.")


if __name__ == "__main__":
    main()
