#!/usr/bin/env python3
"""Resource comparison: sMVX vs whole-program MVX (paper §4.1).

Runs minx three ways — vanilla, under sMVX with the tainted root
protected, and under a ReMon-style whole-program monitor — then prints
the throughput overhead, CPU replication, and memory picture side by
side, plus the nbench Figure 6 series.

Run:  python examples/resource_comparison.py
"""

from repro.analysis.pmap import rss_kb
from repro.apps.minx import MinxServer
from repro.apps.nbench import NbenchHarness
from repro.kernel import Kernel
from repro.mvx import ReMonMvx, spawn_duplicate
from repro.workloads import ApacheBench

REQUESTS = 15


def run_minx(smvx=False, remon=False):
    kernel = Kernel()
    server = MinxServer(kernel, smvx=smvx,
                        protect="minx_http_process_request_line"
                        if smvx else None)
    baseline = ReMonMvx(server.process).attach() if remon else None
    server.start()
    result = ApacheBench(kernel, server).run(REQUESTS)
    assert result.failures == 0
    return kernel, server, baseline, result


def main():
    print("=== server throughput (busy time per request) ===")
    _, vanilla, _, r_vanilla = run_minx()
    _, smvx, _, r_smvx = run_minx(smvx=True)
    _, remon_srv, remon, r_remon = run_minx(remon=True)
    base = r_vanilla.busy_per_request_ns
    print(f"vanilla: {base / 1000:8.1f} us/request")
    print(f"sMVX:    {r_smvx.busy_per_request_ns / 1000:8.1f} us/request "
          f"({(r_smvx.busy_per_request_ns / base - 1) * 100:.0f}% overhead; "
          f"paper: 266%)")
    print(f"ReMon:   {r_remon.busy_per_request_ns / 1000:8.1f} us/request "
          f"({(r_remon.busy_per_request_ns / base - 1) * 100:.0f}% overhead)")

    print("\n=== CPU replication ===")
    follower = smvx.process._retired_follower_ns
    leader = smvx.process.counter.total_ns
    print(f"sMVX follower executed {follower / leader * 100:.0f}% of the "
          f"leader's cycles (paper: ~60%; whole-program MVX: 100%)")
    print(f"ReMon follower mirrors {remon.follower_counter.total_ns /remon_srv.process.counter.total_ns * 100:.0f}% "
          f"of its leader")

    print("\n=== memory (RSS) ===")
    smvx_rss = rss_kb(smvx.process)
    kernel = Kernel()
    copy_a = spawn_duplicate(MinxServer, kernel, port=8080, name="a")
    copy_a.start()
    copy_b = spawn_duplicate(MinxServer, kernel, port=9080, name="b")
    copy_b.start()
    traditional = rss_kb(copy_a.process) + rss_kb(copy_b.process)
    print(f"sMVX instance:        {smvx_rss:8.0f} KB")
    print(f"two vanilla copies:   {traditional:8.0f} KB")
    print(f"saving:               {(1 - smvx_rss / traditional) * 100:.0f}% "
          f"(paper: ~49%)")

    print("\n=== nbench (Figure 6) ===")
    harness = NbenchHarness(runs=1)
    total = 0.0
    for index in range(10):
        result = harness.run_workload(index)
        total += result.overhead
        print(f"{result.name:18s} {result.overhead * 100:6.2f}%")
    print(f"{'AVERAGE':18s} {total / 10 * 100:6.2f}%  (paper: ~7%)")


if __name__ == "__main__":
    main()
