"""Fault injection under the flight recorder: record/replay stays exact.

The rr principle under test: the trace stores the *perturbation source*
(the schedule spec), not individual faults; replay re-derives the
identical fault stream from (seed, schedule, query sequence).  Same seed
plus same schedule must therefore give a bit-identical trace — including
the footer's fault count, per-kind breakdown, and fault digest.
"""

import pytest

from repro.kernel.faults import FaultSchedule, battery
from repro.trace import EventKind, record_minx, replay_trace
from repro.workloads import ApacheBench

PROTECT = "minx_http_process_request_line"
BATTERY = battery()
SHORT_READS = next(s for s in BATTERY if s.name == "short-reads")


def _record(seed="smvx-repro", schedule=SHORT_READS, requests=3):
    kernel, server, recorder = record_minx(
        seed=seed, fault_schedule=schedule, protect=PROTECT, smvx=True)
    result = ApacheBench(kernel, server, max_stalls=64).run(requests)
    assert result.requests_completed == requests
    assert not server.alarms.triggered
    return kernel, recorder.finish()


@pytest.fixture(scope="module")
def recorded():
    kernel, trace = _record()
    return kernel, trace


def test_footer_pins_the_fault_stream(recorded):
    kernel, trace = recorded
    footer = trace.footer
    assert footer["faults"] == kernel.faults.injected_total > 0
    assert footer["faults_by_kind"].get("short_read", 0) > 0
    assert footer["fault_digest"] == kernel.faults.digest
    # the scenario embeds the schedule spec, not the individual faults
    assert trace.meta["scenario"]["faults"] == SHORT_READS.to_dict()


def test_fault_events_land_in_the_ring(recorded):
    _, trace = recorded
    faults = [e for e in trace.events
              if e["kind"] == EventKind.FAULT.value]
    assert faults
    assert all(e["name"].startswith("short_read:") for e in faults)
    assert all(e["data"]["granted"] < e["data"]["asked"] for e in faults)


def test_same_seed_same_schedule_is_bit_identical(recorded):
    _, first = recorded
    _, second = _record()
    assert second.footer == first.footer        # every scalar, incl. faults
    assert second.to_dict() == first.to_dict()  # the whole trace, bit-for-bit


def test_different_seed_different_fault_stream(recorded):
    _, first = recorded
    _, other = _record(seed="another-world")
    assert other.footer["fault_digest"] != first.footer["fault_digest"]


def test_replay_reproduces_the_fault_stream(recorded):
    _, trace = recorded
    result = replay_trace(trace)
    assert result.ok, result.summary()
    assert result.replayed_footer["faults"] == trace.footer["faults"]
    assert result.replayed_footer["fault_digest"] == \
        trace.footer["fault_digest"]


def test_tampered_fault_digest_is_detected(recorded):
    _, trace = recorded
    from repro.trace import Trace
    raw = trace.to_dict()
    raw["footer"]["fault_digest"] = "0" * 64
    result = replay_trace(Trace.from_dict(raw))
    assert not result.ok
    assert any("fault_digest" in m for m in result.mismatches)


@pytest.mark.parametrize("schedule", BATTERY, ids=[s.name for s in BATTERY])
def test_every_battery_schedule_replays_exactly(schedule):
    _, trace = _record(schedule=schedule, requests=2)
    result = replay_trace(trace)
    assert result.ok, result.summary()


def test_unfaulted_recording_has_empty_fault_footer():
    kernel, server, recorder = record_minx(protect=PROTECT, smvx=True)
    ApacheBench(kernel, server).run(2)
    trace = recorder.finish()
    assert trace.footer["faults"] == 0
    assert "faults" not in trace.meta["scenario"]
    assert replay_trace(trace).ok
