"""End-to-end tests of ``python -m repro.trace.cli`` (driven in-process)."""

import json

import pytest

from repro.trace.cli import main


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """One recorded attack run shared by the read-only subcommand tests."""
    root = tmp_path_factory.mktemp("cli")
    trace = str(root / "trace.json")
    capsule = str(root / "capsule.json")
    rc = main(["record", trace, "--requests", "2", "--attack",
               "--capsule", capsule])
    assert rc == 0
    return trace, capsule


def test_record_writes_trace_and_capsule(artifacts, capsys):
    trace, capsule = artifacts
    with open(trace) as fh:
        raw = json.load(fh)
    assert raw["version"] == 1
    assert raw["footer"]["alarms"]
    with open(capsule) as fh:
        assert json.load(fh)["report"]["kind"] == "FOLLOWER_FAULT"


def test_info_summarizes(artifacts, capsys):
    trace, _ = artifacts
    assert main(["info", trace]) == 0
    out = capsys.readouterr().out
    assert "trace version 1" in out
    assert "FOLLOWER_FAULT" in out
    assert "counter_total_ns" in out


def test_info_json_summary(artifacts, capsys):
    """--json prints a machine-readable summary with the footer pins
    (fault_digest, sched_digest, wire/lamport) and per-kind counts."""
    trace, _ = artifacts
    assert main(["info", trace, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    footer = doc["footer"]
    for key in ("fault_digest", "sched_digest", "syscall_digest",
                "clock_digest", "wire_digest", "host_id",
                "wire_frames", "lamport_max"):
        assert key in footer
    assert len(footer["fault_digest"]) == 64      # hex sha256
    assert doc["event_counts"]["libc"] > 0
    assert doc["event_counts"]["alarm"] == 1
    assert doc["alarms"][0]["kind"] == "FOLLOWER_FAULT"
    assert doc["scenario"]["seed"] == "smvx-repro"
    # single-host recording: no wire traffic, but the pins are present
    assert footer["wire_frames"] == 0
    assert footer["host_id"] == 0


def test_events_filters_by_kind(artifacts, capsys):
    trace, _ = artifacts
    assert main(["events", trace, "--kind", "alarm"]) == 0
    out = capsys.readouterr().out
    assert "(1 events)" in out
    assert "FOLLOWER_FAULT" in out
    assert main(["events", trace, "--kind", "libc", "--limit", "5"]) == 0
    assert "(5 events)" in capsys.readouterr().out


def test_export_chrome_trace(artifacts, tmp_path, capsys):
    trace, _ = artifacts
    out_path = str(tmp_path / "chrome.json")
    assert main(["export", trace, out_path]) == 0
    with open(out_path) as fh:
        doc = json.load(fh)
    rows = [r for r in doc["traceEvents"] if r["ph"] == "i"]
    assert rows and all("ts" in r and "name" in r for r in rows)
    names = {r["name"] for r in doc["traceEvents"] if r["ph"] == "M"}
    assert "thread_name" in names


def test_replay_exits_zero_on_identical(artifacts, capsys):
    trace, _ = artifacts
    assert main(["replay", trace]) == 0
    assert "replay OK" in capsys.readouterr().out


def test_replay_exits_nonzero_on_tamper(artifacts, tmp_path, capsys):
    trace, _ = artifacts
    with open(trace) as fh:
        raw = json.load(fh)
    raw["footer"]["libc_calls_total"] += 1
    bad = str(tmp_path / "bad.json")
    with open(bad, "w") as fh:
        json.dump(raw, fh)
    assert main(["replay", bad]) == 1
    assert "DIVERGED" in capsys.readouterr().out


def test_capsule_info_and_replay(artifacts, capsys):
    _, capsule = artifacts
    assert main(["capsule-info", capsule]) == 0
    out = capsys.readouterr().out
    assert "FOLLOWER_FAULT" in out and "window" in out
    assert main(["capsule-replay", capsule]) == 0
    assert "reproduced" in capsys.readouterr().out


def test_record_vanilla_smoke(tmp_path, capsys):
    """Unprotected server: the same CLI records, no capsule appears."""
    trace = str(tmp_path / "v.json")
    assert main(["record", trace, "--vanilla", "--requests", "1",
                 "--capsule", str(tmp_path / "c.json")]) == 0
    out = capsys.readouterr().out
    assert "no capsule captured" in out
    assert main(["replay", trace]) == 0


def test_replay_rejects_cluster_host_trace_cleanly(tmp_path, capsys):
    """A per-host cluster trace cannot be replayed single-host; the CLI
    must fail with a pointer to `python -m repro.cluster replay`, not a
    traceback."""
    from repro.cluster.scenarios import run_distributed_ab

    session = run_distributed_ab(requests=1, record=True)
    path = str(tmp_path / "host0.json")
    session["traces"][0].save(path)
    assert main(["replay", path]) == 1
    err = capsys.readouterr().err
    assert "cannot replay" in err
    assert "repro.cluster replay" in err
