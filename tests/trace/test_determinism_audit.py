"""The determinism audit (ISSUE satellite): two identically-seeded runs
of the full stack — kernel, protected minx, ab traffic, the exploit —
must agree on every observable total, because all nondeterminism enters
through the seeded kernel boundary."""

from repro.apps.minx import MinxServer
from repro.attacks import run_exploit
from repro.kernel import Kernel
from repro.kernel.vfs import DEFAULT_URANDOM_SEED
from repro.workloads import ApacheBench

PROTECT = "minx_http_process_request_line"


def _run(seed):
    """One full protected run; returns every observable end state."""
    kernel = Kernel(seed=seed)
    server = MinxServer(kernel, protect=PROTECT, smvx=True)
    server.start()
    ab = ApacheBench(kernel, server).run(3)
    outcome = run_exploit(server)
    return {
        "status_counts": ab.status_counts,
        "counter_total_ns": server.process.counter.total_ns,
        "total_cpu_ns": server.process.total_cpu_ns(),
        "instructions_retired": server.process.cpu.instructions_retired,
        "libc_call_counts": dict(server.process.libc_call_counts),
        "clock_end_ns": kernel.clock.monotonic_ns,
        "detected": outcome.divergence_detected,
        "alarms": [(r.kind.name, r.seq, r.libc_name, r.task_id, r.guest_pc)
                   for r in server.alarms.alarms],
    }


def test_identically_seeded_runs_are_identical():
    first = _run("audit-seed")
    second = _run("audit-seed")
    assert first == second
    assert first["detected"]
    assert first["alarms"][0][0] == "FOLLOWER_FAULT"


def test_seed_plumbs_from_kernel_to_urandom():
    kernel = Kernel(seed="my-seed")
    assert kernel.seed == "my-seed"
    assert kernel.vfs.urandom.seed == b"my-seed"
    assert Kernel().seed == DEFAULT_URANDOM_SEED


def test_different_seeds_differ_only_in_urandom():
    """The seed feeds /dev/urandom; two seeds give two streams, while the
    (urandom-free) minx run itself stays identical — nondeterminism is
    confined to the audited boundary."""
    a, b = Kernel(seed="one"), Kernel(seed="two")
    assert a.vfs.urandom.read(32) != b.vfs.urandom.read(32)
    first = _run("one")
    second = _run("two")
    assert first == second


def test_urandom_stream_is_reproducible_per_seed():
    a, b = Kernel(seed="same"), Kernel(seed="same")
    first = a.vfs.urandom.read(64)
    assert first == b.vfs.urandom.read(64)
    assert a.vfs.urandom.read(64) != first     # the stream is stateful
    assert a.vfs.urandom.bytes_served == 128
