"""Record/replay round-trips: a recorded run must replay bit-for-bit.

The headline property (ISSUE acceptance): recording a protected-minx ab
run and replaying the trace reproduces identical virtual-cycle totals,
libc call counts, and HTTP responses.  Tampered traces must be *detected*
as divergent, not silently accepted.
"""

import pytest

from repro.kernel import Kernel
from repro.trace import EventKind, Trace, record_minx, replay_trace
from repro.trace.replay import ReplayUrandom
from repro.workloads import ApacheBench

PROTECT = "minx_http_process_request_line"


@pytest.fixture(scope="module")
def recorded():
    """One protected-minx ab run, recorded (shared: recording is cheap,
    the guest run is not)."""
    kernel, server, recorder = record_minx(protect=PROTECT, smvx=True)
    result = ApacheBench(kernel, server).run(3)
    assert result.status_counts == {200: 3}
    trace = recorder.finish()
    return trace


def test_recorded_trace_shape(recorded):
    assert recorded.version == 1
    assert recorded.meta["scenario"] == {
        "app": "minx", "seed": "smvx-repro",
        "kwargs": {"protect": PROTECT, "smvx": True}}
    ops = [op["op"] for op in recorded.script]
    assert ops[0] == "start"
    assert "connect" in ops and "send" in ops and "recv" in ops
    # the run's ground truth landed in the footer
    footer = recorded.footer
    assert footer["counter_total_ns"] > 0
    assert footer["instructions_retired"] > 0
    assert footer["libc_calls_total"] > 0
    assert footer["libc_call_counts"]["recv"] >= 3
    assert footer["alarms"] == []
    # every recv of response bytes carries a digest replay must match
    recvs = [op for op in recorded.script
             if op["op"] == "recv" and "sha" in op]
    assert len(recvs) >= 3


def test_recorded_events_cover_the_stack(recorded):
    kinds = {e["kind"] for e in recorded.events}
    assert EventKind.SYSCALL.value in kinds
    assert EventKind.LIBC.value in kinds
    assert EventKind.RENDEZVOUS.value in kinds      # sMVX lockstep
    assert EventKind.NET_INGRESS.value in kinds
    assert EventKind.NET_ACCEPT.value in kinds
    assert EventKind.STIMULUS.value in kinds


def test_replay_is_bit_identical(recorded):
    result = replay_trace(recorded)
    assert result.ok, result.summary()
    assert result.mismatches == []
    # the acceptance criteria, spelled out
    assert result.replayed_footer["counter_total_ns"] == \
        recorded.footer["counter_total_ns"]
    assert result.replayed_footer["libc_call_counts"] == \
        recorded.footer["libc_call_counts"]
    recorded_shas = [op["sha"] for op in recorded.script
                     if op["op"] == "recv" and "sha" in op]
    replayed_shas = [op["sha"] for op in result.trace.script
                     if op["op"] == "recv" and "sha" in op]
    assert recorded_shas == replayed_shas       # identical HTTP responses
    assert "replay OK" in result.summary()


def test_serialization_roundtrip_replays(recorded, tmp_path):
    path = str(tmp_path / "trace.json")
    recorded.save(path)
    loaded = Trace.load(path)
    assert loaded.to_dict() == recorded.to_dict()
    assert replay_trace(loaded).ok


def test_unsupported_trace_version_rejected(recorded):
    raw = recorded.to_dict()
    raw["version"] = 99
    with pytest.raises(ValueError, match="version"):
        Trace.from_dict(raw)


def test_tampered_footer_is_detected(recorded):
    raw = recorded.to_dict()
    raw["footer"]["instructions_retired"] += 1
    result = replay_trace(Trace.from_dict(raw))
    assert not result.ok
    assert any("instructions_retired" in m for m in result.mismatches)
    assert "DIVERGED" in result.summary()


def test_tampered_request_changes_the_response(recorded):
    """Flipping a byte of a recorded request makes the replayed response
    digest disagree with the recorded one — replay notices."""
    raw = recorded.to_dict()
    send = next(op for op in raw["script"] if op["op"] == "send")
    data = bytearray(bytes.fromhex(send["data"]))
    data[4] ^= 0x01                      # GET /index.html -> another path
    send["data"] = bytes(data).hex()
    result = replay_trace(Trace.from_dict(raw))
    assert not result.ok
    assert any("sha" in m or "footer" in m for m in result.mismatches)


def test_detach_stops_recording():
    kernel, server, recorder = record_minx()
    before = list(recorder.script)
    emitted = recorder.ring.emitted
    recorder.detach()
    assert kernel.vfs.urandom.tap is None
    assert kernel.clock.read_hook is None
    assert kernel.tasks.spawn_hook is None
    assert kernel.network.ingress_hook is None
    assert recorder._on_syscall not in kernel.syscall_result_hooks
    # the server keeps serving; nothing further is recorded
    result = ApacheBench(kernel, server).run(1)
    assert result.status_counts == {200: 1}
    assert recorder.script == before
    assert recorder.ring.emitted == emitted


def test_mark_annotations_land_in_the_ring():
    kernel, server, recorder = record_minx()
    recorder.mark("phase", step="warmup")
    marks = recorder.ring.events(EventKind.MARK)
    assert marks and marks[-1].name == "phase"
    assert marks[-1].data == {"step": "warmup"}


# -- recorded urandom stream --------------------------------------------------

class _Stream:
    def __init__(self):
        self.seed = b"s"
        self.tap = None
        self.reads = []

    def read(self, count):
        self.reads.append(count)
        return b"\xAA" * count


def test_replay_urandom_serves_recorded_chunks_in_order():
    fallback = _Stream()
    seen = []
    stream = ReplayUrandom([b"abc", b"defg"], fallback)
    stream.tap = seen.append
    assert stream.read(3) == b"abc"
    assert stream.read(4) == b"defg"
    assert stream.unconsumed == 0
    assert stream.fallback_reads == 0
    assert fallback.reads == []
    assert seen == [b"abc", b"defg"]
    assert stream.bytes_served == 7


def test_replay_urandom_falls_back_on_desync():
    fallback = _Stream()
    stream = ReplayUrandom([b"abc"], fallback)
    assert stream.read(5) == b"\xAA" * 5     # size mismatch -> fallback
    assert stream.fallback_reads == 1
    assert stream.unconsumed == 1            # recorded chunk still queued
    assert fallback.reads == [5]


def test_guest_urandom_reads_are_recorded():
    """A guest-side read of /dev/urandom flows through the recorder tap."""
    from repro.trace import Recorder
    kernel = Kernel(seed="tap-me")
    recorder = Recorder(kernel)
    chunk = kernel.vfs.urandom.read(16)
    assert recorder.urandom_chunks == [chunk]
    events = recorder.ring.events(EventKind.URANDOM)
    assert len(events) == 1 and events[0].data["nbytes"] == 16
