"""Divergence capsules: the CVE-2013-2028 alarm becomes a replayable
artifact that re-raises the same alarm at the same guest PC."""

import pytest

from repro.attacks import run_exploit
from repro.trace import DivergenceCapsule, EventKind, record_minx
from repro.trace.capsule import CAPSULE_VERSION
from repro.workloads import ApacheBench

PROTECT = "minx_http_process_request_line"


@pytest.fixture(scope="module")
def capture():
    """Record benign traffic + the exploit against protected minx."""
    kernel, server, recorder = record_minx(protect=PROTECT, smvx=True)
    ApacheBench(kernel, server).run(2)
    outcome = run_exploit(server)
    recorder.finish()
    return server, recorder, outcome


def test_exploit_is_detected_and_capsule_captured(capture):
    server, recorder, outcome = capture
    assert outcome.attack_detected_and_blocked
    assert len(recorder.capsules) == 1


def test_capsule_embeds_the_alarm_report(capture):
    server, recorder, _ = capture
    capsule = recorder.capsules[0]
    report = server.alarms.alarms[0]
    assert capsule.report["kind"] == report.kind.name
    assert capsule.report["libc_name"] == report.libc_name
    assert capsule.report["task_id"] == report.task_id > 0
    assert capsule.report["guest_pc"] == report.guest_pc > 0
    # the window is the ring tail leading up to the alarm, alarm included
    kinds = [e["kind"] for e in capsule.window]
    assert EventKind.ALARM.value in kinds
    assert EventKind.RENDEZVOUS.value in kinds
    # the embedded trace's script reaches through the trigger: the last
    # ops are the exploit's sends and the pump that raised
    ops = [op["op"] for op in capsule.trace["script"]]
    assert ops[-1] == "pump"
    last_pump = capsule.trace["script"][-1]
    assert last_pump.get("error") in (None, "MvxDivergence")


def test_capsule_replay_reraises_same_alarm_at_same_pc(capture):
    _, recorder, _ = capture
    result = recorder.capsules[0].replay()
    assert result.reproduced, result.summary()
    assert result.replay_ok, result.summary()
    assert result.matched_alarm["guest_pc"] == \
        recorder.capsules[0].report["guest_pc"]
    assert "reproduced" in result.summary()


def test_capsule_serialization_roundtrip(capture, tmp_path):
    _, recorder, _ = capture
    capsule = recorder.capsules[0]
    path = str(tmp_path / "capsule.json")
    capsule.save(path)
    loaded = DivergenceCapsule.load(path)
    assert loaded.to_dict() == capsule.to_dict()
    assert loaded.replay().reproduced


def test_capsule_version_check():
    with pytest.raises(ValueError, match="version"):
        DivergenceCapsule.from_dict({"version": CAPSULE_VERSION + 1})


def test_tampered_capsule_does_not_reproduce(capture):
    """Neutering the exploit body in the embedded trace must make the
    capsule stop reproducing (and say so instead of crashing)."""
    _, recorder, _ = capture
    raw = recorder.capsules[0].to_dict()
    sends = [op for op in raw["trace"]["script"] if op["op"] == "send"]
    evil = max(sends, key=lambda op: len(op["data"]))   # the overflow body
    evil["data"] = "00" * (len(evil["data"]) // 2)      # zeroed payload
    result = DivergenceCapsule.from_dict(raw).replay()
    assert not result.reproduced
    assert result.mismatches
