"""Unit tests for trace events, the ring recorder, and metrics."""

import pytest

from repro.trace.events import (
    EventKind,
    MetricsRegistry,
    RingRecorder,
    TraceEvent,
)


# -- events -------------------------------------------------------------------

def test_event_dict_roundtrip():
    event = TraceEvent(7, EventKind.LIBC, 1234.0, "write",
                       {"task": 1, "variant": "leader"})
    raw = event.to_dict()
    assert raw == {"seq": 7, "kind": "libc", "t_ns": 1234.0,
                   "name": "write", "data": {"task": 1, "variant": "leader"}}
    assert TraceEvent.from_dict(raw) == event


def test_event_dict_omits_empty_fields():
    raw = TraceEvent(1, EventKind.MARK, 0.0).to_dict()
    assert "name" not in raw and "data" not in raw
    assert TraceEvent.from_dict(raw) == TraceEvent(1, EventKind.MARK, 0.0)


def test_every_kind_has_a_stable_wire_name():
    wire_names = {kind.value for kind in EventKind}
    assert len(wire_names) == len(EventKind)
    for kind in EventKind:
        assert EventKind(kind.value) is kind


# -- metrics ------------------------------------------------------------------

def test_metrics_registry_counts():
    metrics = MetricsRegistry()
    metrics.inc("a")
    metrics.inc("a", 4)
    metrics.inc("b")
    assert metrics.get("a") == 5
    assert metrics.get("missing") == 0
    assert metrics.as_dict() == {"a": 5, "b": 1}
    metrics.clear()
    assert metrics.as_dict() == {}


# -- ring recorder ------------------------------------------------------------

def test_ring_emit_assigns_monotonic_seq_and_counts():
    ring = RingRecorder(capacity=16)
    first = ring.emit(EventKind.SYSCALL, 10.0, "read", ret=5)
    second = ring.emit(EventKind.LIBC, 11.0, "write")
    assert (first.seq, second.seq) == (1, 2)
    assert ring.emitted == 2 and ring.dropped == 0
    assert ring.count(EventKind.SYSCALL) == 1
    assert ring.counts_by_kind() == {"syscall": 1, "libc": 1}
    assert ring.events(EventKind.LIBC) == [second]


def test_ring_is_bounded_and_counts_drops():
    ring = RingRecorder(capacity=4)
    for i in range(10):
        ring.emit(EventKind.MARK, float(i), f"m{i}")
    events = ring.events()
    assert len(events) == 4
    assert [e.name for e in events] == ["m6", "m7", "m8", "m9"]
    assert ring.emitted == 10 and ring.dropped == 6
    # counters still see everything that was emitted
    assert ring.count(EventKind.MARK) == 10


def test_ring_tail_window():
    ring = RingRecorder(capacity=8)
    for i in range(5):
        ring.emit(EventKind.MARK, float(i), f"m{i}")
    assert [e.name for e in ring.tail(2)] == ["m3", "m4"]
    assert len(ring.tail(100)) == 5
    assert ring.tail(0) == []


def test_disabled_ring_records_nothing():
    ring = RingRecorder(capacity=8)
    ring.enabled = False
    assert ring.emit(EventKind.MARK, 0.0, "x") is None
    assert ring.events() == []
    assert ring.emitted == 0
    assert ring.metrics.as_dict() == {}


def test_ring_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        RingRecorder(capacity=0)


def test_ring_clear_keeps_seq_monotonic():
    ring = RingRecorder(capacity=8)
    ring.emit(EventKind.MARK, 0.0)
    ring.clear()
    event = ring.emit(EventKind.MARK, 1.0)
    assert event.seq == 2          # seq never restarts within a recording
    assert len(ring.events()) == 1
