"""Record/replay of supervised runs: the control plane is part of the
deterministic envelope.

The supervisor, its restarts, a graceful reload, and the chaos kill
schedule are all re-armed from the trace scenario; replay must rebuild
the identical scheduler stream, and the supervisor's own history
(restart counts, reload generation, final served totals) is pinned in
the footer and compared bit-for-bit.
"""

import json

import pytest

from repro.trace import EventKind, Trace, record_littled, replay_trace

CONTROL = {
    "restart_budget": 2,
    "reload_at_ns": 6_000_000,
    "worker_kills": [{"slot": 1, "at_ns": 2_000_000}],
}
WORKLOAD = {"requests": 30, "concurrency": 6,
            "timeout_ns": 2_000_000_000}


@pytest.fixture(scope="module")
def recorded():
    kernel, server, recorder = record_littled(
        seed="ctl-rr", workload=WORKLOAD, control=dict(CONTROL),
        workers=2, smvx=True, protect="server_main_loop")
    trace = recorder.finish()
    served = server.served
    server.shutdown()
    return trace, served


def test_supervised_run_serves_everything(recorded):
    trace, served = recorded
    assert served == 30                        # kill + reload dropped none


def test_footer_pins_control_plane_history(recorded):
    trace, _ = recorded
    pin = trace.footer["supervisor"]
    assert pin["restarts_total"] == 1
    assert pin["restart_counts"] == {"1": 1}
    assert pin["reloads"] == 1
    assert pin["generation"] == 1
    kinds = [e["event"] for e in pin["events"]]
    assert "restart" in kinds and "reload" in kinds
    assert pin["served_total"] == 30           # retired counts included


def test_metric_events_land_in_the_ring(recorded):
    trace, _ = recorded
    metrics = [e for e in trace.events
               if e["kind"] == EventKind.METRIC.value]
    assert metrics                             # the supervisor sampled
    last = metrics[-1]["data"]
    assert last["restarts_total"] == 1
    assert {w["slot"] for w in last["workers"]} == {0, 1}


def test_supervised_replay_is_bit_identical(recorded):
    trace, _ = recorded
    result = replay_trace(trace)
    assert result.ok, result.summary()
    assert result.replayed_footer["sched_digest"] == \
        trace.footer["sched_digest"]
    assert result.replayed_footer["supervisor"] == \
        trace.footer["supervisor"]


def test_tampered_supervisor_pin_is_detected(recorded):
    trace, _ = recorded
    raw = trace.to_dict()
    raw = json.loads(json.dumps(raw))          # deep copy
    raw["footer"]["supervisor"]["restarts_total"] = 99
    result = replay_trace(Trace.from_dict(raw))
    assert not result.ok
    assert any("supervisor" in m for m in result.mismatches)
