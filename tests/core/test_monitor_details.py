"""Detail-level monitor tests: stats, gates, multi-process, profile use."""

import pytest

from repro.core import AlarmLog, SmvxMonitor, attach_smvx, \
    build_smvx_stub_image
from repro.errors import MvxSetupError, ProtectionKeyFault
from repro.kernel import Kernel
from repro.libc import build_libc_image
from repro.loader import ImageBuilder
from repro.loader.profile_tool import write_profile
from repro.machine.memory import PROT_READ
from repro.process import GuestProcess, to_signed


def build_app():
    builder = ImageBuilder("detailapp")
    builder.import_libc("mvx_init", "mvx_start", "mvx_end", "getpid",
                        "time", "malloc", "free", "strlen")

    def worker(ctx, x):
        ptr = ctx.libc("malloc", 64)
        ctx.write_cstring(ptr, b"abc")
        n = ctx.libc("strlen", ptr)
        ctx.libc("free", ptr)
        ctx.libc("time", 0)
        return x + n

    def main(ctx, x):
        ctx.libc("mvx_init")
        ctx.libc("mvx_start", ctx.symbol("wname"), 1, x)
        result = ctx.call("worker", x)
        ctx.libc("mvx_end")
        return result
    builder.add_hl_function("worker", worker, 1,
                            calls=("malloc", "strlen", "free", "time"))
    builder.add_hl_function("main", main, 1,
                            calls=("mvx_init", "mvx_start", "worker",
                                   "mvx_end"))
    builder.add_rodata("wname", b"worker\x00")
    return builder.build()


def make(kernel=None, profile_path=None):
    kernel = kernel or Kernel()
    proc = GuestProcess(kernel, "detail")
    proc.load_image(build_libc_image(), tag="libc")
    proc.load_image(build_smvx_stub_image(), tag="libsmvx")
    target = proc.load_image(build_app(), main=True)
    alarms = AlarmLog()
    monitor = attach_smvx(proc, target, alarm_log=alarms,
                          profile_path=profile_path)
    return proc, monitor, alarms


def test_stats_accounting_consistency():
    proc, monitor, _ = make()
    proc.call_function("main", 5)
    stats = monitor.stats
    assert stats.intercepted_calls == (stats.passthrough_calls
                                       + stats.leader_calls
                                       + stats.follower_calls)
    assert stats.leader_calls == stats.follower_calls == 4
    assert stats.local_calls == 3          # malloc/strlen/free
    assert stats.emulated_calls == 1       # time
    assert stats.regions_entered == 1


def test_explicit_profile_path_used():
    kernel = Kernel()
    proc = GuestProcess(kernel, "detail")
    proc.load_image(build_libc_image(), tag="libc")
    proc.load_image(build_smvx_stub_image(), tag="libsmvx")
    target = proc.load_image(build_app(), main=True)
    path = write_profile(kernel.vfs, target.image, "/tmp/custom.profile")
    monitor = attach_smvx(proc, target, profile_path=path)
    assert monitor.profile.binary == "detailapp"
    assert "worker" in monitor.profile.function_names()


def test_missing_profile_rejected():
    kernel = Kernel()
    proc = GuestProcess(kernel, "detail")
    proc.load_image(build_libc_image(), tag="libc")
    proc.load_image(build_smvx_stub_image(), tag="libsmvx")
    target = proc.load_image(build_app(), main=True)
    with pytest.raises(Exception):
        attach_smvx(proc, target, profile_path="/tmp/missing.profile")


def test_two_protected_processes_one_kernel():
    """Each process gets its own pkey and monitor; they don't interfere."""
    kernel = Kernel()
    results = []
    monitors = []
    for name in ("alpha", "beta"):
        proc = GuestProcess(kernel, name)
        proc.load_image(build_libc_image(), tag="libc")
        proc.load_image(build_smvx_stub_image(), tag="libsmvx")
        target = proc.load_image(build_app(), main=True)
        monitor = attach_smvx(proc, target, alarm_log=AlarmLog())
        monitors.append(monitor)
        results.append(to_signed(proc.call_function("main", 10)))
    assert results == [13, 13]
    assert monitors[0].pkey == monitors[1].pkey  # per-process allocators
    assert monitors[0].monitor_image.base != monitors[1].monitor_image.base \
        or monitors[0].process is not monitors[1].process


def test_monitor_base_is_randomized_per_process():
    from repro.core.trampoline import randomized_monitor_base
    b1 = randomized_monitor_base("100:app")
    b2 = randomized_monitor_base("101:app")
    assert b1 != b2
    assert b1 % 16 == 0 and b2 % 16 == 0


def test_follower_thread_pkru_is_closed_in_region():
    proc, monitor, _ = make()
    thread = proc.main_thread()
    monitor.region_start(thread, "worker", [1])
    follower = monitor.region.variant.thread
    assert follower.state.pkru == monitor.memory.pkru_closed
    # the monitor's safe stacks are inaccessible to the follower too
    with pytest.raises(ProtectionKeyFault):
        follower.space.read(monitor.memory.safe_stack_area, 8,
                            pkru=follower.state.pkru)
    proc.guest_call(thread, proc.resolve("worker"), 1)
    monitor.region_end(thread)


def test_local_category_runs_on_both_heaps():
    """malloc in-region: leader allocates from its heap, follower from its
    shifted copy — the returned pointers differ by exactly the shift."""
    proc, monitor, _ = make()
    captured = {}

    def observer(thread, name):
        if name == "malloc":
            captured.setdefault(thread.variant, []).append(
                proc.heap_for(thread).base)
    proc.libc_call_observers.append(observer)
    proc.call_function("main", 5)
    assert "leader" in captured and "follower" in captured
    shift = monitor.last_variant_report.shift
    assert captured["follower"][0] - captured["leader"][0] == shift


def test_passthrough_errno_flows_to_caller():
    proc, monitor, _ = make()

    # a failing call outside any region still sets errno via the gate
    builder = ImageBuilder("errno-probe")
    builder.import_libc("open")

    def probe(ctx):
        path = ctx.stack_alloc(16)
        ctx.write_cstring(path, b"/nope")
        result = to_signed(ctx.libc("open", path, 0))
        assert result == -1
        return ctx.errno
    builder.add_hl_function("probe", probe, 0)
    proc.load_image(builder.build())
    # note: this image's GOT is NOT patched (loaded after setup), so the
    # call goes straight to libc — both paths must agree on errno
    from repro.kernel.errno_codes import Errno
    assert proc.call_function("probe") == Errno.ENOENT
