"""Fixtures for sMVX core tests: a small instrumented application.

The app mirrors the paper's Listing 1 / Figure 2 shape:

* ``main`` calls ``mvx_init``, wraps ``protected_func`` in
  ``mvx_start``/``mvx_end``;
* ``protected_func`` (the region root) calls ``helper`` through a
  function pointer stored in ``.data`` (exercising pointer relocation),
  reads a file (category-2 buffer emulation), asks the time (category-2),
  uses malloc/strlen (LOCAL category), and writes a log line (category-1).
* ``unprotected_func`` exists outside the region subtree.
"""

import pytest

from repro.core import AlarmLog, attach_smvx, build_smvx_stub_image
from repro.kernel import Kernel
from repro.kernel.vfs import O_RDONLY
from repro.libc import build_libc_image
from repro.loader import ImageBuilder
from repro.process import GuestProcess, to_signed


def _helper(ctx, x):
    ctx.charge(10)
    return (x * 2) & 0xFFFF_FFFF


def _protected_func(ctx, a, b):
    # call through the .data function pointer (must be relocated in the
    # follower or this jumps into the leader's image and diverges)
    fn_ptr = ctx.read_word(ctx.symbol("helper_ptr"))
    doubled = ctx.call(fn_ptr, a)

    # category-2: file read through emulated buffers
    path = ctx.stack_alloc(32)
    ctx.write_cstring(path, b"/etc/motd")
    fd = to_signed(ctx.libc("open", path, O_RDONLY))
    assert fd >= 0, "motd must open"
    buf = ctx.stack_alloc(64)
    n = to_signed(ctx.libc("read", fd, buf, 64))
    ctx.libc("close", fd)
    first = ctx.read_byte(buf) if n > 0 else 0

    # LOCAL: both variants run their own malloc/strlen
    scratch = ctx.libc("malloc", 48)
    ctx.write_cstring(scratch, b"region-scratch")
    length = ctx.libc("strlen", scratch)
    ctx.libc("free", scratch)

    # category-1: write to the shared log (leader-only execution)
    msg = ctx.stack_alloc(32)
    ctx.write_cstring(msg, b"protected ran\n")
    log_path = ctx.stack_alloc(32)
    ctx.write_cstring(log_path, b"/var/log/app.log")
    from repro.kernel.vfs import O_CREAT, O_WRONLY, O_APPEND
    log_fd = to_signed(ctx.libc("open", log_path,
                                O_WRONLY | O_CREAT | O_APPEND))
    ctx.libc("write", log_fd, msg, 14)
    ctx.libc("close", log_fd)

    return (doubled + b + first + length) & 0xFFFF_FFFF


def _unprotected_func(ctx, x):
    ctx.libc("getpid")
    return x + 1000


def _app_main(ctx, a, b):
    ctx.libc("mvx_init")
    before = ctx.call("unprotected_func", 1)
    name = ctx.symbol("pf_name")
    ctx.libc("mvx_start", name, 2, a, b)
    result = ctx.call("protected_func", a, b)
    ctx.libc("mvx_end")
    after = ctx.call("unprotected_func", 2)
    return (result + before + after) & 0xFFFF_FFFF


def build_test_app():
    builder = ImageBuilder("protapp")
    builder.import_libc(
        "mvx_init", "mvx_start", "mvx_end",
        "open", "read", "write", "close", "getpid", "time",
        "malloc", "free", "strlen", "localtime_r", "gettimeofday",
        "mkdir", "recv", "send",
    )
    builder.add_hl_function(
        "helper", _helper, 1, size=64)
    builder.add_hl_function(
        "protected_func", _protected_func, 2, size=256,
        calls=("helper", "open", "read", "close", "malloc", "strlen",
               "free", "write"))
    builder.add_hl_function(
        "unprotected_func", _unprotected_func, 1, size=128,
        calls=("getpid",))
    builder.add_hl_function(
        "main", _app_main, 2, size=128,
        calls=("mvx_init", "mvx_start", "mvx_end", "protected_func",
               "unprotected_func"))
    builder.add_rodata("pf_name", b"protected_func\x00")
    builder.add_data_pointer("helper_ptr", "helper")
    builder.add_data("app_config", b"\x2A" + b"\x00" * 63)
    builder.add_bss("app_state", 4096)
    return builder.build()


@pytest.fixture
def kernel():
    k = Kernel()
    k.vfs.write_file("/etc/motd", b"Welcome to the simulated machine\n")
    return k


@pytest.fixture
def vanilla(kernel):
    """The app without a monitor: mvx_* stubs are no-ops."""
    proc = GuestProcess(kernel, "vanilla")
    proc.load_image(build_libc_image(), tag="libc")
    proc.load_image(build_smvx_stub_image(), tag="libsmvx")
    proc.load_image(build_test_app(), main=True)
    return proc


@pytest.fixture
def protected(kernel):
    """The app with the sMVX monitor preloaded."""
    proc = GuestProcess(kernel, "protected")
    proc.load_image(build_libc_image(), tag="libc")
    proc.load_image(build_smvx_stub_image(), tag="libsmvx")
    target = proc.load_image(build_test_app(), main=True)
    alarms = AlarmLog()
    monitor = attach_smvx(proc, target, alarm_log=alarms)
    return proc, monitor, alarms
