"""Tests for variant reuse — the implemented §5 pre-scan/pre-update
optimization (repro.core.reuse)."""

import pytest

from repro.apps.minx import MinxServer
from repro.attacks import run_exploit
from repro.core.reuse import DirtyTracker
from repro.kernel import Kernel
from repro.machine import AddressSpace, PAGE_SIZE
from repro.workloads import ApacheBench


@pytest.fixture
def kernel():
    return Kernel()


def make_server(kernel, reuse):
    server = MinxServer(kernel, smvx=True,
                        protect="minx_http_process_request_line",
                        reuse_variants=reuse)
    server.start()
    return server


# -- the dirty tracker ----------------------------------------------------------

def test_dirty_tracker_records_written_pages():
    space = AddressSpace()
    base = space.mmap(None, 4 * PAGE_SIZE)
    tracker = DirtyTracker(space, [(base, base + 4 * PAGE_SIZE)]).attach()
    space.write(base + 10, b"x")
    space.write(base + PAGE_SIZE + 100, b"y" * 10)
    tracker.detach()
    assert tracker.dirty_pages == {base, base + PAGE_SIZE}


def test_dirty_tracker_ignores_out_of_range_and_reads():
    space = AddressSpace()
    base = space.mmap(None, 2 * PAGE_SIZE)
    other = space.mmap(None, PAGE_SIZE)
    tracker = DirtyTracker(space, [(base, base + 2 * PAGE_SIZE)]).attach()
    space.write(other, b"z")
    space.read(base, 16)
    tracker.detach()
    assert tracker.dirty_pages == set()


def test_dirty_tracker_spanning_write():
    space = AddressSpace()
    base = space.mmap(None, 4 * PAGE_SIZE)
    tracker = DirtyTracker(space, [(base, base + 4 * PAGE_SIZE)]).attach()
    space.write(base + PAGE_SIZE - 8, b"A" * 16)   # crosses a boundary
    tracker.detach()
    assert tracker.dirty_pages == {base, base + PAGE_SIZE}


# -- end-to-end reuse --------------------------------------------------------------

def test_reuse_serves_identically(kernel):
    fresh = make_server(kernel, reuse=False)
    reusing = make_server(Kernel(), reuse=True)
    r1 = ApacheBench(kernel, fresh).run(6)
    r2 = ApacheBench(reusing.kernel, reusing).run(6)
    assert r1.status_counts == r2.status_counts == {200: 6}
    assert not fresh.alarms.triggered
    assert not reusing.alarms.triggered
    # the cache kicked in: refreshes happened after the first region
    assert reusing.monitor.last_refresh_stats is not None


def test_reuse_is_cheaper_per_request(kernel):
    """The point of the optimization: per-request busy time drops because
    full duplication + full scans happen once, refreshes afterwards."""
    fresh = make_server(kernel, reuse=False)
    reusing = make_server(Kernel(), reuse=True)
    cost_fresh = ApacheBench(kernel, fresh).run(10).busy_per_request_ns
    cost_reuse = ApacheBench(reusing.kernel,
                             reusing).run(10).busy_per_request_ns
    assert cost_reuse < 0.75 * cost_fresh


def test_reuse_refresh_touches_only_dirty_pages(kernel):
    server = make_server(kernel, reuse=True)
    ApacheBench(kernel, server).run(4)
    refresh = server.monitor.last_refresh_stats
    # a keep-alive request dirties a handful of pages, not the image
    assert 0 < refresh.dirty_pages < 40
    total_pages = server.process.space.resident_bytes() // PAGE_SIZE
    assert refresh.dirty_pages < total_pages / 4


def test_reuse_still_detects_the_exploit(kernel):
    """Correctness under the optimization: the CVE is still caught —
    the refreshed follower is a faithful replica."""
    server = make_server(kernel, reuse=True)
    ApacheBench(kernel, server).run(3)        # warm the cache
    outcome = run_exploit(server)
    assert outcome.attack_detected_and_blocked
    assert not outcome.directory_created


def test_reuse_divergence_destroys_cache(kernel):
    server = make_server(kernel, reuse=True)
    ApacheBench(kernel, server).run(2)
    assert server.monitor._cached_variants
    run_exploit(server)                       # divergence
    # the active variant was destroyed, not parked
    assert server.monitor.region is None
    # the process still serves (a fresh variant is built next region)
    result = ApacheBench(kernel, server).run(2)
    assert result.status_counts == {200: 2}


def test_drop_variant_caches_frees_memory(kernel):
    server = make_server(kernel, reuse=True)
    ApacheBench(kernel, server).run(2)
    with_cache = server.process.space.resident_bytes()
    server.monitor.drop_variant_caches()
    assert server.process.space.resident_bytes() < with_cache
    assert not server.monitor._cached_variants
    # and serving still works after a cold restart of the cache
    result = ApacheBench(kernel, server).run(2)
    assert result.status_counts == {200: 2}


def test_littled_reuse_whole_loop(kernel):
    """littled's loop-rooted region also benefits from parking."""
    from repro.apps.littled import LittledServer
    fresh = LittledServer(kernel, smvx=True, protect="server_main_loop")
    fresh.start()
    reusing = LittledServer(Kernel(), smvx=True,
                            protect="server_main_loop",
                            reuse_variants=True, port=8085,
                            name="littled-reuse")
    reusing.start()
    cost_fresh = ApacheBench(kernel, fresh).run(8).busy_per_request_ns
    cost_reuse = ApacheBench(reusing.kernel,
                             reusing).run(8).busy_per_request_ns
    assert not reusing.alarms.triggered
    assert cost_reuse < 0.8 * cost_fresh
