"""Divergence detection: layout-dependent behaviour must trip the alarm.

Each scenario plants a guest function whose behaviour depends on the
variant's memory layout — the signature of a memory-corruption exploit —
and asserts the monitor detects it, reports the right kind, logs an
alarm, and tears the region down so the process stays usable.
"""

import pytest

from repro.core import AlarmLog, DivergenceKind, attach_smvx, \
    build_smvx_stub_image
from repro.errors import MvxDivergence
from repro.kernel import Kernel
from repro.libc import build_libc_image
from repro.loader import ImageBuilder
from repro.process import GuestProcess


def make_process(*hl_specs, data=(), rodata=()):
    kernel = Kernel()
    proc = GuestProcess(kernel, "div")
    proc.load_image(build_libc_image(), tag="libc")
    proc.load_image(build_smvx_stub_image(), tag="libsmvx")
    builder = ImageBuilder("divapp")
    builder.import_libc("mvx_init", "mvx_start", "mvx_end", "getpid",
                        "time", "write", "open", "close", "malloc", "free",
                        "strlen")
    for spec in hl_specs:
        builder.add_hl_function(*spec[:3], **(spec[3] if len(spec) > 3
                                              else {}))
    for name, content in data:
        builder.add_data(name, content)
    for name, content in rodata:
        builder.add_rodata(name, content)
    target = proc.load_image(builder.build(), main=True)
    alarms = AlarmLog()
    monitor = attach_smvx(proc, target, alarm_log=alarms)
    return proc, monitor, alarms


def run_protected(proc, monitor, func_name, *args):
    thread = proc.main_thread()
    monitor.region_start(thread, func_name, list(args))
    try:
        proc.guest_call(thread, proc.resolve(func_name), *args)
    finally:
        if monitor.region is not None:
            monitor.region_end(thread)


# -- report rendering ---------------------------------------------------------------

def test_report_str_renders_all_fields():
    from repro.core.divergence import DivergenceReport
    report = DivergenceReport(
        DivergenceKind.FOLLOWER_FAULT, seq=18, libc_name="mkdir",
        detail="fetch from unmapped address", task_id=2, guest_pc=0x55550002E000)
    text = str(report)
    assert text == ("follower variant faulted | call=mkdir | seq=18 | "
                    "task=2 | pc=0x55550002e000 | "
                    "fetch from unmapped address")


def test_report_str_omits_unknown_fields():
    from repro.core.divergence import DivergenceReport
    minimal = str(DivergenceReport(DivergenceKind.MONITOR))
    assert minimal == DivergenceKind.MONITOR.value
    assert "task=" not in minimal and "pc=" not in minimal and \
        "seq=" not in minimal


def test_alarm_log_notifies_listeners():
    from repro.core.divergence import DivergenceReport
    log = AlarmLog()
    heard = []
    log.listeners.append(heard.append)
    report = DivergenceReport(DivergenceKind.ARGUMENT, seq=3)
    log.raise_alarm(report)
    assert heard == [report]
    assert log.triggered


# -- call-sequence divergence -------------------------------------------------------

def test_layout_dependent_call_sequence_detected():
    def two_faced(ctx):
        # behaves differently depending on where it is loaded — the
        # layout-sensitivity an exploit payload exhibits
        if ctx.loaded.tag.startswith("variant:"):
            ctx.libc("getpid")
        else:
            ctx.libc("time", 0)
        return 0

    proc, monitor, alarms = make_process(
        ("two_faced", two_faced, 0, {"calls": ("getpid", "time")}))
    with pytest.raises(MvxDivergence) as info:
        run_protected(proc, monitor, "two_faced")
    assert info.value.report.kind is DivergenceKind.CALL_NAME
    assert alarms.triggered
    assert monitor.region is None          # torn down


def test_report_carries_task_and_pc_at_detection():
    """Reports record *where* the divergence was seen: the guest task and
    the program counter at detection time."""
    def two_faced(ctx):
        if ctx.loaded.tag.startswith("variant:"):
            ctx.libc("getpid")
        else:
            ctx.libc("time", 0)
        return 0

    proc, monitor, alarms = make_process(
        ("two_faced", two_faced, 0, {"calls": ("getpid", "time")}))
    with pytest.raises(MvxDivergence) as info:
        run_protected(proc, monitor, "two_faced")
    report = info.value.report
    assert report.task_id == proc.main_thread().tid
    assert report.guest_pc > 0
    assert f"task={report.task_id}" in str(report)
    assert f"pc={report.guest_pc:#x}" in str(report)


def test_scalar_argument_divergence_detected():
    def leaky(ctx):
        # leaks a layout-dependent scalar into a compared argument
        ctx.libc("close", (ctx.loaded.base >> 32) & 0xFFFF)
        return 0

    proc, monitor, alarms = make_process(
        ("leaky", leaky, 0, {"calls": ("close",)}))
    with pytest.raises(MvxDivergence) as info:
        run_protected(proc, monitor, "leaky")
    assert info.value.report.kind is DivergenceKind.ARGUMENT


def test_follower_extra_call_detected():
    def trailing(ctx):
        if ctx.loaded.tag.startswith("variant:"):
            ctx.libc("getpid")             # extra call only in follower
        return 0

    proc, monitor, alarms = make_process(
        ("trailing", trailing, 0, {"calls": ("getpid",)}))
    with pytest.raises(MvxDivergence) as info:
        run_protected(proc, monitor, "trailing")
    assert info.value.report.kind is DivergenceKind.CALL_COUNT
    assert alarms.triggered


def test_follower_missing_call_detected():
    def skipping(ctx):
        if not ctx.loaded.tag.startswith("variant:"):
            ctx.libc("getpid")             # leader calls; follower doesn't
        return 0

    proc, monitor, alarms = make_process(
        ("skipping", skipping, 0, {"calls": ("getpid",)}))
    with pytest.raises(MvxDivergence) as info:
        run_protected(proc, monitor, "skipping")
    assert info.value.report.kind is DivergenceKind.CALL_COUNT


# -- fault divergence (the ROP-detection mechanism in miniature) -----------------------

def test_follower_faults_on_leader_code_address():
    def hijacked(ctx):
        # models a corrupted code pointer that slipped past relocation
        # (e.g. written by the attacker *after* variant creation): an
        # absolute leader-space address.  The leader executes it fine;
        # the follower's view has no mapping there and faults.
        leader_victim = ctx.process.resolve("victim")
        return ctx.call(leader_victim)

    def victim(ctx):
        return 99

    proc, monitor, alarms = make_process(
        ("hijacked", hijacked, 0, {}),
        ("victim", victim, 0, {}))
    with pytest.raises(MvxDivergence) as info:
        run_protected(proc, monitor, "hijacked")
    assert info.value.report.kind is DivergenceKind.FOLLOWER_FAULT
    assert "0x" in info.value.report.detail
    assert alarms.triggered


def test_follower_faults_on_leader_data_address():
    def peeker(ctx):
        # forged data pointer (absolute leader address, not an argument,
        # so it never went through relocation)
        leader_secret = ctx.process.main_image.symbol_address("secret")
        value = ctx.read_word(leader_secret)
        ctx.libc("close", value & 0xFF)
        return 0

    proc, monitor, alarms = make_process(
        ("peeker", peeker, 0, {"calls": ("close",)}),
        data=[("secret", (1234).to_bytes(8, "little"))])
    with pytest.raises(MvxDivergence) as info:
        run_protected(proc, monitor, "peeker")
    assert info.value.report.kind is DivergenceKind.FOLLOWER_FAULT


# -- recovery ---------------------------------------------------------------------------

def test_process_usable_after_divergence():
    def two_faced(ctx):
        if ctx.loaded.tag.startswith("variant:"):
            ctx.libc("getpid")
        else:
            ctx.libc("time", 0)
        return 0

    def honest(ctx):
        ctx.libc("getpid")
        return 7

    proc, monitor, alarms = make_process(
        ("two_faced", two_faced, 0, {"calls": ("getpid", "time")}),
        ("honest", honest, 0, {"calls": ("getpid",)}))
    with pytest.raises(MvxDivergence):
        run_protected(proc, monitor, "two_faced")
    # a fresh region over well-behaved code still works
    run_protected(proc, monitor, "honest")
    assert len(alarms.alarms) == 1


def test_relocated_pointer_argument_keeps_variants_consistent():
    """A pointer argument into the heap is relocated for the follower, so
    both variants read their own copies and stay in lockstep."""
    def reader(ctx, ptr):
        value = ctx.read_word(ptr)
        ctx.libc("close", value & 0xFFFF)  # same scalar in both variants
        return value

    proc, monitor, alarms = make_process(
        ("reader", reader, 1, {"calls": ("close",)}))
    heap_ptr = proc.heap.malloc(16)
    proc.space.write_word(heap_ptr, 0xBEEF, privileged=True)
    run_protected(proc, monitor, "reader", heap_ptr)
    assert not alarms.triggered
