"""Unit tests: the pointer relocator and the lockstep IPC channel."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.divergence import CallRecord, DivergenceKind, \
    DivergenceReport
from repro.core.ipc import (
    FOLLOWER,
    LEADER,
    LibcResult,
    LockstepChannel,
)
from repro.core.relocate import OldRange, PointerRelocator
from repro.errors import MvxDivergence
from repro.machine import AddressSpace, PAGE_SIZE
from repro.machine.costs import DEFAULT_COSTS

SHIFT = 0x1000_0000


def make_relocator(old_start=0x10_0000, old_size=0x10000):
    space = AddressSpace()
    space.mmap(old_start, old_size)
    space.mmap(old_start + SHIFT, old_size)
    ranges = [OldRange(old_start, old_start + old_size, "image")]
    return space, PointerRelocator(space, ranges, SHIFT, DEFAULT_COSTS)


# -- relocator --------------------------------------------------------------------

def test_relocates_pointer_into_old_range():
    space, relocator = make_relocator()
    target = 0x10_0000 + 0x500
    copy_base = 0x10_0000 + SHIFT
    space.write_word(copy_base + 0x100, target, privileged=True)
    stats = relocator.scan_data_region(copy_base, 0x1000, "data")
    assert stats.pointers_found == 1
    assert space.read_word(copy_base + 0x100, privileged=True) == \
        target + SHIFT


def test_leaves_non_pointers_alone():
    space, relocator = make_relocator()
    copy_base = 0x10_0000 + SHIFT
    values = [0, 42, 0xFFFF_FFFF_FFFF_FFFF, 0x20_0000]   # outside ranges
    for i, value in enumerate(values):
        space.write_word(copy_base + 8 * i, value, privileged=True)
    stats = relocator.scan_data_region(copy_base, 8 * len(values), "data")
    assert stats.pointers_found == 0
    for i, value in enumerate(values):
        assert space.read_word(copy_base + 8 * i,
                               privileged=True) == value


def test_false_positive_integer_that_looks_like_pointer():
    """The paper's acknowledged strawman hazard: an integer whose value
    happens to fall inside an old range IS relocated (§3.4: 'There might
    be integer values that look like pointers')."""
    space, relocator = make_relocator()
    copy_base = 0x10_0000 + SHIFT
    innocent_integer = 0x10_0008          # not a pointer, but in-range
    space.write_word(copy_base, innocent_integer, privileged=True)
    stats = relocator.scan_data_region(copy_base, 8, "data")
    assert stats.pointers_found == 1      # misidentified, by design
    assert space.read_word(copy_base, privileged=True) == \
        innocent_integer + SHIFT


def test_alias_narrowed_scan_visits_only_known_slots():
    space, relocator = make_relocator()
    copy_base = 0x10_0000 + SHIFT
    space.write_word(copy_base + 0, 0x10_0100, privileged=True)   # slot 0
    space.write_word(copy_base + 8, 0x10_0200, privileged=True)   # slot 1
    stats = relocator.scan_data_region(copy_base, 16, "data",
                                       slot_offsets=[0])
    assert stats.slots_scanned == 1
    assert stats.pointers_found == 1
    # the unlisted slot kept its stale value (the risk alias info takes)
    assert space.read_word(copy_base + 8, privileged=True) == 0x10_0200


def test_scan_charges_proportional_time():
    space, relocator = make_relocator()
    copy_base = 0x10_0000 + SHIFT
    small = relocator.scan_data_region(copy_base, 64, "a")
    large = relocator.scan_data_region(copy_base, 6400, "b")
    assert large.time_ns > 10 * small.time_ns
    heap = relocator.scan_heap_region(copy_base, 6400)
    assert heap.time_ns > large.time_ns      # heap slots cost more


def test_relocate_value_scalar():
    _, relocator = make_relocator()
    assert relocator.relocate_value(0x10_0010) == 0x10_0010 + SHIFT
    assert relocator.relocate_value(12345) == 12345
    assert relocator.relocate_value(0) == 0


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=(1 << 47) - 8),
                min_size=1, max_size=32))
def test_relocation_idempotent_on_out_of_range(values):
    """Values outside every old range survive any scan bit-identically."""
    space = AddressSpace()
    base = space.mmap(None, PAGE_SIZE)
    ranges = [OldRange(1 << 45, (1 << 45) + 0x1000, "image")]
    relocator = PointerRelocator(space, ranges, SHIFT, DEFAULT_COSTS)
    safe = [v for v in values if not (1 << 45) <= v < (1 << 45) + 0x1000]
    for i, value in enumerate(safe[:32]):
        space.write_word(base + 8 * i, value, privileged=True)
    relocator.scan_data_region(base, 8 * len(safe[:32]), "fuzz")
    for i, value in enumerate(safe[:32]):
        assert space.read_word(base + 8 * i, privileged=True) == value


# -- the lockstep channel -----------------------------------------------------------

def run_follower(channel, script):
    """Run `script(channel)` on a follower thread; returns the thread."""
    thread = threading.Thread(target=script, args=(channel,), daemon=True)
    thread.start()
    return thread


def test_happy_path_one_call():
    channel = LockstepChannel()
    result_seen = {}

    def follower(ch):
        ch.follower_wait_turn()
        result = ch.follower_announce(
            CallRecord(1, "read", (3, 100, 64), FOLLOWER))
        result_seen["result"] = result
        ch.follower_finish()

    thread = run_follower(channel, follower)
    record = channel.leader_announce(CallRecord(1, "read", (3, 200, 64),
                                                LEADER))
    assert record.name == "read"
    channel.leader_publish(LibcResult(1, 64, 0))
    status = channel.leader_finish()
    thread.join(timeout=10)
    assert status.done and status.fault is None
    assert result_seen["result"].retval == 64
    assert channel.rendezvous_count == 1


def test_follower_missing_call_flags_divergence():
    channel = LockstepChannel()

    def follower(ch):
        ch.follower_wait_turn()
        ch.follower_finish()              # returns without any libc call

    thread = run_follower(channel, follower)
    with pytest.raises(MvxDivergence) as info:
        channel.leader_announce(CallRecord(1, "write", (1,), LEADER))
    thread.join(timeout=10)
    assert info.value.report.kind is DivergenceKind.CALL_COUNT


def test_follower_extra_call_flags_divergence():
    channel = LockstepChannel()
    errors = {}

    def follower(ch):
        ch.follower_wait_turn()
        try:
            ch.follower_announce(CallRecord(1, "getpid", (), FOLLOWER))
        except MvxDivergence as exc:
            errors["exc"] = exc

    thread = run_follower(channel, follower)
    with pytest.raises(MvxDivergence) as info:
        channel.leader_finish()          # leader done without any call
    thread.join(timeout=10)
    assert info.value.report.kind is DivergenceKind.CALL_COUNT
    assert isinstance(errors.get("exc"), MvxDivergence)
    assert channel.divergence is not None


def test_leader_abort_wakes_follower():
    channel = LockstepChannel()
    woken = {}

    def follower(ch):
        try:
            ch.follower_wait_turn()
        except MvxDivergence as exc:
            woken["exc"] = exc

    thread = run_follower(channel, follower)
    channel.leader_abort(DivergenceReport(DivergenceKind.ARGUMENT,
                                          1, "read", "test"))
    thread.join(timeout=10)
    assert isinstance(woken.get("exc"), MvxDivergence)


def test_strict_serialization_sequence():
    """The baton never lets both sides run at once: events interleave in
    the documented order."""
    channel = LockstepChannel()
    events = []

    def follower(ch):
        ch.follower_wait_turn()
        events.append("follower-running")
        result = ch.follower_announce(CallRecord(1, "time", (0,), FOLLOWER))
        events.append(f"follower-got-{result.retval}")
        ch.follower_finish()

    thread = run_follower(channel, follower)
    events.append("leader-call")
    follower_record = channel.leader_announce(
        CallRecord(1, "time", (0,), LEADER))
    events.append("leader-matched")
    channel.leader_publish(LibcResult(1, 777, 0))
    events.append("leader-continues")
    channel.leader_finish()
    thread.join(timeout=10)
    assert events[0] == "leader-call"
    assert events[1] == "follower-running"
    assert events[2] == "leader-matched"
    assert "follower-got-777" in events


def test_multiple_sequential_calls():
    channel = LockstepChannel()

    def follower(ch):
        ch.follower_wait_turn()
        for seq in range(1, 6):
            result = ch.follower_announce(
                CallRecord(seq, "getpid", (), FOLLOWER))
            assert result.retval == 100 + seq
        ch.follower_finish()

    thread = run_follower(channel, follower)
    for seq in range(1, 6):
        channel.leader_announce(CallRecord(seq, "getpid", (), LEADER))
        channel.leader_publish(LibcResult(seq, 100 + seq, 0))
    channel.leader_finish()
    thread.join(timeout=10)
    assert channel.rendezvous_count == 5


# -- call-record comparison -----------------------------------------------------------

def test_compare_calls_ignores_pointer_args():
    from repro.core.divergence import compare_calls
    leader = CallRecord(1, "read", (3, 0xAAAA_0000, 64), LEADER)
    follower = CallRecord(1, "read", (3, 0xBBBB_0000, 64), FOLLOWER)
    assert compare_calls(leader, follower, pointer_indexes=(1,)) is None
    report = compare_calls(leader, follower, pointer_indexes=())
    assert report is not None
    assert report.kind is DivergenceKind.ARGUMENT


def test_compare_calls_name_mismatch():
    from repro.core.divergence import compare_calls
    report = compare_calls(CallRecord(1, "read", (), LEADER),
                           CallRecord(1, "write", (), FOLLOWER), ())
    assert report.kind is DivergenceKind.CALL_NAME
