"""End-to-end tests for the sMVX runtime: setup, lockstep, divergence."""

import pytest

from repro.errors import MvxDivergence, ProtectionKeyFault, SegmentationFault
from repro.machine.memory import PROT_READ


def expected_result(vanilla):
    """Ground truth from the vanilla run (same binary, stub mvx_*)."""
    return vanilla.call_function("main", 5, 7)


# -- vanilla baseline -----------------------------------------------------------

def test_vanilla_app_runs(vanilla):
    # helper(5)=10, b=7, first byte 'W' (87), strlen=14 -> 118+... plus
    # unprotected calls 1001 + 1002
    result = vanilla.call_function("main", 5, 7)
    assert result == (10 + 7 + ord("W") + 14 + 1001 + 1002) & 0xFFFFFFFF


# -- monitor setup ---------------------------------------------------------------

def test_setup_patches_got_and_saves_originals(protected):
    proc, monitor, _ = protected
    target = monitor.target
    for name in monitor.plt_names:
        slot_value = proc.loader.read_got_slot(target, name)
        stub = monitor.monitor_image.symbol_address(f"smvx_stub_{name}")
        assert slot_value == stub
        assert monitor.real_libc[name] == proc.resolve(name)


def test_setup_reads_proc_self_maps(protected):
    _, monitor, _ = protected
    assert "protapp:.text" in monitor.self_maps
    assert "heap" in monitor.self_maps


def test_monitor_text_is_execute_only(protected):
    proc, monitor, _ = protected
    start, _size = monitor.monitor_image.section_range(".text")
    page = proc.space.page_at(start)
    assert page.prot & PROT_READ == 0          # XoM: no data reads
    proc.space.fetch_check(start)              # but fetch is fine


def test_app_thread_cannot_read_monitor_data(protected):
    proc, monitor, _ = protected
    private = monitor.monitor_image.symbol_address("smvx_private")
    thread = proc.main_thread()
    assert thread.state.pkru == monitor.memory.pkru_closed
    with pytest.raises(SegmentationFault):
        proc.space.read(private, 8, pkru=thread.state.pkru)


def test_app_thread_cannot_read_safe_stacks(protected):
    proc, monitor, _ = protected
    thread = proc.main_thread()
    with pytest.raises(ProtectionKeyFault):
        proc.space.read(monitor.memory.safe_stack_area, 8,
                        pkru=thread.state.pkru)


def test_double_attach_rejected(protected):
    from repro.core import SmvxMonitor
    from repro.errors import MvxSetupError
    proc, monitor, _ = protected
    with pytest.raises(MvxSetupError):
        SmvxMonitor(proc).setup(monitor.target)


# -- passthrough interception ------------------------------------------------------

def test_libc_interception_outside_region(protected, vanilla):
    proc, monitor, _ = protected

    # run only the unprotected function: all calls are passthrough
    result = proc.call_function("unprotected_func", 1)
    assert result == 1001
    assert monitor.stats.intercepted_calls >= 1
    assert monitor.stats.passthrough_calls == monitor.stats.intercepted_calls
    assert monitor.stats.leader_calls == 0


def test_passthrough_preserves_results(protected, vanilla):
    proc, monitor, _ = protected
    # file I/O through the gate must behave identically to vanilla
    assert proc.call_function("unprotected_func", 41) == \
        vanilla.call_function("unprotected_func", 41)


# -- the protected region, end to end ------------------------------------------------

def test_protected_run_matches_vanilla(protected, vanilla):
    proc, monitor, alarms = protected
    expected = expected_result(vanilla)
    result = proc.call_function("main", 5, 7)
    assert result == expected
    assert not alarms.triggered
    assert monitor.stats.regions_entered == 1
    # both variants issued the same number of in-region libc calls
    assert monitor.stats.leader_calls == monitor.stats.follower_calls
    assert monitor.stats.leader_calls > 0
    assert monitor.stats.emulated_calls > 0
    assert monitor.stats.local_calls > 0


def test_region_can_run_repeatedly(protected):
    proc, monitor, alarms = protected
    first = proc.call_function("main", 5, 7)
    second = proc.call_function("main", 5, 7)
    assert first == second
    assert monitor.stats.regions_entered == 2
    assert not alarms.triggered
    assert monitor.region is None


def test_leader_only_io_no_duplicate_writes(protected):
    """The write() in the region must hit the log exactly once per run —
    the monitor prevents the follower from re-executing I/O (§3.3)."""
    proc, monitor, _ = protected
    proc.call_function("main", 5, 7)
    log = proc.kernel.vfs.read_file("/var/log/app.log")
    assert log == b"protected ran\n"


def test_follower_memory_torn_down_after_region(protected):
    proc, monitor, _ = protected
    proc.main_thread()                     # materialize the main stack
    rss_before = proc.space.resident_bytes()
    proc.call_function("main", 5, 7)
    assert proc.space.resident_bytes() == rss_before
    assert len(proc.threads) == 1


def test_variant_report_shape(protected):
    proc, monitor, _ = protected
    proc.call_function("main", 5, 7)
    report = monitor.last_variant_report
    assert report.shift > 0
    assert "protected_func" in report.protected_functions
    assert "helper" in report.protected_functions
    assert "unprotected_func" not in report.protected_functions
    assert report.text_pages_copied >= 1
    assert report.relocation.total_pointers >= 1   # helper_ptr at least
    scans = {scan.region for scan in report.relocation.scans}
    assert {".data", ".bss", "heap"} <= scans or {".data", ".bss"} <= scans


def test_pointer_relocation_points_into_follower(protected):
    """After relocation the follower's helper_ptr must equal the *copy's*
    helper address (old + shift)."""
    proc, monitor, _ = protected
    target = monitor.target
    captured = {}

    original = proc.loader  # noqa: F841 (document intent)

    def observer(thread, name):
        if thread.variant == "follower" and "ptr" not in captured:
            view = proc.loader.image_at(thread.state.regs.rip)
            # read the follower's .data copy directly
            for loaded in proc.loader.images:
                if loaded.tag.startswith("variant:"):
                    captured["ptr"] = proc.space.read_word(
                        loaded.symbol_address("helper_ptr"),
                        privileged=True)
                    captured["helper"] = loaded.symbol_address("helper")
    proc.libc_call_observers.append(observer)
    proc.call_function("main", 5, 7)
    assert captured["ptr"] == captured["helper"]


def test_mvx_end_without_start_returns_error(protected):
    proc, monitor, _ = protected

    # craft a direct call to the monitor's mvx_end implementation
    thread = proc.main_thread()
    result = proc.guest_call(
        thread, monitor.monitor_image.symbol_address("mvx_end"))
    assert result == (1 << 64) - 1       # -1: no active region


def test_nested_region_rejected(protected):
    from repro.errors import MvxStateError
    proc, monitor, _ = protected
    thread = proc.main_thread()
    monitor.region_start(thread, "protected_func", [5, 7])
    with pytest.raises(MvxStateError):
        monitor.region_start(thread, "protected_func", [5, 7])
    # cleanly end the first region
    proc.guest_call(thread, proc.resolve("protected_func"), 5, 7)
    monitor.region_end(thread)


def test_unknown_protected_function_rejected(protected):
    from repro.errors import MvxSetupError
    proc, monitor, _ = protected
    with pytest.raises(MvxSetupError):
        monitor.region_start(proc.main_thread(), "no_such_func", [])


# -- follower isolation (the security core) --------------------------------------------

def test_follower_cannot_reach_leader_image(protected):
    """The leader's image region is unmapped in the follower's view —
    jumping or reading there faults (non-overlapping address spaces)."""
    proc, monitor, _ = protected
    thread = proc.main_thread()
    monitor.region_start(thread, "protected_func", [5, 7])
    variant = monitor.region.variant
    fspace = variant.thread.space
    leader_text = monitor.target.symbol_address("protected_func")
    assert not fspace.is_mapped(leader_text)
    with pytest.raises(SegmentationFault):
        fspace.read(leader_text, 8, privileged=True)
    # but the copy *is* mapped in the follower view
    assert fspace.is_mapped(variant.entry)
    # and shared libc pages are visible
    assert fspace.is_mapped(proc.resolve("strlen"))
    # cleanup
    proc.guest_call(thread, proc.resolve("protected_func"), 5, 7)
    monitor.region_end(thread)


def test_follower_shares_monitor_and_ipc_pages(protected):
    proc, monitor, _ = protected
    thread = proc.main_thread()
    monitor.region_start(thread, "protected_func", [5, 7])
    fspace = monitor.region.variant.thread.space
    assert fspace.is_mapped(monitor.memory.ipc_area)
    stub = monitor.monitor_image.symbol_address(
        f"smvx_stub_{monitor.plt_names[0]}")
    assert fspace.is_mapped(stub)
    proc.guest_call(thread, proc.resolve("protected_func"), 5, 7)
    monitor.region_end(thread)
