"""The kitchen-sink region: every paper-listed emulated libc call issued
inside one protected region, verifying lockstep consistency, single-
execution of side effects, and correct buffer emulation — Table 1
end-to-end in one shot."""

import pytest

from repro.core import AlarmLog, attach_smvx, build_smvx_stub_image
from repro.kernel import Kernel
from repro.kernel.epoll_impl import EPOLL_CTL_ADD, EPOLL_CTL_DEL, EPOLLIN
from repro.kernel.kernel import Kernel as K
from repro.kernel.vfs import O_APPEND, O_CREAT, O_RDONLY, O_WRONLY
from repro.libc import LIBC_FUNCTIONS, PAPER_TABLE1
from repro.loader import ImageBuilder
from repro.process import GuestProcess, to_signed

PORT = 7900


def kitchen_sink(ctx):
    """Issues every Table 1 call at least once; returns a checksum."""
    acc = 0

    # -- files: open/write/writev/read/stat/fstat/lseek/close -------------
    path = ctx.stack_alloc(32)
    ctx.write_cstring(path, b"/tmp/sink.dat")
    fd = to_signed(ctx.libc("open", path, O_RDWR_CREAT))
    buf = ctx.stack_alloc(64)
    ctx.write(buf, b"0123456789abcdef")
    acc += to_signed(ctx.libc("write", fd, buf, 16))
    iov = ctx.stack_alloc(32)
    ctx.write_words(iov, [buf, 4, buf + 8, 4])
    acc += to_signed(ctx.libc("writev", fd, iov, 2))
    ctx.libc("lseek", fd, 0, 0)
    readback = ctx.stack_alloc(64)
    n = to_signed(ctx.libc("read", fd, readback, 64))
    acc += n + ctx.read_byte(readback)
    statbuf = ctx.stack_alloc(24)
    ctx.libc("stat", path, statbuf)
    acc += ctx.read_word(statbuf + 8)
    ctx.libc("fstat", fd, statbuf)
    acc += ctx.read_word(statbuf + 8)
    ctx.libc("close", fd)

    # -- dirs --------------------------------------------------------------
    dpath = ctx.stack_alloc(32)
    ctx.write_cstring(dpath, b"/tmp/sinkdir")
    acc += to_signed(ctx.libc("mkdir", dpath, 0o755)) + 1
    fpath = ctx.stack_alloc(32)
    ctx.write_cstring(fpath, b"/tmp/sink.rm")
    rm_fd = to_signed(ctx.libc("open", fpath, O_W_CREAT))
    ctx.libc("close", rm_fd)
    acc += to_signed(ctx.libc("unlink", fpath)) + 1

    # -- sockets + epoll + ioctl -------------------------------------------
    listen_fd = to_signed(ctx.libc("listen_on", PORT, 8))
    client = ctx.process.kernel.network.connect(PORT)
    client.send(b"ping-payload")
    conn = to_signed(ctx.libc("accept4", listen_fd, 0))
    one = ctx.stack_alloc(8)
    ctx.write_word(one, 1)
    ctx.libc("setsockopt", conn, 6, 1, one, 8)
    out = ctx.stack_alloc(8)
    outlen = ctx.stack_alloc(8)
    ctx.libc("getsockopt", conn, 6, 1, out, outlen)
    acc += ctx.read_word(out)

    epfd = to_signed(ctx.libc("epoll_create1", 0))
    ev = ctx.stack_alloc(16)
    ctx.write_words(ev, [EPOLLIN, conn])
    ctx.libc("epoll_ctl", epfd, EPOLL_CTL_ADD, conn, ev)
    events = ctx.stack_alloc(64)
    acc += to_signed(ctx.libc("epoll_wait", epfd, events, 4, -1))
    acc += to_signed(ctx.libc("epoll_pwait", epfd, events, 4, 0, 0))

    pending = ctx.stack_alloc(8)
    ctx.libc("ioctl", conn, K.FIONREAD, pending)
    acc += ctx.read_word(pending)

    rbuf = ctx.stack_alloc(32)
    n = to_signed(ctx.libc("recv", conn, rbuf, 32, 0))
    acc += n + ctx.read_byte(rbuf)
    ctx.write(rbuf, b"pong")
    acc += to_signed(ctx.libc("send", conn, rbuf, 4, 0))

    # sendfile from the data file to the socket
    sf_fd = to_signed(ctx.libc("open", path, O_RDONLY))
    off = ctx.stack_alloc(8)
    ctx.write_word(off, 4)
    acc += to_signed(ctx.libc("sendfile", conn, sf_fd, off, 8))
    acc += ctx.read_word(off)
    ctx.libc("close", sf_fd)
    ctx.libc("shutdown", conn, 1)
    ctx.libc("epoll_ctl", epfd, EPOLL_CTL_DEL, conn, 0)
    ctx.libc("close", conn)
    ctx.libc("close", epfd)
    ctx.libc("close", listen_fd)

    # -- time ----------------------------------------------------------------
    tv = ctx.stack_alloc(16)
    ctx.libc("gettimeofday", tv, 0)
    acc += ctx.read_word(tv) & 0xFFFF
    timep = ctx.stack_alloc(8)
    ctx.write_word(timep, ctx.libc("time", 0))
    tm_buf = ctx.stack_alloc(72)
    ctx.libc("localtime_r", timep, tm_buf)
    acc += ctx.read_word(tm_buf + 24)          # tm_mday
    acc += ctx.libc("getpid")

    # -- local category -------------------------------------------------------
    blob = ctx.libc("malloc", 96)
    ctx.libc("memset", blob, 0x41, 32)
    ctx.libc("memcpy", blob + 32, blob, 16)
    ctx.libc("memmove", blob + 8, blob, 24)
    acc += to_signed(ctx.libc("memcmp", blob, blob + 32, 8)) + 1
    ctx.write_cstring(blob + 64, b"sink-123")
    acc += ctx.libc("strlen", blob + 64)
    acc += ctx.libc("strchr", blob + 64, ord("-")) - blob
    acc += ctx.libc("atoi", blob + 69)
    grown = ctx.libc("realloc", blob, 256)
    zeroes = ctx.libc("calloc", 4, 8)
    acc += ctx.read_word(zeroes)
    ctx.libc("free", zeroes)
    ctx.libc("free", grown)
    return acc & 0xFFFF_FFFF


O_RDWR_CREAT = 2 | O_CREAT
O_W_CREAT = O_WRONLY | O_CREAT


@pytest.fixture
def rig():
    kernel = Kernel()
    proc = GuestProcess(kernel, "sink")
    from repro.libc import build_libc_image
    proc.load_image(build_libc_image(), tag="libc")
    proc.load_image(build_smvx_stub_image(), tag="libsmvx")
    builder = ImageBuilder("sinkapp")
    builder.import_libc("mvx_init", "mvx_start", "mvx_end",
                        *LIBC_FUNCTIONS.keys())
    builder.add_hl_function("kitchen_sink", kitchen_sink, 0, size=8192)
    target = proc.load_image(builder.build(), main=True)
    alarms = AlarmLog()
    monitor = attach_smvx(proc, target, alarm_log=alarms)
    return kernel, proc, monitor, alarms


def run_region(proc, monitor):
    thread = proc.main_thread()
    monitor.region_start(thread, "kitchen_sink", [])
    result = to_signed(proc.guest_call(thread, proc.resolve("kitchen_sink")))
    monitor.region_end(thread)
    return result


def test_kitchen_sink_vanilla_vs_protected(rig):
    kernel, proc, monitor, alarms = rig
    protected = run_region(proc, monitor)
    assert not alarms.triggered

    # a vanilla process computes the same checksum
    kernel2 = Kernel()
    proc2 = GuestProcess(kernel2, "sink2")
    from repro.libc import build_libc_image
    proc2.load_image(build_libc_image(), tag="libc")
    proc2.load_image(build_smvx_stub_image(), tag="libsmvx")
    builder = ImageBuilder("sinkapp")
    builder.import_libc("mvx_init", "mvx_start", "mvx_end",
                        *LIBC_FUNCTIONS.keys())
    builder.add_hl_function("kitchen_sink", kitchen_sink, 0, size=8192)
    proc2.load_image(builder.build(), main=True)
    vanilla = to_signed(proc2.call_function("kitchen_sink"))
    assert protected == vanilla != 0


def test_kitchen_sink_covers_all_paper_calls(rig):
    kernel, proc, monitor, alarms = rig
    run_region(proc, monitor)
    seen = set(proc.libc_call_counts)
    for names in PAPER_TABLE1.values():
        for name in names:
            assert name in seen, f"{name} not exercised"


def test_kitchen_sink_side_effects_once(rig):
    kernel, proc, monitor, alarms = rig
    run_region(proc, monitor)
    # write+writev wrote exactly 24 bytes (no follower duplication)
    assert kernel.vfs.read_file("/tmp/sink.dat") == \
        b"0123456789abcdef" + b"0123" + b"89ab"
    assert kernel.vfs.is_dir("/tmp/sinkdir")
    assert not kernel.vfs.exists("/tmp/sink.rm")


def test_kitchen_sink_repeats_cleanly(rig):
    kernel, proc, monitor, alarms = rig
    first = run_region(proc, monitor)
    kernel.vfs.unlink("/tmp/sink.dat")
    # second run re-creates everything through a fresh region; mkdir now
    # returns EEXIST in BOTH variants consistently
    second = run_region(proc, monitor)
    assert not alarms.triggered
    assert monitor.stats.regions_entered == 2
