"""Edge cases for variant reuse: heap growth, multi-root caches, and
heap bookkeeping roundtrips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.minx import MinxServer
from repro.kernel import Kernel
from repro.machine import AddressSpace, PAGE_SIZE
from repro.process import Heap
from repro.workloads import ApacheBench


@pytest.fixture
def kernel():
    return Kernel()


def make_server(kernel, **kwargs):
    server = MinxServer(kernel, smvx=True,
                        protect="minx_http_process_request_line",
                        reuse_variants=True, **kwargs)
    server.start()
    return server


def test_heap_growth_between_regions_is_refreshed(kernel):
    """New allocations between regions land in the refreshed follower."""
    server = make_server(kernel)
    proc = server.process
    ab = ApacheBench(kernel, server)
    ab.run(2)                                   # warm the cache

    # grow the leader heap after parking (host-side models app activity)
    fresh = proc.heap.malloc(3 * PAGE_SIZE)
    proc.space.write_word(fresh, 0xABCD, privileged=True)

    result = ab.run(1)                          # region re-entered once
    assert result.status_counts == {200: 1}
    assert not server.alarms.triggered
    # the first refresh after the growth swept the grown pages
    refresh = server.monitor.last_refresh_stats
    assert refresh.heap_pages_rescanned >= 3
    # steady state afterwards is small again
    ab.run(1)
    assert server.monitor.last_refresh_stats.heap_pages_rescanned < 3


def test_multiple_roots_cached_independently(kernel):
    server = make_server(kernel)
    proc = server.process
    monitor = server.monitor
    ApacheBench(kernel, server).run(1)
    assert set(monitor._cached_variants) == \
        {"minx_http_process_request_line"}

    # enter a different root manually: gets its own cache entry
    conn = proc.heap.malloc(128)
    buf = proc.heap.malloc(2048)
    proc.space.write_word(conn + 8, buf, privileged=True)
    thread = proc.main_thread()
    monitor.region_start(thread, "minx_http_log_access", [conn])
    proc.guest_call(thread, proc.resolve("minx_http_log_access"), conn)
    monitor.region_end(thread)
    assert set(monitor._cached_variants) == {
        "minx_http_process_request_line", "minx_http_log_access"}

    # both caches refresh correctly on re-entry
    result = ApacheBench(kernel, server).run(1)
    assert result.status_counts == {200: 1}


def test_refresh_count_increments(kernel):
    server = make_server(kernel)
    ApacheBench(kernel, server).run(5)
    # first request built fresh; refreshes followed on re-entries
    assert server.monitor.refresh_counts[
        "minx_http_process_request_line"] >= 3


# -- heap bookkeeping roundtrip ---------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=512), min_size=1,
                max_size=24),
       st.integers(min_value=256, max_value=4096).map(
           lambda pages: pages * PAGE_SIZE))
def test_heap_bookkeeping_clone_roundtrip(sizes, shift):
    """clone_bookkeeping(shift) + adopt restores an equivalent allocator
    whose next allocations mirror the original's, offset by the shift
    (what variant creation does for the follower's heap)."""
    space = AddressSpace()
    base = space.mmap(0x10_0000, 256 * PAGE_SIZE)
    heap = Heap(space, base, 256 * PAGE_SIZE)
    live = []
    for index, size in enumerate(sizes):
        live.append(heap.malloc(size))
        if index % 2:
            heap.free(live.pop())

    # the mirror region gets a content copy, like the variant's heap
    space.mmap(0x10_0000 + shift, 256 * PAGE_SIZE)
    used = heap.used_range()[1] - heap.base
    if used:
        space.write(base + shift, space.read(base, used, privileged=True),
                    privileged=True)
    mirror = Heap(space, base + shift, 256 * PAGE_SIZE)
    mirror.adopt_bookkeeping(heap.clone_bookkeeping(shift))
    assert mirror.allocated_bytes == heap.allocated_bytes
    # identical future behaviour, shifted
    for size in (8, 64, 200):
        assert mirror.malloc(size) == heap.malloc(size) + shift
    victim = live[0] if live else None
    if victim is not None:
        heap.free(victim)
        mirror.free(victim + shift)
        assert mirror.allocated_bytes == heap.allocated_bytes
