"""Deep tests of the emulation machinery: the special cases of §3.3 and
the local-call return-value lockstep check."""

import struct

import pytest

from repro.core import AlarmLog, DivergenceKind, attach_smvx, \
    build_smvx_stub_image
from repro.errors import MvxDivergence
from repro.kernel import Kernel
from repro.kernel.epoll_impl import EPOLL_CTL_ADD, EPOLLIN
from repro.kernel.kernel import Kernel as KernelClass
from repro.libc import build_libc_image
from repro.loader import ImageBuilder
from repro.process import GuestProcess, to_signed


def make_process(*functions, extra_imports=()):
    kernel = Kernel()
    kernel.vfs.write_file("/etc/blob", b"Z" * 128)
    proc = GuestProcess(kernel, "emu")
    proc.load_image(build_libc_image(), tag="libc")
    proc.load_image(build_smvx_stub_image(), tag="libsmvx")
    builder = ImageBuilder("emuapp")
    builder.import_libc("mvx_init", "mvx_start", "mvx_end", "open",
                        "close", "read", "recv", "send", "listen_on",
                        "accept4", "epoll_create1", "epoll_ctl",
                        "epoll_wait", "ioctl", "localtime_r",
                        "gettimeofday", "sendfile", "malloc", "free",
                        "strlen", "time", "getpid", *extra_imports)
    for name, fn, arity in functions:
        builder.add_hl_function(name, fn, arity)
    target = proc.load_image(builder.build(), main=True)
    alarms = AlarmLog()
    monitor = attach_smvx(proc, target, alarm_log=alarms)
    return proc, monitor, alarms


def run_region(proc, monitor, name, *args):
    thread = proc.main_thread()
    monitor.region_start(thread, name, list(args))
    try:
        return to_signed(proc.guest_call(thread, proc.resolve(name), *args))
    finally:
        if monitor.region is not None:
            monitor.region_end(thread)


# -- epoll_data pointer translation (the union case) ---------------------------------

def test_epoll_data_pointer_translated_for_follower():
    captured = {}

    def watcher(ctx):
        port = 7801
        listen_fd = to_signed(ctx.libc("listen_on", port, 4))
        epfd = to_signed(ctx.libc("epoll_create1", 0))
        cookie = ctx.libc("malloc", 32)        # a heap POINTER as epoll_data
        ctx.write_word(cookie, 0x1234)
        ev = ctx.stack_alloc(16)
        ctx.write_words(ev, [EPOLLIN, cookie])
        ctx.libc("epoll_ctl", epfd, EPOLL_CTL_ADD, listen_fd, ev)
        ctx.process.kernel.network.connect(port)
        events = ctx.stack_alloc(64)
        n = to_signed(ctx.libc("epoll_wait", epfd, events, 4, -1))
        data = ctx.read_word(events + 8)
        # the follower must receive ITS cookie address, and dereferencing
        # it must work in its own space
        captured.setdefault(ctx.thread.variant, []).append(
            (data, ctx.read_word(data)))
        return n

    proc, monitor, alarms = make_process(("watcher", watcher, 0))
    assert run_region(proc, monitor, "watcher") == 1
    assert not alarms.triggered
    leader_data, leader_deref = captured["leader"][0]
    follower_data, follower_deref = captured["follower"][0]
    shift = monitor.last_variant_report.shift
    assert follower_data == leader_data + shift
    assert leader_deref == follower_deref == 0x1234


# -- ioctl pointer-in-address-space heuristic -------------------------------------------

def test_ioctl_fionread_buffer_emulated():
    captured = {}

    def prober(ctx):
        port = 7802
        listen_fd = to_signed(ctx.libc("listen_on", port, 4))
        client = ctx.process.kernel.network.connect(port)
        client.send(b"12345678")
        conn = to_signed(ctx.libc("accept4", listen_fd, 0))
        ctx.process.kernel.clock.advance_ns(200_000)
        arg = ctx.stack_alloc(8)
        ctx.libc("ioctl", conn, KernelClass.FIONREAD, arg)
        captured.setdefault(ctx.thread.variant, []).append(
            ctx.read_word(arg))
        return 0

    proc, monitor, alarms = make_process(("prober", prober, 0))
    run_region(proc, monitor, "prober")
    assert not alarms.triggered
    assert captured["leader"] == captured["follower"] == [8]


# -- localtime_r retval aliasing ------------------------------------------------------------

def test_localtime_r_returns_follower_buffer():
    captured = {}

    def timer(ctx):
        timep = ctx.stack_alloc(8)
        ctx.write_word(timep, 1733097600)
        result = ctx.stack_alloc(72)
        returned = ctx.libc("localtime_r", timep, result)
        captured.setdefault(ctx.thread.variant, []).append(
            (returned, result, ctx.read(result, 16)))
        return 1

    proc, monitor, alarms = make_process(("timer", timer, 0))
    run_region(proc, monitor, "timer")
    assert not alarms.triggered
    for variant in ("leader", "follower"):
        returned, own_buffer, _ = captured[variant][0]
        assert returned == own_buffer      # each sees ITS buffer pointer
    assert captured["leader"][0][2] == captured["follower"][0][2]


# -- sendfile offset copy-back ---------------------------------------------------------------

def test_sendfile_offset_written_back_to_follower():
    from repro.kernel.vfs import O_RDONLY
    captured = {}

    def sender(ctx):
        port = 7803
        listen_fd = to_signed(ctx.libc("listen_on", port, 4))
        ctx.process.kernel.network.connect(port)
        conn = to_signed(ctx.libc("accept4", listen_fd, 0))
        path = ctx.stack_alloc(16)
        ctx.write_cstring(path, b"/etc/blob")
        fd = to_signed(ctx.libc("open", path, O_RDONLY))
        offset = ctx.stack_alloc(8)
        ctx.write_word(offset, 16)
        sent = to_signed(ctx.libc("sendfile", conn, fd, offset, 32))
        captured.setdefault(ctx.thread.variant, []).append(
            (sent, ctx.read_word(offset)))
        ctx.libc("close", fd)
        return sent

    proc, monitor, alarms = make_process(("sender", sender, 0))
    assert run_region(proc, monitor, "sender") == 32
    assert not alarms.triggered
    assert captured["leader"] == captured["follower"] == [(32, 48)]


# -- local-call retval lockstep check ---------------------------------------------------------

def test_local_retval_mismatch_detected():
    def cheater(ctx):
        buf = ctx.libc("malloc", 32)
        # the follower's copy holds a longer string: strlen (a LOCAL
        # call both variants execute) returns different values
        if ctx.loaded.tag.startswith("variant:"):
            ctx.write_cstring(buf, b"longer-string")
        else:
            ctx.write_cstring(buf, b"short")
        ctx.libc("strlen", buf)
        ctx.libc("free", buf)
        ctx.libc("getpid")
        return 0

    proc, monitor, alarms = make_process(("cheater", cheater, 0))
    with pytest.raises(MvxDivergence) as info:
        run_region(proc, monitor, "cheater")
    assert info.value.report.kind is DivergenceKind.RETVAL
    assert "strlen" == info.value.report.libc_name
    assert alarms.triggered


def test_local_pointer_retvals_not_compared():
    """malloc returns different (pointer) values per variant — by design
    that is NOT a divergence."""
    def allocator(ctx):
        p = ctx.libc("malloc", 64)
        ctx.libc("free", p)
        ctx.libc("getpid")
        return 0

    proc, monitor, alarms = make_process(("allocator", allocator, 0))
    run_region(proc, monitor, "allocator")
    assert not alarms.triggered
