"""ISA-level verification of the interposition path (paper Figure 4).

These tests watch the *instruction stream* of an intercepted libc call:
the stub's PUSH of the PLT index, the trampoline's two real WRPKRU
executions, the PKRU value actually changing around the gate, and the
monitor's pages flipping between inaccessible and accessible exactly
inside the gate window.
"""

import pytest

from repro.core import AlarmLog, attach_smvx, build_smvx_stub_image
from repro.errors import ProtectionKeyFault
from repro.kernel import Kernel
from repro.libc import build_libc_image
from repro.loader import ImageBuilder
from repro.machine.isa import Op
from repro.process import GuestProcess


@pytest.fixture
def rig():
    kernel = Kernel()
    proc = GuestProcess(kernel, "rig")
    proc.load_image(build_libc_image(), tag="libc")
    proc.load_image(build_smvx_stub_image(), tag="libsmvx")
    builder = ImageBuilder("rigapp")
    builder.import_libc("mvx_init", "mvx_start", "mvx_end", "getpid",
                        "time")

    def caller(ctx):
        return ctx.libc("getpid")
    builder.add_hl_function("caller", caller, 0, calls=("getpid",))
    target = proc.load_image(builder.build(), main=True)
    monitor = attach_smvx(proc, target, alarm_log=AlarmLog())
    return proc, monitor


def trace_ops(proc):
    """Collect (op, pkru_after) per executed instruction."""
    trace = []

    def hook(state, addr, instr):
        trace.append((addr, instr.op, state.pkru))
    proc.cpu.trace_hook = hook
    return trace


def test_gate_executes_two_wrpkru(rig):
    proc, monitor = rig
    trace = trace_ops(proc)
    assert proc.call_function("caller") == proc.pid
    wrpkru_events = [t for t in trace if t[1] is Op.WRPKRU]
    assert len(wrpkru_events) == 2         # open + close


def test_pkru_transitions_open_then_closed(rig):
    proc, monitor = rig
    opened = monitor.memory.pkru_open
    closed = monitor.memory.pkru_closed
    states = []

    def hook(state, addr, instr):
        states.append((instr.op, state.pkru))
    proc.cpu.trace_hook = hook
    proc.call_function("caller")
    # PKRU observed *before* each instruction executes: the instruction
    # after the first WRPKRU runs with the key open, and execution both
    # starts and ends closed.
    pkrus = [pkru for _op, pkru in states]
    assert pkrus[0] == closed
    assert pkrus[-1] == closed
    assert opened in pkrus                  # the gate window existed
    first_wrpkru = next(i for i, (op, _) in enumerate(states)
                        if op is Op.WRPKRU)
    assert states[first_wrpkru + 1][1] == opened


def test_stub_pushes_correct_plt_index(rig):
    proc, monitor = rig
    pushes = []

    def hook(state, addr, instr):
        if instr.op is Op.PUSH_I:
            pushes.append(instr.imm)
    proc.cpu.trace_hook = hook
    proc.call_function("caller")
    assert pushes == [monitor.plt_names.index("getpid")]


def test_interception_path_addresses(rig):
    """The executed addresses walk app PLT -> monitor stub -> trampoline
    -> gate, then return to the caller."""
    proc, monitor = rig
    trace = trace_ops(proc)
    proc.call_function("caller")
    addresses = [addr for addr, _op, _ in trace]
    stub = monitor.monitor_image.symbol_address("smvx_stub_getpid")
    trampoline = monitor.monitor_image.symbol_address("smvx_trampoline")
    gate = monitor.monitor_image.symbol_address("smvx_gate")
    assert stub in addresses
    assert trampoline in addresses
    assert gate in addresses
    assert addresses.index(stub) < addresses.index(trampoline) \
        < addresses.index(gate)


def test_monitor_data_closed_outside_gate_open_inside(rig):
    proc, monitor = rig
    private = monitor.monitor_image.symbol_address("smvx_private")
    observed = {}

    def hook(state, addr, instr):
        if instr.op is Op.WRPKRU and "inside" not in observed:
            # probe with the *current* PKRU at this instant
            try:
                proc.space.read(private, 8, pkru=state.pkru)
                observed.setdefault("readable_at", []).append(instr.op)
            except ProtectionKeyFault:
                observed.setdefault("blocked_at", []).append(instr.op)
    proc.cpu.trace_hook = hook
    thread = proc.main_thread()
    # outside any call: closed
    with pytest.raises(ProtectionKeyFault):
        proc.space.read(private, 8, pkru=thread.state.pkru)
    proc.call_function("caller")
    # at the first WRPKRU the key was still closed; at the second (close
    # gate) it was open — proving the window is exactly the gate
    assert observed["blocked_at"]
    assert observed["readable_at"]


def test_trampoline_preserves_return_value_across_close(rig):
    """The close sequence parks rax in r10 around WRPKRU; the caller must
    still see the libc return value."""
    proc, monitor = rig
    for _ in range(3):
        assert proc.call_function("caller") == proc.pid
