"""Tests for the aligned-variant strategy (repro.core.aligned) — the
paper's §4.1/§5 'align the function addresses but still have different
variant layouts' alternative."""

import pytest

from repro.apps.minx import MinxServer
from repro.attacks import run_exploit
from repro.core.aligned import TRAP_SLOT, _diversify_function, \
    diversify_text
from repro.errors import InvalidInstruction
from repro.kernel import Kernel
from repro.machine import Assembler, Instruction, Op
from repro.machine.isa import INSTR_SIZE
from repro.workloads import ApacheBench


@pytest.fixture
def kernel():
    return Kernel()


def make_server(kernel, **kwargs):
    server = MinxServer(kernel, smvx=True,
                        protect="minx_http_process_request_line",
                        variant_strategy="aligned", **kwargs)
    server.start()
    return server


# -- the diversifier ----------------------------------------------------------------

def assemble_padded(build, pad_slots):
    a = Assembler()
    build(a)
    code = a.assemble(0)
    return code + Instruction(Op.NOP).encode() * pad_slots


def test_diversified_body_moves_and_traps():
    def build(a):
        a.mov_ri("rax", 1)
        a.add_ri("rax", 2)
        a.ret()
    body = assemble_padded(build, pad_slots=7)       # 3 body + 7 pad
    out = _diversify_function(body, "f", seed=1)
    assert out is not None and len(out) == len(body)
    # entry slot is a JMP, not the original mov
    entry = Instruction.decode(out[:INSTR_SIZE])
    assert entry.op is Op.JMP
    # old gadget offsets (slots 1, 2) are traps now
    assert out[INSTR_SIZE:2 * INSTR_SIZE] == TRAP_SLOT
    assert out[2 * INSTR_SIZE:3 * INSTR_SIZE] == TRAP_SLOT
    # the body exists somewhere later, intact in order
    moved_ret = out.find(Instruction(Op.RET).encode())
    assert moved_ret >= 3 * INSTR_SIZE


def test_diversification_preserves_semantics():
    """Executing the diversified function gives the original result."""
    from repro.machine import AddressSpace, CPU, PROT_RX, PROT_RW
    from repro.machine.cpu import ExecState, HOST_RETURN_ADDRESS
    from repro.machine.registers import RegisterFile

    def build(a):
        a.mov_ri("rax", 0)
        a.mov_ri("rcx", 0)
        a.label("loop")
        a.add_rr("rax", "rcx")
        a.add_ri("rcx", 1)
        a.cmp_ri("rcx", 10)
        a.jne("loop")
        a.ret()
    original = assemble_padded(build, pad_slots=9)
    diversified = _diversify_function(original, "sum", seed=7)
    assert diversified is not None and diversified != original

    def run(code):
        space = AddressSpace()
        space.mmap(0x40_0000, 4096, prot=PROT_RX)
        space.page_at(0x40_0000).data[:len(code)] = code
        space.mmap(0x50_0000, 4096, prot=PROT_RW)
        cpu = CPU(space)
        state = ExecState(RegisterFile())
        state.regs.rip = 0x40_0000
        state.regs.set("rsp", 0x50_0000 + 4096 - 16)
        cpu._push(state, HOST_RETURN_ADDRESS)
        cpu.run(state, max_steps=1000)
        return state.regs.get("rax")
    assert run(original) == run(diversified) == sum(range(10))


def test_no_slack_means_no_diversification():
    def build(a):
        a.mov_ri("rax", 5)
        a.ret()
    body = assemble_padded(build, pad_slots=0)
    assert _diversify_function(body, "tight", seed=1) is None


def test_diversify_text_reports_moved_functions(kernel):
    server = MinxServer(kernel)
    server.start()
    _new_text, moved = diversify_text(server.loaded, server.process.space,
                                      seed=3)
    assert moved["minx_http_process_request_line"] > 0
    assert moved["minx_ctx_restore"] > 0       # the padded gadget pool


def test_seeds_give_different_layouts(kernel):
    server = MinxServer(kernel)
    server.start()
    t1, _ = diversify_text(server.loaded, server.process.space, seed=1)
    t2, _ = diversify_text(server.loaded, server.process.space, seed=2)
    assert t1 != t2


# -- end-to-end ------------------------------------------------------------------------

def test_aligned_strategy_serves_correctly(kernel):
    server = make_server(kernel)
    result = ApacheBench(kernel, server).run(6)
    assert result.status_counts == {200: 6}
    assert not server.alarms.triggered
    # no pointer relocation happened at all
    report = server.monitor.last_variant_report
    assert report.shift == 0
    assert report.relocation.total_pointers == 0


def test_aligned_strategy_is_cheaper_than_shift(kernel):
    shift_server = MinxServer(Kernel(), smvx=True,
                              protect="minx_http_process_request_line",
                              variant_strategy="shift")
    shift_server.start()
    aligned_server = make_server(kernel)
    shift_cost = ApacheBench(shift_server.kernel,
                             shift_server).run(10).busy_per_request_ns
    aligned_cost = ApacheBench(kernel, server=aligned_server
                               ).run(10).busy_per_request_ns
    assert aligned_cost < shift_cost          # no Table 2 scan costs


def test_aligned_strategy_detects_the_exploit(kernel):
    """The CVE's gadget addresses hit trap slots in the follower's
    diversified text — detection without any address-space shift."""
    server = make_server(kernel)
    outcome = run_exploit(server)
    assert outcome.attack_detected_and_blocked
    assert not outcome.directory_created
    report = server.alarms.alarms[0]
    assert "Invalid" in report.detail or "invalid" in report.detail


def test_aligned_follower_memory_is_private(kernel):
    server = make_server(kernel)
    monitor = server.monitor
    thread = server.process.main_thread()
    conn = server.process.heap.malloc(128)
    monitor.region_start(thread, "minx_http_process_request_line", [conn])
    variant = monitor.region.variant
    fspace = variant.thread.space
    # same numeric address, different page object, same content
    leader_page = server.process.space.page_at(conn)
    follower_page = fspace.page_at(conn)
    assert leader_page is not follower_page
    assert bytes(leader_page.data) == bytes(follower_page.data)
    # writes do not leak across the views
    fspace.write_word(conn, 0xDEAD, privileged=True)
    assert server.process.space.read_word(conn, privileged=True) != 0xDEAD
    from repro.core import DivergenceKind, DivergenceReport
    monitor.abort_region(DivergenceReport(DivergenceKind.MONITOR,
                                          detail="test teardown"))


def test_invalid_strategy_rejected(kernel):
    from repro.core import SmvxMonitor
    from repro.errors import MvxSetupError
    server = MinxServer(kernel)
    with pytest.raises(MvxSetupError):
        SmvxMonitor(server.process, variant_strategy="bogus")


def test_reuse_flag_ignored_under_aligned(kernel):
    """reuse_variants only applies to the shift strategy; under aligned it
    is quietly disabled (creation is already cheap)."""
    server = MinxServer(kernel, smvx=True,
                        protect="minx_http_process_request_line",
                        variant_strategy="aligned", reuse_variants=True)
    server.start()
    assert server.monitor.reuse_variants is False
    result = ApacheBench(kernel, server).run(3)
    assert result.status_counts == {200: 3}
    assert not server.monitor._cached_variants


def test_aligned_diversification_is_deterministic(kernel):
    s1 = MinxServer(Kernel(), smvx=True, variant_strategy="aligned",
                    protect="minx_http_process_request_line", name="d1")
    s2 = MinxServer(Kernel(), smvx=True, variant_strategy="aligned",
                    protect="minx_http_process_request_line", name="d2")
    s1.start()
    s2.start()
    t1, m1 = diversify_text(s1.loaded, s1.process.space, seed=9)
    t2, m2 = diversify_text(s2.loaded, s2.process.space, seed=9)
    assert t1 == t2 and m1 == m2
