"""Scheduler unit tests: park/wake, quanta, determinism, cancellation.

The scheduler contract (docs/architecture.md §11): every interleaving
decision is a pure function of machine state, blocking happens via
horizon closures, preemption is charged in virtual time only, and
cancellation is cooperative (no exceptions are thrown into tasks).
"""

import pytest

from repro.kernel import Kernel
from repro.kernel.faults import FaultSchedule
from repro.kernel.sched import (
    DEFAULT_QUANTUM_NS,
    RunState,
    Scheduler,
    SchedulerError,
    TaskCancelled,
)


@pytest.fixture
def sched(kernel):
    return Scheduler(kernel, cores=2)


def test_spawn_and_run_to_completion(kernel, sched):
    log = []
    task = sched.spawn("t", lambda: log.append("ran"))
    assert task.state is RunState.RUNNABLE
    status = sched.run_until(lambda: task.done)
    assert status == "done"
    assert log == ["ran"]
    assert task.state is RunState.ZOMBIE
    assert task.error is None


def test_run_until_idle_when_all_tasks_finish(kernel, sched):
    sched.spawn("a", lambda: None)
    sched.spawn("b", lambda: None)
    assert sched.run_until() == "idle"
    assert all(t.done for t in sched.tasks)


def test_one_scheduler_per_kernel(kernel, sched):
    with pytest.raises(SchedulerError):
        Scheduler(kernel)


def test_park_wakes_on_horizon_produced_by_another_task(kernel, sched):
    box = {"ready_at": None}
    woke = []

    def sleeper():
        woke.append(sched.park(horizon=lambda: box["ready_at"]))

    def producer():
        box["ready_at"] = kernel.clock.monotonic_ns

    sleeper_task = sched.spawn("sleeper", sleeper)
    sched.spawn("producer", producer)
    assert sched.run_until(lambda: sleeper_task.done) == "done"
    assert woke == [True]
    assert sched.stats.parks == 1
    assert sched.stats.wakeups == 1


def test_park_deadline_times_out_and_advances_clock(kernel, sched):
    deadline = kernel.clock.monotonic_ns + 5_000_000
    woke = []

    task = sched.spawn(
        "t", lambda: woke.append(
            sched.park(horizon=lambda: None, deadline_ns=deadline)))
    assert sched.run_until(lambda: task.done) == "done"
    # the timeout wake is the idle-advance path: nothing was runnable,
    # so the driver jumped the clock to the deadline
    assert woke == [False]
    assert kernel.clock.monotonic_ns >= deadline
    assert sched.stats.idle_advances >= 1


def test_unwakeable_park_is_a_stall_not_a_hang(kernel, sched):
    task = sched.spawn("t", lambda: sched.park(horizon=lambda: None))
    assert sched.run_until(lambda: task.done) == "stall"
    assert task.state is RunState.BLOCKED
    # cancellation is the harness's recovery path: the park reports
    # False and the task exits
    sched.cancel(task)
    assert sched.run_until(lambda: task.done) == "done"


def test_blocked_state_mirrors_into_task_table(kernel, sched):
    parent = kernel.tasks.spawn("parent")
    pid = kernel.tasks.spawn("child", parent)
    observed = []

    def body():
        sched.park(horizon=lambda: kernel.clock.monotonic_ns)

    task = sched.spawn("child", body, pid=pid)
    assert kernel.tasks.tasks[pid].state == "runnable"

    def watch():
        observed.append(kernel.tasks.tasks[pid].state)
        return task.done

    sched.run_until(watch)
    assert "blocked" in observed or "running" in observed
    # the scheduler exit flows into TaskManager.exit: the record is a
    # zombie until the parent reaps it
    assert kernel.tasks.tasks[pid].state == "zombie"
    assert kernel.tasks.wait(parent) == (pid, 0)


def test_yield_now_round_robins_fifo(kernel, sched):
    order = []

    def make(name):
        def body():
            for _ in range(3):
                order.append(name)
                sched.yield_now()
        return body

    a = sched.spawn("a", make("a"))
    b = sched.spawn("b", make("b"))
    sched.run_until(lambda: a.done and b.done)
    assert order == ["a", "b", "a", "b", "a", "b"]


def test_quantum_preemption_interleaves_core_bound_tasks(kernel, sched):
    order = []

    def make(name, core):
        def body():
            for _ in range(3):
                order.append(name)
                sched.cores[core].advance_ns(DEFAULT_QUANTUM_NS)
                sched.maybe_preempt()
        return body

    # both tasks on core 0: each burns a full quantum then hits the
    # preemption point, so they strictly alternate
    a = sched.spawn("a", make("a", 0), core=0)
    b = sched.spawn("b", make("b", 0), core=0)
    sched.run_until(lambda: a.done and b.done)
    assert order == ["a", "b", "a", "b", "a", "b"]
    assert sched.stats.preemptions >= 4
    assert sched.stats.context_switches >= 4


def test_preemption_needs_a_full_quantum(kernel, sched):
    def body():
        sched.cores[0].advance_ns(DEFAULT_QUANTUM_NS / 4)
        sched.maybe_preempt()

    task = sched.spawn("t", body, core=0)
    sched.run_until(lambda: task.done)
    assert sched.stats.preemptions == 0


def test_context_switch_charged_only_on_real_switch(kernel, sched):
    def body():
        for _ in range(4):
            sched.cores[0].advance_ns(10)
            sched.yield_now()

    task = sched.spawn("solo", body, core=0)
    sched.run_until(lambda: task.done)
    # re-dispatching the same task is not a context switch
    assert sched.stats.context_switches == 0
    assert sched.cores[0].local_ns == pytest.approx(40)


def test_dispatch_prefers_lowest_local_time_core(kernel, sched):
    order = []
    sched.cores[0].local_ns = 1_000_000        # core 0 is far ahead

    a = sched.spawn("on0", lambda: order.append("on0"), core=0)
    b = sched.spawn("on1", lambda: order.append("on1"), core=1)
    sched.run_until(lambda: a.done and b.done)
    assert order == ["on1", "on0"]


def test_coreless_tasks_dispatch_before_core_bound(kernel, sched):
    order = []
    a = sched.spawn("core0", lambda: order.append("core0"), core=0)
    b = sched.spawn("host", lambda: order.append("host"))
    sched.run_until(lambda: a.done and b.done)
    assert order == ["host", "core0"]


def test_core_clock_never_goes_backwards(kernel, sched):
    core = sched.cores[0]
    core.advance_ns(500)
    with pytest.raises(ValueError):
        core.advance_ns(-1)
    core.catch_up(100)          # older instant: no-op
    assert core.local_ns == 500
    core.catch_up(900)
    assert core.local_ns == 900


def test_core_advance_drags_global_clock_at_frontier_only(kernel, sched):
    start = kernel.clock.monotonic_ns
    sched.cores[0].advance_ns(10_000)
    assert kernel.clock.monotonic_ns == pytest.approx(start + 10_000)
    # core 1 catching up below the frontier does not move global time
    sched.cores[1].advance_ns(4_000)
    assert kernel.clock.monotonic_ns == pytest.approx(start + 10_000)


def test_cancel_wakes_blocked_task_with_false(kernel, sched):
    woke = []

    def body():
        woke.append(sched.park(horizon=lambda: None))
        # cooperative contract: later parks return False immediately
        woke.append(sched.park(horizon=lambda: None))

    task = sched.spawn("t", body)
    sched.run_until(lambda: task.state is RunState.BLOCKED,
                    max_decisions=100)
    sched.cancel(task)
    assert sched.run_until(lambda: task.done) == "done"
    assert woke == [False, False]
    assert task.error is None


def test_cancelled_task_never_blocks_again(kernel, sched):
    parks = []
    holder = {}

    def body():
        while not holder["task"].cancelled:
            sched.yield_now()
        parks.append(sched.park(horizon=lambda: None, deadline_ns=None))

    task = holder["task"] = sched.spawn("t", body)
    # let it run a few slices before cancelling, so cancellation lands
    # on a live (not merely spawned) task
    sched.run_until(lambda: sched.stats.dispatches >= 2, max_decisions=50)
    sched.cancel(task)
    assert sched.run_until(lambda: task.done) == "done"
    assert parks == [False]
    assert sched.stats.parks == 0          # the park never blocked


def test_task_cancelled_exception_is_a_clean_exit(kernel, sched):
    def body():
        raise TaskCancelled()

    task = sched.spawn("t", body)
    assert sched.run_until(lambda: task.done) == "done"
    assert task.error is None
    assert task.state is RunState.ZOMBIE


def test_task_error_propagates_to_the_driver(kernel, sched):
    def body():
        raise ValueError("guest bug")

    task = sched.spawn("t", body)
    with pytest.raises(ValueError, match="guest bug"):
        sched.run_until(lambda: task.done)
    assert task.done


def test_run_until_rejects_call_from_inside_a_task(kernel, sched):
    task = sched.spawn("t", lambda: sched.run_until())
    with pytest.raises(SchedulerError):
        sched.run_until(lambda: task.done)


def test_park_rejects_call_from_outside_a_task(kernel, sched):
    with pytest.raises(SchedulerError):
        sched.park()
    with pytest.raises(SchedulerError):
        sched.yield_now()


def test_run_until_decision_budget_fails_loudly(kernel, sched):
    def body():
        for _ in range(50):
            sched.yield_now()

    task = sched.spawn("t", body)
    with pytest.raises(SchedulerError, match="exceeded"):
        sched.run_until(lambda: task.done, max_decisions=10)
    # the budget failure is recoverable: a fresh run finishes the task
    assert sched.run_until(lambda: task.done) == "done"


def test_spurious_wake_fault_schedule(kernel, sched):
    kernel.faults.install(FaultSchedule(name="sw", spurious_wake_p=1.0))
    woke = []

    task = sched.spawn(
        "t", lambda: woke.append(sched.park(horizon=lambda: None)))
    assert sched.run_until(lambda: task.done) == "done"
    # the injected wake reports readiness (True) like a kernel-level
    # spurious epoll return; callers must re-check actual state
    assert woke == [True]
    assert sched.stats.spurious_wakeups == 1
    assert kernel.faults.injected_by_kind.get("spurious_wake") == 1
    kernel.faults.install(None)


def test_decision_stream_is_deterministic():
    def one_run():
        kernel = Kernel(seed="sched-det")
        sched = Scheduler(kernel, cores=2)
        box = {"ready_at": None}

        def sleeper():
            sched.park(horizon=lambda: box["ready_at"])
            sched.cores[0].advance_ns(1234)

        def producer():
            for _ in range(3):
                sched.cores[1].advance_ns(777)
                sched.yield_now()
            box["ready_at"] = kernel.clock.monotonic_ns

        a = sched.spawn("sleeper", sleeper, core=0)
        b = sched.spawn("producer", producer, core=1)
        sched.run_until(lambda: a.done and b.done)
        sched.join()
        return (sched.digest, sched.decisions, sched.stats.as_dict(),
                [c.local_ns for c in sched.cores],
                kernel.clock.monotonic_ns)

    assert one_run() == one_run()


def test_decision_hook_sees_the_full_stream(kernel, sched):
    seen = []
    sched.decision_hook = lambda kind, name, detail: \
        seen.append((kind, name, detail["core"]))
    task = sched.spawn("t", lambda: sched.yield_now())
    sched.run_until(lambda: task.done)
    kinds = [k for k, _, _ in seen]
    assert kinds[0] == "spawn"
    assert "dispatch" in kinds and "yield" in kinds and "exit" in kinds
    assert all(name == "t" for _, name, _ in seen)
    assert seen == [(k, n, -1) for k, n, _ in seen]   # coreless task


def test_snapshot_shape(kernel, sched):
    task = sched.spawn("t", lambda: None)
    sched.run_until(lambda: task.done)
    snap = sched.snapshot()
    assert snap["decisions"] == sched.decisions
    assert snap["digest"] == sched.digest
    assert snap["tasks"] == [("t", "zombie")]
    assert len(snap["cores"]) == 2


# -- idle hooks (chained, not clobbered) --------------------------------------


def test_idle_hooks_chain_and_all_run(kernel, sched):
    """Regression: registering a second idle hook must not silently
    replace the first (DistributedSmvx + sim harness coexisting)."""
    box = {"ready": None}
    ran = {"pump": 0, "probe": 0}

    def pump():                      # makes progress: wakes the sleeper
        ran["pump"] += 1
        box["ready"] = kernel.clock.monotonic_ns
        return True

    def probe():                     # observes idleness, no progress
        ran["probe"] += 1
        return False

    sched.add_idle_hook(probe)
    sched.add_idle_hook(pump)
    task = sched.spawn(
        "sleeper", lambda: sched.park(horizon=lambda: box["ready"]))
    assert sched.run_until(lambda: task.done) == "done"
    assert ran["pump"] >= 1
    assert ran["probe"] >= 1         # the first hook still ran


def test_legacy_idle_hook_property_appends_and_clears(kernel, sched):
    first, second = (lambda: False), (lambda: False)
    sched.idle_hook = first
    sched.idle_hook = second         # old clobbering API now chains
    assert sched.idle_hooks == [first, second]
    assert sched.idle_hook is first
    sched.idle_hook = second         # re-assignment stays idempotent
    assert sched.idle_hooks == [first, second]
    sched.idle_hook = None
    assert sched.idle_hooks == []
    assert sched.idle_hook is None


def test_remove_idle_hook(kernel, sched):
    hook = lambda: False
    sched.add_idle_hook(hook)
    sched.remove_idle_hook(hook)
    sched.remove_idle_hook(hook)     # removing twice is a no-op
    assert sched.idle_hooks == []


def test_apply_clock_skew_offsets_cores(kernel, sched):
    base = [core.local_ns for core in sched.cores]
    sched.apply_clock_skew([0, 5_000])
    assert sched.cores[0].local_ns == base[0]
    assert sched.cores[1].local_ns == base[1] + 5_000
    with pytest.raises(ValueError):
        sched.apply_clock_skew([-1, 0])
