"""Integration tests for the kernel syscall surface."""

import struct

import pytest

from repro.kernel import Kernel
from repro.kernel.epoll_impl import (
    EPOLL_CTL_ADD,
    EPOLL_CTL_DEL,
    EPOLLHUP,
    EPOLLIN,
)
from repro.kernel.errno_codes import Errno
from repro.kernel.vfs import O_CREAT, O_RDONLY, O_RDWR, O_WRONLY

from tests.kernel.conftest import FakeProc


def sys(kernel, proc, name, *args):
    return kernel.syscall(proc, name, *args)


# -- files ----------------------------------------------------------------------

def test_open_read_file(kernel, proc):
    kernel.vfs.write_file("/var/www/page.html", b"hello world")
    fd = sys(kernel, proc, "open", proc.put_cstring("/var/www/page.html"),
             O_RDONLY)
    assert fd >= 3
    buf = proc.buffer()
    n = sys(kernel, proc, "read", fd, buf, 5)
    assert n == 5
    assert proc.space.read(buf, 5, privileged=True) == b"hello"
    # cursor advanced
    n = sys(kernel, proc, "read", fd, buf, 64)
    assert n == 6
    assert sys(kernel, proc, "close", fd) == 0
    assert sys(kernel, proc, "close", fd) == -Errno.EBADF


def test_open_missing_file(kernel, proc):
    assert sys(kernel, proc, "open", proc.put_cstring("/nope"),
               O_RDONLY) == -Errno.ENOENT


def test_open_creat_and_write(kernel, proc):
    fd = sys(kernel, proc, "open", proc.put_cstring("/tmp/out.log"),
             O_WRONLY | O_CREAT)
    buf = proc.buffer()
    proc.space.write(buf, b"LOG", privileged=True)
    assert sys(kernel, proc, "write", fd, buf, 3) == 3
    assert kernel.vfs.read_file("/tmp/out.log") == b"LOG"


def test_writev_gathers(kernel, proc):
    fd = sys(kernel, proc, "open", proc.put_cstring("/tmp/v.log"),
             O_WRONLY | O_CREAT)
    b1, b2 = proc.buffer(0), proc.buffer(64)
    proc.space.write(b1, b"head:", privileged=True)
    proc.space.write(b2, b"body", privileged=True)
    iov = proc.buffer(128)
    proc.space.write(iov, struct.pack("<4q", b1, 5, b2, 4), privileged=True)
    assert sys(kernel, proc, "writev", fd, iov, 2) == 9
    assert kernel.vfs.read_file("/tmp/v.log") == b"head:body"


def test_stat_and_fstat(kernel, proc):
    kernel.vfs.write_file("/tmp/s", b"12345", mtime_s=9)
    statbuf = proc.buffer()
    assert sys(kernel, proc, "stat", proc.put_cstring("/tmp/s"), statbuf) == 0
    mode, size, mtime = struct.unpack(
        "<3q", proc.space.read(statbuf, 24, privileged=True))
    assert size == 5 and mtime == 9
    fd = sys(kernel, proc, "open", proc.put_cstring("/tmp/s"), O_RDONLY)
    assert sys(kernel, proc, "fstat", fd, statbuf) == 0
    _, size2, _ = struct.unpack(
        "<3q", proc.space.read(statbuf, 24, privileged=True))
    assert size2 == 5


def test_mkdir_and_unlink(kernel, proc):
    assert sys(kernel, proc, "mkdir", proc.put_cstring("/tmp/d")) == 0
    assert kernel.vfs.is_dir("/tmp/d")
    kernel.vfs.write_file("/tmp/d/f", b"")
    assert sys(kernel, proc, "unlink", proc.put_cstring("/tmp/d/f")) == 0


def test_urandom_read(kernel, proc):
    fd = sys(kernel, proc, "open", proc.put_cstring("/dev/urandom"), O_RDONLY)
    buf = proc.buffer()
    assert sys(kernel, proc, "read", fd, buf, 16) == 16
    data = proc.space.read(buf, 16, privileged=True)
    assert data != b"\x00" * 16


def test_proc_self_maps(kernel, proc):
    fd = sys(kernel, proc, "open", proc.put_cstring("/proc/self/maps"),
             O_RDONLY)
    buf = proc.buffer()
    n = sys(kernel, proc, "read", fd, buf, 4096)
    text = proc.space.read(buf, n, privileged=True).decode()
    assert "scratch" in text
    assert "rw-p" in text


def test_gettimeofday(kernel, proc):
    kernel.clock.advance_ns(3_000_000)
    tv = proc.buffer()
    assert sys(kernel, proc, "gettimeofday", tv) == 0
    sec, usec = struct.unpack("<2q",
                              proc.space.read(tv, 16, privileged=True))
    assert sec == kernel.clock.epoch_s
    assert usec == 3000


def test_lseek(kernel, proc):
    kernel.vfs.write_file("/tmp/s", b"abcdef")
    fd = sys(kernel, proc, "open", proc.put_cstring("/tmp/s"), O_RDONLY)
    assert sys(kernel, proc, "lseek", fd, 3, 0) == 3
    buf = proc.buffer()
    assert sys(kernel, proc, "read", fd, buf, 2) == 2
    assert proc.space.read(buf, 2, privileged=True) == b"de"


# -- sockets -----------------------------------------------------------------------

def test_listen_accept_recv_send(kernel, proc):
    listen_fd = sys(kernel, proc, "listen_on", 8080, 16)
    assert listen_fd >= 3
    client = kernel.network.connect(8080)
    assert not isinstance(client, int)
    conn_fd = sys(kernel, proc, "accept4", listen_fd, 0)
    assert conn_fd > listen_fd

    client.send(b"GET / HTTP/1.1\r\n\r\n")
    buf = proc.buffer()
    n = sys(kernel, proc, "recvfrom", conn_fd, buf, 4096, 0)
    assert n == 18

    proc.space.write(buf, b"HTTP/1.1 200 OK\r\n", privileged=True)
    assert sys(kernel, proc, "sendto", conn_fd, buf, 17, 0) == 17
    assert client.recv_wait(64) == b"HTTP/1.1 200 OK\r\n"


def test_latency_delays_delivery(kernel, proc):
    listen_fd = sys(kernel, proc, "listen_on", 9000)
    client = kernel.network.connect(9000)
    conn_fd = sys(kernel, proc, "accept4", listen_fd, 0)
    t0 = kernel.clock.monotonic_ns
    client.send(b"x")
    # recvfrom blocks by advancing virtual time past the one-way latency
    n = sys(kernel, proc, "recvfrom", conn_fd, proc.buffer(), 16, 0)
    assert n == 1
    assert kernel.clock.monotonic_ns - t0 >= kernel.network.latency_ns


def test_connect_refused_without_listener(kernel):
    assert kernel.network.connect(1) == -Errno.ECONNREFUSED


def test_port_collision(kernel, proc):
    assert sys(kernel, proc, "listen_on", 8080) >= 0
    assert sys(kernel, proc, "listen_on", 8080) == -Errno.EADDRINUSE


def test_recv_after_peer_close_gives_eof(kernel, proc):
    listen_fd = sys(kernel, proc, "listen_on", 8081)
    client = kernel.network.connect(8081)
    conn_fd = sys(kernel, proc, "accept4", listen_fd, 0)
    client.send(b"bye")
    client.close()
    buf = proc.buffer()
    assert sys(kernel, proc, "recvfrom", conn_fd, buf, 16, 0) == 3
    assert sys(kernel, proc, "recvfrom", conn_fd, buf, 16, 0) == 0  # EOF


def test_setsockopt_getsockopt_roundtrip(kernel, proc):
    listen_fd = sys(kernel, proc, "listen_on", 8082)
    client = kernel.network.connect(8082)
    conn_fd = sys(kernel, proc, "accept4", listen_fd, 0)
    val = proc.buffer()
    proc.space.write(val, struct.pack("<q", 1), privileged=True)
    assert sys(kernel, proc, "setsockopt", conn_fd, 1, 9, val, 8) == 0
    out, outlen = proc.buffer(64), proc.buffer(128)
    assert sys(kernel, proc, "getsockopt", conn_fd, 1, 9, out, outlen) == 0
    assert struct.unpack("<q",
                         proc.space.read(out, 8, privileged=True))[0] == 1


def test_ioctl_fionread(kernel, proc):
    listen_fd = sys(kernel, proc, "listen_on", 8083)
    client = kernel.network.connect(8083)
    conn_fd = sys(kernel, proc, "accept4", listen_fd, 0)
    client.send(b"12345")
    kernel.clock.advance_ns(kernel.network.latency_ns)
    arg = proc.buffer()
    assert sys(kernel, proc, "ioctl", conn_fd, Kernel.FIONREAD, arg) == 0
    assert proc.space.read_word(arg, privileged=True) == 5


def test_sendfile_from_file_to_socket(kernel, proc):
    kernel.vfs.write_file("/var/www/f.bin", b"A" * 100)
    file_fd = sys(kernel, proc, "open", proc.put_cstring("/var/www/f.bin"),
                  O_RDONLY)
    listen_fd = sys(kernel, proc, "listen_on", 8084)
    client = kernel.network.connect(8084)
    conn_fd = sys(kernel, proc, "accept4", listen_fd, 0)
    off = proc.buffer()
    proc.space.write_word(off, 10, privileged=True)
    assert sys(kernel, proc, "sendfile", conn_fd, file_fd, off, 50) == 50
    assert proc.space.read_word(off, privileged=True) == 60
    assert client.recv_wait(100) == b"A" * 50


# -- epoll ----------------------------------------------------------------------------

def test_epoll_lifecycle(kernel, proc):
    listen_fd = sys(kernel, proc, "listen_on", 8090)
    epfd = sys(kernel, proc, "epoll_create1", 0)
    ev = proc.buffer()
    proc.space.write(ev, struct.pack("<2q", EPOLLIN, listen_fd),
                     privileged=True)
    assert sys(kernel, proc, "epoll_ctl", epfd, EPOLL_CTL_ADD, listen_fd,
               ev) == 0

    events = proc.buffer(256)
    # nothing pending: returns 0 without blocking forever
    assert sys(kernel, proc, "epoll_wait", epfd, events, 8, 0) == 0

    kernel.network.connect(8090)
    # in-flight connection: epoll_wait advances the clock to its arrival
    n = sys(kernel, proc, "epoll_wait", epfd, events, 8, -1)
    assert n == 1
    got_events, got_data = struct.unpack(
        "<2q", proc.space.read(events, 16, privileged=True))
    assert got_events & EPOLLIN
    assert got_data == listen_fd


def test_epoll_data_carries_opaque_pointer(kernel, proc):
    """epoll_data is a raw 64-bit union; a pointer stored there comes back
    bit-identical (this is what forces sMVX's special emulation)."""
    listen_fd = sys(kernel, proc, "listen_on", 8091)
    epfd = sys(kernel, proc, "epoll_create1", 0)
    fake_ptr = 0x7F12_3456_7008
    ev = proc.buffer()
    proc.space.write(ev, struct.pack("<2q", EPOLLIN, fake_ptr),
                     privileged=True)
    sys(kernel, proc, "epoll_ctl", epfd, EPOLL_CTL_ADD, listen_fd, ev)
    kernel.network.connect(8091)
    events = proc.buffer(256)
    assert sys(kernel, proc, "epoll_wait", epfd, events, 8, -1) == 1
    _, data = struct.unpack("<2q",
                            proc.space.read(events, 16, privileged=True))
    assert data == fake_ptr


def test_epoll_hup_on_peer_close(kernel, proc):
    listen_fd = sys(kernel, proc, "listen_on", 8092)
    client = kernel.network.connect(8092)
    conn_fd = sys(kernel, proc, "accept4", listen_fd, 0)
    epfd = sys(kernel, proc, "epoll_create1", 0)
    ev = proc.buffer()
    proc.space.write(ev, struct.pack("<2q", EPOLLIN, conn_fd),
                     privileged=True)
    sys(kernel, proc, "epoll_ctl", epfd, EPOLL_CTL_ADD, conn_fd, ev)
    client.close()
    events = proc.buffer(256)
    assert sys(kernel, proc, "epoll_wait", epfd, events, 8, -1) == 1
    got_events, _ = struct.unpack(
        "<2q", proc.space.read(events, 16, privileged=True))
    assert got_events & EPOLLHUP


def test_epoll_ctl_del_and_close_forgets(kernel, proc):
    listen_fd = sys(kernel, proc, "listen_on", 8093)
    epfd = sys(kernel, proc, "epoll_create1", 0)
    ev = proc.buffer()
    proc.space.write(ev, struct.pack("<2q", EPOLLIN, listen_fd),
                     privileged=True)
    sys(kernel, proc, "epoll_ctl", epfd, EPOLL_CTL_ADD, listen_fd, ev)
    assert sys(kernel, proc, "epoll_ctl", epfd, EPOLL_CTL_DEL, listen_fd,
               0) == 0
    assert sys(kernel, proc, "epoll_ctl", epfd, EPOLL_CTL_DEL, listen_fd,
               0) == -Errno.ENOENT


# -- accounting -------------------------------------------------------------------------

def test_syscalls_are_counted_per_process(kernel, proc):
    other = FakeProc(kernel, "other")
    sys(kernel, proc, "getpid")
    sys(kernel, proc, "getpid")
    sys(kernel, other, "getpid")
    assert kernel.syscall_count(proc.pid) == 2
    assert kernel.syscall_count(other.pid) == 1
    assert kernel.syscall_breakdown(proc.pid) == {"getpid": 2}


def test_syscalls_charge_virtual_time(kernel, proc):
    t0 = kernel.clock.monotonic_ns
    c0 = proc.counter.total_ns
    sys(kernel, proc, "getpid")
    per_call = (2 * kernel.costs.kernel_crossing_ns
                + kernel.costs.syscall_work_ns)
    assert kernel.clock.monotonic_ns - t0 == per_call
    assert proc.counter.total_ns - c0 == per_call


def test_clone_and_fork_costs(kernel, proc):
    t0 = kernel.clock.monotonic_ns
    tid = sys(kernel, proc, "clone", 0)
    assert tid > 0
    clone_elapsed = kernel.clock.monotonic_ns - t0
    assert clone_elapsed >= kernel.costs.clone_thread_ns

    t1 = kernel.clock.monotonic_ns
    child = sys(kernel, proc, "fork")
    assert child > 0
    fork_elapsed = kernel.clock.monotonic_ns - t1
    assert fork_elapsed >= kernel.costs.fork_base_ns
    assert fork_elapsed > clone_elapsed  # the Table 2 ordering


def test_unknown_syscall_is_enosys(kernel, proc):
    assert sys(kernel, proc, "bogus") == -Errno.ENOSYS


def test_syscall_by_number_roundtrip(kernel, proc):
    from repro.kernel.kernel import SYSCALL_NUMBERS
    assert kernel.syscall_by_number(proc, SYSCALL_NUMBERS["getpid"]) == proc.pid
    assert kernel.syscall_by_number(proc, 999) == -Errno.ENOSYS
