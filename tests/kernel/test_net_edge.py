"""Edge cases in the loopback network and epoll layers."""

import pytest

from repro.kernel import Kernel
from repro.kernel.errno_codes import Errno
from repro.kernel.net import Listener, Network, Socket


@pytest.fixture
def kernel():
    return Kernel()


def test_backlog_overflow_refuses(kernel):
    listener = kernel.network.listen(9000, backlog=2)
    assert isinstance(listener, Listener)
    assert not isinstance(kernel.network.connect(9000), int)
    assert not isinstance(kernel.network.connect(9000), int)
    assert kernel.network.connect(9000) == -Errno.ECONNREFUSED


def test_send_after_close_is_ebadf(kernel):
    kernel.network.listen(9001)
    sock = kernel.network.connect(9001)
    sock.close()
    assert sock.send(b"x") == -Errno.EBADF
    assert sock.recv(4) == -Errno.EBADF


def test_send_to_closed_peer_is_epipe(kernel):
    listener = kernel.network.listen(9002)
    client = kernel.network.connect(9002)
    kernel.clock.advance_ns(kernel.network.latency_ns)
    server_end = listener.accept()
    assert isinstance(server_end, Socket)
    server_end.close()
    # the FIN rides the latency path: a send racing it still succeeds,
    # EPIPE only once the close has become visible (TCP-faithful)
    assert client.send(b"x") == 1
    kernel.clock.advance_ns(kernel.network.latency_ns)
    assert client.send(b"x") == -Errno.EPIPE


def test_delayed_segments_preserve_order(kernel):
    listener = kernel.network.listen(9003)
    client = kernel.network.connect(9003)
    kernel.clock.advance_ns(kernel.network.latency_ns)
    server_end = listener.accept()
    client.send(b"first")
    client.send(b"second", extra_delay_ns=5000)
    client.send(b"third", extra_delay_ns=10_000)
    out = b""
    for _ in range(3):
        chunk = server_end.recv(64)
        if isinstance(chunk, int):
            kernel.clock.advance_to(server_end.next_ready_at())
            chunk = server_end.recv(64)
        out += chunk
    assert out == b"firstsecondthird"


def test_partial_recv_keeps_remainder(kernel):
    listener = kernel.network.listen(9004)
    client = kernel.network.connect(9004)
    kernel.clock.advance_ns(kernel.network.latency_ns)
    server_end = listener.accept()
    client.send(b"abcdefgh")
    kernel.clock.advance_ns(kernel.network.latency_ns)
    assert server_end.recv(3) == b"abc"
    assert server_end.recv(100) == b"defgh"
    assert server_end.recv(4) == -Errno.EAGAIN


def test_listener_close_releases_port(kernel):
    listener = kernel.network.listen(9005)
    listener.close()
    again = kernel.network.listen(9005)
    assert isinstance(again, Listener)


def test_accept_before_arrival_is_eagain(kernel):
    listener = kernel.network.listen(9006)
    kernel.network.connect(9006)
    # connection is still in flight (latency not elapsed)
    assert listener.accept() == -Errno.EAGAIN
    kernel.clock.advance_ns(kernel.network.latency_ns)
    assert isinstance(listener.accept(), Socket)


def test_bytes_counters(kernel):
    listener = kernel.network.listen(9007)
    client = kernel.network.connect(9007)
    kernel.clock.advance_ns(kernel.network.latency_ns)
    server_end = listener.accept()
    client.send(b"12345")
    kernel.clock.advance_ns(kernel.network.latency_ns)
    server_end.recv(64)
    assert client.bytes_sent == 5
    assert server_end.bytes_received == 5


def test_custom_latency():
    from repro.kernel.clock import VirtualClock
    clock = VirtualClock()
    network = Network(clock, latency_ns=42_000)
    listener = network.listen(1)
    client = network.connect(1)
    t0 = clock.monotonic_ns
    client.send(b"x")
    kernel_end = listener
    assert client.peer.next_ready_at() == t0 + 42_000


def test_readable_tracks_clock(kernel):
    listener = kernel.network.listen(9008)
    client = kernel.network.connect(9008)
    kernel.clock.advance_ns(kernel.network.latency_ns)
    server_end = listener.accept()
    client.send(b"x")
    now = kernel.clock.monotonic_ns
    assert not server_end.readable(now)
    assert server_end.readable(now + kernel.network.latency_ns)
