"""Shared fixtures: a minimal 'process' handle the kernel can serve."""

import pytest

from repro.kernel import Kernel
from repro.machine import AddressSpace, PAGE_SIZE
from repro.machine.costs import CycleCounter


class FakeProc:
    """The minimal surface Kernel expects: pid, space, counter."""

    def __init__(self, kernel, name="fake"):
        self.space = AddressSpace(name)
        self.counter = CycleCounter()
        kernel.attach_counter(self.counter)
        self.pid = kernel.register_process(self, name)
        self.scratch = self.space.mmap(None, 16 * PAGE_SIZE, tag="scratch")

    def put_cstring(self, text: str) -> int:
        addr = self.scratch
        self.space.write(addr, text.encode() + b"\x00", privileged=True)
        return addr

    def buffer(self, offset: int = 4096) -> int:
        return self.scratch + offset


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def proc(kernel):
    return FakeProc(kernel)
