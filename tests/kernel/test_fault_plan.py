"""Explicit fault plans: validated specs, pinned injections, replay.

A probabilistic schedule samples faults from (seed, name, counter); a
*plan* schedule names exact events — ``{kind, nth}`` at the kind's
nth opportunity — so a failing draw sequence can be re-expressed as a
bisectable event list.  Contract under test:

* unknown fault kinds / malformed entries fail at construction,
* opportunity counters advance identically in both modes,
* ``plan_from_events`` turns a probabilistic run's ``injected_events``
  into a plan that replays the identical fault stream,
* link-kind entries apply only to their named link.
"""

import pytest

from repro.kernel.errno_codes import Errno
from repro.kernel.faults import (
    KNOWN_FAULT_KINDS,
    FaultPlane,
    FaultSchedule,
)


# -- construction-time validation (the ValueError gate) -----------------------

def test_plan_with_unknown_kind_is_rejected():
    with pytest.raises(ValueError, match="sigsegv"):
        FaultSchedule(name="t", plan=[{"kind": "sigsegv", "nth": 1}])


def test_plan_entry_without_nth_is_rejected():
    with pytest.raises(ValueError, match="nth"):
        FaultSchedule(name="t", plan=[{"kind": "eintr"}])


def test_plan_entry_with_bad_nth_is_rejected():
    for nth in (0, -3, "first", 1.5):
        with pytest.raises(ValueError, match="nth"):
            FaultSchedule(name="t",
                          plan=[{"kind": "eintr", "nth": nth}])


def test_from_dict_rejects_unknown_fields():
    raw = FaultSchedule(name="t").to_dict()
    raw["eintr_probability"] = 0.5          # typo'd field name
    with pytest.raises(ValueError, match="eintr_probability"):
        FaultSchedule.from_dict(raw)


def test_known_kinds_cover_both_planes():
    assert {"eintr", "short_read", "segment"} <= KNOWN_FAULT_KINDS
    assert {"link_delay", "link_drop"} <= KNOWN_FAULT_KINDS


def test_plan_schedule_round_trips_through_dict():
    schedule = FaultSchedule(name="t", backlog_cap=4, plan=[
        {"kind": "eintr", "nth": 2},
        {"kind": "short_read", "nth": 1, "granted": 3},
    ])
    again = FaultSchedule.from_dict(schedule.to_dict())
    assert again == schedule
    # probabilistic schedules don't serialize a plan key at all
    assert "plan" not in FaultSchedule(name="p").to_dict()


# -- plan execution -----------------------------------------------------------

def test_plan_injects_exactly_the_named_events():
    plane = FaultPlane(b"seed")
    plane.install(FaultSchedule(name="t", plan=[
        {"kind": "eintr", "nth": 2},
        {"kind": "short_read", "nth": 3, "granted": 4},
    ]))
    results = [plane.before_syscall("read") for _ in range(4)]
    assert results == [None, -Errno.EINTR, None, None]
    grants = [plane.clamp_io("read", 100) for _ in range(4)]
    assert grants == [100, 100, 4, 100]
    assert plane.injected_by_kind == {"eintr": 1, "short_read": 1}


def test_plan_granted_never_forges_eof():
    plane = FaultPlane(b"seed")
    plane.install(FaultSchedule(name="t", plan=[
        {"kind": "short_read", "nth": 1, "granted": 50},
        {"kind": "short_read", "nth": 2, "granted": 0},
    ]))
    assert plane.clamp_io("read", 10) == 10   # clamped to the request
    assert plane.clamp_io("read", 10) == 1    # never below one byte


def test_plan_from_events_replays_the_probabilistic_stream():
    schedule = FaultSchedule(name="t", eintr_p=0.3, short_read_p=0.4,
                             short_read_cap=5)
    original = FaultPlane(b"seed")
    original.install(schedule)
    trace = [(original.before_syscall("read"),
              original.clamp_io("read", 64)) for _ in range(48)]
    assert original.injected_total > 0

    plan = FaultSchedule.plan_from_events(original.injected_events)
    replay = FaultPlane(b"other-seed")       # the seed no longer matters
    replay.install(plan)
    replayed = [(replay.before_syscall("read"),
                 replay.clamp_io("read", 64)) for _ in range(48)]
    assert replayed == trace
    assert replay.injected_by_kind == original.injected_by_kind


def test_link_plan_entries_apply_only_to_their_link():
    plan = FaultSchedule(name="t", plan=[
        {"kind": "link_delay", "nth": 1, "target": "h0->h1",
         "extra_ns": 7_000},
    ])
    mine, other = FaultPlane(b"a"), FaultPlane(b"b")
    mine.install(plan)
    other.install(plan)
    assert mine.link_frame("h0->h1", 1, 100) == 7_000.0
    assert other.link_frame("h1->h0", 1, 100) == 0.0
    # a host plane sharing the plan never reaches link opportunities
    host = FaultPlane(b"c")
    host.install(plan)
    assert host.before_syscall("read") is None
    assert host.injected_total == 0
