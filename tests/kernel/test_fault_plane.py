"""Unit coverage for the deterministic fault-injection plane.

The plane's contract: every decision is a pure function of
(seed, schedule name, query sequence), injections never forge EOF, and
the kernel integration makes faults real counted syscall crossings.
"""

import pytest

from repro.kernel import Kernel
from repro.kernel.errno_codes import Errno
from repro.kernel.faults import (
    FaultPlane,
    FaultSchedule,
    battery,
)
from repro.kernel.net import Socket
from repro.kernel.vfs import O_CREAT, O_RDONLY, O_WRONLY

from tests.kernel.conftest import FakeProc


# -- the battery ----------------------------------------------------------------

def test_battery_has_at_least_five_named_schedules():
    schedules = battery()
    assert len(schedules) >= 5
    names = [s.name for s in schedules]
    assert len(names) == len(set(names))        # unique, addressable


def test_schedule_round_trips_through_dict():
    for schedule in battery():
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule


# -- determinism of the decision stream -----------------------------------------

def _decision_trace(plane, n=64):
    """The observable decision sequence for n read opportunities."""
    return [(plane.before_syscall("read"), plane.clamp_io("read", 100))
            for _ in range(n)]


def test_same_seed_same_schedule_same_decisions():
    schedule = FaultSchedule(name="t", eintr_p=0.3, short_read_p=0.3,
                             short_read_cap=7)
    a, b = FaultPlane(b"seed-A"), FaultPlane(b"seed-A")
    a.install(schedule)
    b.install(schedule)
    assert _decision_trace(a) == _decision_trace(b)
    assert a.digest == b.digest
    assert a.injected_total == b.injected_total > 0


def test_different_seed_different_decisions():
    schedule = FaultSchedule(name="t", eintr_p=0.3, short_read_p=0.3,
                             short_read_cap=7)
    a, b = FaultPlane(b"seed-A"), FaultPlane(b"seed-B")
    a.install(schedule)
    b.install(schedule)
    assert _decision_trace(a) != _decision_trace(b)


def test_different_schedule_name_different_stream():
    a, b = FaultPlane(b"seed"), FaultPlane(b"seed")
    a.install(FaultSchedule(name="first", eintr_p=0.3))
    b.install(FaultSchedule(name="second", eintr_p=0.3))
    assert [a.before_syscall("read") for _ in range(64)] != \
        [b.before_syscall("read") for _ in range(64)]


def test_install_resets_the_stream():
    schedule = FaultSchedule(name="t", eintr_p=0.4)
    plane = FaultPlane(b"seed")
    plane.install(schedule)
    first = _decision_trace(plane, 32)
    digest_first = plane.digest
    plane.install(schedule)                     # re-arm: counters reset
    assert plane.injected_total == 0
    assert _decision_trace(plane, 32) == first
    assert plane.digest == digest_first


def test_uninstall_disarms():
    plane = FaultPlane(b"seed")
    plane.install(FaultSchedule(name="t", eintr_p=1.0))
    assert plane.active
    plane.install(None)
    assert not plane.active
    assert plane.before_syscall("read") is None


# -- suspended() ----------------------------------------------------------------

def test_suspended_masks_and_restores():
    plane = FaultPlane(b"seed")
    plane.install(FaultSchedule(name="t", eintr_p=1.0))
    with plane.suspended():
        assert not plane.active
        assert plane.before_syscall("read") is None or not plane.active
    assert plane.active
    assert plane.before_syscall("read") == -Errno.EINTR


def test_suspended_nests():
    plane = FaultPlane(b"seed")
    plane.install(FaultSchedule(name="t", eintr_p=1.0))
    with plane.suspended():
        with plane.suspended():
            assert not plane.active
        assert not plane.active                 # still inside the outer
    assert plane.active


def test_suspended_without_schedule_stays_inert():
    plane = FaultPlane(b"seed")
    with plane.suspended():
        pass
    assert not plane.active


# -- clamps never forge EOF ------------------------------------------------------

def test_clamp_never_below_one_byte():
    plane = FaultPlane(b"seed")
    plane.install(FaultSchedule(name="t", short_read_p=1.0,
                                short_read_cap=0))
    for count in (1, 2, 100):
        assert plane.clamp_io("read", count) >= 1


def test_clamp_respects_cap_and_category():
    plane = FaultPlane(b"seed")
    plane.install(FaultSchedule(name="t", short_read_p=1.0,
                                short_read_cap=3))
    assert plane.clamp_io("read", 100) == 3
    assert plane.clamp_io("recvfrom", 100) == 3
    # a read-only schedule never touches writes
    assert plane.clamp_io("write", 100) == 100
    assert plane.clamp_io("sendto", 100) == 100


def test_clamp_leaves_small_transfers_alone():
    plane = FaultPlane(b"seed")
    plane.install(FaultSchedule(name="t", short_read_p=1.0,
                                short_read_cap=3))
    assert plane.clamp_io("read", 1) == 1
    assert plane.clamp_io("read", 2) == 2       # below cap: unchanged


# -- segmentation ----------------------------------------------------------------

def test_segment_delivery_reassembles_in_order():
    plane = FaultPlane(b"seed")
    plane.install(FaultSchedule(name="t", segment_bytes=5,
                                segment_extra_delay_ns=100))
    data = b"0123456789abcdef"
    pieces = plane.segment_delivery(data)
    assert b"".join(chunk for chunk, _ in pieces) == data
    assert all(len(chunk) <= 5 for chunk, _ in pieces)
    delays = [extra for _, extra in pieces]
    assert delays == [0, 100, 200, 300]         # strictly later-and-later


def test_segment_delivery_skips_small_payloads():
    plane = FaultPlane(b"seed")
    plane.install(FaultSchedule(name="t", segment_bytes=8))
    assert plane.segment_delivery(b"short") is None
    plane.install(FaultSchedule(name="t"))      # segmentation off
    assert plane.segment_delivery(b"0123456789abcdef") is None


# -- backlog -------------------------------------------------------------------

def test_backlog_limit():
    plane = FaultPlane(b"seed")
    plane.install(FaultSchedule(name="t", backlog_cap=2))
    assert plane.backlog_limit(128) == 2
    assert plane.backlog_limit(1) == 1
    plane.install(FaultSchedule(name="t"))
    assert plane.backlog_limit(128) == 128


# -- resource exhaustion ---------------------------------------------------------

def test_emfile_and_enomem_fire_on_every_nth_open():
    plane = FaultPlane(b"seed")
    plane.install(FaultSchedule(name="t", emfile_every=2, enomem_every=3))
    results = [plane.before_syscall("open") for _ in range(6)]
    assert results[1] == -Errno.EMFILE          # open #2
    assert results[2] == -Errno.ENOMEM          # open #3
    assert results[3] == -Errno.EMFILE          # open #4
    assert results[5] == -Errno.EMFILE          # open #6 (EMFILE wins)
    assert plane.injected_by_kind == {"emfile": 3, "enomem": 1}


# -- observability ---------------------------------------------------------------

def test_fault_hook_and_digest_observe_every_injection():
    plane = FaultPlane(b"seed")
    plane.install(FaultSchedule(name="t", emfile_every=1))
    seen = []
    plane.fault_hook = lambda kind, target, detail: \
        seen.append((kind, target, dict(detail)))
    before = plane.digest
    assert plane.before_syscall("open") == -Errno.EMFILE
    assert seen == [("emfile", "open", {"nth": 1})]
    assert plane.digest != before
    assert plane.injected_total == 1


# -- kernel integration ----------------------------------------------------------

@pytest.fixture
def kernel():
    return Kernel()


def test_kernel_plane_inert_by_default(kernel):
    assert not kernel.faults.active
    assert kernel.faults.schedule is None


def test_injected_eintr_surfaces_on_raw_syscalls(kernel):
    proc = FakeProc(kernel)
    kernel.vfs.write_file("/data", b"payload")
    fd = kernel.syscall(proc, "open", proc.put_cstring("/data"), O_RDONLY)
    assert fd >= 3
    kernel.faults.install(FaultSchedule(name="t", eintr_p=1.0))
    # raw syscalls (no libc above them) see the interruption itself
    assert kernel.syscall(proc, "read", fd, proc.buffer(), 7) == \
        -Errno.EINTR


def test_injected_fault_is_a_counted_syscall(kernel):
    proc = FakeProc(kernel)
    kernel.vfs.write_file("/data", b"payload")
    fd = kernel.syscall(proc, "open", proc.put_cstring("/data"), O_RDONLY)
    kernel.faults.install(FaultSchedule(name="t", eintr_p=1.0))
    before = kernel.syscall_count(proc.pid)
    kernel.syscall(proc, "read", fd, proc.buffer(), 7)
    assert kernel.syscall_count(proc.pid) == before + 1


def test_short_read_clamp_end_to_end(kernel):
    proc = FakeProc(kernel)
    kernel.vfs.write_file("/data", b"0123456789")
    fd = kernel.syscall(proc, "open", proc.put_cstring("/data"), O_RDONLY)
    kernel.faults.install(FaultSchedule(name="t", short_read_p=1.0,
                                        short_read_cap=3))
    buf = proc.buffer()
    assert kernel.syscall(proc, "read", fd, buf, 10) == 3
    assert proc.space.read(buf, 3, privileged=True) == b"012"
    # the cursor only advanced by what was granted
    assert kernel.syscall(proc, "read", fd, buf, 10) == 3
    assert proc.space.read(buf, 3, privileged=True) == b"345"


def test_open_emfile_end_to_end(kernel):
    proc = FakeProc(kernel)
    kernel.faults.install(FaultSchedule(name="t", emfile_every=1))
    assert kernel.syscall(proc, "open", proc.put_cstring("/tmp/x"),
                          O_WRONLY | O_CREAT) == -Errno.EMFILE


def test_backlog_cap_overflows_into_econnrefused(kernel):
    kernel.faults.install(FaultSchedule(name="t", backlog_cap=1))
    kernel.network.listen(9100, backlog=16)
    assert isinstance(kernel.network.connect(9100), Socket)
    assert kernel.network.connect(9100) == -Errno.ECONNREFUSED


def test_segmented_delivery_end_to_end(kernel):
    kernel.faults.install(FaultSchedule(name="t", segment_bytes=4,
                                        segment_extra_delay_ns=1_000))
    listener = kernel.network.listen(9101)
    client = kernel.network.connect(9101)
    kernel.clock.advance_ns(kernel.network.latency_ns)
    server_end = listener.accept()
    client.send(b"0123456789abcdef")
    out = b""
    for _ in range(16):
        chunk = server_end.recv(64)
        if isinstance(chunk, int):
            ready_at = server_end.next_ready_at()
            if ready_at is None:
                break
            kernel.clock.advance_to(ready_at)
            continue
        out += chunk
        if len(out) == 16:
            break
    assert out == b"0123456789abcdef"
    assert kernel.faults.injected_by_kind.get("segment", 0) == 1
