"""POSIX-conformance coverage for this PR's kernel-fidelity fixes.

Four behaviours real kernels guarantee and the simulation now matches:

* ``O_APPEND`` seeks to EOF before *every* write (two appenders never
  overwrite each other);
* a peer's close travels the latency path as a FIN, so EOF/HUP can never
  precede causally-earlier data;
* ``epoll_wait`` rotates its scan start when a poll saturates
  ``max_events``, so fds late in the interest list cannot starve;
* ``recv(fd, buf, 0)`` returns 0, not ``-EAGAIN``.

Plus the libc retry contracts those fixes feed: EINTR restart
(SA_RESTART) and short-write completion loops, exercised under real
injected faults.
"""

import pytest

from repro.kernel import Kernel
from repro.kernel.epoll_impl import EpollInstance
from repro.kernel.errno_codes import Errno
from repro.kernel.faults import FaultSchedule
from repro.kernel.fds import FileFD
from repro.kernel.net import Socket
from repro.kernel.vfs import (
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_WRONLY,
    RegularFile,
)
from repro.libc import LIBC_FUNCTIONS, build_libc_image
from repro.loader import ImageBuilder
from repro.process import GuestProcess, to_signed

from tests.kernel.conftest import FakeProc


@pytest.fixture
def kernel():
    return Kernel()


# -- O_APPEND: seek to EOF before every write -----------------------------------

def test_filefd_append_follows_external_growth():
    node = RegularFile(bytearray(b"boot\n"))
    fd = FileFD(node, O_WRONLY | O_APPEND)
    node.data += b"other writer\n"              # file grew underneath us
    assert fd.write(b"mine\n", 0) == 5
    assert bytes(node.data) == b"boot\nother writer\nmine\n"


def test_two_append_fds_interleave_without_overwriting(kernel):
    proc = FakeProc(kernel)
    kernel.vfs.write_file("/var/log/app", b"boot\n")
    path = proc.put_cstring("/var/log/app")
    fd1 = kernel.syscall(proc, "open", path, O_WRONLY | O_APPEND)
    fd2 = kernel.syscall(proc, "open", path, O_WRONLY | O_APPEND)
    assert fd1 >= 3 and fd2 >= 3
    buf = proc.buffer()
    for fd, line in ((fd1, b"aa\n"), (fd2, b"bb\n"), (fd1, b"cc\n")):
        proc.space.write(buf, line, privileged=True)
        assert kernel.syscall(proc, "write", fd, buf, len(line)) == \
            len(line)
    assert kernel.vfs.read_file("/var/log/app") == b"boot\naa\nbb\ncc\n"


# -- FIN rides the latency path --------------------------------------------------

def _connected_pair(kernel, port):
    listener = kernel.network.listen(port)
    client = kernel.network.connect(port)
    kernel.clock.advance_ns(kernel.network.latency_ns)
    server_end = listener.accept()
    assert isinstance(server_end, Socket)
    return client, server_end


def test_eof_never_precedes_in_flight_data(kernel):
    client, server_end = _connected_pair(kernel, 9200)
    server_end.send(b"bye")
    server_end.close()                          # data + FIN both in flight
    assert client.recv(16) == -Errno.EAGAIN     # nothing arrived yet
    kernel.clock.advance_ns(kernel.network.latency_ns)
    assert client.recv(16) == b"bye"            # data lands first...
    assert client.recv(16) == b""               # ...EOF strictly after


def test_shutdown_write_fin_is_latent(kernel):
    client, server_end = _connected_pair(kernel, 9201)
    server_end.shutdown_write()
    assert not client.peer_closed               # FIN still in flight
    assert client.recv(16) == -Errno.EAGAIN
    kernel.clock.advance_ns(kernel.network.latency_ns)
    assert client.peer_closed
    assert client.recv(16) == b""


def test_send_racing_the_fin_succeeds_then_epipe(kernel):
    client, server_end = _connected_pair(kernel, 9202)
    server_end.close()
    assert client.send(b"x") == 1               # FIN not yet visible
    kernel.clock.advance_ns(kernel.network.latency_ns)
    assert client.send(b"x") == -Errno.EPIPE


# -- epoll scan rotation ---------------------------------------------------------

def test_epoll_rotation_serves_every_ready_fd():
    from repro.kernel.epoll_impl import EPOLL_CTL_ADD, EPOLLIN
    ep = EpollInstance()
    for fd in (3, 4, 5, 6):
        assert ep.ctl(EPOLL_CTL_ADD, fd, EPOLLIN, fd) == 0
    probe = lambda fd: (True, False, False)     # everyone always ready
    served = set()
    for _ in range(2):                          # two saturated polls
        batch = ep.poll(0, probe, max_events=2)
        assert len(batch) == 2
        served |= {data for _, data in batch}
    assert served == {3, 4, 5, 6}               # nobody starves


def test_epoll_unsaturated_polls_keep_stable_order():
    from repro.kernel.epoll_impl import EPOLL_CTL_ADD, EPOLLIN
    ep = EpollInstance()
    for fd in (3, 4, 5):
        ep.ctl(EPOLL_CTL_ADD, fd, EPOLLIN, fd)
    probe = lambda fd: (True, False, False)
    first = ep.poll(0, probe, max_events=16)
    second = ep.poll(0, probe, max_events=16)
    assert first == second                      # rotation untouched
    assert [data for _, data in first] == [3, 4, 5]


# -- recv(0) and the errno paths -------------------------------------------------

def test_recv_zero_bytes_returns_zero_not_eagain(kernel):
    client, server_end = _connected_pair(kernel, 9203)
    assert client.recv(0) == b""                # empty pipe: still 0
    server_end.send(b"data")
    kernel.clock.advance_ns(kernel.network.latency_ns)
    assert client.recv(0) == b""                # data pending: still 0
    assert client.recv(16) == b"data"           # and nothing was consumed


def test_recv_send_on_closed_socket_is_ebadf(kernel):
    client, _ = _connected_pair(kernel, 9204)
    client.close()
    assert client.recv(0) == -Errno.EBADF       # EBADF beats the 0 path
    assert client.recv(16) == -Errno.EBADF
    assert client.send(b"x") == -Errno.EBADF


def test_backlog_overflow_under_fault_cap_is_econnrefused(kernel):
    kernel.faults.install(FaultSchedule(name="t", backlog_cap=1))
    kernel.network.listen(9205, backlog=64)
    assert isinstance(kernel.network.connect(9205), Socket)
    assert kernel.network.connect(9205) == -Errno.ECONNREFUSED
    assert isinstance(kernel.network.connect(9206), int)  # no listener


# -- libc retry contracts under injected faults ----------------------------------

@pytest.fixture
def guest():
    """A guest process plus a run(fn) helper (tests/libc convention)."""
    kernel = Kernel()
    kernel.vfs.write_file("/etc/sample", b"0123456789abcdef")
    process = GuestProcess(kernel, "conformance-test")
    process.load_image(build_libc_image(), tag="libc")

    class Guest:
        def __init__(self):
            self.kernel = kernel
            self.process = process
            self._counter = 0

        def run(self, fn, *args):
            self._counter += 1
            builder = ImageBuilder(f"probe{self._counter}")
            builder.import_libc(*LIBC_FUNCTIONS.keys())
            builder.add_hl_function("probe", fn, len(args))
            process.load_image(builder.build())
            return to_signed(process.call_function("probe", *args))
    return Guest()


def test_libc_read_restarts_across_eintr(guest):
    def probe(ctx):
        path = ctx.stack_alloc(32)
        ctx.write_cstring(path, b"/etc/sample")
        fd = to_signed(ctx.libc("open", path, O_RDONLY))
        buf = ctx.stack_alloc(32)
        n = to_signed(ctx.libc("read", fd, buf, 16))
        ctx.libc("close", fd)
        return n
    guest.kernel.faults.install(FaultSchedule(name="t", eintr_p=0.5))
    assert guest.run(probe) == 16               # EINTR absorbed by libc
    assert guest.kernel.faults.injected_by_kind.get("eintr", 0) > 0


def test_libc_write_completes_across_short_writes(guest):
    def probe(ctx):
        path = ctx.stack_alloc(32)
        ctx.write_cstring(path, b"/tmp/out")
        fd = to_signed(ctx.libc("open", path, O_WRONLY | O_CREAT))
        buf = ctx.stack_alloc(32)
        ctx.write(buf, b"0123456789abcdef")
        n = to_signed(ctx.libc("write", fd, buf, 16))
        ctx.libc("close", fd)
        return n
    guest.kernel.faults.install(FaultSchedule(name="t", short_write_p=1.0,
                                              short_write_cap=4))
    assert guest.run(probe) == 16               # completion loop resumed
    assert guest.kernel.vfs.read_file("/tmp/out") == b"0123456789abcdef"
    assert guest.kernel.faults.injected_by_kind.get("short_write", 0) >= 3


def test_libc_short_read_is_posix_legal_partial(guest):
    def probe(ctx):
        path = ctx.stack_alloc(32)
        ctx.write_cstring(path, b"/etc/sample")
        fd = to_signed(ctx.libc("open", path, O_RDONLY))
        buf = ctx.stack_alloc(32)
        total = 0
        while True:
            n = to_signed(ctx.libc("read", fd, buf, 16))
            if n <= 0:
                break
            total += n
        ctx.libc("close", fd)
        return total
    guest.kernel.faults.install(FaultSchedule(name="t", short_read_p=1.0,
                                              short_read_cap=5))
    assert guest.run(probe) == 16               # drained across partials
    assert guest.kernel.faults.injected_by_kind.get("short_read", 0) >= 2


# -- local SHUT_WR and listener teardown (serving-path fixes) --------------------

def test_send_after_local_shutdown_write_is_epipe(kernel):
    """POSIX: after shutdown(fd, SHUT_WR) *our own* sends fail with
    EPIPE immediately — no waiting for the peer's FIN to come back."""
    client, server_end = _connected_pair(kernel, 9210)
    client.shutdown_write()
    assert client.send(b"x") == -Errno.EPIPE    # local, instant
    # the read half stays open: the peer can still talk to us
    server_end.send(b"reply")
    kernel.clock.advance_ns(kernel.network.latency_ns)
    assert client.recv(16) == b"reply"


def test_listener_close_fins_queued_unaccepted_connects(kernel):
    """A client mid-connect when the listener closes (graceful reload
    racing an accept) must see a FIN, not park forever on a connection
    nobody will ever service."""
    listener = kernel.network.listen(9211)
    client = kernel.network.connect(9211)
    kernel.clock.advance_ns(kernel.network.latency_ns)
    assert listener.pending_count() == 1        # queued, never accepted
    listener.close()
    kernel.clock.advance_ns(kernel.network.latency_ns)
    assert client.peer_closed                   # FIN delivered
    assert client.recv(16) == b""               # clean EOF, client retries
