"""Task-lifecycle tests: thread registration, reparenting, reaping.

Regression coverage for two long-standing bugs: ``new_thread`` used to
bump a counter without registering the tid (invisible to the spawn hook
and the replayer), and ``exit`` used to drop the record on the floor
(children orphaned unparented, zombies never reaped).
"""

from repro.kernel.tasks import TaskManager


def test_spawn_registers_record_and_links_parent():
    tm = TaskManager()
    parent = tm.spawn("master")
    child = tm.spawn("worker", parent)
    assert tm.tasks[child].parent == parent
    assert child in tm.tasks[parent].children
    assert tm.tasks[child].kind == "process"
    assert tm.tasks[child].alive


def test_spawn_hook_fires_in_order():
    tm = TaskManager()
    seen = []
    tm.spawn_hook = lambda pid, name, parent: seen.append((pid, name, parent))
    a = tm.spawn("a")
    b = tm.spawn("b", a)
    assert seen == [(a, "a", None), (b, "b", a)]


# -- satellite 1: new_thread ------------------------------------------------

def test_new_thread_registers_a_real_task_record():
    tm = TaskManager()
    pid = tm.spawn("server")
    tid = tm.new_thread(pid)
    assert tid != pid
    record = tm.tasks[tid]
    assert record.kind == "thread"
    assert record.parent == pid
    assert tid in tm.tasks[pid].children
    assert tm.tasks[pid].threads == 2
    assert record.name == "server-t2"


def test_new_thread_fires_spawn_hook():
    tm = TaskManager()
    pid = tm.spawn("server")
    seen = []
    tm.spawn_hook = lambda tid, name, parent: seen.append((tid, name, parent))
    tid = tm.new_thread(pid)
    assert seen == [(tid, "server-t2", pid)]


def test_new_thread_of_unknown_pid_still_registers():
    tm = TaskManager()
    tid = tm.new_thread(4242)
    assert tm.tasks[tid].name == f"tid{tid}"
    assert tm.tasks[tid].kind == "thread"


def test_thread_exit_is_reapable_like_a_child_process():
    tm = TaskManager()
    pid = tm.spawn("server")
    tid = tm.new_thread(pid)
    tm.exit(tid, 0)
    assert tm.tasks[tid].state == "zombie"
    assert tm.wait(pid) == (tid, 0)
    assert tid not in tm.tasks


# -- satellite 2: exit / reparent / reap ------------------------------------

def test_exit_marks_zombie_until_reaped():
    tm = TaskManager()
    parent = tm.spawn("master")
    child = tm.spawn("worker", parent)
    tm.exit(child, 7)
    assert child in tm.tasks                  # zombie lingers
    assert not tm.tasks[child].alive
    assert tm.zombies() == [child]
    assert tm.wait(parent) == (child, 7)
    assert tm.zombies() == []
    assert tm.reaped_total == 1


def test_wait_reaps_one_zombie_at_a_time():
    tm = TaskManager()
    parent = tm.spawn("master")
    kids = [tm.spawn(f"w{i}", parent) for i in range(3)]
    for pid in kids:
        tm.exit(pid, pid % 2)
    reaped = []
    while True:
        got = tm.wait(parent)
        if got is None:
            break
        reaped.append(got)
    assert reaped == [(pid, pid % 2) for pid in kids]
    assert tm.wait(parent) is None


def test_exit_reparents_children_to_nearest_live_ancestor():
    tm = TaskManager()
    grandparent = tm.spawn("init-ish")
    parent = tm.spawn("master", grandparent)
    child = tm.spawn("worker", parent)
    tm.exit(parent)
    assert tm.tasks[child].parent == grandparent
    assert child in tm.tasks[grandparent].children
    # the grandparent can now reap through the dead middle generation
    tm.exit(child, 3)
    assert tm.wait(grandparent) is not None   # parent's zombie or child's
    assert tm.wait(grandparent) is not None
    assert tm.wait(grandparent) is None
    assert tm.zombies() == []


def test_orphan_zombies_are_reaped_by_init():
    tm = TaskManager()
    parent = tm.spawn("master")               # no parent of its own
    child = tm.spawn("worker", parent)
    tm.exit(child, 1)                         # zombie, waiting on master
    tm.exit(parent, 0)
    # master had no live ancestor: both records go to "init", which
    # reaps immediately — nothing lingers
    assert parent not in tm.tasks
    assert child not in tm.tasks
    assert tm.zombies() == []
    assert tm.reaped_total == 2


def test_exit_of_parentless_task_reaps_itself():
    tm = TaskManager()
    pid = tm.spawn("loner")
    tm.exit(pid)
    assert pid not in tm.tasks


def test_exit_hook_fires_with_code():
    tm = TaskManager()
    seen = []
    tm.exit_hook = lambda pid, code: seen.append((pid, code))
    parent = tm.spawn("master")
    child = tm.spawn("worker", parent)
    tm.exit(child, 9)
    tm.exit(parent, 0)
    assert seen == [(child, 9), (parent, 0)]


def test_exit_of_unknown_pid_is_a_noop():
    tm = TaskManager()
    tm.exit(31337)
    assert tm.tasks == {}


def test_live_children_of_a_double_orphan_survive():
    tm = TaskManager()
    parent = tm.spawn("master")
    child = tm.spawn("worker", parent)
    tm.exit(parent)
    # the live child is reparented to init (None) and keeps running
    assert tm.tasks[child].alive
    assert tm.tasks[child].parent is None
    tm.exit(child)                            # init reaps on exit
    assert child not in tm.tasks
