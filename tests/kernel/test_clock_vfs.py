"""Unit tests for the virtual clock and virtual filesystem."""

import time

import pytest

from repro.kernel.clock import DEFAULT_EPOCH_S, TmStruct, VirtualClock
from repro.kernel.errno_codes import Errno
from repro.kernel.vfs import S_IFDIR, S_IFREG, VirtualFS, normalize


# -- clock --------------------------------------------------------------------

def test_clock_advances_monotonically():
    clock = VirtualClock()
    clock.advance_ns(10)
    clock.advance_ns(5)
    assert clock.monotonic_ns == 15


def test_advance_to_never_goes_backwards():
    clock = VirtualClock()
    clock.advance_ns(100)
    clock.advance_to(50)
    assert clock.monotonic_ns == 100
    clock.advance_to(200)
    assert clock.monotonic_ns == 200


def test_gettimeofday_reflects_epoch():
    clock = VirtualClock(epoch_s=1000)
    clock.advance_ns(2_500_000)  # 2.5 ms
    sec, usec = clock.gettimeofday()
    assert sec == 1000
    assert usec == 2500


def test_localtime_matches_cpython_gmtime():
    clock = VirtualClock()
    for offset in (0, 3600 * 5 + 17, 86400 * 100 + 12345, 86400 * 400):
        ts = DEFAULT_EPOCH_S + offset
        ours = clock.localtime(ts)
        ref = time.gmtime(ts)
        assert ours.tm_year == ref.tm_year - 1900
        assert ours.tm_mon == ref.tm_mon - 1
        assert ours.tm_mday == ref.tm_mday
        assert ours.tm_hour == ref.tm_hour
        assert ours.tm_min == ref.tm_min
        assert ours.tm_sec == ref.tm_sec
        # ours is C-style (0 == Sunday); CPython's is 0 == Monday
        assert ours.tm_wday == (ref.tm_wday + 1) % 7
        assert ours.tm_yday == ref.tm_yday - 1


def test_tmstruct_pack_roundtrip():
    tm = VirtualClock().localtime(DEFAULT_EPOCH_S + 98765)
    assert TmStruct.unpack(tm.pack()) == tm


def test_localtime_leap_year_feb_29():
    clock = VirtualClock()
    # 2024-02-29T12:34:56Z (2024 is a leap year)
    ts = 1709210096
    assert time.gmtime(ts)[:3] == (2024, 2, 29)   # self-check the constant
    tm = clock.localtime(ts)
    assert (tm.tm_year, tm.tm_mon, tm.tm_mday) == (124, 1, 29)
    assert (tm.tm_hour, tm.tm_min, tm.tm_sec) == (12, 34, 56)
    assert tm.tm_yday == 59                        # Jan(31) + Feb 29 - 1
    # the day after is March 1st, yday keeps counting through the leap day
    tm2 = clock.localtime(ts + 86400)
    assert (tm2.tm_mon, tm2.tm_mday, tm2.tm_yday) == (2, 1, 60)
    # century leap rule: 1900 is not a leap year, 2000 is
    assert VirtualClock().localtime(951782400).tm_mday == 29  # 2000-02-29


def test_localtime_non_leap_year_has_no_feb_29():
    clock = VirtualClock()
    # 2023-03-01T00:00:00Z: the day after Feb 28 in a non-leap year
    tm = clock.localtime(1677628800)
    assert (tm.tm_year, tm.tm_mon, tm.tm_mday) == (123, 2, 1)
    assert tm.tm_yday == 59                        # Jan(31) + Feb(28) - 1 + 1


def test_advance_ns_rejects_negative():
    clock = VirtualClock()
    clock.advance_ns(5)
    with pytest.raises(ValueError):
        clock.advance_ns(-1)
    assert clock.monotonic_ns == 5


def test_advance_to_is_idempotent_at_same_instant():
    clock = VirtualClock()
    clock.advance_to(70)
    clock.advance_to(70)
    assert clock.monotonic_ns == 70


def test_gettimeofday_truncates_sub_microsecond_ns():
    clock = VirtualClock(epoch_s=0)
    clock.advance_ns(1_999)                        # 1.999 µs
    assert clock.gettimeofday() == (0, 1)          # truncated, not rounded
    clock.advance_ns(1)                            # exactly 2 µs
    assert clock.gettimeofday() == (0, 2)


def test_gettimeofday_usec_rolls_over_to_seconds():
    clock = VirtualClock(epoch_s=10)
    clock.advance_ns(999_999_999)                  # 1 ns short of a second
    assert clock.gettimeofday() == (10, 999_999)
    clock.advance_ns(1)
    assert clock.gettimeofday() == (11, 0)


def test_clock_read_hook_observes_reads():
    clock = VirtualClock(epoch_s=100)
    seen = []
    clock.read_hook = lambda kind, value: seen.append((kind, value))
    tod = clock.gettimeofday()
    clock.localtime(DEFAULT_EPOCH_S)
    assert seen == [("gettimeofday", tod),
                    ("localtime", DEFAULT_EPOCH_S)]


# -- vfs ----------------------------------------------------------------------

def test_normalize_paths():
    assert normalize("/a//b/./c/../d") == "/a/b/d"
    assert normalize("tmp/x") == "/tmp/x"
    assert normalize("/") == "/"


def test_write_and_read_file():
    vfs = VirtualFS()
    vfs.write_file("/var/www/index.html", b"<html>")
    assert vfs.read_file("/var/www/index.html") == b"<html>"
    assert vfs.read_file("/var/www/missing.html") is None


def test_write_file_autocreates_parents():
    vfs = VirtualFS()
    vfs.write_file("/srv/deep/nested/file.txt", b"x")
    assert vfs.is_dir("/srv/deep/nested")


def test_mkdir_semantics():
    vfs = VirtualFS()
    assert vfs.mkdir("/tmp/newdir") == 0
    assert vfs.mkdir("/tmp/newdir") == -Errno.EEXIST
    assert vfs.mkdir("/nonexistent/child") == -Errno.ENOENT
    assert vfs.is_dir("/tmp/newdir")


def test_listdir():
    vfs = VirtualFS()
    vfs.write_file("/var/www/a.html", b"")
    vfs.write_file("/var/www/b.html", b"")
    vfs.mkdir("/var/www/imgs")
    assert vfs.listdir("/var/www") == ["a.html", "b.html", "imgs"]


def test_stat_file_and_dir():
    vfs = VirtualFS()
    vfs.write_file("/tmp/f", b"abc", mtime_s=42)
    mode, size, mtime = vfs.stat("/tmp/f")
    assert mode & S_IFREG
    assert size == 3
    assert mtime == 42
    mode, _, _ = vfs.stat("/tmp")
    assert mode & S_IFDIR
    assert vfs.stat("/missing") == -Errno.ENOENT


def test_unlink():
    vfs = VirtualFS()
    vfs.write_file("/tmp/f", b"")
    assert vfs.unlink("/tmp/f") == 0
    assert vfs.unlink("/tmp/f") == -Errno.ENOENT


def test_urandom_is_deterministic_per_seed_and_stateful():
    vfs1, vfs2 = VirtualFS(), VirtualFS()
    first = vfs1.urandom.read(32)
    assert first == vfs2.urandom.read(32)
    # stream advances: the next read differs
    assert vfs1.urandom.read(32) != first
    assert len(vfs1.urandom.read(7)) == 7
