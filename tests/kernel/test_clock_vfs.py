"""Unit tests for the virtual clock and virtual filesystem."""

import time

from repro.kernel.clock import DEFAULT_EPOCH_S, TmStruct, VirtualClock
from repro.kernel.errno_codes import Errno
from repro.kernel.vfs import S_IFDIR, S_IFREG, VirtualFS, normalize


# -- clock --------------------------------------------------------------------

def test_clock_advances_monotonically():
    clock = VirtualClock()
    clock.advance_ns(10)
    clock.advance_ns(5)
    assert clock.monotonic_ns == 15


def test_advance_to_never_goes_backwards():
    clock = VirtualClock()
    clock.advance_ns(100)
    clock.advance_to(50)
    assert clock.monotonic_ns == 100
    clock.advance_to(200)
    assert clock.monotonic_ns == 200


def test_gettimeofday_reflects_epoch():
    clock = VirtualClock(epoch_s=1000)
    clock.advance_ns(2_500_000)  # 2.5 ms
    sec, usec = clock.gettimeofday()
    assert sec == 1000
    assert usec == 2500


def test_localtime_matches_cpython_gmtime():
    clock = VirtualClock()
    for offset in (0, 3600 * 5 + 17, 86400 * 100 + 12345, 86400 * 400):
        ts = DEFAULT_EPOCH_S + offset
        ours = clock.localtime(ts)
        ref = time.gmtime(ts)
        assert ours.tm_year == ref.tm_year - 1900
        assert ours.tm_mon == ref.tm_mon - 1
        assert ours.tm_mday == ref.tm_mday
        assert ours.tm_hour == ref.tm_hour
        assert ours.tm_min == ref.tm_min
        assert ours.tm_sec == ref.tm_sec
        # ours is C-style (0 == Sunday); CPython's is 0 == Monday
        assert ours.tm_wday == (ref.tm_wday + 1) % 7
        assert ours.tm_yday == ref.tm_yday - 1


def test_tmstruct_pack_roundtrip():
    tm = VirtualClock().localtime(DEFAULT_EPOCH_S + 98765)
    assert TmStruct.unpack(tm.pack()) == tm


# -- vfs ----------------------------------------------------------------------

def test_normalize_paths():
    assert normalize("/a//b/./c/../d") == "/a/b/d"
    assert normalize("tmp/x") == "/tmp/x"
    assert normalize("/") == "/"


def test_write_and_read_file():
    vfs = VirtualFS()
    vfs.write_file("/var/www/index.html", b"<html>")
    assert vfs.read_file("/var/www/index.html") == b"<html>"
    assert vfs.read_file("/var/www/missing.html") is None


def test_write_file_autocreates_parents():
    vfs = VirtualFS()
    vfs.write_file("/srv/deep/nested/file.txt", b"x")
    assert vfs.is_dir("/srv/deep/nested")


def test_mkdir_semantics():
    vfs = VirtualFS()
    assert vfs.mkdir("/tmp/newdir") == 0
    assert vfs.mkdir("/tmp/newdir") == -Errno.EEXIST
    assert vfs.mkdir("/nonexistent/child") == -Errno.ENOENT
    assert vfs.is_dir("/tmp/newdir")


def test_listdir():
    vfs = VirtualFS()
    vfs.write_file("/var/www/a.html", b"")
    vfs.write_file("/var/www/b.html", b"")
    vfs.mkdir("/var/www/imgs")
    assert vfs.listdir("/var/www") == ["a.html", "b.html", "imgs"]


def test_stat_file_and_dir():
    vfs = VirtualFS()
    vfs.write_file("/tmp/f", b"abc", mtime_s=42)
    mode, size, mtime = vfs.stat("/tmp/f")
    assert mode & S_IFREG
    assert size == 3
    assert mtime == 42
    mode, _, _ = vfs.stat("/tmp")
    assert mode & S_IFDIR
    assert vfs.stat("/missing") == -Errno.ENOENT


def test_unlink():
    vfs = VirtualFS()
    vfs.write_file("/tmp/f", b"")
    assert vfs.unlink("/tmp/f") == 0
    assert vfs.unlink("/tmp/f") == -Errno.ENOENT


def test_urandom_is_deterministic_per_seed_and_stateful():
    vfs1, vfs2 = VirtualFS(), VirtualFS()
    first = vfs1.urandom.read(32)
    assert first == vfs2.urandom.read(32)
    # stream advances: the next read differs
    assert vfs1.urandom.read(32) != first
    assert len(vfs1.urandom.read(7)) == 7
