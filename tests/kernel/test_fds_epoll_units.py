"""Unit coverage for file descriptions and the epoll interest list."""

import pytest

from repro.kernel.epoll_impl import (
    EPOLL_CTL_ADD,
    EPOLL_CTL_DEL,
    EPOLL_CTL_MOD,
    EPOLLIN,
    EPOLLOUT,
    EpollInstance,
)
from repro.kernel.errno_codes import Errno
from repro.kernel.fds import FileDescription, FileFD, UrandomFD
from repro.kernel.vfs import O_RDONLY, O_RDWR, O_WRONLY, RegularFile, \
    S_IFCHR, UrandomStream


# -- base description defaults ---------------------------------------------------

def test_base_description_defaults():
    fd = FileDescription()
    assert fd.read(4, 0) == -Errno.EINVAL
    assert fd.write(b"x", 0) == -Errno.EINVAL
    assert not fd.readable(0) and not fd.writable(0) and not fd.hup(0)
    assert fd.next_ready_at() is None
    assert fd.stat() == -Errno.EINVAL
    assert fd.seek_set(0) == -Errno.ESPIPE
    fd.close()                                  # no-op, never raises


# -- regular files -----------------------------------------------------------------

def test_filefd_mode_enforcement():
    node = RegularFile(bytearray(b"data"))
    rd = FileFD(node, O_RDONLY)
    assert rd.write(b"x", 0) == -Errno.EBADF
    wr = FileFD(node, O_WRONLY)
    assert wr.read(4, 0) == -Errno.EBADF
    rw = FileFD(node, O_RDWR)
    assert rw.read(4, 0) == b"data"
    assert rw.write(b"!", 0) == 1


def test_filefd_sparse_write_beyond_eof():
    node = RegularFile(bytearray(b"ab"))
    fd = FileFD(node, O_RDWR)
    assert fd.seek_set(6) == 6
    assert fd.write(b"Z", 0) == 1
    assert bytes(node.data) == b"ab\x00\x00\x00\x00Z"


def test_filefd_negative_seek_rejected():
    fd = FileFD(RegularFile(), O_RDWR)
    assert fd.seek_set(-1) == -Errno.EINVAL


def test_urandom_fd_properties():
    fd = UrandomFD(UrandomStream(b"seed"))
    assert fd.readable(0)
    first = fd.read(8, 0)
    second = fd.read(8, 0)
    assert first != second                     # stream advances
    mode, _, _ = fd.stat()
    assert mode & S_IFCHR


# -- epoll interest list --------------------------------------------------------------

def test_epoll_ctl_semantics():
    ep = EpollInstance()
    assert ep.ctl(EPOLL_CTL_ADD, 3, EPOLLIN, 0xAA) == 0
    assert ep.ctl(EPOLL_CTL_ADD, 3, EPOLLIN, 0xAA) == -Errno.EEXIST
    assert ep.ctl(EPOLL_CTL_MOD, 3, EPOLLOUT, 0xBB) == 0
    assert ep.ctl(EPOLL_CTL_MOD, 9, EPOLLIN, 0) == -Errno.ENOENT
    assert ep.ctl(EPOLL_CTL_DEL, 3) == 0
    assert ep.ctl(EPOLL_CTL_DEL, 3) == -Errno.ENOENT
    assert ep.ctl(99, 3) == -Errno.EINVAL


def test_epoll_poll_masks_and_maxevents():
    ep = EpollInstance()
    for fd in range(5):
        ep.ctl(EPOLL_CTL_ADD, fd, EPOLLIN, fd * 10)

    ready = ep.poll(0, lambda fd: (True, False, False), max_events=3)
    assert len(ready) == 3                     # capped
    assert all(events & EPOLLIN for events, _data in ready)

    # an interest in OUT only does not fire on readable-only fds
    ep2 = EpollInstance()
    ep2.ctl(EPOLL_CTL_ADD, 1, EPOLLOUT, 7)
    assert ep2.poll(0, lambda fd: (True, False, False), 8) == []
    assert ep2.poll(0, lambda fd: (False, True, False), 8) == \
        [(EPOLLOUT, 7)]


def test_epoll_poll_skips_stale_fds():
    ep = EpollInstance()
    ep.ctl(EPOLL_CTL_ADD, 4, EPOLLIN, 1)
    assert ep.poll(0, lambda fd: None, 8) == []


def test_epoll_mod_replaces_data():
    ep = EpollInstance()
    ep.ctl(EPOLL_CTL_ADD, 2, EPOLLIN, 111)
    ep.ctl(EPOLL_CTL_MOD, 2, EPOLLIN, 222)
    ready = ep.poll(0, lambda fd: (True, False, False), 8)
    assert ready == [(EPOLLIN, 222)]


def test_epoll_next_ready_horizon():
    ep = EpollInstance()
    ep.ctl(EPOLL_CTL_ADD, 1, EPOLLIN, 0)
    ep.ctl(EPOLL_CTL_ADD, 2, EPOLLIN, 0)
    horizon = {1: 500.0, 2: 100.0}
    assert ep.next_ready_at(lambda fd: horizon.get(fd)) == 100.0
    assert ep.next_ready_at(lambda fd: None) is None


def test_epoll_forget_on_close():
    ep = EpollInstance()
    ep.ctl(EPOLL_CTL_ADD, 7, EPOLLIN, 0)
    ep.forget(7)
    assert ep.watched_fds == []
    ep.forget(7)                               # idempotent


# -- O(ready) armed list: disarm, re-arm, fairness, staleness --------------------

class _FakeChannel:
    """Minimal re-arm channel (the Socket/Listener watcher protocol)."""

    def __init__(self):
        self.watchers = []

    def add_watcher(self, fn):
        if fn not in self.watchers:
            self.watchers.append(fn)

    def remove_watcher(self, fn):
        if fn in self.watchers:
            self.watchers.remove(fn)

    def fire(self):
        for fn in tuple(self.watchers):
            fn()


_IDLE = (False, False, False, None)             # idle, nothing in flight


def test_epoll_idle_four_tuple_probe_disarms():
    ep = EpollInstance()
    ch = _FakeChannel()
    ep.ctl(EPOLL_CTL_ADD, 3, EPOLLIN, 3, channel=ch)
    assert ep.armed_fds == [3]                  # ADD arms (level-triggered)
    assert ep.poll(0, lambda fd: _IDLE, 16) == []
    assert ep.armed_fds == []                   # idle + nothing in flight
    before = ep.probes
    ep.poll(0, lambda fd: _IDLE, 16)
    assert ep.probes == before                  # disarmed fds cost nothing


def test_epoll_channel_watcher_rearms_disarmed_fd():
    ep = EpollInstance()
    ch = _FakeChannel()
    ep.ctl(EPOLL_CTL_ADD, 3, EPOLLIN, 3, channel=ch)
    ep.poll(0, lambda fd: _IDLE, 16)            # disarms
    ch.fire()                                   # delivery: channel re-arms
    assert ep.armed_fds == [3]
    assert ep.poll(0, lambda fd: (True, False, False, 0), 16) == \
        [(EPOLLIN, 3)]


def test_epoll_epollout_interest_never_disarms():
    # writability has no delivery event to re-arm on, so EPOLLOUT
    # interests must stay armed even when a probe reports idle
    ep = EpollInstance()
    ep.ctl(EPOLL_CTL_ADD, 4, EPOLLIN | EPOLLOUT, 4, channel=_FakeChannel())
    ep.poll(0, lambda fd: _IDLE, 16)
    assert ep.armed_fds == [4]


def test_epoll_three_tuple_probe_keeps_legacy_interest_scan():
    # 3-tuple probes carry no in-flight info: never disarm (direct
    # EpollInstance users keep O(interest) semantics unchanged)
    ep = EpollInstance()
    ep.ctl(EPOLL_CTL_ADD, 5, EPOLLIN, 5)
    ep.poll(0, lambda fd: (False, False, False), 16)
    assert ep.armed_fds == [5]


def test_epoll_rotation_is_fair_over_armed_list():
    # saturated polls rotate the scan start over the *armed* list, so a
    # busy prefix cannot starve later armed fds — same guarantee the old
    # interest-list scan gave, preserved under O(ready)
    ep = EpollInstance()
    ch = _FakeChannel()
    for fd in (3, 4, 5, 6):
        ep.ctl(EPOLL_CTL_ADD, fd, EPOLLIN, fd, channel=ch)
    probe = lambda fd: (True, False, False, 0)  # all ready, data in flight
    served = []
    for _ in range(2):
        batch = ep.poll(0, probe, 2)
        assert len(batch) == 2
        served += [data for _, data in batch]
    assert sorted(served) == [3, 4, 5, 6]       # every fd served once
    assert served == [3, 4, 5, 6]               # in deterministic order


def test_epoll_forget_detaches_watcher_and_disarms():
    ep = EpollInstance()
    ch = _FakeChannel()
    ep.ctl(EPOLL_CTL_ADD, 7, EPOLLIN, 7, channel=ch)
    assert len(ch.watchers) == 1
    ep.forget(7)
    assert ch.watchers == []                    # no leak into the channel
    assert ep.armed_fds == []
    ch.fire()                                   # stale delivery after close
    assert ep.armed_fds == []                   # cannot resurrect the fd


def test_epoll_stale_armed_fd_dropped_once():
    # an fd closed while armed: the next poll sees probe -> None, drops
    # it, and never probes it again
    ep = EpollInstance()
    ep.ctl(EPOLL_CTL_ADD, 8, EPOLLIN, 8)
    assert ep.poll(0, lambda fd: None, 16) == []
    assert ep.armed_fds == []
    before = ep.probes
    ep.poll(0, lambda fd: None, 16)
    assert ep.probes == before


def test_epoll_probe_cost_tracks_ready_not_interest():
    # the O(ready) contract: with N watched keep-alive connections and
    # only K active, a poll probes ~K fds, not N
    ep = EpollInstance()
    ch = _FakeChannel()
    for fd in range(3, 103):                    # 100 watched fds
        ep.ctl(EPOLL_CTL_ADD, fd, EPOLLIN, fd, channel=ch)
    active = {3, 57}
    probe = lambda fd: (True, False, False, 0) if fd in active else _IDLE
    ep.poll(0, probe, 128)                      # first poll: full sweep
    assert sorted(ep.armed_fds) == [3, 57]      # 98 idle fds disarmed
    before = ep.probes
    ep.poll(0, probe, 128)
    assert ep.probes - before == 2              # O(ready), not O(100)
