"""Unit coverage for file descriptions and the epoll interest list."""

import pytest

from repro.kernel.epoll_impl import (
    EPOLL_CTL_ADD,
    EPOLL_CTL_DEL,
    EPOLL_CTL_MOD,
    EPOLLIN,
    EPOLLOUT,
    EpollInstance,
)
from repro.kernel.errno_codes import Errno
from repro.kernel.fds import FileDescription, FileFD, UrandomFD
from repro.kernel.vfs import O_RDONLY, O_RDWR, O_WRONLY, RegularFile, \
    S_IFCHR, UrandomStream


# -- base description defaults ---------------------------------------------------

def test_base_description_defaults():
    fd = FileDescription()
    assert fd.read(4, 0) == -Errno.EINVAL
    assert fd.write(b"x", 0) == -Errno.EINVAL
    assert not fd.readable(0) and not fd.writable(0) and not fd.hup(0)
    assert fd.next_ready_at() is None
    assert fd.stat() == -Errno.EINVAL
    assert fd.seek_set(0) == -Errno.ESPIPE
    fd.close()                                  # no-op, never raises


# -- regular files -----------------------------------------------------------------

def test_filefd_mode_enforcement():
    node = RegularFile(bytearray(b"data"))
    rd = FileFD(node, O_RDONLY)
    assert rd.write(b"x", 0) == -Errno.EBADF
    wr = FileFD(node, O_WRONLY)
    assert wr.read(4, 0) == -Errno.EBADF
    rw = FileFD(node, O_RDWR)
    assert rw.read(4, 0) == b"data"
    assert rw.write(b"!", 0) == 1


def test_filefd_sparse_write_beyond_eof():
    node = RegularFile(bytearray(b"ab"))
    fd = FileFD(node, O_RDWR)
    assert fd.seek_set(6) == 6
    assert fd.write(b"Z", 0) == 1
    assert bytes(node.data) == b"ab\x00\x00\x00\x00Z"


def test_filefd_negative_seek_rejected():
    fd = FileFD(RegularFile(), O_RDWR)
    assert fd.seek_set(-1) == -Errno.EINVAL


def test_urandom_fd_properties():
    fd = UrandomFD(UrandomStream(b"seed"))
    assert fd.readable(0)
    first = fd.read(8, 0)
    second = fd.read(8, 0)
    assert first != second                     # stream advances
    mode, _, _ = fd.stat()
    assert mode & S_IFCHR


# -- epoll interest list --------------------------------------------------------------

def test_epoll_ctl_semantics():
    ep = EpollInstance()
    assert ep.ctl(EPOLL_CTL_ADD, 3, EPOLLIN, 0xAA) == 0
    assert ep.ctl(EPOLL_CTL_ADD, 3, EPOLLIN, 0xAA) == -Errno.EEXIST
    assert ep.ctl(EPOLL_CTL_MOD, 3, EPOLLOUT, 0xBB) == 0
    assert ep.ctl(EPOLL_CTL_MOD, 9, EPOLLIN, 0) == -Errno.ENOENT
    assert ep.ctl(EPOLL_CTL_DEL, 3) == 0
    assert ep.ctl(EPOLL_CTL_DEL, 3) == -Errno.ENOENT
    assert ep.ctl(99, 3) == -Errno.EINVAL


def test_epoll_poll_masks_and_maxevents():
    ep = EpollInstance()
    for fd in range(5):
        ep.ctl(EPOLL_CTL_ADD, fd, EPOLLIN, fd * 10)

    ready = ep.poll(0, lambda fd: (True, False, False), max_events=3)
    assert len(ready) == 3                     # capped
    assert all(events & EPOLLIN for events, _data in ready)

    # an interest in OUT only does not fire on readable-only fds
    ep2 = EpollInstance()
    ep2.ctl(EPOLL_CTL_ADD, 1, EPOLLOUT, 7)
    assert ep2.poll(0, lambda fd: (True, False, False), 8) == []
    assert ep2.poll(0, lambda fd: (False, True, False), 8) == \
        [(EPOLLOUT, 7)]


def test_epoll_poll_skips_stale_fds():
    ep = EpollInstance()
    ep.ctl(EPOLL_CTL_ADD, 4, EPOLLIN, 1)
    assert ep.poll(0, lambda fd: None, 8) == []


def test_epoll_mod_replaces_data():
    ep = EpollInstance()
    ep.ctl(EPOLL_CTL_ADD, 2, EPOLLIN, 111)
    ep.ctl(EPOLL_CTL_MOD, 2, EPOLLIN, 222)
    ready = ep.poll(0, lambda fd: (True, False, False), 8)
    assert ready == [(EPOLLIN, 222)]


def test_epoll_next_ready_horizon():
    ep = EpollInstance()
    ep.ctl(EPOLL_CTL_ADD, 1, EPOLLIN, 0)
    ep.ctl(EPOLL_CTL_ADD, 2, EPOLLIN, 0)
    horizon = {1: 500.0, 2: 100.0}
    assert ep.next_ready_at(lambda fd: horizon.get(fd)) == 100.0
    assert ep.next_ready_at(lambda fd: None) is None


def test_epoll_forget_on_close():
    ep = EpollInstance()
    ep.ctl(EPOLL_CTL_ADD, 7, EPOLLIN, 0)
    ep.forget(7)
    assert ep.watched_fds == []
    ep.forget(7)                               # idempotent
