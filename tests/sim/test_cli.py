"""CLI surface: swarm / shrink / replay subcommands and exit codes."""

import json

import pytest

from repro.sim.cli import main

MASTER = "cli-suite"


def test_swarm_strict_passes_on_healthy_seed(tmp_path, capsys):
    report = tmp_path / "report.json"
    code = main(["swarm", "--seed", MASTER, "--count", "8",
                 "--strict", "--json", str(report)])
    assert code == 0
    data = json.loads(report.read_text())
    assert data["ok"] is True
    assert sum(data["histogram"].values()) == 8
    assert len(data["outcomes"]) == 8
    out = capsys.readouterr().out
    assert "8 scenario(s)" in out


def test_swarm_expect_failure_fails_on_healthy_seed():
    assert main(["swarm", "--seed", MASTER, "--count", "4",
                 "--expect-failure"]) == 1


def test_mutation_swarm_shrinks_and_capsule_replays(tmp_path, capsys):
    capsule_path = tmp_path / "capsule.json"
    report = tmp_path / "report.json"
    code = main(["swarm", "--seed", "mut-ci", "--count", "20",
                 "--mutate", "zero-read", "--shrink",
                 "--expect-failure", "--capsule", str(capsule_path),
                 "--json", str(report)])
    assert code == 0
    data = json.loads(report.read_text())
    assert data["ok"] is False
    assert data["capsule"]["kind"] == "sim-scenario"
    assert capsule_path.exists()

    capsys.readouterr()
    assert main(["replay", str(capsule_path)]) == 0
    assert "bit-identical" in capsys.readouterr().out

    # tampering with the pinned digest must fail the replay gate
    raw = json.loads(capsule_path.read_text())
    raw["digest"] = "0" * 64
    capsule_path.write_text(json.dumps(raw))
    assert main(["replay", str(capsule_path)]) == 1


def test_shrink_subcommand_on_healthy_scenario_exits_1(capsys):
    code = main(["shrink", "--seed", MASTER, "--index", "0"])
    assert code == 1
    assert "does not fail" in capsys.readouterr().out


def test_strict_gate_fails_on_mutation(tmp_path):
    # the 20-scenario mut-ci slice contains at least one failure
    code = main(["swarm", "--seed", "mut-ci", "--count", "20",
                 "--mutate", "zero-read", "--strict"])
    assert code == 1


def test_unknown_mutation_rejected():
    with pytest.raises(SystemExit):
        main(["swarm", "--seed", MASTER, "--count", "1",
              "--mutate", "rm-rf"])
