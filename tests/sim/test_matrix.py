"""The scenario matrix is a pure function of the master seed.

Seed stability is the foundation everything else (swarm, shrink,
capsule replay) stands on: same master seed → byte-identical matrix;
different seeds → different matrices; every scenario re-derivable from
(master_seed, index) alone.
"""

import pytest

from repro.kernel.faults import FaultSchedule
from repro.sim import OK_CLASSES, Scenario, generate_matrix, \
    generate_scenario, schedule_palette
from repro.sim.scenario import CLASSES, WORKLOADS, SeedStream


def test_same_seed_same_matrix():
    a = [s.to_dict() for s in generate_matrix("alpha", 40)]
    b = [s.to_dict() for s in generate_matrix("alpha", 40)]
    assert a == b


def test_different_seed_different_matrix():
    a = [s.to_dict() for s in generate_matrix("alpha", 40)]
    b = [s.to_dict() for s in generate_matrix("bravo", 40)]
    assert a != b


def test_slices_compose():
    whole = generate_matrix("alpha", 20)
    front = generate_matrix("alpha", 10)
    back = generate_matrix("alpha", 10, start=10)
    assert [s.to_dict() for s in whole] \
        == [s.to_dict() for s in front + back]


def test_scenario_roundtrips_through_dict():
    for scenario in generate_matrix("roundtrip", 25):
        again = Scenario.from_dict(scenario.to_dict())
        assert again.to_dict() == scenario.to_dict()
        assert again.seed == scenario.seed


def test_matrix_covers_the_axes():
    matrix = generate_matrix("coverage", 120)
    workloads = {s.workload for s in matrix}
    assert workloads == set(WORKLOADS)
    assert any(s.schedule is None for s in matrix)
    assert any(s.schedule is not None for s in matrix)
    assert any(s.client_mode == "slowloris" for s in matrix)
    assert any(s.client_mode == "chunked" for s in matrix)
    assert any(s.partial_preludes for s in matrix)
    assert any(s.attack == "cve" for s in matrix)
    assert any(s.worker_kill for s in matrix)
    assert any(s.clock_skew_ns for s in matrix)
    assert any(s.recheck for s in matrix)


def test_axis_constraints_hold():
    for scenario in generate_matrix("constraints", 150):
        if scenario.attack != "none":
            assert scenario.smvx and scenario.protect
        if scenario.worker_kill:
            assert scenario.workload == "littled"
            assert scenario.workers >= 2
        if scenario.clock_skew_ns:
            assert scenario.workload != "minx"
        if scenario.client_mode == "chunked":
            assert scenario.workload != "littled"
            schedule = scenario.schedule_obj()
            if schedule is not None:
                assert not schedule.segment_bytes
                assert not schedule.short_read_p
                assert not schedule.eagain_p
        schedule = scenario.schedule_obj()
        if schedule is not None and schedule.backlog_cap is not None:
            assert scenario.concurrency < schedule.backlog_cap
            assert scenario.partial_preludes == 0


def test_unknown_fields_rejected():
    raw = generate_scenario("x", 0).to_dict()
    raw["bogus_axis"] = 1
    with pytest.raises(ValueError, match="bogus_axis"):
        Scenario.from_dict(raw)


def test_unknown_workload_and_mutation_rejected():
    raw = generate_scenario("x", 0).to_dict()
    raw["workload"] = "kubernetes"
    with pytest.raises(ValueError, match="workload"):
        Scenario.from_dict(raw)
    raw = generate_scenario("x", 0).to_dict()
    raw["mutation"] = "rm-rf"
    with pytest.raises(ValueError, match="mutation"):
        Scenario.from_dict(raw)


def test_seedstream_is_deterministic_and_keyed():
    def draws(index):
        stream = SeedStream("s", index)
        return [stream.draw() for _ in range(5)]

    a, b, c = draws(3), draws(3), draws(4)
    assert a == b
    assert a != c
    assert len(set(a)) == 5              # the counter advances
    assert all(0.0 <= x < 1.0 for x in a)


def test_palette_schedules_are_valid_and_named():
    names = [s.name for s in schedule_palette()]
    assert len(names) == len(set(names))
    for schedule in schedule_palette():
        FaultSchedule.from_dict(schedule.to_dict())


def test_ok_classes_subset_of_classes():
    assert OK_CLASSES < set(CLASSES)
