"""Shrinker end-to-end: find the seeded bug, minimize it, replay it.

The zero-read mutation is the known bug: every second short-read clamp
forges EOF.  The pipeline under test is the whole point of the sim
subsystem — a swarm catches the failure, the shrinker reduces it to a
minimal scenario with an explicit fault plan, and the capsule replays
bit-identically from its seeds alone.
"""

import pytest

from repro.kernel.faults import FaultSchedule
from repro.sim import OK_CLASSES, generate_matrix
from repro.sim.runner import run_scenario
from repro.sim.scenario import Scenario
from repro.sim.shrink import _ddmin, shrink, signature_of
from repro.trace.capsule import ScenarioCapsule

MASTER = "shrink-suite"


def _failing_scenario():
    for scenario in generate_matrix(MASTER, 60):
        if scenario.schedule is None \
                or not scenario.schedule.get("short_read_p"):
            continue
        scenario.mutation = "zero-read"
        if run_scenario(scenario).klass not in OK_CLASSES:
            return scenario
    raise AssertionError("matrix slice never tripped the mutation")


@pytest.fixture(scope="module")
def shrunk():
    scenario = _failing_scenario()
    return scenario, shrink(scenario)


def test_minimized_scenario_reproduces_signature(shrunk):
    scenario, result = shrunk
    assert signature_of(result.outcome) == result.signature
    assert result.signature["class"] not in OK_CLASSES
    assert result.runs > 1
    assert result.steps


def test_minimized_scenario_is_smaller(shrunk):
    scenario, result = shrunk
    mini = result.minimized
    assert mini.requests <= scenario.requests
    assert mini.concurrency <= scenario.concurrency
    # the probabilistic schedule became an explicit bisected plan
    schedule = mini.schedule_obj()
    assert schedule is not None and schedule.plan
    assert all(e["kind"] == "short_read" for e in schedule.plan)


def test_shrink_is_deterministic(shrunk):
    scenario, result = shrunk
    again = shrink(Scenario.from_dict(scenario.to_dict()))
    assert again.minimized.to_dict() == result.minimized.to_dict()
    assert again.outcome.digest == result.outcome.digest


def test_capsule_roundtrip_and_replay(shrunk, tmp_path):
    _, result = shrunk
    path = str(tmp_path / "capsule.json")
    result.capsule(meta={"suite": "pytest"}).save(path)
    capsule = ScenarioCapsule.load(path)
    assert capsule.meta["suite"] == "pytest"
    verdict = capsule.replay()
    assert verdict.reproduced and verdict.bit_identical
    assert verdict.ok
    assert not verdict.mismatches


def test_capsule_detects_digest_tampering(shrunk, tmp_path):
    _, result = shrunk
    capsule = result.capsule()
    capsule.digest = "0" * 64
    verdict = capsule.replay()
    assert verdict.reproduced and not verdict.bit_identical
    assert not verdict.ok


def test_capsule_version_gate(tmp_path):
    with pytest.raises(ValueError, match="version"):
        ScenarioCapsule.from_dict({"version": 99})


def test_shrink_refuses_healthy_scenario():
    for scenario in generate_matrix(MASTER, 20):
        if run_scenario(scenario).klass in OK_CLASSES:
            with pytest.raises(ValueError, match="does not fail"):
                shrink(scenario)
            return
    raise AssertionError("no healthy scenario in slice")


def test_plan_events_replay_the_probabilistic_run():
    scenario = _failing_scenario()
    outcome = run_scenario(scenario)
    schedule = scenario.schedule_obj()
    plan = FaultSchedule.plan_from_events(
        outcome.raw.fault_events, name="pinned",
        backlog_cap=schedule.backlog_cap)
    replayed = run_scenario(Scenario.from_dict(
        dict(scenario.to_dict(), schedule=plan.to_dict())))
    assert replayed.klass == outcome.klass
    assert replayed.raw.injected_by_kind == outcome.raw.injected_by_kind


def test_ddmin_finds_the_needed_subset():
    # failure needs items 3 AND 7 together
    def test_fn(items):
        return 3 in items and 7 in items

    result = _ddmin(list(range(10)), test_fn)
    assert sorted(result) == [3, 7]
