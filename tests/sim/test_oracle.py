"""Oracle classification table, driven with synthetic raw runs."""

from repro.sim.oracle import classify
from repro.sim.runner import RawRun
from repro.sim.scenario import Scenario


def _scenario(**kw):
    base = dict(index=0, master_seed="oracle", requests=3)
    base.update(kw)
    return Scenario(**base)


def _raw(**kw):
    base = dict(completed=3, failures=0, status_counts={200: 3})
    base.update(kw)
    return RawRun(**base)


def test_clean_run():
    klass, _ = classify(_scenario(), _raw())
    assert klass == "clean"


def test_crash_wins_over_everything():
    raw = _raw(error="boom", error_kind="RuntimeError",
               alarms=[{"kind": "X", "libc_name": "read"}])
    klass, detail = classify(_scenario(), raw)
    assert klass == "crash"
    assert "RuntimeError" in detail


def test_alarm_without_attack_is_unexpected():
    raw = _raw(alarms=[{"kind": "RETVAL_MISMATCH",
                        "libc_name": "read"}])
    klass, detail = classify(_scenario(), raw)
    assert klass == "unexpected-alarm"
    assert "RETVAL_MISMATCH" in detail


def test_detected_attack_is_expected_alarm():
    raw = _raw(attack={"directory_created": False,
                       "divergence_detected": True, "alarm_count": 1},
               alarms=[{"kind": "RETVAL_MISMATCH",
                        "libc_name": "read"}])
    klass, _ = classify(_scenario(attack="cve"), raw)
    assert klass == "expected-alarm"


def test_landed_attack_is_conformance_failure():
    raw = _raw(attack={"directory_created": True,
                       "divergence_detected": False, "alarm_count": 0})
    klass, detail = classify(_scenario(attack="cve"), raw)
    assert klass == "conformance-failure"
    assert "payload landed" in detail


def test_neutered_attack_is_clean():
    raw = _raw(attack={"directory_created": False,
                       "divergence_detected": False, "alarm_count": 0})
    klass, detail = classify(_scenario(attack="cve"), raw)
    assert klass == "clean"
    assert "neutered" in detail


def test_missing_completions_are_conformance_failure():
    klass, _ = classify(_scenario(), _raw(completed=2))
    assert klass == "conformance-failure"
    klass, _ = classify(_scenario(), _raw(failures=1))
    assert klass == "conformance-failure"


def test_non_200_status_is_conformance_failure():
    raw = _raw(status_counts={200: 2, 400: 1})
    klass, detail = classify(_scenario(), raw)
    assert klass == "conformance-failure"
    assert "400" in detail


def test_worker_kill_tolerates_partial_completion():
    scenario = _scenario(workload="littled", workers=3,
                         worker_kill=True, smvx=False, protect=None)
    klass, _ = classify(scenario, _raw(completed=1, failures=2,
                                       status_counts={200: 1}))
    assert klass == "clean"
    klass, _ = classify(scenario, _raw(completed=0, failures=3,
                                       status_counts={}))
    assert klass == "conformance-failure"
