"""Per-scenario determinism: a scenario is a pure function of its dict.

For each workload family we run the same scenario twice and require the
*entire* digest bundle — fault stream, scheduler decisions, wire events,
response bytes, clock — to come back bit-identical; a different master
seed must change it.  This is the contract the shrinker and capsule
replay rely on.
"""

import pytest

from repro.sim import OK_CLASSES, generate_matrix
from repro.sim.runner import combined_digest, run_scenario
from repro.sim.scenario import Scenario

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _first(matrix, predicate):
    for scenario in matrix:
        if predicate(scenario):
            return scenario
    raise AssertionError("matrix slice lacks the wanted scenario shape")


@pytest.fixture(scope="module")
def matrix():
    return generate_matrix("digest-stability", 60)


@pytest.mark.parametrize("workload", ["minx", "littled", "cluster"])
def test_same_scenario_bit_identical_digests(matrix, workload):
    scenario = _first(matrix, lambda s: s.workload == workload
                      and s.schedule is not None and not s.recheck)
    first = run_scenario(scenario)
    second = run_scenario(Scenario.from_dict(scenario.to_dict()))
    assert first.klass == second.klass
    assert first.digests == second.digests
    assert first.digest == second.digest
    # the bundle carries the per-plane digests, not just the fold
    assert "fault" in first.digests
    assert "responses" in first.digests


def test_cluster_digests_include_wire_and_links(matrix):
    scenario = _first(matrix, lambda s: s.workload == "cluster"
                      and not s.recheck)
    outcome = run_scenario(scenario)
    assert "wire" in outcome.digests
    assert any(key.startswith("link") for key in outcome.digests)


def test_littled_digests_include_scheduler(matrix):
    scenario = _first(matrix, lambda s: s.workload == "littled"
                      and not s.recheck)
    outcome = run_scenario(scenario)
    assert "sched" in outcome.digests
    assert outcome.digests["sched_decisions"] > 0


def test_different_master_seed_different_digest(matrix):
    scenario = _first(matrix, lambda s: s.workload == "littled"
                      and not s.recheck)
    other = scenario.to_dict()
    other["master_seed"] = "digest-stability-b"
    a = run_scenario(scenario)
    b = run_scenario(Scenario.from_dict(other))
    assert a.digest != b.digest


def test_recheck_passes_on_healthy_scenario(matrix):
    scenario = _first(matrix, lambda s: s.recheck
                      and s.workload != "cluster")
    outcome = run_scenario(scenario)
    assert outcome.klass in OK_CLASSES     # not "divergence"


def test_crash_classification_is_contained():
    scenario = Scenario(index=0, master_seed="crash-test",
                        workload="minx", smvx=True,
                        variant_strategy="bogus")
    # an unknown variant strategy blows up inside the MVX engine; the
    # runner must classify, not raise
    outcome = run_scenario(scenario)
    assert outcome.klass == "crash"
    assert outcome.raw.error_kind == "MvxSetupError"


def test_worker_kill_scenario_survives(matrix):
    scenario = _first(matrix, lambda s: s.worker_kill and not s.recheck)
    outcome = run_scenario(scenario)
    assert outcome.klass in OK_CLASSES
    assert outcome.raw.completed >= 1


def test_combined_digest_is_order_insensitive():
    a = combined_digest({"x": 1, "y": "z"})
    b = combined_digest({"y": "z", "x": 1})
    assert a == b
    assert a != combined_digest({"x": 2, "y": "z"})


def test_zero_read_mutation_changes_outcome():
    matrix = generate_matrix("mut-ci", 40)
    flipped = 0
    for scenario in matrix:
        if scenario.schedule is None \
                or not scenario.schedule.get("short_read_p"):
            continue
        healthy = run_scenario(scenario)
        mutated = Scenario.from_dict(
            dict(scenario.to_dict(), mutation="zero-read"))
        sick = run_scenario(mutated)
        if sick.klass not in OK_CLASSES:
            assert healthy.klass in OK_CLASSES
            flipped += 1
    assert flipped >= 1
