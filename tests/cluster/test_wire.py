"""Wire protocol: framing, incremental decode, batching, serialization."""

import pytest

from repro.cluster.wire import (
    BatchRing,
    FrameDecoder,
    call_msg,
    decode_frame,
    encode_frame,
    region_start_msg,
    report_from_dict,
    report_to_dict,
    verdict_msg,
)
from repro.core.divergence import CallRecord, DivergenceKind, \
    DivergenceReport
from repro.core.ipc import CallEvent


def test_frame_roundtrip():
    msgs = [region_start_msg(1, "root_fn", [4, 5], [[0x1000, "ab" * 16]],
                             {"brk": 8, "free": [], "allocated": []})]
    frame = encode_frame(7, 3, 1, msgs)
    batch = decode_frame(frame)
    assert batch["lamport"] == 7
    assert batch["seq"] == 3
    assert batch["chan"] == 1
    assert batch["msgs"] == msgs


def test_frame_encoding_is_canonical():
    msgs = [{"type": "region_end", "region": 2}]
    assert encode_frame(1, 1, 0, msgs) == encode_frame(1, 1, 0, msgs)


def test_decode_frame_rejects_truncation():
    frame = encode_frame(1, 1, 0, [{"type": "region_end", "region": 1}])
    with pytest.raises(ValueError):
        decode_frame(frame[:-2])
    with pytest.raises(ValueError):
        decode_frame(frame[:2])


def test_frame_decoder_reassembles_byte_stream():
    frames = [encode_frame(i, i, 0, [{"type": "region_end", "region": i}])
              for i in range(1, 4)]
    stream = b"".join(frames)
    decoder = FrameDecoder()
    batches = []
    # drip-feed in awkward 5-byte segments
    for start in range(0, len(stream), 5):
        batches.extend(decoder.feed(stream[start:start + 5]))
    assert [b["lamport"] for b in batches] == [1, 2, 3]
    assert decoder.pending_bytes == 0


def test_batch_ring_force_flush_signal():
    ring = BatchRing(capacity=3)
    assert not ring.append({"type": "a"})
    assert not ring.append({"type": "b"})
    assert ring.append({"type": "c"})       # full: owner must flush
    assert len(ring) == 3
    assert ring.drain() == [{"type": "a"}, {"type": "b"}, {"type": "c"}]
    assert len(ring) == 0
    assert ring.flushes == 1


def test_batch_ring_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        BatchRing(capacity=0)


def test_call_event_roundtrip_with_buffers():
    event = CallEvent(5, "recv", (3, 0x2000, 128, 0), retval=9, errno=0,
                      buffers=((1, b"payload\x00\xff"),), task=2,
                      pc=0x4242)
    raw = call_msg(event)
    assert raw["type"] == "call"
    back = CallEvent.from_dict(raw["event"])
    assert back == event


def test_sync_event_gets_sync_type():
    event = CallEvent(1, "mkdir", (0x1000, 0o755), sync=True)
    assert call_msg(event)["type"] == "sync"


def test_divergence_report_roundtrip():
    report = DivergenceReport(
        DivergenceKind.FOLLOWER_FAULT, 18, "mkdir", "fetch fault",
        CallRecord(18, "mkdir", (1, 2), "leader"), None,
        task_id=2, guest_pc=0x5555, pid=-1)
    back = report_from_dict(report_to_dict(report))
    assert back == report
    assert report_to_dict(None) is None
    assert report_from_dict(None) is None


def test_verdict_msg_carries_alarm():
    report = DivergenceReport(DivergenceKind.RETVAL, 3, "read", "x")
    msg = verdict_msg(2, 3, False, report)
    assert msg["ok"] is False
    assert report_from_dict(msg["alarm"]).kind is DivergenceKind.RETVAL
