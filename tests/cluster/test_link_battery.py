"""The full link-fault battery against distributed serving: delay,
drop/retransmit, reorder, and partition schedules must inject faults
without ever producing a spurious divergence (the link is a reliable
in-order transport; faults only move delivery times)."""

from repro.cluster.scenarios import run_distributed_ab, run_link_battery
from repro.kernel.faults import FaultSchedule, battery


def test_battery_zero_spurious_divergences():
    results = run_link_battery(requests=3)
    assert len(results) == len(battery())
    for entry in results:
        assert entry["completed"] == entry["requested"], entry
        assert entry["alarms"] == 0, entry
    # the battery as a whole actually exercised the fault plane
    assert sum(sum(e["link_faults"].values()) for e in results) > 0


def test_partition_heals_and_serving_resumes():
    schedule = FaultSchedule(name="hard-partition",
                             link_partition_every=2,
                             link_partition_ns=5_000_000)
    session = run_distributed_ab(seed="partition",
                                 fault_schedule=schedule, requests=4)
    assert session["result"].status_counts == {200: 4}
    assert session["alarms"] == 0
    injected = {}
    for link in session["run"].cluster.links.values():
        for kind, count in link.faults.injected_by_kind.items():
            injected[kind] = injected.get(kind, 0) + count
    assert injected.get("link_partition", 0) > 0
    assert session["run"].cluster.pending_frames() == 0


def test_faulted_run_still_replays_bit_identically():
    """Link faults are drawn from the per-link plane, so a faulted run
    is as deterministic as a clean one."""
    schedule = FaultSchedule(name="mix", link_delay_p=0.4,
                             link_delay_ns=80_000, link_reorder_p=0.3,
                             link_reorder_ns=40_000)

    def footers():
        session = run_distributed_ab(seed="faulted-replay",
                                     fault_schedule=schedule,
                                     requests=3, record=True)
        return [t.footer for t in session["traces"]]

    first, second = footers(), footers()
    for host_id, (want, got) in enumerate(zip(first, second)):
        assert want == got, f"host{host_id} footer diverged"
    assert first[0]["wire_digest"] == second[0]["wire_digest"]
