"""Satellite: Scheduler cancellation while a worker is parked in a
blocking ``epoll_wait`` inside an open protected region whose wire
batch has not been flushed yet.

The cancellation must unwind the guest normally: ``epoll_wait`` returns
"nothing ready", the region closes — which posts ``region_end``, flushes
the pending batch, and blocks for the remote verdict — and the whole
cluster drains with zero alarms."""

from repro.cluster.scenarios import build_littled_cluster
from repro.workloads.ab import ApacheBench


def _park_with_pending_batch(run):
    """Serve a little, then leave a half request in flight so a worker
    accepts it and parks back in ``epoll_wait`` with the accept/recv
    events still sitting unflushed in the leader's wire ring."""
    kernel = run.cluster.host(0).kernel
    result = ApacheBench(kernel, run.leader).run(4, concurrency=2)
    assert result.status_counts == {200: 4}

    sock = kernel.network.connect(run.leader.port)
    assert not isinstance(sock, int)
    # no terminating \r\n\r\n: the request can never complete
    sock.send(b"GET /index.html HTTP/1.1\r\nHost: local")
    listener = kernel.network.listener_at(run.leader.port)
    status = kernel.sched.run_until(
        lambda: listener.pending_count() == 0)
    assert status == "done"
    return sock


def test_cancel_while_parked_in_epoll_wait_with_pending_batch():
    run = build_littled_cluster(seed="cancel-park", workers=2)
    _park_with_pending_batch(run)

    # the scenario is real: every worker task is alive and parked, at
    # least one leader monitor has an open region, and at least one
    # wire ring holds batched events that never got flushed
    assert all(not w.task.done for w in run.leader.workers)
    open_regions = [m for m in run.dsmvx.monitors if m.region is not None]
    assert open_regions
    assert any(len(m.endpoint.ring) > 0 for m in run.dsmvx.monitors)

    run.leader.shutdown()               # cancel + drain + reap
    run.dsmvx.settle()

    assert run.leader.alarms.alarms == []
    assert run.mirror.alarms.alarms == []
    for monitor in run.dsmvx.monitors:
        assert monitor.region is None   # region_end ran on the way out
        assert len(monitor.endpoint.ring) == 0
    for runner in run.dsmvx.runners.values():
        assert runner.monitor.region is None
        assert runner.alarm is None
    assert run.cluster.pending_frames() == 0
    assert all(w.task.done for w in run.leader.workers)


def test_cancel_drain_is_deterministic():
    """Two identical cancel-while-parked runs end on the same schedule
    digest and the same cluster frame count."""

    def audit():
        run = build_littled_cluster(seed="cancel-replay", workers=2)
        _park_with_pending_batch(run)
        run.leader.shutdown()
        run.dsmvx.settle()
        kernel = run.cluster.host(0).kernel
        return (kernel.sched.digest, kernel.sched.decisions,
                run.cluster.frames_delivered,
                run.cluster.host(0).lamport, run.cluster.host(1).lamport)

    assert audit() == audit()
