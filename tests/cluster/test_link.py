"""Cluster fabric: links, global dispatch order, Lamport clocks, and
link-fault determinism."""

from repro.cluster import Cluster, WireEndpoint
from repro.kernel.faults import FaultSchedule


def _endpoint(cluster, src, dst, chan=0):
    return WireEndpoint(cluster.host(src), cluster.link(src, dst), chan)


def _catcher(link):
    got = []
    link.on_frame = lambda batch, t: got.append((batch, t))
    return got


def test_delivery_advances_destination_clock():
    cluster = Cluster(latency_ns=250_000)
    endpoint = _endpoint(cluster, 0, 1)
    got = _catcher(cluster.link(0, 1))
    endpoint.post({"type": "region_end", "region": 1})
    endpoint.flush()
    assert cluster.pump() == 1
    assert got[0][1] == 250_000
    assert cluster.host(1).clock.monotonic_ns == 250_000
    # source clock untouched by delivery
    assert cluster.host(0).clock.monotonic_ns == 0


def test_global_dispatch_lowest_time_first():
    cluster = Cluster(hosts=3, latency_ns=100_000)
    fast = _endpoint(cluster, 0, 1)
    slow = _endpoint(cluster, 0, 2)
    cluster.link(0, 2).latency_ns = 900_000
    order = []
    cluster.link(0, 1).on_frame = lambda b, t: order.append(("h1", t))
    cluster.link(0, 2).on_frame = lambda b, t: order.append(("h2", t))
    slow.post({"type": "region_end", "region": 1})
    slow.flush()
    fast.post({"type": "region_end", "region": 1})
    fast.flush()
    cluster.pump()
    # the later-sent but lower-latency frame delivers first
    assert order == [("h1", 100_000), ("h2", 900_000)]


def test_lamport_clocks_advance_on_send_and_receive():
    cluster = Cluster()
    fwd = _endpoint(cluster, 0, 1)
    back = _endpoint(cluster, 1, 0)
    _catcher(cluster.link(0, 1))
    _catcher(cluster.link(1, 0))
    fwd.post({"type": "region_end", "region": 1})
    fwd.flush()                                   # h0: L=1
    cluster.pump()                                # h1: L=max(0,1)+1=2
    assert cluster.host(1).lamport == 2
    back.post({"type": "verdict", "region": 1, "seq": -1, "ok": True,
               "alarm": None, "calls": 0})
    back.flush()                                  # h1: L=3
    cluster.pump()                                # h0: L=max(1,3)+1=4
    assert cluster.host(0).lamport == 4


def test_wire_hooks_see_send_and_recv():
    cluster = Cluster()
    seen = []
    cluster.host(0).kernel.wire_hooks.append(
        lambda d, link, meta: seen.append((0, d, link)))
    cluster.host(1).kernel.wire_hooks.append(
        lambda d, link, meta: seen.append((1, d, link)))
    endpoint = _endpoint(cluster, 0, 1)
    _catcher(cluster.link(0, 1))
    endpoint.post({"type": "region_end", "region": 1})
    endpoint.flush()
    cluster.pump()
    assert seen == [(0, "send", "h0->h1"), (1, "recv", "h0->h1")]


def test_link_faults_are_deterministic_and_in_order():
    def run():
        cluster = Cluster(seed="fault-link")
        link = cluster.link(0, 1)
        link.install(FaultSchedule(
            name="mix", link_delay_p=0.5, link_delay_ns=70_000,
            link_drop_p=0.3, link_rto_ns=400_000,
            link_reorder_p=0.4, link_reorder_ns=30_000,
            link_partition_every=4, link_partition_ns=1_000_000))
        endpoint = _endpoint(cluster, 0, 1)
        times = []
        link.on_frame = lambda batch, t: times.append(t)
        for index in range(12):
            endpoint.post({"type": "region_end", "region": index})
            endpoint.flush()
        cluster.pump()
        return times, dict(link.faults.injected_by_kind)

    times_a, injected_a = run()
    times_b, injected_b = run()
    assert times_a == times_b                    # bit-identical timing
    assert injected_a == injected_b
    assert sum(injected_a.values()) > 0          # faults actually fired
    # reliable in-order transport: delivery times never regress
    assert times_a == sorted(times_a)
    assert len(times_a) == 12                    # nothing lost for good


def test_link_fault_plane_isolated_from_host_plane():
    cluster = Cluster(seed="isolated")
    schedule = FaultSchedule(name="d", link_delay_p=1.0,
                             link_delay_ns=50_000)
    cluster.install_link_faults(schedule)
    endpoint = _endpoint(cluster, 0, 1)
    _catcher(cluster.link(0, 1))
    endpoint.post({"type": "region_end", "region": 1})
    endpoint.flush()
    cluster.pump()
    assert cluster.link(0, 1).faults.injected_by_kind["link_delay"] == 1
    # the hosts' own syscall fault planes never saw a draw
    assert cluster.host(0).kernel.faults.injected_total == 0
    assert cluster.host(1).kernel.faults.injected_total == 0


def test_battery_schedules_arm_link_faults():
    from repro.kernel.faults import battery
    for schedule in battery():
        assert (schedule.link_delay_p or schedule.link_drop_p
                or schedule.link_reorder_p
                or schedule.link_partition_every), \
            f"{schedule.name} arms no link faults"


def test_endpoint_ring_auto_flushes_at_capacity():
    cluster = Cluster()
    endpoint = WireEndpoint(cluster.host(0), cluster.link(0, 1),
                            capacity=4)
    batches = _catcher(cluster.link(0, 1))
    for index in range(9):
        endpoint.post({"type": "region_end", "region": index})
    cluster.pump()
    # 9 posts with capacity 4: two auto-flush frames, one message left
    assert [len(b["msgs"]) for b, _ in batches] == [4, 4]
    assert len(endpoint.ring) == 1
