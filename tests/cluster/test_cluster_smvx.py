"""Distributed sMVX end to end: serving, state sync, CVE equality,
per-host record/replay, and the causally-merged trace (the ISSUE
acceptance battery)."""

import pytest

from repro.cluster.remote import snapshot_hashes
from repro.cluster.scenarios import (
    build_littled_cluster,
    build_minx_cluster,
    compare_cve_alarms,
    replay_cluster,
    run_distributed_ab,
    run_distributed_cve,
)
from repro.core.divergence import DivergenceKind
from repro.errors import MvxSetupError
from repro.trace.merge import merge_digest, merge_summary, merge_traces
from repro.workloads.ab import ApacheBench


# -- benign serving ------------------------------------------------------------


def test_distributed_minx_serves_requests():
    session = run_distributed_ab(requests=3)
    assert session["result"].status_counts == {200: 3}
    assert session["alarms"] == 0
    monitor = session["run"].dsmvx.monitor
    assert monitor.stats.regions_entered == 3
    assert monitor.stats.leader_calls > 0
    # every region's events crossed the wire and every frame drained
    assert session["run"].cluster.frames_delivered > 0
    assert session["run"].cluster.pending_frames() == 0


def test_only_region_events_cross_the_network():
    """dMVX selective replication: with a narrow protected region only
    its events ship; with no region selected, nothing ships at all."""
    narrow = build_minx_cluster(seed="narrow",
                                protect="minx_http_log_access")
    result = ApacheBench(narrow.cluster.host(0).kernel,
                         narrow.leader).run(2)
    assert result.status_counts == {200: 2}
    narrow.dsmvx.settle()
    frames_narrow = sum(l.frames_sent
                        for l in narrow.cluster.links.values())
    assert frames_narrow > 0
    # the narrow region replays far fewer calls than the hot-path one
    hot = build_minx_cluster(seed="hot")
    ApacheBench(hot.cluster.host(0).kernel, hot.leader).run(2)
    hot.dsmvx.settle()
    assert narrow.dsmvx.runners[0].events_played \
        < hot.dsmvx.runners[0].events_played

    cold = build_minx_cluster(seed="cold", protect=None)
    ApacheBench(cold.cluster.host(0).kernel, cold.leader).run(2)
    frames_none = sum(l.frames_sent
                      for l in cold.cluster.links.values())
    assert frames_none == 0                      # no region, no traffic


def test_common_checkpoint_and_state_delta():
    """The dMVX state-sync contract: leader and mirror are bit-identical
    at the common checkpoint; serving ships only dirtied pages, and the
    heap bookkeeping survives the JSON round trip."""
    run = build_minx_cluster(start=False)
    leader, mirror = run.leader.process, run.mirror.process
    # built identically: every syncable page hashes the same
    assert snapshot_hashes(leader) == snapshot_hashes(mirror)

    run.leader.start()
    ApacheBench(run.cluster.host(0).kernel, run.leader).run(1)
    run.dsmvx.settle()
    monitor = run.dsmvx.monitor
    assert monitor._page_hashes                  # checkpoint taken
    assert run.dsmvx.runners[0].events_played > 0
    # the delta against the monitor's own snapshot is now empty — the
    # snapshot was advanced at the last region entry
    ApacheBench(run.cluster.host(0).kernel, run.leader).run(1)
    run.dsmvx.settle()
    from repro.cluster.remote import adopt_heap_book, heap_book
    # heap bookkeeping round-trips through the wire encoding
    book = heap_book(leader)
    adopt_heap_book(mirror, book)
    assert heap_book(mirror) == book


def test_littled_multiworker_distributed():
    run = build_littled_cluster(workers=2)
    kernel = run.cluster.host(0).kernel
    result = ApacheBench(kernel, run.leader).run(6, concurrency=3)
    assert result.sched_status == "done"
    assert result.status_counts == {200: 6}
    assert len(run.leader.alarms.alarms) == 0
    # both worker channels opened regions over their own wire channel
    regions = [m.stats.regions_entered for m in run.dsmvx.monitors]
    assert all(r >= 1 for r in regions)
    run.leader.shutdown()
    run.dsmvx.settle()
    assert run.cluster.pending_frames() == 0
    for monitor in run.dsmvx.monitors:
        assert monitor.region is None            # all regions closed


def test_leader_must_be_built_without_smvx():
    from repro.apps.minx import MinxServer
    from repro.cluster import Cluster, DistributedSmvx
    cluster = Cluster()
    leader = MinxServer(cluster.host(0).kernel, smvx=True,
                        protect="minx_http_process_request_line")
    mirror = MinxServer(cluster.host(1).kernel, smvx=True,
                        protect="minx_http_process_request_line")
    with pytest.raises(MvxSetupError):
        DistributedSmvx(cluster, leader, mirror)


# -- the security experiment ---------------------------------------------------


def test_cve_detected_remotely_and_blocked():
    session = run_distributed_cve()
    assert session["outcome"].divergence_detected
    assert not session["directory_created"]      # mkdir never executed
    alarm = session["alarm"]
    assert alarm.kind is DivergenceKind.FOLLOWER_FAULT
    assert alarm.libc_name == "mkdir"
    assert alarm.guest_pc > 0                    # the gadget address
    assert alarm.pid == session["run"].leader.process.pid


def test_cve_alarm_location_identical_to_inprocess():
    """Acceptance criterion: same alarm, same guest PC, remote as
    in-process."""
    comparison = compare_cve_alarms()
    assert comparison["match"], comparison
    assert comparison["in_process_blocked"]
    assert comparison["distributed_blocked"]
    pc = comparison["fields"]["guest_pc"]
    assert pc["in_process"] == pc["distributed"]


def test_cve_leader_survives_and_serves_after_alarm():
    """After the remote verdict kills the region, the leader process
    keeps serving benign traffic (the sMVX recovery story)."""
    session = run_distributed_cve()
    run = session["run"]
    result = ApacheBench(run.cluster.host(0).kernel, run.leader).run(1)
    assert result.status_counts == {200: 1}
    assert len(run.leader.alarms.alarms) == 1    # no new alarms


# -- record / replay / merge ---------------------------------------------------


def test_cluster_records_one_trace_per_host():
    session = run_distributed_ab(requests=2, record=True)
    traces = session["traces"]
    assert [t.footer["host_id"] for t in traces] == [0, 1]
    for trace in traces:
        assert trace.footer["wire_frames"] > 0
        assert trace.footer["lamport_max"] > 0
        assert len(trace.footer["wire_digest"]) == 64
    # both hosts saw the same number of frames (every send delivered)
    assert traces[0].footer["wire_frames"] == \
        traces[1].footer["wire_frames"]


def test_cluster_replays_bit_identically_per_host_and_merged():
    outcome = replay_cluster(requests=2)
    assert outcome["ok"], outcome["problems"]


def test_merged_order_is_stable_across_runs():
    def merged():
        session = run_distributed_ab(requests=2, record=True)
        return merge_traces(session["traces"])

    first, second = merged(), merged()
    assert merge_digest(first) == merge_digest(second)
    summary = merge_summary(first)
    assert summary["hosts"] == [0, 1]
    assert summary["wire_events"] > 0


def test_merge_respects_causality():
    """Every recv is ordered after its matching send in the merge."""
    session = run_distributed_ab(requests=2, record=True)
    merged = merge_traces(session["traces"])
    sends = {}
    for position, event in enumerate(merged):
        if event["kind"] != "wire":
            continue
        name = event.get("name", "")
        frame = event["data"]["frame"]
        direction, link = name.split(":", 1)
        if direction == "send":
            sends[(link, frame)] = position
        else:
            assert (link, frame) in sends, f"recv before send: {event}"
            assert sends[(link, frame)] < position


def test_distributed_cve_recorded_alarm_in_leader_trace():
    session = run_distributed_cve(record=True)
    leader_trace = session["traces"][0]
    alarms = leader_trace.footer["alarms"]
    assert len(alarms) == 1
    assert alarms[0]["kind"] == "FOLLOWER_FAULT"
    assert alarms[0]["libc_name"] == "mkdir"
    # the mirror host logged the same divergence on its own log
    mirror_trace = session["traces"][1]
    assert mirror_trace.footer["alarms"], \
        "mirror host kept no operational record of the divergence"


def test_pump_hook_coexists_with_prior_idle_hook():
    """Regression: DistributedSmvx used to skip registering its frame
    pump when any idle hook was already installed (and, before that, the
    single-slot ``idle_hook`` attribute silently clobbered one of the
    two).  Both hooks must run: the observer sees idle points AND the
    pump still drains verdict frames, so scheduled serving completes."""
    from repro.cluster import Cluster
    from repro.apps.littled import LittledServer
    from repro.cluster.remote import DistributedSmvx
    from repro.cluster.scenarios import LITTLED_PROTECT

    cluster = Cluster(seed="hook-coexist", hosts=2)
    kernel = cluster.host(0).kernel
    leader = LittledServer(kernel, protect=LITTLED_PROTECT,
                           smvx=False, workers=2)
    observed = {"idle": 0}

    def observer():
        observed["idle"] += 1
        return False

    kernel.sched.add_idle_hook(observer)      # sim-style instrumentation
    mirror = LittledServer(cluster.host(1).kernel,
                           protect=LITTLED_PROTECT, smvx=True, workers=2)
    dsmvx = DistributedSmvx(cluster, leader, mirror)
    assert kernel.sched.idle_hooks == [observer, cluster.pump_one]

    leader.start()
    result = ApacheBench(kernel, leader).run(4, concurrency=2)
    assert result.status_counts == {200: 4}
    assert observed["idle"] >= 1
    leader.shutdown()
    dsmvx.settle()
