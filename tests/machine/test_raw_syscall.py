"""The raw SYSCALL instruction path: ISA code trapping into the kernel
directly (no libc), via the Linux syscall-number table."""

import pytest

from repro.kernel import Kernel
from repro.kernel.kernel import SYSCALL_NUMBERS
from repro.loader import ImageBuilder
from repro.machine import Assembler
from repro.process import GuestProcess, to_signed


@pytest.fixture
def process():
    return GuestProcess(Kernel(), "raw")


def test_raw_getpid(process):
    builder = ImageBuilder("rawapp")
    a = Assembler()
    a.mov_ri("rax", SYSCALL_NUMBERS["getpid"])
    a.syscall()
    a.ret()
    builder.add_isa_function("raw_getpid", a)
    process.load_image(builder.build(), main=True)
    assert process.call_function("raw_getpid") == process.pid


def test_raw_mkdir_and_bad_number(process):
    from repro.kernel.errno_codes import Errno
    builder = ImageBuilder("rawapp")
    a = Assembler()
    a.lea("rdi", "dirname")
    a.mov_ri("rsi", 0o755)
    a.mov_ri("rax", SYSCALL_NUMBERS["mkdir"])
    a.syscall()
    a.ret()
    builder.add_isa_function("raw_mkdir", a)
    bad = Assembler()
    bad.mov_ri("rax", 9999)
    bad.syscall()
    bad.ret()
    builder.add_isa_function("raw_bad", bad)
    builder.add_rodata("dirname", b"/tmp/rawdir\x00")
    process.load_image(builder.build(), main=True)
    assert process.call_function("raw_mkdir") == 0
    assert process.kernel.vfs.is_dir("/tmp/rawdir")
    assert to_signed(process.call_function("raw_bad")) == -Errno.ENOSYS


def test_raw_syscalls_counted(process):
    builder = ImageBuilder("rawapp")
    a = Assembler()
    a.mov_ri("rax", SYSCALL_NUMBERS["getpid"])
    a.syscall()
    a.mov_ri("rax", SYSCALL_NUMBERS["getpid"])   # rax held the pid
    a.syscall()
    a.ret()
    builder.add_isa_function("raw_twice", a)
    process.load_image(builder.build(), main=True)
    before = process.kernel.syscall_count(process.pid)
    process.call_function("raw_twice")
    assert process.kernel.syscall_count(process.pid) == before + 2
