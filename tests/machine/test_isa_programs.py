"""Whole-stack tests with pure-ISA guest programs.

These exercise the loader + process + CPU path with *no* high-level
functions at all: real assembled code doing real work against guest
memory, including cross-function calls, PLT calls into libc, recursion
through the guest stack, and function pointers."""

import pytest

from repro.kernel import Kernel
from repro.libc import build_libc_image
from repro.loader import ImageBuilder
from repro.machine import Assembler
from repro.process import GuestProcess, to_signed


@pytest.fixture
def process():
    proc = GuestProcess(Kernel(), "isa")
    proc.load_image(build_libc_image(), tag="libc")
    return proc


def load(process, builder):
    return process.load_image(builder.build(), main=True)


def test_isa_strlen(process):
    """strlen in assembly: byte loads, compare, loop."""
    builder = ImageBuilder("isa-strlen")
    a = Assembler()
    a.mov_ri("rax", 0)
    a.label("loop")
    a.load8("rcx", "rdi")
    a.cmp_ri("rcx", 0)
    a.je("done")
    a.add_ri("rdi", 1)
    a.add_ri("rax", 1)
    a.jmp("loop")
    a.label("done")
    a.ret()
    builder.add_isa_function("my_strlen", a)
    builder.add_rodata("msg", b"selected code paths\x00")
    loaded = load(process, builder)
    result = process.call_function("my_strlen",
                                   loaded.symbol_address("msg"))
    assert result == len(b"selected code paths")


def test_isa_memcpy_and_verify(process):
    builder = ImageBuilder("isa-memcpy")
    a = Assembler()
    # rdi=dst, rsi=src, rdx=len
    a.mov_ri("rax", 0)                 # index
    a.label("loop")
    a.cmp_rr("rax", "rdx")
    a.je("done")
    a.mov_rr("r8", "rsi")
    a.add_rr("r8", "rax")
    a.load8("r9", "r8")
    a.mov_rr("r8", "rdi")
    a.add_rr("r8", "rax")
    a.store8("r8", "r9")
    a.add_ri("rax", 1)
    a.jmp("loop")
    a.label("done")
    a.ret()
    builder.add_isa_function("my_memcpy", a)
    builder.add_rodata("src_data", b"MVX!")
    builder.add_bss("dst_data", 16)
    loaded = load(process, builder)
    process.call_function("my_memcpy",
                          loaded.symbol_address("dst_data"),
                          loaded.symbol_address("src_data"), 4)
    got = process.space.read(loaded.symbol_address("dst_data"), 4,
                             privileged=True)
    assert got == b"MVX!"


def test_isa_recursion_factorial(process):
    """Recursive factorial: call stack discipline under real CALL/RET."""
    builder = ImageBuilder("isa-fact")
    a = Assembler()
    a.cmp_ri("rdi", 1)
    a.jl("base")                       # n < 1 -> 1
    a.je("base_one")
    a.push_r("rdi")
    a.sub_ri("rdi", 1)
    a.call("fact")
    a.pop_r("rdi")
    a.mul_rr("rax", "rdi")
    a.ret()
    a.label("base")
    a.mov_ri("rax", 1)
    a.ret()
    a.label("base_one")
    a.mov_ri("rax", 1)
    a.ret()
    fact = Assembler()
    fact_builder = ImageBuilder("isa-fact")
    # single function with internal label as entry: name it fact
    fact_builder.add_isa_function("fact", a)
    loaded = process.load_image(fact_builder.build(), main=True)
    # labels inside the assembler are function-internal; "fact" resolves
    # to the entry, and the recursive `call("fact")` was resolved at
    # assembly time against the function's own start
    assert process.call_function("fact", 6) == 720


def test_isa_function_pointer_dispatch(process):
    """Indirect call through a .data pointer table (CALL_R)."""
    builder = ImageBuilder("isa-indirect")
    double = Assembler()
    double.mov_rr("rax", "rdi")
    double.add_rr("rax", "rdi")
    double.ret()
    builder.add_isa_function("double_it", double)
    triple = Assembler()
    triple.mov_rr("rax", "rdi")
    triple.add_rr("rax", "rdi")
    triple.add_rr("rax", "rdi")
    triple.ret()
    builder.add_isa_function("triple_it", triple)
    dispatch = Assembler()
    # rdi=value, rsi=table index; rbx is callee-saved so save it
    dispatch.push_r("rbx")
    dispatch.lea("rbx", "table_ref")
    dispatch.load("rbx", "rbx")        # rbx = &table (via data pointer)
    dispatch.shl_ri("rsi", 3)
    dispatch.add_rr("rbx", "rsi")
    dispatch.load("rbx", "rbx")        # rbx = table[i]
    dispatch.call_r("rbx")
    dispatch.pop_r("rbx")
    dispatch.ret()
    builder.add_isa_function("dispatch", dispatch)
    builder.add_pointer_table("fn_table", ["double_it", "triple_it"])
    builder.add_data_pointer("table_ref", "fn_table")
    load(process, builder)
    assert process.call_function("dispatch", 21, 0) == 42
    assert process.call_function("dispatch", 21, 1) == 63


def test_isa_calls_libc_write_through_plt(process):
    """ISA code issuing a real libc call: LEA the buffer, call write@plt."""
    builder = ImageBuilder("isa-write")
    builder.import_libc("open", "write", "close")
    a = Assembler()
    # rdi already = fd (passed by caller); write(fd, msg, 5)
    a.lea("rsi", "msg")
    a.mov_ri("rdx", 5)
    a.mov_ri("rax", 3)
    a.call("write@plt")
    a.ret()
    builder.add_isa_function("log_hello", a)
    builder.add_rodata("msg", b"hello")
    load(process, builder)

    kernel = process.kernel
    from repro.kernel.vfs import O_CREAT, O_WRONLY
    scratch = process.space.mmap(None, 4096)
    process.space.write(scratch, b"/tmp/isa.log\x00", privileged=True)
    fd = kernel.syscall(process, "open", scratch, O_WRONLY | O_CREAT)
    assert process.call_function("log_hello", fd) == 5
    assert kernel.vfs.read_file("/tmp/isa.log") == b"hello"


def test_isa_bitwise_kernel(process):
    """AND/OR/XOR/NOT/shifts through a real computation (parity)."""
    builder = ImageBuilder("isa-bits")
    a = Assembler()
    # popcount(rdi) & 1, the hard way
    a.mov_ri("rax", 0)
    a.label("loop")
    a.cmp_ri("rdi", 0)
    a.je("done")
    a.mov_rr("rcx", "rdi")
    a.and_ri("rcx", 1)
    a.xor_rr("rax", "rcx")
    a.shr_ri("rdi", 1)
    a.jmp("loop")
    a.label("done")
    a.ret()
    builder.add_isa_function("parity", a)
    load(process, builder)
    for value in (0, 1, 0b1011, 0xFF, 0xDEADBEEF):
        expected = bin(value).count("1") & 1
        assert process.call_function("parity", value) == expected
