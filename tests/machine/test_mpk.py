"""Unit tests for MPK/PKRU semantics and the pkey allocator."""

import pytest

from repro.machine.mpk import (
    NUM_PKEYS,
    PKEY_DEFAULT,
    PKRU_ALLOW_ALL,
    PkeyAllocator,
    pkru_allows_read,
    pkru_allows_write,
    pkru_disable_access,
    pkru_disable_write,
    pkru_enable_all,
)


def test_allow_all_allows_everything():
    for key in range(NUM_PKEYS):
        assert pkru_allows_read(PKRU_ALLOW_ALL, key)
        assert pkru_allows_write(PKRU_ALLOW_ALL, key)


def test_access_disable_blocks_read_and_write():
    pkru = pkru_disable_access(PKRU_ALLOW_ALL, 4)
    assert not pkru_allows_read(pkru, 4)
    assert not pkru_allows_write(pkru, 4)
    # other keys untouched
    assert pkru_allows_read(pkru, 3)
    assert pkru_allows_write(pkru, 5)


def test_write_disable_blocks_only_writes():
    pkru = pkru_disable_write(PKRU_ALLOW_ALL, 7)
    assert pkru_allows_read(pkru, 7)
    assert not pkru_allows_write(pkru, 7)


def test_enable_all_clears_both_bits():
    pkru = pkru_disable_access(pkru_disable_write(0, 2), 2)
    pkru = pkru_enable_all(pkru, 2)
    assert pkru_allows_read(pkru, 2)
    assert pkru_allows_write(pkru, 2)


def test_bits_layout_matches_sdm():
    """AD is bit 2k, WD is bit 2k+1 — the layout the SDM documents."""
    assert pkru_disable_access(0, 0) == 0b01
    assert pkru_disable_write(0, 0) == 0b10
    assert pkru_disable_access(0, 1) == 0b0100
    assert pkru_disable_write(0, 15) == 1 << 31


def test_key_range_validated():
    with pytest.raises(ValueError):
        pkru_disable_access(0, NUM_PKEYS)
    with pytest.raises(ValueError):
        pkru_allows_read(0, -1)


def test_allocator_hands_out_distinct_keys():
    alloc = PkeyAllocator()
    keys = {alloc.alloc() for _ in range(NUM_PKEYS - 1)}
    assert len(keys) == NUM_PKEYS - 1
    assert PKEY_DEFAULT not in keys
    with pytest.raises(RuntimeError):
        alloc.alloc()


def test_allocator_free_and_reuse():
    alloc = PkeyAllocator()
    key = alloc.alloc()
    alloc.free(key)
    assert alloc.alloc() == key


def test_allocator_guards():
    alloc = PkeyAllocator()
    with pytest.raises(ValueError):
        alloc.free(PKEY_DEFAULT)
    with pytest.raises(ValueError):
        alloc.free(9)  # never allocated
