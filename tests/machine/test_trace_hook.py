"""The per-instruction trace hook: fires once per retired instruction,
and a misbehaving hook can never corrupt the observed execution."""

from repro.machine import Assembler, Instruction, Op
from repro.machine.cpu import ExecState

from tests.machine.test_cpu import make_machine, run_to_host


def _sum_program():
    a = Assembler()
    a.mov_ri("rax", 0)
    a.mov_ri("rcx", 0)
    a.label("loop")
    a.add_rr("rax", "rcx")
    a.add_ri("rcx", 1)
    a.cmp_ri("rcx", 10)
    a.jne("loop")
    a.ret()
    return a


def test_hook_fires_once_per_retired_instruction():
    cpu, state, _ = make_machine(_sum_program())
    calls = []
    cpu.trace_hook = lambda st, addr, instr: calls.append((st, addr, instr))
    assert run_to_host(cpu, state) == sum(range(10))
    assert len(calls) == cpu.instructions_retired
    for hooked_state, addr, instr in calls:
        assert hooked_state is state
        assert isinstance(addr, int)
        assert isinstance(instr, Instruction)
    # the hook saw the actual opcode stream, starting at the entry point
    assert calls[0][2].op is Op.MOV_RI
    assert calls[-1][2].op is Op.RET
    # the loop body retired 10 times
    assert sum(1 for _, _, i in calls if i.op is Op.JNE) == 10


def test_hook_sees_pre_execution_pc():
    """The addr argument is the instruction's own address (rip before
    execution), so a tracer can reconstruct the control flow."""
    cpu, state, _ = make_machine(_sum_program())
    addrs = []
    cpu.trace_hook = lambda st, addr, instr: addrs.append(addr)
    run_to_host(cpu, state)
    from repro.machine import INSTR_SIZE
    from tests.machine.test_cpu import CODE_BASE
    assert addrs[0] == CODE_BASE
    assert addrs[1] == CODE_BASE + INSTR_SIZE


def test_raising_hook_is_detached_and_execution_unharmed():
    # ground truth: the run without any hook
    cpu, state, _ = make_machine(_sum_program())
    expected = run_to_host(cpu, state)
    expected_retired = cpu.instructions_retired

    boom = RuntimeError("observer crashed")

    def bad_hook(st, addr, instr):
        raise boom

    cpu2, state2, _ = make_machine(_sum_program())
    cpu2.trace_hook = bad_hook
    assert run_to_host(cpu2, state2) == expected
    assert cpu2.instructions_retired == expected_retired
    assert cpu2.trace_hook is None              # detached at first raise
    assert cpu2.trace_hook_error is boom        # but the error is kept


def test_hook_charges_no_virtual_time():
    cpu, state, _ = make_machine(_sum_program())
    run_to_host(cpu, state)
    silent_ns = cpu.counter.total_ns

    cpu2, state2, _ = make_machine(_sum_program())
    cpu2.trace_hook = lambda st, addr, instr: None
    run_to_host(cpu2, state2)
    assert cpu2.counter.total_ns == silent_ns


def test_hook_not_called_when_detached_midway():
    """After the hook detaches itself (by raising), later instructions
    retire without calling it."""
    cpu, state, _ = make_machine(_sum_program())
    seen = []

    def one_shot(st, addr, instr):
        seen.append(addr)
        raise ValueError("stop observing")

    cpu.trace_hook = one_shot
    run_to_host(cpu, state)
    assert len(seen) == 1
    assert cpu.instructions_retired > 1
