"""Unit and differential tests for the JIT tier (``repro.machine.jit``).

The three-tier contract says a translated superblock is architecturally
invisible: registers, flags, memory, virtual time, retired-instruction
counts and fault state must be bit-identical to the precise path at
every observable point.  These tests drive the edge cases the
differential workload suite can't reach deterministically: promotion
thresholds, self-modifying code inside a live superblock, mprotect/
munmap invalidation, observers attached mid-run from a syscall handler,
``until_rip`` landing inside a translated region, faults mid-superblock,
and randomized program fuzz against the precise interpreter.
"""

import random
import struct

import pytest

from repro.errors import SegmentationFault
from repro.machine import (
    INSTR_SIZE,
    PAGE_SIZE,
    PROT_RW,
    PROT_RWX,
    PROT_RX,
    AddressSpace,
    Assembler,
    CPU,
)
from repro.machine.cpu import CpuExit, ExecState, HOST_RETURN_ADDRESS
from repro.machine.registers import RegisterFile

CODE_BASE = 0x40_0000
DATA_BASE = 0x50_0000
STACK_TOP = 0x7000_0000


class PreciseCPU(CPU):
    force_slow_path = True
    jit_enabled = False


class FastCPU(CPU):
    jit_enabled = False


def make_machine(assembler, cpu_cls=CPU, code_prot=PROT_RX, data_pages=2,
                 threshold=2, syscall_handler=None):
    space = AddressSpace()
    code = assembler.assemble(CODE_BASE)
    space.mmap(CODE_BASE, max(len(code), 1), prot=code_prot, tag="text")
    space.write(CODE_BASE, code, privileged=True)
    space.mmap(DATA_BASE, data_pages * PAGE_SIZE, prot=PROT_RW, tag="data")
    space.mmap(STACK_TOP - 4 * PAGE_SIZE, 4 * PAGE_SIZE, prot=PROT_RW,
               tag="stack")
    cpu = cpu_cls(space, syscall_handler=syscall_handler)
    if cpu.jit is not None:
        cpu.jit.threshold = threshold
    state = ExecState(RegisterFile())
    state.regs.rip = CODE_BASE
    state.regs.set("rsp", STACK_TOP - 64)
    return cpu, state


def run_to_host(cpu, state, until_rip=HOST_RETURN_ADDRESS):
    cpu._push(state, HOST_RETURN_ADDRESS)
    reason = cpu.run(state, until_rip=until_rip)
    assert reason == "host-return"
    return state


def observables(cpu, state):
    return {
        "registers": state.regs.snapshot(),
        "virtual_ns": cpu.counter.total_ns,
        "instructions": cpu.instructions_retired,
        "data": bytes(cpu.space.page_at(DATA_BASE).data),
    }


def differential(assembler, **kwargs):
    """Run the program on the jit and precise tiers; both observable end
    states, jit first."""
    results = []
    for cls in (CPU, PreciseCPU):
        cpu, state = make_machine(assembler, cpu_cls=cls, **kwargs)
        run_to_host(cpu, state)
        results.append((cpu, observables(cpu, state)))
    (jit_cpu, jit_obs), (_, precise_obs) = results
    assert jit_obs == precise_obs
    return jit_cpu, jit_obs


def counting_loop(n=100):
    a = Assembler()
    a.mov_ri("rax", 0)
    a.mov_ri("rcx", 0)
    a.label("loop")
    a.add_rr("rax", "rcx")
    a.add_ri("rcx", 1)
    a.cmp_ri("rcx", n)
    a.jne("loop")
    a.ret()
    return a


# -- promotion policy ---------------------------------------------------------


def test_hot_loop_promotes_and_runs_jitted():
    jit_cpu, _ = differential(counting_loop(100))
    stats = jit_cpu.stats()
    assert stats["jit_promotions"] == 1
    assert stats["jit_blocks"] >= 1
    assert stats["jit_insns"] > stats["fast_insns"]
    assert jit_cpu.jit.entries >= 1


def test_cold_loop_stays_interpreted():
    cpu, state = make_machine(counting_loop(30), threshold=200)
    run_to_host(cpu, state)
    stats = cpu.stats()
    assert stats["jit_insns"] == 0
    assert stats["jit_promotions"] == 0
    assert cpu.jit.hot          # counted, below threshold


def test_jit_disabled_cpu_has_no_engine():
    cpu, state = make_machine(counting_loop(50), cpu_cls=FastCPU)
    run_to_host(cpu, state)
    assert cpu.jit is None
    assert cpu.stats()["jit_insns"] == 0
    assert cpu.stats()["fast_insns"] > 0


def test_max_steps_disables_jit_tier():
    cpu, state = make_machine(counting_loop(100))
    cpu._push(state, HOST_RETURN_ADDRESS)
    reason = cpu.run(state, max_steps=10_000)
    assert reason == "host-return"
    assert cpu.stats()["jit_insns"] == 0
    assert cpu.stats()["fast_insns"] > 0


def test_stats_keys_complete():
    cpu, state = make_machine(counting_loop(50))
    run_to_host(cpu, state)
    stats = cpu.stats()
    for key in ("precise_insns", "fast_insns", "jit_insns",
                "instructions_retired", "jit_blocks", "jit_promotions",
                "jit_invalidations", "jit_entries", "tlb_fills",
                "tlb_hit_rate"):
        assert key in stats, key
    assert 0.0 <= stats["tlb_hit_rate"] <= 1.0
    assert stats["instructions_retired"] == (
        stats["precise_insns"] + stats["fast_insns"] + stats["jit_insns"])


def test_tier_split_deterministic_across_runs():
    first, second = [], []
    for bucket in (first, second):
        cpu, state = make_machine(counting_loop(200))
        run_to_host(cpu, state)
        bucket.append(cpu.stats())
    assert first == second


# -- memory-rich differential -------------------------------------------------


def test_memory_loop_matches_precise():
    a = Assembler()
    a.mov_ri("r9", DATA_BASE)
    a.mov_ri("rax", 0x1234_5678)
    a.mov_ri("rbx", 0)
    a.mov_ri("rcx", 0)
    a.label("loop")
    a.mov_rr("rsi", "rcx")
    a.and_ri("rsi", 255)
    a.shl_ri("rsi", 3)
    a.add_rr("rsi", "r9")
    a.store("rsi", "rax", 0)
    a.load("rdx", "rsi", 0)
    a.store8("rsi", "rcx", 7)
    a.load8("rdi", "rsi", 7)
    a.xor_rr("rbx", "rdx")
    a.add_rr("rbx", "rdi")
    a.mul_rr("rax", "rbx")
    a.add_ri("rax", 99991)
    a.add_ri("rcx", 1)
    a.cmp_ri("rcx", 150)
    a.jne("loop")
    a.mov_rr("rax", "rbx")
    a.ret()
    jit_cpu, _ = differential(a)
    assert jit_cpu.stats()["jit_insns"] > 0


def test_call_ret_chain_through_jit():
    a = Assembler()
    a.mov_ri("rax", 0)
    a.mov_ri("rcx", 0)
    a.label("outer")
    a.call("func")
    a.add_ri("rcx", 1)
    a.cmp_ri("rcx", 40)
    a.jne("outer")
    a.ret()
    a.label("func")
    a.mov_ri("r9", 0)
    a.label("inner")
    a.add_ri("rax", 7)
    a.add_ri("r9", 1)
    a.cmp_ri("r9", 10)
    a.jne("inner")
    a.ret()
    jit_cpu, _ = differential(a)
    stats = jit_cpu.stats()
    assert stats["jit_insns"] > 0
    assert stats["jit_promotions"] >= 1


def test_hlt_exits_identically():
    a = Assembler()
    a.mov_ri("rax", 0)
    a.mov_ri("rcx", 0)
    a.label("loop")
    a.add_ri("rax", 3)
    a.add_ri("rcx", 1)
    a.cmp_ri("rcx", 80)
    a.jne("loop")
    a.hlt()
    results = []
    for cls in (CPU, PreciseCPU):
        cpu, state = make_machine(a, cpu_cls=cls)
        with pytest.raises(CpuExit):
            cpu.run(state)
        results.append(observables(cpu, state))
    assert results[0] == results[1]


# -- invalidation -------------------------------------------------------------


def _live_translation(cpu, state):
    """Run the loop to promotion and return the page + live translation."""
    run_to_host(cpu, state)
    page = cpu.space.page_at(CODE_BASE)
    assert page.jit_cache
    translations = [t for t in page.jit_cache.values() if t]
    assert translations
    return page, translations[0]


def test_mprotect_invalidates_live_translations():
    cpu, state = make_machine(counting_loop(100))
    page, translation = _live_translation(cpu, state)
    assert translation.valid[0]
    cpu.space.mprotect(CODE_BASE, PAGE_SIZE, PROT_RW)
    assert not translation.valid[0]
    assert page.jit_cache is None
    assert cpu.stats()["jit_invalidations"] >= 1


def test_pkey_mprotect_invalidates_live_translations():
    cpu, state = make_machine(counting_loop(100))
    page, translation = _live_translation(cpu, state)
    cpu.space.pkey_mprotect(CODE_BASE, PAGE_SIZE, PROT_RX, 1)
    assert not translation.valid[0]
    assert page.jit_cache is None


def test_munmap_invalidates_live_translations():
    cpu, state = make_machine(counting_loop(100))
    _, translation = _live_translation(cpu, state)
    cpu.space.munmap(CODE_BASE, PAGE_SIZE)
    assert not translation.valid[0]


def test_privileged_write_invalidates_live_translations():
    cpu, state = make_machine(counting_loop(100))
    page, translation = _live_translation(cpu, state)
    cpu.space.write(CODE_BASE, b"\x00" * 8, privileged=True)
    assert not translation.valid[0]
    assert page.jit_cache is None


def _instruction_words(build):
    a = Assembler()
    build(a)
    return struct.unpack("<qq", a.assemble(0)[:INSTR_SIZE])


def test_self_modifying_code_inside_superblock():
    """A store in a translated superblock that patches an instruction of
    the same superblock: the write must invalidate the translation
    mid-run, and the patched semantics must match the precise path."""
    old = _instruction_words(lambda a: a.add_ri("rbx", 1))
    new = _instruction_words(lambda a: a.add_ri("rbx", 3))
    diffs = [i for i in range(2) if old[i] != new[i]]
    assert diffs, "patch must change the encoding"

    a = Assembler()
    a.mov_ri("rbx", 0)
    a.mov_ri("rcx", 0)
    a.lea("r9", "patch")
    for i, word in enumerate(new):
        a.mov_ri(("r10", "r11")[i], word)
    a.label("loop")
    a.label("patch")
    a.add_ri("rbx", 1)              # becomes add_ri rbx, 3 on iteration 1
    for i in range(2):
        a.store("r9", ("r10", "r11")[i], i * 8)
    a.add_ri("rcx", 1)
    a.cmp_ri("rcx", 60)
    a.jne("loop")
    a.mov_rr("rax", "rbx")
    a.ret()

    results = []
    for cls in (CPU, PreciseCPU):
        cpu, state = make_machine(a, cpu_cls=cls, code_prot=PROT_RWX)
        run_to_host(cpu, state)
        results.append((cpu, observables(cpu, state)))
    (jit_cpu, jit_obs), (_, precise_obs) = results
    assert jit_obs == precise_obs
    # iteration 1 ran the old instruction, the rest the patched one
    assert jit_obs["registers"]["rax"] == 1 + 3 * 59
    stats = jit_cpu.stats()
    assert stats["jit_invalidations"] >= 1
    assert stats["jit_insns"] > 0


# -- demotion -----------------------------------------------------------------


def test_observer_attached_from_syscall_mid_run():
    """A syscall handler that attaches a memory observer demotes the
    rest of the run to the precise path; the architectural end state is
    unchanged."""
    a = Assembler()
    a.mov_ri("r9", DATA_BASE)
    a.mov_ri("rax", 0)
    a.mov_ri("rcx", 0)
    a.label("loop1")
    a.store("r9", "rcx", 0)
    a.add_ri("rax", 5)
    a.add_ri("rcx", 1)
    a.cmp_ri("rcx", 80)
    a.jne("loop1")
    a.syscall()
    a.mov_ri("rcx", 0)
    a.label("loop2")
    a.store("r9", "rax", 8)
    a.add_ri("rax", 1)
    a.add_ri("rcx", 1)
    a.cmp_ri("rcx", 80)
    a.jne("loop2")
    a.ret()

    def make_handler(cpu_box, marks, events):
        def handler(state):
            cpu = cpu_box[0]
            marks["jit_insns_at_syscall"] = cpu.jit_insns
            marks["retired_at_syscall"] = cpu.instructions_retired
            cpu.space.add_observer(
                lambda op, addr, size, value:
                    events.append((op, addr, size)))
        return handler

    results = []
    for cls in (CPU, PreciseCPU):
        box, marks, events = [None], {}, []
        cpu, state = make_machine(
            a, cpu_cls=cls, syscall_handler=make_handler(box, marks, events))
        box[0] = cpu
        run_to_host(cpu, state)
        results.append((cpu, observables(cpu, state), marks, events))
    (jit_cpu, jit_obs, jit_marks, jit_events), \
        (_, precise_obs, _, precise_events) = results
    assert jit_obs == precise_obs
    # the observer saw the identical post-syscall access stream
    assert jit_events == precise_events
    assert jit_events                      # loop2 stores were observed
    # before the syscall the jit ran; after it, nothing more was jitted
    stats = jit_cpu.stats()
    assert jit_marks["jit_insns_at_syscall"] == stats["jit_insns"] > 0
    assert stats["precise_insns"] > 0


def test_until_rip_inside_superblock_is_exact():
    a = Assembler()
    a.mov_ri("rax", 0)
    a.mov_ri("rcx", 0)
    a.label("loop")
    a.add_rr("rax", "rcx")
    a.add_ri("rcx", 1)
    a.cmp_ri("rcx", 90)
    a.jne("loop")
    a.label("after")
    a.add_ri("rax", 1)
    a.ret()
    stop = a.labels(CODE_BASE)["after"]

    results = []
    for cls in (CPU, PreciseCPU):
        cpu, state = make_machine(a, cpu_cls=cls)
        run_to_host(cpu, state, until_rip=stop)
        assert state.regs.rip == stop
        results.append((cpu, observables(cpu, state)))
    (jit_cpu, jit_obs), (_, precise_obs) = results
    assert jit_obs == precise_obs
    # the stop address lies inside the translated region, so the covers
    # guard kept the closure from ever being entered
    assert jit_cpu.stats()["jit_blocks"] >= 1
    assert jit_cpu.stats()["jit_entries"] == 0


# -- faults mid-superblock ----------------------------------------------------


def test_fault_mid_superblock_restores_precise_state():
    """A store that walks off the mapped data region faults inside the
    closure; registers, rip, charges and retired counts must match the
    precise path exactly."""
    a = Assembler()
    a.mov_ri("rsi", DATA_BASE)
    a.mov_ri("rcx", 0)
    a.label("loop")
    a.store("rsi", "rcx", 0)
    a.add_ri("rsi", 8)
    a.add_ri("rcx", 1)
    a.cmp_ri("rcx", 5000)
    a.jne("loop")
    a.ret()

    results = []
    for cls in (CPU, PreciseCPU):
        cpu, state = make_machine(a, cpu_cls=cls, data_pages=1)
        cpu._push(state, HOST_RETURN_ADDRESS)
        with pytest.raises(SegmentationFault):
            cpu.run(state)
        results.append((cpu, observables(cpu, state)))
    assert results[0][1] == results[1][1]
    assert results[0][0].stats()["jit_insns"] > 0


# -- randomized differential fuzz ---------------------------------------------

_BODY_REGS = ("rax", "rbx", "rdx", "rsi", "rdi", "r8", "r10", "r11")


def _random_program(rng):
    a = Assembler()
    a.mov_ri("r9", DATA_BASE)
    for reg in _BODY_REGS:
        a.mov_ri(reg, rng.getrandbits(63))
    a.mov_ri("rcx", 0)
    a.label("loop")
    skip = 0
    for _ in range(rng.randrange(6, 15)):
        pick = rng.random()
        dst = rng.choice(_BODY_REGS)
        src = rng.choice(_BODY_REGS)
        if pick < 0.30:
            getattr(a, rng.choice(
                ("add_rr", "sub_rr", "and_rr", "or_rr", "xor_rr",
                 "mul_rr")))(dst, src)
        elif pick < 0.50:
            getattr(a, rng.choice(
                ("add_ri", "sub_ri", "and_ri", "or_ri", "xor_ri")))(
                    dst, rng.getrandbits(rng.choice((8, 32, 63))))
        elif pick < 0.60:
            getattr(a, rng.choice(("shl_ri", "shr_ri")))(
                dst, rng.randrange(1, 64))
        elif pick < 0.65:
            a.not_r(dst)
        elif pick < 0.75:
            offset = rng.randrange(0, PAGE_SIZE - 8)
            if rng.random() < 0.5:
                a.store8("r9", src, offset)
                a.load8(dst, "r9", offset)
            else:
                aligned = offset & ~7
                a.store("r9", src, aligned)
                a.load(dst, "r9", aligned)
        elif pick < 0.85:
            if rng.random() < 0.5:
                a.cmp_rr(dst, src)
            else:
                a.cmp_ri(dst, rng.getrandbits(16))
        elif pick < 0.92:
            a.push_r(src)
            a.pop_r(dst)
        else:
            label = f"skip{skip}"
            skip += 1
            a.test_rr(dst, src)
            a.je(label)
            a.add_ri(dst, 1)
            a.label(label)
    a.add_ri("rcx", 1)
    a.cmp_ri("rcx", 40)
    a.jne("loop")
    a.ret()
    return a


@pytest.mark.parametrize("seed", range(12))
def test_randomized_programs_match_precise(seed):
    rng = random.Random(f"jit-fuzz-{seed}")
    jit_cpu, _ = differential(_random_program(rng))
    assert jit_cpu.stats()["jit_insns"] > 0
