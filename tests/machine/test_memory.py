"""Unit tests for the paged address space and MMU checks."""

import pytest

from repro.errors import (
    AlignmentFault,
    ExecuteFault,
    ProtectionKeyFault,
    SegmentationFault,
)
from repro.machine import (
    PAGE_SIZE,
    PROT_EXEC,
    PROT_NONE,
    PROT_READ,
    PROT_RW,
    AddressSpace,
    page_align_down,
    page_align_up,
)
from repro.machine.mpk import pkru_disable_access, pkru_disable_write


def test_page_alignment_helpers():
    assert page_align_down(0) == 0
    assert page_align_down(PAGE_SIZE - 1) == 0
    assert page_align_down(PAGE_SIZE) == PAGE_SIZE
    assert page_align_up(1) == PAGE_SIZE
    assert page_align_up(PAGE_SIZE) == PAGE_SIZE
    assert page_align_up(PAGE_SIZE + 1) == 2 * PAGE_SIZE


def test_mmap_and_rw_roundtrip():
    space = AddressSpace()
    base = space.mmap(None, 100)  # rounded up to one page
    space.write(base + 10, b"hello")
    assert space.read(base + 10, 5) == b"hello"


def test_mmap_fixed_address():
    space = AddressSpace()
    base = space.mmap(0x40_0000, PAGE_SIZE)
    assert base == 0x40_0000
    assert space.is_mapped(0x40_0000)
    assert not space.is_mapped(0x40_0000 + PAGE_SIZE)


def test_mmap_rejects_overlap_without_fixed():
    space = AddressSpace()
    space.mmap(0x40_0000, PAGE_SIZE)
    with pytest.raises(SegmentationFault):
        space.mmap(0x40_0000, PAGE_SIZE)


def test_mmap_fixed_replaces_mapping():
    space = AddressSpace()
    base = space.mmap(0x40_0000, PAGE_SIZE)
    space.write(base, b"x")
    space.mmap(0x40_0000, PAGE_SIZE, fixed=True)
    assert space.read(base, 1) == b"\x00"


def test_read_unmapped_faults():
    space = AddressSpace()
    with pytest.raises(SegmentationFault):
        space.read(0xDEAD_0000, 1)


def test_write_crossing_page_boundary():
    space = AddressSpace()
    base = space.mmap(None, 2 * PAGE_SIZE)
    data = bytes(range(64))
    space.write(base + PAGE_SIZE - 32, data)
    assert space.read(base + PAGE_SIZE - 32, 64) == data


def test_write_to_readonly_page_faults():
    space = AddressSpace()
    base = space.mmap(None, PAGE_SIZE, prot=PROT_READ)
    with pytest.raises(SegmentationFault):
        space.write(base, b"x")


def test_privileged_access_bypasses_permissions():
    space = AddressSpace()
    base = space.mmap(None, PAGE_SIZE, prot=PROT_NONE)
    space.write(base, b"k", privileged=True)
    assert space.read(base, 1, privileged=True) == b"k"


def test_mprotect_changes_permissions():
    space = AddressSpace()
    base = space.mmap(None, PAGE_SIZE, prot=PROT_RW)
    space.mprotect(base, PAGE_SIZE, PROT_READ)
    with pytest.raises(SegmentationFault):
        space.write(base, b"x")
    assert space.read(base, 1) == b"\x00"


def test_pkey_denies_read_and_write():
    space = AddressSpace()
    base = space.mmap(None, PAGE_SIZE)
    space.pkey_mprotect(base, PAGE_SIZE, PROT_RW, pkey=3)

    blocked = pkru_disable_access(0, 3)
    with pytest.raises(ProtectionKeyFault):
        space.read(base, 1, pkru=blocked)
    with pytest.raises(ProtectionKeyFault):
        space.write(base, b"x", pkru=blocked)
    # a PKRU that only write-disables still allows reads
    wd_only = pkru_disable_write(0, 3)
    assert space.read(base, 1, pkru=wd_only) == b"\x00"
    with pytest.raises(ProtectionKeyFault):
        space.write(base, b"x", pkru=wd_only)


def test_pkey_does_not_gate_instruction_fetch():
    """XoM: exec-only page with access-disabled key is fetchable only."""
    space = AddressSpace()
    base = space.mmap(None, PAGE_SIZE, prot=PROT_EXEC)
    space.pkey_mprotect(base, PAGE_SIZE, PROT_EXEC, pkey=5)
    blocked = pkru_disable_access(0, 5)
    space.fetch_check(base)  # must not raise
    with pytest.raises(SegmentationFault):
        space.read(base, 1, pkru=blocked)


def test_fetch_from_non_exec_page_faults():
    space = AddressSpace()
    base = space.mmap(None, PAGE_SIZE, prot=PROT_RW)
    with pytest.raises(ExecuteFault):
        space.fetch_check(base)


def test_word_alignment_enforced():
    space = AddressSpace()
    base = space.mmap(None, PAGE_SIZE)
    space.write_word(base + 8, 0x1122334455667788)
    assert space.read_word(base + 8) == 0x1122334455667788
    with pytest.raises(AlignmentFault):
        space.read_word(base + 4)
    with pytest.raises(AlignmentFault):
        space.write_word(base + 1, 1)


def test_read_cstring():
    space = AddressSpace()
    base = space.mmap(None, PAGE_SIZE)
    space.write(base, b"GET /index.html\x00garbage")
    assert space.read_cstring(base) == b"GET /index.html"


def test_munmap_removes_pages():
    space = AddressSpace()
    base = space.mmap(None, 2 * PAGE_SIZE)
    space.munmap(base, PAGE_SIZE)
    with pytest.raises(SegmentationFault):
        space.read(base, 1)
    assert space.read(base + PAGE_SIZE, 1) == b"\x00"


def test_mapped_regions_coalesce():
    space = AddressSpace()
    space.mmap(0x10_0000, 2 * PAGE_SIZE, prot=PROT_READ, tag="text")
    space.mmap(0x10_0000 + 2 * PAGE_SIZE, PAGE_SIZE, prot=PROT_RW, tag="data")
    regions = space.mapped_regions()
    assert regions == [
        (0x10_0000, 2 * PAGE_SIZE, PROT_READ, "text"),
        (0x10_0000 + 2 * PAGE_SIZE, PAGE_SIZE, PROT_RW, "data"),
    ]


def test_resident_bytes_counts_pages():
    space = AddressSpace()
    space.mmap(None, 3 * PAGE_SIZE)
    assert space.resident_bytes() == 3 * PAGE_SIZE


def test_fork_into_deep_copies():
    parent = AddressSpace("parent")
    child = AddressSpace("child")
    base = parent.mmap(None, PAGE_SIZE, tag="heap")
    parent.write(base, b"orig")
    parent.fork_into(child)
    child.write(base, b"chld")
    assert parent.read(base, 4) == b"orig"
    assert child.read(base, 4) == b"chld"
    assert child.page_at(base).tag == "heap"


def test_observers_see_accesses():
    space = AddressSpace()
    base = space.mmap(None, PAGE_SIZE)
    events = []
    space.add_observer(lambda op, a, n, v: events.append((op, a, n)))
    space.write(base, b"ab")
    space.read(base, 2)
    assert events == [("write", base, 2), ("read", base, 2)]
    space.remove_observer(space._observers[0])
    space.read(base, 2)
    assert len(events) == 2
