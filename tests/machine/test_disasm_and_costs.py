"""Tests for the disassembler listing utilities and the cost model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import Assembler, Instruction, Op
from repro.machine.costs import CostModel, CycleCounter, DEFAULT_COSTS
from repro.machine.disasm import disassemble_bytes, format_listing
from repro.machine.isa import INSTR_SIZE


def test_format_listing():
    a = Assembler()
    a.mov_ri("rax", 16)
    a.ret()
    pairs = disassemble_bytes(a.assemble(0), base=0x40_0000)
    listing = format_listing(pairs)
    lines = listing.splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("0x000000400000:")
    assert "mov_ri %rax, $0x10" in lines[0]
    assert "ret" in lines[1]


def test_negative_immediate_rendering():
    text = Instruction(Op.ADD_RI, "rsp", None, -32).text()
    assert "$-0x20" in text


def test_disassemble_respects_base():
    a = Assembler()
    a.nop()
    a.nop()
    pairs = disassemble_bytes(a.assemble(0), base=0x1000)
    assert [addr for addr, _ in pairs] == [0x1000, 0x1000 + INSTR_SIZE]


def _code(build):
    a = Assembler()
    build(a)
    return a.assemble(0)


def test_disassemble_stops_at_first_invalid_slot_by_default():
    """Default contract: a linear sweep of one function body stops at
    padding — bytes after the first bad slot are not attributed."""
    raw = _code(lambda a: (a.mov_ri("rax", 1),)) + b"\xee" * INSTR_SIZE \
        + _code(lambda a: (a.ret(),))
    pairs = disassemble_bytes(raw, base=0)
    assert [addr for addr, _ in pairs] == [0]


def test_disassemble_skip_invalid_resumes_at_next_slot():
    """Windowed contract: holes are skipped, decoding resumes at the
    next INSTR_SIZE boundary, and holes are simply absent."""
    raw = _code(lambda a: (a.mov_ri("rax", 1),)) + b"\xee" * INSTR_SIZE \
        + _code(lambda a: (a.ret(),))
    pairs = disassemble_bytes(raw, base=0, skip_invalid=True)
    assert [addr for addr, _ in pairs] == [0, 2 * INSTR_SIZE]
    assert pairs[1][1].op == Op.RET


def test_disassemble_trailing_partial_slot_never_decoded():
    raw = _code(lambda a: (a.ret(),)) + b"\x00" * (INSTR_SIZE - 1)
    for skip in (False, True):
        pairs = disassemble_bytes(raw, base=0, skip_invalid=skip)
        assert len(pairs) == 1


def test_executable_words_skip_nonexec_and_holes():
    from repro.kernel import Kernel
    from repro.machine.disasm import executable_words
    from repro.machine.memory import PROT_READ, PROT_RX
    from repro.process import GuestProcess
    process = GuestProcess(Kernel(), "dis")
    space = process.space
    code = _code(lambda a: (a.nop(), a.ret()))
    exec_base = space.mmap(None, 4096, prot=PROT_RX, tag="t:code")
    space.write(exec_base, code + b"\xee" * INSTR_SIZE + code,
                privileged=True)
    data_base = space.mmap(None, 4096, prot=PROT_READ, tag="t:data")
    space.write(data_base, code, privileged=True)
    words = dict(executable_words(space))
    # both runs around the hole decode; the hole and data page do not
    assert exec_base in words and exec_base + 3 * INSTR_SIZE in words
    assert exec_base + 2 * INSTR_SIZE not in words
    assert data_base not in words


# -- cost model ------------------------------------------------------------------

def test_default_costs_paper_anchors():
    """The constants that anchor Table 2 directly."""
    assert DEFAULT_COSTS.clone_thread_ns == 9_500
    assert DEFAULT_COSTS.fork_base_ns == 640_000
    assert DEFAULT_COSTS.heap_scan_slot_ns > DEFAULT_COSTS.data_scan_slot_ns


def test_costmodel_is_frozen():
    with pytest.raises(Exception):
        DEFAULT_COSTS.rendezvous_ns = 1


def test_counter_categories_and_listeners():
    counter = CycleCounter()
    seen = []
    counter.add_listener(lambda ns, cat: seen.append((ns, cat)))
    counter.charge(100, "cpu")
    counter.charge(50, "syscall")
    counter.charge(25, "cpu")
    assert counter.total_ns == 175
    assert counter.by_category == {"cpu": 125, "syscall": 50}
    assert seen == [(100, "cpu"), (50, "syscall"), (25, "cpu")]
    counter.remove_listener(counter.listeners[0])
    counter.charge(1)
    assert len(seen) == 3


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        CycleCounter().charge(-1)


def test_counter_advances_attached_clock():
    from repro.kernel.clock import VirtualClock
    clock = VirtualClock()
    counter = CycleCounter(clock=clock)
    counter.charge(123)
    assert clock.monotonic_ns == 123


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e6),
                          st.sampled_from(["cpu", "libc", "syscall"])),
                max_size=30))
def test_counter_total_equals_category_sum(charges):
    counter = CycleCounter()
    for ns, category in charges:
        counter.charge(ns, category)
    assert counter.total_ns == pytest.approx(
        sum(counter.by_category.values()))
