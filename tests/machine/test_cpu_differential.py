"""Differential testing of the CPU: random straight-line programs are
executed by the interpreter and by an independent Python model of the
ISA's semantics; the architectural state must agree exactly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import (
    AddressSpace,
    Assembler,
    CPU,
    PAGE_SIZE,
    PROT_RW,
    PROT_RX,
)
from repro.machine.cpu import ExecState, HOST_RETURN_ADDRESS
from repro.machine.registers import RegisterFile

_MASK = (1 << 64) - 1

REGS = ("rax", "rbx", "rcx", "rdx", "rsi", "rdi", "r8", "r9")

_OPS = ("mov_rr", "mov_ri", "add_rr", "add_ri", "sub_rr", "sub_ri",
        "and_rr", "and_ri", "or_rr", "or_ri", "xor_rr", "xor_ri",
        "shl_ri", "shr_ri", "mul_rr", "not_r")

op_strategy = st.tuples(
    st.sampled_from(_OPS),
    st.sampled_from(REGS),
    st.sampled_from(REGS),
    st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1),
)


def model_step(state, op, dst, src, imm):
    """Reference semantics, written independently of the CPU."""
    value = state[dst]
    other = state[src]
    if op == "mov_rr":
        value = other
    elif op == "mov_ri":
        value = imm
    elif op == "add_rr":
        value = value + other
    elif op == "add_ri":
        value = value + imm
    elif op == "sub_rr":
        value = value - other
    elif op == "sub_ri":
        value = value - imm
    elif op == "and_rr":
        value = value & other
    elif op == "and_ri":
        value = value & imm
    elif op == "or_rr":
        value = value | other
    elif op == "or_ri":
        value = value | imm
    elif op == "xor_rr":
        value = value ^ other
    elif op == "xor_ri":
        value = value ^ imm
    elif op == "shl_ri":
        value = value << (imm & 63)
    elif op == "shr_ri":
        value = value >> (imm & 63)
    elif op == "mul_rr":
        value = value * other
    elif op == "not_r":
        value = ~value
    state[dst] = value & _MASK


@settings(max_examples=120, deadline=None)
@given(st.lists(op_strategy, min_size=1, max_size=40),
       st.lists(st.integers(min_value=0, max_value=_MASK),
                min_size=len(REGS), max_size=len(REGS)))
def test_cpu_matches_reference_model(program, initial):
    assembler = Assembler()
    for op, dst, src, imm in program:
        method = getattr(assembler, op)
        if op.endswith("_ri"):
            method(dst, imm)
        elif op == "not_r":
            method(dst)
        else:
            method(dst, src)
    assembler.ret()

    space = AddressSpace()
    code = assembler.assemble(0x40_0000)
    space.mmap(0x40_0000, max(len(code), 1), prot=PROT_RX)
    for offset in range(0, len(code), PAGE_SIZE):
        page = space.page_at(0x40_0000 + offset)
        page.data[:len(code[offset:offset + PAGE_SIZE])] = \
            code[offset:offset + PAGE_SIZE]
    space.mmap(0x50_0000, PAGE_SIZE, prot=PROT_RW)

    cpu = CPU(space)
    state = ExecState(RegisterFile())
    state.regs.rip = 0x40_0000
    state.regs.set("rsp", 0x50_0000 + PAGE_SIZE - 16)
    reference = {}
    for name, value in zip(REGS, initial):
        state.regs.set(name, value)
        reference[name] = value
    cpu._push(state, HOST_RETURN_ADDRESS)
    cpu.run(state, max_steps=len(program) + 2)

    for op, dst, src, imm in program:
        model_step(reference, op, dst, src, imm)
    for name in REGS:
        assert state.regs.get(name) == reference[name], (name, program)
