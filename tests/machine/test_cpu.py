"""Unit tests for the CPU interpreter, assembler, and disassembler."""

import pytest

from repro.errors import (
    ExecuteFault,
    InvalidInstruction,
    ProtectionKeyFault,
    SegmentationFault,
)
from repro.machine import (
    INSTR_SIZE,
    PAGE_SIZE,
    PROT_EXEC,
    PROT_RW,
    PROT_RX,
    AddressSpace,
    Assembler,
    CPU,
    Instruction,
    Op,
)
from repro.machine.cpu import CpuExit, ExecState, HOST_RETURN_ADDRESS
from repro.machine.disasm import (
    disassemble_bytes,
    executable_words,
    try_decode_at,
)
from repro.machine.mpk import pkru_disable_access
from repro.machine.registers import RegisterFile

CODE_BASE = 0x40_0000
STACK_TOP = 0x7000_0000


def make_machine(assembler, stack_pages=4, data_pages=2):
    space = AddressSpace()
    code = assembler.assemble(CODE_BASE)
    space.mmap(CODE_BASE, max(len(code), 1), prot=PROT_RX, tag="text")
    for offset in range(0, len(code), PAGE_SIZE):
        page = space.page_at(CODE_BASE + offset)
        chunk = code[offset:offset + PAGE_SIZE]
        page.data[:len(chunk)] = chunk
    space.mmap(STACK_TOP - stack_pages * PAGE_SIZE, stack_pages * PAGE_SIZE,
               prot=PROT_RW, tag="stack")
    data_base = space.mmap(None, data_pages * PAGE_SIZE, tag="data")
    cpu = CPU(space)
    state = ExecState(RegisterFile())
    state.regs.rip = CODE_BASE
    state.regs.set("rsp", STACK_TOP - 64)
    return cpu, state, data_base


def run_to_host(cpu, state, max_steps=10_000):
    # simulate a host call frame: return lands at the sentinel
    cpu._push(state, HOST_RETURN_ADDRESS)
    reason = cpu.run(state, max_steps=max_steps)
    assert reason == "host-return"
    return state.regs.get("rax")


def test_arithmetic_loop():
    a = Assembler()
    a.mov_ri("rax", 0)
    a.mov_ri("rcx", 0)
    a.label("loop")
    a.add_rr("rax", "rcx")
    a.add_ri("rcx", 1)
    a.cmp_ri("rcx", 10)
    a.jne("loop")
    a.ret()
    cpu, state, _ = make_machine(a)
    assert run_to_host(cpu, state) == sum(range(10))


def test_memory_load_store():
    a = Assembler()
    a.store("rdi", "rsi", 8)       # mem[rdi+8] = rsi
    a.load("rax", "rdi", 8)        # rax = mem[rdi+8]
    a.add_ri("rax", 5)
    a.ret()
    cpu, state, data = make_machine(a)
    state.regs.set("rdi", data)
    state.regs.set("rsi", 100)
    assert run_to_host(cpu, state) == 105


def test_byte_load_store_zero_extends():
    a = Assembler()
    a.store8("rdi", "rsi")
    a.load8("rax", "rdi")
    a.ret()
    cpu, state, data = make_machine(a)
    state.regs.set("rdi", data)
    state.regs.set("rsi", 0x1FF)   # only low byte stored
    assert run_to_host(cpu, state) == 0xFF


def test_call_and_ret():
    a = Assembler()
    a.call("double_it")
    a.add_ri("rax", 1)
    a.ret()
    a.label("double_it")
    a.add_rr("rdi", "rdi")
    a.mov_rr("rax", "rdi")
    a.ret()
    cpu, state, _ = make_machine(a)
    state.regs.set("rdi", 21)
    assert run_to_host(cpu, state) == 43


def test_push_pop():
    a = Assembler()
    a.push_i(7)
    a.push_r("rdi")
    a.pop_r("rax")
    a.pop_r("rbx")
    a.add_rr("rax", "rbx")
    a.ret()
    cpu, state, _ = make_machine(a)
    state.regs.set("rdi", 3)
    assert run_to_host(cpu, state) == 10


def test_unsigned_and_signed_branches():
    # rax = 1 if rdi <u rsi else 0  (JB)
    a = Assembler()
    a.mov_ri("rax", 0)
    a.cmp_rr("rdi", "rsi")
    a.jae("done")
    a.mov_ri("rax", 1)
    a.label("done")
    a.ret()
    cpu, state, _ = make_machine(a)
    state.regs.set("rdi", (1 << 64) - 5)   # huge unsigned (i.e. -5 signed)
    state.regs.set("rsi", 10)
    assert run_to_host(cpu, state) == 0    # not below, unsigned-wise


def test_lea_is_position_independent():
    a = Assembler()
    a.lea("rax", "here")
    a.label("here")
    a.ret()
    cpu, state, _ = make_machine(a)
    expected = CODE_BASE + INSTR_SIZE  # "here" is after the single LEA
    assert run_to_host(cpu, state) == expected


def test_undefined_label_rejected():
    from repro.errors import ImageError
    a = Assembler()
    a.jmp_m("slot")            # label never defined
    with pytest.raises(ImageError):
        a.assemble(CODE_BASE)


def test_jmp_m_via_manual_slot():
    space = AddressSpace()
    a = Assembler()
    a.jmp_m("slot")
    a.hlt()
    a.label("target")
    a.mov_ri("rax", 42)
    a.hlt()
    a.label("slot")  # the slot lives right after code, in the same page
    code = a.assemble(CODE_BASE)
    labels = a.labels(CODE_BASE)
    space.mmap(CODE_BASE, PAGE_SIZE, prot=PROT_RX | 2, tag="text")
    page = space.page_at(CODE_BASE)
    page.data[:len(code)] = code
    space.write_word(labels["slot"], labels["target"])
    cpu = CPU(space)
    state = ExecState(RegisterFile())
    state.regs.rip = CODE_BASE
    state.regs.set("rsp", CODE_BASE + PAGE_SIZE)  # scratch, unused
    with pytest.raises(CpuExit) as exc_info:
        cpu.run(state, max_steps=10)
    assert exc_info.value.reason == "hlt"
    assert state.regs.get("rax") == 42


def test_indirect_jump_to_unmapped_address_faults():
    """The core sMVX divergence signal: a gadget address valid in one
    variant is unmapped in the other and must fault."""
    a = Assembler()
    a.jmp_r("rdi")
    cpu, state, _ = make_machine(a)
    state.regs.set("rdi", 0xBAD_0000)
    with pytest.raises(ExecuteFault):
        cpu.run(state, max_steps=10)


def test_fetch_from_data_page_faults():
    a = Assembler()
    a.jmp_r("rdi")
    cpu, state, data = make_machine(a)
    state.regs.set("rdi", data)      # points at RW data page
    with pytest.raises(ExecuteFault):
        cpu.run(state, max_steps=10)


def test_wrpkru_updates_thread_pkru_and_gates_loads():
    a = Assembler()
    a.mov_ri("rcx", 0)
    a.mov_ri("rdx", 0)
    a.wrpkru()                 # pkru <- rax
    a.load("rax", "rdi")       # should fault if pkey blocked
    a.ret()
    cpu, state, data = make_machine(a)
    cpu.space.pkey_mprotect(data, PAGE_SIZE, PROT_RW, pkey=2)
    state.regs.set("rax", pkru_disable_access(0, 2))
    state.regs.set("rdi", data)
    cpu._push(state, HOST_RETURN_ADDRESS)
    with pytest.raises(ProtectionKeyFault):
        cpu.run(state, max_steps=10)
    assert state.pkru == pkru_disable_access(0, 2)


def test_wrpkru_requires_zero_rcx_rdx():
    a = Assembler()
    a.wrpkru()
    cpu, state, _ = make_machine(a)
    state.regs.set("rcx", 1)
    with pytest.raises(InvalidInstruction):
        cpu.run(state, max_steps=5)


def test_rdpkru_reads_back():
    a = Assembler()
    a.rdpkru()
    a.ret()
    cpu, state, _ = make_machine(a)
    state.pkru = 0b1100
    assert run_to_host(cpu, state) == 0b1100


def test_invalid_opcode_faults():
    space = AddressSpace()
    space.mmap(CODE_BASE, PAGE_SIZE, prot=PROT_EXEC | PROT_RW)
    space.write(CODE_BASE, b"\xEE" * INSTR_SIZE)
    cpu = CPU(space)
    state = ExecState(RegisterFile())
    state.regs.rip = CODE_BASE
    with pytest.raises(InvalidInstruction):
        cpu.step(state)


def test_stack_overflow_into_unmapped_guard_faults():
    a = Assembler()
    a.label("spin")
    a.push_i(0)
    a.jmp("spin")
    cpu, state, _ = make_machine(a, stack_pages=1)
    with pytest.raises(SegmentationFault):
        cpu.run(state, max_steps=10_000)


def test_cycle_accounting_charges_per_instruction():
    a = Assembler()
    for _ in range(5):
        a.nop()
    a.ret()
    cpu, state, _ = make_machine(a)
    before = cpu.counter.total_ns
    run_to_host(cpu, state)
    assert cpu.counter.total_ns - before == 6 * cpu.costs.instruction_ns
    assert cpu.instructions_retired == 6


def test_trace_hook_sees_every_instruction():
    a = Assembler()
    a.nop()
    a.mov_ri("rax", 1)
    a.ret()
    cpu, state, _ = make_machine(a)
    seen = []
    cpu.trace_hook = lambda st, addr, instr: seen.append((addr, instr.op))
    run_to_host(cpu, state)
    assert [op for _, op in seen] == [Op.NOP, Op.MOV_RI, Op.RET]
    assert seen[0][0] == CODE_BASE


# -- encoder / disassembler ---------------------------------------------------

def test_instruction_roundtrip():
    instr = Instruction(Op.LOAD, "rax", "rdi", -8)
    assert Instruction.decode(instr.encode()) == instr


def test_instruction_encoding_is_16_bytes():
    assert len(Instruction(Op.NOP).encode()) == INSTR_SIZE


def test_disassemble_bytes_stops_at_padding():
    a = Assembler()
    a.mov_ri("rax", 1)
    a.ret()
    raw = a.assemble(0) + b"\x00" * INSTR_SIZE
    pairs = disassemble_bytes(raw, base=0x1000)
    assert [p[1].op for p in pairs] == [Op.MOV_RI, Op.RET]
    assert pairs[1][0] == 0x1000 + INSTR_SIZE


def test_try_decode_at_respects_exec_permission():
    space = AddressSpace()
    base = space.mmap(None, PAGE_SIZE, prot=PROT_RW)
    space.write(base, Instruction(Op.RET).encode())
    assert try_decode_at(space, base) is None
    space.mprotect(base, PAGE_SIZE, PROT_RX)
    assert try_decode_at(space, base).op == Op.RET


def test_executable_words_scans_only_exec_pages():
    space = AddressSpace()
    text = space.mmap(None, PAGE_SIZE, prot=PROT_RX)
    data = space.mmap(None, PAGE_SIZE, prot=PROT_RW)
    page = space.page_at(text)
    page.data[:INSTR_SIZE] = Instruction(Op.RET).encode()
    space.write(data, Instruction(Op.RET).encode())
    found = list(executable_words(space))
    assert (text, Instruction(Op.RET)) in [(a, i) for a, i in found]
    assert all(addr < data or addr >= data + PAGE_SIZE for addr, _ in found)


def test_instruction_text_rendering():
    assert Instruction(Op.MOV_RI, "rax", None, 16).text() == "mov_ri %rax, $0x10"
    assert "ret" in Instruction(Op.RET).text()
