"""Differential fast-vs-slow interpreter tests (ISSUE acceptance
criterion): the fast path (decoded-page cache + TLB + batched charging)
and the forced precise path must agree bit-for-bit on every observable —
register state, virtual-cycle totals, instructions retired, libc call
counts, alarm PCs, and full record/replay traces — across the real
workloads: the protected minx server under traffic, the CVE-2013-2028
exploit, and nbench."""

import pytest

from repro.apps.minx import MinxServer
from repro.apps.nbench.harness import NbenchHarness
from repro.attacks import run_exploit
from repro.kernel import Kernel
from repro.machine.cpu import CPU
from repro.trace import Recorder
from repro.workloads import ApacheBench

PROTECT = "minx_http_process_request_line"
SEED = "fast-slow-diff"


@pytest.fixture(params=["fast", "slow"])
def path(request, monkeypatch):
    if request.param == "slow":
        monkeypatch.setattr(CPU, "force_slow_path", True)
    return request.param


def _minx_cve_run():
    """Protected minx + ab traffic + the CVE exploit; every observable
    end state (mirrors the determinism audit)."""
    kernel = Kernel(seed=SEED)
    server = MinxServer(kernel, protect=PROTECT, smvx=True)
    server.start()
    ab = ApacheBench(kernel, server).run(3)
    outcome = run_exploit(server)
    return {
        "status_counts": ab.status_counts,
        "counter_total_ns": server.process.counter.total_ns,
        "total_cpu_ns": server.process.total_cpu_ns(),
        "instructions_retired": server.process.cpu.instructions_retired,
        "libc_call_counts": dict(server.process.libc_call_counts),
        "clock_end_ns": kernel.clock.monotonic_ns,
        "detected": outcome.divergence_detected,
        "alarms": [(r.kind.name, r.seq, r.libc_name, r.task_id, r.guest_pc)
                   for r in server.alarms.alarms],
        "registers": server.process.main_thread().state.regs.snapshot(),
    }


_RESULTS = {}


def test_minx_cve_identical_under_both_paths(path):
    _RESULTS[path] = _minx_cve_run()
    if len(_RESULTS) == 2:
        assert _RESULTS["fast"] == _RESULTS["slow"]
        assert _RESULTS["fast"]["detected"]


_NBENCH = {}


def test_nbench_workload_identical_under_both_paths(path):
    result = NbenchHarness(runs=1).run_workload(0)
    _NBENCH[path] = (result.vanilla_ns, result.smvx_ns,
                     result.checksum_vanilla, result.checksum_smvx)
    assert result.consistent
    if len(_NBENCH) == 2:
        assert _NBENCH["fast"] == _NBENCH["slow"]


_TRACES = {}


def test_recorded_trace_bit_identical_under_both_paths(path):
    """A full flight-recorder trace (stimulus script, event ring,
    footer digests) must serialize to the same bytes on both paths."""
    kernel = Kernel(seed=SEED)
    server = MinxServer(kernel, protect=PROTECT, smvx=True)
    recorder = Recorder(kernel, scenario={"app": "minx", "seed": SEED,
                                          "kwargs": {"protect": PROTECT,
                                                     "smvx": True}})
    recorder.attach_server(server)
    server.start()
    ApacheBench(kernel, server).run(2)
    trace = recorder.finish()
    _TRACES[path] = (trace.dumps(), trace.footer)
    if len(_TRACES) == 2:
        assert _TRACES["fast"][1] == _TRACES["slow"][1]
        assert _TRACES["fast"][0] == _TRACES["slow"][0]
