"""Differential three-tier interpreter tests (ISSUE acceptance
criterion): the jit tier (superblock translation), the fast path
(decoded-page cache + TLB + batched charging) and the forced precise
path must agree bit-for-bit on every observable — register state,
virtual-cycle totals, instructions retired, libc call counts, alarm PCs,
and full record/replay traces — across the real workloads: the
protected minx server under traffic, the CVE-2013-2028 exploit, and
nbench.

The only footer field allowed to differ across tiers is ``cpu_tiers``
(the per-tier execution-count split — that it differs is the point);
within one tier it is part of the replay-pinned ground truth.
"""

import pytest

from repro.apps.minx import MinxServer
from repro.apps.nbench.harness import NbenchHarness
from repro.attacks import run_exploit
from repro.kernel import Kernel
from repro.machine.cpu import CPU
from repro.trace import Recorder
from repro.workloads import ApacheBench

PROTECT = "minx_http_process_request_line"
SEED = "fast-slow-diff"
TIERS = ("precise", "fast", "jit")


@pytest.fixture(params=list(TIERS))
def path(request, monkeypatch):
    if request.param == "precise":
        monkeypatch.setattr(CPU, "force_slow_path", True)
        monkeypatch.setattr(CPU, "jit_enabled", False)
    elif request.param == "fast":
        monkeypatch.setattr(CPU, "jit_enabled", False)
    return request.param


def _minx_cve_run():
    """Protected minx + ab traffic + the CVE exploit; every observable
    end state (mirrors the determinism audit)."""
    kernel = Kernel(seed=SEED)
    server = MinxServer(kernel, protect=PROTECT, smvx=True)
    server.start()
    ab = ApacheBench(kernel, server).run(3)
    outcome = run_exploit(server)
    return {
        "status_counts": ab.status_counts,
        "counter_total_ns": server.process.counter.total_ns,
        "total_cpu_ns": server.process.total_cpu_ns(),
        "instructions_retired": server.process.cpu.instructions_retired,
        "libc_call_counts": dict(server.process.libc_call_counts),
        "clock_end_ns": kernel.clock.monotonic_ns,
        "detected": outcome.divergence_detected,
        "alarms": [(r.kind.name, r.seq, r.libc_name, r.task_id, r.guest_pc)
                   for r in server.alarms.alarms],
        "registers": server.process.main_thread().state.regs.snapshot(),
    }


_RESULTS = {}


def test_minx_cve_identical_under_all_tiers(path):
    _RESULTS[path] = _minx_cve_run()
    if len(_RESULTS) == len(TIERS):
        for tier in TIERS:
            assert _RESULTS[tier] == _RESULTS["precise"], tier
        assert _RESULTS["precise"]["detected"]


_NBENCH = {}


def test_nbench_workload_identical_under_all_tiers(path):
    result = NbenchHarness(runs=1).run_workload(0)
    _NBENCH[path] = (result.vanilla_ns, result.smvx_ns,
                     result.checksum_vanilla, result.checksum_smvx)
    assert result.consistent
    if len(_NBENCH) == len(TIERS):
        for tier in TIERS:
            assert _NBENCH[tier] == _NBENCH["precise"], tier


_TRACES = {}


def test_recorded_trace_bit_identical_under_all_tiers(path):
    """A full flight-recorder trace (stimulus script, event ring,
    footer digests) must serialize to the same bytes on every tier once
    the per-tier ``cpu_tiers`` split is stripped."""
    kernel = Kernel(seed=SEED)
    server = MinxServer(kernel, protect=PROTECT, smvx=True)
    recorder = Recorder(kernel, scenario={"app": "minx", "seed": SEED,
                                          "kwargs": {"protect": PROTECT,
                                                     "smvx": True}})
    recorder.attach_server(server)
    server.start()
    ApacheBench(kernel, server).run(2)
    trace = recorder.finish()
    tiers = trace.footer.pop("cpu_tiers")
    # the tier split itself must match the pinned interpreter mode.
    # (minx guest code is loop-light — its string work lives in the
    # host-emulated libc — so nothing gets hot enough to promote here;
    # jit-active determinism is proven by tests/machine/test_jit.py)
    if path == "precise":
        assert tiers["fast_insns"] == 0
        assert tiers["jit_insns"] == 0
    else:
        assert tiers["fast_insns"] > 0
    if path != "jit":
        assert tiers["jit_insns"] == 0
    _TRACES[path] = (trace.dumps(), trace.footer)
    if len(_TRACES) == len(TIERS):
        for tier in TIERS:
            assert _TRACES[tier][1] == _TRACES["precise"][1], tier
            assert _TRACES[tier][0] == _TRACES["precise"][0], tier
