"""Unit tests for the interpreter fast path: the per-page decoded
instruction cache, the software TLB, the observer-free MMU fast paths,
and the precise/fast interpreter contract."""

import pytest

from repro.errors import (
    AlignmentFault,
    ExecuteFault,
    ProtectionKeyFault,
    SegmentationFault,
)
from repro.machine import (
    INSTR_SIZE,
    PAGE_SIZE,
    PROT_RW,
    PROT_RX,
    PROT_RWX,
    AddressSpace,
    Assembler,
    CPU,
    Instruction,
    Op,
)
from repro.machine.cpu import CpuExit, ExecState, HOST_RETURN_ADDRESS
from repro.machine.mpk import pkru_disable_access
from repro.machine.registers import RegisterFile

CODE_BASE = 0x40_0000
STACK_TOP = 0x7000_0000


def make_machine(assembler, code_prot=PROT_RX, stack_pages=4, data_pages=2):
    space = AddressSpace()
    code = assembler.assemble(CODE_BASE)
    space.mmap(CODE_BASE, max(len(code), 1), prot=code_prot, tag="text")
    for offset in range(0, len(code), PAGE_SIZE):
        page = space.page_at(CODE_BASE + offset)
        chunk = code[offset:offset + PAGE_SIZE]
        page.data[:len(chunk)] = chunk
    space.mmap(STACK_TOP - stack_pages * PAGE_SIZE, stack_pages * PAGE_SIZE,
               prot=PROT_RW, tag="stack")
    data_base = space.mmap(None, data_pages * PAGE_SIZE, tag="data")
    cpu = CPU(space)
    state = ExecState(RegisterFile())
    state.regs.rip = CODE_BASE
    state.regs.set("rsp", STACK_TOP - 64)
    return cpu, state, data_base


def run_to_host(cpu, state, max_steps=100_000):
    cpu._push(state, HOST_RETURN_ADDRESS)
    reason = cpu.run(state, max_steps=max_steps)
    assert reason == "host-return"
    return state.regs.get("rax")


def counting_loop(n=50):
    a = Assembler()
    a.mov_ri("rax", 0)
    a.mov_ri("rcx", 0)
    a.label("loop")
    a.add_rr("rax", "rcx")
    a.add_ri("rcx", 1)
    a.cmp_ri("rcx", n)
    a.jne("loop")
    a.ret()
    return a


# -- decoded-instruction cache -----------------------------------------------


def test_decode_cache_populates_on_run():
    cpu, state, _ = make_machine(counting_loop())
    run_to_host(cpu, state)
    page = cpu.space.page_at(CODE_BASE)
    assert page.decode_cache
    # every instruction slot of the loop got decoded exactly once
    assert set(page.decode_cache) == {i * INSTR_SIZE for i in range(7)}
    entry = page.decode_cache[0]
    assert entry[4] == Instruction(Op.MOV_RI, "rax", imm=0)


def test_host_write_invalidates_decode_cache():
    cpu, state, _ = make_machine(counting_loop())
    run_to_host(cpu, state)
    page = cpu.space.page_at(CODE_BASE)
    assert page.decode_cache
    cpu.space.write(CODE_BASE, Instruction(Op.MOV_RI, "rax", imm=7).encode(),
                    privileged=True)
    assert page.decode_cache is None
    # rerun from scratch: the patched first instruction must be seen
    state.regs.rip = CODE_BASE
    state.regs.set("rsp", STACK_TOP - 64)
    run_to_host(cpu, state)
    assert page.decode_cache[0][4] == Instruction(Op.MOV_RI, "rax", imm=7)


def test_guest_store_invalidates_decode_cache():
    """Self-modifying code: the guest patches an instruction it already
    executed (and so already cached), then loops back into it."""
    patched = Instruction(Op.MOV_RI, "rax", imm=999).encode()
    lo, hi = (int.from_bytes(patched[:8], "little"),
              int.from_bytes(patched[8:], "little"))
    a = Assembler()
    a.label("target")
    a.mov_ri("rax", 1)             # will be overwritten with mov rax, 999
    a.cmp_ri("rax", 999)
    a.je("done")
    a.lea("rdi", "target")         # patch our own text through the MMU
    a.mov_ri("rsi", lo)
    a.store("rdi", "rsi", 0)
    a.mov_ri("rsi", hi)
    a.store("rdi", "rsi", 8)
    a.jmp("target")
    a.label("done")
    a.ret()
    cpu, state, _ = make_machine(a, code_prot=PROT_RWX)
    assert run_to_host(cpu, state) == 999


def test_syscall_mprotect_wx_flip_faults_fetch():
    """A mid-run W^X flip (via the host-callback boundary) must be seen
    by the fast path's cached text page immediately."""
    a = Assembler()
    a.syscall()                    # handler flips the code page to RW
    a.mov_ri("rax", 1)             # fetch of this must now fault
    a.ret()
    cpu, state, _ = make_machine(a)

    def handler(st):
        cpu.space.mprotect(CODE_BASE, PAGE_SIZE, PROT_RW)

    cpu.syscall_handler = handler
    cpu._push(state, HOST_RETURN_ADDRESS)
    with pytest.raises(ExecuteFault):
        cpu.run(state)


def test_straddling_instruction_not_cached():
    """An instruction crossing a page boundary decodes correctly and is
    never cached (single-page invalidation could not cover it)."""
    space = AddressSpace()
    space.mmap(CODE_BASE, 2 * PAGE_SIZE, prot=PROT_RX, tag="text")
    misaligned = PAGE_SIZE - 8
    raw = Instruction(Op.MOV_RI, "rax", imm=42).encode()
    page0 = space.page_at(CODE_BASE)
    page1 = space.page_at(CODE_BASE + PAGE_SIZE)
    page0.data[misaligned:] = raw[:8]
    page1.data[:8] = raw[8:]
    page1.data[8:24] = Instruction(Op.HLT).encode()
    cpu = CPU(space)
    state = ExecState(RegisterFile())
    state.regs.rip = CODE_BASE + misaligned
    with pytest.raises(CpuExit):
        cpu.run(state)
    assert state.regs.get("rax") == 42
    assert (page0.decode_cache or {}).get(misaligned) is None


# -- software TLB ------------------------------------------------------------


def test_tlb_flush_on_pkey_mprotect():
    space = AddressSpace()
    base = space.mmap(None, PAGE_SIZE)
    space.write_word(base, 0x1234)
    pkru = pkru_disable_access(0, pkey=5)
    assert space.read_word(base, pkru) == 0x1234      # TLB entry installed
    space.pkey_mprotect(base, PAGE_SIZE, PROT_RW, pkey=5)
    with pytest.raises(ProtectionKeyFault):
        space.read_word(base, pkru)
    with pytest.raises(ProtectionKeyFault):
        space.write_word(base, 1, pkru)


def test_tlb_flush_on_munmap_and_mprotect():
    space = AddressSpace()
    base = space.mmap(None, PAGE_SIZE)
    space.write_word(base, 7)
    assert space.read_word(base) == 7
    space.mprotect(base, PAGE_SIZE, 0)
    with pytest.raises(SegmentationFault):
        space.read_word(base)
    space.mprotect(base, PAGE_SIZE, PROT_RW)
    assert space.read_word(base) == 7
    space.munmap(base, PAGE_SIZE)
    with pytest.raises(SegmentationFault):
        space.read_word(base)


def test_shared_page_mutation_via_other_space_not_stale():
    """share_into aliases Page objects; a pkey change performed through
    the *other* space must not leave this space's TLB hit stale."""
    leader = AddressSpace("leader")
    follower = AddressSpace("follower")
    base = leader.mmap(None, PAGE_SIZE)
    leader.write_word(base, 99)
    leader.share_into(follower)
    pkru = pkru_disable_access(0, pkey=3)
    assert follower.read_word(base, pkru) == 99       # follower TLB warm
    leader.pkey_mprotect(base, PAGE_SIZE, PROT_RW, pkey=3)
    # follower's page table was not touched — only the shared Page —
    # so the hit-revalidation must catch the new pkey
    with pytest.raises(ProtectionKeyFault):
        follower.read_word(base, pkru)


def test_word_fastpath_matches_general_path():
    space = AddressSpace()
    base = space.mmap(None, 2 * PAGE_SIZE)
    space.write_word(base + 8, 0xDEAD_BEEF_CAFE_F00D)
    assert space.read_word(base + 8) == 0xDEAD_BEEF_CAFE_F00D
    assert space.read(base + 8, 8) == (0xDEAD_BEEF_CAFE_F00D)\
        .to_bytes(8, "little")
    with pytest.raises(AlignmentFault):
        space.read_word(base + 4)
    with pytest.raises(AlignmentFault):
        space.write_word(base + 4, 1)
    # unaligned straddling access via aligned=False still works
    straddle = base + PAGE_SIZE - 4
    space.write_word(straddle, 0x1122334455667788, aligned=False)
    assert space.read_word(straddle, aligned=False) == 0x1122334455667788


# -- observer skip / precise parity ------------------------------------------


def test_observer_gets_same_notifications_as_before():
    space = AddressSpace()
    base = space.mmap(None, PAGE_SIZE)
    space.write(base, b"ab")                 # unobserved: no notification
    events = []
    space.add_observer(lambda *ev: events.append(ev))
    space.write(base, b"xy")
    space.read(base, 2)
    space.write_word(base + 16, 5)
    space.read_word(base + 16)
    assert events == [
        ("write", base, 2, b"xy"),
        ("read", base, 2, b"xy"),
        ("write", base + 16, 8, (5).to_bytes(8, "little")),
        ("read", base + 16, 8, (5).to_bytes(8, "little")),
    ]
    space.remove_observer(space._observers[0])
    space.write(base, b"zz")
    assert len(events) == 4


def test_read_cstring_fast_and_precise_agree():
    space = AddressSpace()
    base = space.mmap(None, 2 * PAGE_SIZE)
    # string crossing the page boundary
    payload = b"A" * (PAGE_SIZE - 3) + b"BCDE"
    space.write(base, payload + b"\x00tail")
    fast = space.read_cstring(base)
    events = []
    space.add_observer(lambda *ev: events.append(ev))
    precise = space.read_cstring(base)
    assert fast == precise == payload
    # precise path reads byte-at-a-time (taint granularity): one event
    # per content byte plus the terminator
    assert len(events) == len(payload) + 1


def test_read_cstring_limit_and_unterminated():
    space = AddressSpace()
    base = space.mmap(None, PAGE_SIZE)
    space.write(base, b"x" * 10)             # page is zero-filled after
    assert space.read_cstring(base) == b"x" * 10
    with pytest.raises(SegmentationFault):
        space.read_cstring(base, limit=10)   # NUL lies beyond the limit
    assert space.read_cstring(base, limit=11) == b"x" * 10
    # scanning off the end of the mapping faults at the unmapped page
    space.write(base + PAGE_SIZE - 16, b"y" * 16)
    with pytest.raises(SegmentationFault):
        space.read_cstring(base + PAGE_SIZE - 16)


def test_find_free_skips_occupied_runs():
    space = AddressSpace()
    a = space.mmap(None, 4 * PAGE_SIZE)
    b = space.mmap(None, 4 * PAGE_SIZE)
    assert b >= a + 4 * PAGE_SIZE
    # force the cursor to walk over an occupied run
    space._mmap_hint = a
    c = space.mmap(None, 2 * PAGE_SIZE)
    for off in range(0, 2 * PAGE_SIZE, PAGE_SIZE):
        assert space.page_at(c + off) is not None
    regions = {base for base, _ in space.mapped_pages()}
    assert len(regions) == 10


# -- fast/slow interpreter contract ------------------------------------------


def _snapshot(cpu, state):
    return (state.regs.snapshot(), cpu.counter.total_ns,
            cpu.instructions_retired)


def test_forced_slow_path_matches_fast_path():
    fast_cpu, fast_state, _ = make_machine(counting_loop(200))
    slow_cpu, slow_state, _ = make_machine(counting_loop(200))
    slow_cpu.force_slow_path = True
    run_to_host(fast_cpu, fast_state)
    run_to_host(slow_cpu, slow_state)
    assert _snapshot(fast_cpu, fast_state) == _snapshot(slow_cpu, slow_state)


def test_trace_hook_forces_precise_and_sees_every_instruction():
    cpu, state, _ = make_machine(counting_loop(30))
    seen = []
    cpu.trace_hook = lambda st, addr, instr: seen.append((addr, instr.op))
    run_to_host(cpu, state)
    assert len(seen) == cpu.instructions_retired
    assert seen[0] == (CODE_BASE, Op.MOV_RI)


def test_observer_attach_forces_precise_memory_behavior():
    a = Assembler()
    a.mov_ri("rax", 0x42)
    a.store("rdi", "rax", 0)
    a.load("rbx", "rdi", 0)
    a.ret()
    cpu, state, data_base = make_machine(a)
    state.regs.set("rdi", data_base)
    events = []
    cpu.space.add_observer(lambda *ev: events.append(ev))
    run_to_host(cpu, state)
    assert ("write", data_base, 8, (0x42).to_bytes(8, "little")) in events
    assert ("read", data_base, 8, (0x42).to_bytes(8, "little")) in events


def test_hook_attached_during_syscall_takes_effect_immediately():
    """A host callback may attach a precision consumer; the fast block
    must end there so the very next instruction is traced."""
    a = Assembler()
    a.mov_ri("rax", 1)
    a.syscall()
    a.mov_ri("rbx", 2)
    a.mov_ri("rcx", 3)
    a.ret()
    cpu, state, _ = make_machine(a)
    seen = []

    def handler(st):
        cpu.trace_hook = lambda s, addr, instr: seen.append(instr.op)

    cpu.syscall_handler = handler
    run_to_host(cpu, state)
    assert seen == [Op.MOV_RI, Op.MOV_RI, Op.RET]


def test_batched_charging_flushed_before_syscall_handler():
    """The kernel must observe the same virtual-cycle total at the trap
    boundary as under per-instruction charging."""
    a = Assembler()
    a.mov_ri("rax", 1)
    a.mov_ri("rbx", 2)
    a.syscall()
    a.ret()
    observed = {}

    cpu, state, _ = make_machine(a)
    cpu.syscall_handler = lambda st: observed.setdefault(
        "fast", (cpu.counter.total_ns, cpu.instructions_retired))
    run_to_host(cpu, state)

    cpu2, state2, _ = make_machine(a)
    cpu2.force_slow_path = True
    cpu2.syscall_handler = lambda st: observed.setdefault(
        "slow", (cpu2.counter.total_ns, cpu2.instructions_retired))
    run_to_host(cpu2, state2)

    assert observed["fast"] == observed["slow"]


def test_fault_still_charges_pending_instructions():
    """An execution fault must leave identical charge totals on both
    paths (pending charges flush before the fault propagates)."""
    a = Assembler()
    a.mov_ri("rax", 1)
    a.mov_ri("rdi", 0xDEAD_0000)
    a.load("rbx", "rdi", 0)        # faults: unmapped
    cpu, state, _ = make_machine(a)
    with pytest.raises(SegmentationFault):
        cpu.run(state)
    cpu2, state2, _ = make_machine(a)
    cpu2.force_slow_path = True
    with pytest.raises(SegmentationFault):
        cpu2.run(state2)
    assert cpu.counter.total_ns == cpu2.counter.total_ns
    assert cpu.instructions_retired == cpu2.instructions_retired
    assert state.regs.snapshot() == state2.regs.snapshot()


def test_max_steps_exact_on_fast_path():
    cpu, state, _ = make_machine(counting_loop(1000))
    reason = cpu.run(state, max_steps=37)
    assert reason == "max-steps"
    assert cpu.instructions_retired == 37
    slow_cpu, slow_state, _ = make_machine(counting_loop(1000))
    slow_cpu.force_slow_path = True
    slow_cpu.run(slow_state, max_steps=37)
    assert state.regs.snapshot() == slow_state.regs.snapshot()
    assert cpu.counter.total_ns == slow_cpu.counter.total_ns
