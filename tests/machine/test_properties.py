"""Property-based tests (hypothesis) over the machine substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidInstruction
from repro.machine import (
    AddressSpace,
    Assembler,
    Instruction,
    Op,
    PAGE_SIZE,
)
from repro.machine.isa import INSTR_SIZE
from repro.machine.mpk import (
    NUM_PKEYS,
    pkru_allows_read,
    pkru_allows_write,
    pkru_disable_access,
    pkru_disable_write,
    pkru_enable_all,
)
from repro.machine.registers import GP_REGISTERS, RegisterFile

registers = st.sampled_from(GP_REGISTERS)
maybe_register = st.one_of(st.none(), registers)
immediates = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
opcodes = st.sampled_from(list(Op))


# -- instruction encoding ---------------------------------------------------------

@settings(max_examples=300, deadline=None)
@given(opcodes, maybe_register, maybe_register, immediates)
def test_instruction_encode_decode_roundtrip(op, reg1, reg2, imm):
    instr = Instruction(op, reg1, reg2, imm)
    raw = instr.encode()
    assert len(raw) == INSTR_SIZE
    assert Instruction.decode(raw) == instr


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=INSTR_SIZE, max_size=INSTR_SIZE))
def test_decode_never_misbehaves_on_random_bytes(raw):
    """Random bytes either decode to a well-formed instruction or raise
    InvalidInstruction — never crash, never return garbage registers."""
    try:
        instr = Instruction.decode(raw)
    except InvalidInstruction:
        return
    assert isinstance(instr.op, Op)
    for reg in (instr.reg1, instr.reg2):
        assert reg is None or reg in GP_REGISTERS
    instr.text()                      # rendering never crashes either


# -- register file --------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(registers, st.integers(min_value=-(2 ** 70), max_value=2 ** 70))
def test_register_values_wrap_to_64_bits(name, value):
    regs = RegisterFile()
    regs.set(name, value)
    assert 0 <= regs.get(name) < 2 ** 64
    assert regs.get(name) == value & (2 ** 64 - 1)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 64 - 1),
       st.integers(min_value=0, max_value=2 ** 64 - 1))
def test_compare_flags_consistent(left, right):
    regs = RegisterFile()
    regs.set_compare_flags(left, right)
    assert regs.zf == (left == right)
    assert regs.cf == (left < right)          # unsigned below


# -- PKRU ---------------------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=0, max_value=(1 << 32) - 1),
       st.integers(min_value=0, max_value=NUM_PKEYS - 1))
def test_pkru_write_implies_read(pkru, key):
    """Write permission is strictly stronger than read permission."""
    if pkru_allows_write(pkru, key):
        assert pkru_allows_read(pkru, key)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=(1 << 32) - 1),
       st.integers(min_value=0, max_value=NUM_PKEYS - 1))
def test_pkru_disable_enable_roundtrip(pkru, key):
    blocked = pkru_disable_access(pkru_disable_write(pkru, key), key)
    assert not pkru_allows_read(blocked, key)
    restored = pkru_enable_all(blocked, key)
    assert pkru_allows_read(restored, key)
    assert pkru_allows_write(restored, key)
    # other keys untouched throughout
    for other in range(NUM_PKEYS):
        if other != key:
            assert pkru_allows_read(blocked, other) == \
                pkru_allows_read(pkru, other)


# -- address space ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=PAGE_SIZE * 4 - 1),
                          st.binary(min_size=1, max_size=128)),
                min_size=1, max_size=24))
def test_write_read_consistency(writes):
    """The last write to each byte wins, across arbitrary overlaps."""
    space = AddressSpace()
    base = space.mmap(None, 5 * PAGE_SIZE)
    shadow = bytearray(5 * PAGE_SIZE)
    for offset, data in writes:
        space.write(base + offset, data)
        shadow[offset:offset + len(data)] = data
    for offset, data in writes:
        got = space.read(base + offset, len(data))
        assert got == bytes(shadow[offset:offset + len(data)])


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=64))
def test_share_into_aliases_pages(n_shared, n_private):
    """Writes through either view of a shared page are seen by both."""
    parent = AddressSpace("p")
    child = AddressSpace("c")
    shared_base = parent.mmap(0x100000, PAGE_SIZE)
    private_base = parent.mmap(0x200000, PAGE_SIZE)
    parent.share_into(child, exclude=[(0x200000, 0x200000 + PAGE_SIZE)])
    child.write(shared_base, bytes([n_shared]))
    assert parent.read(shared_base, 1) == bytes([n_shared])
    assert not child.is_mapped(private_base)


# -- assembler -------------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=60),
       st.integers(min_value=0, max_value=2 ** 40).map(lambda x: x * 16))
def test_assembled_code_is_base_independent(pad, base):
    """PIE property: intra-unit control flow assembles to identical bytes
    at any base (everything is RIP-relative)."""
    def build():
        a = Assembler()
        a.mov_ri("rax", 0)
        for _ in range(pad):
            a.nop()
        a.label("target")
        a.add_ri("rax", 1)
        a.cmp_ri("rax", 3)
        a.jne("target")
        a.ret()
        return a
    assert build().assemble(0) == build().assemble(base)
