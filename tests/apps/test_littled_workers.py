"""Pre-forked multi-worker littled: serving without a harness pump.

The scheduler owns all progress: workers block in ``epoll_wait``, the
shared listener's horizon wakes them, ``accept4`` never blocks (a worker
beaten to a connection by a sibling takes EAGAIN and re-parks — the
thundering-herd contract), and ``shutdown()`` leaves a clean task table.
"""

import pytest

from repro.apps.littled import LittledServer
from repro.kernel import Kernel
from repro.kernel.sched import RunState

REQUEST = (b"GET /index.html HTTP/1.1\r\n"
           b"Host: localhost\r\n"
           b"Connection: keep-alive\r\n"
           b"\r\n")


def read_response(kernel, sock):
    raw = b""
    for _ in range(64):
        chunk = sock.recv_wait(4096)
        if isinstance(chunk, bytes) and chunk:
            raw += chunk
        if b"\r\n\r\n" in raw:
            break
    return raw


@pytest.fixture
def kernel():
    return Kernel(seed="littled-workers")


def test_four_workers_serve_without_pump(kernel):
    server = LittledServer(kernel, workers=4)
    assert server.start() >= 0
    socks = [kernel.network.connect(server.port) for _ in range(4)]
    for sock in socks:
        sock.send(REQUEST)
    status = kernel.sched.run_until(lambda: server.served >= 4)
    assert status == "done"
    assert server.served == 4
    for sock in socks:
        assert read_response(kernel, sock).startswith(b"HTTP/1.1 200")
    # the listener distributed accepts across workers, not one hog
    assert sum(1 for w in server.workers if w.served) >= 2
    server.shutdown()


def test_pump_raises_in_workers_mode(kernel):
    server = LittledServer(kernel, workers=2)
    with pytest.raises(RuntimeError, match="no pump"):
        server.pump()


def test_worker_processes_share_master_parentage(kernel):
    server = LittledServer(kernel, workers=3)
    for worker in server.workers:
        record = kernel.tasks.tasks[worker.process.pid]
        assert record.parent == server.master_pid
    assert len({w.process.pid for w in server.workers}) == 3


def test_thundering_herd_takes_eagain_and_reparks(kernel):
    server = LittledServer(kernel, workers=4)
    server.start()
    decisions_before = kernel.sched.decisions
    sock = kernel.network.connect(server.port)
    sock.send(REQUEST)
    # one connection, four parked workers: everyone may wake, exactly
    # one accepts, the rest take EAGAIN and re-enter epoll_wait
    assert kernel.sched.run_until(lambda: server.served >= 1) == "done"
    assert server.served == 1
    assert read_response(kernel, sock).startswith(b"HTTP/1.1 200")
    # no accept-spin: the whole exchange fits in a small decision budget
    assert kernel.sched.decisions - decisions_before < 500
    # and the losers are parked again, not busy-looping
    blocked = [t for t in kernel.sched.tasks
               if t.state is RunState.BLOCKED]
    assert len(blocked) >= 3
    server.shutdown()


def test_idle_workers_block_rather_than_spin(kernel):
    server = LittledServer(kernel, workers=2)
    server.start()
    # with no client at all, the run stalls (every worker parked on a
    # listener that will never become ready) instead of spinning
    assert kernel.sched.run_until(lambda: server.served >= 1,
                                  max_decisions=10_000) == "stall"
    server.shutdown()


def test_shutdown_reaps_every_worker(kernel):
    server = LittledServer(kernel, workers=4)
    server.start()
    worker_pids = [w.process.pid for w in server.workers]
    server.shutdown()
    assert all(t.done for t in kernel.sched.tasks)
    assert kernel.tasks.zombies() == []
    for pid in worker_pids:
        assert pid not in kernel.tasks.tasks
    # the master survives (the harness may start another generation)
    assert kernel.tasks.tasks[server.master_pid].alive


def test_smvx_workers_have_own_monitors_one_alarm_log(kernel):
    server = LittledServer(kernel, workers=2, smvx=True,
                           protect="server_main_loop")
    server.start()
    monitors = [w.monitor for w in server.workers]
    assert all(m is not None for m in monitors)
    assert len(set(map(id, monitors))) == 2
    socks = [kernel.network.connect(server.port) for _ in range(2)]
    for sock in socks:
        sock.send(REQUEST)
    assert kernel.sched.run_until(lambda: server.served >= 2) == "done"
    for sock in socks:
        assert read_response(kernel, sock).startswith(b"HTTP/1.1 200")
    server.shutdown()
    # shutdown unwound the protected main loops in lockstep: cancelling
    # a parked leader must not manufacture a divergence
    assert server.alarms.alarms == []


def test_worker_boot_charges_fork_cost_to_its_core(kernel):
    server = LittledServer(kernel, workers=2)
    server.start()
    # worker 1 paid the Table-2 fork cost (COW setup scales with the
    # parent's resident pages) on its own core's local time
    fork_ns = kernel.tasks.fork_cost_ns(
        server.workers[1].process.space.resident_bytes() // 4096)
    assert kernel.sched.cores[1].local_ns >= fork_ns * 0.5
    server.shutdown()
