"""Tests for the nbench suite (Figure 6 substrate)."""

import pytest

from repro.apps.nbench import (
    NBENCH_WORKLOADS,
    NbenchHarness,
    build_nbench_image,
    provision_nbench_files,
)
from repro.core import build_smvx_stub_image
from repro.kernel import Kernel
from repro.libc import build_libc_image
from repro.process import GuestProcess
from repro.process.context import to_signed


def make_process():
    kernel = Kernel()
    provision_nbench_files(kernel.vfs)
    proc = GuestProcess(kernel, "nbench", heap_pages=128)
    proc.load_image(build_libc_image(), tag="libc")
    proc.load_image(build_smvx_stub_image(), tag="libsmvx")
    proc.load_image(build_nbench_image(), main=True)
    proc.app_config = {"protect": None}
    return proc


def test_ten_workloads_registered():
    assert len(NBENCH_WORKLOADS) == 10
    names = {spec.name for spec in NBENCH_WORKLOADS}
    assert {"Numeric Sort", "Neural Net", "IDEA", "Huffman",
            "LU Decomposition"} <= names


@pytest.mark.parametrize("index", range(10))
def test_workload_runs_and_is_deterministic(index):
    p1, p2 = make_process(), make_process()
    c1 = to_signed(p1.call_function("nb_main", index))
    c2 = to_signed(p2.call_function("nb_main", index))
    assert c1 == c2
    assert c1 != 0


def test_workloads_have_distinct_checksums():
    proc = make_process()
    sums = [proc.call_function("nb_main", i) for i in range(10)]
    assert len(set(sums)) == 10


def test_neural_net_reads_model_file():
    proc = make_process()
    proc.call_function("nb_main", 8)       # Neural Net
    reads = proc.kernel.syscall_breakdown(proc.pid).get("read", 0)
    assert reads >= 10                     # chunked model-file reads


def test_harness_smvx_consistency_and_overhead():
    harness = NbenchHarness(runs=1)
    result = harness.run_workload(0)       # Numeric Sort
    assert result.consistent
    assert 0.0 < result.overhead < 0.20    # low, CPU-bound


def test_neural_net_overhead_is_highest_of_probe_set():
    harness = NbenchHarness(runs=1)
    numeric = harness.run_workload(0)
    neural = harness.run_workload(8)
    assert neural.overhead > numeric.overhead
    assert neural.overhead > 0.10          # the paper's standout (~16%)


def test_nbench_consistent_under_aligned_strategy():
    """The aligned-variant strategy preserves every workload's checksum
    (a strong whole-suite check of the diversifier's semantics)."""
    harness = NbenchHarness(runs=1, variant_strategy="aligned")
    for index in (0, 4, 8):                 # sort, FP, the I/O-heavy one
        result = harness.run_workload(index)
        assert result.consistent, result.name
        assert result.overhead < 0.10       # cheaper than shift
