"""Whole-machine integration: minx and littled co-hosted on one kernel,
both under sMVX, interleaved traffic, one of them attacked."""

import pytest

from repro.apps import LittledServer, MinxServer
from repro.attacks import run_exploit
from repro.kernel import Kernel
from repro.workloads import ApacheBench


@pytest.fixture
def machine():
    kernel = Kernel()
    minx = MinxServer(kernel, port=8080, smvx=True,
                      protect="minx_http_process_request_line",
                      name="minx-co")
    littled = LittledServer(kernel, port=8081, smvx=True,
                            protect="server_main_loop", name="littled-co")
    minx.start()
    littled.start()
    return kernel, minx, littled


def test_interleaved_traffic_both_protected(machine):
    kernel, minx, littled = machine
    ab_minx = ApacheBench(kernel, minx)
    ab_littled = ApacheBench(kernel, littled)
    for _ in range(4):
        assert ab_minx.run(1).status_counts == {200: 1}
        assert ab_littled.run(1).status_counts == {200: 1}
    assert not minx.alarms.triggered
    assert not littled.alarms.triggered
    assert minx.monitor.stats.regions_entered >= 4
    assert littled.monitor.stats.regions_entered >= 4


def test_monitors_have_distinct_keys_and_bases(machine):
    _, minx, littled = machine
    # each process has its own pkey allocator, monitor image, safe stacks
    assert minx.monitor.monitor_image.base != \
        littled.monitor.monitor_image.base
    assert minx.monitor.memory.safe_stack_area != \
        littled.monitor.memory.safe_stack_area


def test_attack_on_one_leaves_the_other_serving(machine):
    kernel, minx, littled = machine
    outcome = run_exploit(minx)
    assert outcome.attack_detected_and_blocked
    assert minx.alarms.triggered
    # littled is untouched and keeps serving
    assert not littled.alarms.triggered
    result = ApacheBench(kernel, littled).run(3)
    assert result.status_counts == {200: 3}
    # and so does minx, post-alarm
    result = ApacheBench(kernel, minx).run(3)
    assert result.status_counts == {200: 3}


def test_shared_filesystem_log_interleaving(machine):
    """Both servers append to the shared VFS; leader-only I/O means each
    request logs exactly once even with two lockstep systems running."""
    kernel, minx, littled = machine
    ApacheBench(kernel, minx).run(3)
    ApacheBench(kernel, littled).run(2)
    minx_log = kernel.vfs.read_file("/var/log/minx.log")
    littled_log = kernel.vfs.read_file("/var/log/littled.log")
    assert minx_log.count(b"\r\n") == 3
    assert littled_log.count(b"\r\n") == 2


def test_syscall_accounting_is_per_process(machine):
    kernel, minx, littled = machine
    ApacheBench(kernel, minx).run(2)
    before_littled = kernel.syscall_count(littled.process.pid)
    ApacheBench(kernel, minx).run(2)
    assert kernel.syscall_count(littled.process.pid) == before_littled
