"""Production serving control plane: supervisor, reload, admission.

The supervisor is one more deterministic scheduler task, so everything
here runs under virtual time with no harness pump: worker kills are
chaos tasks, reloads are scheduled instants, and the assertions read the
supervisor's own event log and metrics trail.
"""

import pytest

from repro.apps.control import Supervisor, spawn_worker_kill
from repro.apps.littled import LittledServer
from repro.kernel import Kernel
from repro.workloads import ApacheBench


@pytest.fixture
def kernel():
    return Kernel(seed="control-plane")


def _loaded_run(kernel, server, requests=40, concurrency=8):
    ab = ApacheBench(kernel, server, timeout_ns=2_000_000_000)
    return ab.run(requests, concurrency=concurrency)


def test_supervisor_requires_worker_mode(kernel):
    server = LittledServer(kernel)                 # classic pump mode
    with pytest.raises(ValueError, match="multi-worker"):
        Supervisor(server)


def test_supervisor_restarts_killed_worker_mid_load(kernel):
    server = LittledServer(kernel, workers=2)
    server.start()
    supervisor = Supervisor(server).start()
    spawn_worker_kill(server, 0, kernel.clock.monotonic_ns + 2_000_000)
    result = _loaded_run(kernel, server)
    assert result.failures == 0                    # no request dropped
    assert result.requests_completed == 40
    assert supervisor.restarts_total == 1
    assert supervisor.restart_counts == {0: 1}
    restart, = [e for e in supervisor.events if e["event"] == "restart"]
    assert restart["reason"] == "crash"
    assert restart["slot"] == 0
    # the replacement landed in the slot and is serving
    assert server.workers[0].process.pid == restart["pid"]
    assert not server.workers[0].task.done
    supervisor.stop()
    server.shutdown()


def test_restart_budget_is_per_slot_and_final(kernel):
    server = LittledServer(kernel, workers=2)
    server.start()
    supervisor = Supervisor(server, restart_budget=1).start()
    spawn_worker_kill(server, 0, kernel.clock.monotonic_ns + 1_000_000)
    assert kernel.sched.run_until(
        lambda: supervisor.restarts_total >= 1) == "done"
    # kill the replacement too: slot 0's budget (1) is already spent
    spawn_worker_kill(server, 0, kernel.clock.monotonic_ns + 1_000_000)
    assert kernel.sched.run_until(
        lambda: any(e["event"] == "budget-exhausted"
                    for e in supervisor.events)) == "done"
    assert supervisor.restarts_total == 1          # no second restart
    assert server.workers[0].task.done             # slot stays down
    assert not server.workers[1].task.done         # sibling untouched
    # the exhaustion is logged once, not re-logged every tick
    deadline = kernel.clock.monotonic_ns + 20_000_000
    kernel.sched.run_until(
        lambda: kernel.clock.monotonic_ns >= deadline)
    exhausted = [e for e in supervisor.events
                 if e["event"] == "budget-exhausted"]
    assert len(exhausted) == 1
    supervisor.stop()
    server.shutdown()


def test_graceful_reload_drops_no_requests(kernel):
    server = LittledServer(kernel, workers=2)
    server.start()
    supervisor = Supervisor(
        server,
        reload_at_ns=kernel.clock.monotonic_ns + 2_000_000).start()
    result = _loaded_run(kernel, server)
    assert result.failures == 0                    # zero dropped in-flight
    assert result.requests_completed == 40
    assert supervisor.reloads == 1
    assert supervisor.generation == 1
    reload_event, = [e for e in supervisor.events
                     if e["event"] == "reload"]
    assert len(reload_event["drained"]) == 2
    # the old generation drained and exited; the new one took the load
    assert len(server.retired) == 2
    for worker in server.retired:
        assert worker.task.done
    assert sum(w.served_snapshot for w in server.workers) > 0
    supervisor.stop()
    server.shutdown()


def test_reload_keeps_shared_listener_open(kernel):
    """The listener must survive the old generation's exit sweep: worker
    fds hold references, and only the last drop closes it."""
    server = LittledServer(kernel, workers=2)
    server.start()
    supervisor = Supervisor(
        server,
        reload_at_ns=kernel.clock.monotonic_ns + 1_000_000).start()
    assert kernel.sched.run_until(
        lambda: supervisor.reloads >= 1
        and all(w.task.done for w in server.retired)) == "done"
    listener = kernel.network.listener_at(server.port)
    assert listener is not None and not listener.closed
    # and it still accepts: serve one request through the new generation
    result = _loaded_run(kernel, server, requests=4, concurrency=2)
    assert result.failures == 0
    supervisor.stop()
    server.shutdown()


def test_admission_control_gates_at_conn_cap(kernel):
    """With ``conn_cap`` set, a worker at capacity takes its listener out
    of the epoll set (G_GATED) instead of accepting; the queued clients
    are absorbed once connections free up — served, just later."""
    server = LittledServer(kernel, workers=2, conn_cap=2)
    server.start()
    result = _loaded_run(kernel, server, requests=24, concurrency=12)
    assert result.failures == 0
    assert result.requests_completed == 24
    # capacity was respected: no worker ever held more than its cap
    for worker in server.workers + server.retired:
        assert worker.active_connections <= 2
    server.shutdown()


def test_metrics_trail_counts_and_sums(kernel):
    server = LittledServer(kernel, workers=2)
    server.start()
    samples = []
    supervisor = Supervisor(server).start()
    supervisor.metrics_hook = samples.append
    result = _loaded_run(kernel, server, requests=20, concurrency=4)
    assert result.failures == 0
    supervisor.stop()
    assert supervisor.metric_samples == len(samples) > 0
    last = samples[-1]
    assert last["generation"] == 0
    assert last["restarts_total"] == 0
    assert sum(w["served"] for w in last["workers"]) == 20
    # deltas telescope back to the totals
    for slot in (0, 1):
        deltas = sum(s["workers"][slot]["served_delta"] for s in samples)
        assert deltas == last["workers"][slot]["served"]
    server.shutdown()


def test_snapshot_is_deterministic_across_runs():
    """The footer pin: two identical supervised runs (same seed, same
    kill schedule) produce byte-identical snapshots."""
    import json

    def one_run():
        kernel = Kernel(seed="control-pin")
        server = LittledServer(kernel, workers=2)
        server.start()
        supervisor = Supervisor(
            server,
            reload_at_ns=kernel.clock.monotonic_ns + 2_000_000).start()
        spawn_worker_kill(server, 1,
                          kernel.clock.monotonic_ns + 1_000_000)
        result = _loaded_run(kernel, server, requests=30, concurrency=6)
        assert result.failures == 0
        supervisor.stop()
        snap = json.dumps(supervisor.snapshot(), sort_keys=True)
        server.shutdown()
        return snap

    assert one_run() == one_run()
