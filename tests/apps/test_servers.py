"""Integration tests: minx and littled, vanilla and under sMVX."""

import pytest

from repro.apps import LittledServer, MinxServer
from repro.kernel import Kernel
from repro.workloads import ApacheBench


@pytest.fixture
def kernel():
    return Kernel()


# -- minx -------------------------------------------------------------------------

def test_minx_serves_static_page(kernel):
    server = MinxServer(kernel)
    assert server.start() == 0
    ab = ApacheBench(kernel, server)
    result = ab.run(5)
    assert result.requests_completed == 5
    assert result.failures == 0
    assert result.status_counts == {200: 5}
    assert result.bytes_received == 5 * 4096
    assert server.served == 5


def test_minx_404_and_400(kernel):
    server = MinxServer(kernel)
    server.start()
    ab = ApacheBench(kernel, server)
    result = ab.run(2, paths=["/missing.html", "/index.html"])
    assert result.status_counts == {404: 1, 200: 1}

    # malformed request line -> 400
    sock = kernel.network.connect(server.port)
    sock.send(b"BOGUS\r\n\r\n")
    server.pump()
    raw = sock.recv_wait(4096)
    assert raw.startswith(b"HTTP/1.1 400")


def test_minx_connection_close(kernel):
    server = MinxServer(kernel)
    server.start()
    sock = kernel.network.connect(server.port)
    sock.send(b"GET /index.html HTTP/1.1\r\nHost: x\r\n"
              b"Connection: close\r\n\r\n")
    server.pump()
    raw = b""
    while True:
        chunk = sock.recv_wait(8192)
        if isinstance(chunk, int) or chunk == b"":
            break
        raw += chunk
        server.pump()
    assert b"Connection: close" in raw
    assert raw.endswith(b"</html>")


def test_minx_benign_chunked_post(kernel):
    """A well-formed chunked body goes through the (vulnerable) discard
    path without incident."""
    server = MinxServer(kernel)
    server.start()
    sock = kernel.network.connect(server.port)
    body = b"hello-world-data"
    request = (b"POST /index.html HTTP/1.1\r\nHost: x\r\n"
               b"Transfer-Encoding: chunked\r\n\r\n" +
               (b"%x\r\n" % len(body)) + body + b"\r\n0\r\n\r\n")
    sock.send(request)
    server.pump()
    raw = sock.recv_wait(8192)
    assert raw.startswith(b"HTTP/1.1 200")
    assert server.served == 1


def test_minx_under_smvx_serves_identically(kernel):
    vanilla = MinxServer(kernel, port=8080, name="minx-vanilla")
    protected = MinxServer(kernel, port=8090, name="minx-smvx",
                           protect="minx_http_process_request_line",
                           smvx=True)
    vanilla.start()
    protected.start()
    r_vanilla = ApacheBench(kernel, vanilla).run(4)
    r_protected = ApacheBench(kernel, protected).run(4)
    assert r_vanilla.status_counts == r_protected.status_counts == {200: 4}
    assert r_vanilla.bytes_received == r_protected.bytes_received
    assert not protected.alarms.triggered
    assert protected.monitor.stats.regions_entered == 4   # one per request
    assert protected.monitor.stats.leader_calls == \
        protected.monitor.stats.follower_calls > 0


def test_minx_smvx_costs_more_busy_time(kernel):
    vanilla = MinxServer(kernel, port=8080, name="m0")
    protected = MinxServer(kernel, port=8090, name="m1",
                           protect="minx_http_process_request_line",
                           smvx=True)
    vanilla.start()
    protected.start()
    rv = ApacheBench(kernel, vanilla).run(5)
    rp = ApacheBench(kernel, protected).run(5)
    assert rp.busy_per_request_ns > rv.busy_per_request_ns
    assert rp.server_cpu_ns > rp.server_busy_ns  # follower burned a core


def test_minx_libc_syscall_ratio_above_one(kernel):
    server = MinxServer(kernel)
    server.start()
    ApacheBench(kernel, server).run(10)
    ratio = server.process.libc_syscall_ratio()
    assert ratio > 1.0


# -- littled -----------------------------------------------------------------------

def test_littled_serves_static_page(kernel):
    server = LittledServer(kernel)
    server.start()
    result = ApacheBench(kernel, server).run(5)
    assert result.requests_completed == 5
    assert result.status_counts == {200: 5}
    assert result.bytes_received == 5 * 4096


def test_littled_404(kernel):
    server = LittledServer(kernel)
    server.start()
    result = ApacheBench(kernel, server, path="/nope.html").run(1)
    assert result.status_counts == {404: 1}


def test_littled_ratio_higher_than_minx(kernel):
    """Figure 7's secondary axis: littled's buffer churn gives it a higher
    libc:syscall ratio than minx."""
    minx = MinxServer(kernel, port=8080)
    littled = LittledServer(kernel, port=8081)
    minx.start()
    littled.start()
    ApacheBench(kernel, minx).run(10)
    ApacheBench(kernel, littled).run(10)
    assert littled.process.libc_syscall_ratio() > \
        minx.process.libc_syscall_ratio()


def test_littled_under_smvx_whole_loop_region(kernel):
    server = LittledServer(kernel, protect="server_main_loop", smvx=True)
    server.start()
    result = ApacheBench(kernel, server).run(4)
    assert result.status_counts == {200: 4}
    assert not server.alarms.triggered
    # one region per pump (the loop root), not per request
    assert server.monitor.stats.regions_entered >= 1
    assert server.monitor.stats.emulated_calls > 0


def test_minx_conditional_get_304(kernel):
    """ETag/If-None-Match: a matching tag gets 304 with no body."""
    kernel.vfs.write_file("/var/www/index.html",
                          b"<html>" + b"x" * 4083 + b"</html>", mtime_s=99)
    server = MinxServer(kernel)
    server.start()
    sock = kernel.network.connect(server.port)
    sock.send(b"GET /index.html HTTP/1.1\r\nHost: x\r\n"
              b'If-None-Match: "1000-63"\r\n\r\n')
    server.pump()
    raw = sock.recv_wait(8192)
    assert raw.startswith(b"HTTP/1.1 304 Not Modified")
    assert raw.endswith(b"\r\n\r\n")          # headers only, no body
    assert b"Content-Length: 0" in raw

    # a stale tag gets the full page
    sock.send(b"GET /index.html HTTP/1.1\r\nHost: x\r\n"
              b'If-None-Match: "dead-beef"\r\n\r\n')
    server.pump()
    raw = b""
    while len(raw) < 4096:
        chunk = sock.recv_wait(8192)
        if isinstance(chunk, int) or chunk == b"":
            break
        raw += chunk
        server.pump()
    assert raw.startswith(b"HTTP/1.1 200")


def test_minx_conditional_get_consistent_under_smvx(kernel):
    kernel.vfs.write_file("/var/www/index.html",
                          b"<html>" + b"x" * 4083 + b"</html>", mtime_s=99)
    server = MinxServer(kernel, smvx=True,
                        protect="minx_http_process_request_line")
    server.start()
    sock = kernel.network.connect(server.port)
    sock.send(b"GET /index.html HTTP/1.1\r\nHost: x\r\n"
              b'If-None-Match: "1000-63"\r\n\r\n')
    server.pump()
    raw = sock.recv_wait(8192)
    assert raw.startswith(b"HTTP/1.1 304")
    assert not server.alarms.triggered


def test_littled_aligned_strategy(kernel):
    """littled under the aligned-variant strategy: whole-loop region with
    zero relocation still serves and stays in lockstep."""
    server = LittledServer(kernel, smvx=True, protect="server_main_loop",
                           variant_strategy="aligned")
    server.start()
    result = ApacheBench(kernel, server).run(4)
    assert result.status_counts == {200: 4}
    assert not server.alarms.triggered
    assert server.monitor.last_variant_report.shift == 0


def test_minx_keepalive_post_body_with_fake_headers(kernel):
    """Regression: ``header_value`` must bound its search to the header
    block.  A keep-alive POST whose *body* contains header-shaped bytes
    (``\\r\\nConnection: close``) must neither flip the connection state
    nor have the fake bytes parsed as headers — the follow-up request on
    the same connection still gets served."""
    server = MinxServer(kernel)
    server.start()
    sock = kernel.network.connect(server.port)
    body = b"field=x\r\nConnection: close\r\nContent-Length: 99999\r\n\r\n"
    sock.send(b"POST /index.html HTTP/1.1\r\nHost: x\r\n"
              b"Content-Length: " + b"%d" % len(body) + b"\r\n\r\n" + body)
    server.pump()
    first = sock.recv_wait(8192)
    while not first.endswith(b"</html>"):       # drain headers + body
        first += sock.recv_wait(8192)
    assert first.startswith(b"HTTP/1.1 200")
    assert b"Connection: close" not in first    # body bytes ignored
    # connection stayed open: pipeline a second request over it
    sock.send(b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
    server.pump()
    second = sock.recv_wait(8192)
    assert second.startswith(b"HTTP/1.1 200")
    assert server.served == 2
