"""Per-function coverage of the guest libc (the paper's 35+ calls)."""

import struct

import pytest

from repro.core import build_smvx_stub_image
from repro.kernel import Kernel
from repro.kernel.epoll_impl import EPOLL_CTL_ADD, EPOLLIN
from repro.kernel.errno_codes import Errno
from repro.kernel.vfs import O_APPEND, O_CREAT, O_RDONLY, O_RDWR, O_WRONLY
from repro.libc import LIBC_ARITIES, LIBC_FUNCTIONS, build_libc_image
from repro.loader import ImageBuilder
from repro.process import GuestProcess, to_signed


@pytest.fixture
def guest():
    """A process plus a run(fn) helper executing fn as a guest function."""
    kernel = Kernel()
    kernel.vfs.write_file("/etc/sample", b"0123456789abcdef")
    process = GuestProcess(kernel, "libc-test")
    process.load_image(build_libc_image(), tag="libc")

    class Guest:
        def __init__(self):
            self.kernel = kernel
            self.process = process
            self._counter = 0

        def run(self, fn, *args):
            self._counter += 1
            builder = ImageBuilder(f"probe{self._counter}")
            builder.import_libc(*LIBC_FUNCTIONS.keys())
            builder.add_hl_function("probe", fn, len(args))
            process.load_image(builder.build())
            return to_signed(process.call_function("probe", *args))
    return Guest()


def test_every_libc_function_has_matching_arity():
    import inspect
    for name, (fn, arity) in LIBC_FUNCTIONS.items():
        params = inspect.signature(fn).parameters
        fixed = [p for p in params.values()
                 if p.kind is inspect.Parameter.POSITIONAL_OR_KEYWORD]
        assert len(fixed) - 1 == arity, name     # minus ctx


def test_open_rdwr_and_append(guest):
    def probe(ctx):
        path = ctx.stack_alloc(32)
        ctx.write_cstring(path, b"/tmp/rw")
        fd = to_signed(ctx.libc("open", path, O_RDWR | O_CREAT))
        buf = ctx.stack_alloc(8)
        ctx.write(buf, b"abc")
        ctx.libc("write", fd, buf, 3)
        ctx.libc("close", fd)
        fd = to_signed(ctx.libc("open", path, O_WRONLY | O_APPEND))
        ctx.write(buf, b"def")
        ctx.libc("write", fd, buf, 3)
        ctx.libc("close", fd)
        return 0
    guest.run(probe)
    assert guest.kernel.vfs.read_file("/tmp/rw") == b"abcdef"


def test_lseek_and_read(guest):
    def probe(ctx):
        path = ctx.stack_alloc(32)
        ctx.write_cstring(path, b"/etc/sample")
        fd = to_signed(ctx.libc("open", path, O_RDONLY))
        ctx.libc("lseek", fd, 10, 0)
        buf = ctx.stack_alloc(8)
        n = to_signed(ctx.libc("read", fd, buf, 6))
        assert ctx.read(buf, n) == b"abcdef"
        ctx.libc("close", fd)
        return n
    assert guest.run(probe) == 6


def test_stat_fstat_consistency(guest):
    def probe(ctx):
        path = ctx.stack_alloc(32)
        ctx.write_cstring(path, b"/etc/sample")
        s1 = ctx.stack_alloc(24)
        ctx.libc("stat", path, s1)
        fd = to_signed(ctx.libc("open", path, O_RDONLY))
        s2 = ctx.stack_alloc(24)
        ctx.libc("fstat", fd, s2)
        ctx.libc("close", fd)
        assert ctx.read(s1, 24) == ctx.read(s2, 24)
        return ctx.read_word(s1 + 8)           # size field
    assert guest.run(probe) == 16


def test_mkdir_unlink(guest):
    def probe(ctx):
        path = ctx.stack_alloc(32)
        ctx.write_cstring(path, b"/tmp/newdir")
        first = to_signed(ctx.libc("mkdir", path, 0o755))
        second = to_signed(ctx.libc("mkdir", path, 0o755))
        assert second == -1 and ctx.errno == Errno.EEXIST
        return first
    assert guest.run(probe) == 0
    assert guest.kernel.vfs.is_dir("/tmp/newdir")


def test_getpid_matches_process(guest):
    def probe(ctx):
        return ctx.libc("getpid")
    assert guest.run(probe) == guest.process.pid


def test_time_and_gettimeofday_agree(guest):
    def probe(ctx):
        tv = ctx.stack_alloc(16)
        ctx.libc("gettimeofday", tv, 0)
        t = ctx.libc("time", 0)
        return abs(t - ctx.read_word(tv))
    assert guest.run(probe) <= 1


def test_memcmp_orderings(guest):
    def probe(ctx):
        a = ctx.stack_alloc(8)
        b = ctx.stack_alloc(8)
        ctx.write(a, b"apple")
        ctx.write(b, b"apply")
        less = to_signed(ctx.libc("memcmp", a, b, 5))
        equal = to_signed(ctx.libc("memcmp", a, b, 4))
        greater = to_signed(ctx.libc("memcmp", b, a, 5))
        assert less < 0 and equal == 0 and greater > 0
        return 1
    assert guest.run(probe) == 1


def test_memmove_overlapping(guest):
    def probe(ctx):
        buf = ctx.stack_alloc(16)
        ctx.write(buf, b"0123456789")
        ctx.libc("memmove", buf + 2, buf, 8)   # overlap forward
        assert ctx.read(buf, 10) == b"0101234567"
        return 1
    assert guest.run(probe) == 1


def test_strncmp_prefix(guest):
    def probe(ctx):
        a = ctx.stack_alloc(32)
        b = ctx.stack_alloc(32)
        ctx.write_cstring(a, b"Transfer-Encoding")
        ctx.write_cstring(b, b"Transfer-Bogus")
        same_prefix = to_signed(ctx.libc("strncmp", a, b, 9))
        differs = to_signed(ctx.libc("strncmp", a, b, 12))
        assert same_prefix == 0 and differs != 0
        return 1
    assert guest.run(probe) == 1


def test_strchr_missing_returns_null(guest):
    def probe(ctx):
        buf = ctx.stack_alloc(8)
        ctx.write_cstring(buf, b"abc")
        return ctx.libc("strchr", buf, ord("z"))
    assert guest.run(probe) == 0


def test_realloc_grows_and_preserves(guest):
    def probe(ctx):
        p = ctx.libc("malloc", 8)
        ctx.write(p, b"12345678")
        q = ctx.libc("realloc", p, 256)
        assert ctx.read(q, 8) == b"12345678"
        ctx.libc("free", q)
        return 1
    assert guest.run(probe) == 1


def test_calloc_zero_fill(guest):
    def probe(ctx):
        p = ctx.libc("calloc", 8, 16)
        data = ctx.read(p, 128)
        assert data == b"\x00" * 128
        ctx.libc("free", p)
        return 1
    assert guest.run(probe) == 1


def test_send_recv_shutdown_roundtrip(guest):
    def probe(ctx, port):
        listen_fd = to_signed(ctx.libc("listen_on", port, 4))
        return listen_fd
    listen_fd = guest.run(probe, 7100)
    client = guest.kernel.network.connect(7100)
    client.send(b"ping")

    def probe2(ctx, listen_fd):
        conn = to_signed(ctx.libc("accept4", listen_fd, 0))
        buf = ctx.stack_alloc(16)
        n = to_signed(ctx.libc("recv", conn, buf, 16, 0))
        assert ctx.read(buf, n) == b"ping"
        ctx.write(buf, b"pong")
        ctx.libc("send", conn, buf, 4, 0)
        ctx.libc("shutdown", conn, 1)
        return n
    assert guest.run(probe2, listen_fd) == 4
    assert client.recv_wait(16) == b"pong"


def test_epoll_full_cycle(guest):
    def setup(ctx, port):
        listen_fd = to_signed(ctx.libc("listen_on", port, 4))
        epfd = to_signed(ctx.libc("epoll_create1", 0))
        ev = ctx.stack_alloc(16)
        ctx.write_words(ev, [EPOLLIN, listen_fd])
        ctx.libc("epoll_ctl", epfd, EPOLL_CTL_ADD, listen_fd, ev)
        return epfd * 1000 + listen_fd
    packed = guest.run(setup, 7200)
    epfd, listen_fd = divmod(packed, 1000)
    guest.kernel.network.connect(7200)

    def wait(ctx, epfd, listen_fd):
        events = ctx.stack_alloc(64)
        n = to_signed(ctx.libc("epoll_wait", epfd, events, 4, -1))
        assert n == 1
        assert ctx.read_word(events + 8) == listen_fd
        # epoll_pwait behaves identically with a sigmask argument
        n2 = to_signed(ctx.libc("epoll_pwait", epfd, events, 4, 0, 0))
        return n + n2
    assert guest.run(wait, epfd, listen_fd) >= 1


def test_writev_and_sendfile(guest):
    guest.kernel.vfs.write_file("/var/www/blob", b"B" * 32)

    def probe(ctx, port):
        listen_fd = to_signed(ctx.libc("listen_on", port, 4))
        return listen_fd
    listen_fd = guest.run(probe, 7300)
    client = guest.kernel.network.connect(7300)

    def probe2(ctx, listen_fd):
        conn = to_signed(ctx.libc("accept4", listen_fd, 0))
        a = ctx.stack_alloc(8)
        b = ctx.stack_alloc(8)
        ctx.write(a, b"hdr:")
        ctx.write(b, b"body")
        iov = ctx.stack_alloc(32)
        ctx.write_words(iov, [a, 4, b, 4])
        ctx.libc("writev", conn, iov, 2)
        path = ctx.stack_alloc(16)
        ctx.write_cstring(path, b"/var/www/blob")
        from repro.kernel.vfs import O_RDONLY as RD
        fd = to_signed(ctx.libc("open", path, RD))
        off = ctx.stack_alloc(8)
        ctx.write_word(off, 0)
        sent = to_signed(ctx.libc("sendfile", conn, fd, off, 32))
        ctx.libc("close", fd)
        return sent
    assert guest.run(probe2, listen_fd) == 32
    received = b""
    while len(received) < 40:
        chunk = client.recv_wait(64)
        if isinstance(chunk, int) or chunk == b"":
            break
        received += chunk
    assert received == b"hdr:body" + b"B" * 32


def test_setsockopt_getsockopt(guest):
    def probe(ctx, port):
        listen_fd = to_signed(ctx.libc("listen_on", port, 4))
        return listen_fd
    listen_fd = guest.run(probe, 7400)
    guest.kernel.network.connect(7400)

    def probe2(ctx, listen_fd):
        conn = to_signed(ctx.libc("accept4", listen_fd, 0))
        val = ctx.stack_alloc(8)
        ctx.write_word(val, 1)
        ctx.libc("setsockopt", conn, 6, 1, val, 8)
        out = ctx.stack_alloc(8)
        outlen = ctx.stack_alloc(8)
        ctx.libc("getsockopt", conn, 6, 1, out, outlen)
        return ctx.read_word(out)
    assert guest.run(probe2, listen_fd) == 1


def test_errno_preserved_per_thread(guest):
    def probe(ctx):
        path = ctx.stack_alloc(16)
        ctx.write_cstring(path, b"/absent")
        ctx.libc("open", path, O_RDONLY)
        first = ctx.errno
        ctx.libc("getpid")                  # success doesn't clear errno
        return first
    assert guest.run(probe) == Errno.ENOENT
