"""Smoke tests: every shipped example runs to completion and prints the
claims it is supposed to demonstrate."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_demonstrates_detection():
    out = run_example("quickstart.py")
    assert "main_program(21) = 54" in out
    assert "ALARM:" in out
    assert "libc call name mismatch" in out


def test_protect_web_server_blocks_cve():
    out = run_example("protect_web_server.py")
    assert "mkdir('/tmp/minx_upstream') executed: True" in out   # vanilla
    assert "attack detected and blocked: True" in out            # sMVX
    assert "post-attack requests: {200: 3}" in out


def test_taint_guided_annotation_workflow():
    out = run_example("taint_guided_annotation.py")
    assert "sensitive functions (ab):" in out
    assert "chosen protected root: minx_http_process_request_line" in out
    assert "first divergent function: minx_http_auth_basic" in out
    assert "alarms=0" in out


def test_resource_comparison_numbers():
    out = run_example("resource_comparison.py")
    assert "overhead; paper: 266%" in out
    assert "paper: ~49%" in out
    assert "(paper: ~7%)" in out


def test_record_replay_capsule_roundtrip():
    out = run_example("record_replay_capsule.py")
    assert "attack detected and blocked: True" in out
    assert "replay OK: bit-identical" in out
    assert "capsule reproduced: FOLLOWER_FAULT" in out
    # the capsule replay re-raised at the same guest PC it detected at
    import re
    pc = re.search(r"guest pc at detection: (0x[0-9a-f]+)", out).group(1)
    assert f"at pc={pc}" in out


def test_variant_strategies_all_catch():
    out = run_example("variant_strategies.py")
    assert out.count("caught") == 3
    assert "MISSED" not in out


def test_distributed_smvx_walkthrough():
    out = run_example("distributed_smvx.py")
    assert "requests completed: 6/6" in out
    assert "alarms: 0" in out
    assert "distributed blocked: True" in out
    assert "alarm location identical: True" in out
    # the two deployments printed the same guest PC
    import re
    pcs = re.findall(r"guest pc .*:\s+(0x[0-9a-f]+)", out)
    assert len(pcs) == 2 and pcs[0] == pcs[1]
    assert "cluster replay bit-identical: True" in out
