"""Tests for the error hierarchy and divergence-report surfaces."""

import pytest

from repro.core.divergence import (
    AlarmLog,
    CallRecord,
    DivergenceKind,
    DivergenceReport,
)
from repro.errors import (
    AlignmentFault,
    ExecuteFault,
    MachineFault,
    MvxDivergence,
    MvxError,
    ProtectionKeyFault,
    ReproError,
    SegmentationFault,
)


def test_fault_hierarchy():
    assert issubclass(SegmentationFault, MachineFault)
    assert issubclass(ProtectionKeyFault, SegmentationFault)
    assert issubclass(ExecuteFault, SegmentationFault)
    assert issubclass(AlignmentFault, MachineFault)
    assert issubclass(MachineFault, ReproError)
    assert issubclass(MvxDivergence, MvxError)


def test_fault_carries_address():
    fault = SegmentationFault("boom", 0xDEAD0000)
    assert fault.address == 0xDEAD0000
    assert "boom" in str(fault)


def test_pkey_fault_is_catchable_as_segfault():
    try:
        raise ProtectionKeyFault("pkey denied", 0x1000)
    except SegmentationFault as caught:
        assert caught.address == 0x1000


def test_divergence_report_str():
    report = DivergenceReport(DivergenceKind.ARGUMENT, 3, "read",
                              "scalar args differ")
    text = str(report)
    assert "scalar argument mismatch" in text
    assert "call=read" in text
    assert "seq=3" in text
    assert "scalar args differ" in text


def test_mvx_divergence_wraps_report():
    report = DivergenceReport(DivergenceKind.FOLLOWER_FAULT, detail="x")
    exc = MvxDivergence(report)
    assert exc.report is report
    assert "follower variant faulted" in str(exc)


def test_alarm_log():
    log = AlarmLog()
    assert not log.triggered
    log.raise_alarm(DivergenceReport(DivergenceKind.RETVAL))
    assert log.triggered and len(log.alarms) == 1
    log.clear()
    assert not log.triggered


def test_call_record_scalar_extraction():
    record = CallRecord(1, "recv", (3, 0xAAAA, 64, 0), "leader")
    assert record.scalar_args((1,)) == (3, 64, 0)
    assert record.scalar_args(()) == (3, 0xAAAA, 64, 0)
    assert record.scalar_args((0, 1, 2, 3)) == ()
