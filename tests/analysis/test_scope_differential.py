"""The soundness gate: dynamic-tainted-functions ⊆ static-selected-set.

Every function the dynamic taint engine observes touching tainted bytes
must be contained in the static scope analysis's selected set — over all
three bundled workloads, the CVE-2013-2028 exploit, two fault schedules,
and a ``repro.sim`` matrix slice.  This is the empirical check on the
static model's soundness direction (its known gaps — post-return and
arithmetic laundering — must not bite on any covered workload)."""

import pytest

from repro.analysis.differential import (
    run_littled_differential,
    run_minx_differential,
    run_nbench_differential,
    run_sim_slice,
)
from repro.analysis.scope import compute_scope
from repro.apps.minx import MinxServer, build_minx_image
from repro.attacks import run_exploit
from repro.kernel import Kernel
from repro.kernel.faults import FaultSchedule

#: two stress schedules: syscall-level flakiness vs delivery segmentation
SCHEDULES = [
    FaultSchedule(name="flaky", eintr_p=0.25, eagain_p=0.15,
                  short_read_p=0.4, short_read_cap=7),
    FaultSchedule(name="segmented", segment_bytes=5,
                  segment_extra_delay_ns=1500, short_write_p=0.3,
                  short_write_cap=9),
]


def test_minx_differential_sound():
    result = run_minx_differential(requests=5)
    assert result.sound, result.format()
    # the engine really observed the request path (non-vacuous gate)
    assert "minx_http_process_request_line" in result.dynamic_functions
    assert result.dynamic_functions <= result.static_selected


def test_littled_differential_sound():
    result = run_littled_differential(requests=5)
    assert result.sound, result.format()
    assert "littled_http_request_parse" in result.dynamic_functions


def test_nbench_differential_empty_both_sides():
    result = run_nbench_differential(workloads=(0, 8))
    assert result.sound
    assert result.dynamic_functions == frozenset()
    assert result.static_selected == frozenset()


@pytest.mark.parametrize("schedule", SCHEDULES,
                         ids=lambda sched: sched.name)
def test_minx_differential_sound_under_faults(schedule):
    result = run_minx_differential(seed=f"diff/minx-{schedule.name}",
                                   requests=4, schedule=schedule)
    assert result.sound, result.format()
    assert result.dynamic_functions


@pytest.mark.parametrize("schedule", SCHEDULES,
                         ids=lambda sched: sched.name)
def test_littled_differential_sound_under_faults(schedule):
    result = run_littled_differential(
        seed=f"diff/littled-{schedule.name}", requests=4,
        schedule=schedule)
    assert result.sound, result.format()
    assert result.dynamic_functions


@pytest.mark.parametrize("schedule", [None] + SCHEDULES,
                         ids=["clean", "flaky", "segmented"])
def test_cve_exploit_differential_sound(schedule):
    """The exploit's tainted chunk-size flow is observed dynamically in
    the parser and the whole vulnerable path is statically selected."""
    result = run_minx_differential(seed="diff/cve", requests=2,
                                   schedule=schedule, exploit=True)
    assert result.sound, result.format()
    assert "minx_http_parse_chunked" in result.dynamic_functions
    # the vulnerable recv caller is a static source, hence selected
    assert "minx_http_read_discarded_request_body" \
        in result.static_selected


def test_sim_slice_differential_sound():
    results = run_sim_slice(master_seed="diff-swarm", count=10)
    assert results                     # the slice must cover something
    for result in results:
        assert result.sound, result.format()


def test_sites_ordered_by_first_seen_virtual_time():
    result = run_minx_differential(requests=3)
    times = [site.first_seen_ns for site in result.sites]
    assert times == sorted(times)
    assert all(site.entry is not None for site in result.sites)
    assert all(site.statically_selected for site in result.sites)


def test_auto_scope_boot_still_raises_cve_alarm():
    """End-to-end acceptance: the *derived* protected set detects and
    blocks the exploit exactly like the hand-picked one."""
    from repro.attacks.cve_2013_2028 import VICTIM_DIRECTORY
    kernel = Kernel()
    server = MinxServer(kernel, smvx=True, auto_scope=True)
    server.start()
    assert server.process.app_config["protect"] \
        == "minx_http_wait_request_handler"
    outcome = run_exploit(server)
    assert outcome.attack_detected_and_blocked
    assert outcome.divergence_detected
    assert not kernel.vfs.is_dir(VICTIM_DIRECTORY)
    # and the alarm-raising path is exactly what the static set predicted
    scope = compute_scope(build_minx_image())
    assert "minx_http_read_discarded_request_body" in scope.selected
    assert "minx_http_parse_chunked" in scope.selected


def test_auto_scope_boot_serves_littled():
    from repro.apps.littled import LittledServer
    from repro.workloads import ApacheBench
    kernel = Kernel(seed="diff/littled-auto")
    server = LittledServer(kernel, smvx=True, auto_scope=True)
    server.start()
    assert server.process.app_config["protect"] == "server_main_loop"
    result = ApacheBench(kernel, server).run(3)
    assert result.status_counts == {200: 3}
    assert server.monitor.stats.regions_entered > 0
