"""Gadget classification + alias analysis across every bundled app
(satellite coverage for analysis/gadgets.py and analysis/alias.py)."""

import pytest

from repro.analysis.alias import analyze_image_pointers
from repro.analysis.gadgets import (
    classify_gadget,
    find_gadgets,
    gadget_census,
)
from repro.kernel import Kernel
from repro.loader import ImageBuilder
from repro.machine import Assembler


def build_app_image(app):
    if app == "minx":
        from repro.apps.minx import build_minx_image
        return build_minx_image()
    if app == "littled":
        from repro.apps.littled import build_littled_image
        return build_littled_image()
    from repro.apps.nbench.workloads import build_nbench_image
    return build_nbench_image()


def boot_app(app):
    from repro.analysis.__main__ import _boot
    return _boot(app)


APPS = ("minx", "littled", "nbench")


# -- gadget classification ------------------------------------------------------

def test_classify_known_shapes():
    a = Assembler()
    a.pop_r("rdi")
    a.ret()
    a.add_ri("rax", 8)
    a.ret()
    a.mov_rr("rax", "rbx")
    a.ret()
    a.ret()
    builder = ImageBuilder("shapes")
    builder.add_isa_function("pool", a)
    kernel = Kernel()
    from repro.process import GuestProcess
    process = GuestProcess(kernel, "shapes")
    loaded = process.load_image(builder.build())
    region = (loaded.base, loaded.base + loaded.image.load_size)
    gadgets = find_gadgets(process.space, max_len=2, region=region)
    kinds = {classify_gadget(g) for g in gadgets}
    assert {"ret", "pop-rdi-ret", "arith-ret", "mov-ret"} <= kinds
    census = gadget_census(gadgets)
    assert census["pop-rdi-ret"] == 1
    assert sum(census.values()) == len(gadgets)


@pytest.mark.parametrize("app", APPS)
def test_app_text_gadget_census(app):
    process, loaded = boot_app(app)
    start, size = loaded.section_range(".text")
    gadgets = find_gadgets(process.space, max_len=3,
                           region=(start, start + size))
    census = gadget_census(gadgets)
    # every app has RET-terminated functions, hence bare-ret gadgets
    assert census.get("ret", 0) >= 1
    assert sum(census.values()) == len(gadgets)
    assert all(isinstance(k, str) and v > 0 for k, v in census.items())


def test_minx_exposes_the_exploit_gadgets():
    """The CVE chain needs pop-rdi-ret and pop-rsi-ret in app text."""
    process, loaded = boot_app("minx")
    start, size = loaded.section_range(".text")
    census = gadget_census(find_gadgets(process.space, max_len=2,
                                        region=(start, start + size)))
    assert census.get("pop-rdi-ret", 0) >= 1
    assert census.get("pop-rsi-ret", 0) >= 1


# -- alias analysis across apps -------------------------------------------------

@pytest.mark.parametrize("app", APPS)
def test_alias_analysis_runs_on_every_app(app):
    image = build_app_image(app)
    analysis = analyze_image_pointers(image)
    # every relocated pointer slot must be inside .data
    data_size = len(image.sections[".data"])
    for offset in analysis.data_pointer_offsets:
        assert 0 <= offset < data_size
    assert analysis.narrowed_slot_count == len(analysis.data_pointer_offsets)


def test_nbench_workload_table_slots_are_narrowed():
    """nbench's static workload function-pointer table is exactly the
    link-time pointer set the relocator must patch."""
    from repro.apps.nbench.workloads import NBENCH_WORKLOADS
    image = build_app_image("nbench")
    analysis = analyze_image_pointers(image)
    table = image.symbol("nb_workload_table")
    table_slots = {table.offset + 8 * i
                   for i in range(len(NBENCH_WORKLOADS))}
    assert table_slots <= set(analysis.data_pointer_offsets)
