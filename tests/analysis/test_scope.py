"""Unit tests for the automatic selected-code-path derivation
(`repro.analysis.scope`) and the pointer-table indirect-call resolution
feeding it (`repro.analysis.alias` → `repro.analysis.callgraph`)."""

import pytest

from repro.analysis.alias import analyze_image_pointers
from repro.analysis.callgraph import INDIRECT, build_callgraph
from repro.analysis.findings import VerifyReport
from repro.analysis.scope import (
    NETWORK_INPUT_LIBC,
    TaintClass,
    compute_scope,
)
from repro.analysis.verify import check_scope_selection, verify_image
from repro.apps.littled import build_littled_image
from repro.apps.minx import build_minx_image
from repro.apps.nbench.workloads import build_nbench_image
from repro.errors import MvxSetupError
from repro.loader.image import ImageBuilder
from repro.machine.asm import Assembler


def _noop(ctx):
    return 0


# ---------------------------------------------------------------------------
# alias: pointer tables and indirect-site resolution
# ---------------------------------------------------------------------------

def test_bundled_pointer_tables_collected():
    alias = analyze_image_pointers(build_minx_image())
    table = alias.pointer_tables["minx_phase_handlers"]
    assert table.targets == (
        "minx_http_process_request_line",
        "minx_http_process_request_headers",
        "minx_http_handler",
        "minx_http_header_filter",
        "minx_http_log_access")
    assert table.all_functions
    assert table.target_at(16) == "minx_http_handler"
    assert table.target_at(17) is None          # unaligned
    assert "minx_http_handler" in alias.address_taken


def _table_dispatch_image(indexed: bool):
    """An ISA dispatcher calling through a static pointer table: either
    a fixed slot (exactly one possible target) or a runtime index
    (resolves to the whole table)."""
    builder = ImageBuilder("table_dispatch")
    builder.add_hl_function("op_a", _noop, 0)
    builder.add_hl_function("op_b", _noop, 0)
    asm = Assembler()
    asm.lea("rbx", "handlers")
    if indexed:
        asm.shl_ri("rdi", 3)        # runtime index -> byte offset
        asm.add_rr("rbx", "rdi")
        asm.load("rax", "rbx")
    else:
        asm.load("rax", "rbx", 8)   # second slot, statically known
    asm.call_r("rax")
    asm.ret()
    builder.add_isa_function("dispatch", asm)
    builder.add_hl_function("app_main", _noop, 1, calls=("dispatch",))
    builder.add_pointer_table("handlers", ("op_a", "op_b"))
    return builder.build()


def test_fixed_slot_indirect_call_resolves_to_one_target():
    image = _table_dispatch_image(indexed=False)
    alias = analyze_image_pointers(image)
    assert list(alias.indirect_targets["dispatch"].values()) == [("op_b",)]
    graph = build_callgraph(image, alias)
    assert graph.callees("dispatch") == {"op_b"}
    assert INDIRECT not in graph.callees("dispatch")


def test_runtime_indexed_call_resolves_to_whole_table():
    image = _table_dispatch_image(indexed=True)
    graph = build_callgraph(image)
    assert graph.callees("dispatch") == {"op_a", "op_b"}


def test_resolved_indirect_site_upgrades_icov_warning():
    """A table-resolved dispatcher no longer trips the conservative
    ICOV002 warning (the bare-register case in test_verify.py still
    does)."""
    image = _table_dispatch_image(indexed=True)
    report = verify_image(image, roots=("app_main",))
    assert not report.by_code("ICOV002")
    assert build_callgraph(image).indirect_sites("app_main") == set()


def test_unresolvable_register_call_stays_conservative():
    builder = ImageBuilder("bare_dispatch")
    asm = Assembler()
    asm.load("rax", "rdi")          # pointer from caller: no table fact
    asm.call_r("rax")
    asm.ret()
    builder.add_isa_function("dispatch", asm)
    builder.add_hl_function("app_main", _noop, 0, calls=("dispatch",))
    image = builder.build()
    graph = build_callgraph(image)
    assert INDIRECT in graph.callees("dispatch")
    assert graph.indirect_sites("app_main") == {"dispatch"}


# ---------------------------------------------------------------------------
# scope: bundled-image classification
# ---------------------------------------------------------------------------

MINX_EXPECTED_SELECTED = {
    "minx_http_wait_request_handler", "minx_http_process_request_line",
    "minx_http_process_request_headers", "minx_http_handler",
    "minx_http_auth_basic", "minx_http_admin_page",
    "minx_http_static_handler", "minx_http_not_modified",
    "minx_http_header_filter", "minx_http_special_response",
    "minx_http_finalize_request", "minx_http_log_access",
    "minx_http_close_connection", "minx_http_parse_chunked",
    "minx_http_read_discarded_request_body",
}


def test_minx_scope_selection():
    scope = compute_scope(build_minx_image())
    assert scope.selected == MINX_EXPECTED_SELECTED
    assert set(scope.sources) == {
        ("minx_http_wait_request_handler", "recv"),
        ("minx_http_read_discarded_request_body", "recv")}
    assert scope.derived_root == "minx_http_wait_request_handler"
    # the event loop may observe tainted returns: unknown, not clean
    assert scope.classification("minx_process_events_and_timers") \
        is TaintClass.UNKNOWN
    assert scope.classification("minx_pump") is TaintClass.UNKNOWN
    # accept/boot/counter helpers are provably outside every flow
    for name in ("minx_main", "minx_event_accept", "minx_served_count",
                 "minx_ctx_restore"):
        assert scope.classification(name) is TaintClass.CLEAN, name


def test_minx_evidence_paths_start_at_a_source():
    scope = compute_scope(build_minx_image())
    for name in scope.selected:
        evidence = scope.functions[name].evidence
        assert evidence[0] in {f"{n}@plt" for n in NETWORK_INPUT_LIBC}
        assert evidence[-1] == name


def test_littled_scope_selection():
    scope = compute_scope(build_littled_image())
    assert scope.derived_root == "server_main_loop"
    assert len(scope.selected) == 8
    assert "littled_connection_handle" in scope.selected
    assert "littled_http_request_parse" in scope.selected
    assert scope.classification("littled_connection_accept") \
        is TaintClass.CLEAN
    assert scope.classification("server_main_loop") is TaintClass.UNKNOWN


def test_nbench_scope_empty():
    scope = compute_scope(build_nbench_image())
    assert scope.selected == frozenset()
    assert scope.derived_root is None
    assert not scope.sources
    assert all(fs.classification is TaintClass.CLEAN
               for fs in scope.functions.values())


def test_scope_report_serializes():
    scope = compute_scope(build_minx_image())
    payload = scope.to_dict()
    assert payload["derived_root"] == "minx_http_wait_request_handler"
    assert set(payload["selected"]) == MINX_EXPECTED_SELECTED
    assert "minx_http_wait_request_handler" in scope.to_json()
    assert "TAINTED" in scope.format()


# ---------------------------------------------------------------------------
# scope: ISA dataflow (slots, purity, conservative widening)
# ---------------------------------------------------------------------------

def test_tainted_slot_flows_between_functions():
    """A tainted ISA writer stores to a statically known .data slot; a
    function with no call-graph connection loads that slot and must be
    selected too (the memory leg of the interprocedural fixpoint)."""
    builder = ImageBuilder("slot_flow")
    builder.import_libc("recv")
    builder.add_data("shared_state", b"\x00" * 16)

    writer = Assembler()
    writer.load("rax", "rdi")       # tainted in a tainted activation
    writer.lea("rbx", "shared_state")
    writer.store("rbx", "rax")
    writer.ret()
    builder.add_isa_function("stash", writer)

    reader = Assembler()
    reader.lea("rbx", "shared_state")
    reader.load("rax", "rbx")
    reader.ret()
    builder.add_isa_function("poll_state", reader)

    builder.add_hl_function("net_read", _noop, 1,
                            calls=("recv", "stash"))
    builder.add_hl_function("app_main", _noop, 0,
                            calls=("net_read", "poll_state"))
    scope = compute_scope(builder.build())
    assert "stash" in scope.selected
    assert "poll_state" in scope.selected
    assert scope.tainted_slots
    evidence = scope.functions["poll_state"].evidence
    assert any(step.startswith("slot@") for step in evidence)


def test_pure_register_callee_proven_clean():
    """A callee that computes purely in registers cannot observe tainted
    bytes even when called from tainted code: the refinement keeps it
    out of the selection."""
    builder = ImageBuilder("pure_callee")
    builder.import_libc("recv")
    pure = Assembler()
    pure.mov_ri("rax", 40)
    pure.add_ri("rax", 2)
    pure.ret()
    builder.add_isa_function("const42", pure)
    builder.add_hl_function("net_read", _noop, 1,
                            calls=("recv", "const42"))
    scope = compute_scope(builder.build())
    assert "net_read" in scope.selected
    assert scope.classification("const42") is TaintClass.CLEAN


def test_unresolved_indirect_in_tainted_code_widens():
    builder = ImageBuilder("widen")
    builder.import_libc("recv")
    builder.add_hl_function("plugin", _noop, 0)
    dispatch = Assembler()
    dispatch.load("rax", "rdi")
    dispatch.call_r("rax")
    dispatch.ret()
    builder.add_isa_function("dispatch", dispatch)
    builder.add_hl_function("net_read", _noop, 1,
                            calls=("recv", "dispatch"))
    builder.add_pointer_table("handlers", ("plugin",))
    scope = compute_scope(builder.build())
    assert "dispatch" in scope.selected
    assert "plugin" in scope.selected            # conservatively widened
    assert scope.conservative_sites
    assert scope.conservative_sites[0][0] == "dispatch"


# ---------------------------------------------------------------------------
# SCOPE00x verifier family
# ---------------------------------------------------------------------------

def test_scope_lint_flags_under_selection():
    report = verify_image(build_minx_image(),
                          roots=("minx_http_process_request_line",),
                          scope=True)
    flagged = {f.symbol for f in report.by_code("SCOPE001")}
    # the request-line subtree misses the socket-reading entry function
    # and the finalize/log/close tail of the tainted request lifecycle
    assert flagged == {"minx_http_wait_request_handler",
                       "minx_http_finalize_request",
                       "minx_http_log_access",
                       "minx_http_close_connection"}
    assert report.ok                             # warnings, not errors


def test_scope_lint_flags_wasted_overhead():
    """Protecting the whole event loop replicates provably clean
    functions (SCOPE002) while missing nothing reachable from it."""
    report = verify_image(build_minx_image(),
                          roots=("minx_process_events_and_timers",),
                          scope=True)
    wasted = {f.symbol for f in report.by_code("SCOPE002")}
    assert wasted == {"minx_event_accept"}


def test_scope_lint_clean_when_root_matches_derivation():
    scope = compute_scope(build_minx_image())
    report = VerifyReport(target="minx")
    check_scope_selection(build_minx_image(), (scope.derived_root,),
                          report, scope_report=scope)
    assert not report.by_code("SCOPE001")


def test_scope_lint_off_by_default():
    report = verify_image(build_minx_image(),
                          roots=("minx_http_process_request_line",))
    assert not report.by_code("SCOPE001")
    assert not report.by_code("SCOPE002")


# ---------------------------------------------------------------------------
# auto-scope bring-up
# ---------------------------------------------------------------------------

def test_attach_smvx_auto_scope_minx():
    from repro.apps.minx import MinxServer
    from repro.kernel import Kernel
    server = MinxServer(Kernel(), smvx=True, auto_scope=True)
    assert server.process.app_config["protect"] \
        == "minx_http_wait_request_handler"
    assert server.monitor.scope_report is not None
    assert server.monitor.scope_report.derived_root \
        == "minx_http_wait_request_handler"


def test_attach_smvx_auto_scope_overrides_hand_picked():
    from repro.apps.minx import MinxServer
    from repro.kernel import Kernel
    server = MinxServer(Kernel(), protect="minx_http_log_access",
                        smvx=True, auto_scope=True)
    assert server.process.app_config["protect"] \
        == "minx_http_wait_request_handler"


def test_attach_smvx_auto_scope_fails_closed_without_annotation():
    """Tainted code but no mvx_start region covering it: refuse to boot
    rather than silently serve unprotected."""
    from repro.core import attach_smvx, build_smvx_stub_image
    from repro.kernel import Kernel
    from repro.libc import build_libc_image
    from repro.process import GuestProcess

    builder = ImageBuilder("unannotated")
    builder.import_libc("recv")
    builder.add_hl_function("net_read", _noop, 1, calls=("recv",))
    builder.add_hl_function("app_main", _noop, 0, calls=("net_read",))
    image = builder.build()
    assert compute_scope(image).derived_root is None

    process = GuestProcess(Kernel(), "unannotated", heap_pages=16)
    process.load_image(build_libc_image(), tag="libc")
    process.load_image(build_smvx_stub_image(), tag="libsmvx")
    loaded = process.load_image(image, main=True)
    with pytest.raises(MvxSetupError, match="auto_scope"):
        attach_smvx(process, loaded, auto_scope=True)


def test_attach_smvx_auto_scope_nbench_selects_nothing():
    """Compute-only workload: the derived selection is empty, protect
    stays None, and the app runs unreplicated (the correct choice)."""
    from repro.apps.nbench import (
        build_nbench_image,
        provision_nbench_files,
    )
    from repro.core import attach_smvx, build_smvx_stub_image
    from repro.kernel import Kernel
    from repro.libc import build_libc_image
    from repro.process import GuestProcess
    from repro.process.context import to_signed

    kernel = Kernel()
    provision_nbench_files(kernel.vfs)
    process = GuestProcess(kernel, "nbench", heap_pages=128)
    process.load_image(build_libc_image(), tag="libc")
    process.load_image(build_smvx_stub_image(), tag="libsmvx")
    loaded = process.load_image(build_nbench_image(), main=True)
    process.app_config = {"protect": "nb_numeric_sort"}
    monitor = attach_smvx(process, loaded, auto_scope=True)
    assert process.app_config["protect"] is None
    assert monitor.scope_report.selected == frozenset()
    assert to_signed(process.call_function("nb_main", 0)) != 0
    assert monitor.stats.regions_entered == 0
