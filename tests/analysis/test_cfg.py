"""Tests for per-function CFG recovery (repro.analysis.cfg)."""

import pytest

from repro.analysis.cfg import (
    FunctionCFG,
    function_cfg,
    image_cfgs,
    recover_cfg,
    symbol_resolver,
)
from repro.loader import ImageBuilder
from repro.machine import Assembler
from repro.machine.isa import INSTR_SIZE, Instruction, Op


def asm_bytes(build):
    a = Assembler()
    build(a)
    return a.assemble(0)


def test_straight_line_is_one_block():
    code = asm_bytes(lambda a: (a.mov_ri("rax", 1), a.add_ri("rax", 2),
                                a.ret()))
    cfg = recover_cfg(code, base=0, name="f")
    assert len(cfg.blocks) == 1
    block = cfg.blocks[0]
    assert [i.op for _, i in block.instructions] == \
        [Op.MOV_RI, Op.ADD_RI, Op.RET]
    assert block.successors == ()
    assert cfg.instruction_count == 3


def test_conditional_branch_splits_blocks_and_wires_edges():
    def build(a):
        a.cmp_ri("rdi", 0)          # 0x00
        a.je("done")                # 0x10 -> taken target + fallthrough
        a.mov_ri("rax", 1)          # 0x20
        a.label("done")
        a.ret()                     # 0x30
    cfg = recover_cfg(asm_bytes(build), base=0, name="f")
    assert set(cfg.blocks) == {0x00, 0x20, 0x30}
    entry = cfg.blocks[0x00]
    assert set(entry.successors) == {0x20, 0x30}
    assert cfg.blocks[0x20].successors == (0x30,)
    assert cfg.reachable_blocks() == {0x00, 0x20, 0x30}


def test_backward_jump_makes_loop_edge():
    def build(a):
        a.mov_ri("rcx", 4)          # 0x00
        a.label("loop")
        a.sub_ri("rcx", 1)          # 0x10
        a.cmp_ri("rcx", 0)          # 0x20
        a.jne("loop")               # 0x30 -> back edge
        a.ret()                     # 0x40
    cfg = recover_cfg(asm_bytes(build), base=0, name="f")
    loop_head = cfg.blocks[0x10]
    branch_block = cfg.block_at(0x30)
    assert 0x10 in branch_block.successors
    assert 0x40 in branch_block.successors
    assert loop_head.start == 0x10


def test_call_records_site_and_falls_through():
    builder = ImageBuilder("cfgapp")
    helper = Assembler()
    helper.ret()
    builder.add_isa_function("helper", helper)
    caller = Assembler()
    caller.call("helper")
    caller.ret()
    builder.add_isa_function("caller", caller)
    image = builder.build()
    cfg = function_cfg(image, image.symbol("caller"))
    assert len(cfg.call_sites) == 1
    site, target = cfg.call_sites[0]
    assert target == image.symbol("helper").offset
    # the call is a block terminator with a fall-through successor
    assert cfg.block_at(site).successors == (site + INSTR_SIZE,)


def test_indirect_sites_marked_not_dropped():
    def build(a):
        a.call_r("rax")             # 0x00
        a.jmp_r("rbx")              # 0x10
    cfg = recover_cfg(asm_bytes(build), base=0, name="f")
    assert cfg.indirect_sites == [0x00, 0x10]
    assert cfg.block_at(0x00).has_indirect_successor
    # register jump has no statically known successors
    assert cfg.block_at(0x10).successors == ()
    # the register call still gets an (unknown-target) call site
    assert (0x00, None) in cfg.call_sites


def test_escaping_jump_recorded():
    def build(a):
        a.jmp(0x100)                # far outside this 1-instruction body
    cfg = recover_cfg(asm_bytes(build), base=0, name="f")
    assert len(cfg.escapes) == 1
    site, target = cfg.escapes[0]
    # numeric immediates of RIP-relative ops are absolute targets
    assert site == 0 and target == 0x100


def test_invalid_slots_reported_and_decoding_resumes():
    good = asm_bytes(lambda a: (a.mov_ri("rax", 1),))
    junk = b"\xff" * INSTR_SIZE
    tail = asm_bytes(lambda a: (a.ret(),))
    cfg = recover_cfg(good + junk + tail, base=0, name="f")
    assert cfg.invalid_slots == [INSTR_SIZE]
    # the slot after the hole starts a fresh block
    assert 2 * INSTR_SIZE in cfg.blocks
    assert cfg.instruction_count == 2


def test_trailing_partial_slot_ignored():
    code = asm_bytes(lambda a: (a.ret(),)) + b"\x00" * 5
    cfg = recover_cfg(code, base=0, name="f")
    assert cfg.invalid_slots == []
    assert cfg.instruction_count == 1


def test_image_cfgs_cover_every_text_function():
    from repro.apps.minx import build_minx_image
    image = build_minx_image()
    cfgs = image_cfgs(image)
    text_funcs = {s.name for s in image.function_symbols()
                  if s.section == ".text"}
    assert set(cfgs) == text_funcs
    for cfg in cfgs.values():
        assert isinstance(cfg, FunctionCFG)
        assert cfg.entry in cfg.blocks or cfg.instruction_count == 0


def test_symbol_resolver_maps_text_and_plt():
    from repro.apps.minx import build_minx_image
    image = build_minx_image()
    resolve = symbol_resolver(image)
    sym = image.symbol("minx_http_process_request_line")
    assert resolve(sym.offset) == "minx_http_process_request_line"
    assert resolve(sym.offset + sym.size - INSTR_SIZE) == sym.name
    # a PLT entry resolves through the layout displacement
    layout = {name: (off, size) for name, off, size
              in image.section_layout()}
    plt_sym = image.symbol(f"{image.plt_imports[0]}@plt")
    plt_offset = (layout[".plt"][0] - layout[".text"][0]) + plt_sym.offset
    assert resolve(plt_offset) == plt_sym.name
    assert resolve(10**9) is None
