"""Tests for the static verifier driver (repro.analysis.verify) and its
bring-up wiring (strict mode, GOT sealing, corpus)."""

import json

import pytest

from repro.analysis.corpus import CORPUS, run_corpus
from repro.analysis.findings import Severity, VerifyReport
from repro.analysis.verify import (
    audit_live_space,
    explain_alarm,
    verify_image,
    verify_process,
)
from repro.core.divergence import DivergenceKind, DivergenceReport
from repro.errors import ImageError, MvxSetupError, SegmentationFault
from repro.kernel import Kernel
from repro.loader import ImageBuilder
from repro.machine import Assembler
from repro.machine.memory import PROT_READ, PROT_WRITE


@pytest.fixture
def kernel():
    return Kernel()


def minx_server(kernel, **kw):
    from repro.apps.minx import MinxServer
    return MinxServer(kernel, protect="minx_http_process_request_line",
                      smvx=True, **kw)


# -- offline image verification ------------------------------------------------

@pytest.mark.parametrize("app,root", [
    ("minx", "minx_http_process_request_line"),
    ("littled", "server_main_loop"),
])
def test_bundled_apps_verify_clean(app, root):
    if app == "minx":
        from repro.apps.minx import build_minx_image as build
    else:
        from repro.apps.littled import build_littled_image as build
    report = verify_image(build(), roots=(root,))
    assert report.ok
    assert report.warnings == []
    assert {"cfg-recovery", "pkru-placement", "interception-coverage",
            "divergence-surface"} <= set(report.checks)


def test_nbench_workloads_verify_clean():
    from repro.apps.nbench.workloads import (
        NBENCH_WORKLOADS,
        build_nbench_image,
    )
    roots = tuple(spec.func for spec in NBENCH_WORKLOADS)
    report = verify_image(build_nbench_image(), roots=roots)
    assert report.ok and report.warnings == []


def test_divergence_surface_records_neutralized_sources():
    from repro.apps.minx import build_minx_image
    report = verify_image(build_minx_image(),
                          roots=("minx_http_process_request_line",))
    names = {entry["name"] for entry in report.divergence_surface}
    # minx's request path timestamps responses: wall-clock sources are
    # present but neutralized (RETVAL_AND_BUFFER), so no findings
    assert "gettimeofday" in names
    assert report.by_code("DIV001") == []


def test_unintercepted_divergence_source_is_error():
    builder = ImageBuilder("divapp")
    builder.import_libc("time")
    builder.add_hl_function("root", lambda ctx: 0, 0, calls=("time",))
    report = verify_image(builder.build(), roots=("root",),
                          intercepted=set())
    assert not report.ok
    assert {f.code for f in report.errors} >= {"ICOV001", "DIV001"}


def test_unknown_root_reported_not_raised():
    builder = ImageBuilder("rootless")
    builder.add_hl_function("main", lambda ctx: 0, 0)
    report = verify_image(builder.build(), roots=("ghost",))
    assert report.by_code("VER001")
    assert not report.ok


def test_indirect_branch_in_subtree_warns():
    builder = ImageBuilder("indirect")
    isa = Assembler()
    isa.call_r("rax")
    isa.ret()
    builder.add_isa_function("dispatch", isa)
    builder.add_hl_function("main", lambda ctx: 0, 0, calls=("dispatch",))
    report = verify_image(builder.build(), roots=("main",))
    warning = report.by_code("ICOV002")
    assert warning and warning[0].severity is Severity.WARNING
    assert "dispatch" in warning[0].message


def test_report_json_round_trips():
    from repro.apps.minx import build_minx_image
    report = verify_image(build_minx_image(),
                          roots=("minx_http_process_request_line",))
    payload = json.loads(report.to_json())
    assert payload["ok"] is True
    assert payload["target"] == "minx"
    assert isinstance(payload["findings"], list)
    assert payload["divergence_surface"]


# -- live-space audit ----------------------------------------------------------

def test_live_audit_clean_on_protected_minx(kernel):
    server = minx_server(kernel)
    report = verify_process(server.process, server.monitor,
                            roots=("minx_http_process_request_line",))
    assert report.ok, report.format()
    assert {"wx-audit", "gate-dataflow", "monitor-keying",
            "got-audit"} <= set(report.checks)


def test_live_audit_without_monitor_still_checks_wx(kernel):
    from repro.apps.minx import MinxServer
    server = MinxServer(kernel)
    report = audit_live_space(server.process)
    assert report.ok
    assert "wx-audit" in report.checks
    assert "got-audit" not in report.checks


# -- GOT sealing (monitor bring-up hardening) ----------------------------------

def test_got_sealed_after_attach(kernel):
    server = minx_server(kernel)
    start, size = server.monitor.target.section_range(".got.plt")
    page = server.process.space.page_at(start)
    assert page.prot & PROT_READ
    assert not page.prot & PROT_WRITE


def test_guest_write_to_sealed_got_faults(kernel):
    server = minx_server(kernel)
    slot = server.monitor.target.got_slot_address("recv")
    with pytest.raises(SegmentationFault):
        server.process.space.write_word(slot, 0x41414141)


def test_sealed_got_still_serves_requests(kernel):
    from repro.workloads import ApacheBench
    server = minx_server(kernel)
    server.start()
    result = ApacheBench(kernel, server).run(2)
    assert result.status_counts == {200: 2}


# -- strict mode ---------------------------------------------------------------

def test_strict_verify_attach_succeeds_on_clean_deployment(kernel):
    server = minx_server(kernel, strict_verify=True)
    assert server.monitor is not None
    assert server.monitor.strict_verify


def test_strict_verify_cve_exploit_still_detected(kernel):
    from repro.attacks import run_exploit
    server = minx_server(kernel, strict_verify=True)
    server.start()
    outcome = run_exploit(server)
    assert outcome.attack_detected_and_blocked
    assert not outcome.directory_created


def test_loader_verify_rejects_stray_wrpkru_image(kernel):
    from repro.analysis.corpus import _stray_wrpkru_image
    from repro.process import GuestProcess
    process = GuestProcess(kernel, "strict")
    with pytest.raises(ImageError, match="PKRU001"):
        process.loader.load(_stray_wrpkru_image(), verify=True)


def test_loader_verify_accepts_clean_image(kernel):
    from repro.apps.minx import build_minx_image
    from repro.libc import build_libc_image
    from repro.process import GuestProcess
    process = GuestProcess(kernel, "ok")
    process.load_image(build_libc_image(), tag="libc")
    from repro.core import build_smvx_stub_image
    process.load_image(build_smvx_stub_image(), tag="libsmvx")
    loaded = process.loader.load(build_minx_image(), verify=True)
    assert loaded.base > 0


# -- seeded broken corpus ------------------------------------------------------

def test_corpus_catches_every_seeded_violation():
    results = run_corpus()
    assert len(results) == len(CORPUS) >= 6
    missed = [r.name for r in results if not r.caught]
    assert missed == [], f"verifier missed: {missed}"


def test_corpus_cases_fail_their_reports():
    for result in run_corpus():
        assert result.report.findings, result.name
        if result.report.errors:
            assert not result.report.ok, result.name
        else:
            # warning-only corpus cases (the SCOPE family) keep ok=True
            # by design but must still trip a strict-warnings gate
            assert result.report.warnings, result.name


# -- alarm cross-check ---------------------------------------------------------

def test_explain_alarm_matches_neutralized_surface():
    from repro.apps.minx import build_minx_image
    report = verify_image(build_minx_image(),
                          roots=("minx_http_process_request_line",))
    alarm = DivergenceReport(DivergenceKind.RETVAL, seq=3,
                             libc_name="gettimeofday")
    explained = explain_alarm(alarm, report)
    assert explained is not None and explained["predicted"]
    assert explained["surface"]["name"] == "gettimeofday"


def test_explain_alarm_matches_lint_finding():
    builder = ImageBuilder("divapp2")
    builder.import_libc("getpid")
    builder.add_hl_function("root", lambda ctx: 0, 0, calls=("getpid",))
    report = verify_image(builder.build(), roots=("root",),
                          intercepted=set())
    alarm = DivergenceReport(DivergenceKind.RETVAL, libc_name="getpid")
    explained = explain_alarm(alarm, report)
    assert explained is not None
    assert explained["finding"]["code"] == "DIV001"


def test_explain_alarm_genuine_divergence_unexplained():
    from repro.apps.minx import build_minx_image
    report = verify_image(build_minx_image(),
                          roots=("minx_http_process_request_line",))
    # a follower fault (the CVE signature) is not a benign source
    alarm = DivergenceReport(DivergenceKind.FOLLOWER_FAULT)
    assert explain_alarm(alarm, report) is None
    scalar = DivergenceReport(DivergenceKind.ARGUMENT, libc_name="recv")
    assert explain_alarm(scalar, report) is None
