"""Tests for the analysis CLIs: ``python -m repro.analysis`` and
``python -m repro.analysis.verify``."""

import json

import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.verify import main as verify_main


def test_verify_cli_offline_all_apps_clean(capsys):
    assert verify_main([]) == 0
    out = capsys.readouterr().out
    for app in ("minx", "littled", "nbench"):
        assert f"verify {app}: CLEAN" in out


def test_verify_cli_json_output(capsys):
    assert verify_main(["--json", "minx"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["target"] == "minx" and payload["ok"] is True


def test_verify_cli_unknown_app_is_usage_error(capsys):
    assert verify_main(["apache"]) == 2
    assert "unknown app" in capsys.readouterr().err


def test_verify_cli_root_override(capsys):
    assert verify_main(["--root", "minx_http_log_access", "minx"]) == 0
    assert "CLEAN" in capsys.readouterr().out


def test_verify_cli_corpus_exit_code(capsys):
    assert verify_main(["--corpus"]) == 0
    out = capsys.readouterr().out
    assert "every seeded violation caught" in out
    assert "MISSED" not in out


def test_verify_cli_live_minx(capsys):
    assert verify_main(["--live", "minx"]) == 0
    out = capsys.readouterr().out
    assert "verify minx: CLEAN" in out
    assert "got-audit" in out


def test_analysis_cli_callgraph_subtree(capsys):
    rc = analysis_main(["callgraph", "minx",
                        "--root", "minx_http_process_request_line"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "protected subtree" in out
    assert "recv" in out            # libc reachability line


def test_analysis_cli_callgraph_full_dump(capsys):
    assert analysis_main(["callgraph", "littled"]) == 0
    out = capsys.readouterr().out
    assert "server_main_loop ->" in out


def test_analysis_cli_gadgets(capsys):
    assert analysis_main(["gadgets", "minx"]) == 0
    out = capsys.readouterr().out
    assert "gadgets in .text" in out
    assert "ret" in out


def test_analysis_cli_pmap(capsys):
    assert analysis_main(["pmap", "littled"]) == 0
    out = capsys.readouterr().out
    assert "total rss" in out
    assert "littled:.text" in out


def test_analysis_cli_forwards_verify(capsys):
    assert analysis_main(["verify", "minx"]) == 0
    assert "verify minx: CLEAN" in capsys.readouterr().out


def test_cli_module_entrypoints_run_in_subprocess():
    """The ``python -m`` plumbing itself (runpy + __main__ guards)."""
    import os
    import pathlib
    import subprocess
    import sys
    import repro
    src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis.verify", "minx"],
        capture_output=True, text=True, timeout=120, env=env)
    assert result.returncode == 0, result.stderr
    assert "verify minx: CLEAN" in result.stdout
    assert "RuntimeWarning" not in result.stderr
