"""Tests for the ERIM-style PKRU-gate dataflow pass (repro.analysis.pkru)."""

import pytest

from repro.analysis.cfg import recover_cfg
from repro.analysis.pkru import (
    GatePolicy,
    analyze_gate,
    verify_monitor_image,
    wrpkru_sites_in_image,
)
from repro.loader import ImageBuilder
from repro.machine import Assembler
from repro.machine.isa import INSTR_SIZE

OPEN = 0x0
CLOSED = 0xC
POLICY = GatePolicy(pkru_open=OPEN, pkru_closed=CLOSED)


def gate_cfg(build, name="smvx_trampoline"):
    a = Assembler()
    build(a)
    return recover_cfg(a.assemble(0), base=0, name=name)


def run(build, resolve=lambda addr: None):
    return analyze_gate(gate_cfg(build), POLICY, resolve)


def codes(findings):
    return {f.code for f in findings}


def correct_trampoline(a, gate_at=0x1000):
    a.mov_ri("rcx", 0)
    a.mov_ri("rdx", 0)
    a.mov_ri("rax", OPEN)
    a.wrpkru()
    a.call(gate_at)
    a.mov_ri("rcx", 0)
    a.mov_ri("rdx", 0)
    a.mov_ri("rax", CLOSED)
    a.wrpkru()
    a.ret()


def test_correct_trampoline_is_clean():
    resolve = lambda addr: "smvx_gate" if addr == 0x1000 else None
    findings = run(correct_trampoline, resolve)
    assert findings == []


def test_ret_with_open_pkru_flags_exit_path():
    def build(a):
        a.mov_ri("rcx", 0)
        a.mov_ri("rdx", 0)
        a.mov_ri("rax", OPEN)
        a.wrpkru()
        a.ret()                     # never restored
    assert "PKRU004" in codes(run(build))


def test_unproven_rcx_rdx_flagged():
    def build(a):
        a.mov_ri("rax", CLOSED)
        a.wrpkru()                  # rcx/rdx unknown at entry
        a.ret()
    assert "PKRU002" in codes(run(build))


def test_nonconstant_pkru_value_flagged():
    def build(a):
        a.mov_ri("rcx", 0)
        a.mov_ri("rdx", 0)
        a.mov_rr("rax", "rdi")      # attacker-influenced value
        a.wrpkru()
        a.ret()
    found = codes(run(build))
    assert "PKRU003" in found
    assert "PKRU004" in found       # exit state is indeterminate too


def test_unexpected_constant_flagged():
    def build(a):
        a.mov_ri("rcx", 0)
        a.mov_ri("rdx", 0)
        a.mov_ri("rax", 0xFF)       # neither open nor closed
        a.wrpkru()
        a.ret()
    assert "PKRU003" in codes(run(build))


def test_open_state_call_to_non_gate_flagged():
    def build(a):
        correct_trampoline(a, gate_at=0x2000)   # resolves to None
    assert "PKRU005" in codes(run(build))


def test_indirect_call_in_open_state_flagged():
    def build(a):
        a.mov_ri("rcx", 0)
        a.mov_ri("rdx", 0)
        a.mov_ri("rax", OPEN)
        a.wrpkru()
        a.call_r("r11")
        a.mov_ri("rcx", 0)
        a.mov_ri("rdx", 0)
        a.mov_ri("rax", CLOSED)
        a.wrpkru()
        a.ret()
    assert "PKRU005" in codes(run(build))


def test_open_close_without_gate_call_warns():
    def build(a):
        a.mov_ri("rcx", 0)
        a.mov_ri("rdx", 0)
        a.mov_ri("rax", OPEN)
        a.wrpkru()
        a.mov_ri("rax", CLOSED)     # rcx/rdx still zero
        a.wrpkru()
        a.ret()
    found = run(build)
    assert "PKRU006" in codes(found)
    assert all(f.code != "PKRU004" for f in found)


def test_join_of_open_and_closed_paths_widens_to_top():
    """One path opens, one doesn't; after the join PKRU is unknown and
    the exit check must fire pessimistically."""
    def build(a):
        a.cmp_ri("rdi", 0)
        a.je("skip")
        a.mov_ri("rcx", 0)
        a.mov_ri("rdx", 0)
        a.mov_ri("rax", OPEN)
        a.wrpkru()
        a.label("skip")
        a.ret()
    assert "PKRU004" in codes(run(build))


def test_real_monitor_image_verifies_clean():
    from repro.core.trampoline import build_monitor_image
    image = build_monitor_image(
        ["read", "write"], lambda ctx: 0, lambda ctx: 0,
        lambda ctx, *a: 0, lambda ctx: 0, OPEN, CLOSED)
    findings = verify_monitor_image(image, POLICY)
    assert findings == []


def test_wrpkru_sites_found_in_image():
    from repro.core.trampoline import build_monitor_image
    image = build_monitor_image(
        ["read"], lambda ctx: 0, lambda ctx: 0,
        lambda ctx, *a: 0, lambda ctx: 0, OPEN, CLOSED)
    sites = wrpkru_sites_in_image(image)
    assert len(sites) == 2          # open + close in the trampoline
    assert all(sym == "smvx_trampoline" for sym, _ in sites)


def test_missing_trampoline_symbol_flagged():
    builder = ImageBuilder("no_tramp")
    builder.add_hl_function("smvx_gate", lambda ctx: 0, 0,
                            size=4 * INSTR_SIZE)
    findings = verify_monitor_image(builder.build(), POLICY)
    assert "PKRU004" in codes(findings)


def test_bad_stub_shape_flagged():
    builder = ImageBuilder("bad_stub")
    builder.add_hl_function("smvx_gate", lambda ctx: 0, 0,
                            size=4 * INSTR_SIZE)
    tramp = Assembler()
    tramp.mov_ri("rcx", 0)
    tramp.mov_ri("rdx", 0)
    tramp.mov_ri("rax", OPEN)
    tramp.wrpkru()
    tramp.call("smvx_gate")
    tramp.mov_ri("rcx", 0)
    tramp.mov_ri("rdx", 0)
    tramp.mov_ri("rax", CLOSED)
    tramp.wrpkru()
    tramp.ret()
    builder.add_isa_function("smvx_trampoline", tramp)
    stub = Assembler()
    stub.ret()                      # does not funnel into the trampoline
    builder.add_isa_function("smvx_stub_read", stub)
    findings = verify_monitor_image(builder.build(), POLICY)
    assert "PKRU008" in codes(findings)


def test_non_hl_gate_symbol_flagged():
    builder = ImageBuilder("isa_gate")
    gate = Assembler()
    gate.ret()
    builder.add_isa_function("smvx_gate", gate)   # no stack pivot
    tramp = Assembler()
    tramp.mov_ri("rcx", 0)
    tramp.mov_ri("rdx", 0)
    tramp.mov_ri("rax", OPEN)
    tramp.wrpkru()
    tramp.call("smvx_gate")
    tramp.mov_ri("rcx", 0)
    tramp.mov_ri("rdx", 0)
    tramp.mov_ri("rax", CLOSED)
    tramp.wrpkru()
    tramp.ret()
    builder.add_isa_function("smvx_trampoline", tramp)
    findings = verify_monitor_image(builder.build(), POLICY)
    assert "PKRU007" in codes(findings)
