"""Tests for the analysis tooling: call graphs, perf, pmap, gadgets,
alias analysis."""

import pytest

from repro.analysis.alias import analyze_image_pointers
from repro.analysis.callgraph import (
    build_callgraph,
    protected_function_set,
)
from repro.analysis.gadgets import (
    find_gadgets,
    find_pop_reg_ret,
    find_ret,
)
from repro.analysis.perf import FunctionProfiler
from repro.analysis.pmap import format_pmap, rss_kb, rss_report
from repro.kernel import Kernel
from repro.libc import build_libc_image
from repro.loader import ImageBuilder
from repro.machine import Assembler, PAGE_SIZE
from repro.process import GuestProcess


def build_graph_image():
    builder = ImageBuilder("graphapp")
    builder.import_libc("write", "read")

    def noop(ctx):
        return 0
    builder.add_hl_function("main", noop, 0,
                            calls=("func1", "func2", "func3"))
    builder.add_hl_function("func1", noop, 0, calls=())
    builder.add_hl_function("func2", noop, 0,
                            calls=("subfunc1", "subfunc2", "write"))
    builder.add_hl_function("func3", noop, 0, calls=("read",))
    builder.add_hl_function("subfunc1", noop, 0, calls=())
    builder.add_hl_function("subfunc2", noop, 0, calls=("subsubfunc2",))
    builder.add_hl_function("subsubfunc2", noop, 0, calls=())
    # an ISA function whose CALL targets are found by disassembly
    isa = Assembler()
    isa.call("func1")
    isa.ret()
    builder.add_isa_function("isa_caller", isa)
    builder.add_data_pointer("handler", "func2")
    return builder.build()


# -- callgraph (paper Figure 2's example shape) -----------------------------------

def test_subtree_matches_figure2():
    image = build_graph_image()
    subtree = protected_function_set(image, "func2")
    assert subtree == {"func2", "subfunc1", "subfunc2", "subsubfunc2"}


def test_subtree_of_main_covers_everything():
    image = build_graph_image()
    subtree = protected_function_set(image, "main")
    assert {"main", "func1", "func2", "func3", "subfunc1", "subfunc2",
            "subsubfunc2"} <= subtree


def test_libc_reachability():
    graph = build_callgraph(build_graph_image())
    assert graph.libc_reachable("func2") == {"write"}
    assert graph.libc_reachable("func3") == {"read"}
    assert graph.libc_reachable("subfunc1") == set()


def test_isa_call_targets_extracted_by_disassembly():
    graph = build_callgraph(build_graph_image())
    assert "func1" in graph.callees("isa_caller")


def test_callers_and_roots():
    graph = build_callgraph(build_graph_image())
    assert graph.callers("subsubfunc2") == {"subfunc2"}
    assert "main" in graph.roots()
    assert "subfunc1" not in graph.roots()


def test_unknown_root_raises():
    from repro.errors import SymbolNotFound
    graph = build_callgraph(build_graph_image())
    with pytest.raises(SymbolNotFound):
        graph.subtree("nothere")


def test_indirect_branches_become_explicit_edges():
    """Regression: CALL_R/JMP_R/JMP_M used to be silently dropped; they
    must appear as edges to the <indirect> pseudo-callee so coverage
    claims can be conservative instead of unsound."""
    from repro.analysis.callgraph import INDIRECT
    builder = ImageBuilder("indirectapp")

    def noop(ctx):
        return 0
    builder.add_hl_function("main", noop, 0, calls=("dispatch", "leaf"))
    builder.add_hl_function("leaf", noop, 0)
    isa = Assembler()
    isa.call("leaf")
    isa.call_r("rax")               # register call: unresolvable
    isa.ret()
    builder.add_isa_function("dispatch", isa)
    graph = build_callgraph(builder.build())
    assert INDIRECT in graph.callees("dispatch")
    assert "leaf" in graph.callees("dispatch")
    # subtree traversal skips the pseudo-node instead of crashing
    subtree = graph.subtree("main")
    assert INDIRECT not in subtree
    assert subtree == {"main", "dispatch", "leaf"}
    # and indirect_sites pinpoints which functions are conservative
    assert graph.indirect_sites("main") == {"dispatch"}
    assert graph.indirect_sites("leaf") == set()


def test_jmp_m_counts_as_indirect_edge():
    from repro.analysis.callgraph import INDIRECT
    builder = ImageBuilder("gotapp")
    isa = Assembler()
    isa.jmp_m(0)                    # memory-target jump (GOT-style)
    builder.add_isa_function("goer", isa)
    graph = build_callgraph(builder.build())
    assert INDIRECT in graph.callees("goer")


# -- alias analysis ------------------------------------------------------------------

def test_alias_analysis_finds_static_pointer_slots():
    image = build_graph_image()
    analysis = analyze_image_pointers(image)
    handler = image.symbol("handler")
    assert handler.offset in analysis.data_pointer_offsets
    assert analysis.narrowed_slot_count == 1


# -- perf -----------------------------------------------------------------------------

def make_profiled_process():
    kernel = Kernel()
    process = GuestProcess(kernel, "perf")
    process.load_image(build_libc_image(), tag="libc")
    builder = ImageBuilder("hotapp")

    def hot(ctx):
        ctx.charge(9000)
        return 0

    def cold(ctx):
        ctx.charge(1000)
        return 0

    def top(ctx):
        ctx.call("hot")
        ctx.call("cold")
        return 0
    builder.add_hl_function("hot", hot, 0)
    builder.add_hl_function("cold", cold, 0)
    builder.add_hl_function("top", top, 0, calls=("hot", "cold"))
    process.load_image(builder.build(), main=True)
    return process


def test_profiler_attributes_inclusive_and_exclusive():
    process = make_profiled_process()
    with FunctionProfiler(process) as profiler:
        process.call_function("top")
    assert profiler.inclusive_fraction("top") > 0.9
    assert profiler.inclusive_fraction("hot") > \
        profiler.inclusive_fraction("cold")
    assert profiler.exclusive_ns["hot"] > profiler.exclusive_ns["cold"]


def test_profiler_flame_graph_nesting():
    process = make_profiled_process()
    with FunctionProfiler(process) as profiler:
        process.call_function("top")
    flame = profiler.flame_graph()
    top_node = flame.children["top"]
    assert "hot" in top_node.children
    assert "cold" in top_node.children
    assert top_node.total_ns >= top_node.children["hot"].total_ns
    rendering = flame.render()
    assert "top" in rendering and "hot" in rendering


def test_profiler_folded_stacks_format():
    process = make_profiled_process()
    with FunctionProfiler(process) as profiler:
        process.call_function("top")
    folded = profiler.folded_stacks()
    assert any(line.startswith("top;hot ") for line in folded)


def test_profiler_detach_stops_sampling():
    process = make_profiled_process()
    profiler = FunctionProfiler(process).attach()
    process.call_function("top")
    total = profiler.total_ns
    profiler.detach()
    process.call_function("top")
    assert profiler.total_ns == total


# -- pmap -------------------------------------------------------------------------------

def test_rss_and_report():
    kernel = Kernel()
    process = GuestProcess(kernel, "pm", heap_pages=8)
    process.load_image(build_libc_image(), tag="libc")
    kb = rss_kb(process)
    assert kb >= 8 * PAGE_SIZE / 1024
    report = rss_report(process)
    assert "heap" in report
    assert any(tag.startswith("libc:") for tag in report)
    listing = format_pmap(process)
    assert "total" in listing and "heap" in listing


# -- gadgets ------------------------------------------------------------------------------

def build_gadget_space():
    kernel = Kernel()
    process = GuestProcess(kernel, "g")
    builder = ImageBuilder("gadgetapp")
    isa = Assembler()
    isa.pop_r("rdi")
    isa.ret()
    isa.pop_r("rsi")
    isa.ret()
    isa.mov_ri("rax", 1)
    isa.add_ri("rax", 2)
    isa.ret()
    builder.add_isa_function("pool", isa)

    def hl(ctx):
        return 0
    builder.add_hl_function("hl", hl, 0)
    loaded = process.load_image(builder.build())
    return process, loaded


def test_find_gadgets_and_classify():
    process, loaded = build_gadget_space()
    region = (loaded.base, loaded.base + loaded.image.load_size)
    gadgets = find_gadgets(process.space, max_len=3, region=region)
    assert find_pop_reg_ret(gadgets, "rdi") is not None
    assert find_pop_reg_ret(gadgets, "rsi") is not None
    assert find_pop_reg_ret(gadgets, "rbx") is None
    assert find_ret(gadgets) is not None


def test_gadget_region_restriction():
    process, loaded = build_gadget_space()
    off_region = (loaded.base + loaded.image.load_size,
                  loaded.base + loaded.image.load_size + PAGE_SIZE)
    assert find_gadgets(process.space, region=off_region) == []


def test_gadgets_never_span_control_flow():
    process, loaded = build_gadget_space()
    from repro.machine.isa import Op
    region = (loaded.base, loaded.base + loaded.image.load_size)
    for gadget in find_gadgets(process.space, max_len=3, region=region):
        for instr in gadget.instructions[:-1]:
            assert instr.op not in (Op.RET, Op.JMP, Op.CALL, Op.HLCALL)
        assert gadget.instructions[-1].op == Op.RET
        assert "ret" in gadget.text


def test_profiler_hottest_ranking():
    process = make_profiled_process()
    with FunctionProfiler(process) as profiler:
        process.call_function("top")
    ranked = profiler.hottest(2)
    assert ranked[0][0] == "hot"
    assert ranked[0][1] >= ranked[1][1]


def test_flame_render_min_ns_filter():
    process = make_profiled_process()
    with FunctionProfiler(process) as profiler:
        process.call_function("top")
    flame = profiler.flame_graph()
    full = flame.render()
    filtered = flame.render(min_ns=5000)
    assert "cold" in full
    assert "cold" not in filtered      # below the threshold
    assert "hot" in filtered


def test_minx_callgraph_reaches_recv_from_tainted_root():
    """The §4.2 reasoning: the vulnerable recv sits inside the protected
    subtree of the taint-identified root."""
    from repro.apps.minx import build_minx_image
    graph = build_callgraph(build_minx_image())
    reachable = graph.libc_reachable("minx_http_process_request_line")
    assert "recv" in reachable
    assert "sendfile" in reachable


def test_profile_tool_symbol_size():
    from repro.analysis.callgraph import build_callgraph as _
    from repro.loader import generate_profile
    from repro.apps.minx import build_minx_image
    image = build_minx_image()
    profile = generate_profile(image)
    assert profile.symbol_size("minx_http_process_request_line") == \
        image.symbol("minx_http_process_request_line").size
    from repro.errors import SymbolNotFound
    with pytest.raises(SymbolNotFound):
        profile.symbol_size("ghost")
