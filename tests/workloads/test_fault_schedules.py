"""The paper workloads under the adversarial fault battery.

Acceptance (ISSUE 3): every paper workload — minx (vanilla and
protected), littled, the nbench harness, and the CVE-2013-2028 exploit
run — completes under each battery schedule, and the sMVX monitor stays
in lockstep: *zero spurious divergences*.  Faults only ever land on
leader-executed syscalls (follower syscalls are emulated copies), so a
schedule may slow a workload down or neuter an attack, but it must never
make the monitor cry wolf.
"""

import pytest

from repro.apps import LittledServer, MinxServer
from repro.apps.nbench.harness import NbenchHarness
from repro.attacks import run_exploit
from repro.attacks.cve_2013_2028 import VICTIM_DIRECTORY
from repro.kernel import Kernel
from repro.kernel.faults import battery
from repro.workloads import ApacheBench

BATTERY = battery()
IDS = [s.name for s in BATTERY]

MINX_PROTECT = "minx_http_process_request_line"
LITTLED_PROTECT = "server_main_loop"

#: fault schedules legitimately stall reads (spurious EAGAIN, segment
#: pacing); the client needs more patience than the happy path's 2.
STALLS = 64


def _ab(kernel, server, requests):
    return ApacheBench(kernel, server, max_stalls=STALLS).run(requests)


@pytest.mark.parametrize("schedule", BATTERY, ids=IDS)
def test_minx_vanilla_completes_under_faults(schedule):
    kernel = Kernel()
    server = MinxServer(kernel)
    kernel.faults.install(schedule)
    assert server.start() == 0
    result = _ab(kernel, server, 5)
    assert result.requests_completed == 5
    assert result.failures == 0
    assert result.status_counts == {200: 5}
    assert result.bytes_received == 5 * 4096
    assert kernel.faults.injected_total > 0     # the battery actually bit


@pytest.mark.parametrize("schedule", BATTERY, ids=IDS)
def test_minx_protected_no_spurious_divergence(schedule):
    kernel = Kernel()
    server = MinxServer(kernel, protect=MINX_PROTECT, smvx=True)
    kernel.faults.install(schedule)
    assert server.start() == 0
    result = _ab(kernel, server, 5)
    assert result.requests_completed == 5
    assert result.status_counts == {200: 5}
    assert server.served == 5
    assert not server.alarms.triggered          # zero spurious divergences
    assert kernel.faults.injected_total > 0


@pytest.mark.parametrize("schedule", BATTERY, ids=IDS)
def test_littled_protected_no_spurious_divergence(schedule):
    kernel = Kernel()
    server = LittledServer(kernel, protect=LITTLED_PROTECT, smvx=True)
    kernel.faults.install(schedule)
    assert server.start() == 0
    result = _ab(kernel, server, 4)
    assert result.requests_completed == 4
    assert result.failures == 0
    assert not server.alarms.triggered
    assert kernel.faults.injected_total > 0


@pytest.mark.parametrize("schedule",
                         [s for s in BATTERY
                          if s.name in ("eintr-storm", "everything")],
                         ids=lambda s: s.name)
def test_nbench_consistent_under_faults(schedule):
    # the harness itself raises on any divergence alarm; checksums must
    # also agree between vanilla and protected runs
    harness = NbenchHarness(runs=1, fault_schedule=schedule)
    result = harness.run_workload(0)
    assert result.consistent
    assert result.vanilla_ns > 0 and result.smvx_ns > 0


@pytest.mark.parametrize("schedule", BATTERY, ids=IDS)
def test_cve_exploit_never_lands_under_faults(schedule):
    """The security invariant survives every schedule: the ROP payload's
    mkdir never happens under sMVX.  Depending on how a schedule slices
    the attacker's stream the exploit is either *detected* (the follower
    faults, a genuine divergence) or *neutered* (short reads deny it the
    single huge recv the overflow needs) — both are wins; a created
    directory would be a loss."""
    kernel = Kernel()
    server = MinxServer(kernel, protect=MINX_PROTECT, smvx=True)
    kernel.faults.install(schedule)
    assert server.start() == 0
    outcome = run_exploit(server)
    assert not outcome.directory_created
    assert not kernel.vfs.is_dir(VICTIM_DIRECTORY)
    if not outcome.divergence_detected:
        # neutered, not silently-succeeded: no attack effect at all
        assert not outcome.attack_succeeded


def test_cve_still_detected_with_no_schedule_installed():
    """Regression guard: arming-then-disarming the plane leaves the
    baseline §4.2 result intact."""
    kernel = Kernel()
    server = MinxServer(kernel, protect=MINX_PROTECT, smvx=True)
    kernel.faults.install(battery()[0])
    kernel.faults.install(None)
    assert server.start() == 0
    outcome = run_exploit(server)
    assert outcome.attack_detected_and_blocked
