"""Scheduled ApacheBench vs the pre-forked littled (the ISSUE acceptance
battery): concurrent interleaved connections with no harness pump,
bit-identical schedules, preemption inside protected regions, fault
schedules under 4 workers, and record/replay of a scheduled run.
"""

import pytest

from repro.apps.littled import LittledServer
from repro.kernel import Kernel
from repro.kernel.faults import FaultSchedule, battery
from repro.trace import record_littled, replay_trace
from repro.workloads.ab import ApacheBench


def scheduled_run(seed="sched-ab", requests=24, concurrency=8,
                  fault_schedule=None, **littled_kwargs):
    kernel = Kernel(seed=seed)
    littled_kwargs.setdefault("workers", 4)
    server = LittledServer(kernel, **littled_kwargs)
    if fault_schedule is not None:
        kernel.faults.install(fault_schedule)
    server.start()
    ab = ApacheBench(kernel, server)
    result = ab.run(requests, concurrency=concurrency)
    injected = dict(kernel.faults.injected_by_kind)
    if fault_schedule is not None:
        kernel.faults.install(None)
    server.shutdown()
    return kernel, server, result, injected


def test_ab_concurrency_8_against_4_workers_no_pump():
    kernel, server, result, _ = scheduled_run()
    assert result.sched_status == "done"
    assert result.requests_completed == 24
    assert result.failures == 0
    assert result.status_counts == {200: 24}
    assert result.workers == 4
    assert result.concurrency == 8
    assert server.served == 24
    # all 8 client tasks really interleaved: every quota is 3, and the
    # scheduler (not the harness) drove every accept
    assert result.wall_ns > 0
    assert result.wall_throughput_rps > 0


def test_requests_spread_across_workers():
    _, server, result, _ = scheduled_run(requests=32)
    per_worker = [w.served for w in server.workers]
    assert sum(per_worker) == 32
    assert min(per_worker) >= 1          # nobody starved


def test_schedule_is_deterministic_bit_for_bit():
    def audit(run):
        kernel, server, result, _ = run
        return {
            "digest": kernel.sched.digest,
            "decisions": kernel.sched.decisions,
            "stats": kernel.sched.stats.as_dict(),
            "wall_ns": result.wall_ns,
            "busy_ns": result.server_busy_ns,
            "completed": result.requests_completed,
            "per_worker": [w.served for w in server.workers],
            "clock": kernel.clock.monotonic_ns,
        }

    assert audit(scheduled_run()) == audit(scheduled_run())


def test_different_seed_same_schedule_shape():
    # determinism comes from machine state, not the PRNG: with no fault
    # schedule installed the seed does not perturb the schedule
    _, _, r1, _ = scheduled_run(seed="seed-one")
    _, _, r2, _ = scheduled_run(seed="seed-two")
    assert r1.requests_completed == r2.requests_completed == 24


def test_preemption_inside_protected_region_no_alarms():
    kernel, server, result, _ = scheduled_run(
        requests=12, concurrency=4, workers=2, smvx=True,
        protect="server_main_loop", quantum_ns=20_000)
    assert result.requests_completed == 12
    # the tiny quantum forces preemptions while the workers sit inside
    # their protected main loops; lockstep must survive every one
    assert kernel.sched.stats.preemptions > 0
    assert server.alarms.alarms == []


@pytest.mark.parametrize("schedule", battery(), ids=lambda s: s.name)
def test_fault_battery_under_4_workers(schedule):
    kernel, server, result, injected = scheduled_run(
        requests=16, concurrency=4, smvx=True,
        protect="server_main_loop", fault_schedule=schedule)
    assert result.requests_completed == 16, \
        f"{schedule.name}: {result.failures} failures"
    assert server.alarms.alarms == [], \
        f"{schedule.name}: spurious divergences {server.alarms.alarms}"


def test_spurious_wake_schedule_under_workers():
    schedule = FaultSchedule(name="spurious-wakes", spurious_wake_p=0.3)
    kernel, server, result, injected = scheduled_run(
        requests=16, concurrency=4, smvx=True,
        protect="server_main_loop", fault_schedule=schedule)
    assert result.requests_completed == 16
    assert injected.get("spurious_wake", 0) > 0
    assert kernel.sched.stats.spurious_wakeups > 0
    assert server.alarms.alarms == []


def test_monitor_attached_run_raises_zero_alarms():
    kernel, server, result, _ = scheduled_run(
        requests=24, concurrency=8, smvx=True,
        protect="server_main_loop")
    assert result.requests_completed == 24
    assert server.alarms.alarms == []
    for worker in server.workers:
        assert worker.monitor is not None
        assert worker.monitor.stats.regions_entered > 0


def test_record_replay_scheduled_run_identical_stream():
    workload = {"requests": 24, "concurrency": 6}
    kernel, server, recorder = record_littled(
        seed="sched-rr", workload=workload,
        workers=4, smvx=True, protect="server_main_loop")
    # footer is snapshotted at finish(); shutdown() keeps scheduling
    # (cancel/drain), so capture the comparison values first
    at_finish = (kernel.sched.decisions, kernel.sched.digest)
    trace = recorder.finish()
    server.shutdown()
    assert trace.footer["sched_decisions"] == at_finish[0]
    assert trace.footer["sched_digest"] == at_finish[1]
    assert trace.footer["alarms"] == []

    result = replay_trace(trace)
    assert result.ok, result.summary()
    assert result.replayed_footer["sched_digest"] == \
        trace.footer["sched_digest"]
    assert result.replayed_footer["worker_pids"] == \
        trace.footer["worker_pids"]
