"""Tests for the workload generators (ab and the URL fuzzer)."""

import pytest

from repro.apps import MinxServer
from repro.kernel import Kernel
from repro.workloads import ApacheBench, UrlFuzzer


@pytest.fixture
def served():
    kernel = Kernel()
    server = MinxServer(kernel)
    server.start()
    return kernel, server


# -- ApacheBench ----------------------------------------------------------------

def test_ab_result_statistics(served):
    kernel, server = served
    result = ApacheBench(kernel, server).run(8)
    assert result.requests_attempted == 8
    assert result.requests_completed == 8
    assert result.failures == 0
    assert result.bytes_received == 8 * 4096
    assert result.wall_ns > 0
    assert result.server_busy_ns > 0
    assert result.throughput_rps > 0
    assert result.busy_per_request_ns < result.wall_per_request_ns


def test_ab_keepalive_reuses_one_connection(served):
    kernel, server = served
    ApacheBench(kernel, server).run(6)
    assert kernel.network.connections_total == 1


def test_ab_path_rotation(served):
    kernel, server = served
    result = ApacheBench(kernel, server).run(
        4, paths=["/index.html", "/missing.html"])
    assert result.status_counts == {200: 2, 404: 2}


def test_ab_connect_failure_counts_as_failures():
    kernel = Kernel()

    class DeadServer:
        port = 5999
        process = None

        def pump(self):
            return 0
    dead = DeadServer()
    dead.process = MinxServer(kernel, port=6000).process
    result = ApacheBench(kernel, dead).run(3)
    assert result.failures == 3


def test_ab_request_bytes_shape(served):
    kernel, server = served
    ab = ApacheBench(kernel, server, path="/x", keepalive=False)
    raw = ab._request_bytes()
    assert raw.startswith(b"GET /x HTTP/1.1\r\n")
    assert b"Connection: close" in raw
    assert raw.endswith(b"\r\n\r\n")


# -- the URL fuzzer ---------------------------------------------------------------

def test_fuzzer_is_deterministic():
    a = UrlFuzzer(seed=1).batch(50)
    b = UrlFuzzer(seed=1).batch(50)
    assert a == b


def test_fuzzer_seed_changes_stream():
    assert UrlFuzzer(seed=1).batch(30) != UrlFuzzer(seed=2).batch(30)


def test_fuzzer_produces_diverse_requests():
    requests = UrlFuzzer(seed=3).batch(200)
    methods = {m for m, _, _ in requests}
    paths = {p for _, p, _ in requests}
    assert "GET" in methods and "POST" in methods
    assert len(paths) > 100
    assert any("?" in p for p in paths)            # query mutations
    assert any("%2e" in p for p in paths)          # traversal probes


def test_fuzzer_post_bodies_are_chunked():
    fuzzer = UrlFuzzer(seed=4)
    raw = fuzzer.request_bytes("POST", "/x", b"abc")
    assert b"Transfer-Encoding: chunked" in raw
    assert b"3\r\nabc\r\n0\r\n\r\n" in raw


def test_fuzzer_get_has_no_body():
    fuzzer = UrlFuzzer(seed=5)
    raw = fuzzer.request_bytes("GET", "/y", b"")
    assert b"Transfer-Encoding" not in raw
    assert raw.endswith(b"\r\n\r\n")


def test_fuzzer_requests_do_not_crash_server(served):
    """Robustness sweep: 60 fuzzed requests against minx never kill it."""
    kernel, server = served
    fuzzer = UrlFuzzer(seed=6)
    for method, path, body in fuzzer.batch(60):
        sock = kernel.network.connect(server.port)
        sock.send(fuzzer.request_bytes(method, path, body))
        server.pump()
        sock.close()
        server.pump()
    # the server survived and can still serve
    result = ApacheBench(kernel, server).run(2)
    assert result.status_counts == {200: 2}


def test_ab_concurrent_connections(served):
    kernel, server = served
    result = ApacheBench(kernel, server).run(12, concurrency=4)
    assert result.requests_completed == 12
    assert result.status_counts == {200: 12}
    assert kernel.network.connections_total == 4


def test_ab_concurrent_under_smvx():
    """Interleaved connections with per-request regions stay in lockstep
    (several live connection structs in the heap during every scan)."""
    kernel = Kernel()
    server = MinxServer(kernel, smvx=True,
                        protect="minx_http_process_request_line")
    server.start()
    result = ApacheBench(kernel, server).run(8, concurrency=3)
    assert result.status_counts == {200: 8}
    assert not server.alarms.triggered


# -- the accept-drain fix ---------------------------------------------------
#
# ab used to issue exactly ONE pump to "let the server accept them all";
# a server whose epoll batch is bounded (or a faulty schedule trickling
# accepts in) left connections unaccepted.  The fix pumps until the
# listener's backlog drains, bounded by the connection count so a
# refusing server cannot stall the harness.

class LazyAcceptServer:
    """Host-side stub: accepts at most ONE pending connection per pump
    (the adversarial epoll batch), then answers any buffered requests."""

    def __init__(self, kernel, port=7001):
        self.kernel = kernel
        self.port = port
        self.listener = kernel.network.listen(port)
        self.conns = []
        self.buffers = {}
        self.pump_calls = 0
        # counters ab reads for its statistics
        self.process = MinxServer(kernel, port=port + 1).process

    def pump(self):
        self.pump_calls += 1
        clock = self.kernel.clock
        # model the blocking epoll_wait a real server would sit in:
        # advance to the earliest readiness instant
        ready = [t for t in
                 [self.listener.next_ready_at()]
                 + [s.next_ready_at() for s in self.conns]
                 if t is not None]
        if ready:
            clock.advance_to(min(ready))
        now = clock.monotonic_ns
        if self.listener.readable(now):
            sock = self.listener.accept()
            if not isinstance(sock, int):
                self.conns.append(sock)
        for sock in self.conns:
            data = sock.recv(4096)
            if isinstance(data, bytes) and data:
                buf = self.buffers.get(id(sock), b"") + data
                self.buffers[id(sock)] = buf
                while b"\r\n\r\n" in self.buffers[id(sock)]:
                    _, _, rest = self.buffers[id(sock)].partition(b"\r\n\r\n")
                    self.buffers[id(sock)] = rest
                    sock.send(b"HTTP/1.1 200 OK\r\n"
                              b"Content-Length: 2\r\n\r\nok")
        return 0


def test_ab_drains_lazy_accepts_before_first_request():
    kernel = Kernel()
    server = LazyAcceptServer(kernel)
    result = ApacheBench(kernel, server).run(4, concurrency=4)
    # one pump accepts one connection: a single-pump ab would have
    # raced requests against three unaccepted connections
    assert result.requests_completed == 4
    assert result.failures == 0
    assert server.listener.pending_count() == 0


def test_ab_accept_loop_is_bounded_against_a_refusing_server():
    kernel = Kernel()

    class NeverAcceptServer:
        port = 7005

        def __init__(self):
            self.listener = kernel.network.listen(self.port)
            self.pump_calls = 0
            self.process = MinxServer(kernel, port=7006).process

        def pump(self):
            self.pump_calls += 1
            return 0

    server = NeverAcceptServer()
    result = ApacheBench(kernel, server).run(6, concurrency=3)
    # the run terminates (bounded accept loop + per-request stall caps)
    # with every request failed, rather than pumping forever
    assert result.failures == 6
    assert result.requests_completed == 0
    assert server.pump_calls <= 4 + 6 * 8


def test_head_request_returns_headers_only(served):
    kernel, server = served
    sock = kernel.network.connect(server.port)
    sock.send(b"HEAD /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
    server.pump()
    raw = sock.recv_wait(8192)
    assert raw.startswith(b"HTTP/1.1 200")
    assert b"Content-Length: 4096" in raw
    assert raw.endswith(b"\r\n\r\n")      # no body followed
