"""Tests for the whole-program MVX baselines."""

import pytest

from repro.apps import MinxServer
from repro.kernel import Kernel
from repro.mvx import PtraceMvx, ReMonMvx, spawn_duplicate
from repro.workloads import ApacheBench


@pytest.fixture
def kernel():
    return Kernel()


def run_with(kernel, baseline_cls, requests=5):
    server = MinxServer(kernel, port=8080 + (0 if baseline_cls else 1))
    if baseline_cls is None:
        server.start()
        result = ApacheBench(kernel, server).run(requests)
        return server, None, result
    baseline = baseline_cls(server.process).attach()
    server.start()
    result = ApacheBench(kernel, server).run(requests)
    baseline.detach()
    return server, baseline, result


def test_remon_intercepts_every_syscall(kernel):
    server, remon, result = run_with(kernel, ReMonMvx)
    assert result.status_counts == {200: 5}
    assert remon.stats.intercepted == \
        server.process.kernel.syscall_count(server.process.pid)
    assert remon.stats.fast_path > remon.stats.slow_path > 0


def test_remon_adds_overhead_but_less_than_naive_ptrace(kernel):
    k1, k2, k3 = Kernel(), Kernel(), Kernel()
    _, _, vanilla = run_with(k1, None)
    _, remon, with_remon = run_with(k2, ReMonMvx)
    _, ptrace, with_ptrace = run_with(k3, PtraceMvx)
    assert vanilla.busy_per_request_ns < with_remon.busy_per_request_ns
    assert with_remon.busy_per_request_ns < with_ptrace.busy_per_request_ns


def test_whole_program_replication_doubles_cpu(kernel):
    server, remon, result = run_with(kernel, ReMonMvx)
    # the follower mirrors all leader work: total CPU ~ 2x the leader's
    leader = server.process.counter.total_ns
    total = remon.total_cpu_ns()
    assert total == pytest.approx(2 * leader, rel=0.01)


def test_duplicate_doubles_memory(kernel):
    from repro.analysis.pmap import rss_kb
    first = MinxServer(kernel, port=8080, name="minx-a")
    first.start()
    second = spawn_duplicate(MinxServer, kernel, port=9080, name="minx-b")
    second.start()
    rss_first = rss_kb(first.process)
    rss_second = rss_kb(second.process)
    assert rss_second == pytest.approx(rss_first, rel=0.05)
    assert rss_first + rss_second > 1.9 * rss_first


def test_smvx_replicates_less_cpu_than_full_mvx(kernel):
    """The headline resource claim (§4.1): selective replication burns
    less *follower* CPU than whole-program replication, relative to each
    system's own leader."""
    k_smvx, k_remon = Kernel(), Kernel()
    smvx_server = MinxServer(k_smvx, smvx=True,
                             protect="minx_http_process_request_line")
    smvx_server.start()
    ApacheBench(k_smvx, smvx_server).run(5)

    remon_server = MinxServer(k_remon)
    remon = ReMonMvx(remon_server.process).attach()
    remon_server.start()
    ApacheBench(k_remon, remon_server).run(5)
    remon.detach()

    # whole-program MVX: the follower mirrors the leader completely
    remon_replication = (remon.follower_counter.total_ns
                         / remon_server.process.counter.total_ns)
    # sMVX: the follower only executed the protected subtree
    smvx_leader = smvx_server.process.counter.total_ns
    smvx_follower = smvx_server.process._retired_follower_ns
    smvx_replication = smvx_follower / smvx_leader
    assert remon_replication == pytest.approx(1.0, rel=0.01)
    assert 0.0 < smvx_replication < 0.8
    assert smvx_replication < remon_replication
