"""The §4.2 security experiment: CVE-2013-2028 vs vanilla and sMVX minx."""

import pytest

from repro.apps.minx import MinxServer
from repro.attacks import Cve20132028Exploit, build_mkdir_chain, run_exploit
from repro.attacks.cve_2013_2028 import VICTIM_DIRECTORY
from repro.core import DivergenceKind
from repro.kernel import Kernel
from repro.workloads import ApacheBench


@pytest.fixture
def kernel():
    return Kernel()


def test_gadgets_harvested_from_minx_text(kernel):
    server = MinxServer(kernel)
    server.start()
    chain = build_mkdir_chain(server.process, server.loaded)
    # the paper's chain: 3 gadgets + 3 values (we add the post-mkdir word)
    assert len(chain.words) == 6
    base, end = server.loaded.base, \
        server.loaded.base + server.loaded.image.load_size
    assert base <= chain.words[0] < end      # pop rdi gadget in app text
    assert base <= chain.words[2] < end      # pop rsi gadget
    assert chain.words[1] == \
        server.loaded.symbol_address("upstream_tmp_path")
    assert chain.words[4] == server.loaded.symbol_address("mkdir@plt")


def test_exploit_succeeds_against_vanilla_minx(kernel):
    """Baseline: the memory-corruption attack works on unprotected minx —
    the ROP chain runs, mkdir() creates the directory, and the worker
    crashes afterwards."""
    server = MinxServer(kernel)
    server.start()
    assert not kernel.vfs.is_dir(VICTIM_DIRECTORY)
    outcome = run_exploit(server)
    assert outcome.attack_succeeded
    assert outcome.directory_created
    assert outcome.server_crashed          # falls off the chain into 0x0
    assert not outcome.divergence_detected


def test_exploit_detected_and_blocked_by_smvx(kernel):
    """The headline result: under sMVX the follower faults on the
    leader-space gadget addresses, the monitor raises the alarm, and the
    attack's effect (mkdir) never happens."""
    server = MinxServer(kernel, protect="minx_http_process_request_line",
                        smvx=True)
    server.start()
    outcome = run_exploit(server)
    assert outcome.attack_detected_and_blocked
    assert not outcome.directory_created
    assert outcome.divergence_detected
    assert outcome.alarm_count == 1
    report = server.alarms.alarms[0]
    assert report.kind in (DivergenceKind.FOLLOWER_FAULT,
                           DivergenceKind.CALL_COUNT)
    # the fault is an execute fault at a leader-space address
    assert "fetch" in report.detail or "unmapped" in report.detail


def test_smvx_server_survives_normal_traffic_before_exploit(kernel):
    """Protection does not break benign traffic served just before the
    attack on the same process (region per request)."""
    server = MinxServer(kernel, protect="minx_http_process_request_line",
                        smvx=True)
    server.start()
    result = ApacheBench(kernel, server).run(3)
    assert result.status_counts == {200: 3}
    outcome = run_exploit(server)
    assert outcome.attack_detected_and_blocked


def test_exploit_also_detected_when_protecting_event_loop(kernel):
    """Coarser region (whole event loop) still catches the attack."""
    server = MinxServer(kernel, protect="minx_process_events_and_timers",
                        smvx=True)
    server.start()
    outcome = run_exploit(server)
    assert not outcome.directory_created
    assert outcome.divergence_detected


def test_exploit_misses_unprotected_region(kernel):
    """False-negative surface the paper discusses (§5): if the annotation
    protects a function whose subtree does NOT contain the vulnerable
    path, sMVX cannot see the attack; it succeeds like on vanilla."""
    server = MinxServer(kernel, protect="minx_http_log_access", smvx=True)
    server.start()
    outcome = run_exploit(server)
    assert outcome.directory_created        # attack went through
    assert not outcome.divergence_detected


def test_payload_shape(kernel):
    server = MinxServer(kernel)
    server.start()
    exploit = Cve20132028Exploit(server)
    head, body = exploit.build_payloads()
    assert b"Transfer-Encoding: chunked" in head
    assert b"fffffffffffffff0" in head
    assert len(body) == 4096 + 6 * 8
