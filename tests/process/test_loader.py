"""Tests for image building, loading, linking, and the profile tool."""

import pytest

from repro.errors import ImageError, SymbolNotFound
from repro.kernel import Kernel
from repro.libc import build_libc_image
from repro.loader import ImageBuilder, Loader, generate_profile
from repro.loader.profile_tool import (
    BinaryProfile,
    read_profile,
    write_profile,
)
from repro.machine import Assembler, AddressSpace, PAGE_SIZE
from repro.machine.isa import INSTR_SIZE
from repro.process import GuestProcess


def build_tiny_image(name="tiny"):
    builder = ImageBuilder(name)

    a = Assembler()
    a.mov_ri("rax", 7)
    a.ret()
    builder.add_isa_function("seven", a)

    def forty_two(ctx):
        return 42
    builder.add_hl_function("forty_two", forty_two, 0)

    builder.add_rodata("greeting", b"hello\x00")
    builder.add_data("counter", (5).to_bytes(8, "little"))
    builder.add_bss("buffer", 256)
    builder.add_data_pointer("fn_ptr", "seven")
    builder.add_pointer_table("handlers", ["seven", "forty_two"])
    return builder.build()


def test_section_layout_is_page_aligned():
    image = build_tiny_image()
    for section, offset, _size in image.section_layout():
        assert offset % PAGE_SIZE == 0


def test_symbols_present():
    image = build_tiny_image()
    assert image.symbol("seven").section == ".text"
    assert image.symbol("greeting").section == ".rodata"
    assert image.symbol("buffer").section == ".bss"
    with pytest.raises(SymbolNotFound):
        image.symbol("nope")


def test_load_and_call_isa_and_hl(kernel):
    proc = GuestProcess(kernel, "p")
    proc.load_image(build_tiny_image())
    assert proc.call_function("seven") == 7
    assert proc.call_function("forty_two") == 42


def test_load_applies_data_relocations(kernel):
    proc = GuestProcess(kernel, "p")
    loaded = proc.load_image(build_tiny_image())
    fn_ptr_addr = loaded.symbol_address("fn_ptr")
    target = proc.space.read_word(fn_ptr_addr, privileged=True)
    assert target == loaded.symbol_address("seven")
    handlers = loaded.symbol_address("handlers")
    assert proc.space.read_word(handlers + 8, privileged=True) == \
        loaded.symbol_address("forty_two")


def test_function_pointer_call_through_data(kernel):
    """Calling through a relocated pointer exercises the exact mechanism
    the sMVX relocator must keep working in the follower."""
    proc = GuestProcess(kernel, "p")
    loaded = proc.load_image(build_tiny_image())
    fn_ptr_addr = loaded.symbol_address("fn_ptr")
    target = proc.space.read_word(fn_ptr_addr, privileged=True)
    assert proc.guest_call(proc.main_thread(), target) == 7


def test_pie_load_at_two_bases_gives_same_behaviour(kernel):
    image = build_tiny_image()
    p1 = GuestProcess(kernel, "p1")
    p2 = GuestProcess(kernel, "p2")
    l1 = p1.load_image(image, base=0x5555_0000_0000)
    l2 = p2.load_image(image, base=0x1234_5600_0000)
    assert l1.base != l2.base
    assert p1.call_function("seven") == p2.call_function("seven") == 7
    assert p1.call_function("forty_two") == 42
    assert p2.call_function("forty_two") == 42


def test_text_pages_are_not_writable_by_guest(kernel):
    from repro.errors import SegmentationFault
    proc = GuestProcess(kernel, "p")
    loaded = proc.load_image(build_tiny_image())
    with pytest.raises(SegmentationFault):
        proc.space.write(loaded.symbol_address("seven"), b"\x00")


def test_unresolved_import_fails_loudly():
    builder = ImageBuilder("needy")
    builder.import_libc("write")

    def main(ctx):
        return 0
    builder.add_hl_function("main", main, 0)
    image = builder.build()
    space = AddressSpace()
    loader = Loader(space)
    with pytest.raises(ImageError):
        loader.load(image)


def test_plt_call_reaches_libc(kernel, process):
    builder = ImageBuilder("app")
    builder.import_libc("getpid", "strlen")
    builder.add_rodata("msg", b"four\x00")

    def main(ctx):
        return ctx.libc("strlen", ctx.symbol("msg"))
    builder.add_hl_function("main", main, 0)
    process.load_image(builder.build(), main=True)
    assert process.call_function("main") == 4


def test_isa_code_calls_plt(kernel, process):
    """An ISA function calling through the PLT — the path a ROP gadget
    chain uses to reach mkdir."""
    builder = ImageBuilder("app")
    builder.import_libc("getpid")
    a = Assembler()
    a.call("getpid@plt")
    a.ret()
    builder.add_isa_function("call_getpid", a)
    process.load_image(builder.build())
    assert process.call_function("call_getpid") == process.pid


def test_function_at_maps_addresses(kernel):
    proc = GuestProcess(kernel, "p")
    loaded = proc.load_image(build_tiny_image())
    addr = loaded.symbol_address("seven")
    found = proc.function_at(addr + INSTR_SIZE)
    assert found is not None
    assert found[1].name == "seven"
    assert proc.function_at(0xDEAD_BEEF_0000) is None


def test_got_patching_roundtrip(kernel, process):
    builder = ImageBuilder("app")
    builder.import_libc("getpid")

    def main(ctx):
        return ctx.libc("getpid")
    builder.add_hl_function("main", main, 0)
    loaded = process.load_image(builder.build())
    original = process.loader.read_got_slot(loaded, "getpid")
    assert original == process.resolve("getpid")
    # divert to another function, then restore
    other = process.resolve("strlen") if process.loader._exports.get(
        "strlen") else original
    old = process.loader.patch_got_slot(loaded, "getpid", other)
    assert old == original
    process.loader.patch_got_slot(loaded, "getpid", original)
    assert process.call_function("main") == process.pid


# -- profile tool ---------------------------------------------------------------

def test_profile_contains_sections_and_symbols():
    image = build_tiny_image()
    profile = generate_profile(image)
    for section in (".text", ".data", ".bss", ".plt", ".got.plt"):
        assert section in profile.sections
    assert "seven" in profile.symbols
    assert "forty_two" in profile.function_names()
    assert "greeting" not in profile.function_names()


def test_profile_roundtrip_through_tmp_file():
    kernel = Kernel()
    image = build_tiny_image()
    path = write_profile(kernel.vfs, image)
    assert path == "/tmp/tiny.profile"
    parsed = read_profile(kernel.vfs, path)
    original = generate_profile(image)
    assert parsed.sections == original.sections
    assert parsed.symbols == original.symbols


def test_profile_symbol_offset_matches_loader():
    kernel = Kernel()
    proc = GuestProcess(kernel, "p")
    image = build_tiny_image()
    loaded = proc.load_image(image)
    profile = generate_profile(image)
    assert (loaded.base + profile.symbol_offset_from_base("seven")
            == loaded.symbol_address("seven"))


def test_profile_parse_rejects_garbage():
    with pytest.raises(ImageError):
        BinaryProfile.parse("not a profile\n")
    with pytest.raises(ImageError):
        BinaryProfile.parse("")
