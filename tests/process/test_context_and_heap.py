"""Tests for the guest context, guest calls, the heap, and libc."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProtectionKeyFault
from repro.kernel.vfs import O_CREAT, O_RDONLY, O_WRONLY
from repro.loader import ImageBuilder
from repro.machine import PAGE_SIZE, PROT_RW, AddressSpace
from repro.machine.mpk import pkru_disable_access
from repro.process import GuestProcess, Heap, HeapCorruption, to_signed
from repro.process.heap import OutOfGuestMemory


def load_app(process, *hl_functions, imports=(), rodata=(), bss=()):
    builder = ImageBuilder("app")
    if imports:
        builder.import_libc(*imports)
    for name, fn, arity in hl_functions:
        builder.add_hl_function(name, fn, arity)
    for name, content in rodata:
        builder.add_rodata(name, content)
    for name, size in bss:
        builder.add_bss(name, size)
    return process.load_image(builder.build(), main=True)


# -- guest calls ------------------------------------------------------------------

def test_arguments_flow_through_registers(process):
    def add3(ctx, a, b, c):
        return a + b + c
    load_app(process, ("add3", add3, 3))
    assert process.call_function("add3", 10, 20, 30) == 60


def test_more_than_six_arguments_go_on_the_stack(process):
    def add8(ctx, *args):
        assert len(args) == 8
        return sum(args)
    load_app(process, ("add8", add8, 8))
    assert process.call_function("add8", 1, 2, 3, 4, 5, 6, 7, 8) == 36


def test_nested_guest_calls(process):
    def inner(ctx, x):
        return x * 2

    def outer(ctx, x):
        return ctx.call("inner", x + 1) + 100
    load_app(process, ("inner", inner, 1), ("outer", outer, 1))
    assert process.call_function("outer", 5) == 112


def test_negative_return_values_wrap_as_unsigned(process):
    def fail(ctx):
        return -1
    load_app(process, ("fail", fail, 0))
    result = process.call_function("fail")
    assert result == (1 << 64) - 1
    assert to_signed(result) == -1


def test_stack_alloc_below_return_address(process):
    captured = {}

    def framey(ctx):
        rsp_before = ctx.regs.get("rsp")
        buf = ctx.stack_alloc(64)
        captured["buf"] = buf
        captured["ret_slot"] = rsp_before
        ctx.write(buf, b"A" * 64)
        return ctx.read_byte(buf + 63)
    load_app(process, ("framey", framey, 0))
    assert process.call_function("framey") == ord("A")
    assert captured["buf"] + 64 == captured["ret_slot"]


def test_guest_memory_respects_pkru(process):
    region = process.space.mmap(None, PAGE_SIZE, prot=PROT_RW)
    process.space.pkey_mprotect(region, PAGE_SIZE, PROT_RW, pkey=4)

    def toucher(ctx, addr):
        return ctx.read_word(addr)
    load_app(process, ("toucher", toucher, 1))
    thread = process.main_thread()
    thread.state.pkru = pkru_disable_access(0, 4)
    with pytest.raises(ProtectionKeyFault):
        process.call_function("toucher", region)
    thread.state.pkru = 0
    assert process.call_function("toucher", region) == 0


def test_cstring_roundtrip_and_words(process):
    def roundtrip(ctx):
        buf = ctx.stack_alloc(64)
        ctx.write_cstring(buf, b"smvx")
        assert ctx.read_cstring(buf) == b"smvx"
        ctx.write_words(buf, [1, 2, 3])
        assert ctx.read_words(buf, 3) == [1, 2, 3]
        return 1
    load_app(process, ("roundtrip", roundtrip, 0))
    assert process.call_function("roundtrip") == 1


def test_compute_charges_advance_time(process):
    def burner(ctx):
        ctx.charge(1000)
        return 0
    load_app(process, ("burner", burner, 0))
    before = process.counter.total_ns
    clock_before = process.kernel.clock.monotonic_ns
    process.call_function("burner")
    assert process.counter.total_ns - before >= 1000
    assert process.kernel.clock.monotonic_ns > clock_before


def test_func_stack_tracked(process):
    depths = []

    def inner(ctx):
        depths.append(list(ctx.thread.func_stack))
        return 0

    def outer(ctx):
        return ctx.call("inner")
    load_app(process, ("inner", inner, 0), ("outer", outer, 0))
    process.call_function("outer")
    assert depths == [["outer", "inner"]]


# -- libc through the PLT ----------------------------------------------------------

def test_libc_file_io(process):
    def writer(ctx):
        path = ctx.stack_alloc(32)
        ctx.write_cstring(path, b"/tmp/out.txt")
        fd = to_signed(ctx.libc("open", path, O_WRONLY | O_CREAT))
        assert fd >= 0
        buf = ctx.stack_alloc(16)
        ctx.write(buf, b"payload!")
        n = to_signed(ctx.libc("write", fd, buf, 8))
        ctx.libc("close", fd)
        return n
    load_app(process, ("writer", writer, 0),
             imports=("open", "write", "close"))
    assert process.call_function("writer") == 8
    assert process.kernel.vfs.read_file("/tmp/out.txt") == b"payload!"


def test_libc_errno_on_failure(process):
    from repro.kernel.errno_codes import Errno

    def opener(ctx):
        path = ctx.stack_alloc(32)
        ctx.write_cstring(path, b"/missing")
        result = to_signed(ctx.libc("open", path, O_RDONLY))
        assert result == -1
        return ctx.errno
    load_app(process, ("opener", opener, 0), imports=("open",))
    assert process.call_function("opener") == Errno.ENOENT


def test_libc_malloc_free_does_not_syscall(process):
    def churner(ctx):
        ptr = ctx.libc("malloc", 100)
        ctx.libc("free", ptr)
        return ptr
    load_app(process, ("churner", churner, 0), imports=("malloc", "free"))
    syscalls_before = process.kernel.syscall_count(process.pid)
    assert process.call_function("churner") != 0
    assert process.kernel.syscall_count(process.pid) == syscalls_before
    assert process.libc_calls_total == 2


def test_libc_string_functions(process):
    def stringy(ctx):
        buf = ctx.stack_alloc(64)
        ctx.write_cstring(buf, b"Content-Length: 42")
        n = ctx.libc("strlen", buf)
        assert n == 18
        colon = ctx.libc("strchr", buf, ord(":"))
        assert colon == buf + 14
        value = ctx.libc("atoi", colon + 1)
        return value
    load_app(process, ("stringy", stringy, 0),
             imports=("strlen", "strchr", "atoi"))
    assert process.call_function("stringy") == 42


def test_libc_atoi_negative(process):
    def neg(ctx):
        buf = ctx.stack_alloc(16)
        ctx.write_cstring(buf, b"-123")
        return ctx.libc("atoi", buf)
    load_app(process, ("neg", neg, 0), imports=("atoi",))
    assert to_signed(process.call_function("neg")) == -123


def test_libc_localtime_r_packs_struct(process):
    from repro.kernel.clock import TmStruct

    def timer(ctx):
        timep = ctx.stack_alloc(8)
        result = ctx.stack_alloc(72)
        ctx.write_word(timep, 1733097600)   # 2024-12-02 00:00:00 UTC
        returned = ctx.libc("localtime_r", timep, result)
        assert returned == result
        tm = TmStruct.unpack(ctx.read(result, 72))
        assert (tm.tm_year, tm.tm_mon, tm.tm_mday) == (124, 11, 2)
        return tm.tm_wday
    load_app(process, ("timer", timer, 0), imports=("localtime_r",))
    assert process.call_function("timer") == 1  # Monday (C-style)


def test_libc_call_statistics(process):
    def chatty(ctx):
        ctx.libc("getpid")
        ctx.libc("getpid")
        ctx.libc("time", 0)
        return 0
    load_app(process, ("chatty", chatty, 0), imports=("getpid", "time"))
    process.call_function("chatty")
    assert process.libc_call_counts["getpid"] == 2
    assert process.libc_call_counts["time"] == 1
    # getpid syscalls twice; time is vDSO-style (no kernel entry)
    assert process.kernel.syscall_breakdown(process.pid) == {"getpid": 2}
    assert process.libc_calls_in_subtree["chatty"] == 3
    assert process.libc_syscall_ratio() == pytest.approx(1.5)


# -- heap ---------------------------------------------------------------------------

@pytest.fixture
def heap():
    space = AddressSpace()
    base = space.mmap(None, 64 * PAGE_SIZE)
    return Heap(space, base, 64 * PAGE_SIZE)


def test_heap_allocations_are_aligned_and_disjoint(heap):
    addresses = [heap.malloc(n) for n in (1, 8, 24, 100, 4096)]
    assert all(addr % 8 == 0 for addr in addresses)
    assert len(set(addresses)) == len(addresses)


def test_heap_free_and_reuse(heap):
    a = heap.malloc(64)
    heap.free(a)
    assert heap.malloc(64) == a


def test_heap_double_free_detected(heap):
    a = heap.malloc(16)
    heap.free(a)
    with pytest.raises(HeapCorruption):
        heap.free(a)


def test_heap_header_smash_detected(heap):
    a = heap.malloc(16)
    heap.space.write_word(a - 8, 0xBAD, privileged=True)
    with pytest.raises(HeapCorruption):
        heap.free(a)


def test_heap_realloc_preserves_content(heap):
    a = heap.malloc(16)
    heap.space.write(a, b"0123456789abcdef", privileged=True)
    b = heap.realloc(a, 256)
    assert heap.space.read(b, 16, privileged=True) == b"0123456789abcdef"


def test_heap_exhaustion(heap):
    with pytest.raises(OutOfGuestMemory):
        heap.malloc(65 * PAGE_SIZE)


def test_heap_calloc_zeroes(heap):
    a = heap.malloc(32)
    heap.space.write(a, b"\xFF" * 32, privileged=True)
    heap.free(a)
    b = heap.calloc(4, 8)
    assert heap.space.read(b, 32, privileged=True) == b"\x00" * 32


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=2048), min_size=1,
                max_size=60))
def test_heap_property_no_overlap(sizes):
    """Live allocations never overlap, whatever the malloc/free pattern."""
    space = AddressSpace()
    base = space.mmap(None, 1024 * PAGE_SIZE)
    heap = Heap(space, base, 1024 * PAGE_SIZE)
    live = {}
    for index, size in enumerate(sizes):
        addr = heap.malloc(size)
        live[addr] = size
        if index % 3 == 2:                 # free every third allocation
            victim = next(iter(live))
            heap.free(victim)
            del live[victim]
    spans = sorted((addr, addr + size) for addr, size in live.items())
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2, "allocations overlap"


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=10_000))
def test_heap_property_accounting(nbytes):
    space = AddressSpace()
    base = space.mmap(None, 128 * PAGE_SIZE)
    heap = Heap(space, base, 128 * PAGE_SIZE)
    addr = heap.malloc(nbytes)
    assert heap.allocated_bytes >= nbytes
    heap.free(addr)
    assert heap.allocated_bytes == 0
