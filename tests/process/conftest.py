"""Fixtures: a kernel + a process with libc loaded."""

import pytest

from repro.kernel import Kernel
from repro.libc import build_libc_image
from repro.process import GuestProcess


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def process(kernel):
    proc = GuestProcess(kernel, "testproc")
    proc.load_image(build_libc_image(), tag="libc")
    return proc
