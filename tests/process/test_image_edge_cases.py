"""Edge cases in image building and loading."""

import pytest

from repro.errors import ImageError, SymbolNotFound
from repro.kernel import Kernel
from repro.libc import build_libc_image
from repro.loader import ImageBuilder
from repro.loader.image import PLT_ENTRY_SIZE, SECTION_ORDER
from repro.machine import Assembler, Instruction, Op, PAGE_SIZE
from repro.machine.isa import INSTR_SIZE
from repro.process import GuestProcess


def test_duplicate_data_symbol_rejected():
    builder = ImageBuilder("dup")
    builder.add_data("x", b"a")
    builder.add_data("x", b"b")
    with pytest.raises(ImageError):
        builder.build()


def test_hl_function_minimum_size_enforced():
    builder = ImageBuilder("tiny")
    with pytest.raises(ImageError):
        builder.add_hl_function("f", lambda ctx: 0, 0, size=INSTR_SIZE)


def test_pad_to_is_a_minimum_not_a_cap():
    builder = ImageBuilder("grows")
    a = Assembler()
    for _ in range(10):
        a.nop()
    a.ret()
    builder.add_isa_function("big", a, pad_to=2 * INSTR_SIZE)
    image = builder.build()
    assert image.symbol("big").size == 11 * INSTR_SIZE   # grew to fit
    small = ImageBuilder("padded")
    b = Assembler()
    b.ret()
    small.add_isa_function("tiny", b, pad_to=8 * INSTR_SIZE)
    assert small.build().symbol("tiny").size == 8 * INSTR_SIZE


def test_section_order_is_canonical():
    assert SECTION_ORDER == (".text", ".plt", ".rodata", ".got.plt",
                             ".data", ".bss")
    builder = ImageBuilder("ordered")
    builder.add_hl_function("f", lambda ctx: 0, 0)
    image = builder.build()
    offsets = [offset for _name, offset, _size in image.section_layout()]
    assert offsets == sorted(offsets)


def test_plt_entries_are_jmp_m():
    builder = ImageBuilder("plt")
    builder.import_libc("read", "write")
    builder.add_hl_function("f", lambda ctx: 0, 0)
    image = builder.build()
    plt = image.sections[".plt"]
    assert len(plt) == 2 * PLT_ENTRY_SIZE
    first = Instruction.decode(plt[:INSTR_SIZE])
    assert first.op is Op.JMP_M
    second = Instruction.decode(plt[PLT_ENTRY_SIZE:
                                    PLT_ENTRY_SIZE + INSTR_SIZE])
    assert second.op is Op.JMP_M
    # each entry's displacement targets its own GOT slot: they differ by
    # 8 (slot stride) minus the entry stride
    assert second.imm == first.imm + 8 - PLT_ENTRY_SIZE


def test_import_deduplication():
    builder = ImageBuilder("dedup")
    builder.import_libc("read", "read", "write", "read")
    builder.add_hl_function("f", lambda ctx: 0, 0)
    image = builder.build()
    assert image.plt_imports == ["read", "write"]


def test_hl_sites_match_entry_offsets():
    builder = ImageBuilder("sites")
    builder.add_hl_function("a", lambda ctx: 1, 0)
    builder.add_hl_function("b", lambda ctx: 2, 0)
    image = builder.build()
    assert len(image.hl_sites) == 2
    for (offset, local_index), name in zip(image.hl_sites, ("a", "b")):
        assert image.symbol(name).offset == offset
        instr = Instruction.decode(
            image.sections[".text"][offset:offset + INSTR_SIZE])
        assert instr.op is Op.HLCALL
        assert instr.imm == local_index


def test_loader_patches_hl_indices_globally():
    kernel = Kernel()
    proc = GuestProcess(kernel, "p")
    proc.load_image(build_libc_image(), tag="libc")   # many HL functions

    builder = ImageBuilder("second")
    builder.add_hl_function("mine", lambda ctx: 1234, 0)
    loaded = proc.load_image(builder.build())
    entry = loaded.symbol_address("mine")
    raw = proc.space.read(entry, INSTR_SIZE, privileged=True)
    instr = Instruction.decode(raw)
    # the local index 0 was rebased past libc's table
    assert instr.imm >= 40
    assert proc.call_function("mine") == 1234


def test_relocation_against_unknown_symbol_fails():
    builder = ImageBuilder("badrel")
    builder.add_hl_function("f", lambda ctx: 0, 0)
    builder.add_data_pointer("p", "ghost")
    image = builder.build()
    proc = GuestProcess(Kernel(), "p")
    with pytest.raises(ImageError):
        proc.load_image(image)


def test_bss_is_zero_and_writable():
    builder = ImageBuilder("bss")
    builder.add_hl_function("f", lambda ctx: 0, 0)
    builder.add_bss("arena", 3 * PAGE_SIZE)
    proc = GuestProcess(Kernel(), "p")
    loaded = proc.load_image(builder.build())
    arena = loaded.symbol_address("arena")
    assert proc.space.read(arena, 64, privileged=True) == b"\x00" * 64
    proc.space.write(arena, b"live")      # RW as guest
    assert proc.space.read(arena, 4) == b"live"


def test_rodata_not_writable_by_guest():
    from repro.errors import SegmentationFault
    builder = ImageBuilder("ro")
    builder.add_hl_function("f", lambda ctx: 0, 0)
    builder.add_rodata("constant", b"fixed")
    proc = GuestProcess(Kernel(), "p")
    loaded = proc.load_image(builder.build())
    with pytest.raises(SegmentationFault):
        proc.space.write(loaded.symbol_address("constant"), b"x")


def test_shifted_copy_view_symbol_math():
    builder = ImageBuilder("shifty")
    builder.add_hl_function("f", lambda ctx: 7, 0)
    proc = GuestProcess(Kernel(), "p")
    loaded = proc.load_image(builder.build())
    copy = proc.loader.register_shifted_copy(loaded, 0x1000_0000, "copy")
    assert copy.symbol_address("f") == loaded.symbol_address("f") \
        + 0x1000_0000
    assert copy.tag == "copy"
    proc.loader.unregister(copy)
    assert copy not in proc.loader.images


def test_function_at_boundaries():
    builder = ImageBuilder("bounds")
    builder.add_hl_function("first", lambda ctx: 0, 0, size=64)
    builder.add_hl_function("second", lambda ctx: 0, 0, size=64)
    proc = GuestProcess(Kernel(), "p")
    loaded = proc.load_image(builder.build())
    first = loaded.symbol_address("first")
    assert loaded.function_at(first).name == "first"
    assert loaded.function_at(first + 63).name == "first"
    assert loaded.function_at(first + 64).name == "second"
    assert loaded.function_at(first - 1) is None
