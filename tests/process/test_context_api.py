"""Coverage of the remaining GuestContext / GuestProcess API surface."""

import pytest

from repro.errors import MachineFault
from repro.kernel import Kernel
from repro.libc import build_libc_image
from repro.loader import ImageBuilder
from repro.machine.cpu import HOST_RETURN_ADDRESS
from repro.process import GuestProcess, to_signed, to_unsigned


@pytest.fixture
def process():
    proc = GuestProcess(Kernel(), "ctxapi")
    proc.load_image(build_libc_image(), tag="libc")
    return proc


def install(process, *functions, rodata=()):
    builder = ImageBuilder("ctxapp")
    builder.import_libc("strlen")
    for name, fn, arity in functions:
        builder.add_hl_function(name, fn, arity)
    for name, content in rodata:
        builder.add_rodata(name, content)
    return process.load_image(builder.build(), main=True)


def test_signed_helpers_roundtrip():
    assert to_signed(to_unsigned(-1)) == -1
    assert to_signed(5) == 5
    assert to_unsigned(-2) == (1 << 64) - 2
    assert to_signed((1 << 63)) == -(1 << 63)


def test_push_and_guest_stack_discipline(process):
    def pusher(ctx):
        before = ctx.regs.get("rsp")
        ctx.push(0xCAFE)
        after = ctx.regs.get("rsp")
        assert before - after == 8
        assert ctx.read_word(after) == 0xCAFE
        return 1
    install(process, ("pusher", pusher, 0))
    assert process.call_function("pusher") == 1


def test_scratch_alias(process):
    def user(ctx):
        a = ctx.scratch(32)
        b = ctx.stack_alloc(32)
        assert a - b == 32
        return 1
    install(process, ("user", user, 0))
    assert process.call_function("user") == 1


def test_write_words_masks_to_64_bits(process):
    def writer(ctx):
        buf = ctx.stack_alloc(16)
        ctx.write_words(buf, [-1, 1 << 65])
        assert ctx.read_word(buf) == (1 << 64) - 1
        assert ctx.read_word(buf + 8) == 0
        return 1
    install(process, ("writer", writer, 0))
    assert process.call_function("writer") == 1


def test_symbol_falls_back_to_global_exports(process):
    def resolver(ctx):
        # "strlen" lives in libc, not this image: global fallback
        return ctx.symbol("strlen")
    install(process, ("resolver", resolver, 0))
    assert process.call_function("resolver") == process.resolve("strlen")


def test_ctx_fault_raises_machine_fault(process):
    def aborter(ctx):
        ctx.fault("guest assertion failed")
    install(process, ("aborter", aborter, 0))
    with pytest.raises(MachineFault, match="guest assertion"):
        process.call_function("aborter")


def test_guest_call_masks_arguments(process):
    def echo(ctx, a):
        return a
    install(process, ("echo", echo, 1))
    assert process.call_function("echo", -1) == (1 << 64) - 1


def test_deep_nested_guest_calls_use_unique_sentinels(process):
    def leaf(ctx, n):
        return n

    def recurse(ctx, n):
        if to_signed(n) <= 0:
            return ctx.call("leaf", 99)
        return ctx.call("recurse", n - 1) + 1
    install(process, ("leaf", leaf, 1), ("recurse", recurse, 1))
    assert process.call_function("recurse", 20) == 119


def test_call_function_explicit_thread(process):
    def whoami(ctx):
        return 1 if ctx.thread.name == "aux" else 0
    install(process, ("whoami", whoami, 0))
    process.main_thread()                  # materialize "main" first
    aux = process.create_thread("aux")
    assert process.call_function("whoami", thread=aux) == 1
    assert process.call_function("whoami") == 0


def test_total_cpu_includes_retired_followers(process):
    base = process.total_cpu_ns()
    process._retired_follower_ns += 1234.0
    assert process.total_cpu_ns() == pytest.approx(base + 1234.0)


def test_host_return_sentinel_not_mapped(process):
    assert not process.space.is_mapped(HOST_RETURN_ADDRESS)


def test_resident_kb(process):
    assert process.resident_kb() == process.space.resident_bytes() / 1024


def test_read_words_and_cstring_limits(process):
    from repro.errors import SegmentationFault

    def prober(ctx):
        buf = ctx.stack_alloc(32)
        ctx.write(buf, b"\xFF" * 32)       # no NUL anywhere nearby is fine
        ctx.write_cstring(buf, b"ok")
        assert ctx.read_cstring(buf) == b"ok"
        return 1
    install(process, ("prober", prober, 0))
    assert process.call_function("prober") == 1
