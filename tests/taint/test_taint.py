"""Tests for the taint engine, the report pipeline, and auth-diff."""

import pytest

from repro.apps.minx import MinxServer
from repro.kernel import Kernel
from repro.machine import AddressSpace, PAGE_SIZE
from repro.taint import TaintEngine, first_divergent_function, trace_diff
from repro.taint.authdiff import collect_trace
from repro.taint.report import build_report
from repro.workloads import ApacheBench, UrlFuzzer


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def server(kernel):
    server = MinxServer(kernel)
    server.start()
    return server


def send_and_pump(kernel, server, raw: bytes) -> bytes:
    sock = kernel.network.connect(server.port)
    sock.send(raw)
    server.pump()
    out = b""
    while True:
        chunk = sock.recv_wait(8192)
        if isinstance(chunk, int) or chunk == b"":
            break
        out += chunk
    sock.close()
    server.pump()
    return out


# -- engine basics ------------------------------------------------------------------

def test_socket_input_is_taint_source(kernel, server):
    engine = TaintEngine(server.process).attach()
    send_and_pump(kernel, server,
                  b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
    engine.detach()
    assert engine.source_bytes > 0
    assert engine.tainted_count() > 0


def test_tainted_reads_record_app_functions(kernel, server):
    engine = TaintEngine(server.process).attach()
    send_and_pump(kernel, server,
                  b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
    engine.detach()
    report = build_report(engine, server.loaded)
    # the request path functions that touch network bytes
    assert "minx_http_process_request_line" in report.sensitive_functions
    assert "minx_http_wait_request_handler" in report.sensitive_functions
    # functions that never see input data are not flagged
    assert "minx_event_accept" not in report.sensitive_functions
    assert "minx_main" not in report.sensitive_functions


def test_report_filters_to_target_text(kernel, server):
    engine = TaintEngine(server.process).attach()
    send_and_pump(kernel, server,
                  b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
    engine.detach()
    # libc touches tainted bytes too (strlen etc.) but the report keeps
    # only the application's .text, like the paper's filtering step
    report = build_report(engine, server.loaded)
    assert all(name.startswith("minx") for name in
               report.sensitive_functions)


def test_propagation_through_copy():
    """memcpy-style: a copy of tainted bytes is tainted at the new site."""
    from repro.machine.costs import CycleCounter

    class Dummy:
        pass

    from repro.kernel import Kernel as K
    from repro.process import GuestProcess
    kernel = K()
    proc = GuestProcess(kernel, "t")
    engine = TaintEngine(proc).attach()
    src = proc.space.mmap(None, PAGE_SIZE)
    dst = proc.space.mmap(None, PAGE_SIZE)
    # mark source bytes tainted via the source hook
    proc.space.write(src, b"tainted-token", privileged=True)
    engine._on_io(proc, src, 13, "socket")
    # a guest-level copy: read then write the same bytes
    data = proc.space.read(src, 13)
    proc.space.write(dst, data)
    assert engine.is_tainted(dst, 13)
    engine.detach()


def test_propagation_through_substring():
    from repro.kernel import Kernel as K
    from repro.process import GuestProcess
    kernel = K()
    proc = GuestProcess(kernel, "t")
    engine = TaintEngine(proc).attach()
    src = proc.space.mmap(None, PAGE_SIZE)
    dst = proc.space.mmap(None, PAGE_SIZE)
    proc.space.write(src, b"GET /secret/path HTTP/1.1", privileged=True)
    engine._on_io(proc, src, 26, "socket")
    data = proc.space.read(src, 26)
    proc.space.write(dst, data[4:16])        # extract the URI token
    assert engine.is_tainted(dst, 12)
    engine.detach()


def test_overwrite_clears_taint():
    from repro.kernel import Kernel as K
    from repro.process import GuestProcess
    proc = GuestProcess(K(), "t")
    engine = TaintEngine(proc).attach()
    buf = proc.space.mmap(None, PAGE_SIZE)
    engine._on_io(proc, buf, 8, "socket")
    assert engine.is_tainted(buf, 8)
    proc.space.write(buf, b"\x00" * 8)       # clean constant data
    assert not engine.is_tainted(buf, 8)
    engine.detach()


# -- coverage growth (Figure 9 shape) -------------------------------------------------

def test_fuzzing_finds_more_functions_than_ab(kernel, server):
    engine = TaintEngine(server.process).attach()
    ApacheBench(kernel, server).run(5)
    ab_count = build_report(engine, server.loaded).count
    assert ab_count >= 3

    fuzzer = UrlFuzzer(seed=7)
    for method, path, body in fuzzer.batch(40):
        raw = fuzzer.request_bytes(method, path, body)
        send_and_pump(kernel, server, raw)
    fuzz_count = build_report(engine, server.loaded).count
    engine.detach()
    assert fuzz_count > ab_count             # coverage grows with fuzzing


# -- auth discovery --------------------------------------------------------------------

def test_auth_diff_finds_auth_function(kernel, server):
    def login(secret):
        def do():
            send_and_pump(
                kernel, server,
                b"GET /admin HTTP/1.1\r\nHost: x\r\n"
                b"Authorization: " + secret + b"\r\n\r\n")
        return do

    good = collect_trace(server.process, login(b"secret123"))
    bad = collect_trace(server.process, login(b"wrong-pass"))
    assert trace_diff(good, bad)             # the traces do diverge
    assert first_divergent_function(good, bad) == "minx_http_auth_basic"


def test_auth_endpoint_behaviour(kernel, server):
    ok = send_and_pump(kernel, server,
                       b"GET /admin HTTP/1.1\r\nHost: x\r\n"
                       b"Authorization: secret123\r\n\r\n")
    assert ok.startswith(b"HTTP/1.1 200")
    assert b"minx admin" in ok
    denied = send_and_pump(kernel, server,
                           b"GET /admin HTTP/1.1\r\nHost: x\r\n\r\n")
    assert denied.startswith(b"HTTP/1.1 403")


def test_trace_diff_identical_traces():
    trace = [(1, "a"), (2, "b")]
    assert trace_diff(trace, trace) == []
    assert first_divergent_function(trace, trace) is None


def test_littled_taint_candidates(kernel):
    """The taint pipeline works on the second server too: littled's
    request-path functions are flagged, its init is not."""
    from repro.apps.littled import LittledServer
    server = LittledServer(kernel, port=8099)
    server.start()
    engine = TaintEngine(server.process).attach()
    ApacheBench(kernel, server).run(5)
    engine.detach()
    report = build_report(engine, server.loaded)
    assert "littled_http_request_parse" in report.sensitive_functions
    assert "littled_main" not in report.sensitive_functions


def test_report_dump_format(kernel, server):
    engine = TaintEngine(server.process).attach()
    ApacheBench(kernel, server).run(3)
    engine.detach()
    report = build_report(engine, server.loaded)
    dump = report.dump_function_names()
    assert dump.startswith("# sensitive-function candidates for minx")
    for name in report.sensitive_functions:
        assert name in dump
