"""Internals of the taint engine and auth-diff helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel import Kernel
from repro.machine import PAGE_SIZE
from repro.process import GuestProcess
from repro.taint import TaintEngine, first_divergent_function, trace_diff
from repro.taint.engine import _MAX_MATCH_LEN, _RECENT_WINDOW


@pytest.fixture
def rig():
    proc = GuestProcess(Kernel(), "ti")
    engine = TaintEngine(proc).attach()
    yield proc, engine
    engine.detach()


def test_recent_window_is_bounded(rig):
    proc, engine = rig
    src = proc.space.mmap(None, PAGE_SIZE)
    engine._on_io(proc, src, 256, "socket")
    for _ in range(_RECENT_WINDOW * 2):
        proc.space.read(src, 16)
    assert len(engine._recent) <= _RECENT_WINDOW


def test_giant_accesses_skipped(rig):
    proc, engine = rig
    big = proc.space.mmap(None, 8 * PAGE_SIZE)
    engine._on_io(proc, big, _MAX_MATCH_LEN + 1, "socket")
    # reading more than the match cap doesn't enter the window
    proc.space.read(big, _MAX_MATCH_LEN + 1)
    assert not engine._recent


def test_non_socket_io_not_a_source(rig):
    proc, engine = rig
    buf = proc.space.mmap(None, PAGE_SIZE)
    engine._on_io(proc, buf, 32, "file")
    assert engine.tainted_count() == 0


def test_other_process_io_ignored(rig):
    proc, engine = rig
    other = GuestProcess(proc.kernel, "other")
    buf = other.space.mmap(None, PAGE_SIZE)
    engine._on_io(other, buf, 32, "socket")
    assert engine.tainted_count() == 0


def test_clean_write_does_not_propagate(rig):
    proc, engine = rig
    src = proc.space.mmap(None, PAGE_SIZE)
    dst = proc.space.mmap(None, PAGE_SIZE)
    proc.space.write(src, b"tainted-bytes!!!", privileged=True)
    engine._on_io(proc, src, 16, "socket")
    proc.space.read(src, 16)
    proc.space.write(dst, b"unrelated-cnsts!")     # different content
    assert not engine.is_tainted(dst, 16)


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=4, max_size=64),
       st.integers(min_value=0, max_value=60))
def test_property_copy_always_propagates(data, offset):
    """Any full copy of a tainted read is tainted, whatever the bytes."""
    proc = GuestProcess(Kernel(), "tp")
    engine = TaintEngine(proc).attach()
    try:
        src = proc.space.mmap(None, PAGE_SIZE)
        dst = proc.space.mmap(None, PAGE_SIZE)
        proc.space.write(src, data, privileged=True)
        engine._on_io(proc, src, len(data), "socket")
        copied = proc.space.read(src, len(data))
        proc.space.write(dst + (offset & ~7), copied)
        assert engine.is_tainted(dst + (offset & ~7), len(data))
    finally:
        engine.detach()


# -- trace diff --------------------------------------------------------------------

def test_trace_diff_positions():
    a = [(1, "m"), (2, "x"), (2, "y")]
    b = [(1, "m"), (2, "x"), (2, "z"), (2, "w")]
    diffs = trace_diff(a, b)
    assert diffs[0][0] == 2
    assert diffs[0][1] == (2, "y") and diffs[0][2] == (2, "z")
    assert diffs[-1][1] == (0, "<end>")


def test_first_divergent_walks_to_enclosing_frame():
    success = [(1, "main"), (2, "auth"), (3, "strcmp"), (3, "grant")]
    failure = [(1, "main"), (2, "auth"), (3, "strcmp"), (3, "deny")]
    assert first_divergent_function(success, failure) == "auth"


def test_first_divergent_at_root():
    assert first_divergent_function([(1, "a")], [(1, "b")]) == "a"
    assert first_divergent_function([], []) is None


def test_first_divergent_on_truncated_trace():
    success = [(1, "main"), (2, "work")]
    failure = [(1, "main")]
    assert first_divergent_function(success, failure) == "main"


def test_record_site_tolerates_only_missing_symbols(rig):
    """Regression: _record_site used to swallow *every* exception; only
    SymbolNotFound (HL-only frames with no load address) is benign."""
    from types import SimpleNamespace

    proc, engine = rig
    proc.active_thread = SimpleNamespace(
        func_stack=["hl_only_frame"])
    try:
        engine._record_site()            # no symbol: name still recorded
        assert "hl_only_frame" in engine.site_names

        real_resolve = proc.resolve
        proc.resolve = lambda name: (_ for _ in ()).throw(
            RuntimeError("broken resolver"))
        with pytest.raises(RuntimeError, match="broken resolver"):
            engine._record_site()        # real faults must surface
        proc.resolve = real_resolve
    finally:
        proc.active_thread = None
