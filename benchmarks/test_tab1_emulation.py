"""Table 1: libc calls by emulation requirement.

Paper: three categories — return-value-only (open, close, shutdown,
write, writev, epoll_ctl, setsockopt), return-value + argument-buffer
(sendfile, stat, read, fstat, gettimeofday, accept4, recv, getsockopt,
localtime_r), and special (ioctl, epoll_wait, epoll_pwait) — and "the
sMVX monitor simulates 35 libc library calls" in total.

This benchmark checks our emulation table covers the paper's list
name-for-name, prints the regenerated table, and *exercises* one
representative call of each category through a live protected region,
verifying the monitor performed the right kind of emulation.
"""

import pytest

from repro.core import build_smvx_stub_image, attach_smvx, AlarmLog
from repro.kernel import Kernel
from repro.kernel.vfs import O_RDONLY
from repro.libc import (
    Category,
    EMULATION_SPECS,
    LIBC_FUNCTIONS,
    PAPER_TABLE1,
    build_libc_image,
)
from repro.libc.categories import category_of
from repro.loader import ImageBuilder
from repro.process import GuestProcess, to_signed

from conftest import print_table


def test_tab1_report():
    rows = []
    for category in (Category.RETVAL_ONLY, Category.RETVAL_AND_BUFFER,
                     Category.SPECIAL):
        ours = sorted(name for name, spec in EMULATION_SPECS.items()
                      if spec.category is category)
        paper = PAPER_TABLE1[category]
        rows.append((category.name, ", ".join(paper), ", ".join(ours)))
    print_table("Table 1 — libc emulation categories (paper vs ours)",
                ("category", "paper", "implemented"), rows)

    for category, names in PAPER_TABLE1.items():
        for name in names:
            assert name in EMULATION_SPECS, f"{name} missing"
            assert EMULATION_SPECS[name].category is category, \
                f"{name}: wrong category"

    # "the sMVX monitor simulates 35 libc library calls"
    total = len(LIBC_FUNCTIONS)
    print(f"\nsimulated libc calls: {total} (paper: 35)")
    assert total >= 35


def test_tab1_errno_required_everywhere():
    """All three emulated categories also require errno emulation."""
    for name, spec in EMULATION_SPECS.items():
        if spec.category in (Category.RETVAL_ONLY,
                             Category.RETVAL_AND_BUFFER, Category.SPECIAL):
            # representation check: these specs drive errno transfer in
            # the monitor (LibcResult always carries errno)
            assert category_of(name) is spec.category


@pytest.fixture
def emulation_process():
    kernel = Kernel()
    kernel.vfs.write_file("/etc/data.bin", b"D" * 64)
    proc = GuestProcess(kernel, "emu")
    proc.load_image(build_libc_image(), tag="libc")
    proc.load_image(build_smvx_stub_image(), tag="libsmvx")

    def category1(ctx):                    # write: retval only
        path = ctx.stack_alloc(32)
        ctx.write_cstring(path, b"/tmp/emu.out")
        from repro.kernel.vfs import O_CREAT, O_WRONLY
        fd = to_signed(ctx.libc("open", path, O_WRONLY | O_CREAT))
        buf = ctx.stack_alloc(16)
        ctx.write(buf, b"once")
        n = to_signed(ctx.libc("write", fd, buf, 4))
        ctx.libc("close", fd)
        return n

    def category2(ctx):                    # read: retval + buffer
        path = ctx.stack_alloc(32)
        ctx.write_cstring(path, b"/etc/data.bin")
        fd = to_signed(ctx.libc("open", path, O_RDONLY))
        buf = ctx.stack_alloc(64)
        n = to_signed(ctx.libc("read", fd, buf, 64))
        ctx.libc("close", fd)
        return ctx.read_byte(buf) + n      # uses the emulated buffer

    def category3(ctx):                    # ioctl: special
        from repro.kernel.kernel import Kernel as K
        path = ctx.stack_alloc(32)
        arg = ctx.stack_alloc(8)
        listen = to_signed(ctx.libc("listen_on", 9999, 4))
        rc = to_signed(ctx.libc("ioctl", listen, K.FIONBIO, arg))
        ctx.libc("close", listen)
        return rc + 100

    builder = ImageBuilder("emuapp")
    builder.import_libc("mvx_init", "mvx_start", "mvx_end", "open",
                        "close", "read", "write", "listen_on", "ioctl")
    builder.add_hl_function("category1", category1, 0,
                            calls=("open", "write", "close"))
    builder.add_hl_function("category2", category2, 0,
                            calls=("open", "read", "close"))
    builder.add_hl_function("category3", category3, 0,
                            calls=("listen_on", "ioctl", "close"))
    target = proc.load_image(builder.build(), main=True)
    alarms = AlarmLog()
    monitor = attach_smvx(proc, target, alarm_log=alarms)
    return proc, monitor, alarms


@pytest.mark.parametrize("func,expected", [
    ("category1", 4), ("category2", ord("D") + 64), ("category3", 100)])
def test_tab1_each_category_through_live_region(emulation_process, func,
                                                expected):
    proc, monitor, alarms = emulation_process
    thread = proc.main_thread()
    monitor.region_start(thread, func, [])
    result = to_signed(proc.guest_call(thread, proc.resolve(func)))
    monitor.region_end(thread)
    assert result == expected
    assert not alarms.triggered
    assert monitor.stats.emulated_calls > 0


def test_tab1_category1_no_duplicate_side_effects(emulation_process):
    """The retval-only contract: the follower must not re-execute the
    write — the file receives the data exactly once."""
    proc, monitor, _ = emulation_process
    thread = proc.main_thread()
    monitor.region_start(thread, "category1", [])
    proc.guest_call(thread, proc.resolve("category1"))
    monitor.region_end(thread)
    assert proc.kernel.vfs.read_file("/tmp/emu.out") == b"once"


def test_tab1_classification_benchmark(benchmark):
    """Micro-benchmark of the monitor's spec lookup (hot path)."""
    from repro.libc.categories import spec_for
    names = list(EMULATION_SPECS)

    def classify_all():
        for name in names:
            spec_for(name)
    benchmark(classify_all)
