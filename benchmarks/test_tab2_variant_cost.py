"""Table 2: mvx_start() overheads on Lighttpd.

Paper values (microseconds):

    Process duplication (copy+move)                 14.7
    Data pointer scan overhead                     320.8
    Heap pointer scan overhead                  131624
    Thread creation with clone() (empty function)    9.5
    fork() overhead (empty main() function)        640
    fork() overhead (during Lighttpd initialization) 697

We warm littled's heap to a lighttpd-sized working set, enter one
protected region rooted at ``server_main_loop``, and read the variant
report's breakdown; the clone/fork rows use the kernel's task cost model
directly, including a fork issued mid-initialization with the image
mapped (the paper's third fork row).
"""

import pytest

from repro.kernel import Kernel
from repro.machine.costs import DEFAULT_COSTS
from repro.process import GuestProcess

from conftest import make_littled, print_table

PAPER_US = {
    "process duplication (copy+move)": 14.7,
    "data pointer scan": 320.8,
    "heap pointer scan": 131_624.0,
    "clone() thread (empty function)": 9.5,
    "fork() (empty main())": 640.0,
    "fork() (during littled initialization)": 697.0,
}

#: lighttpd's measured heap working set implied by the paper's scan time
#: (131.6 ms at ~550 ns/slot -> ~1.9 MB of 8-byte slots).
WARM_HEAP_BYTES = 1_900_000


@pytest.fixture(scope="module")
def breakdown():
    kernel, server = make_littled(
        smvx=True, protect="server_main_loop", heap_pages=640)
    # warm the heap to lighttpd's working set
    chunks = [server.process.heap.malloc(4096)
              for _ in range(WARM_HEAP_BYTES // 4096)]
    assert server.process.heap.used_range()[1] - \
        server.process.heap.base >= WARM_HEAP_BYTES

    monitor = server.monitor
    thread = server.process.main_thread()
    monitor.region_start(thread, "server_main_loop", [])
    report = monitor.last_variant_report
    server.process.guest_call(thread,
                              server.process.resolve("server_main_loop"))
    monitor.region_end(thread)

    relocation = report.relocation
    data_scan = sum(scan.time_ns for scan in relocation.scans
                    if scan.region in (".data", ".bss", ".got.plt"))
    heap_scan = relocation.scan_named("heap").time_ns

    # clone/fork micro-measurements
    kernel2 = Kernel()
    empty = GuestProcess(kernel2, "empty", heap_pages=4)
    before = empty.counter.total_ns
    kernel2.syscall(empty, "clone", 0)
    clone_ns = empty.counter.total_ns - before
    before = empty.counter.total_ns
    kernel2.syscall(empty, "fork")
    fork_empty_ns = empty.counter.total_ns - before

    # fork during initialization: littled's image + heap are mapped
    before = server.process.counter.total_ns
    kernel.syscall(server.process, "fork")
    fork_init_ns = server.process.counter.total_ns - before

    return {
        "process duplication (copy+move)": report.duplication_ns,
        "data pointer scan": data_scan,
        "heap pointer scan": heap_scan,
        "clone() thread (empty function)": clone_ns,
        "fork() (empty main())": fork_empty_ns,
        "fork() (during littled initialization)": fork_init_ns,
        "_report": report,
    }


def test_tab2_report(breakdown):
    rows = []
    for name, paper_us in PAPER_US.items():
        measured_us = breakdown[name] / 1000.0
        rows.append((name, f"{measured_us:,.1f}", f"{paper_us:,.1f}"))
    print_table("Table 2 — mvx_start() overheads on littled (us)",
                ("source", "measured", "paper"), rows)

    report = breakdown["_report"]
    assert report.relocation.total_pointers > 0
    assert report.shift > 0


def test_tab2_ordering(breakdown):
    """The paper's qualitative claims: heap scan dominates everything;
    duplication itself is trivial next to the scans; clone is cheaper
    than fork; fork-during-init costs more than fork-of-empty."""
    assert breakdown["heap pointer scan"] > \
        10 * breakdown["data pointer scan"]
    assert breakdown["heap pointer scan"] > \
        100 * breakdown["process duplication (copy+move)"]
    assert breakdown["data pointer scan"] > \
        breakdown["process duplication (copy+move)"]
    assert breakdown["clone() thread (empty function)"] < \
        breakdown["fork() (empty main())"] < \
        breakdown["fork() (during littled initialization)"]


def test_tab2_magnitudes_near_paper(breakdown):
    """Within ~2x of the paper's microsecond values (same cost model)."""
    for name, paper_us in PAPER_US.items():
        measured_us = breakdown[name] / 1000.0
        assert paper_us / 2.5 <= measured_us <= paper_us * 2.5, \
            f"{name}: {measured_us:.1f}us vs paper {paper_us}us"


def test_tab2_variant_creation_benchmark(benchmark):
    """Wall-clock cost of one real variant creation (host time)."""
    kernel, server = make_littled(smvx=True, protect="server_main_loop")
    monitor = server.monitor
    thread = server.process.main_thread()

    def create_and_destroy():
        monitor.region_start(thread, "server_main_loop", [])
        server.process.guest_call(
            thread, server.process.resolve("server_main_loop"))
        monitor.region_end(thread)
    benchmark.pedantic(create_and_destroy, iterations=1, rounds=5)
