"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
prints the paper-reported value next to the measured one, so the *shape*
claims (who wins, by what factor, where crossovers fall) are auditable at
a glance.  Absolute virtual-time numbers are not expected to match the
authors' Xeon testbed (DESIGN.md §1).
"""

import pytest

from repro.apps import LittledServer, MinxServer
from repro.kernel import Kernel
from repro.workloads import ApacheBench


def print_table(title: str, headers, rows) -> None:
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def make_minx(kernel=None, autostart=True, **kwargs):
    kernel = kernel or Kernel()
    server = MinxServer(kernel, **kwargs)
    if autostart:
        server.start()
    return kernel, server


def make_littled(kernel=None, autostart=True, **kwargs):
    kernel = kernel or Kernel()
    server = LittledServer(kernel, **kwargs)
    if autostart:
        server.start()
    return kernel, server


def server_busy_per_request(kernel, server, requests: int) -> float:
    result = ApacheBench(kernel, server).run(requests)
    assert result.failures == 0, \
        f"workload failed: {result} alarms={server.alarms.alarms}"
    return result.busy_per_request_ns


@pytest.fixture
def table():
    return print_table
