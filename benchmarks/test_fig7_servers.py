"""Figure 7: Nginx and Lighttpd performance under sMVX vs ReMon.

Paper: "With sMVX, we achieve a 266% overhead for Nginx and a 223%
overhead for Lighttpd" (normalized HTTP throughput, ab on loopback,
0.1 ms latency, 4 KB page); ReMon's bars sit somewhat lower because it
intercepts *system calls* while sMVX intercepts libc calls — "For Nginx,
there will be about 5.4 libc calls issued over one system call, while
that ratio rises to 7.8 for Lighttpd" (the figure's secondary axis).
"""

import pytest

from repro.kernel import Kernel
from repro.mvx import ReMonMvx
from repro.workloads import ApacheBench

from conftest import make_littled, make_minx, print_table, \
    server_busy_per_request

REQUESTS = 40

PAPER = {
    "minx (nginx)": {"smvx": 2.66, "ratio": 5.4},
    "littled (lighttpd)": {"smvx": 2.23, "ratio": 7.8},
}


def measure_server(factory, protect):
    kernel, vanilla = factory()
    vanilla_busy = server_busy_per_request(kernel, vanilla, REQUESTS)
    ratio = vanilla.process.libc_syscall_ratio()

    kernel2, protected = factory(smvx=True, protect=protect)
    smvx_busy = server_busy_per_request(kernel2, protected, REQUESTS)
    assert not protected.alarms.triggered

    kernel3 = Kernel()
    _, remon_server = (kernel3, None)
    kernel3, remon_server = factory(kernel3)
    remon = ReMonMvx(remon_server.process).attach()
    remon_busy = server_busy_per_request(kernel3, remon_server, REQUESTS)
    remon.detach()

    return {
        "vanilla_ns": vanilla_busy,
        "smvx_overhead": smvx_busy / vanilla_busy - 1,
        "remon_overhead": remon_busy / vanilla_busy - 1,
        "ratio": ratio,
    }


@pytest.fixture(scope="module")
def results():
    return {
        "minx (nginx)": measure_server(
            make_minx, "minx_http_process_request_line"),
        "littled (lighttpd)": measure_server(
            make_littled, "server_main_loop"),
    }


def test_fig7_report(results):
    rows = []
    for name, data in results.items():
        paper = PAPER[name]
        rows.append((
            name,
            f"{data['smvx_overhead'] * 100:.0f}%",
            f"{paper['smvx'] * 100:.0f}%",
            f"{data['remon_overhead'] * 100:.0f}%",
            f"{data['ratio']:.2f}",
            f"{paper['ratio']:.1f}",
        ))
    print_table(
        "Figure 7 — server overhead (sMVX vs ReMon) + libc:syscall ratio",
        ("server", "sMVX meas", "sMVX paper", "ReMon meas",
         "ratio meas", "ratio paper"),
        rows)

    minx = results["minx (nginx)"]
    littled = results["littled (lighttpd)"]

    # overhead magnitudes near the paper's bars
    assert 2.0 <= minx["smvx_overhead"] <= 3.3      # paper: 2.66
    assert 1.6 <= littled["smvx_overhead"] <= 2.9   # paper: 2.23
    # ReMon is comparable but lower (syscall- vs libc-granularity)
    for data in results.values():
        assert data["remon_overhead"] < data["smvx_overhead"]
        assert data["remon_overhead"] > 0.5         # still a heavy MVX
    # the ratio ordering that explains the gap
    assert littled["ratio"] > minx["ratio"] > 1.0


def test_fig7_minx_request_benchmark(benchmark):
    kernel, server = make_minx(smvx=True,
                               protect="minx_http_process_request_line")
    ab = ApacheBench(kernel, server)

    def one_request():
        result = ab.run(1)
        assert result.failures == 0
    benchmark.pedantic(one_request, iterations=1, rounds=10)


def test_fig7_littled_request_benchmark(benchmark):
    kernel, server = make_littled(smvx=True, protect="server_main_loop")
    ab = ApacheBench(kernel, server)

    def one_request():
        result = ab.run(1)
        assert result.failures == 0
    benchmark.pedantic(one_request, iterations=1, rounds=10)
