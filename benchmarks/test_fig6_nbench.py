"""Figure 6: overhead of running nbench under sMVX.

Paper: "sMVX brings an average of 7% of performance overhead.
Applications such as Number Sort, Bitfield, and Assignment perform almost
close to the native execution... The highest overhead seen is the Neural
Network benchmark, with about 16% performance slowdown" — attributed to
its model-file I/O.
"""

import pytest

from repro.apps.nbench import NBENCH_WORKLOADS, NbenchHarness

from conftest import print_table

#: the per-workload characterizations the paper states explicitly.
PAPER_NOTES = {
    "Numeric Sort": "close to native",
    "Bitfield": "close to native",
    "Assignment": "close to native",
    "Neural Net": "highest, ~16%",
}
PAPER_AVERAGE = 0.07
PAPER_NEURAL_NET = 0.16


@pytest.fixture(scope="module")
def suite_results():
    return NbenchHarness(runs=3).run_suite()


def test_fig6_report(suite_results):
    rows = []
    for result in suite_results:
        rows.append((
            result.name,
            f"{result.vanilla_ns / 1e6:.3f} ms",
            f"{result.smvx_ns / 1e6:.3f} ms",
            f"{result.overhead * 100:.1f}%",
            PAPER_NOTES.get(result.name, ""),
        ))
    average = sum(r.overhead for r in suite_results) / len(suite_results)
    rows.append(("AVERAGE", "", "",
                 f"{average * 100:.1f}%",
                 f"paper: {PAPER_AVERAGE * 100:.0f}%"))
    print_table("Figure 6 — nbench overhead under sMVX",
                ("workload", "vanilla", "sMVX", "overhead", "paper"),
                rows)

    # shape assertions
    assert all(r.consistent for r in suite_results)
    assert 0.02 <= average <= 0.12, "average should sit near the paper's 7%"
    by_name = {r.name: r for r in suite_results}
    neural = by_name["Neural Net"]
    assert neural.overhead == max(r.overhead for r in suite_results), \
        "Neural Net must be the suite's worst case (its file I/O)"
    assert 0.10 <= neural.overhead <= 0.30
    for near_native in ("Numeric Sort", "Bitfield", "Assignment"):
        assert by_name[near_native].overhead < 0.05


def test_fig6_numeric_sort_benchmark(benchmark):
    harness = NbenchHarness(runs=1)
    result = benchmark.pedantic(lambda: harness.run_workload(0),
                                iterations=1, rounds=3)
    assert result.consistent


def test_fig6_neural_net_benchmark(benchmark):
    harness = NbenchHarness(runs=1)
    result = benchmark.pedantic(lambda: harness.run_workload(8),
                                iterations=1, rounds=3)
    assert result.consistent
