"""Multi-worker serving throughput (ISSUE acceptance criterion).

``ApacheBench(concurrency=8)`` drives the pre-forked littled with no
harness pump: the deterministic scheduler interleaves 8 client tasks
against 1, 2, and 4 workers, plus a monitor-attached (sMVX,
``server_main_loop`` protected) 4-worker row.  Because each worker owns
a virtual core whose local time overlaps wall time, throughput must
scale: the acceptance bound is >= 2x wall-clock requests/sec from 1 to
4 workers, with zero alarms in the monitored row.  Results land in
``BENCH_sched.json`` (uploaded by the CI sched-smoke job).
"""

import json
import os

from repro.apps import LittledServer
from repro.kernel import Kernel
from repro.workloads import ApacheBench

REQUESTS = 48
CONCURRENCY = 8
BENCH_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_sched.json")


def _serve(workers: int, smvx: bool = False) -> dict:
    kernel = Kernel(seed="bench-sched")
    server = LittledServer(
        kernel, workers=workers, smvx=smvx,
        protect="server_main_loop" if smvx else None)
    server.start()
    result = ApacheBench(kernel, server).run(
        REQUESTS, concurrency=CONCURRENCY)
    stats = kernel.sched.stats
    row = {
        "workers": workers,
        "smvx": smvx,
        "completed": result.requests_completed,
        "failures": result.failures,
        "wall_ms": round(result.wall_ns / 1e6, 3),
        "wall_rps": round(result.wall_throughput_rps, 1),
        "busy_ms": round(result.server_busy_ns / 1e6, 3),
        "cpu_ms": round(result.server_cpu_ns / 1e6, 3),
        "preemptions": stats.preemptions,
        "context_switches": stats.context_switches,
        "sched_decisions": kernel.sched.decisions,
        "alarms": len(server.alarms.alarms),
        "per_worker": [w.served for w in server.workers],
    }
    server.shutdown()
    return row


def test_sched_throughput(table):
    rows = [_serve(1), _serve(2), _serve(4), _serve(4, smvx=True)]
    by_workers = {(r["workers"], r["smvx"]): r for r in rows}

    for row in rows:
        assert row["completed"] == REQUESTS, row
        assert row["failures"] == 0, row
        assert row["alarms"] == 0, row

    scaling = by_workers[(4, False)]["wall_rps"] / \
        by_workers[(1, False)]["wall_rps"]
    mvx_overhead = by_workers[(4, False)]["wall_ms"] / \
        by_workers[(4, True)]["wall_ms"]

    payload = {
        "workload": f"ab -n {REQUESTS} -c {CONCURRENCY} -k /index.html",
        "rows": rows,
        "scaling_1_to_4": round(scaling, 2),
        "smvx_relative_throughput": round(mvx_overhead, 3),
    }
    with open(BENCH_JSON, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    table(f"Scheduled serving throughput (ab -n {REQUESTS} "
          f"-c {CONCURRENCY}, virtual wall time)",
          ("workers", "mode", "wall ms", "wall rps", "cpu ms",
           "preempt", "ctx-sw"),
          [(r["workers"], "smvx" if r["smvx"] else "vanilla",
            f"{r['wall_ms']:.2f}", f"{r['wall_rps']:,.0f}",
            f"{r['cpu_ms']:.2f}", r["preemptions"],
            r["context_switches"]) for r in rows])

    assert scaling >= 2.0, \
        f"1 -> 4 workers scaled wall throughput only {scaling:.2f}x " \
        f"(need >= 2x); see {BENCH_JSON}"
