"""Leader-side overhead of distributed sMVX (ISSUE acceptance criterion).

The dMVX pitch: moving variants and monitors off the production host
costs the leader only wire serialization (frames flushed on region
boundaries) plus a verdict wait at *sensitive* calls — not a per-call
rendezvous, and not whole-program replication.  This benchmark drives
the same ApacheBench workload against:

* vanilla minx (no MVX);
* in-process sMVX (the paper's deployment);
* distributed sMVX at two link latencies (0.1 ms and 1 ms);
* whole-program remote MVX (every syscall shipped, sensitive ones block
  a round trip) at the same two latencies — what dMVX without
  selection would cost;
* a ptrace-style whole-program monitor.

Leader-side **busy** ns/request (CPU charged to the leader process) is
the headline: for distributed sMVX it must be latency-insensitive and
cheaper than the whole-program remote baseline.  Wall ns/request shows
where link latency actually lands (region verdicts).  Results go to
``BENCH_cluster.json`` (uploaded by the CI cluster-smoke job).
"""

import json
import os

from repro.cluster.scenarios import MINX_PROTECT, build_minx_cluster
from repro.kernel import Kernel
from repro.mvx import PtraceMvx, RemoteMvx
from repro.workloads import ApacheBench

from conftest import make_minx

REQUESTS = 12
LATENCIES = (100_000, 1_000_000)          # 0.1 ms and 1 ms, in virtual ns
BENCH_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_cluster.json")


def _row(mode, latency_ns, result, alarms) -> dict:
    return {
        "mode": mode,
        "latency_ns": latency_ns,
        "completed": result.requests_completed,
        "failures": result.failures,
        "alarms": alarms,
        "busy_per_request_ns": round(result.busy_per_request_ns, 1),
        "wall_per_request_ns": round(result.wall_per_request_ns, 1),
    }


def _vanilla() -> dict:
    kernel, server = make_minx(Kernel(seed="bench-cluster/host0"))
    result = ApacheBench(kernel, server).run(REQUESTS)
    return _row("vanilla", 0, result, len(server.alarms.alarms))


def _inprocess() -> dict:
    kernel, server = make_minx(Kernel(seed="bench-cluster/host0"),
                               smvx=True, protect=MINX_PROTECT)
    result = ApacheBench(kernel, server).run(REQUESTS)
    return _row("smvx-inprocess", 0, result, len(server.alarms.alarms))


def _distributed(latency_ns) -> dict:
    run = build_minx_cluster(seed="bench-cluster", latency_ns=latency_ns)
    kernel = run.cluster.host(0).kernel
    result = ApacheBench(kernel, run.leader).run(REQUESTS)
    run.dsmvx.settle()
    return _row("smvx-distributed", latency_ns, result,
                len(run.leader.alarms.alarms))


def _remote_whole(latency_ns) -> dict:
    kernel, server = make_minx(Kernel(seed="bench-cluster/host0"))
    monitor = RemoteMvx(server.process, latency_ns=latency_ns).attach()
    result = ApacheBench(kernel, server).run(REQUESTS)
    monitor.detach()
    return _row("remote-whole-program", latency_ns, result,
                len(server.alarms.alarms))


def _ptrace() -> dict:
    kernel, server = make_minx(Kernel(seed="bench-cluster/host0"))
    monitor = PtraceMvx(server.process).attach()
    result = ApacheBench(kernel, server).run(REQUESTS)
    monitor.detach()
    return _row("ptrace-whole-program", 0, result,
                len(server.alarms.alarms))


def test_cluster_overhead(table):
    rows = [_vanilla(), _inprocess()]
    rows += [_distributed(lat) for lat in LATENCIES]
    rows += [_remote_whole(lat) for lat in LATENCIES]
    rows.append(_ptrace())

    for row in rows:
        assert row["completed"] == REQUESTS, row
        assert row["failures"] == 0, row
        assert row["alarms"] == 0, row

    vanilla = rows[0]["busy_per_request_ns"]
    by_mode = {}
    for row in rows:
        row["busy_overhead"] = round(
            row["busy_per_request_ns"] / vanilla - 1, 3)
        by_mode[(row["mode"], row["latency_ns"])] = row

    dist_lo = by_mode[("smvx-distributed", LATENCIES[0])]
    dist_hi = by_mode[("smvx-distributed", LATENCIES[1])]
    remote_lo = by_mode[("remote-whole-program", LATENCIES[0])]

    payload = {
        "workload": f"ab -n {REQUESTS} /index.html (classic pump)",
        "latencies_ns": list(LATENCIES),
        "rows": rows,
        "distributed_busy_overhead": dist_lo["busy_overhead"],
        "remote_whole_busy_overhead": remote_lo["busy_overhead"],
    }
    with open(BENCH_JSON, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    table(f"Distributed sMVX leader-side overhead (ab -n {REQUESTS})",
          ("mode", "latency ms", "busy ns/req", "busy overhead",
           "wall ns/req"),
          [(r["mode"], f"{r['latency_ns'] / 1e6:.1f}",
            f"{r['busy_per_request_ns']:,.0f}",
            f"{r['busy_overhead'] * 100:+.0f}%",
            f"{r['wall_per_request_ns']:,.0f}") for r in rows])

    # leader-side CPU of selective distribution is latency-insensitive:
    # the same frames get serialized whatever the wire delay is
    ratio = dist_hi["busy_per_request_ns"] / \
        dist_lo["busy_per_request_ns"]
    assert 0.95 <= ratio <= 1.05, \
        f"distributed busy/request moved {ratio:.3f}x from " \
        f"{LATENCIES[0]} ns to {LATENCIES[1]} ns latency"

    # and cheaper than shipping *every* syscall (selective replication)
    assert dist_lo["busy_per_request_ns"] < \
        remote_lo["busy_per_request_ns"], \
        f"selective distribution not cheaper than whole-program remote " \
        f"({dist_lo['busy_per_request_ns']:,.0f} vs " \
        f"{remote_lo['busy_per_request_ns']:,.0f} ns/req); " \
        f"see {BENCH_JSON}"
