"""Interpreter throughput (ISSUE acceptance criterion): guest MIPS on an
nbench-flavoured compute kernel, fast path vs. the precise path vs. an
emulation of the pre-fast-path interpreter.

Three configurations run the identical LCG-fill + checksum loop:

* **fast**     — the default interpreter: per-page decoded-instruction
  cache, inlined dispatch, software TLB, batched charging;
* **precise**  — ``force_slow_path=True``: per-instruction ``step()``
  (still decode-cached — this is what tracing/taint pay);
* **baseline** — precise plus a per-fetch re-decode ``_fetch`` override,
  reproducing the pre-PR interpreter's fetch behavior (the "before"
  number recorded in ``BENCH_interp.json``).

The acceptance bound is fast ≥ 3× baseline host instructions/sec, and
all three configurations must retire the same instruction count, produce
the same checksum, and charge identical virtual cycles.
"""

import json
import os
import time

from repro.errors import InvalidInstruction
from repro.machine import (
    INSTR_SIZE,
    PAGE_SIZE,
    PROT_RW,
    PROT_RX,
    AddressSpace,
    Assembler,
    CPU,
    Instruction,
)
from repro.machine.cpu import ExecState, HOST_RETURN_ADDRESS
from repro.machine.registers import RegisterFile

CODE_BASE = 0x40_0000
DATA_BASE = 0x50_0000
STACK_TOP = 0x7000_0000
ITERATIONS = 12_000
BENCH_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_interp.json")


class BaselineCPU(CPU):
    """The pre-fast-path interpreter: precise stepping with a full
    fetch + decode from raw page bytes on every instruction."""

    force_slow_path = True

    def _fetch(self, state):
        addr = state.regs.rip
        page = self.space.fetch_check(addr)
        offset = addr % PAGE_SIZE
        if offset + INSTR_SIZE <= PAGE_SIZE:
            raw = bytes(page.data[offset:offset + INSTR_SIZE])
        else:
            head = bytes(page.data[offset:])
            next_page = self.space.fetch_check(addr + (PAGE_SIZE - offset))
            raw = head + bytes(next_page.data[:INSTR_SIZE - len(head)])
        try:
            return Instruction.decode(raw)
        except InvalidInstruction as exc:  # pragma: no cover
            exc.address = addr
            raise


def lcg_checksum_kernel(iterations):
    """nbench-flavoured compute loop: an LCG stream written through a
    512-word working set, read back and mixed into a checksum —
    MUL/ADD/AND/SHL/STORE/LOAD/XOR/CMP/JNE per iteration."""
    a = Assembler()
    a.mov_ri("rax", 0x5DEECE66D)       # LCG state
    a.mov_ri("r8", 6364136223846793005)
    a.mov_ri("rbx", 0)                 # checksum
    a.mov_ri("rcx", 0)                 # i
    a.label("loop")
    a.mul_rr("rax", "r8")
    a.add_ri("rax", 1442695040888963407)
    a.mov_rr("rsi", "rcx")
    a.and_ri("rsi", 511)
    a.shl_ri("rsi", 3)
    a.add_ri("rsi", DATA_BASE)
    a.store("rsi", "rax", 0)
    a.load("rdx", "rsi", 0)
    a.xor_rr("rbx", "rdx")
    a.add_rr("rbx", "rcx")
    a.add_ri("rcx", 1)
    a.cmp_ri("rcx", iterations)
    a.jne("loop")
    a.mov_rr("rax", "rbx")
    a.ret()
    return a


def _run(cpu_cls):
    space = AddressSpace()
    code = lcg_checksum_kernel(ITERATIONS).assemble(CODE_BASE)
    space.mmap(CODE_BASE, len(code), prot=PROT_RX, tag="text")
    for offset in range(0, len(code), PAGE_SIZE):
        page = space.page_at(CODE_BASE + offset)
        chunk = code[offset:offset + PAGE_SIZE]
        page.data[:len(chunk)] = chunk
    space.mmap(DATA_BASE, 512 * 8, prot=PROT_RW, tag="data")
    space.mmap(STACK_TOP - 4 * PAGE_SIZE, 4 * PAGE_SIZE, prot=PROT_RW,
               tag="stack")
    cpu = cpu_cls(space)
    state = ExecState(RegisterFile())
    state.regs.rip = CODE_BASE
    state.regs.set("rsp", STACK_TOP - 64)
    cpu._push(state, HOST_RETURN_ADDRESS)
    host_t0 = time.perf_counter()
    reason = cpu.run(state)
    host_s = time.perf_counter() - host_t0
    assert reason == "host-return"
    return {
        "checksum": state.regs.get("rax"),
        "instructions": cpu.instructions_retired,
        "virtual_ns": cpu.counter.total_ns,
        "host_s": host_s,
        "mips": cpu.instructions_retired / host_s / 1e6,
    }


def _precise_cpu(space):
    cpu = CPU(space)
    cpu.force_slow_path = True
    return cpu


def test_interp_throughput(table):
    runs = {
        "fast": _run(CPU),
        "precise": _run(_precise_cpu),
        "baseline": _run(BaselineCPU),
    }
    fast, precise, baseline = (runs["fast"], runs["precise"],
                               runs["baseline"])

    # identical architectural results in every configuration
    for other in (precise, baseline):
        assert other["checksum"] == fast["checksum"]
        assert other["instructions"] == fast["instructions"]
        assert other["virtual_ns"] == fast["virtual_ns"]

    speedup_vs_baseline = fast["mips"] / baseline["mips"]
    speedup_vs_precise = fast["mips"] / precise["mips"]

    payload = {
        "workload": "lcg-checksum",
        "iterations": ITERATIONS,
        "guest_instructions": fast["instructions"],
        "before": {"config": "pre-fast-path interpreter",
                   "mips": round(baseline["mips"], 3),
                   "host_s": round(baseline["host_s"], 4)},
        "after": {"config": "decoded-page cache + TLB + batched charging",
                  "mips": round(fast["mips"], 3),
                  "host_s": round(fast["host_s"], 4)},
        "precise_path": {"config": "force_slow_path (tracing/taint cost)",
                         "mips": round(precise["mips"], 3),
                         "host_s": round(precise["host_s"], 4)},
        "speedup": round(speedup_vs_baseline, 2),
        "speedup_vs_precise": round(speedup_vs_precise, 2),
    }
    with open(BENCH_JSON, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    table(f"Interpreter throughput ({ITERATIONS:,} iterations, "
          f"{fast['instructions']:,} guest instructions)",
          ("config", "guest MIPS", "host time", "speedup"),
          [(name, f"{r['mips']:.2f}", f"{r['host_s'] * 1e3:,.1f} ms",
            f"{fast['mips'] / r['mips']:.2f}x")
           for name, r in runs.items()])

    assert speedup_vs_baseline >= 3.0, \
        f"fast path is only {speedup_vs_baseline:.2f}x the pre-PR " \
        f"interpreter (need >= 3x); see {BENCH_JSON}"
