"""Interpreter throughput (ISSUE acceptance criterion): guest MIPS per
interpreter tier, reported per workload in ``BENCH_interp.json``.

Tiers (see docs/architecture.md §13 for the three-tier contract):

* **jit**      — the default interpreter: hot superblocks translated to
  specialized Python closures (``repro.machine.jit``) above the decoded
  page cache;
* **fast**     — ``jit_enabled=False``: per-page decoded-instruction
  cache, inlined dispatch, software TLB, batched charging (the PR-2
  interpreter);
* **precise**  — ``force_slow_path=True``: per-instruction ``step()``
  (still decode-cached — this is what tracing/taint pay);
* **baseline** — precise plus a per-fetch re-decode ``_fetch`` override,
  reproducing the pre-PR-2 interpreter (the historical "before").

Workloads:

* **lcg-checksum** — the nbench-flavoured compute loop; all four tiers
  must retire the same instruction count, produce the same checksum and
  charge identical virtual cycles, and the jit tier must clear the
  pinned speedup over the fast path in steady state;
* **nbench** — one real suite workload (Numeric Sort) run vanilla
  through :class:`repro.apps.nbench.harness.NbenchHarness` machinery
  per tier: identical checksum and virtual ns, host time reported;
* **minx-request-loop** — ApacheBench against the minx server per tier:
  zero failures and identical virtual busy-time per request, host
  requests/sec reported.

The steady-state jit measurement takes the best of several trials after
a warmup run: CPython's adaptive interpreter needs one pass over the
generated closure before it reaches steady state, and CI runners are
noisy.
"""

import json
import os
import time
from contextlib import contextmanager

from conftest import make_minx
from repro.errors import InvalidInstruction
from repro.machine import (
    INSTR_SIZE,
    PAGE_SIZE,
    PROT_RW,
    PROT_RX,
    AddressSpace,
    Assembler,
    CPU,
    Instruction,
)
from repro.machine.cpu import ExecState, HOST_RETURN_ADDRESS
from repro.machine.registers import RegisterFile
from repro.workloads import ApacheBench

CODE_BASE = 0x40_0000
DATA_BASE = 0x50_0000
STACK_TOP = 0x7000_0000
#: iteration count for the four-tier equality proof (precise and the
#: re-decode baseline are slow; this keeps them to well under a second)
ITERATIONS = 12_000
#: iteration count for the steady-state jit measurement (long enough
#: that the one-time translation cost is noise)
JIT_ITERATIONS = 200_000
#: best-of trials for the steady-state jit/fast numbers
TRIALS = 3
NBENCH_INDEX = 0               # Numeric Sort
MINX_REQUESTS = 20
BENCH_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_interp.json")


class FastCPU(CPU):
    """The PR-2 fast path with the jit tier switched off."""

    jit_enabled = False


class BaselineCPU(CPU):
    """The pre-fast-path interpreter: precise stepping with a full
    fetch + decode from raw page bytes on every instruction."""

    force_slow_path = True
    jit_enabled = False

    def _fetch(self, state):
        addr = state.regs.rip
        page = self.space.fetch_check(addr)
        offset = addr % PAGE_SIZE
        if offset + INSTR_SIZE <= PAGE_SIZE:
            raw = bytes(page.data[offset:offset + INSTR_SIZE])
        else:
            head = bytes(page.data[offset:])
            next_page = self.space.fetch_check(addr + (PAGE_SIZE - offset))
            raw = head + bytes(next_page.data[:INSTR_SIZE - len(head)])
        try:
            return Instruction.decode(raw)
        except InvalidInstruction as exc:  # pragma: no cover
            exc.address = addr
            raise

def lcg_checksum_kernel(iterations):
    """nbench-flavoured compute loop: an LCG stream written through a
    512-word working set, read back and mixed into a checksum —
    MUL/ADD/AND/SHL/STORE/LOAD/XOR/CMP/JNE per iteration."""
    a = Assembler()
    a.mov_ri("rax", 0x5DEECE66D)       # LCG state
    a.mov_ri("r8", 6364136223846793005)
    a.mov_ri("rbx", 0)                 # checksum
    a.mov_ri("rcx", 0)                 # i
    a.label("loop")
    a.mul_rr("rax", "r8")
    a.add_ri("rax", 1442695040888963407)
    a.mov_rr("rsi", "rcx")
    a.and_ri("rsi", 511)
    a.shl_ri("rsi", 3)
    a.add_ri("rsi", DATA_BASE)
    a.store("rsi", "rax", 0)
    a.load("rdx", "rsi", 0)
    a.xor_rr("rbx", "rdx")
    a.add_rr("rbx", "rcx")
    a.add_ri("rcx", 1)
    a.cmp_ri("rcx", iterations)
    a.jne("loop")
    a.mov_rr("rax", "rbx")
    a.ret()
    return a


def _run(cpu_cls, iterations=ITERATIONS):
    space = AddressSpace()
    code = lcg_checksum_kernel(iterations).assemble(CODE_BASE)
    space.mmap(CODE_BASE, len(code), prot=PROT_RX, tag="text")
    for offset in range(0, len(code), PAGE_SIZE):
        page = space.page_at(CODE_BASE + offset)
        chunk = code[offset:offset + PAGE_SIZE]
        page.data[:len(chunk)] = chunk
    space.mmap(DATA_BASE, 512 * 8, prot=PROT_RW, tag="data")
    space.mmap(STACK_TOP - 4 * PAGE_SIZE, 4 * PAGE_SIZE, prot=PROT_RW,
               tag="stack")
    cpu = cpu_cls(space)
    state = ExecState(RegisterFile())
    state.regs.rip = CODE_BASE
    state.regs.set("rsp", STACK_TOP - 64)
    cpu._push(state, HOST_RETURN_ADDRESS)
    host_t0 = time.perf_counter()
    reason = cpu.run(state)
    host_s = time.perf_counter() - host_t0
    assert reason == "host-return"
    return {
        "checksum": state.regs.get("rax"),
        "instructions": cpu.instructions_retired,
        "virtual_ns": cpu.counter.total_ns,
        "host_s": host_s,
        "mips": cpu.instructions_retired / host_s / 1e6,
        "stats": cpu.stats(),
    }


def _precise_cpu(space):
    cpu = CPU(space)
    cpu.force_slow_path = True
    return cpu


@contextmanager
def _tier(name):
    """Pin every CPU constructed in the block to one interpreter tier
    (the server/nbench harnesses build their machines internally)."""
    saved = (CPU.jit_enabled, CPU.force_slow_path)
    CPU.jit_enabled = name == "jit"
    CPU.force_slow_path = name == "precise"
    try:
        yield
    finally:
        CPU.jit_enabled, CPU.force_slow_path = saved


def _bench_lcg():
    tiers = {
        "jit": _run(CPU),
        "fast": _run(FastCPU),
        "precise": _run(_precise_cpu),
        "baseline": _run(BaselineCPU),
    }
    # identical architectural results in every configuration
    reference = tiers["fast"]
    for name, run in tiers.items():
        assert run["checksum"] == reference["checksum"], name
        assert run["instructions"] == reference["instructions"], name
        assert run["virtual_ns"] == reference["virtual_ns"], name
    assert tiers["jit"]["stats"]["jit_insns"] > 0
    assert tiers["precise"]["stats"]["jit_insns"] == 0

    # steady state: best-of-TRIALS at JIT_ITERATIONS after one warmup
    # (CPython's adaptive interpreter, noisy CI runners)
    _run(CPU, JIT_ITERATIONS)
    best_jit, best_fast = None, None
    for _ in range(TRIALS):
        jit = _run(CPU, JIT_ITERATIONS)
        fast = _run(FastCPU, JIT_ITERATIONS)
        assert jit["checksum"] == fast["checksum"]
        assert jit["virtual_ns"] == fast["virtual_ns"]
        if best_jit is None or jit["mips"] > best_jit["mips"]:
            best_jit = jit
        if best_fast is None or fast["mips"] > best_fast["mips"]:
            best_fast = fast
    return tiers, best_jit, best_fast


def _bench_nbench():
    from repro.apps.nbench.harness import NbenchHarness
    from repro.apps.nbench.workloads import NBENCH_WORKLOADS

    results = {}
    for name in ("jit", "fast", "precise"):
        with _tier(name):
            harness = NbenchHarness(runs=1)
            host_t0 = time.perf_counter()
            virtual_ns, checksum = harness._run_once(NBENCH_INDEX,
                                                     smvx=False)
            host_s = time.perf_counter() - host_t0
        results[name] = {"host_s": host_s, "virtual_ns": virtual_ns,
                         "checksum": checksum}
    reference = results["fast"]
    for name, run in results.items():
        assert run["checksum"] == reference["checksum"], name
        assert run["virtual_ns"] == reference["virtual_ns"], name
    return NBENCH_WORKLOADS[NBENCH_INDEX].name, results


def _bench_minx():
    results = {}
    for name in ("jit", "fast", "precise"):
        with _tier(name):
            kernel, server = make_minx()
            bench = ApacheBench(kernel, server)
            host_t0 = time.perf_counter()
            result = bench.run(MINX_REQUESTS)
            host_s = time.perf_counter() - host_t0
        assert result.failures == 0, name
        results[name] = {
            "host_s": host_s,
            "requests_per_host_s": MINX_REQUESTS / host_s,
            "busy_per_request_ns": result.busy_per_request_ns,
        }
    reference = results["fast"]
    for name, run in results.items():
        assert run["busy_per_request_ns"] == \
            reference["busy_per_request_ns"], name
    return results


def test_interp_throughput(table):
    tiers, best_jit, best_fast = _bench_lcg()
    jit_speedup = best_jit["mips"] / best_fast["mips"]
    speedup_vs_baseline = tiers["fast"]["mips"] / tiers["baseline"]["mips"]
    nbench_name, nbench = _bench_nbench()
    minx = _bench_minx()

    def entry(run):
        return {"mips": round(run["mips"], 3),
                "host_s": round(run["host_s"], 4)}

    payload = {
        "workloads": {
            "lcg-checksum": {
                "iterations": JIT_ITERATIONS,
                "guest_instructions": best_jit["instructions"],
                "tiers": {
                    "jit": entry(best_jit),
                    "fast": entry(best_fast),
                    "precise": entry(tiers["precise"]),
                    "baseline": entry(tiers["baseline"]),
                },
                "jit_speedup_vs_fast": round(jit_speedup, 2),
                "fast_speedup_vs_baseline": round(speedup_vs_baseline, 2),
            },
            "nbench": {
                "workload": nbench_name,
                "tiers": {name: {"host_s": round(run["host_s"], 4)}
                          for name, run in nbench.items()},
                "virtual_ns": nbench["fast"]["virtual_ns"],
                "jit_speedup_vs_fast": round(
                    nbench["fast"]["host_s"] / nbench["jit"]["host_s"], 2),
            },
            "minx-request-loop": {
                "requests": MINX_REQUESTS,
                "tiers": {name: {
                    "host_s": round(run["host_s"], 4),
                    "requests_per_host_s":
                        round(run["requests_per_host_s"], 1)}
                    for name, run in minx.items()},
                "busy_per_request_ns":
                    minx["fast"]["busy_per_request_ns"],
                "jit_speedup_vs_fast": round(
                    minx["fast"]["host_s"] / minx["jit"]["host_s"], 2),
            },
        },
        "jit_speedup_vs_fast": round(jit_speedup, 2),
        "jit_mips": round(best_jit["mips"], 3),
        "fast_mips": round(best_fast["mips"], 3),
    }
    with open(BENCH_JSON, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    table(f"Interpreter throughput (lcg-checksum, {JIT_ITERATIONS:,} "
          f"iterations steady-state; equality proof at {ITERATIONS:,})",
          ("tier", "guest MIPS", "host time"),
          [("jit", f"{best_jit['mips']:.2f}",
            f"{best_jit['host_s'] * 1e3:,.1f} ms"),
           ("fast", f"{best_fast['mips']:.2f}",
            f"{best_fast['host_s'] * 1e3:,.1f} ms"),
           ("precise", f"{tiers['precise']['mips']:.2f}",
            f"{tiers['precise']['host_s'] * 1e3:,.1f} ms"),
           ("baseline", f"{tiers['baseline']['mips']:.2f}",
            f"{tiers['baseline']['host_s'] * 1e3:,.1f} ms")])
    table("Per-workload jit vs fast (host time)",
          ("workload", "jit", "fast", "speedup"),
          [("lcg-checksum", f"{best_jit['host_s'] * 1e3:,.1f} ms",
            f"{best_fast['host_s'] * 1e3:,.1f} ms",
            f"{jit_speedup:.2f}x"),
           (f"nbench/{nbench_name}",
            f"{nbench['jit']['host_s'] * 1e3:,.1f} ms",
            f"{nbench['fast']['host_s'] * 1e3:,.1f} ms",
            f"{nbench['fast']['host_s'] / nbench['jit']['host_s']:.2f}x"),
           ("minx-request-loop",
            f"{minx['jit']['host_s'] * 1e3:,.1f} ms",
            f"{minx['fast']['host_s'] * 1e3:,.1f} ms",
            f"{minx['fast']['host_s'] / minx['jit']['host_s']:.2f}x")])

    assert speedup_vs_baseline >= 3.0, \
        f"fast path is only {speedup_vs_baseline:.2f}x the pre-PR " \
        f"interpreter (need >= 3x); see {BENCH_JSON}"
    # the pinned jit floor is deliberately below the ~10-12x measured on
    # a quiet machine: CI runners are noisy and the floor guards against
    # silent de-optimization, not against scheduler jitter
    assert jit_speedup >= 6.0, \
        f"jit tier is only {jit_speedup:.2f}x the fast path " \
        f"(pinned floor 6x); see {BENCH_JSON}"
