"""Ablation: variant reuse (the implemented §5 optimization).

The paper: "When the variant creation is within control loops, we
noticed the performance overhead raises high... the issue can be
similarly solved by pre-scanning and pre-updating the variant"
(Table 2 discussion / §5).  ``reuse_variants=True`` parks the follower at
mvx_end and refreshes only dirty pages at the next mvx_start; this bench
quantifies what that buys on minx's per-request region.
"""

import pytest

from repro.kernel import Kernel
from repro.workloads import ApacheBench

from conftest import make_minx, print_table

REQUESTS = 20
ROOT = "minx_http_process_request_line"


def measure(reuse: bool):
    kernel, server = make_minx(smvx=True, protect=ROOT,
                               reuse_variants=reuse)
    result = ApacheBench(kernel, server).run(REQUESTS)
    assert result.failures == 0
    assert not server.alarms.triggered
    return {"busy": result.busy_per_request_ns,
            "server": server,
            "refresh": server.monitor.last_refresh_stats}


@pytest.fixture(scope="module")
def data():
    kernel, vanilla = make_minx()
    base = ApacheBench(kernel, vanilla).run(REQUESTS).busy_per_request_ns
    return {"vanilla": base,
            "fresh": measure(reuse=False),
            "reuse": measure(reuse=True)}


def test_reuse_report(data):
    base = data["vanilla"]
    fresh = data["fresh"]["busy"]
    reuse = data["reuse"]["busy"]
    refresh = data["reuse"]["refresh"]
    rows = [
        ("vanilla", f"{base / 1000:.1f}", "--", "--"),
        ("sMVX, fresh variant per region (paper prototype)",
         f"{fresh / 1000:.1f}", f"{(fresh / base - 1) * 100:.0f}%", "--"),
        ("sMVX, parked variant + dirty-page refresh (§5)",
         f"{reuse / 1000:.1f}", f"{(reuse / base - 1) * 100:.0f}%",
         f"{refresh.dirty_pages} pages"),
    ]
    print_table("Ablation — variant reuse on minx (per-request busy us)",
                ("configuration", "us/request", "overhead",
                 "refresh footprint"), rows)


def test_reuse_cuts_region_entry_cost(data):
    """The optimization removes most of the per-request creation cost."""
    base = data["vanilla"]
    fresh_overhead = data["fresh"]["busy"] - base
    reuse_overhead = data["reuse"]["busy"] - base
    assert reuse_overhead < 0.55 * fresh_overhead


def test_reuse_overhead_still_above_vanilla(data):
    """Lockstep costs remain: reuse is not free MVX."""
    assert data["reuse"]["busy"] > 1.1 * data["vanilla"]


def test_reuse_benchmark(benchmark):
    def serve_with_reuse():
        kernel, server = make_minx(smvx=True, protect=ROOT,
                                   reuse_variants=True)
        return ApacheBench(kernel, server).run(5)
    result = benchmark.pedantic(serve_with_reuse, iterations=1, rounds=3)
    assert result.failures == 0
