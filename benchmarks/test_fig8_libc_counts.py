"""Figure 8: number of libc calls within the protected region, per choice
of protected root function.

Paper: protecting ``main()`` replicates ~8.83M PLT calls over a 100k-
request workload; moving the root down the call graph monotonically cuts
the calls the monitor must emulate, bottoming out around 100k (~1 per
request) at the tainted leaf functions.

We sweep minx's protectable roots (event loop -> request line -> ... ->
leaves), measure intercepted in-region calls over a scaled workload, and
report both the raw counts and the 100k-request extrapolation (DESIGN.md
§4 documents the scaling).
"""

import pytest

from repro.apps.minx import PROTECTABLE, TAINTED_FUNCTIONS

from conftest import make_minx, print_table, server_busy_per_request
from repro.workloads import ApacheBench

REQUESTS = 25
PAPER_REQUESTS = 100_000

#: sweep order: from the outermost root (== whole program; the event loop
#: is main()'s working body) down to leaf functions.
SWEEP = (
    "minx_process_events_and_timers",      # ~ main()
    "minx_http_wait_request_handler",
    "minx_http_process_request_line",      # the tainted root
    "minx_http_process_request_headers",
    "minx_http_handler",
    "minx_http_header_filter",
    "minx_http_log_access",
)


@pytest.fixture(scope="module")
def sweep_counts():
    counts = {}
    for root in SWEEP:
        kernel, server = make_minx(smvx=True, protect=root)
        result = ApacheBench(kernel, server).run(REQUESTS)
        assert result.failures == 0, (root, server.alarms.alarms)
        counts[root] = server.monitor.stats.leader_calls
    return counts


def test_fig8_report(sweep_counts):
    rows = []
    for root in SWEEP:
        count = sweep_counts[root]
        per_request = count / REQUESTS
        extrapolated = per_request * PAPER_REQUESTS
        tainted = "tainted" if root in TAINTED_FUNCTIONS else ""
        rows.append((root, count, f"{per_request:.1f}",
                     f"{extrapolated:,.0f}", tainted))
    rows.append(("(paper: main())", "", "", "8,826,795", ""))
    rows.append(("(paper: tainted leaves)", "", "", "100,000", "tainted"))
    print_table(
        f"Figure 8 — libc calls within the protected region "
        f"({REQUESTS} requests, extrapolated to {PAPER_REQUESTS:,})",
        ("protected root", "in-region calls", "per request",
         "per 100k requests", ""),
        rows)


def test_fig8_monotone_decrease(sweep_counts):
    """Shrinking the protected call graph strictly reduces the libc calls
    the monitor must emulate (the figure's core shape)."""
    series = [sweep_counts[root] for root in SWEEP]
    for wider, narrower in zip(series, series[1:]):
        assert wider >= narrower, (SWEEP, series)
    # and the full sweep spans at least one order of magnitude
    assert series[0] >= 10 * series[-1]


def test_fig8_tainted_roots_need_fewer_calls(sweep_counts):
    """The purple-triangle claim: the taint-identified functions need far
    fewer PLT calls duplicated than protecting main()."""
    whole = sweep_counts["minx_process_events_and_timers"]
    tainted_root = sweep_counts["minx_http_process_request_line"]
    assert tainted_root < whole
    assert tainted_root <= 0.8 * whole


def test_fig8_all_protectable_roots_serve_correctly():
    """Every sweep point still serves requests correctly (lockstep holds
    wherever the annotation is placed)."""
    for root in SWEEP:
        kernel, server = make_minx(smvx=True, protect=root)
        result = ApacheBench(kernel, server).run(3)
        assert result.status_counts == {200: 3}, root
        assert not server.alarms.triggered, root


def test_fig8_sweep_benchmark(benchmark):
    def measure_one_root():
        kernel, server = make_minx(
            smvx=True, protect="minx_http_process_request_line")
        ApacheBench(kernel, server).run(5)
        return server.monitor.stats.leader_calls
    count = benchmark.pedantic(measure_one_root, iterations=1, rounds=3)
    assert count > 0
