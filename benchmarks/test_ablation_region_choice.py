"""Ablation: where should the annotation go?

Quantifies the paper's guidance (§3.4 "Application domains", §5):
protecting functions "directly in the control loop... repetitively
incur[s] the overhead from process duplication and pointer updates", and
a region that misses the vulnerable path detects nothing.  We sweep the
annotation root over minx and report, per choice:

* throughput overhead (Figure 7's metric),
* libc calls replicated (Figure 8's metric),
* whether the CVE-2013-2028 attack is caught (the security payoff).
"""

import pytest

from repro.attacks import run_exploit
from repro.workloads import ApacheBench

from conftest import make_minx, print_table

REQUESTS = 15

SWEEP = (
    ("minx_process_events_and_timers", "whole event loop"),
    ("minx_http_process_request_line", "tainted root (paper's choice)"),
    ("minx_http_handler", "mid-subtree"),
    ("minx_http_log_access", "outside the attack path"),
)


def measure(root):
    kernel, vanilla = make_minx()
    base = ApacheBench(kernel, vanilla).run(REQUESTS).busy_per_request_ns

    kernel2, protected = make_minx(smvx=True, protect=root)
    result = ApacheBench(kernel2, protected).run(REQUESTS)
    assert result.failures == 0
    overhead = result.busy_per_request_ns / base - 1
    calls = protected.monitor.stats.leader_calls

    kernel3, victim = make_minx(smvx=True, protect=root)
    outcome = run_exploit(victim)
    return {"overhead": overhead, "calls": calls,
            "detected": outcome.divergence_detected,
            "exploited": outcome.directory_created}


@pytest.fixture(scope="module")
def sweep():
    return {root: measure(root) for root, _ in SWEEP}


def test_region_choice_report(sweep):
    rows = []
    for root, label in SWEEP:
        data = sweep[root]
        rows.append((
            label, root,
            f"{data['overhead'] * 100:.0f}%",
            data["calls"],
            "caught" if data["detected"] else
            ("EXPLOITED" if data["exploited"] else "missed"),
        ))
    print_table("Ablation — annotation placement on minx",
                ("placement", "root", "overhead", "libc calls replicated",
                 "CVE-2013-2028"), rows)


def test_paper_choice_is_the_sweet_spot(sweep):
    """The tainted root costs less than whole-loop protection while still
    catching the exploit — the paper's trade-off argument."""
    loop = sweep["minx_process_events_and_timers"]
    tainted = sweep["minx_http_process_request_line"]
    assert tainted["detected"] and loop["detected"]
    assert tainted["calls"] < loop["calls"]
    assert tainted["overhead"] <= loop["overhead"] * 1.1


def test_wrong_placement_is_a_false_negative(sweep):
    """§5's warning made concrete: annotating outside the attack path
    means the payload 'touch[es] functions beyond the protected code
    region (a false negative in exploit detection)'."""
    wrong = sweep["minx_http_log_access"]
    assert not wrong["detected"]
    assert wrong["exploited"]
    # and it's cheap, which is exactly the trap
    assert wrong["overhead"] < \
        sweep["minx_http_process_request_line"]["overhead"]


def test_mid_subtree_catches_but_replicates_less(sweep):
    mid = sweep["minx_http_handler"]
    assert mid["detected"]
    assert mid["calls"] < \
        sweep["minx_http_process_request_line"]["calls"]


def test_region_choice_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: measure("minx_http_handler"), iterations=1, rounds=2)
    assert result["detected"]
