"""§4.1 "Memory consumption saved from selective MVX".

Paper (pmap RSS after 10 HTTP requests):

* Nginx (1 master + 1 worker) under sMVX: 3208 KB (1708 + 1500)
  vs two vanilla copies: 6392 KB (1704 + 1492 + 1704 + 1492)
* Lighttpd under sMVX: 1372 KB vs two vanilla copies: 2720 KB (1360 x 2)

i.e. ~49% less memory: the follower variant is transient (created per
region, destroyed at mvx_end), so steady-state RSS is essentially one
instance, while traditional MVX keeps two full instances resident.
"""

import pytest

from repro.analysis.pmap import format_pmap, rss_kb, rss_report
from repro.apps import LittledServer, MinxServer
from repro.kernel import Kernel
from repro.mvx import spawn_duplicate
from repro.workloads import ApacheBench

from conftest import print_table

REQUESTS = 10

PAPER_KB = {
    "minx (nginx)": {"smvx": 3208, "traditional": 6392},
    "littled (lighttpd)": {"smvx": 1372, "traditional": 2720},
}


def _serve(kernel, server):
    result = ApacheBench(kernel, server).run(REQUESTS)
    assert result.failures == 0


def minx_deployment(kernel, smvx: bool, suffix: str):
    """1 master + 1 worker, like the paper's Nginx configuration."""
    master = MinxServer(kernel, port=18000, name=f"minx-master-{suffix}",
                        heap_pages=96, smvx=False)
    worker = MinxServer(kernel, port=18001, name=f"minx-worker-{suffix}",
                        heap_pages=64, smvx=smvx,
                        protect="minx_http_process_request_line"
                        if smvx else None)
    worker.start()
    _serve(kernel, worker)
    return [master.process, worker.process], worker


@pytest.fixture(scope="module")
def measurements():
    out = {}

    # --- minx: sMVX (1 master + 1 worker, monitor in the worker) ---
    kernel = Kernel()
    smvx_procs, worker = minx_deployment(kernel, smvx=True, suffix="smvx")
    assert not worker.alarms.triggered
    smvx_total = sum(rss_kb(p) for p in smvx_procs)

    # --- minx: traditional MVX = two full vanilla deployments ---
    kernel2 = Kernel()
    copy1, w1 = minx_deployment(kernel2, smvx=False, suffix="a")
    kernel3 = Kernel()
    copy2, w2 = minx_deployment(kernel3, smvx=False, suffix="b")
    trad_total = sum(rss_kb(p) for p in copy1 + copy2)
    out["minx (nginx)"] = {
        "smvx": smvx_total, "traditional": trad_total,
        "parts_smvx": [rss_kb(p) for p in smvx_procs],
        "parts_trad": [rss_kb(p) for p in copy1 + copy2],
        "worker": worker,
    }

    # --- littled ---
    kernel4 = Kernel()
    littled_smvx = LittledServer(kernel4, smvx=True,
                                 protect="server_main_loop",
                                 heap_pages=64, name="littled-smvx")
    littled_smvx.start()
    _serve(kernel4, littled_smvx)
    kernel5 = Kernel()
    littled_a = LittledServer(kernel5, heap_pages=64, name="littled-a")
    littled_a.start()
    _serve(kernel5, littled_a)
    littled_b = spawn_duplicate(LittledServer, kernel5, port=9081,
                                heap_pages=64, name="littled-b")
    littled_b.start()
    out["littled (lighttpd)"] = {
        "smvx": rss_kb(littled_smvx.process),
        "traditional": rss_kb(littled_a.process)
        + rss_kb(littled_b.process),
        "parts_smvx": [rss_kb(littled_smvx.process)],
        "parts_trad": [rss_kb(littled_a.process),
                       rss_kb(littled_b.process)],
        "worker": littled_smvx,
    }
    return out


def test_rss_report(measurements):
    rows = []
    for name, data in measurements.items():
        paper = PAPER_KB[name]
        saving = 1 - data["smvx"] / data["traditional"]
        paper_saving = 1 - paper["smvx"] / paper["traditional"]
        rows.append((
            name,
            f"{data['smvx']:,.0f} KB",
            f"{paper['smvx']:,} KB",
            f"{data['traditional']:,.0f} KB",
            f"{paper['traditional']:,} KB",
            f"{saving * 100:.0f}%",
            f"{paper_saving * 100:.0f}%",
        ))
    print_table(
        "§4.1 RSS after 10 requests — sMVX vs two vanilla copies",
        ("deployment", "sMVX meas", "sMVX paper", "2x vanilla meas",
         "2x vanilla paper", "saving", "paper saving"),
        rows)


def test_rss_saving_near_half(measurements):
    """The paper's 49%-less-memory claim: the follower is transient, so
    sMVX's steady state is ~one instance vs traditional MVX's two."""
    for name, data in measurements.items():
        saving = 1 - data["smvx"] / data["traditional"]
        assert 0.38 <= saving <= 0.55, (name, saving)


def test_rss_follower_memory_is_transient(measurements):
    """During a region RSS grows by the follower's footprint; after
    teardown it returns to baseline — the mechanism behind the ~49%."""
    from repro.core import DivergenceKind, DivergenceReport
    worker = measurements["minx (nginx)"]["worker"]
    proc = worker.process
    monitor = worker.monitor
    baseline = proc.space.resident_bytes()
    thread = proc.main_thread()
    monitor.region_start(thread, "minx_http_process_request_line", [0])
    in_region = proc.space.resident_bytes()
    assert in_region > baseline + 4096       # follower copies resident
    monitor.abort_region(DivergenceReport(DivergenceKind.MONITOR,
                                          detail="bench teardown"))
    assert proc.space.resident_bytes() == baseline


def test_rss_breakdown_mentions_expected_regions(measurements):
    worker = measurements["minx (nginx)"]["worker"]
    report = rss_report(worker.process)
    tags = set(report)
    assert any("minx:.text" in t for t in tags)
    assert "heap" in tags
    assert any(t.startswith("smvx:") for t in tags)
    listing = format_pmap(worker.process)
    assert "total" in listing


def test_rss_measurement_benchmark(benchmark):
    kernel = Kernel()
    server = MinxServer(kernel, heap_pages=64)
    server.start()
    kb = benchmark(lambda: rss_kb(server.process))
    assert kb > 0
