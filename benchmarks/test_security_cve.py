"""§4.2 security analysis: CVE-2013-2028 against minx.

Paper: the chunked-body stack overflow lets a 3-gadget ROP chain run
(loading a string pointer into %rdi, an integer into %rsi, and jumping to
mkdir) on vanilla Nginx 1.3.9; "running the exploit on Nginx protected by
sMVX, we observe that the follower variant throws a fault when the
program counter tries to jump to gadget locations that were present in
the leader variant's address space but were otherwise unmapped in the
follower variant. Thereby, sMVX detects and breaks the attack."
"""

import pytest

from repro.analysis.gadgets import find_gadgets
from repro.attacks import build_mkdir_chain, run_exploit
from repro.attacks.cve_2013_2028 import VICTIM_DIRECTORY
from repro.kernel import Kernel
from repro.workloads import ApacheBench

from conftest import make_minx, print_table


@pytest.fixture(scope="module")
def outcomes():
    _, vanilla = make_minx()
    vanilla_outcome = run_exploit(vanilla)

    _, protected = make_minx(smvx=True,
                             protect="minx_http_process_request_line")
    protected_outcome = run_exploit(protected)
    return {"vanilla": vanilla_outcome, "sMVX": protected_outcome,
            "protected_server": protected}


def test_security_report(outcomes):
    rows = []
    for name in ("vanilla", "sMVX"):
        outcome = outcomes[name]
        rows.append((
            name,
            "yes" if outcome.directory_created else "no",
            "yes" if outcome.divergence_detected else "no",
            "yes" if outcome.server_crashed else "no",
            outcome.detail[:60],
        ))
    print_table(
        "§4.2 — CVE-2013-2028 exploit outcome "
        f"(payload target: mkdir {VICTIM_DIRECTORY})",
        ("configuration", "mkdir executed", "alarm raised",
         "leader crashed", "detail"),
        rows)
    print("paper: vanilla Nginx 1.3.9 is exploitable; sMVX detects the "
          "attack when the follower faults on leader-space gadgets")


def test_security_vanilla_exploitable(outcomes):
    outcome = outcomes["vanilla"]
    assert outcome.attack_succeeded
    assert not outcome.divergence_detected


def test_security_smvx_detects_and_blocks(outcomes):
    outcome = outcomes["sMVX"]
    assert outcome.attack_detected_and_blocked
    assert outcome.alarm_count == 1
    report = outcomes["protected_server"].alarms.alarms[0]
    assert "unmapped" in report.detail or "fetch" in report.detail


def test_security_gadget_pool_shape():
    """The paper's chain: 3 gadgets + 3 values, gadgets harvested from
    the application's own text (Ropper/ROPGadget analogue)."""
    _, server = make_minx()
    chain = build_mkdir_chain(server.process, server.loaded)
    gadget_words = [chain.words[0], chain.words[2], chain.words[4]]
    value_words = [chain.words[1], chain.words[3]]
    text_start, text_size = server.loaded.section_range(".text")
    plt_start, plt_size = server.loaded.section_range(".plt")
    assert text_start <= gadget_words[0] < text_start + text_size
    assert text_start <= gadget_words[1] < text_start + text_size
    assert plt_start <= gadget_words[2] < plt_start + plt_size
    assert value_words[1] == 0o755


def test_security_other_cves_on_sensitive_paths():
    """CVE-2016-4450 / CVE-2017-7529 analogue check (the paper examined
    them manually): the vulnerable body/range-handling functions sit on
    the taint-identified sensitive paths, i.e. inside the protected
    subtree, so the same non-overlapping-address detection applies."""
    from repro.analysis.callgraph import protected_function_set
    _, server = make_minx()
    subtree = protected_function_set(server.image,
                                     "minx_http_process_request_line")
    assert "minx_http_read_discarded_request_body" in subtree
    assert "minx_http_parse_chunked" in subtree
    assert "minx_http_static_handler" in subtree


def test_security_benign_traffic_unaffected_after_detection(outcomes):
    """After an alarm, the protected process can serve fresh requests."""
    server = outcomes["protected_server"]
    kernel = server.kernel
    result = ApacheBench(kernel, server).run(3)
    assert result.status_counts == {200: 3}
    assert len(server.alarms.alarms) == 1       # no new alarms


def test_security_gadget_scan_benchmark(benchmark):
    _, server = make_minx()
    region = (server.loaded.base,
              server.loaded.base + server.loaded.image.load_size)
    gadgets = benchmark(lambda: find_gadgets(server.process.space,
                                             max_len=2, region=region))
    assert gadgets


def test_security_exploit_benchmark(benchmark):
    def full_attack():
        _, server = make_minx(smvx=True,
                              protect="minx_http_process_request_line")
        return run_exploit(server)
    outcome = benchmark.pedantic(full_attack, iterations=1, rounds=3)
    assert outcome.attack_detected_and_blocked
