"""Ablation: variant-creation strategy (paper §4.1 future work, §5).

Compares three ways of making the follower on minx's per-request region:

* **shift** — the paper's prototype: non-overlapping addresses, full
  pointer scan (Table 2's costs on every region entry);
* **shift + reuse** — our implementation of the paper's pre-scan/
  pre-update suggestion (dirty-page refresh);
* **aligned** — the paper's envisioned compiler-diversity strategy:
  same function addresses, trap-diversified interiors, *zero* pointer
  relocation.

All three must catch CVE-2013-2028; they differ in what mvx_start costs.
"""

import pytest

from repro.attacks import run_exploit
from repro.workloads import ApacheBench

from conftest import make_minx, print_table

REQUESTS = 15
ROOT = "minx_http_process_request_line"

CONFIGS = (
    ("shift (paper prototype)", {"variant_strategy": "shift"}),
    ("shift + dirty-page reuse (§5 pre-scan)",
     {"variant_strategy": "shift", "reuse_variants": True}),
    ("aligned interiors (§5 compiler diversity)",
     {"variant_strategy": "aligned"}),
)


def measure(config):
    kernel, vanilla = make_minx()
    base = ApacheBench(kernel, vanilla).run(REQUESTS).busy_per_request_ns

    kernel2, server = make_minx(smvx=True, protect=ROOT, **config)
    result = ApacheBench(kernel2, server).run(REQUESTS)
    assert result.failures == 0 and not server.alarms.triggered

    kernel3, victim = make_minx(smvx=True, protect=ROOT, **config)
    outcome = run_exploit(victim)
    return {
        "overhead": result.busy_per_request_ns / base - 1,
        "pointers": server.monitor.last_variant_report
        .relocation.total_pointers,
        "detected": outcome.attack_detected_and_blocked,
    }


@pytest.fixture(scope="module")
def sweep():
    return {name: measure(config) for name, config in CONFIGS}


def test_strategy_report(sweep):
    rows = []
    for name, _ in CONFIGS:
        data = sweep[name]
        rows.append((name, f"{data['overhead'] * 100:.0f}%",
                     data["pointers"],
                     "caught" if data["detected"] else "MISSED"))
    print_table("Ablation — variant-creation strategy on minx "
                "(per-request region)",
                ("strategy", "overhead", "pointers relocated",
                 "CVE-2013-2028"), rows)


def test_all_strategies_detect(sweep):
    assert all(data["detected"] for data in sweep.values())


def test_cost_ordering(sweep):
    """aligned < reuse < fresh shift, as §5 predicts."""
    shift = sweep["shift (paper prototype)"]["overhead"]
    reuse = sweep["shift + dirty-page reuse (§5 pre-scan)"]["overhead"]
    aligned = sweep["aligned interiors (§5 compiler diversity)"]["overhead"]
    assert aligned < reuse < shift


def test_aligned_needs_no_relocation(sweep):
    assert sweep["aligned interiors (§5 compiler diversity)"]["pointers"] == 0
    assert sweep["shift (paper prototype)"]["pointers"] > 0


def test_strategy_benchmark(benchmark):
    def aligned_run():
        kernel, server = make_minx(smvx=True, protect=ROOT,
                                   variant_strategy="aligned")
        return ApacheBench(kernel, server).run(5)
    result = benchmark.pedantic(aligned_run, iterations=1, rounds=3)
    assert result.failures == 0
