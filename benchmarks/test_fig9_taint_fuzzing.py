"""Figure 9: number of sensitive functions identified by taint analysis,
under the ab workload and then under progressively longer fuzzing.

Paper: the ApacheBench workload surfaces 16 sensitive functions; the
scout URL fuzzer finds most of its additional coverage within the first
5 minutes and plateaus at 30 functions by the 41-minute mark.  Our guest
server is smaller than Nginx, so absolute counts are scaled down; the
reproduced shape is: ab < early fuzzing < late fuzzing, with a plateau.
"""

import pytest

from repro.taint import TaintEngine
from repro.taint.report import build_report
from repro.workloads import ApacheBench, UrlFuzzer

from conftest import make_minx, print_table

#: fuzzing "time" buckets standing in for the paper's 1/5/30/41 minutes
#: (requests are the natural unit of fuzzing progress here).
FUZZ_BUCKETS = (("1min", 10), ("5min", 40), ("30min", 120),
                ("41min,end", 160))

PAPER_SERIES = {"ab": 16, "1min": 18, "5min": 27, "30min": 29,
                "41min,end": 30}


def drive(kernel, server, raw: bytes) -> None:
    sock = kernel.network.connect(server.port)
    sock.send(raw)
    server.pump()
    while True:
        chunk = sock.recv_wait(8192)
        if isinstance(chunk, int) or chunk == b"":
            break
    sock.close()
    server.pump()


@pytest.fixture(scope="module")
def series():
    kernel, server = make_minx()
    engine = TaintEngine(server.process).attach()

    counts = {}
    ApacheBench(kernel, server).run(10)
    counts["ab"] = build_report(engine, server.loaded).count

    fuzzer = UrlFuzzer(seed=0x5EED)
    total = 0
    for label, upto in FUZZ_BUCKETS:
        while total < upto:
            method, path, body = fuzzer.next_request()
            drive(kernel, server, fuzzer.request_bytes(method, path, body))
            total += 1
        counts[label] = build_report(engine, server.loaded).count
    engine.detach()
    counts["_functions"] = sorted(
        build_report(engine, server.loaded).sensitive_functions)
    return counts


def test_fig9_report(series):
    rows = []
    for label in ("ab",) + tuple(l for l, _ in FUZZ_BUCKETS):
        rows.append((label, series[label], PAPER_SERIES[label]))
    print_table("Figure 9 — sensitive functions found by taint analysis",
                ("workload", "measured", "paper (nginx scale)"), rows)
    print("\nfinal candidate list:")
    for name in series["_functions"]:
        print(f"  {name}")


def test_fig9_fuzzing_grows_coverage(series):
    assert series["ab"] >= 3
    assert series["41min,end"] > series["ab"]
    # monotone non-decreasing over fuzzing time
    labels = [l for l, _ in FUZZ_BUCKETS]
    values = [series[l] for l in labels]
    assert values == sorted(values)


def test_fig9_plateau(series):
    """Most coverage arrives early; the tail adds little (the paper's
    'scout can quickly find a large number of sensitive functions in 5
    minutes')."""
    early_gain = series["5min"] - series["ab"]
    late_gain = series["41min,end"] - series["5min"]
    assert late_gain <= max(early_gain, 2)


def test_fig9_candidates_are_request_path_functions(series):
    functions = set(series["_functions"])
    assert "minx_http_process_request_line" in functions
    # initialization code never touches network data
    assert "minx_main" not in functions


def test_fig9_no_pointer_false_positives_under_workload():
    """'running these workloads ... does not trigger false positives of
    pointer relocation' — replay the ab workload under sMVX and check the
    run stays divergence-free (a misrelocated pointer would diverge)."""
    kernel, server = make_minx(smvx=True,
                               protect="minx_http_process_request_line")
    result = ApacheBench(kernel, server).run(10)
    assert result.failures == 0
    assert not server.alarms.triggered


def test_fig9_taint_run_benchmark(benchmark):
    def taint_ten_requests():
        kernel, server = make_minx()
        engine = TaintEngine(server.process).attach()
        ApacheBench(kernel, server).run(10)
        engine.detach()
        return engine.tainted_count()
    tainted = benchmark.pedantic(taint_ten_requests, iterations=1,
                                 rounds=3)
    assert tainted > 0
