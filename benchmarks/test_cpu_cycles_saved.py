"""§4.1 "CPU cycles saved from selective MVX".

Paper: perf + flame graphs show the outermost tainted function consumes
60.8% of Nginx's cycles (``ngx_http_process_request_line``) and 70% of
Lighttpd's (``server_main_loop``); replicating only those subtrees puts
sMVX's CPU consumption at ~160% / ~170% of vanilla versus a traditional
MVX system's 200%.
"""

import pytest

from repro.analysis.perf import FunctionProfiler
from repro.workloads import ApacheBench

from conftest import make_littled, make_minx, print_table

REQUESTS = 10

PAPER = {
    "minx (nginx)": {"fraction": 0.608, "smvx_cpu": 1.60},
    "littled (lighttpd)": {"fraction": 0.70, "smvx_cpu": 1.70},
}


def profile_fraction(factory, root):
    """Flame-graph measurement of the protected root's cycle share.

    The profiler attaches before initialization so the denominator covers
    the whole run — the paper's flame graphs likewise span the full
    profiled process, which is why server_main_loop is 70% of Lighttpd,
    not 100% (initialization isn't inside the loop)."""
    kernel, server = factory(autostart=False)
    profiler = FunctionProfiler(server.process).attach()
    server.start()
    ApacheBench(kernel, server).run(REQUESTS)
    profiler.detach()
    return profiler, profiler.inclusive_fraction(root)


def measured_cpu_ratio(factory, protect):
    """Actual leader+follower CPU under sMVX, relative to vanilla CPU."""
    kernel, vanilla = factory()
    ApacheBench(kernel, vanilla).run(REQUESTS)
    vanilla_cpu = vanilla.process.total_cpu_ns()

    kernel2, protected = factory(smvx=True, protect=protect)
    ApacheBench(kernel2, protected).run(REQUESTS)
    follower_cpu = protected.process._retired_follower_ns
    # replication ratio: what fraction of a full second variant the
    # follower actually executed
    return 1.0 + follower_cpu / vanilla_cpu


@pytest.fixture(scope="module")
def results():
    out = {}
    profiler, fraction = profile_fraction(
        make_minx, "minx_http_process_request_line")
    out["minx (nginx)"] = {
        "fraction": fraction,
        "cpu": 1.0 + fraction,         # the paper's arithmetic
        "measured_cpu": measured_cpu_ratio(
            make_minx, "minx_http_process_request_line"),
        "profiler": profiler,
    }
    profiler, fraction = profile_fraction(make_littled, "server_main_loop")
    out["littled (lighttpd)"] = {
        "fraction": fraction,
        "cpu": 1.0 + fraction,
        "measured_cpu": measured_cpu_ratio(make_littled,
                                           "server_main_loop"),
        "profiler": profiler,
    }
    return out


def test_cpu_cycles_report(results):
    rows = []
    for name, data in results.items():
        paper = PAPER[name]
        rows.append((
            name,
            f"{data['fraction'] * 100:.1f}%",
            f"{paper['fraction'] * 100:.1f}%",
            f"{data['cpu'] * 100:.0f}%",
            f"{data['measured_cpu'] * 100:.0f}%",
            f"{paper['smvx_cpu'] * 100:.0f}%",
            "200%",
        ))
    print_table(
        "§4.1 CPU cycles — protected-root share and replication cost",
        ("server", "root share", "paper share", "sMVX CPU (1+share)",
         "sMVX CPU (measured)", "paper", "traditional MVX"),
        rows)


def test_cpu_fraction_shapes(results):
    minx = results["minx (nginx)"]
    littled = results["littled (lighttpd)"]
    # the paper's profile: nginx's request-line subtree ~60.8%,
    # lighttpd's main loop ~70% (and higher than nginx's root)
    assert 0.45 <= minx["fraction"] <= 0.75
    assert 0.55 <= littled["fraction"] <= 0.92
    assert littled["fraction"] > minx["fraction"]


def test_cpu_savings_vs_traditional_mvx(results):
    """Both derivations beat whole-program replication's 200%."""
    for data in results.values():
        assert data["cpu"] < 2.0
        assert data["measured_cpu"] < 2.0
        assert data["measured_cpu"] > 1.1      # real replication happened


def test_cpu_flame_graph_structure(results):
    profiler = results["minx (nginx)"]["profiler"]
    flame = profiler.flame_graph()
    assert flame.total_ns > 0
    folded = profiler.folded_stacks()
    assert any("minx_http_process_request_line" in line for line in folded)
    # the request-line subtree contains the handler chain
    assert any("minx_http_process_request_line;" in line and
               "minx_http_handler" in line for line in folded)


def test_cpu_profile_benchmark(benchmark):
    def profile_run():
        kernel, server = make_minx()
        with FunctionProfiler(server.process) as profiler:
            ApacheBench(kernel, server).run(5)
        return profiler.inclusive_fraction(
            "minx_http_process_request_line")
    fraction = benchmark.pedantic(profile_run, iterations=1, rounds=3)
    assert fraction > 0
