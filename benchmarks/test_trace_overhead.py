"""Flight-recorder overhead (ISSUE acceptance criterion).

Three configurations of the same protected-minx ab run:

* **baseline** — no recorder attached;
* **disabled** — recorder attached, ring disabled (production idle mode);
* **enabled**  — recorder attached and recording (no instruction stream);
* **instr**    — recording plus the per-instruction event stream.

The taps never charge virtual time, so the *virtual-cycle* delta must be
≤ 1% (in practice exactly 0) for every mode — tracing is free in guest
time by construction, and this benchmark is the regression trip-wire for
anyone adding a tap that accidentally charges the counter.  The *host*
wall-clock cost of enabled-mode tracing is reported for scale.
"""

import time

from repro.kernel import Kernel
from repro.trace import Recorder
from repro.workloads import ApacheBench

from conftest import make_minx

PROTECT = "minx_http_process_request_line"
REQUESTS = 5


def _run(mode: str):
    kernel, server = make_minx(autostart=False, protect=PROTECT, smvx=True)
    recorder = None
    if mode != "baseline":
        recorder = Recorder(kernel, trace_instructions=(mode == "instr"))
        recorder.attach_server(server)
        if mode == "disabled":
            recorder.ring.enabled = False
    host_t0 = time.perf_counter()
    server.start()
    result = ApacheBench(kernel, server).run(REQUESTS)
    host_ns = (time.perf_counter() - host_t0) * 1e9
    assert result.failures == 0
    events = recorder.ring.emitted if recorder else 0
    return server.process.counter.total_ns, host_ns, events


def test_tracing_overhead(table):
    base_cycles, base_host, _ = _run("baseline")
    rows = [("baseline", f"{base_cycles:,.0f}", "--", "--", 0)]
    for mode in ("disabled", "enabled", "instr"):
        cycles, host_ns, events = _run(mode)
        delta = (cycles - base_cycles) / base_cycles
        rows.append((mode, f"{cycles:,.0f}", f"{delta:+.3%}",
                     f"{host_ns / 1e6:,.1f} ms", events))
        # the acceptance bound: ≤1% virtual-cycle delta with tracing
        # disabled; we hold every mode to it (taps charge no virtual time)
        assert abs(delta) <= 0.01, \
            f"{mode}: virtual-cycle delta {delta:+.3%} exceeds 1%"
    table("Flight-recorder overhead (protected minx, "
          f"{REQUESTS} requests)",
          ("mode", "virtual cycles", "vs baseline", "host wall", "events"),
          rows)


def test_disabled_mode_is_virtually_free(table):
    """The headline number on its own: attaching a (disabled) recorder
    perturbs the guest by exactly zero virtual cycles."""
    base_cycles, _, _ = _run("baseline")
    disabled_cycles, _, _ = _run("disabled")
    assert disabled_cycles == base_cycles
    table("Disabled-recorder delta",
          ("baseline cycles", "disabled cycles", "delta"),
          [(f"{base_cycles:,.0f}", f"{disabled_cycles:,.0f}",
            disabled_cycles - base_cycles)])
