"""Static-verifier runtime benchmark (ISSUE satellite): how long the
offline and live verification passes take per bundled image, recorded in
``BENCH_analysis.json``.

The verifier is meant to run at every bring-up when strict mode is on,
so its cost must stay a small, bounded fraction of monitor setup.  This
benchmark measures, per app:

* **offline** — ``verify_image`` (CFG recovery + wrpkru scan +
  interception coverage + divergence lint) on the unloaded image;
* **live** — ``verify_process`` on a booted, monitor-attached process
  (adds the W^X walk, gate dataflow, pkey audit, GOT audit);
* **scope** — ``compute_scope`` (interprocedural taint dataflow deriving
  the selected-code-path set, see ``repro.analysis.scope``).

Sanity bounds rather than paper numbers: each pass must finish within a
generous wall-clock budget and report zero findings on the clean apps.
"""

import json
import os
import time

from repro.analysis.scope import compute_scope
from repro.analysis.verify import _bundled_apps, _live_report, verify_image

BENCH_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_analysis.json")

#: generous per-pass wall-clock budgets (seconds)
OFFLINE_BUDGET_S = 10.0
LIVE_BUDGET_S = 60.0
SCOPE_BUDGET_S = 10.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_verifier_runtime_and_emit_json(table):
    registry = _bundled_apps()
    rows = []
    payload = {"budget_s": {"offline": OFFLINE_BUDGET_S,
                            "live": LIVE_BUDGET_S,
                            "scope": SCOPE_BUDGET_S},
               "apps": {}}

    for app in sorted(registry):
        build, roots = registry[app]
        image = build()
        offline, offline_s = _timed(
            lambda: verify_image(image, roots=roots))
        live, live_s = _timed(lambda: _live_report(app, roots))
        scope, scope_s = _timed(lambda: compute_scope(image))

        assert offline.ok and live.ok, f"{app} not clean"
        assert offline_s < OFFLINE_BUDGET_S, \
            f"{app}: offline verify took {offline_s:.2f}s"
        assert live_s < LIVE_BUDGET_S, \
            f"{app}: live verify took {live_s:.2f}s"
        assert scope_s < SCOPE_BUDGET_S, \
            f"{app}: scope derivation took {scope_s:.2f}s"

        functions = len([s for s in image.function_symbols()
                         if s.section == ".text"])
        payload["apps"][app] = {
            "functions": functions,
            "checks": list(live.checks),
            "offline_ms": round(offline_s * 1e3, 2),
            "live_ms": round(live_s * 1e3, 2),
            "scope_ms": round(scope_s * 1e3, 2),
            "scope_selected": len(scope.selected),
            "scope_root": scope.derived_root,
            "findings": len(live.findings),
            "divergence_surface": len(live.divergence_surface),
        }
        rows.append((app, functions, f"{offline_s * 1e3:,.1f} ms",
                     f"{live_s * 1e3:,.1f} ms",
                     f"{scope_s * 1e3:,.1f} ms",
                     len(live.findings)))

    with open(BENCH_JSON, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    table("Static verifier runtime (offline image pass vs live audit)",
          ("app", "functions", "offline", "live", "scope", "findings"),
          rows)
