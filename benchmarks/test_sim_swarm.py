"""Throughput of the simulation swarm (the DST cost model).

FoundationDB-style swarms only pay off if a scenario is cheap enough to
run by the hundreds per CI invocation, so this benchmark measures what
one seeded swarm actually costs: scenarios/second overall and mean
wall-clock per workload family (classic minx vs scheduled littled vs
two-host cluster), plus the price of the determinism recheck (which
runs every scenario twice).  Results go to ``BENCH_sim.json``.

Virtual time is useless here — the swarm's cost is host CPU — so this
is the one place the harness reads the host clock.
"""

import json
import os
import time

from repro.sim import OK_CLASSES, generate_matrix
from repro.sim.runner import run_scenario

MASTER = "bench-swarm"
COUNT = 60
BENCH_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_sim.json")


def test_sim_swarm_throughput():
    matrix = generate_matrix(MASTER, COUNT)
    per_workload = {}
    histogram = {}
    rechecked = {"count": 0, "seconds": 0.0}

    begin = time.perf_counter()
    for scenario in matrix:
        start = time.perf_counter()
        outcome = run_scenario(scenario)
        elapsed = time.perf_counter() - start
        bucket = per_workload.setdefault(
            scenario.workload, {"count": 0, "seconds": 0.0})
        bucket["count"] += 1
        bucket["seconds"] += elapsed
        if scenario.recheck:
            rechecked["count"] += 1
            rechecked["seconds"] += elapsed
        histogram[outcome.klass] = histogram.get(outcome.klass, 0) + 1
        assert outcome.klass in OK_CLASSES, (
            scenario.describe(), outcome.klass, outcome.detail)
    total = time.perf_counter() - begin

    rows = [
        {"workload": workload, "scenarios": bucket["count"],
         "mean_ms": round(1000 * bucket["seconds"] / bucket["count"], 2)}
        for workload, bucket in sorted(per_workload.items())
    ]
    payload = {
        "master_seed": MASTER,
        "scenarios": COUNT,
        "histogram": histogram,
        "total_seconds": round(total, 2),
        "scenarios_per_second": round(COUNT / total, 1),
        "per_workload": rows,
        "recheck": {
            "scenarios": rechecked["count"],
            "mean_ms": round(1000 * rechecked["seconds"]
                             / max(1, rechecked["count"]), 2),
        },
    }
    with open(BENCH_JSON, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    # a 200-scenario CI sweep must stay well under a minute of CPU
    assert payload["scenarios_per_second"] > 3.3, payload
