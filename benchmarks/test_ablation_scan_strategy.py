"""Ablation: pointer-scan strategy (paper §3.4 + §5 future work).

The paper combines static alias analysis with runtime scanning and names
the full heap scan as the dominant cost.  This ablation quantifies the
design space on littled:

* full scan (the paper's strawman default),
* alias-assisted ``.data`` scan (only statically known pointer slots),
* the §5 thought experiment: how much of mvx_start() would remain if the
  heap scan were replaced by an indirection table (scan cost -> 0).
"""

import pytest

from repro.analysis.alias import analyze_image_pointers
from repro.core import attach_smvx, AlarmLog, build_smvx_stub_image
from repro.apps.littled import LittledServer, build_littled_image
from repro.kernel import Kernel
from repro.libc import build_libc_image
from repro.process import GuestProcess

from conftest import print_table

WARM_ALLOCS = 32


def variant_report(alias: bool):
    kernel = Kernel()
    server = LittledServer(kernel, smvx=False)
    alias_info = analyze_image_pointers(server.image) if alias else None
    monitor = attach_smvx(server.process, server.loaded,
                          alarm_log=AlarmLog(), alias_info=alias_info)
    server.start()
    for _ in range(WARM_ALLOCS):
        server.process.heap.malloc(2048)
    thread = server.process.main_thread()
    monitor.region_start(thread, "server_main_loop", [])
    report = monitor.last_variant_report
    server.process.guest_call(thread,
                              server.process.resolve("server_main_loop"))
    monitor.region_end(thread)
    return report


@pytest.fixture(scope="module")
def reports():
    return {"full": variant_report(alias=False),
            "alias": variant_report(alias=True)}


def _cost(report):
    relocation = report.relocation
    data = sum(s.time_ns for s in relocation.scans
               if s.region in (".data", ".bss", ".got.plt"))
    heap = relocation.scan_named("heap")
    heap_ns = heap.time_ns if heap else 0.0
    return {
        "data_ns": data,
        "heap_ns": heap_ns,
        "dup_ns": report.duplication_ns,
        "total_ns": data + heap_ns + report.duplication_ns
        + report.clone_ns,
        "data_slots": sum(s.slots_scanned for s in relocation.scans
                          if s.region == ".data"),
    }


def test_ablation_report(reports):
    full = _cost(reports["full"])
    alias = _cost(reports["alias"])
    indirection_total = alias["total_ns"] - alias["heap_ns"]
    rows = [
        ("full scan (paper default)", f"{full['total_ns'] / 1000:,.1f}",
         f"{full['data_ns'] / 1000:,.1f}", f"{full['heap_ns'] / 1000:,.1f}"),
        ("alias-assisted .data scan", f"{alias['total_ns'] / 1000:,.1f}",
         f"{alias['data_ns'] / 1000:,.1f}",
         f"{alias['heap_ns'] / 1000:,.1f}"),
        ("+ indirection table (heap scan -> 0, §5)",
         f"{indirection_total / 1000:,.1f}", "", "0.0"),
    ]
    print_table("Ablation — mvx_start() cost by pointer-scan strategy "
                "(littled, us)",
                ("strategy", "total", "data scan", "heap scan"), rows)


def test_alias_narrows_data_scan(reports):
    full = _cost(reports["full"])
    alias = _cost(reports["alias"])
    # the static pass pins down exactly the link-time pointer slots;
    # everything else in .data no longer needs visiting
    assert alias["data_slots"] < full["data_slots"]
    assert alias["data_ns"] < full["data_ns"]
    # but .bss and the heap scans are untouched (their pointer population
    # is created at runtime) — which is why the paper's Table 2 costs
    # survive the static assist
    assert alias["heap_ns"] == pytest.approx(full["heap_ns"], rel=0.02)


def test_alias_scan_is_still_correct():
    """The narrowed scan must relocate every pointer that matters: a run
    with alias info serves identically and diverges never."""
    from repro.workloads import ApacheBench
    kernel = Kernel()
    server = LittledServer(kernel, smvx=False)
    alias_info = analyze_image_pointers(server.image)
    attach_smvx(server.process, server.loaded, alarm_log=server.alarms,
                alias_info=alias_info)
    server.process.app_config = {"protect": "server_main_loop"}
    server.start()
    result = ApacheBench(kernel, server).run(5)
    assert result.status_counts == {200: 5}
    assert not server.alarms.triggered


def test_heap_scan_dominates_at_scale(reports):
    """The §5 motivation: the heap scan is the piece worth engineering
    away (it dominates the data scan once the heap is warm)."""
    full = _cost(reports["full"])
    assert full["heap_ns"] > full["dup_ns"]


def test_ablation_benchmark(benchmark):
    report = benchmark.pedantic(lambda: variant_report(alias=True),
                                iterations=1, rounds=3)
    assert report.relocation is not None
