"""Ablation: cost-model sensitivity.

The reproduction's performance claims ride on one calibrated
:class:`CostModel`.  This bench perturbs its two most influential
constants and checks the paper's *qualitative* conclusions survive:

* heap-scan slot cost x0.25 / x4 — Table 2's "heap scan dominates" and
  Figure 7's server overhead ordering must hold across the sweep;
* rendezvous cost x0.25 / x4 — nbench stays low-overhead and Neural Net
  stays the worst case (its overhead is interception-frequency-driven,
  not constant-driven).
"""

import pytest

from repro.apps.nbench import NbenchHarness
from repro.machine.costs import CostModel, DEFAULT_COSTS
from repro.workloads import ApacheBench

from conftest import make_minx, print_table

REQUESTS = 10


def minx_overhead(costs: CostModel) -> float:
    kernel, vanilla = make_minx()
    vanilla.process.costs = costs           # cost model is read per charge
    base = ApacheBench(kernel, vanilla).run(REQUESTS).busy_per_request_ns

    kernel2, server = make_minx(autostart=False, smvx=True,
                                protect="minx_http_process_request_line")
    server.process.costs = costs
    server.monitor.costs = costs
    server.start()
    busy = ApacheBench(kernel2, server).run(REQUESTS).busy_per_request_ns
    return busy / base - 1


@pytest.fixture(scope="module")
def heap_scan_sweep():
    sweep = {}
    for factor in (0.25, 1.0, 4.0):
        costs = DEFAULT_COSTS.scaled(
            heap_scan_slot_ns=int(DEFAULT_COSTS.heap_scan_slot_ns * factor))
        sweep[factor] = minx_overhead(costs)
    return sweep


def test_heap_scan_sensitivity_report(heap_scan_sweep):
    rows = [(f"x{factor}", f"{overhead * 100:.0f}%")
            for factor, overhead in sorted(heap_scan_sweep.items())]
    print_table("Ablation — minx sMVX overhead vs heap-scan slot cost",
                ("heap_scan_slot_ns factor", "overhead"), rows)


def test_overhead_monotone_in_scan_cost(heap_scan_sweep):
    values = [heap_scan_sweep[f] for f in (0.25, 1.0, 4.0)]
    assert values[0] < values[1] < values[2]


def test_qualitative_conclusions_robust(heap_scan_sweep):
    """Even at a quarter of the calibrated scan cost, per-request variant
    creation keeps sMVX far from native on servers — the paper's
    'cannot ultimately outperform ReMon' conclusion is not an artifact
    of one constant."""
    assert heap_scan_sweep[0.25] > 0.8      # still ~2x native
    assert heap_scan_sweep[4.0] < 12.0      # and not absurd at 4x


def test_nbench_shape_robust_to_rendezvous_cost():
    """Neural Net stays the suite's worst case across rendezvous-cost
    perturbations (its overhead is frequency-driven)."""
    for factor in (0.25, 4.0):
        costs = DEFAULT_COSTS.scaled(
            rendezvous_ns=int(DEFAULT_COSTS.rendezvous_ns * factor))
        harness = NbenchHarness(runs=1, costs=costs)
        numeric = harness.run_workload(0)
        neural = harness.run_workload(8)
        assert neural.overhead > numeric.overhead, factor


def test_costmodel_scaled_and_dict():
    scaled = DEFAULT_COSTS.scaled(rendezvous_ns=999)
    assert scaled.rendezvous_ns == 999
    assert DEFAULT_COSTS.rendezvous_ns != 999      # frozen original
    table = scaled.as_dict()
    assert table["rendezvous_ns"] == 999
    assert "heap_scan_slot_ns" in table


def test_costmodel_sweep_benchmark(benchmark):
    costs = DEFAULT_COSTS.scaled(heap_scan_slot_ns=100)
    overhead = benchmark.pedantic(lambda: minx_overhead(costs),
                                  iterations=1, rounds=2)
    assert overhead > 0
