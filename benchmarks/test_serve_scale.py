"""Production-scale serving: 1000 concurrent keep-alive clients.

The acceptance run for the serving control plane: ``ab -n 2000 -c 1000
-k`` (pipelined bursts of 2) against the pre-forked littled with 1 and 4
workers.  Three claims are asserted and exported to ``BENCH_serve.json``
for the CI serve-smoke job:

* *scaling* — wall-clock requests/sec grows >= 2x from 1 to 4 workers
  (each worker owns a virtual core; their local times overlap);
* *O(ready) epoll* — with ~1000 watched keep-alive connections per
  worker, a poll probes only the fds with traffic: the measured
  probes-per-poll must stay far below the interest-list size;
* *supervised determinism* — a kill + graceful-reload run under the
  flight recorder replays bit-identically, control-plane history pinned
  in the footer.
"""

import json
import os

from repro.apps import LittledServer
from repro.kernel import Kernel
from repro.kernel.fds import EpollFD
from repro.workloads import ApacheBench

REQUESTS = 4000
CONCURRENCY = 1000
PIPELINE = 2
#: wrk-style think time: each client holds its keep-alive connection
#: open, idle, between bursts — so the fleet carries ~1000 *resident*
#: connections, the case the O(ready) epoll exists for.
THINK_NS = 100_000_000
#: ample patience for the C=1000 stampede: SYN retransmits while the
#: accept queue churns, and a request timeout that outlasts the backlog.
CONNECT_RETRIES = 200
TIMEOUT_NS = 2_000_000_000
RPS_FLOOR_4W = 4_000
BENCH_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_serve.json")


def _epoll_cost(kernel, server) -> dict:
    """Aggregate poll/probe counters over the fleet's epoll instances."""
    polls = probes = interest = 0
    for worker in server.workers:
        pcb = kernel.state_of(worker.process.pid)
        for description in pcb.fds.values():
            if isinstance(description, EpollFD):
                polls += description.instance.polls
                probes += description.instance.probes
                interest = max(interest,
                               description.instance.max_interest)
    return {"polls": polls, "probes": probes,
            "max_interest": interest,
            "probes_per_poll": round(probes / max(polls, 1), 2)}


def _serve(workers: int) -> dict:
    kernel = Kernel(seed="bench-serve")
    server = LittledServer(kernel, workers=workers)
    server.start()
    bench = ApacheBench(kernel, server, pipeline=PIPELINE,
                        timeout_ns=TIMEOUT_NS, think_ns=THINK_NS,
                        connect_retries=CONNECT_RETRIES)
    result = bench.run(REQUESTS, concurrency=CONCURRENCY)
    epoll = _epoll_cost(kernel, server)
    row = {
        "workers": workers,
        "completed": result.requests_completed,
        "failures": result.failures,
        "wall_ms": round(result.wall_ns / 1e6, 3),
        "wall_rps": round(result.wall_throughput_rps, 1),
        "alarms": len(server.alarms.alarms),
        "per_worker": [w.served_snapshot for w in server.workers],
        "epoll": epoll,
    }
    server.shutdown()
    return row


def _supervised_determinism() -> dict:
    """Record a supervised kill + reload run twice; the footer pins
    (scheduler digest, supervisor history) must match bit-for-bit."""
    from repro.trace import record_littled

    def one():
        kernel, server, recorder = record_littled(
            seed="bench-serve-ctl",
            workload={"requests": 60, "concurrency": 12,
                      "timeout_ns": TIMEOUT_NS},
            control={"restart_budget": 2, "reload_at_ns": 6_000_000,
                     "worker_kills": [{"slot": 1, "at_ns": 2_000_000}]},
            workers=2)
        trace = recorder.finish()
        server.shutdown()
        return trace

    first, second = one(), one()
    assert first.footer["sched_digest"] == second.footer["sched_digest"]
    assert first.footer["supervisor"] == second.footer["supervisor"]
    pin = first.footer["supervisor"]
    assert pin["restarts_total"] == 1 and pin["reloads"] == 1
    assert pin["served_total"] == 60
    return {"sched_digest": first.footer["sched_digest"],
            "restarts": pin["restarts_total"],
            "reloads": pin["reloads"]}


def test_serve_scale(table):
    rows = [_serve(1), _serve(4)]
    for row in rows:
        assert row["completed"] == REQUESTS, row
        assert row["failures"] == 0, row
        assert row["alarms"] == 0, row            # zero unexpected alarms
        # O(ready): ~CONCURRENCY watched fds per fleet, but each poll
        # probes only the few with traffic in flight
        epoll = row["epoll"]
        assert epoll["max_interest"] > 100, epoll
        assert epoll["probes_per_poll"] < epoll["max_interest"] / 10, \
            f"epoll scan is not O(ready): {epoll}"

    scaling = rows[1]["wall_rps"] / rows[0]["wall_rps"]
    determinism = _supervised_determinism()

    payload = {
        "workload": f"ab -n {REQUESTS} -c {CONCURRENCY} -k "
                    f"(pipeline {PIPELINE}, think "
                    f"{THINK_NS / 1e6:.0f}ms) /index.html",
        "rows": rows,
        "scaling_1_to_4": round(scaling, 2),
        "supervised_determinism": determinism,
    }
    with open(BENCH_JSON, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    table(f"Keep-alive serving at C={CONCURRENCY} (virtual wall time)",
          ("workers", "wall ms", "wall rps", "probes/poll",
           "max interest"),
          [(r["workers"], f"{r['wall_ms']:.1f}", f"{r['wall_rps']:,.0f}",
            r["epoll"]["probes_per_poll"], r["epoll"]["max_interest"])
           for r in rows])

    assert scaling >= 2.0, \
        f"1 -> 4 workers scaled wall throughput only {scaling:.2f}x " \
        f"(need >= 2x); see {BENCH_JSON}"
    assert rows[1]["wall_rps"] >= RPS_FLOOR_4W, \
        f"4-worker throughput {rows[1]['wall_rps']} rps below the " \
        f"{RPS_FLOOR_4W} floor; see {BENCH_JSON}"
