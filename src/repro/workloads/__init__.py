"""Workload generators: the ApacheBench analogue and the scout-like URL
fuzzer (paper §4.1 and Figure 9)."""

from repro.workloads.ab import AbResult, ApacheBench
from repro.workloads.fuzz import UrlFuzzer

__all__ = ["AbResult", "ApacheBench", "UrlFuzzer"]
