"""ApacheBench (ab) analogue.

Plays the remote client of the paper's server evaluation: HTTP/1.1
keep-alive requests over the simulated loopback (0.1 ms latency), serving
a 4 KB page.  The client co-simulates with the server: after sending a
request it pumps the server's event loop until the full response has been
read, advancing virtual time exactly as a saturating closed-loop load
generator would.

Results carry both wall virtual time and the server's *busy* time; the
Figure 7 overhead normalization uses busy time per request (the saturated-
server regime the paper measures throughput in).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.kernel.kernel import Kernel


@dataclass
class AbResult:
    requests_attempted: int
    requests_completed: int = 0
    failures: int = 0
    wall_ns: float = 0.0
    server_busy_ns: float = 0.0
    server_cpu_ns: float = 0.0
    bytes_received: int = 0
    status_counts: dict = field(default_factory=dict)

    @property
    def busy_per_request_ns(self) -> float:
        if not self.requests_completed:
            return float("inf")
        return self.server_busy_ns / self.requests_completed

    @property
    def throughput_rps(self) -> float:
        """Saturated-server throughput: 1 / busy-time-per-request."""
        busy = self.busy_per_request_ns
        return 1e9 / busy if busy > 0 else 0.0

    @property
    def wall_per_request_ns(self) -> float:
        if not self.requests_completed:
            return float("inf")
        return self.wall_ns / self.requests_completed


class ApacheBench:
    """``ab -n <requests> -k`` against a simulated server."""

    def __init__(self, kernel: Kernel, server, path: str = "/index.html",
                 keepalive: bool = True, host: str = "localhost",
                 max_stalls: int = 2):
        self.kernel = kernel
        self.server = server            # MinxServer / LittledServer-like
        self.path = path
        self.keepalive = keepalive
        self.host = host
        #: how many empty recv+pump rounds to tolerate per read before
        #: declaring the request failed; fault-schedule runs (spurious
        #: EAGAIN, segmented deliveries) legitimately need more patience
        #: than the happy path's 2.
        self.max_stalls = max_stalls

    def _request_bytes(self, path: Optional[str] = None,
                       method: str = "GET") -> bytes:
        connection = "keep-alive" if self.keepalive else "close"
        return (f"{method} {path or self.path} HTTP/1.1\r\n"
                f"Host: {self.host}\r\n"
                f"User-Agent: ab/2.3-repro\r\n"
                f"Accept: */*\r\n"
                f"Connection: {connection}\r\n"
                f"\r\n").encode()

    def _recv_or_pump(self, sock, count: int) -> bytes:
        """Receive what's in flight; pump the server only when the pipe is
        truly empty (extra pumps are extra protected-region entries for a
        loop-protected server, so a real client's pacing matters)."""
        chunk = sock.recv_wait(count)
        if isinstance(chunk, bytes) and chunk:
            return chunk
        self.server.pump()
        chunk = sock.recv_wait(count)
        return chunk if isinstance(chunk, bytes) else b""

    def _read_response(self, sock) -> "tuple[int, bytes] | None":
        """Read exactly one HTTP response; returns (status, body)."""
        raw = b""
        stalls = 0
        while b"\r\n\r\n" not in raw:
            chunk = self._recv_or_pump(sock, 4096)
            if not chunk:
                stalls += 1
                if stalls > self.max_stalls:
                    return None
                continue
            raw += chunk
        head, _, rest = raw.partition(b"\r\n\r\n")
        status = int(head.split(b" ", 2)[1])
        content_length = 0
        for line in head.split(b"\r\n")[1:]:
            if line.lower().startswith(b"content-length:"):
                content_length = int(line.split(b":", 1)[1])
        body = rest
        stalls = 0
        while len(body) < content_length:
            chunk = self._recv_or_pump(sock, content_length - len(body))
            if not chunk:
                stalls += 1
                if stalls > self.max_stalls:
                    break
                continue
            stalls = 0
            body += chunk
        return status, body

    def run(self, requests: int, paths: Optional[List[str]] = None,
            concurrency: int = 1) -> AbResult:
        """Issue ``requests`` keep-alive requests over ``concurrency``
        connections (``ab -n <requests> -c <concurrency> -k``) and collect
        statistics.  Connections are driven round-robin; with c > 1 the
        server sees interleaved in-flight requests, like a real ab run."""
        process = self.server.process
        result = AbResult(requests)
        clock0 = self.kernel.clock.monotonic_ns
        busy0 = process.counter.total_ns
        cpu0 = process.total_cpu_ns()

        sockets = []
        for _ in range(max(1, concurrency)):
            sock = self.kernel.network.connect(self.server.port)
            if isinstance(sock, int):
                result.failures = requests
                return result
            sockets.append(sock)
        self.server.pump()              # let the server accept them all

        for index in range(requests):
            sock = sockets[index % len(sockets)]
            path = paths[index % len(paths)] if paths else self.path
            sock.send(self._request_bytes(path))
            self.server.pump()
            response = self._read_response(sock)
            if response is None:
                result.failures += 1
                continue
            status, body = response
            result.requests_completed += 1
            result.bytes_received += len(body)
            result.status_counts[status] = \
                result.status_counts.get(status, 0) + 1
        for sock in sockets:
            sock.close()
        self.server.pump()              # let the server reap the closes

        result.wall_ns = self.kernel.clock.monotonic_ns - clock0
        result.server_busy_ns = process.counter.total_ns - busy0
        result.server_cpu_ns = process.total_cpu_ns() - cpu0
        return result
