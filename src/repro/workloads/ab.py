"""ApacheBench (ab) analogue.

Plays the remote client of the paper's server evaluation: HTTP/1.1
keep-alive requests over the simulated loopback (0.1 ms latency), serving
a 4 KB page.

Two driving modes, selected by the server:

* **co-simulated** (classic, single-process server): after sending a
  request the client pumps the server's event loop until the full
  response has been read, advancing virtual time exactly as a
  saturating closed-loop load generator would.
* **scheduled** (multi-worker server with ``kernel.sched`` installed):
  ``ab -c C`` becomes C concurrent client *tasks*, each a closed loop
  over its own connection; clients park on socket readiness and workers
  park in ``epoll_wait``, so requests genuinely interleave across
  workers and the harness never calls ``pump()``.

Results carry both wall virtual time and the server's *busy* time; the
Figure 7 overhead normalization uses busy time per request (the saturated-
server regime the paper measures throughput in), while the multi-worker
scaling curves (BENCH_sched.json) use wall throughput.

Client behaviour is itself a scenario axis (`repro.sim`):

* ``client_mode="normal"`` — plain keep-alive GETs (the default);
* ``client_mode="slowloris"`` — every request is dripped onto the wire
  in small pieces with per-piece pacing delays (the CVE-2013-2028
  attacker's traffic shape applied to benign requests);
* ``client_mode="chunked"`` — benign chunked POST uploads shaped like
  the CVE request (chunk-size line + raw chunk bytes) but with an
  honest small size, exercising the discard path the exploit abuses;
* ``partial_preludes=N`` — N aggressor connections that send a
  truncated request head and slam the connection shut before the
  benchmark proper, leaving the server half-read state to clean up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.kernel.kernel import Kernel

#: client-behaviour modes understood by :class:`ApacheBench`.
CLIENT_MODES = ("normal", "slowloris", "chunked")


@dataclass
class AbResult:
    requests_attempted: int
    requests_completed: int = 0
    failures: int = 0
    wall_ns: float = 0.0
    server_busy_ns: float = 0.0
    server_cpu_ns: float = 0.0
    bytes_received: int = 0
    status_counts: dict = field(default_factory=dict)
    #: scheduled-mode shape: client tasks / server workers (0 = classic
    #: co-simulated run) and the scheduler's run_until outcome.
    concurrency: int = 1
    workers: int = 0
    sched_status: str = ""

    @property
    def busy_per_request_ns(self) -> float:
        if not self.requests_completed:
            return float("inf")
        return self.server_busy_ns / self.requests_completed

    @property
    def throughput_rps(self) -> float:
        """Saturated-server throughput: 1 / busy-time-per-request."""
        busy = self.busy_per_request_ns
        return 1e9 / busy if busy > 0 else 0.0

    @property
    def wall_per_request_ns(self) -> float:
        if not self.requests_completed:
            return float("inf")
        return self.wall_ns / self.requests_completed

    @property
    def wall_throughput_rps(self) -> float:
        """End-to-end throughput: completed requests per wall second —
        the number that scales with workers."""
        if not self.wall_ns:
            return 0.0
        return self.requests_completed * 1e9 / self.wall_ns


class ApacheBench:
    """``ab -n <requests> -k`` against a simulated server."""

    def __init__(self, kernel: Kernel, server, path: str = "/index.html",
                 keepalive: bool = True, host: str = "localhost",
                 max_stalls: int = 2, timeout_ns: float = 50_000_000,
                 client_mode: str = "normal", drip_bytes: int = 16,
                 drip_delay_ns: int = 200_000, chunk_bytes: int = 256,
                 partial_preludes: int = 0, pipeline: int = 1,
                 connect_retries: int = 20, think_ns: float = 0):
        if client_mode not in CLIENT_MODES:
            raise ValueError(f"unknown client_mode {client_mode!r}; "
                             f"expected one of {CLIENT_MODES}")
        self.kernel = kernel
        self.server = server            # MinxServer / LittledServer-like
        self.path = path
        self.keepalive = keepalive
        self.host = host
        self.client_mode = client_mode
        #: slowloris shape: piece size and per-piece pacing delay.
        self.drip_bytes = max(1, drip_bytes)
        self.drip_delay_ns = drip_delay_ns
        #: chunked-upload shape: honest chunk size, capped so head+body
        #: always fit the server's one-recv request buffer (the benign
        #: upload must not depend on multi-read body delivery).
        self.chunk_bytes = max(1, min(chunk_bytes, 1400))
        #: truncated-head aggressor connections fired before the run.
        self.partial_preludes = partial_preludes
        #: how many empty recv+pump rounds to tolerate per read before
        #: declaring the request failed; fault-schedule runs (spurious
        #: EAGAIN, segmented deliveries) legitimately need more patience
        #: than the happy path's 2.
        self.max_stalls = max_stalls
        #: scheduled mode: per-read park deadline (virtual ns) — the
        #: ab-style request timeout that turns a dead server into failed
        #: requests instead of a stalled run.
        self.timeout_ns = timeout_ns
        #: pipelined burst depth for scheduled keep-alive clients: send
        #: up to this many requests back-to-back, then read the matching
        #: responses in order.  1 = classic request/response lockstep.
        self.pipeline = max(1, pipeline)
        #: scheduled mode: SYN-retransmit budget.  When the accept queue
        #: is full (``ab -c 1000`` against a backlog-128 listener, or a
        #: conn-cap-gated worker fleet) connect returns ECONNREFUSED;
        #: like a TCP client retransmitting its SYN, the client task
        #: backs off (exponential, deterministic) and retries up to this
        #: many times before charging a failure.
        self.connect_retries = max(0, connect_retries)
        #: scheduled mode: idle time a keep-alive client parks between
        #: bursts while holding its connection open (wrk-style think
        #: time).  This is what builds a large *resident* connection set
        #: — the case the O(ready) epoll exists for.
        self.think_ns = max(0, think_ns)
        self._run_seq = 0

    def _request_bytes(self, path: Optional[str] = None,
                       method: str = "GET") -> bytes:
        connection = "keep-alive" if self.keepalive else "close"
        return (f"{method} {path or self.path} HTTP/1.1\r\n"
                f"Host: {self.host}\r\n"
                f"User-Agent: ab/2.3-repro\r\n"
                f"Accept: */*\r\n"
                f"Connection: {connection}\r\n"
                f"\r\n").encode()

    def _chunked_request_bytes(self, path: Optional[str] = None) -> bytes:
        """A benign chunked POST in the CVE-2013-2028 request shape —
        headers, the chunk-size line, then exactly that many raw body
        bytes — with an honest size, so the server's discard loop reads
        precisely the body and nothing lingers on the socket."""
        connection = "keep-alive" if self.keepalive else "close"
        size = self.chunk_bytes
        head = (f"POST {path or self.path} HTTP/1.1\r\n"
                f"Host: {self.host}\r\n"
                f"User-Agent: ab/2.3-repro\r\n"
                f"Transfer-Encoding: chunked\r\n"
                f"Connection: {connection}\r\n"
                f"\r\n"
                f"{size:x}\r\n").encode()
        return head + b"B" * size

    def _request_payload(self, path: Optional[str] = None) -> bytes:
        if self.client_mode == "chunked":
            return self._chunked_request_bytes(path)
        return self._request_bytes(path)

    def _send_request(self, sock, path: Optional[str] = None) -> None:
        """Put one request on the wire in the configured client shape."""
        data = self._request_payload(path)
        if self.client_mode == "slowloris":
            step = self.drip_bytes
            for piece_index, offset in enumerate(range(0, len(data), step)):
                sock.send(data[offset:offset + step],
                          piece_index * self.drip_delay_ns)
        else:
            sock.send(data)

    def _fire_partial_preludes(self) -> None:
        """Aggressor connections: send a truncated request head, then
        slam the connection shut.  The server must clean up the
        half-read state without alarming or wedging the listener."""
        for _ in range(self.partial_preludes):
            sock = self.kernel.network.connect(self.server.port)
            if isinstance(sock, int):
                continue                # refused: nothing to clean up
            head = self._request_bytes(self.path)
            sock.send(head[:max(1, len(head) // 2)])
            sock.close()

    def _recv_or_pump(self, sock, count: int) -> bytes:
        """Receive what's in flight; pump the server only when the pipe is
        truly empty (extra pumps are extra protected-region entries for a
        loop-protected server, so a real client's pacing matters)."""
        chunk = sock.recv_wait(count)
        if isinstance(chunk, bytes) and chunk:
            return chunk
        self.server.pump()
        chunk = sock.recv_wait(count)
        return chunk if isinstance(chunk, bytes) else b""

    def _sched_fetch(self, sock, count: int) -> bytes:
        """Scheduled-mode read: park the client task until the socket is
        readable (or the request timeout fires), never pump."""
        sched = self.kernel.sched
        now = self.kernel.clock.monotonic_ns
        if not sock.readable(now):
            woke = sched.park(horizon=sock.next_ready_at,
                              deadline_ns=now + self.timeout_ns)
            if not woke:
                return b""              # timeout or cancellation
        chunk = sock.recv_wait(count)
        return chunk if isinstance(chunk, bytes) else b""

    def _read_response(self, sock, fetch=None,
                       carry=None) -> "tuple[int, bytes, bool] | None":
        """Read exactly one HTTP response.

        Returns ``(status, body, keep)`` — ``keep`` is False when the
        server announced ``Connection: close`` (a draining worker during
        graceful reload, or an honoured close request), in which case the
        client must not reuse the connection.

        ``carry`` is a one-element list used as a cross-call buffer for
        pipelined connections: bytes of response N+1 that arrived in the
        same segment as response N are parked there instead of lost."""
        fetch = fetch or self._recv_or_pump
        raw = bytes(carry[0]) if carry and carry[0] else b""
        if carry:
            carry[0] = b""
        stalls = 0
        while b"\r\n\r\n" not in raw:
            chunk = fetch(sock, 4096)
            if not chunk:
                stalls += 1
                if stalls > self.max_stalls:
                    return None
                continue
            raw += chunk
        head, _, rest = raw.partition(b"\r\n\r\n")
        status = int(head.split(b" ", 2)[1])
        content_length = 0
        keep = True
        for line in head.split(b"\r\n")[1:]:
            if line.lower().startswith(b"content-length:"):
                content_length = int(line.split(b":", 1)[1])
            elif line.lower().startswith(b"connection:"):
                keep = line.split(b":", 1)[1].strip().lower() != b"close"
        body = rest
        stalls = 0
        while len(body) < content_length:
            chunk = fetch(sock, content_length - len(body))
            if not chunk:
                stalls += 1
                if stalls > self.max_stalls:
                    break
                continue
            stalls = 0
            body += chunk
        if carry is not None:
            carry[0] = body[content_length:]
        body = body[:content_length]
        return status, body, keep

    def run(self, requests: int, paths: Optional[List[str]] = None,
            concurrency: int = 1) -> AbResult:
        """Issue ``requests`` keep-alive requests over ``concurrency``
        connections (``ab -n <requests> -c <concurrency> -k``) and collect
        statistics.

        Against a classic single-process server, connections are driven
        round-robin with co-simulated pumps.  Against a scheduled
        multi-worker server, each connection becomes a concurrent client
        task and the scheduler interleaves them — see
        :meth:`_run_scheduled`.
        """
        if getattr(self.server, "workers_n", 0):
            return self._run_scheduled(requests, paths, concurrency)
        process = self.server.process
        result = AbResult(requests, concurrency=max(1, concurrency))
        clock0 = self.kernel.clock.monotonic_ns
        busy0 = process.counter.total_ns
        cpu0 = process.total_cpu_ns()

        sockets = []
        for _ in range(max(1, concurrency)):
            sock = self.kernel.network.connect(self.server.port)
            if isinstance(sock, int):
                result.failures = requests
                return result
            sockets.append(sock)
        self._fire_partial_preludes()
        # let the server accept them all: one pump is *not* enough in
        # general (each epoll_wait batch is bounded, and under a faulty
        # or high-latency schedule accepts trickle in), so pump until
        # the accept queue drains — bounded by the connection count so a
        # refusing server cannot stall the harness.
        listener = self.kernel.network.listener_at(self.server.port)
        for _ in range(len(sockets) + self.partial_preludes + 1):
            self.server.pump()
            if listener is None or not listener.pending_count():
                break

        for index in range(requests):
            sock = sockets[index % len(sockets)]
            path = paths[index % len(paths)] if paths else self.path
            self._send_request(sock, path)
            self.server.pump()
            response = self._read_response(sock)
            if response is None:
                result.failures += 1
                continue
            status, body, _keep = response
            result.requests_completed += 1
            result.bytes_received += len(body)
            result.status_counts[status] = \
                result.status_counts.get(status, 0) + 1
        for sock in sockets:
            sock.close()
        self.server.pump()              # let the server reap the closes

        result.wall_ns = self.kernel.clock.monotonic_ns - clock0
        result.server_busy_ns = process.counter.total_ns - busy0
        result.server_cpu_ns = process.total_cpu_ns() - cpu0
        return result

    def _run_scheduled(self, requests: int, paths: Optional[List[str]],
                       concurrency: int) -> AbResult:
        """``ab -n <requests> -c C`` against a scheduled multi-worker
        server: C coreless client tasks, each a closed request loop over
        its own keep-alive connection.  The scheduler interleaves client
        sends, worker accepts, and response reads; the harness never
        calls ``pump()``."""
        sched = self.kernel.sched
        if sched is None:
            raise RuntimeError("server has workers but kernel.sched is "
                               "not installed")
        n_clients = max(1, concurrency)
        workers = self.server.workers
        result = AbResult(requests, concurrency=n_clients,
                          workers=self.server.workers_n)
        clock0 = self.kernel.clock.monotonic_ns
        busy0 = sum(w.process.counter.total_ns for w in workers)
        cpu0 = sum(w.process.total_cpu_ns() for w in workers)
        quotas = [requests // n_clients +
                  (1 if i < requests % n_clients else 0)
                  for i in range(n_clients)]
        self._run_seq += 1
        # aggressor connections go in before the clients spawn; the
        # workers wake on their readiness/FIN during the run proper
        self._fire_partial_preludes()

        can_pipeline = self.keepalive and self.client_mode == "normal"

        def make_client(index: int, quota: int):
            def client() -> None:
                sock = None
                carry = [b""]
                served_on_conn = 0
                shot = 0
                syn_tries = 0
                dead_retries = 3
                while shot < quota:
                    me = sched.current
                    if me is not None and me.cancelled:
                        break
                    now = self.kernel.clock.monotonic_ns
                    if sock is None or not sock.writable(now):
                        if sock is not None:
                            sock.close()
                        sock = self.kernel.network.connect(self.server.port)
                        carry[0] = b""
                        served_on_conn = 0
                        if isinstance(sock, int):
                            # accept queue full (backlog cap / gated
                            # admission): retransmit the SYN after an
                            # exponential backoff, like a TCP client
                            sock = None
                            if syn_tries < self.connect_retries:
                                backoff = min(200_000 << syn_tries,
                                              6_400_000)
                                syn_tries += 1
                                sched.park(deadline_ns=now + backoff)
                                continue
                            syn_tries = 0
                            shot += 1      # retries exhausted: failure
                            continue
                        syn_tries = 0
                    burst = min(self.pipeline, quota - shot) \
                        if can_pipeline else 1
                    for j in range(burst):
                        path = paths[(shot + j) % len(paths)] \
                            if paths else self.path
                        self._send_request(sock, path)
                    done_in_burst = 0
                    dropped = False
                    for j in range(burst):
                        response = self._read_response(
                            sock, fetch=self._sched_fetch, carry=carry)
                        if response is None:
                            dropped = True
                            break
                        status, body, keep = response
                        result.requests_completed += 1
                        result.bytes_received += len(body)
                        result.status_counts[status] = \
                            result.status_counts.get(status, 0) + 1
                        done_in_burst += 1
                        served_on_conn += 1
                        if not keep:
                            # the server is closing (e.g. draining for a
                            # reload): any unanswered pipelined requests
                            # must be replayed on a fresh connection
                            dropped = j + 1 < burst
                            sock.close()
                            sock = None
                            break
                    shot += done_in_burst
                    if not dropped:
                        if self.think_ns and shot < quota:
                            # hold the keep-alive connection open, idle
                            sched.park(
                                deadline_ns=self.kernel.clock.monotonic_ns
                                + self.think_ns)
                        continue
                    now = self.kernel.clock.monotonic_ns
                    conn_died = (sock is None or not sock.writable(now)
                                 or sock.fin_visible(now))
                    retry = False
                    if self.keepalive and conn_died:
                        if served_on_conn > 0:
                            # RFC 7230 §6.3.1: a request sent on a
                            # *reused* connection that died before
                            # responding is safe to retry on a fresh
                            # one; progress on the old connection
                            # bounds the retries
                            retry = True
                        elif self.client_mode == "normal" \
                                and dead_retries > 0:
                            # idempotent GETs may also retry a
                            # connection that died before its first
                            # response (a crashed worker), under a
                            # small per-client budget
                            dead_retries -= 1
                            retry = True
                    if retry:
                        if sock is not None:
                            sock.close()
                        sock = None
                        continue           # re-send the unanswered shots
                    shot += burst - done_in_burst   # genuine failures
                if sock is not None:
                    sock.close()
            return client

        clients = [sched.spawn(f"ab{self._run_seq}-c{index}",
                               make_client(index, quota))
                   for index, quota in enumerate(quotas) if quota]
        result.sched_status = sched.run_until(
            lambda: all(task.done for task in clients))
        if result.sched_status == "stall":
            for task in clients:
                sched.cancel(task)
            sched.run_until(lambda: all(task.done for task in clients))
        result.failures = requests - result.requests_completed
        result.wall_ns = self.kernel.clock.monotonic_ns - clock0
        result.server_busy_ns = \
            sum(w.process.counter.total_ns for w in workers) - busy0
        result.server_cpu_ns = \
            sum(w.process.total_cpu_ns() for w in workers) - cpu0
        return result
