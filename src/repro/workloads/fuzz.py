"""scout-like URL fuzzer (paper §4.1, Figure 9).

Generates a stream of exploratory HTTP requests — path dictionary walks,
query mutations, odd methods, chunked POST bodies — to push execution into
corners the fixed ApacheBench workload never touches.  The taint-analysis
experiment runs it to watch the sensitive-function count grow over fuzzing
time.

Deterministic: a linear-congruential generator seeded explicitly, so
Figure 9's series reproduces bit-for-bit.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

_WORDS = [
    "index", "admin", "login", "static", "images", "css", "js", "api",
    "upload", "download", "config", "backup", "test", "dev", "old",
    "v1", "v2", "data", "files", "private", "tmp", "cache", "assets",
]

_EXTENSIONS = ["", ".html", ".php", ".bak", ".txt", ".json", ".old"]

_METHODS = ["GET", "GET", "GET", "HEAD", "POST"]


class _Lcg:
    def __init__(self, seed: int):
        self.state = seed & 0xFFFF_FFFF

    def next(self, bound: int) -> int:
        self.state = (self.state * 1103515245 + 12345) & 0x7FFF_FFFF
        return self.state % bound


class UrlFuzzer:
    """Yields (method, path, body) request tuples."""

    def __init__(self, seed: int = 0x5EED):
        self._rng = _Lcg(seed)
        self.generated = 0

    def _path(self) -> str:
        rng = self._rng
        depth = 1 + rng.next(3)
        parts = [_WORDS[rng.next(len(_WORDS))] for _ in range(depth)]
        ext = _EXTENSIONS[rng.next(len(_EXTENSIONS))]
        path = "/" + "/".join(parts) + ext
        mutation = rng.next(8)
        if mutation == 0:
            path += "?" + _WORDS[rng.next(len(_WORDS))] + "=" + str(
                rng.next(1000))
        elif mutation == 1:
            path = path + "/" * (1 + rng.next(3))
        elif mutation == 2:
            path = path.replace("/", "//", 1)
        elif mutation == 3:
            path = "/%2e%2e" + path
        return path

    def next_request(self) -> Tuple[str, str, bytes]:
        rng = self._rng
        method = _METHODS[rng.next(len(_METHODS))]
        path = self._path()
        body = b""
        if method == "POST":
            size = rng.next(64) + 1
            body = bytes((0x61 + rng.next(26)) for _ in range(size))
        self.generated += 1
        return method, path, body

    def batch(self, count: int) -> List[Tuple[str, str, bytes]]:
        return [self.next_request() for _ in range(count)]

    def request_bytes(self, method: str, path: str, body: bytes,
                      host: str = "localhost") -> bytes:
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}\r\n"
                f"User-Agent: scout-repro\r\n"
                f"Connection: keep-alive\r\n")
        if body:
            # chunked, like the bodies the CVE workload sends
            head += "Transfer-Encoding: chunked\r\n\r\n"
            payload = (f"{len(body):x}\r\n").encode() + body + b"\r\n0\r\n\r\n"
            return head.encode() + payload
        return (head + "\r\n").encode()

    def __iter__(self) -> Iterator[Tuple[str, str, bytes]]:
        while True:
            yield self.next_request()
