"""HTTP parsing helpers for guest code.

These operate on *guest memory* through a :class:`GuestContext` and charge
compute work, so everything the servers do is visible to the MMU (taint
tracking, MPK checks) and the cycle accounting.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.process.context import GuestContext

CRLF = b"\r\n"


def find_bytes(ctx: GuestContext, buf: int, length: int,
               needle: bytes, start: int = 0) -> int:
    """Index of ``needle`` in guest bytes ``[buf, buf+length)``, or -1."""
    data = ctx.read(buf, length) if length > 0 else b""
    ctx.charge(max(1, length // 16))
    index = data.find(needle, start)
    return index


def read_line(ctx: GuestContext, buf: int, length: int,
              start: int) -> Tuple[Optional[bytes], int]:
    """Read one CRLF-terminated line starting at offset ``start``.

    Returns ``(line_without_crlf, next_offset)`` or ``(None, start)`` if
    no full line is available yet.
    """
    data = ctx.read(buf + start, max(length - start, 0))
    ctx.charge(max(1, len(data) // 16))
    end = data.find(CRLF)
    if end < 0:
        return None, start
    return data[:end], start + end + 2


def parse_hex(ctx: GuestContext, raw: bytes) -> int:
    """Parse a hex chunk-size token into a raw unsigned 64-bit value.

    Faithful to the CVE-2013-2028 ingredient: values >= 2**63 are happily
    produced here and only later *misinterpreted* as signed by the caller.
    """
    ctx.charge(len(raw) + 1)
    value = 0
    for byte in raw:
        if 0x30 <= byte <= 0x39:
            digit = byte - 0x30
        elif 0x61 <= byte <= 0x66:
            digit = byte - 0x61 + 10
        elif 0x41 <= byte <= 0x46:
            digit = byte - 0x41 + 10
        else:
            break
        value = (value * 16 + digit) & (2 ** 64 - 1)
    return value


def parse_decimal(ctx: GuestContext, raw: bytes) -> int:
    ctx.charge(len(raw) + 1)
    value = 0
    negative = raw[:1] == b"-"
    for byte in raw[1:] if negative else raw:
        if not 0x30 <= byte <= 0x39:
            break
        value = value * 10 + (byte - 0x30)
    return -value if negative else value


def itoa(value: int) -> bytes:
    """Host-side int -> ASCII (the guest charges for the copy it writes)."""
    return str(int(value)).encode()


def header_value(ctx: GuestContext, buf: int, length: int,
                 name: bytes) -> Optional[bytes]:
    """Find a header's value (case-insensitive name match).

    The search is bounded to the header block — everything before the
    first blank line.  A request body (or a pipelined follow-up request)
    may legally contain header-shaped bytes like ``\\r\\nConnection:
    close``; matching those would let a POST body flip connection state.
    """
    data = ctx.read(buf, length)
    ctx.charge(max(1, length // 8))
    head_end = data.find(b"\r\n\r\n")
    if head_end >= 0:
        # keep the CRLF that terminates the last header line so its
        # value still ends at a CRLF, not at the buffer edge
        data = data[:head_end + 2]
    lower = data.lower()
    needle = b"\r\n" + name.lower() + b":"
    index = lower.find(needle)
    if index < 0:
        return None
    start = index + len(needle)
    end = lower.find(b"\r\n", start)
    if end < 0:
        end = len(data)
    return data[start:end].strip()


def http_date(ctx: GuestContext, tm_fields) -> bytes:
    """Format an RFC-1123-ish date from a TmStruct."""
    ctx.charge(16)
    days = (b"Sun", b"Mon", b"Tue", b"Wed", b"Thu", b"Fri", b"Sat")
    months = (b"Jan", b"Feb", b"Mar", b"Apr", b"May", b"Jun", b"Jul",
              b"Aug", b"Sep", b"Oct", b"Nov", b"Dec")
    return b"%s, %02d %s %d %02d:%02d:%02d GMT" % (
        days[tm_fields.tm_wday % 7], tm_fields.tm_mday,
        months[tm_fields.tm_mon % 12], tm_fields.tm_year + 1900,
        tm_fields.tm_hour, tm_fields.tm_min, tm_fields.tm_sec)
