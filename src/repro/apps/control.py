"""Production serving control plane.

The paper's serving evaluation (§4.1) assumes an nginx/lighttpd-style
master: pre-forked workers, a supervisor that restarts the ones that die
or trip MVX alarms, and zero-downtime reload.  This module provides that
master as one more deterministic scheduler task:

* :class:`Supervisor` — a coreless task ticking on virtual time.  Each
  tick it (a) detects exited workers and reprovisions them within a
  per-slot restart budget, (b) optionally treats divergence alarms as a
  kill signal (restart-on-alarm), (c) executes a scheduled graceful
  reload, and (d) samples a metrics snapshot (per-worker served counts,
  open connections, listener queue depth, alarm/restart totals) that the
  flight recorder exports through the trace stream.

* graceful reload — a new worker generation is booted onto the shared
  listener *first*; only then are the old workers flagged to drain
  (privileged store into the guest's ``G_DRAIN``, plus a scheduler
  ``kick`` to get them out of ``epoll_wait(-1)``).  Draining workers
  answer their in-flight requests with ``Connection: close`` and exit
  when their last connection does, so no accepted request is ever
  dropped.

Everything the supervisor does is a deterministic function of scheduler
state and virtual time, so supervised runs record and replay
bit-identically; its final :meth:`Supervisor.snapshot` is pinned in the
trace footer.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.apps.littled import LittledServer, LittledWorker


class Supervisor:
    """Master task supervising a :class:`LittledServer` worker fleet."""

    def __init__(self, server: LittledServer,
                 restart_budget: int = 2,
                 tick_ns: float = 1_000_000,
                 restart_on_alarm: bool = False,
                 reload_at_ns: Optional[float] = None):
        if not server.workers_n:
            raise ValueError("the supervisor needs a scheduled "
                             "multi-worker server (workers >= 1)")
        self.server = server
        self.sched = server.sched
        self.kernel = server.kernel
        self.restart_budget = restart_budget
        self.tick_ns = tick_ns
        self.restart_on_alarm = restart_on_alarm
        self.reload_at_ns = reload_at_ns

        #: control-plane event log (restarts, reloads, budget exhaustion)
        self.events: List[Dict] = []
        #: per-slot restart counts (the budget is per slot, not global)
        self.restart_counts: Dict[int, int] = {}
        self.restarts_total = 0
        self.reloads = 0
        self.generation = 0
        #: fn(sample_dict) — the flight recorder's metrics tap
        self.metrics_hook: Optional[Callable[[Dict], None]] = None
        self.metric_samples = 0
        self._last_sample: Optional[Dict] = None
        #: fn(worker) called for every worker the supervisor provisions —
        #: the recorder re-taps the new process, baselines extend their
        #: monitoring, etc.
        self.worker_hooks: List[Callable[[LittledWorker], None]] = []

        self.task = None
        self._stop = False
        self._reload_requested = False
        self._reload_done = False
        #: workers whose exit is deliberate (drained generations) — their
        #: task.done must not be read as a crash
        self._expected_exits: set = set()
        self._alarms_seen = 0
        #: serial for provisioned-worker names (w0g1, w0g2, ...)
        self._serial = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "Supervisor":
        self.server.supervisor = self
        self.task = self.sched.spawn(f"{self.server.name}-supervisor",
                                     self._run)
        return self

    def stop(self) -> None:
        """Stand the supervisor down (host-side, before server shutdown)."""
        if self.task is None or self.task.done:
            return
        self._stop = True
        self.sched.cancel(self.task)
        self.sched.run_until(lambda: self.task.done)
        # one closing sample so snapshot()'s served_final reflects the
        # fleet's end state, not the last mid-load tick
        self._sample_metrics(self.kernel.clock.monotonic_ns)

    def request_reload(self) -> None:
        self._reload_requested = True

    # -- the supervisor task --------------------------------------------------

    def _run(self) -> None:
        while not self.task.cancelled and not self._stop:
            self._tick()
            self.sched.park(
                deadline_ns=self.kernel.clock.monotonic_ns + self.tick_ns)

    def _tick(self) -> None:
        now = self.kernel.clock.monotonic_ns
        if (self.reload_at_ns is not None and not self._reload_done
                and now >= self.reload_at_ns):
            self._reload_requested = True
        if self._reload_requested:
            self._reload_requested = False
            self._reload(now)
        self._reap_alarms(now)
        self._reap_crashes(now)
        self._sample_metrics(now)

    # -- crash / alarm recovery -----------------------------------------------

    def _reap_crashes(self, now: float) -> None:
        for slot, worker in enumerate(self.server.workers):
            if worker.task is None or not worker.task.done:
                continue
            if worker in self._expected_exits:
                continue
            if not self._restart(slot, "crash", now):
                # budget exhausted: the slot stays down — remember the
                # corpse so the exhaustion is logged once, not per tick
                self._expected_exits.add(worker)

    def _reap_alarms(self, now: float) -> None:
        alarms = self.server.alarms.alarms
        fresh, self._alarms_seen = alarms[self._alarms_seen:], len(alarms)
        if not fresh or not self.restart_on_alarm:
            return
        pids = []
        for report in fresh:
            if report.pid >= 0 and report.pid not in pids:
                pids.append(report.pid)
        for slot, worker in enumerate(self.server.workers):
            if worker.process.pid not in pids:
                continue
            if worker.task is not None and not worker.task.done:
                # the alarmed worker is still serving: take it out first
                self._expected_exits.add(worker)
                self.sched.cancel(worker.task)
            if not self._restart(slot, "alarm", now):
                self._expected_exits.add(worker)

    def _restart(self, slot: int, reason: str, now: float) -> bool:
        spent = self.restart_counts.get(slot, 0)
        if spent >= self.restart_budget:
            self.events.append({"event": "budget-exhausted", "slot": slot,
                                "reason": reason, "at_ns": now})
            return False
        self.restart_counts[slot] = spent + 1
        self.restarts_total += 1
        new = self._provision(slot)
        self.events.append({
            "event": "restart", "slot": slot, "reason": reason,
            "at_ns": now, "pid": new.process.pid,
            "name": new.process.name,
            "budget_left": self.restart_budget - spent - 1})
        return True

    # -- graceful reload --------------------------------------------------------

    def _reload(self, now: float) -> None:
        """Boot a full new generation on the shared listener, then drain
        the old one.  Ordering matters: the new workers' epoll sets are
        watching the listener *before* any old worker stops accepting,
        so there is no instant with nobody accepting."""
        old = list(self.server.workers)
        self.generation += 1
        for slot, worker in enumerate(old):
            self._provision(slot)
        for worker in old:
            if worker.task is None or worker.task.done:
                continue
            self._expected_exits.add(worker)
            self.server.retired.append(worker)
            worker.request_drain()
            self.sched.kick(worker.task)
        self.reloads += 1
        self._reload_done = True
        self.events.append({
            "event": "reload", "at_ns": now,
            "generation": self.generation,
            "drained": [w.process.name for w in old]})

    def _provision(self, slot: int) -> LittledWorker:
        """Build, boot, and schedule a replacement worker for ``slot``."""
        old = self.server.workers[slot]
        if old not in self.server.retired and old.task is not None \
                and old.task.done:
            self.server.retired.append(old)
        self._serial += 1
        new = LittledWorker(self.server, slot, old.core,
                            generation=self._serial)
        rc = self.server.boot_worker(new)
        if rc < 0:
            raise RuntimeError(
                f"worker slot {slot} failed to re-initialize: {rc}")
        self.server.workers[slot] = new
        for hook in self.worker_hooks:
            hook(new)
        self.server.spawn_worker_task(new)
        return new

    # -- metrics ----------------------------------------------------------------

    def _sample_metrics(self, now: float) -> None:
        listener = self.kernel.network.listener_at(self.server.port)
        previous = {w["pid"]: w["served"]
                    for w in self._last_sample["workers"]} \
            if self._last_sample else {}
        workers = []
        for slot, worker in enumerate(self.server.workers):
            served = worker.served_snapshot
            workers.append({
                "slot": slot,
                "pid": worker.process.pid,
                "name": worker.process.name,
                "served": served,
                "served_delta": served - previous.get(worker.process.pid, 0),
                "open_conns": worker.active_connections,
                "restarts": self.restart_counts.get(slot, 0),
            })
        sample = {
            "at_ns": now,
            "generation": self.generation,
            "queue_depth": listener.pending_count() if listener else 0,
            "alarms": len(self.server.alarms.alarms),
            "restarts_total": self.restarts_total,
            "reloads": self.reloads,
            # cumulative across generations: retired (drained/crashed)
            # workers keep their counts
            "served_total": sum(w["served"] for w in workers)
            + sum(w.served_snapshot for w in self.server.retired),
            "workers": workers,
        }
        self._last_sample = sample
        self.metric_samples += 1
        if self.metrics_hook is not None:
            self.metrics_hook(sample)

    # -- trace pins --------------------------------------------------------------

    def snapshot(self) -> Dict:
        """Deterministic summary pinned in the trace footer."""
        served = {w["name"]: w["served"]
                  for w in (self._last_sample or {}).get("workers", [])}
        return {
            "generation": self.generation,
            "reloads": self.reloads,
            "restarts_total": self.restarts_total,
            "restart_counts": {str(slot): count for slot, count
                               in sorted(self.restart_counts.items())},
            "metric_samples": self.metric_samples,
            "events": [dict(event) for event in self.events],
            "served_final": served,
            # read fresh (privileged peeks): the last tick's sample may
            # predate the final requests of the run
            "served_total": sum(
                w.served_snapshot
                for w in self.server.workers + self.server.retired),
        }


def spawn_worker_kill(server: LittledServer, slot: int,
                      at_ns: float) -> None:
    """Chaos helper: a coreless task that cancels worker ``slot``'s task
    at virtual instant ``at_ns`` — the deterministic stand-in for a
    worker segfault mid-load.  Shared by the recorder and the replayer so
    supervised-kill runs reproduce exactly."""
    sched = server.sched
    victim = server.workers[slot]

    def chaos() -> None:
        sched.park(deadline_ns=at_ns)
        if victim.task is not None and not victim.task.done:
            sched.cancel(victim.task)

    sched.spawn(f"{server.name}-chaos-kill-w{slot}", chaos)
