"""nbench / BYTEmark (Figure 6).

Ten single-threaded workloads with the original suite's character:
integer/FP/memory-system heavy, minimal I/O — except Neural Net, which
loads its model from a file (the paper attributes its ~16% overhead, the
suite's highest, to exactly that I/O).

Each workload's "main logic" is enclosed in ``mvx_start``/``mvx_end``
when run under sMVX, matching §4.1.
"""

from repro.apps.nbench.workloads import (
    NBENCH_WORKLOADS,
    WorkloadSpec,
    build_nbench_image,
    provision_nbench_files,
)
from repro.apps.nbench.harness import NbenchHarness, NbenchResult

__all__ = [
    "NBENCH_WORKLOADS",
    "NbenchHarness",
    "NbenchResult",
    "WorkloadSpec",
    "build_nbench_image",
    "provision_nbench_files",
]
