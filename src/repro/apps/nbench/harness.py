"""Harness for running nbench vanilla vs under sMVX (Figure 6).

Mirrors the paper's procedure: each workload's main logic is enclosed in
``mvx_start``/``mvx_end``, three separate runs are taken for each
configuration, and mean execution (virtual wall) times are compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.nbench.workloads import (
    NBENCH_WORKLOADS,
    build_nbench_image,
    provision_nbench_files,
)
from repro.core import AlarmLog, attach_smvx, build_smvx_stub_image
from repro.kernel import Kernel
from repro.libc import build_libc_image
from repro.process import GuestProcess
from repro.process.context import to_signed


@dataclass
class NbenchResult:
    name: str
    vanilla_ns: float
    smvx_ns: float
    checksum_vanilla: int
    checksum_smvx: int

    @property
    def overhead(self) -> float:
        """Normalized slowdown: 0.07 == 7% (the Figure 6 y-axis)."""
        if self.vanilla_ns == 0:
            return 0.0
        return self.smvx_ns / self.vanilla_ns - 1.0

    @property
    def consistent(self) -> bool:
        return self.checksum_vanilla == self.checksum_smvx


class NbenchHarness:
    """Runs the suite in both configurations on fresh machines."""

    def __init__(self, runs: int = 3, costs=None,
                 variant_strategy: str = "shift", fault_schedule=None):
        self.runs = runs
        self.costs = costs
        self.variant_strategy = variant_strategy
        #: optional :class:`repro.kernel.faults.FaultSchedule` armed on
        #: every fresh machine (the adversarial-battery conformance runs).
        self.fault_schedule = fault_schedule

    def _run_once(self, index: int, smvx: bool) -> "tuple[float, int]":
        kernel = Kernel()
        provision_nbench_files(kernel.vfs)
        if self.fault_schedule is not None:
            kernel.faults.install(self.fault_schedule)
        if self.costs is not None:
            process = GuestProcess(kernel, "nbench", heap_pages=128,
                                   costs=self.costs)
        else:
            process = GuestProcess(kernel, "nbench", heap_pages=128)
        process.load_image(build_libc_image(), tag="libc")
        process.load_image(build_smvx_stub_image(), tag="libsmvx")
        target = process.load_image(build_nbench_image(), main=True)
        spec = NBENCH_WORKLOADS[index]
        process.app_config = {"protect": spec.func if smvx else None}
        alarms = AlarmLog()
        if smvx:
            attach_smvx(process, target, alarm_log=alarms,
                        variant_strategy=self.variant_strategy)
        before = process.counter.total_ns
        checksum = to_signed(process.call_function("nb_main", index))
        elapsed = process.counter.total_ns - before
        if smvx and alarms.triggered:
            raise AssertionError(
                f"unexpected divergence in {spec.name}: {alarms.alarms}")
        return elapsed, checksum

    def run_workload(self, index: int) -> NbenchResult:
        spec = NBENCH_WORKLOADS[index]
        vanilla = [self._run_once(index, smvx=False)
                   for _ in range(self.runs)]
        protected = [self._run_once(index, smvx=True)
                     for _ in range(self.runs)]
        return NbenchResult(
            name=spec.name,
            vanilla_ns=sum(t for t, _ in vanilla) / self.runs,
            smvx_ns=sum(t for t, _ in protected) / self.runs,
            checksum_vanilla=vanilla[0][1],
            checksum_smvx=protected[0][1],
        )

    def run_suite(self) -> List[NbenchResult]:
        return [self.run_workload(i) for i in range(len(NBENCH_WORKLOADS))]
