"""The ten BYTEmark workloads, as guest functions.

Every workload operates on buffers in *guest memory* (allocated through
guest ``malloc``, filled from ``/dev/urandom`` or deterministic seeds) and
charges compute in proportion to the work its algorithm actually performs,
so the cycle accounting matches the suite's published CPU/FPU/memory
character.  Each returns a checksum so correctness is testable and the
leader/follower lockstep has real values to agree on.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.kernel.vfs import O_RDONLY
from repro.loader.image import ImageBuilder, ProgramImage
from repro.process.context import GuestContext, to_signed

_MASK64 = (1 << 64) - 1

#: default problem scale (kept modest: the simulation charges virtual
#: cycles for the real operation counts, so small inputs still produce the
#: right *shape*).
SCALE = 1


def _fill_deterministic(ctx: GuestContext, buf: int, count: int,
                        seed: int) -> List[int]:
    """Fill a guest buffer with LCG words; returns them for the host."""
    values = []
    state = seed & 0x7FFF_FFFF
    for _ in range(count):
        state = (state * 1103515245 + 12345) & 0x7FFF_FFFF
        values.append(state)
    ctx.write(buf, struct.pack(f"<{count}Q", *values))
    return values


def _checksum(values) -> int:
    acc = 0
    for v in values:
        acc = (acc * 31 + int(v)) & _MASK64
    return acc


# ---------------------------------------------------------------------------
# integer workloads
# ---------------------------------------------------------------------------

def nb_numeric_sort(ctx: GuestContext) -> int:
    """Heapsort of 32-bit integers (the suite's Numeric Sort)."""
    count = 2048 * SCALE
    buf = ctx.libc("malloc", count * 8)
    values = _fill_deterministic(ctx, buf, count, seed=101)
    values.sort()
    ctx.write(buf, struct.pack(f"<{count}Q", *values))
    ctx.charge(int(count * math.log2(count)) * 160)    # n log n compares
    checksum = _checksum(values[::97])
    ctx.libc("free", buf)
    return checksum & 0xFFFF_FFFF


def nb_string_sort(ctx: GuestContext) -> int:
    """Sort variable-length strings with memmove-style shuffling."""
    count = 512 * SCALE
    width = 16
    buf = ctx.libc("malloc", count * width)
    state = 7
    rows = []
    for i in range(count):
        state = (state * 48271) % 0x7FFF_FFFF
        rows.append(b"%014x" % state)
    ctx.write(buf, b"".join(row.ljust(width, b"\x00") for row in rows))
    rows.sort()
    ctx.write(buf, b"".join(row.ljust(width, b"\x00") for row in rows))
    ctx.charge(int(count * math.log2(count)) * width * 30)
    ctx.libc("strlen", buf)        # the suite's pointer-walk flavour
    checksum = _checksum([int(row, 16) for row in rows[::31]])
    ctx.libc("free", buf)
    return checksum & 0xFFFF_FFFF


def nb_bitfield(ctx: GuestContext) -> int:
    """Bit-manipulation over a large bitmap."""
    bits = 32768 * SCALE
    buf = ctx.libc("malloc", bits // 8)
    ctx.libc("memset", buf, 0, bits // 8)
    bitmap = bytearray(bits // 8)
    ops = 4096 * SCALE
    state = 99
    for _ in range(ops):
        state = (state * 1103515245 + 12345) & 0x7FFF_FFFF
        index = state % bits
        bitmap[index // 8] ^= 1 << (index % 8)
    ctx.write(buf, bytes(bitmap))
    ctx.charge(ops * 1200)
    checksum = sum(bitmap) & _MASK64
    ctx.libc("free", buf)
    return checksum & 0xFFFF_FFFF


def nb_fp_emulation(ctx: GuestContext) -> int:
    """Software floating-point: fixed-point mul/div loops."""
    iterations = 6000 * SCALE
    acc = 1 << 16                  # 16.16 fixed point
    for i in range(1, iterations + 1):
        acc = (acc * ((i % 37) + 2)) % (1 << 32)
        acc = (acc << 16) // ((i % 23) + 3)
        acc &= 0xFFFF_FFFF
        acc |= 1
    ctx.charge(iterations * 300)   # emulated FP is many int ops
    return acc & 0xFFFF_FFFF


def nb_assignment(ctx: GuestContext) -> int:
    """The assignment-problem solver (greedy row-reduction flavour)."""
    n = 24 * SCALE
    buf = ctx.libc("malloc", n * n * 8)
    state = 3
    cost = []
    for _ in range(n * n):
        state = (state * 48271) % 0x7FFF_FFFF
        cost.append(state % 1000)
    ctx.write(buf, struct.pack(f"<{n * n}Q", *cost))
    total = 0
    used = set()
    for row in range(n):
        best, best_col = None, -1
        for col in range(n):
            if col in used:
                continue
            value = cost[row * n + col]
            if best is None or value < best:
                best, best_col = value, col
        used.add(best_col)
        total += best
    ctx.charge(n * n * 9000)
    ctx.libc("free", buf)
    return total & 0xFFFF_FFFF


def nb_idea(ctx: GuestContext) -> int:
    """IDEA-like block cipher over a guest buffer."""
    blocks = 512 * SCALE
    buf = ctx.libc("malloc", blocks * 8)
    values = _fill_deterministic(ctx, buf, blocks, seed=77)
    key = (0x2DD4, 0x55A1, 0x9C13, 0x6B87)
    out = []
    for v in values:
        x = v & 0xFFFF
        for k in key:
            x = (x * k) % 65537 & 0xFFFF
            x = (x + k) & 0xFFFF
            x ^= (v >> 16) & 0xFFFF
        out.append(x)
    ctx.write(buf, struct.pack(f"<{blocks}Q", *out))
    ctx.charge(blocks * 4 * 900)
    checksum = _checksum(out[::13])
    ctx.libc("free", buf)
    return checksum & 0xFFFF_FFFF


def nb_huffman(ctx: GuestContext) -> int:
    """Huffman compression of a text-like buffer."""
    size = 4096 * SCALE
    buf = ctx.libc("malloc", size)
    state = 17
    data = bytearray()
    alphabet = b"etaoin shrdlucmfwypvbgkqjxz.\n"
    for _ in range(size):
        state = (state * 1103515245 + 12345) & 0x7FFF_FFFF
        data.append(alphabet[state % len(alphabet)])
    ctx.write(buf, bytes(data))

    freq: Dict[int, int] = {}
    for byte in data:
        freq[byte] = freq.get(byte, 0) + 1
    # build the Huffman tree
    import heapq
    heap = [(count, i, (symbol,)) for i, (symbol, count)
            in enumerate(sorted(freq.items()))]
    heapq.heapify(heap)
    uid = len(heap)
    lengths: Dict[int, int] = {s: 0 for s in freq}
    while len(heap) > 1:
        c1, _, s1 = heapq.heappop(heap)
        c2, _, s2 = heapq.heappop(heap)
        for symbol in s1 + s2:
            lengths[symbol] += 1
        heapq.heappush(heap, (c1 + c2, uid, s1 + s2))
        uid += 1
    compressed_bits = sum(lengths[b] for b in data)
    ctx.charge(size * 480 + len(freq) * 16)
    ctx.libc("free", buf)
    return compressed_bits & 0xFFFF_FFFF


# ---------------------------------------------------------------------------
# floating-point workloads
# ---------------------------------------------------------------------------

def nb_fourier(ctx: GuestContext) -> int:
    """Fourier coefficients by numeric integration."""
    terms = 24 * SCALE
    steps = 100
    coeffs = []
    for n in range(1, terms + 1):
        acc = 0.0
        for k in range(steps):
            x = (k + 0.5) * (2 * math.pi / steps)
            acc += (x ** 2) * math.cos(n * x)
        coeffs.append(acc * 2 / steps)
    ctx.charge(terms * steps * 800)
    packed = struct.pack(f"<{terms}d", *coeffs)
    buf = ctx.libc("malloc", len(packed))
    ctx.write(buf, packed)
    ctx.libc("free", buf)
    return int(abs(sum(coeffs)) * 1000) & 0xFFFF_FFFF


def nb_neural_net(ctx: GuestContext) -> int:
    """Back-propagation network — loads its model file first.

    The file I/O (read in small chunks, like the original's text parser)
    is what gives Neural Net the suite's highest sMVX overhead (~16%,
    paper Figure 6): every in-region read is intercepted and emulated.
    """
    path = ctx.stack_alloc(32)
    ctx.write_cstring(path, b"/etc/nnet.dat")
    fd = to_signed(ctx.libc("open", path, O_RDONLY))
    if fd < 0:
        return 0
    weights: List[float] = []
    chunk = ctx.stack_alloc(64)
    raw = b""
    while True:
        n = to_signed(ctx.libc("read", fd, chunk, 64))
        if n <= 0:
            break
        raw += ctx.read(chunk, n)
    ctx.libc("close", fd)
    for token in raw.split():
        weights.append(int(token) / 1000.0)

    # train a tiny 8-4-1 network for a few epochs
    epochs = 12 * SCALE
    inputs = [[(i >> b) & 1 for b in range(8)] for i in range(16)]
    w1 = [weights[(i * 4 + j) % len(weights)] for i in range(8)
          for j in range(4)]
    w2 = [weights[(j * 7) % len(weights)] for j in range(4)]
    for _ in range(epochs):
        for vec in inputs:
            hidden = []
            for j in range(4):
                s = sum(vec[i] * w1[i * 4 + j] for i in range(8))
                hidden.append(1.0 / (1.0 + math.exp(-s)))
            out = 1.0 / (1.0 + math.exp(-sum(
                hidden[j] * w2[j] for j in range(4))))
            error = (sum(vec) / 8.0) - out
            for j in range(4):
                w2[j] += 0.25 * error * hidden[j]
    ctx.charge(epochs * len(inputs) * (8 * 4 + 4) * 70)
    return int(abs(sum(w2)) * 10000) & 0xFFFF_FFFF


def nb_lu_decomposition(ctx: GuestContext) -> int:
    """LU decomposition of a dense matrix."""
    n = 16 * SCALE
    matrix = [[((i * 7 + j * 13) % 19) + (10.0 if i == j else 0.0)
               for j in range(n)] for i in range(n)]
    for k in range(n):
        for i in range(k + 1, n):
            factor = matrix[i][k] / matrix[k][k]
            for j in range(k, n):
                matrix[i][j] -= factor * matrix[k][j]
            matrix[i][k] = factor
    ctx.charge(int(2 * n ** 3 / 3) * 750)
    packed = struct.pack(f"<{n}d", *[matrix[i][i] for i in range(n)])
    buf = ctx.libc("malloc", len(packed))
    ctx.write(buf, packed)
    ctx.libc("free", buf)
    determinant_log = sum(math.log(abs(matrix[i][i])) for i in range(n))
    return int(determinant_log * 1000) & 0xFFFF_FFFF


# ---------------------------------------------------------------------------
# registry & image
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadSpec:
    name: str                  # display name (the paper's axis labels)
    func: str                  # guest symbol
    fn: Callable
    io_heavy: bool = False


NBENCH_WORKLOADS: Tuple[WorkloadSpec, ...] = (
    WorkloadSpec("Numeric Sort", "nb_numeric_sort", nb_numeric_sort),
    WorkloadSpec("String Sort", "nb_string_sort", nb_string_sort),
    WorkloadSpec("Bitfield", "nb_bitfield", nb_bitfield),
    WorkloadSpec("FP Emulation", "nb_fp_emulation", nb_fp_emulation),
    WorkloadSpec("Fourier", "nb_fourier", nb_fourier),
    WorkloadSpec("Assignment", "nb_assignment", nb_assignment),
    WorkloadSpec("IDEA", "nb_idea", nb_idea),
    WorkloadSpec("Huffman", "nb_huffman", nb_huffman),
    WorkloadSpec("Neural Net", "nb_neural_net", nb_neural_net,
                 io_heavy=True),
    WorkloadSpec("LU Decomposition", "nb_lu_decomposition",
                 nb_lu_decomposition),
)


def _nb_run(ctx: GuestContext, index: int) -> int:
    """Dispatch through the workload pointer table, wrapping the main
    logic in the sMVX region when the annotation asks for it."""
    table = ctx.symbol("nb_workload_table")
    target = ctx.read_word(table + 8 * index)
    config = getattr(ctx.process, "app_config", None) or {}
    spec = NBENCH_WORKLOADS[index]
    if config.get("protect") == spec.func:
        name_ptr = ctx.symbol(f"nbname_{spec.func}")
        ctx.libc("mvx_start", name_ptr, 0)
        try:
            return ctx.call(target)
        finally:
            ctx.libc("mvx_end")
    return ctx.call(target)


def _nb_main(ctx: GuestContext, index: int) -> int:
    ctx.libc("mvx_init")
    return ctx.call("nb_run", index)


def build_nbench_image() -> ProgramImage:
    builder = ImageBuilder("nbench")
    builder.import_libc("mvx_init", "mvx_start", "mvx_end",
                        "open", "read", "close", "malloc", "free",
                        "memset", "strlen", "time", "getpid")
    builder.add_hl_function("nb_main", _nb_main, 1, size=2048,
                            calls=("mvx_init", "nb_run"))
    builder.add_hl_function(
        "nb_run", _nb_run, 1, size=2048,
        calls=tuple(spec.func for spec in NBENCH_WORKLOADS) +
        ("mvx_start", "mvx_end"))
    for spec in NBENCH_WORKLOADS:
        calls = ("malloc", "free")
        if spec.io_heavy:
            calls = ("open", "read", "close", "malloc", "free")
        builder.add_hl_function(spec.func, spec.fn, 0, size=6144,
                                calls=calls)
        builder.add_rodata(f"nbname_{spec.func}",
                           spec.func.encode() + b"\x00")
    builder.add_pointer_table(
        "nb_workload_table", [spec.func for spec in NBENCH_WORKLOADS])
    builder.add_bss("nb_scratch", 16 * 1024)
    return builder.build()


def provision_nbench_files(vfs) -> None:
    """Write the Neural Net model file (the suite ships NNET.DAT)."""
    values = []
    state = 42
    for _ in range(256):
        state = (state * 48271) % 0x7FFF_FFFF
        values.append(str(state % 2000 - 1000))
    vfs.write_file("/etc/nnet.dat", (" ".join(values)).encode())
