"""littled — the Lighttpd stand-in (guest application).

Structure mirrors Lighttpd where the paper instruments it:

* ``server_main_loop`` — the root containing *all* sensitive functions;
  the paper protects it (70% of total cycles, §4.1) so the whole loop
  runs in one long-lived region (variant creation happens once, not per
  request — contrast with minx).
* ``littled_buffer_*`` — Lighttpd's chatty buffer API: every request does
  a flurry of ``malloc``/``memcpy``/``strlen``/``free`` calls, which is
  why its libc:syscall ratio (≈7.8) exceeds Nginx's (≈5.4) in Figure 7.
* responses go out with ``writev`` (header + body from a heap buffer)
  rather than ``sendfile``.
"""

from __future__ import annotations

from typing import Optional

from repro.apps import httputil
from repro.kernel.clock import TmStruct
from repro.kernel.epoll_impl import EPOLL_CTL_ADD, EPOLL_CTL_DEL, EPOLLIN
from repro.kernel.kernel import Kernel
from repro.kernel.vfs import O_APPEND, O_CREAT, O_RDONLY, O_WRONLY
from repro.loader.image import ImageBuilder, ProgramImage
from repro.process.context import GuestContext, to_signed
from repro.process.process import GuestProcess

_MASK64 = (1 << 64) - 1

REQ_BUF_SIZE = 2048

CONN_FD = 0
CONN_REQBUF = 8
CONN_REQLEN = 16
CONN_URIBUF = 24          # littled copies the URI into its own buffer
CONN_STATUS = 32
CONN_KEEPALIVE = 40
CONN_SIZE = 64

G_LISTEN_FD = 0
G_EPFD = 8
G_LOG_FD = 16
G_SERVED = 24
G_DRAIN = 32              # set by the control plane: finish + exit
G_NCONN = 40              # open connections (admission control / drain)
G_CONN_CAP = 48           # admission cap (0 = unlimited)
G_GATED = 56              # listener currently removed from the epoll set

PROTECTABLE = (
    "server_main_loop",
    "littled_connection_handle",
    "littled_http_request_parse",
    "littled_http_response_prepare",
)

TAINTED_FUNCTIONS = (
    "littled_http_request_parse",
    "littled_http_response_prepare",
    "littled_http_response_write",
    "littled_buffer_copy_token",
)


def _globals(ctx: GuestContext) -> int:
    return ctx.symbol("littled_globals")


def _maybe_protect(ctx: GuestContext, name: str, *args: int) -> int:
    config = getattr(ctx.process, "app_config", None) or {}
    if config.get("protect") == name:
        name_ptr = ctx.symbol(f"lname_{name}")
        ctx.libc("mvx_start", name_ptr, len(args), *args)
        try:
            result = ctx.call(name, *args)
        finally:
            ctx.libc("mvx_end")
        return result
    return ctx.call(name, *args)


# ---------------------------------------------------------------------------
# the buffer API (lighttpd's chunk/buffer machinery, libc-call heavy)
# ---------------------------------------------------------------------------

def littled_buffer_copy_token(ctx: GuestContext, src: int,
                              length: int) -> int:
    """Allocate a buffer and copy ``length`` bytes + NUL into it."""
    buf = ctx.libc("malloc", length + 1)
    ctx.libc("memcpy", buf, src, length)
    ctx.write_byte(buf + length, 0)
    ctx.libc("strlen", buf)          # lighttpd re-measures constantly
    return buf


def littled_buffer_release(ctx: GuestContext, buf: int) -> int:
    if buf:
        ctx.libc("free", buf)
    return 0


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------

def littled_main(ctx: GuestContext, port: int) -> int:
    ctx.libc("mvx_init")
    g = _globals(ctx)

    path = ctx.stack_alloc(32)
    ctx.write_cstring(path, b"/var/log/littled.log")
    log_fd = to_signed(ctx.libc("open", path, O_WRONLY | O_CREAT | O_APPEND))
    ctx.write_word(g + G_LOG_FD, log_fd & _MASK64)

    # backlog 511, the production convention (nginx/redis): at C=1000
    # the accept queue must absorb a connect stampede without refusing
    # half the fleet into SYN-retransmit storms
    listen_fd = to_signed(ctx.libc("listen_on", port, 511))
    if listen_fd < 0:
        return -1
    ctx.write_word(g + G_LISTEN_FD, listen_fd)

    epfd = to_signed(ctx.libc("epoll_create1", 0))
    ctx.write_word(g + G_EPFD, epfd)
    event = ctx.stack_alloc(16)
    ctx.write_words(event, [EPOLLIN, listen_fd])
    ctx.libc("epoll_ctl", epfd, EPOLL_CTL_ADD, listen_fd, event)
    config = getattr(ctx.process, "app_config", None) or {}
    ctx.write_word(g + G_CONN_CAP, int(config.get("conn_cap") or 0))
    ctx.charge(1_800_000)              # config parse + plugin init (once)
    return 0


def littled_worker_main(ctx: GuestContext, port: int,
                        listen_fd: int) -> int:
    """Pre-forked worker bring-up: the listening socket is inherited from
    the master (fd passed in, not re-bound), so N workers share one
    listener and the kernel's accept queue distributes connections.
    Config parsing already happened in the master; the worker only
    re-opens its log and builds its own epoll set."""
    ctx.libc("mvx_init")
    g = _globals(ctx)

    path = ctx.stack_alloc(32)
    ctx.write_cstring(path, b"/var/log/littled.log")
    log_fd = to_signed(ctx.libc("open", path, O_WRONLY | O_CREAT | O_APPEND))
    ctx.write_word(g + G_LOG_FD, log_fd & _MASK64)

    if listen_fd < 0:
        return -1
    ctx.write_word(g + G_LISTEN_FD, listen_fd)

    epfd = to_signed(ctx.libc("epoll_create1", 0))
    ctx.write_word(g + G_EPFD, epfd)
    event = ctx.stack_alloc(16)
    ctx.write_words(event, [EPOLLIN, listen_fd])
    ctx.libc("epoll_ctl", epfd, EPOLL_CTL_ADD, listen_fd, event)
    config = getattr(ctx.process, "app_config", None) or {}
    ctx.write_word(g + G_CONN_CAP, int(config.get("conn_cap") or 0))
    ctx.charge(250_000)               # post-fork re-init (config inherited)
    return 0


def littled_pump(ctx: GuestContext) -> int:
    return _maybe_protect(ctx, "server_main_loop")


def server_main_loop(ctx: GuestContext) -> int:
    """The protected root: drain all ready events."""
    g = _globals(ctx)
    epfd = to_signed(ctx.read_word(g + G_EPFD))
    listen_fd = to_signed(ctx.read_word(g + G_LISTEN_FD))
    served = 0
    # one events array for the function's lifetime: a worker lives inside
    # a single main-loop invocation, so allocating per wake would walk the
    # stack pointer into the guard page under sustained load
    events = ctx.stack_alloc(16 * 16)
    while True:
        if ctx.read_word(g + G_DRAIN):
            # graceful drain: stop accepting (once), keep serving the
            # connections we already own, exit when the last one closes
            if not ctx.read_word(g + G_GATED):
                ctx.libc("epoll_ctl", epfd, EPOLL_CTL_DEL, listen_fd, 0)
                ctx.write_word(g + G_GATED, 1)
            if to_signed(ctx.read_word(g + G_NCONN)) <= 0:
                break
        n = to_signed(ctx.libc("epoll_wait", epfd, events, 16, -1))
        if n <= 0:
            break
        for index in range(n):
            data = ctx.read_word(events + 16 * index + 8)
            if data == listen_fd:
                ctx.call("littled_connection_accept")
            else:
                served += to_signed(
                    ctx.call("littled_connection_handle", data))
    return served


def littled_connection_accept(ctx: GuestContext) -> int:
    g = _globals(ctx)
    listen_fd = to_signed(ctx.read_word(g + G_LISTEN_FD))
    epfd = to_signed(ctx.read_word(g + G_EPFD))
    fd = to_signed(ctx.libc("accept4", listen_fd, 0))
    if fd < 0:
        return -1
    one = ctx.stack_alloc(8)
    ctx.write_word(one, 1)
    ctx.libc("setsockopt", fd, 6, 1, one, 8)
    conn = ctx.libc("calloc", 1, CONN_SIZE)
    reqbuf = ctx.libc("malloc", REQ_BUF_SIZE)
    ctx.write_word(conn + CONN_FD, fd)
    ctx.write_word(conn + CONN_REQBUF, reqbuf)
    event = ctx.stack_alloc(16)
    ctx.write_words(event, [EPOLLIN, conn])
    ctx.libc("epoll_ctl", epfd, EPOLL_CTL_ADD, fd, event)
    nconn = to_signed(ctx.read_word(g + G_NCONN)) + 1
    ctx.write_word(g + G_NCONN, nconn)
    cap = to_signed(ctx.read_word(g + G_CONN_CAP))
    if cap and nconn >= cap and not ctx.read_word(g + G_GATED):
        # admission control: at the cap, stop accepting until a
        # connection closes (backpressure lands on the shared listener
        # backlog, and from there on connecting clients)
        ctx.libc("epoll_ctl", epfd, EPOLL_CTL_DEL, listen_fd, 0)
        ctx.write_word(g + G_GATED, 1)
    return fd


def littled_connection_handle(ctx: GuestContext, conn: int) -> int:
    """Serve every complete request currently buffered on ``conn``.

    Pipelining-correct: each iteration consumes exactly one request —
    head plus ``Content-Length`` body — and shifts the remainder to the
    front of the buffer, so back-to-back requests in one segment are each
    parsed against their own bytes (and a POST body is never re-scanned
    as if it were headers)."""
    fd = to_signed(ctx.read_word(conn + CONN_FD))
    reqbuf = ctx.read_word(conn + CONN_REQBUF)
    reqlen = to_signed(ctx.read_word(conn + CONN_REQLEN))
    n = to_signed(ctx.libc("recv", fd, reqbuf + reqlen,
                           REQ_BUF_SIZE - reqlen, 0))
    if n == 0:
        return ctx.call("littled_connection_close", conn) and 0
    if n < 0:
        return 0
    reqlen += n
    ctx.write_word(conn + CONN_REQLEN, reqlen)
    served = 0
    while True:
        head_end = httputil.find_bytes(ctx, reqbuf, reqlen, b"\r\n\r\n")
        if head_end < 0:
            break                      # head still incomplete
        clen = httputil.header_value(ctx, reqbuf, reqlen, b"Content-Length")
        body_len = httputil.parse_decimal(ctx, clen) if clen else 0
        total = head_end + 4 + max(body_len, 0)
        if total > reqlen:
            break                      # body still in flight
        ctx.charge(70_000)             # fdevent + connection state machine
        # parse against exactly this request's bytes
        ctx.write_word(conn + CONN_REQLEN, total)
        status = to_signed(ctx.call("littled_http_request_parse", conn))
        ctx.call("littled_http_response_prepare", conn, status)
        ctx.call("littled_accesslog_write", conn)
        g = _globals(ctx)
        ctx.write_word(g + G_SERVED, ctx.read_word(g + G_SERVED) + 1)
        served += 1
        remaining = reqlen - total
        if remaining:
            tail = ctx.read(reqbuf + total, remaining)
            ctx.write(reqbuf, tail)
            ctx.charge(remaining)
        reqlen = remaining
        ctx.write_word(conn + CONN_REQLEN, reqlen)
        if not ctx.read_word(conn + CONN_KEEPALIVE):
            ctx.call("littled_connection_close", conn)
            return served
    return served


def littled_http_request_parse(ctx: GuestContext, conn: int) -> int:
    """Parse request line + headers, lighttpd-style (token buffers)."""
    reqbuf = ctx.read_word(conn + CONN_REQBUF)
    reqlen = to_signed(ctx.read_word(conn + CONN_REQLEN))
    line, _ = httputil.read_line(ctx, reqbuf, reqlen, 0)
    if line is None:
        return 400
    parts = line.split(b" ")
    ctx.charge(120_000 + len(line) * 8)  # lighttpd's request parse
    if len(parts) != 3 or parts[0] not in (b"GET", b"HEAD", b"POST"):
        return 400

    # copy the URI into its own buffer (buffer API churn)
    uri_offset = line.find(parts[1])
    old = ctx.read_word(conn + CONN_URIBUF)
    if old:
        ctx.call("littled_buffer_release", old)
    uri_buf = ctx.call("littled_buffer_copy_token",
                       reqbuf + uri_offset, len(parts[1]))
    ctx.write_word(conn + CONN_URIBUF, uri_buf)

    keepalive = 1
    connection = httputil.header_value(ctx, reqbuf, reqlen, b"Connection")
    if connection is not None and connection.lower() == b"close":
        keepalive = 0
    if ctx.read_word(_globals(ctx) + G_DRAIN):
        keepalive = 0                  # draining: answer, then close
    ctx.write_word(conn + CONN_KEEPALIVE, keepalive)

    # lighttpd tokenizes every common header into buffers
    for header in (b"Host", b"User-Agent", b"Accept", b"Connection",
                   b"Accept-Encoding", b"Accept-Language", b"Referer",
                   b"Cookie", b"If-Modified-Since"):
        value = httputil.header_value(ctx, reqbuf, reqlen, header)
        probe = ctx.stack_alloc(256)
        ctx.write_cstring(probe, (value or header)[:255])
        ctx.libc("strlen", probe)
        token = ctx.call("littled_buffer_copy_token", probe,
                         min(len(value or header), 255))
        ctx.libc("memcmp", token, probe, 4)
        ctx.call("littled_buffer_release", token)
    return 200


def littled_http_response_prepare(ctx: GuestContext, conn: int,
                                  status: int) -> int:
    """stat + open + read the file into a heap buffer, then write it out."""
    if status != 200:
        return ctx.call("littled_http_response_write", conn, status, 0, 0)

    uri_buf = ctx.read_word(conn + CONN_URIBUF)
    uri = ctx.read_cstring(uri_buf) if uri_buf else b"/"
    if uri == b"/":
        uri = b"/index.html"
    path = ctx.stack_alloc(512)
    ctx.write_cstring(path, b"/var/www" + uri[:255])
    ctx.libc("strlen", path)

    statbuf = ctx.stack_alloc(24)
    if to_signed(ctx.libc("stat", path, statbuf)) < 0:
        ctx.write_word(conn + CONN_STATUS, 404)
        return ctx.call("littled_http_response_write", conn, 404, 0, 0)

    file_fd = to_signed(ctx.libc("open", path, O_RDONLY))
    ctx.libc("fstat", file_fd, statbuf)
    size = to_signed(ctx.read_word(statbuf + 8))

    body = ctx.libc("malloc", max(size, 1))
    got = 0
    while got < size:
        n = to_signed(ctx.libc("read", file_fd, body + got, size - got))
        if n <= 0:
            break
        got += n
    ctx.libc("close", file_fd)
    ctx.write_word(conn + CONN_STATUS, 200)
    ctx.charge(110_000)                # etag/mime/stat-cache work
    result = ctx.call("littled_http_response_write", conn, 200, body, got)
    ctx.libc("free", body)
    return result


def littled_http_response_write(ctx: GuestContext, conn: int, status: int,
                                body: int, body_len: int) -> int:
    fd = to_signed(ctx.read_word(conn + CONN_FD))
    timep = ctx.stack_alloc(8)
    ctx.write_word(timep, ctx.libc("time", 0))
    tm_buf = ctx.stack_alloc(72)
    ctx.libc("localtime_r", timep, tm_buf)
    tm = TmStruct.unpack(ctx.read(tm_buf, 72))

    status_text = {200: b"200 OK", 404: b"404 Not Found"}.get(
        status, b"400 Bad Request")
    if status != 200:
        body_bytes = (b"<html><body><h1>" + status_text +
                      b"</h1></body></html>")
        body = ctx.libc("malloc", len(body_bytes) + 1)
        ctx.write_cstring(body, body_bytes)
        body_len = len(body_bytes)
        owns_body = True
    else:
        owns_body = False

    header = (b"HTTP/1.1 " + status_text + b"\r\n"
              b"Server: littled/1.4\r\n"
              b"Date: " + httputil.http_date(ctx, tm) + b"\r\n"
              b"Content-Length: " + httputil.itoa(body_len) + b"\r\n"
              b"Connection: " +
              (b"keep-alive" if ctx.read_word(conn + CONN_KEEPALIVE)
               else b"close") + b"\r\n\r\n")
    head_buf = ctx.libc("malloc", len(header) + 1)
    ctx.write(head_buf, header)
    ctx.libc("strlen", head_buf)

    iov = ctx.stack_alloc(32)
    ctx.write_words(iov, [head_buf, len(header), body, body_len])
    ctx.libc("writev", fd, iov, 2 if body_len else 1)
    ctx.libc("free", head_buf)
    ctx.charge(90_000)                 # response assembly
    if owns_body:
        ctx.libc("free", body)
    ctx.write_word(conn + CONN_STATUS, status)
    return status


def littled_accesslog_write(ctx: GuestContext, conn: int) -> int:
    g = _globals(ctx)
    log_fd = to_signed(ctx.read_word(g + G_LOG_FD))
    now = ctx.libc("time", 0)
    status = to_signed(ctx.read_word(conn + CONN_STATUS))
    line = b"littled [%d] %d\r\n" % (now, status)
    msg = ctx.stack_alloc(64)
    ctx.write(msg, line)
    ctx.libc("write", log_fd, msg, len(line))
    return 0


def littled_connection_close(ctx: GuestContext, conn: int) -> int:
    g = _globals(ctx)
    epfd = to_signed(ctx.read_word(g + G_EPFD))
    fd = to_signed(ctx.read_word(conn + CONN_FD))
    ctx.libc("epoll_ctl", epfd, EPOLL_CTL_DEL, fd, 0)
    ctx.libc("close", fd)
    uri_buf = ctx.read_word(conn + CONN_URIBUF)
    if uri_buf:
        ctx.libc("free", uri_buf)
    ctx.libc("free", ctx.read_word(conn + CONN_REQBUF))
    ctx.libc("free", conn)
    nconn = to_signed(ctx.read_word(g + G_NCONN)) - 1
    if nconn < 0:
        nconn = 0
    ctx.write_word(g + G_NCONN, nconn)
    if ctx.read_word(g + G_GATED) and not ctx.read_word(g + G_DRAIN):
        cap = to_signed(ctx.read_word(g + G_CONN_CAP))
        if not cap or nconn < cap:
            # back below the admission cap: resume accepting
            listen_fd = to_signed(ctx.read_word(g + G_LISTEN_FD))
            event = ctx.stack_alloc(16)
            ctx.write_words(event, [EPOLLIN, listen_fd])
            ctx.libc("epoll_ctl", epfd, EPOLL_CTL_ADD, listen_fd, event)
            ctx.write_word(g + G_GATED, 0)
    return 0


def littled_served_count(ctx: GuestContext) -> int:
    return ctx.read_word(_globals(ctx) + G_SERVED)


# ---------------------------------------------------------------------------
# image construction
# ---------------------------------------------------------------------------

_LIBC_IMPORTS = (
    "mvx_init", "mvx_start", "mvx_end",
    "open", "close", "read", "write", "writev", "stat", "fstat",
    "listen_on", "accept4", "recv", "send", "setsockopt",
    "epoll_create1", "epoll_ctl", "epoll_wait", "ioctl",
    "gettimeofday", "time", "localtime_r", "getpid",
    "malloc", "calloc", "realloc", "free",
    "memcpy", "memcmp", "memset", "strlen", "strcmp", "strncmp", "strchr",
    "atoi",
)

_FUNCTIONS = [
    ("littled_main", littled_main, 1, 6144,
     ("mvx_init", "open", "listen_on", "epoll_create1", "epoll_ctl")),
    ("littled_worker_main", littled_worker_main, 2, 4096,
     ("mvx_init", "open", "epoll_create1", "epoll_ctl")),
    ("littled_pump", littled_pump, 0, 1024,
     ("server_main_loop", "mvx_start", "mvx_end")),
    ("server_main_loop", server_main_loop, 0, 8192,
     ("epoll_wait", "littled_connection_accept",
      "littled_connection_handle")),
    ("littled_connection_accept", littled_connection_accept, 0, 4096,
     ("accept4", "setsockopt", "calloc", "malloc", "epoll_ctl")),
    ("littled_connection_handle", littled_connection_handle, 1, 6144,
     ("recv", "littled_http_request_parse", "littled_http_response_prepare",
      "littled_accesslog_write", "littled_connection_close")),
    ("littled_http_request_parse", littled_http_request_parse, 1, 10240,
     ("littled_buffer_copy_token", "littled_buffer_release")),
    ("littled_http_response_prepare", littled_http_response_prepare, 2,
     8192,
     ("stat", "open", "fstat", "read", "close", "malloc", "free",
      "strlen", "littled_http_response_write")),
    ("littled_http_response_write", littled_http_response_write, 4, 8192,
     ("time", "localtime_r", "malloc", "strlen", "writev", "free")),
    ("littled_buffer_copy_token", littled_buffer_copy_token, 2, 2048,
     ("malloc", "memcpy", "strlen")),
    ("littled_buffer_release", littled_buffer_release, 1, 1024, ("free",)),
    ("littled_accesslog_write", littled_accesslog_write, 1, 4096,
     ("time", "write")),
    ("littled_connection_close", littled_connection_close, 1, 2048,
     ("epoll_ctl", "close", "free")),
    ("littled_served_count", littled_served_count, 0, 1024, ()),
]


def build_littled_image(bss_kb: int = 64) -> ProgramImage:
    builder = ImageBuilder("littled")
    builder.import_libc(*_LIBC_IMPORTS)
    for name, fn, arity, size, calls in _FUNCTIONS:
        builder.add_hl_function(name, fn, arity, size=size, calls=calls)
    builder.add_rodata("littled_version", b"littled/1.4\x00")
    for name in PROTECTABLE:
        builder.add_rodata(f"lname_{name}", name.encode() + b"\x00")
    builder.add_data("littled_config",
                     b"server.document-root=/var/www;" + b"\x00" * 34)
    builder.add_pointer_table("littled_plugin_handlers", [
        "littled_http_request_parse",
        "littled_http_response_prepare",
        "littled_accesslog_write",
    ])
    builder.add_bss("littled_globals", 256)
    builder.add_bss("littled_static_arena", bss_kb * 1024)
    return builder.build()


class LittledWorker:
    """One pre-forked worker: its own process, images, epoll set, and —
    when sMVX is on — its own in-process monitor.  All workers share the
    master's listener and one :class:`~repro.core.divergence.AlarmLog`."""

    def __init__(self, server: "LittledServer", index: int, core: int,
                 generation: int = 0):
        from repro.core import attach_smvx, build_smvx_stub_image
        from repro.libc import build_libc_image

        config = server._config
        self.server = server
        self.index = index
        self.core = core
        #: restart/reload generation (0 = original pre-forked worker)
        self.generation = generation
        name = f"{server.name}-w{index}" + \
            (f"g{generation}" if generation else "")
        self.process = GuestProcess(
            server.kernel, name,
            heap_pages=config["heap_pages"],
            parent_pid=server.master_pid)
        # bind the worker's cycle counter to its virtual core *before*
        # anything charges, so boot work lands on core-local time
        server.sched.bind_core(self.process.counter, core)
        self.process.load_image(build_libc_image(), tag="libc")
        self.process.load_image(build_smvx_stub_image(), tag="libsmvx")
        self.image = build_littled_image(bss_kb=config["bss_kb"])
        self.loaded = self.process.load_image(self.image, main=True)
        self.process.app_config = {"protect": config["protect"],
                                   "conn_cap": config.get("conn_cap", 0)}
        self.monitor = None
        if config["smvx"]:
            self.monitor = attach_smvx(
                self.process, self.loaded, alarm_log=server.alarms,
                reuse_variants=config["reuse_variants"],
                variant_strategy=config["variant_strategy"],
                strict_verify=config["strict_verify"],
                auto_scope=config.get("auto_scope", False))
        #: the scheduler task driving this worker (set by ``start()``).
        self.task = None

    def run_loop(self) -> None:
        """Task body: serve until cancelled or drained.  ``littled_pump``
        blocks in ``epoll_wait`` between events; on cancellation the park
        reports "nothing ready", ``epoll_wait`` returns 0, the guest
        unwinds normally (closing any open sMVX region in lockstep), and
        the loop exits here.  A draining worker (graceful reload) exits
        once its last connection closes."""
        try:
            while not self.task.cancelled:
                self.process.call_function("littled_pump")
                if self.draining and self.active_connections <= 0:
                    break
        finally:
            # process exit: the kernel sweeps whatever fds are still
            # open — a crashed worker's connections FIN their clients,
            # and the shared listener drops one reference
            self.server.kernel.release_process_fds(self.process.pid)

    # -- control-plane surface (privileged peeks: no guest execution, so
    # they are safe from the supervisor task and under the recorder) ----------

    @property
    def globals_addr(self) -> int:
        return self.loaded.symbol_address("littled_globals")

    def request_drain(self) -> None:
        """Flag the guest to stop accepting and exit once idle.  Written
        with a privileged (kernel-mode) store, exactly like a real master
        signalling a worker.  Under sMVX every follower keeps its own
        copy of ``littled_globals``; the store is mirrored into each so
        leader and variant take the drain branch in lockstep."""
        self.process.space.write_word(self.globals_addr + G_DRAIN, 1,
                                      privileged=True)
        if self.monitor is not None:
            self.monitor.broadcast_privileged_word(
                "littled_globals", G_DRAIN, 1)

    @property
    def draining(self) -> bool:
        return bool(self.process.space.read_word(
            self.globals_addr + G_DRAIN, privileged=True))

    @property
    def active_connections(self) -> int:
        return to_signed(self.process.space.read_word(
            self.globals_addr + G_NCONN, privileged=True))

    @property
    def served_snapshot(self) -> int:
        """G_SERVED via a privileged read — unlike :attr:`served` this
        runs no guest code, so metrics sampling never perturbs the
        recorded execution."""
        return self.process.space.read_word(
            self.globals_addr + G_SERVED, privileged=True)

    @property
    def served(self) -> int:
        return self.process.call_function("littled_served_count")


class LittledServer:
    """Host-side harness for littled.

    ``workers=0`` (default) is the classic single-process co-simulated
    server driven by ``pump()``.  ``workers=N`` builds the pre-forked
    serving mode: N worker processes sharing one listener, scheduled
    preemptively by :class:`repro.kernel.sched.Scheduler` — the harness
    never calls ``pump()``; it runs the scheduler until its workload
    predicate holds.
    """

    def __init__(self, kernel: Kernel, port: int = 8081,
                 protect: Optional[str] = None, smvx: bool = False,
                 heap_pages: int = 192, bss_kb: int = 64,
                 name: str = "littled", reuse_variants: bool = False,
                 variant_strategy: str = "shift",
                 strict_verify: bool = False,
                 auto_scope: bool = False,
                 workers: int = 0, cores: Optional[int] = None,
                 quantum_ns: Optional[float] = None,
                 conn_cap: int = 0):
        from repro.core import AlarmLog, attach_smvx, build_smvx_stub_image
        from repro.libc import build_libc_image

        self.kernel = kernel
        self.port = port
        self.name = name
        if not kernel.vfs.exists("/var/www/index.html"):
            kernel.vfs.write_file("/var/www/index.html",
                                  b"<html>" + b"x" * 4083 + b"</html>")
        self.alarms = AlarmLog()
        self.workers_n = max(0, workers)
        self._config = {
            "protect": protect, "smvx": smvx, "heap_pages": heap_pages,
            "bss_kb": bss_kb, "reuse_variants": reuse_variants,
            "variant_strategy": variant_strategy,
            "strict_verify": strict_verify,
            "auto_scope": auto_scope,
            "conn_cap": max(0, conn_cap),
        }
        #: retired workers (drained generations, crashed processes kept
        #: for post-mortem accounting) and the attached control plane
        self.retired: list = []
        self.supervisor = None

        if self.workers_n:
            from repro.kernel.sched import DEFAULT_QUANTUM_NS, Scheduler
            self.sched = kernel.sched or Scheduler(
                kernel, cores=cores or self.workers_n,
                quantum_ns=quantum_ns if quantum_ns is not None
                else DEFAULT_QUANTUM_NS)
            self.master_pid = kernel.tasks.spawn(f"{name}-master")
            self.workers = [
                LittledWorker(self, index, index % len(self.sched.cores))
                for index in range(self.workers_n)]
            first = self.workers[0]
            self.process = first.process        # compat: "the" process
            self.image = first.image
            self.loaded = first.loaded
            self.monitor = first.monitor
            return

        self.sched = None
        self.master_pid = None
        self.workers = []
        self.process = GuestProcess(kernel, name, heap_pages=heap_pages)
        self.process.load_image(build_libc_image(), tag="libc")
        self.process.load_image(build_smvx_stub_image(), tag="libsmvx")
        self.image = build_littled_image(bss_kb=bss_kb)
        self.loaded = self.process.load_image(self.image, main=True)
        self.process.app_config = {"protect": protect}
        self.monitor = None
        if smvx:
            self.monitor = attach_smvx(self.process, self.loaded,
                                       alarm_log=self.alarms,
                                       reuse_variants=reuse_variants,
                                       variant_strategy=variant_strategy,
                                       strict_verify=strict_verify,
                                       auto_scope=auto_scope)

    def boot_worker(self, worker: LittledWorker) -> int:
        """Fork-style bring-up for a (re)spawned worker: the shared
        Listener lands in the worker's own fd table, the worker pays the
        Table-2 fork cost on its core, then re-initializes.  Used by
        ``start()`` for workers past the first and by the control plane
        for restarts/reloads."""
        from repro.kernel.fds import ListenerFD

        listener = self.kernel.network.listener_at(self.port)
        pcb = self.kernel.state_of(worker.process.pid)
        fd = pcb.alloc_fd(ListenerFD(listener))
        pages = worker.process.space.resident_bytes() // 4096
        worker.process.counter.charge(
            self.kernel.tasks.fork_cost_ns(pages), "fork")
        return to_signed(worker.process.call_function(
            "littled_worker_main", self.port, fd))

    def spawn_worker_task(self, worker: LittledWorker) -> None:
        worker.task = self.sched.spawn(
            worker.process.name, worker.run_loop,
            core=worker.core, pid=worker.process.pid)

    def start(self) -> int:
        if not self.workers_n:
            return self.process.call_function("littled_main", self.port)

        first = self.workers[0]
        rc = to_signed(first.process.call_function("littled_main",
                                                   self.port))
        if rc < 0:
            return rc
        for worker in self.workers[1:]:
            rc_worker = self.boot_worker(worker)
            if rc_worker < 0:
                return rc_worker
        for worker in self.workers:
            self.spawn_worker_task(worker)
        return rc

    def pump(self) -> int:
        if self.workers_n:
            raise RuntimeError(
                "a scheduled multi-worker littled has no pump(): drive "
                "it through kernel.sched.run_until(...)")
        return to_signed(self.process.call_function("littled_pump"))

    def shutdown(self) -> None:
        """Cancel the worker tasks, let them unwind (regions close, fds
        drop), then reap every zombie so the task table ends clean."""
        if not self.workers_n:
            return
        if self.supervisor is not None:
            # the supervisor must stand down first, or it would read the
            # shutdown cancellations as crashes and restart the fleet
            self.supervisor.stop()
        live = [w.task for w in self.workers + self.retired
                if w.task is not None]
        for task in live:
            self.sched.cancel(task)
        if live:
            self.sched.run_until(lambda: all(t.done for t in live))
        self.sched.join()
        while self.kernel.tasks.wait(self.master_pid) is not None:
            pass

    @property
    def served(self) -> int:
        if self.workers_n:
            # retired workers (drained generations, crashed processes)
            # still count what they served; their processes have exited,
            # so read the counter with a privileged peek, not guest code
            return (sum(w.served for w in self.workers)
                    + sum(w.served_snapshot for w in self.retired))
        return self.process.call_function("littled_served_count")
