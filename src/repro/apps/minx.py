"""minx — the Nginx stand-in (guest application).

An epoll-driven static web server whose structure mirrors the Nginx
request path the paper instruments:

* ``minx_process_events_and_timers`` — the event loop body (one *pump*);
* ``minx_event_accept`` — accept + connection setup (``accept4``,
  ``setsockopt``, ``ioctl``, connection struct on the heap, the conn
  pointer stored in ``epoll_data`` — the union case of §3.3);
* ``minx_http_wait_request_handler`` — reads the request head;
* ``minx_http_process_request_line`` — **the outermost tainted function**
  (the paper's ``ngx_http_process_request_line``, 60.8% of cycles) whose
  call-graph subtree contains every other tainted function;
* ``minx_http_read_discarded_request_body`` — carries the CVE-2013-2028
  bug: a chunk size parsed as unsigned, compared as *signed*, and handed
  to ``recv`` where it becomes a huge ``size_t`` — an out-of-bounds write
  into a 4 KiB stack buffer;
* ``minx_ctx_restore`` — a real-ISA register-restore helper whose
  epilogues double as the ROP gadget pool the §4.2 exploit harvests.

Protection is chosen per-process via ``process.app_config["protect"]`` —
the name of the root function to wrap in ``mvx_start``/``mvx_end`` (the
three-line annotation of Listing 1).  The Figure 8 sweep varies this root.
"""

from __future__ import annotations

from typing import Optional

from repro.apps import httputil
from repro.kernel.clock import TmStruct
from repro.kernel.epoll_impl import EPOLL_CTL_ADD, EPOLL_CTL_DEL, EPOLLIN
from repro.kernel.kernel import Kernel
from repro.kernel.vfs import O_APPEND, O_CREAT, O_RDONLY, O_WRONLY
from repro.loader.image import ImageBuilder, ProgramImage
from repro.machine.asm import Assembler
from repro.process.context import GuestContext, to_signed
from repro.process.process import GuestProcess

_MASK64 = (1 << 64) - 1

REQ_BUF_SIZE = 2048
DISCARD_BUFFER_SIZE = 4096          # NGX_HTTP_DISCARD_BUFFER_SIZE

# connection struct field offsets (heap-resident, pointer-bearing)
CONN_FD = 0
CONN_BUF = 8                        # heap pointer -> request buffer
CONN_BUF_LEN = 16
CONN_METHOD = 24
CONN_URI_OFF = 32
CONN_URI_LEN = 40
CONN_HEADERS_END = 48
CONN_CONTENT_LEN = 56               # raw u64, *interpreted* as signed
CONN_CHUNKED = 64
CONN_KEEPALIVE = 72
CONN_STATUS = 80
CONN_SIZE = 128

METHOD_GET = 1
METHOD_POST = 2
METHOD_HEAD = 3
METHOD_BAD = 0

# global state offsets inside the `minx_globals` .bss object
G_LISTEN_FD = 0
G_EPFD = 8
G_LOG_FD = 16
G_SERVED = 24
G_ACTIVE_CONNS = 32

#: functions the Figure 8 sweep may choose as the protected root, from the
#: whole event loop down to tainted leaves.
PROTECTABLE = (
    "minx_process_events_and_timers",
    "minx_http_wait_request_handler",
    "minx_http_process_request_line",
    "minx_http_process_request_headers",
    "minx_http_handler",
    "minx_http_header_filter",
    "minx_http_log_access",
    "minx_http_finalize_request",
)

#: the taint-analysis ground truth used by Figure 9 / the CPU experiment.
TAINTED_FUNCTIONS = (
    "minx_http_process_request_line",
    "minx_http_process_request_headers",
    "minx_http_handler",
    "minx_http_header_filter",
    "minx_http_read_discarded_request_body",
    "minx_http_parse_chunked",
    "minx_http_static_handler",
)


def _globals(ctx: GuestContext) -> int:
    return ctx.symbol("minx_globals")


def _maybe_protect(ctx: GuestContext, name: str, *args: int) -> int:
    """Listing 1 in helper form: wrap the call in mvx_start/mvx_end when
    the annotation chose this function as the protected root."""
    config = getattr(ctx.process, "app_config", None) or {}
    if config.get("protect") == name:
        name_ptr = ctx.symbol(f"fname_{name}")
        ctx.libc("mvx_start", name_ptr, len(args), *args)
        try:
            result = ctx.call(name, *args)
        finally:
            ctx.libc("mvx_end")
        return result
    return ctx.call(name, *args)


# ---------------------------------------------------------------------------
# initialization
# ---------------------------------------------------------------------------

def minx_main(ctx: GuestContext, port: int) -> int:
    """Worker initialization: mvx_init, log, listener, epoll."""
    ctx.libc("mvx_init")
    g = _globals(ctx)

    path = ctx.stack_alloc(32)
    ctx.write_cstring(path, b"/var/log/minx.log")
    log_fd = to_signed(ctx.libc("open", path, O_WRONLY | O_CREAT | O_APPEND))
    ctx.write_word(g + G_LOG_FD, log_fd & _MASK64)

    listen_fd = to_signed(ctx.libc("listen_on", port, 128))
    if listen_fd < 0:
        return -1
    ctx.write_word(g + G_LISTEN_FD, listen_fd)

    epfd = to_signed(ctx.libc("epoll_create1", 0))
    ctx.write_word(g + G_EPFD, epfd)

    event = ctx.stack_alloc(16)
    ctx.write_words(event, [EPOLLIN, listen_fd])
    ctx.libc("epoll_ctl", epfd, EPOLL_CTL_ADD, listen_fd, event)

    # warm-up allocation, like nginx's cycle pool
    pool = ctx.libc("malloc", 2048)
    ctx.write_word(g + G_ACTIVE_CONNS, 0)
    ctx.libc("free", pool)
    return 0


# ---------------------------------------------------------------------------
# the event loop
# ---------------------------------------------------------------------------

def minx_pump(ctx: GuestContext) -> int:
    """One scheduling quantum: run the (possibly protected) event loop."""
    return _maybe_protect(ctx, "minx_process_events_and_timers")


def minx_process_events_and_timers(ctx: GuestContext) -> int:
    """Process every ready event; returns the number of requests served."""
    g = _globals(ctx)
    epfd = to_signed(ctx.read_word(g + G_EPFD))
    listen_fd = to_signed(ctx.read_word(g + G_LISTEN_FD))
    served = 0
    # one events array for the loop's lifetime — allocating per wake
    # would leak stack on every iteration of a long-lived event loop
    events = ctx.stack_alloc(16 * 16)
    while True:
        n = to_signed(ctx.libc("epoll_wait", epfd, events, 16, -1))
        if n <= 0:
            break
        ctx.charge(4000)                       # timer wheel, event prep
        # ngx_time_update(): the event loop refreshes cached time each
        # iteration (libc traffic *outside* the request-line subtree)
        tv = ctx.stack_alloc(16)
        ctx.libc("gettimeofday", tv, 0)
        ctx.libc("time", 0)
        for index in range(n):
            flags = ctx.read_word(events + 16 * index)
            data = ctx.read_word(events + 16 * index + 8)
            ctx.charge(8000)                   # per-event dispatch work
            if data == listen_fd:
                ctx.call("minx_event_accept")
            else:
                served += to_signed(_maybe_protect(
                    ctx, "minx_http_wait_request_handler", data))
    return served


def minx_event_accept(ctx: GuestContext) -> int:
    g = _globals(ctx)
    epfd = to_signed(ctx.read_word(g + G_EPFD))
    listen_fd = to_signed(ctx.read_word(g + G_LISTEN_FD))
    fd = to_signed(ctx.libc("accept4", listen_fd, 0))
    if fd < 0:
        return -1

    one = ctx.stack_alloc(8)
    ctx.write_word(one, 1)
    ctx.libc("setsockopt", fd, 6, 1, one, 8)       # TCP_NODELAY
    ctx.libc("ioctl", fd, Kernel.FIONBIO, one)     # non-blocking

    conn = ctx.libc("malloc", CONN_SIZE)
    buf = ctx.libc("malloc", REQ_BUF_SIZE)
    ctx.write_words(conn, [fd, buf, 0, 0, 0, 0, 0, 0, 0, 0, 0])

    event = ctx.stack_alloc(16)
    # epoll_data carries the connection POINTER — the union case that
    # forces sMVX's special epoll emulation (paper §3.3)
    ctx.write_words(event, [EPOLLIN, conn])
    ctx.libc("epoll_ctl", epfd, EPOLL_CTL_ADD, fd, event)
    ctx.write_word(g + G_ACTIVE_CONNS,
                   ctx.read_word(g + G_ACTIVE_CONNS) + 1)
    return fd


# ---------------------------------------------------------------------------
# request handling
# ---------------------------------------------------------------------------

def minx_http_wait_request_handler(ctx: GuestContext, conn: int) -> int:
    """Read from the socket; serve every complete buffered request.

    Pipelining-correct: each pass consumes exactly one request — head
    plus ``Content-Length`` body — and carries the remainder over to the
    next pass, instead of letting ``finalize_request``'s buffer reset
    throw away pipelined follow-up requests.  A chunked request still
    consumes the whole buffer: its body is drained (and discarded)
    straight off the socket by the CVE-2013-2028 discard path.

    Returns the number of requests fully served (0 if more data needed).
    """
    fd = to_signed(ctx.read_word(conn + CONN_FD))
    buf = ctx.read_word(conn + CONN_BUF)
    buf_len = to_signed(ctx.read_word(conn + CONN_BUF_LEN))

    n = to_signed(ctx.libc("recv", fd, buf + buf_len,
                           REQ_BUF_SIZE - buf_len, 0))
    if n == 0:
        ctx.call("minx_http_close_connection", conn)
        return 0
    if n < 0:
        return 0
    buf_len += n
    ctx.write_word(conn + CONN_BUF_LEN, buf_len)

    served = 0
    while True:
        headers_end = httputil.find_bytes(ctx, buf, buf_len, b"\r\n\r\n")
        if headers_end < 0:
            break                      # need more data
        ctx.write_word(conn + CONN_HEADERS_END, headers_end + 4)
        ctx.charge(48_000)             # connection/request pool setup

        _maybe_protect(ctx, "minx_http_process_request_line", conn)

        # measure this request's footprint *before* finalize wipes the
        # connection state for keep-alive reuse
        chunked = ctx.read_word(conn + CONN_CHUNKED)
        clen = to_signed(ctx.read_word(conn + CONN_CONTENT_LEN))
        cur_len = to_signed(ctx.read_word(conn + CONN_BUF_LEN))
        if chunked:
            consumed = cur_len
        else:
            consumed = min(cur_len, headers_end + 4 + max(clen, 0))
        keep = ctx.read_word(conn + CONN_KEEPALIVE)
        remainder = ctx.read(buf + consumed, max(cur_len - consumed, 0)) \
            if keep else b""

        _maybe_protect(ctx, "minx_http_finalize_request", conn)
        served += 1
        if not keep:
            return served              # finalize closed the connection
        if remainder:
            ctx.write(buf, remainder)
            ctx.charge(len(remainder))
        buf_len = len(remainder)
        ctx.write_word(conn + CONN_BUF_LEN, buf_len)
        if not buf_len:
            break
    return served


def minx_http_process_request_line(ctx: GuestContext, conn: int) -> int:
    """Parse the request line (the paper's outermost tainted function)."""
    buf = ctx.read_word(conn + CONN_BUF)
    buf_len = to_signed(ctx.read_word(conn + CONN_BUF_LEN))
    line, _next = httputil.read_line(ctx, buf, buf_len, 0)
    if line is None:
        ctx.write_word(conn + CONN_METHOD, METHOD_BAD)
        return 0

    parts = line.split(b" ")
    method = METHOD_BAD
    probe = ctx.stack_alloc(16)
    ctx.write_cstring(probe, parts[0][:15] if parts else b"")
    for candidate, code in ((b"GET", METHOD_GET), (b"POST", METHOD_POST),
                            (b"HEAD", METHOD_HEAD)):
        table = ctx.stack_alloc(8)
        ctx.write_cstring(table, candidate)
        if len(parts) == 3 and ctx.libc("strcmp", probe, table) == 0:
            method = code
    ctx.libc("strlen", probe)
    ctx.charge(42_000 + len(line) * 8)  # state-machine parse
    ctx.write_word(conn + CONN_METHOD, method)
    if method != METHOD_BAD:
        uri = parts[1][:255]
        uri_off = line.find(parts[1])
        ctx.write_word(conn + CONN_URI_OFF, uri_off)
        ctx.write_word(conn + CONN_URI_LEN, len(uri))
    return _maybe_protect(ctx, "minx_http_process_request_headers", conn)


def minx_http_process_request_headers(ctx: GuestContext, conn: int) -> int:
    buf = ctx.read_word(conn + CONN_BUF)
    head_len = to_signed(ctx.read_word(conn + CONN_HEADERS_END))

    chunked = 0
    te = httputil.header_value(ctx, buf, head_len, b"Transfer-Encoding")
    if te is not None and te.lower() == b"chunked":
        chunked = 1
    ctx.write_word(conn + CONN_CHUNKED, chunked)

    clen = httputil.header_value(ctx, buf, head_len, b"Content-Length")
    if clen is not None:
        ctx.write_word(conn + CONN_CONTENT_LEN,
                       httputil.parse_decimal(ctx, clen) & _MASK64)

    keepalive = 1
    connection = httputil.header_value(ctx, buf, head_len, b"Connection")
    if connection is not None and connection.lower() == b"close":
        keepalive = 0
    ctx.write_word(conn + CONN_KEEPALIVE, keepalive)

    # per-header tokenization, nginx-style: locate the colon, copy the
    # value, measure it (three libc calls per header line, no syscalls)
    scratch = ctx.stack_alloc(256)
    cursor = 0
    data = ctx.read(buf, head_len)
    for raw_line in data.split(b"\r\n")[1:]:
        if not raw_line:
            continue
        line_buf = ctx.stack_alloc(128)
        ctx.write_cstring(line_buf, raw_line[:120])
        colon = ctx.libc("strchr", line_buf, ord(":"))
        if colon:
            # name lookup: strncmp chain over the known-header table,
            # then copy + measure the value (all user-space libc work)
            name_len = colon - line_buf
            for known in (b"Host", b"Connection", b"Content-Length",
                          b"Transfer-Encoding", b"Authorization"):
                known_buf = ctx.stack_alloc(24)
                ctx.write_cstring(known_buf, known)
                if ctx.libc("strncmp", line_buf, known_buf,
                            max(name_len, len(known))) == 0:
                    break
            length = ctx.libc("strlen", colon + 1)
            ctx.libc("memcpy", scratch, colon + 1, min(length, 200))
        cursor += 1
    ctx.charge(55_000)                 # per-header hash/validate passes

    return _maybe_protect(ctx, "minx_http_handler", conn)


def minx_http_handler(ctx: GuestContext, conn: int) -> int:
    """Dispatch: auth-gate /admin, discard any chunked body, then serve
    statically."""
    method = to_signed(ctx.read_word(conn + CONN_METHOD))
    if method == METHOD_BAD:
        ctx.write_word(conn + CONN_STATUS, 400)
        return ctx.call("minx_http_special_response", conn, 400)
    buf = ctx.read_word(conn + CONN_BUF)
    uri_off = to_signed(ctx.read_word(conn + CONN_URI_OFF))
    uri_len = to_signed(ctx.read_word(conn + CONN_URI_LEN))
    uri = ctx.read(buf + uri_off, uri_len) if uri_len else b"/"
    if uri.startswith(b"/admin"):
        return ctx.call("minx_http_auth_basic", conn)
    if ctx.read_word(conn + CONN_CHUNKED):
        ctx.call("minx_http_read_discarded_request_body", conn)
    return ctx.call("minx_http_static_handler", conn)


def minx_http_auth_basic(ctx: GuestContext, conn: int) -> int:
    """Credential check for /admin (the auth-diff discovery target).

    Returns 1 on success, 0 otherwise; success and failure take different
    call paths, so the §3.2 trace diff pinpoints this function."""
    buf = ctx.read_word(conn + CONN_BUF)
    head_len = to_signed(ctx.read_word(conn + CONN_HEADERS_END))
    supplied = httputil.header_value(ctx, buf, head_len, b"Authorization")
    authorized = False
    if supplied is not None:
        probe = ctx.stack_alloc(128)
        ctx.write_cstring(probe, supplied[:120])
        credential = ctx.symbol("admin_credential")
        authorized = ctx.libc("strcmp", probe, credential) == 0
    if authorized:
        return ctx.call("minx_http_admin_page", conn)
    ctx.write_word(conn + CONN_STATUS, 403)
    return ctx.call("minx_http_special_response", conn, 403)


def minx_http_admin_page(ctx: GuestContext, conn: int) -> int:
    body = ctx.symbol("admin_page")
    body_len = ctx.libc("strlen", body)
    ctx.write_word(conn + CONN_STATUS, 200)
    ctx.call("minx_http_header_filter", conn, 200, body_len)
    fd = to_signed(ctx.read_word(conn + CONN_FD))
    ctx.libc("send", fd, body, body_len, 0)
    return 200


def minx_http_parse_chunked(ctx: GuestContext, conn: int) -> int:
    """Parse the chunk-size line following the headers.

    Returns the *raw unsigned* size; the CVE ingredient is that callers
    treat it as signed (``off_t content_length_n`` in real Nginx).
    """
    buf = ctx.read_word(conn + CONN_BUF)
    buf_len = to_signed(ctx.read_word(conn + CONN_BUF_LEN))
    body_off = to_signed(ctx.read_word(conn + CONN_HEADERS_END))
    line, _next = httputil.read_line(ctx, buf, buf_len, body_off)
    if line is None:
        return 0
    size = httputil.parse_hex(ctx, line.strip())
    ctx.write_word(conn + CONN_CONTENT_LEN, size)
    return size


def minx_http_read_discarded_request_body(ctx: GuestContext,
                                          conn: int) -> int:
    """Discard a chunked request body — CVE-2013-2028 lives here.

    A 4 KiB buffer on the stack receives body bytes.  The chunk size is
    attacker-controlled; a value >= 2**63 is negative as a signed 64-bit
    quantity, survives the *signed* min() against the buffer size, and
    reaches ``recv`` where it is reinterpreted as a huge unsigned count —
    recv then writes past the buffer, over this frame's return address.
    """
    fd = to_signed(ctx.read_word(conn + CONN_FD))
    buffer = ctx.stack_alloc(DISCARD_BUFFER_SIZE)

    ctx.call("minx_http_parse_chunked", conn)
    remaining = to_signed(ctx.read_word(conn + CONN_CONTENT_LEN))

    while remaining != 0:
        # BUG (faithful): signed comparison lets a negative size through
        to_read = remaining if remaining < DISCARD_BUFFER_SIZE \
            else DISCARD_BUFFER_SIZE
        n = to_signed(ctx.libc("recv", fd, buffer, to_read & _MASK64, 0))
        if n <= 0:
            break
        remaining -= n
    ctx.write_word(conn + CONN_CONTENT_LEN, 0)
    return 0


def minx_http_static_handler(ctx: GuestContext, conn: int) -> int:
    buf = ctx.read_word(conn + CONN_BUF)
    uri_off = to_signed(ctx.read_word(conn + CONN_URI_OFF))
    uri_len = to_signed(ctx.read_word(conn + CONN_URI_LEN))
    uri = ctx.read(buf + uri_off, uri_len) if uri_len else b"/"
    if uri == b"/" or not uri:
        uri = b"/index.html"

    path = ctx.stack_alloc(512)
    webroot = ctx.symbol("minx_webroot")
    root_len = ctx.libc("strlen", webroot)
    ctx.libc("memcpy", path, webroot, root_len)
    uri_scratch = ctx.stack_alloc(256)
    ctx.write_cstring(uri_scratch, uri[:255])
    uri_n = ctx.libc("strlen", uri_scratch)
    ctx.libc("memcpy", path + root_len, uri_scratch, uri_n + 1)

    statbuf = ctx.stack_alloc(24)
    if to_signed(ctx.libc("stat", path, statbuf)) < 0:
        ctx.write_word(conn + CONN_STATUS, 404)
        return ctx.call("minx_http_special_response", conn, 404)

    file_fd = to_signed(ctx.libc("open", path, O_RDONLY))
    if file_fd < 0:
        ctx.write_word(conn + CONN_STATUS, 404)
        return ctx.call("minx_http_special_response", conn, 404)
    ctx.libc("fstat", file_fd, statbuf)
    size = ctx.read_word(statbuf + 8)
    mtime = ctx.read_word(statbuf + 16)

    # conditional GET: a matching If-None-Match short-circuits to 304
    etag = b'"%x-%x"' % (size, mtime)
    head_len = to_signed(ctx.read_word(conn + CONN_HEADERS_END))
    supplied = httputil.header_value(ctx, buf, head_len, b"If-None-Match")
    if supplied is not None:
        probe = ctx.stack_alloc(64)
        tag_buf = ctx.stack_alloc(64)
        ctx.write_cstring(probe, supplied[:60])
        ctx.write_cstring(tag_buf, etag)
        if ctx.libc("strcmp", probe, tag_buf) == 0:
            ctx.libc("close", file_fd)
            ctx.write_word(conn + CONN_STATUS, 304)
            return ctx.call("minx_http_not_modified", conn)
    ctx.write_word(conn + CONN_STATUS, 200)
    ctx.charge(50_000)                 # mime lookup, cache consult

    _maybe_protect(ctx, "minx_http_header_filter", conn, 200, size)

    fd = to_signed(ctx.read_word(conn + CONN_FD))
    method = to_signed(ctx.read_word(conn + CONN_METHOD))
    if method != METHOD_HEAD:
        offset = ctx.stack_alloc(8)
        ctx.write_word(offset, 0)
        ctx.libc("sendfile", fd, file_fd, offset, size)
    ctx.libc("close", file_fd)
    return 200


def minx_http_header_filter(ctx: GuestContext, conn: int, status: int,
                            length: int) -> int:
    """Build and send the response headers (writev of two iovecs)."""
    fd = to_signed(ctx.read_word(conn + CONN_FD))

    tv = ctx.stack_alloc(16)
    ctx.libc("gettimeofday", tv, 0)
    timep = ctx.stack_alloc(8)
    ctx.write_word(timep, ctx.read_word(tv))
    tm_buf = ctx.stack_alloc(72)
    ctx.libc("localtime_r", timep, tm_buf)
    tm = TmStruct.unpack(ctx.read(tm_buf, 72))

    status_text = {200: b"200 OK", 404: b"404 Not Found",
                   403: b"403 Forbidden",
                   304: b"304 Not Modified"}.get(status,
                                                 b"400 Bad Request")
    status_line = b"HTTP/1.1 " + status_text + b"\r\n"
    headers = (b"Server: minx/1.3.9\r\n"
               b"Date: " + httputil.http_date(ctx, tm) + b"\r\n"
               b"Content-Type: text/html\r\n"
               b"Content-Length: " + httputil.itoa(length) + b"\r\n"
               b"Connection: " +
               (b"keep-alive" if ctx.read_word(conn + CONN_KEEPALIVE)
                else b"close") + b"\r\n\r\n")

    head_buf = ctx.libc("malloc", len(status_line) + len(headers) + 16)
    ctx.write(head_buf, status_line + headers)
    ctx.charge(len(headers) // 4)

    iov = ctx.stack_alloc(32)
    ctx.write_words(iov, [head_buf, len(status_line),
                          head_buf + len(status_line), len(headers)])
    ctx.libc("writev", fd, iov, 2)
    ctx.libc("free", head_buf)
    ctx.charge(40_000)                 # header serialization
    return 0


def minx_http_not_modified(ctx: GuestContext, conn: int) -> int:
    """304 Not Modified: headers only, no body (RFC 7232 semantics)."""
    return ctx.call("minx_http_header_filter", conn, 304, 0)


def minx_http_special_response(ctx: GuestContext, conn: int,
                               status: int) -> int:
    body = ctx.symbol("err_404_page" if status == 404 else "err_400_page")
    body_len = ctx.libc("strlen", body)
    ctx.call("minx_http_header_filter", conn, status, body_len)
    fd = to_signed(ctx.read_word(conn + CONN_FD))
    method = to_signed(ctx.read_word(conn + CONN_METHOD))
    if method != METHOD_HEAD:
        ctx.libc("send", fd, body, body_len, 0)
    return status


def minx_http_log_access(ctx: GuestContext, conn: int) -> int:
    g = _globals(ctx)
    log_fd = to_signed(ctx.read_word(g + G_LOG_FD))
    timep = ctx.stack_alloc(8)
    now = ctx.libc("time", 0)
    ctx.write_word(timep, now)
    tm_buf = ctx.stack_alloc(72)
    ctx.libc("localtime_r", timep, tm_buf)
    status = to_signed(ctx.read_word(conn + CONN_STATUS))
    line = b"- [%d] \"request\" %d\r\n" % (now, status)
    msg = ctx.stack_alloc(64)
    ctx.write(msg, line)
    staging = ctx.stack_alloc(64)
    ctx.libc("memcpy", staging, msg, len(line))
    ctx.libc("strlen", staging)
    ctx.libc("write", log_fd, staging, len(line))
    ctx.charge(28_000)                 # log formatting
    return 0


def minx_http_finalize_request(ctx: GuestContext, conn: int) -> int:
    g = _globals(ctx)
    _maybe_protect(ctx, "minx_http_log_access", conn)
    ctx.write_word(g + G_SERVED, ctx.read_word(g + G_SERVED) + 1)
    # reset the buffer for keep-alive reuse
    buf = ctx.read_word(conn + CONN_BUF)
    ctx.libc("memset", buf, 0, 64)
    ctx.libc("time", 0)                # refresh the keep-alive timer
    ctx.write_word(conn + CONN_BUF_LEN, 0)
    ctx.write_word(conn + CONN_CHUNKED, 0)
    ctx.write_word(conn + CONN_CONTENT_LEN, 0)
    if not ctx.read_word(conn + CONN_KEEPALIVE):
        ctx.call("minx_http_close_connection", conn)
    return 0


def minx_http_close_connection(ctx: GuestContext, conn: int) -> int:
    g = _globals(ctx)
    epfd = to_signed(ctx.read_word(g + G_EPFD))
    fd = to_signed(ctx.read_word(conn + CONN_FD))
    ctx.libc("epoll_ctl", epfd, EPOLL_CTL_DEL, fd, 0)
    ctx.libc("close", fd)
    ctx.libc("free", ctx.read_word(conn + CONN_BUF))
    ctx.libc("free", conn)
    ctx.write_word(g + G_ACTIVE_CONNS,
                   max(0, to_signed(ctx.read_word(g + G_ACTIVE_CONNS)) - 1))
    return 0


def minx_served_count(ctx: GuestContext) -> int:
    return ctx.read_word(_globals(ctx) + G_SERVED)


# ---------------------------------------------------------------------------
# image construction
# ---------------------------------------------------------------------------

_LIBC_IMPORTS = (
    "mvx_init", "mvx_start", "mvx_end",
    "open", "close", "read", "write", "writev", "stat", "fstat",
    "listen_on", "accept4", "recv", "send", "shutdown", "setsockopt",
    "getsockopt", "epoll_create1", "epoll_ctl", "epoll_wait",
    "epoll_pwait", "ioctl", "sendfile", "gettimeofday", "time",
    "localtime_r", "getpid", "malloc", "calloc", "realloc", "free",
    "memcpy", "memset", "strlen", "strcmp", "strncmp", "strchr", "atoi",
    "mkdir", "unlink", "lseek",
)

_FUNCTIONS = [
    # (name, fn, arity, size, calls)
    ("minx_main", minx_main, 1, 8192,
     ("mvx_init", "open", "listen_on", "epoll_create1", "epoll_ctl",
      "malloc", "free")),
    ("minx_pump", minx_pump, 0, 1024,
     ("minx_process_events_and_timers", "mvx_start", "mvx_end")),
    ("minx_process_events_and_timers", minx_process_events_and_timers, 0,
     8192,
     ("epoll_wait", "gettimeofday", "time", "minx_event_accept",
      "minx_http_wait_request_handler", "mvx_start", "mvx_end")),
    ("minx_event_accept", minx_event_accept, 0, 4096,
     ("accept4", "setsockopt", "ioctl", "malloc", "epoll_ctl")),
    ("minx_http_wait_request_handler", minx_http_wait_request_handler, 1,
     8192,
     ("recv", "minx_http_process_request_line",
      "minx_http_finalize_request", "minx_http_close_connection",
      "mvx_start", "mvx_end")),
    ("minx_http_process_request_line", minx_http_process_request_line, 1,
     12288, ("minx_http_process_request_headers", "strcmp", "strlen")),
    ("minx_http_process_request_headers",
     minx_http_process_request_headers, 1, 8192,
     ("minx_http_handler", "strchr", "strncmp", "strlen", "memcpy")),
    ("minx_http_handler", minx_http_handler, 1, 4096,
     ("minx_http_read_discarded_request_body", "minx_http_static_handler",
      "minx_http_special_response", "minx_http_auth_basic")),
    ("minx_http_auth_basic", minx_http_auth_basic, 1, 4096,
     ("strcmp", "minx_http_admin_page", "minx_http_special_response")),
    ("minx_http_admin_page", minx_http_admin_page, 1, 2048,
     ("strlen", "minx_http_header_filter", "send")),
    ("minx_http_parse_chunked", minx_http_parse_chunked, 1, 4096, ()),
    ("minx_http_read_discarded_request_body",
     minx_http_read_discarded_request_body, 1, 4096,
     ("minx_http_parse_chunked", "recv")),
    ("minx_http_static_handler", minx_http_static_handler, 1, 8192,
     ("stat", "open", "fstat", "sendfile", "close", "strlen", "memcpy",
      "strcmp", "minx_http_header_filter", "minx_http_special_response",
      "minx_http_not_modified")),
    ("minx_http_not_modified", minx_http_not_modified, 1, 1024,
     ("minx_http_header_filter",)),
    ("minx_http_header_filter", minx_http_header_filter, 3, 8192,
     ("gettimeofday", "localtime_r", "malloc", "writev", "free")),
    ("minx_http_special_response", minx_http_special_response, 2, 4096,
     ("strlen", "minx_http_header_filter", "send")),
    ("minx_http_log_access", minx_http_log_access, 1, 4096,
     ("time", "localtime_r", "write", "memcpy", "strlen")),
    ("minx_http_finalize_request", minx_http_finalize_request, 1, 4096,
     ("minx_http_log_access", "minx_http_close_connection", "memset",
      "time")),
    ("minx_http_close_connection", minx_http_close_connection, 1, 2048,
     ("epoll_ctl", "close", "free")),
    ("minx_served_count", minx_served_count, 0, 1024, ()),
]


def build_minx_image(bss_kb: int = 110) -> ProgramImage:
    """Build the minx worker image.

    ``bss_kb`` sizes the global/static area — it determines the follower
    variant's ``.data``/``.bss`` scan cost (paper Table 2 shape).
    """
    builder = ImageBuilder("minx")
    builder.import_libc(*_LIBC_IMPORTS)
    for name, fn, arity, size, calls in _FUNCTIONS:
        builder.add_hl_function(name, fn, arity, size=size, calls=calls)

    # the register-restore helper: a *real ISA* function whose epilogues
    # are the exploit's gadget pool (pop rdi;ret / pop rsi;ret)
    restore = Assembler()
    restore.pop_r("rdi")
    restore.ret()
    restore.pop_r("rsi")
    restore.ret()
    restore.pop_r("rdx")
    restore.ret()
    restore.pop_r("rax")
    restore.ret()
    builder.add_isa_function("minx_ctx_restore", restore, pad_to=24 * 16)

    builder.add_rodata("err_400_page",
                       b"<html><body><h1>400 Bad Request</h1>"
                       b"<hr>minx/1.3.9</body></html>\x00")
    builder.add_rodata("err_404_page",
                       b"<html><body><h1>404 Not Found</h1>"
                       b"<hr>minx/1.3.9</body></html>\x00")
    # a pathname string "found in the application" — the exploit aims
    # mkdir's %rdi at it (paper §4.2's "pointer to a string found in the
    # application")
    builder.add_rodata("upstream_tmp_path", b"/tmp/minx_upstream\x00")
    builder.add_rodata("server_version", b"minx/1.3.9\x00")
    builder.add_rodata("admin_credential", b"secret123\x00")
    builder.add_rodata("minx_webroot", b"/var/www\x00")
    builder.add_rodata("admin_page",
                       b"<html><body><h1>minx admin</h1></body></html>\x00")
    for name in PROTECTABLE:
        builder.add_rodata(f"fname_{name}", name.encode() + b"\x00")

    builder.add_data("minx_config",
                     b"worker_connections=128;root=/var/www;" +
                     b"\x00" * 27)
    builder.add_data_pointer("default_handler_ptr",
                             "minx_http_static_handler")
    builder.add_pointer_table("minx_phase_handlers", [
        "minx_http_process_request_line",
        "minx_http_process_request_headers",
        "minx_http_handler",
        "minx_http_header_filter",
        "minx_http_log_access",
    ])
    builder.add_bss("minx_globals", 256)
    builder.add_bss("minx_static_arena", bss_kb * 1024)
    return builder.build()


# ---------------------------------------------------------------------------
# host-side driver
# ---------------------------------------------------------------------------

class MinxServer:
    """Host-side harness: builds the process, serves, exposes counters."""

    def __init__(self, kernel: Kernel, port: int = 8080,
                 protect: Optional[str] = None, smvx: bool = False,
                 heap_pages: int = 256, bss_kb: int = 110,
                 name: str = "minx", reuse_variants: bool = False,
                 variant_strategy: str = "shift",
                 strict_verify: bool = False,
                 auto_scope: bool = False):
        from repro.core import AlarmLog, attach_smvx, build_smvx_stub_image
        from repro.libc import build_libc_image

        self.kernel = kernel
        self.port = port
        if not kernel.vfs.exists("/var/www/index.html"):
            kernel.vfs.write_file("/var/www/index.html",
                                  b"<html>" + b"x" * 4083 + b"</html>")
        self.process = GuestProcess(kernel, name, heap_pages=heap_pages)
        self.process.load_image(build_libc_image(), tag="libc")
        self.process.load_image(build_smvx_stub_image(), tag="libsmvx")
        self.image = build_minx_image(bss_kb=bss_kb)
        self.loaded = self.process.load_image(self.image, main=True)
        self.process.app_config = {"protect": protect}
        self.alarms = AlarmLog()
        self.monitor = None
        if smvx:
            self.monitor = attach_smvx(self.process, self.loaded,
                                       alarm_log=self.alarms,
                                       reuse_variants=reuse_variants,
                                       variant_strategy=variant_strategy,
                                       strict_verify=strict_verify,
                                       auto_scope=auto_scope)

    def start(self) -> int:
        return self.process.call_function("minx_main", self.port)

    def pump(self) -> int:
        """Run the event loop until it would block; returns served count."""
        from repro.process.context import to_signed
        return to_signed(self.process.call_function("minx_pump"))

    @property
    def served(self) -> int:
        return self.process.call_function("minx_served_count")
