"""Guest applications for the evaluation.

* ``minx`` — the Nginx stand-in: epoll event loop, request-line/header
  parsing, static file serving via ``sendfile``, access logging, and the
  CVE-2013-2028-style chunked-body stack overflow (§4.2).
* ``littled`` — the Lighttpd stand-in: single process, ``server_main_loop``
  as the protected root, buffer-heavy request handling (higher
  libc:syscall ratio, Figure 7).
* ``nbench`` — the BYTEmark suite (Figure 6).
"""

from repro.apps.minx import build_minx_image, MinxServer
from repro.apps.littled import build_littled_image, LittledServer

__all__ = [
    "LittledServer",
    "MinxServer",
    "build_littled_image",
    "build_minx_image",
]
