"""The sMVX monitor image: interposition stubs, MPK gates, safe stacks.

Reproduces Figure 4's execution flow.  At ``setup_mvx()`` time the monitor
builds a small shared object containing, per libc import of the target:

* ``stub_<i>`` — two real instructions: ``PUSH_I i; JMP common``.  The
  target's ``.got.plt`` slots are re-pointed at these stubs, so every PLT
  call funnels through the monitor.  (The paper patches the PLT bytes; we
  patch the GOT slot the PLT entry already jumps through — structurally
  equivalent, and it survives the follower's shift-and-clone because the
  slot holds an absolute stub address.)
* ``common`` — the trampoline: saves ``rax/rcx/rdx`` on the unsafe stack
  (``rax`` carries the variadic count, ``rcx/rdx`` are argument registers
  that ``wrpkru`` clobbers), opens the monitor's protection key with a
  real ``WRPKRU``, calls the reference-monitor gate, then closes the key
  (parking the return value in ``r10`` across the second ``WRPKRU``),
  drops the four saved words, and returns to the application call site.
* ``smvx_gate`` — the reference monitor entry: reads the saved registers
  and PLT index off the unsafe stack, **pivots to a per-thread safe stack
  inside monitor-keyed memory**, and dispatches to the monitor logic
  (lockstep sync or passthrough).

The monitor's text pages are made execute-only (XoM) under the monitor
pkey and the image is loaded at a randomized base, reproducing the
MonGuard-style code hiding the paper builds on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.loader.image import ImageBuilder, ProgramImage
from repro.machine.asm import Assembler
from repro.machine.isa import INSTR_SIZE
from repro.machine.memory import (
    PAGE_SIZE,
    PROT_EXEC,
    PROT_RW,
    page_align_up,
)
from repro.machine.mpk import PKRU_ALLOW_ALL, pkru_disable_access

#: stack slots the trampoline leaves above the gate frame, in words:
#: [ret_to_common][rdx][rcx][rax][plt_index][ret_to_app][stack args...]
GATE_FRAME_WORDS = 6

SAFE_STACK_BYTES = 2 * PAGE_SIZE


def randomized_monitor_base(seed: str) -> int:
    """Deterministic stand-in for load-address randomization: derive the
    base from a seed (pid + image name in practice).  16-byte aligned,
    placed in an otherwise unused arena."""
    digest = hashlib.sha256(seed.encode()).digest()
    offset = int.from_bytes(digest[:4], "little") & 0x3FFF_F000
    return 0x0000_6600_0000_0000 + offset * 16


def build_monitor_image(plt_imports: List[str], gate_fn: Callable,
                        init_fn: Callable, start_fn: Callable,
                        end_fn: Callable,
                        pkru_open: int, pkru_closed: int) -> ProgramImage:
    """Assemble the ``smvx_monitor.so`` image.

    ``gate_fn`` is the monitor's Python-side gate (bound method of the
    SmvxMonitor); the ``mvx_*`` entry points live here too so the target
    can import them like any shared-library symbol.
    """
    builder = ImageBuilder("smvx_monitor.so")

    # the reference-monitor gate (HL); must be registered before the
    # trampoline so `call("smvx_gate")` resolves.
    builder.add_hl_function("smvx_gate", gate_fn, 0,
                            size=8 * INSTR_SIZE)
    builder.add_hl_function("mvx_init", init_fn, 0, size=8 * INSTR_SIZE)
    # mvx_start(fname, nargs, arg1..arg6) — 8 integer slots, two of which
    # arrive on the stack per the SysV convention.
    builder.add_hl_function("mvx_start", start_fn, 8,
                            size=8 * INSTR_SIZE, variadic=True)
    builder.add_hl_function("mvx_end", end_fn, 0, size=8 * INSTR_SIZE)

    common = Assembler()
    common.push_r("rax")              # variadic count / caller's rax
    common.push_r("rcx")              # arg 4 (wrpkru clobbers rcx)
    common.push_r("rdx")              # arg 3 (wrpkru clobbers rdx)
    common.mov_ri("rcx", 0)
    common.mov_ri("rdx", 0)
    common.mov_ri("rax", pkru_open)
    common.wrpkru()                   # -- monitor pages become accessible
    common.call("smvx_gate")          # reference monitor (pivots stacks)
    common.mov_rr("r10", "rax")       # park retval across the close gate
    common.mov_ri("rcx", 0)
    common.mov_ri("rdx", 0)
    common.mov_ri("rax", pkru_closed)
    common.wrpkru()                   # -- monitor pages hidden again
    common.mov_rr("rax", "r10")
    common.add_ri("rsp", 32)          # drop rdx/rcx/rax/plt_index
    common.ret()                      # back to the application call site
    builder.add_isa_function("smvx_trampoline", common)

    for index, name in enumerate(plt_imports):
        stub = Assembler()
        stub.push_i(index)
        stub.jmp("smvx_trampoline")   # cross-function: resolved at build
        builder.add_isa_function(f"smvx_stub_{name}", stub)

    builder.add_rodata("smvx_banner", b"sMVX in-process monitor\x00")
    # monitor-private data page (bookkeeping the app must never read)
    builder.add_bss("smvx_private", PAGE_SIZE)
    return builder.build()


@dataclass
class MonitorMemory:
    """The monitor's pkey-guarded runtime allocations."""

    pkey: int
    pkru_open: int
    pkru_closed: int
    safe_stack_area: int = 0
    safe_stack_size: int = 0
    ipc_area: int = 0
    ipc_size: int = 0

    def safe_stack_top(self, slot: int) -> int:
        """Per-thread safe stack top (TLS-style slotting)."""
        base = self.safe_stack_area + slot * SAFE_STACK_BYTES
        if base + SAFE_STACK_BYTES > self.safe_stack_area + self.safe_stack_size:
            raise IndexError("out of safe-stack slots")
        return base + SAFE_STACK_BYTES - 16


def allocate_monitor_memory(space, pkey: int, max_threads: int = 4) -> MonitorMemory:
    """Map the safe stacks and the IPC ring under the monitor pkey."""
    pkru_closed = pkru_disable_access(PKRU_ALLOW_ALL, pkey)
    memory = MonitorMemory(pkey=pkey, pkru_open=PKRU_ALLOW_ALL,
                           pkru_closed=pkru_closed)
    size = page_align_up(max_threads * SAFE_STACK_BYTES)
    memory.safe_stack_area = space.mmap(None, size, prot=PROT_RW,
                                        pkey=pkey, tag="smvx:safe-stacks")
    memory.safe_stack_size = size
    memory.ipc_size = 2 * PAGE_SIZE
    memory.ipc_area = space.mmap(None, memory.ipc_size, prot=PROT_RW,
                                 pkey=pkey, tag="smvx:ipc")
    return memory


def harden_monitor_text(space, loaded) -> None:
    """Make the monitor's executable sections execute-only (XoM) under the
    monitor pkey, and key its data sections."""
    pkey = None
    for section in (".text", ".plt"):
        start, size = loaded.section_range(section)
        page = space.page_at(start)
        pkey = page.pkey
        space.mprotect(start, page_align_up(max(size, 1)), PROT_EXEC)
    for section in (".rodata", ".got.plt", ".data", ".bss"):
        start, size = loaded.section_range(section)
        space.set_tag(start, page_align_up(max(size, 1)),
                      f"smvx:{section}")
