"""sMVX: selective multi-variant execution (the paper's contribution).

Public surface:

* :func:`build_smvx_stub_image` — ``libsmvx.so`` the target links against;
* :func:`attach_smvx` — preload the monitor into a guest process;
* :class:`SmvxMonitor` — the in-process, MPK-isolated monitor;
* :class:`AlarmLog` / :class:`~repro.errors.MvxDivergence` — detection
  outputs;
* ``variant`` / ``relocate`` — follower creation and pointer relocation.
"""

from repro.core.api import MVX_API, attach_smvx, build_smvx_stub_image
from repro.core.divergence import (
    AlarmLog,
    CallRecord,
    DivergenceKind,
    DivergenceReport,
    compare_calls,
)
from repro.core.ipc import LockstepChannel, LockstepTimeout
from repro.core.monitor import MonitorStats, SmvxMonitor
from repro.core.relocate import OldRange, PointerRelocator, RelocationReport
from repro.core.variant import FollowerVariant, VariantReport, create_follower

__all__ = [
    "AlarmLog",
    "CallRecord",
    "DivergenceKind",
    "DivergenceReport",
    "FollowerVariant",
    "LockstepChannel",
    "LockstepTimeout",
    "MVX_API",
    "MonitorStats",
    "OldRange",
    "PointerRelocator",
    "RelocationReport",
    "SmvxMonitor",
    "VariantReport",
    "attach_smvx",
    "build_smvx_stub_image",
    "compare_calls",
    "create_follower",
]
