"""Aligned-variant creation — the paper's §4.1/§5 alternative strategy.

"We envision a different variant creation strategy that can be used to
avoid pointer updates.  For example, we can create two program variants
with varying options of the compiler... This way, we can align the
function addresses but still have different variant layouts."

Implementation: the follower gets its **own address-space view** in which
the target image region and the heap are *private pages at the same
numeric addresses* as the leader's — so every pointer is already valid
and no scanning/relocation happens at all.  Diversity comes from
**intra-function layout shuffling**: each function's body is shifted by a
seeded amount of leading NOPs (function *entry* addresses stay aligned,
exactly as the paper proposes), so any code-reuse payload aimed at
leader-internal offsets — a ROP gadget, a mid-function jump — executes
different instructions in the follower and desynchronizes the lockstep.

mvx_start() under this strategy costs: clone + page sharing + a private
copy of the writable sections and heap.  The Table 2 scan costs vanish.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.relocate import RelocationReport
from repro.core.variant import FollowerVariant, VariantReport
from repro.errors import InvalidInstruction
from repro.loader.loader import LoadedImage
from repro.machine.costs import CostModel, CycleCounter
from repro.machine.cpu import CPU
from repro.machine.isa import INSTR_SIZE, Instruction, Op
from repro.machine.memory import (
    AddressSpace,
    PAGE_SIZE,
    PROT_RW,
    page_align_up,
)
from repro.process.heap import Heap
from repro.process.process import GuestProcess

#: ops whose immediate is a displacement relative to the next instruction
_RIP_RELATIVE_OPS = frozenset({
    Op.LEA, Op.JMP, Op.JMP_M, Op.JE, Op.JNE, Op.JL, Op.JGE, Op.JB,
    Op.JAE, Op.CALL,
})


#: an intentionally invalid instruction slot: anything that lands here —
#: a stale gadget address, a fallthrough between resynced gadgets —
#: raises InvalidInstruction immediately.
TRAP_SLOT = b"\xEE" * INSTR_SIZE


def _diversify_function(body: bytes, name: str, seed: int) -> Optional[bytes]:
    """Relocate a function's body to the far end of its padded region.

    The function *entry* keeps its aligned address (slot 0 becomes a JMP
    to the moved body, so normal calls behave identically), the vacated
    slots become trap instructions, and the body itself shifts uniformly
    — intra-function displacements are shift-invariant, external
    RIP-relative targets get their displacement reduced by the shift.

    The security effect: every leader-internal code address other than
    the entry (ROP gadgets, mid-function jump targets) lands on a trap in
    the follower.  Requires padding >= body size; returns None otherwise
    (the function is left identical, reported as not diversified).
    """
    slots = []
    for offset in range(0, len(body), INSTR_SIZE):
        try:
            slots.append(Instruction.decode(body[offset:offset + INSTR_SIZE]))
        except InvalidInstruction:
            return None                 # unexpected content: leave as-is
    body_end = len(slots) - 1
    while body_end >= 0 and slots[body_end].op is Op.NOP:
        body_end -= 1
    instructions = slots[:body_end + 1]
    body_slots = len(instructions)
    total_slots = len(slots)
    if body_slots < 1 or total_slots < body_slots * 2 + 1:
        return None                     # not enough slack to vacate it

    # seeded placement: anywhere that keeps old offsets 1..body_slots-1
    # inside the trap region
    max_shift = total_slots - body_slots
    min_shift = body_slots
    span = max_shift - min_shift + 1
    state = seed & 0xFFFF_FFFF
    for byte in name.encode():
        state = (state * 131 + byte) & 0xFFFF_FFFF
    shift = min_shift + state % span
    shift_bytes = shift * INSTR_SIZE

    out = bytearray(TRAP_SLOT * total_slots)
    # entry: jump to the moved body (slot 0 -> slot `shift`)
    entry_jmp = Instruction(Op.JMP, imm=shift_bytes - INSTR_SIZE)
    out[0:INSTR_SIZE] = entry_jmp.encode()
    for index, instr in enumerate(instructions):
        if instr.op in _RIP_RELATIVE_OPS:
            old_target = index * INSTR_SIZE + INSTR_SIZE + instr.imm
            if not 0 <= old_target < body_slots * INSTR_SIZE:
                # external target: absolute position unchanged, so the
                # displacement shrinks by the distance the site moved
                instr = Instruction(instr.op, instr.reg1, instr.reg2,
                                    instr.imm - shift_bytes)
        slot = shift + index
        out[slot * INSTR_SIZE:(slot + 1) * INSTR_SIZE] = instr.encode()
    assert len(out) == len(body)
    return bytes(out)


def diversify_text(target: LoadedImage, space: AddressSpace,
                   seed: int) -> Tuple[bytes, Dict[str, int]]:
    """Produce a diversified copy of the loaded (already HLCALL-patched)
    ``.text`` bytes.  Returns the new bytes and, per function, how many
    instruction slots actually moved (0 == left untouched)."""
    text_start, text_size = target.section_range(".text")
    original = space.read(text_start, text_size, privileged=True)
    diversified = bytearray(original)
    moved: Dict[str, int] = {}
    for sym in target.image.function_symbols():
        if sym.section != ".text":
            continue
        body = original[sym.offset:sym.offset + sym.size]
        new_body = _diversify_function(body, sym.name, seed)
        if new_body is None:
            moved[sym.name] = 0
            continue
        changed = sum(1 for off in range(0, sym.size, INSTR_SIZE)
                      if new_body[off:off + INSTR_SIZE]
                      != body[off:off + INSTR_SIZE])
        moved[sym.name] = changed
        diversified[sym.offset:sym.offset + sym.size] = new_body
    return bytes(diversified), moved


def create_aligned_follower(process: GuestProcess, target: LoadedImage,
                            root_function: str, args: Sequence[int],
                            costs: CostModel, seed: int = 0xD1CE,
                            stack_pages: int = 16
                            ) -> Tuple[FollowerVariant, List[int]]:
    """Build a follower at the *same* addresses with diversified text.

    No pointer scan, no relocation: writable sections and the heap are
    private copies at identical numeric addresses.
    """
    report = VariantReport(shift=0)
    heap = process.heap

    follower_space = AddressSpace(f"{process.name}:aligned-follower")
    image_size = page_align_up(target.image.load_size)
    process.space.share_into(follower_space, exclude=[
        (target.base, target.base + image_size),
        (heap.base, heap.base + heap.size),
    ])

    # ---- private image copy at the same base, text diversified ----
    copied = 0
    for page_base in range(target.base, target.base + image_size,
                           PAGE_SIZE):
        src_page = process.space.page_at(page_base)
        if src_page is None:
            continue
        follower_space.mmap(page_base, PAGE_SIZE, prot=src_page.prot,
                            pkey=src_page.pkey,
                            tag=f"aligned:{src_page.tag}")
        dst_page = follower_space.page_at(page_base)
        dst_page.data[:] = src_page.data
        dst_page.invalidate_decode()
        copied += 1
    text_start, text_size = target.section_range(".text")
    new_text, moved = diversify_text(target, process.space, seed)
    follower_space.write(text_start, new_text, privileged=True)
    report.text_pages_copied = page_align_up(max(text_size, 1)) // PAGE_SIZE
    report.support_pages_copied = copied - report.text_pages_copied

    # ---- private heap at the same base ----
    heap_used = heap.used_range()[1] - heap.base
    follower_space.mmap(heap.base, heap.size, prot=PROT_RW,
                        tag="aligned:heap")
    for offset in range(0, page_align_up(max(heap_used, 1)), PAGE_SIZE):
        src_page = process.space.page_at(heap.base + offset)
        dst_page = follower_space.page_at(heap.base + offset)
        dst_page.data[:] = src_page.data
        dst_page.invalidate_decode()
        report.heap_pages_copied += 1

    report.duplication_ns = (
        (report.text_pages_copied + report.support_pages_copied)
        * costs.page_copy_ns
        + report.heap_pages_copied * costs.heap_remap_page_ns)
    process.charge(report.duplication_ns, "variant-copy")

    # ---- clone() the follower thread ----
    before = process.counter.total_ns
    process.kernel.syscall(process, "clone", 0)
    thread = process.create_thread(f"aligned-follower:{root_function}",
                                   stack_pages=stack_pages)
    thread.variant = "follower"
    report.clone_ns = process.counter.total_ns - before
    thread.space = follower_space
    thread.counter = CycleCounter()
    thread.cpu = CPU(follower_space, counter=thread.counter, costs=costs,
                     syscall_handler=process._syscall_from_isa,
                     hl_dispatch=process._hl_dispatch)
    thread.cpu.trace_hook = process.cpu.trace_hook
    # the follower's fresh stack must exist in its own view
    process.space.share_into(follower_space, exclude=[
        (target.base, target.base + image_size),
        (heap.base, heap.base + heap.size),
    ])

    # follower allocator over its private heap pages (same addresses)
    follower_heap = Heap(follower_space, heap.base, heap.size)
    follower_heap.adopt_bookkeeping(heap.clone_bookkeeping(0))
    process.thread_heaps[thread] = follower_heap

    # no pointers to fix: shift == 0 by construction
    report.relocation = RelocationReport(0)
    report.protected_functions = {name for name, count in moved.items()
                                  if count > 0}

    variant = FollowerVariant(
        loaded=target,                  # same addresses: the leader's view
        thread=thread,
        heap=follower_heap,
        entry=target.symbol_address(root_function),
        report=report,
        image_region=(0, 0),            # nothing mapped in the leader view
        heap_region=(0, 0),
        owns_loaded_view=False,
    )
    # destroy() must not unmap leader memory: mark private regions empty
    # (the follower space is dropped with the thread object).
    return variant, [int(a) for a in args]
