"""Follower-variant creation: shift-and-clone (paper §3.4, Figure 5).

On ``mvx_start()`` the monitor:

1. computes the protected function set — the call-graph subtree of the
   root function the user annotated;
2. picks a ``shift`` so the follower's copies of the image region and the
   heap land in *unmapped* space (non-overlapping address spaces are the
   diversification);
3. copies, page by page: the ``.text`` pages covering the protected
   functions, the support sections (``.plt``, ``.rodata``, ``.got.plt``,
   ``.data``), ``.bss``, and the used heap prefix — charging the
   copy+move cost of Table 2;
4. issues a ``clone()`` (thread with shared VM) for the follower and gives
   it a fresh stack and TLS;
5. runs the pointer relocator over the follower's ``.data``/``.bss``/heap
   and over the protected function's arguments.

Unprotected functions' text is deliberately *not* copied: a follower that
strays outside the protected subtree — or a ROP chain aimed at leader
addresses — hits unmapped memory and faults, which is the detection
signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import build_callgraph
from repro.errors import MvxSetupError
from repro.loader.loader import LoadedImage
from repro.machine.costs import CostModel
from repro.machine.cpu import CPU
from repro.machine.memory import (
    AddressSpace,
    PAGE_SIZE,
    PROT_RW,
    page_align_down,
    page_align_up,
)
from repro.process.heap import Heap
from repro.process.process import GuestProcess, GuestThread
from repro.core.relocate import (
    OldRange,
    PointerRelocator,
    RelocationReport,
)

#: candidate shifts tried in order; all keep 47-bit canonical addresses
#: for the regions our processes use.
_CANDIDATE_SHIFTS = (0x0000_0040_0000_0000, 0x0000_0020_0000_0000,
                     0x0000_0010_0000_0000, 0x0000_0008_0000_0000)


@dataclass
class VariantReport:
    """Everything Table 2 and the RSS experiment need to know."""

    shift: int
    protected_functions: Set[str] = field(default_factory=set)
    text_pages_copied: int = 0
    support_pages_copied: int = 0
    heap_pages_copied: int = 0
    duplication_ns: float = 0.0
    clone_ns: float = 0.0
    relocation: Optional[RelocationReport] = None

    @property
    def pages_copied(self) -> int:
        return (self.text_pages_copied + self.support_pages_copied
                + self.heap_pages_copied)

    @property
    def follower_rss_bytes(self) -> int:
        return self.pages_copied * PAGE_SIZE


@dataclass
class FollowerVariant:
    """A live follower: its image view, heap, thread, and entry point."""

    loaded: LoadedImage
    thread: GuestThread
    heap: Heap
    entry: int
    report: VariantReport
    image_region: Tuple[int, int]        # (start, size) of the copy
    heap_region: Tuple[int, int]
    #: False when `loaded` is the leader's own view (aligned strategy):
    #: destroy() must not unregister it.
    owns_loaded_view: bool = True

    def destroy(self, process: GuestProcess) -> None:
        """Unmap the follower's private memory (region teardown at
        mvx_end; the thread object is simply dropped)."""
        start, size = self.image_region
        if size:
            process.space.munmap(start, size)
        start, size = self.heap_region
        if size:
            process.space.munmap(start, size)
        process.space.munmap(self.thread.stack_base, self.thread.stack_size)
        process.thread_heaps.pop(self.thread, None)
        if self.owns_loaded_view:
            process.loader.unregister(self.loaded)
        if self.thread.counter is not process.counter:
            process._retired_follower_ns += self.thread.counter.total_ns
        if self.thread in process.threads:
            process.threads.remove(self.thread)


def _region_is_free(process: GuestProcess, start: int, size: int) -> bool:
    for addr in range(page_align_down(start),
                      page_align_up(start + size), PAGE_SIZE):
        if process.space.is_mapped(addr):
            return False
    return True


def choose_shift(process: GuestProcess, target: LoadedImage) -> int:
    heap = process.heap
    image_size = page_align_up(target.image.load_size)
    for shift in _CANDIDATE_SHIFTS:
        if (_region_is_free(process, target.base + shift, image_size)
                and _region_is_free(process, heap.base + shift, heap.size)):
            return shift
    raise MvxSetupError("no non-overlapping shift available")


def _copy_pages(process: GuestProcess, src: int, dst: int, size: int,
                prot: int, pkey: int, tag: str) -> int:
    """Map ``dst`` and copy ``size`` (page-rounded) bytes; returns pages."""
    size = page_align_up(max(size, 1))
    process.space.mmap(dst, size, prot=prot, pkey=pkey, tag=tag)
    for offset in range(0, size, PAGE_SIZE):
        src_page = process.space.page_at(src + offset)
        dst_page = process.space.page_at(dst + offset)
        dst_page.data[:] = src_page.data
        dst_page.invalidate_decode()
    return size // PAGE_SIZE


def create_follower(process: GuestProcess, target: LoadedImage,
                    root_function: str, args: Sequence[int],
                    costs: CostModel,
                    alias_info=None,
                    stack_pages: int = 16) -> Tuple[FollowerVariant, List[int]]:
    """Build the follower variant; returns it plus the relocated args."""
    report = VariantReport(shift=0)
    graph = build_callgraph(target.image)
    protected = graph.subtree(root_function)
    report.protected_functions = protected

    shift = choose_shift(process, target)
    report.shift = shift

    # ---- old ranges: the leader's image region and used heap ----
    heap = process.heap
    heap_used_start, heap_brk = heap.used_range()
    old_ranges = [
        OldRange(target.base, target.base + target.image.load_size,
                 "image"),
        OldRange(heap.base, heap.base + heap.size, "heap"),
    ]

    # ---- copy protected .text pages ----
    text_start, text_size = target.section_range(".text")
    wanted_pages: Set[int] = set()
    for name in protected:
        sym = target.image.symbol(name)
        if sym.section != ".text":
            continue
        start = target.symbol_address(name)
        for addr in range(page_align_down(start),
                          page_align_up(start + sym.size), PAGE_SIZE):
            wanted_pages.add(addr)
    # the text region is mapped in full (so intra-image displacements stay
    # meaningful) but only protected pages get content; the rest stays
    # zero — executing it faults on the invalid opcode, same signal as
    # unmapped memory, while keeping the copy bookkeeping page-exact.
    src_text_page = process.space.page_at(text_start)
    process.space.mmap(text_start + shift, page_align_up(max(text_size, 1)),
                       prot=src_text_page.prot, pkey=src_text_page.pkey,
                       tag=f"variant:{target.tag}:.text")
    for addr in sorted(wanted_pages):
        dst_page = process.space.page_at(addr + shift)
        dst_page.data[:] = process.space.page_at(addr).data
        dst_page.invalidate_decode()
        report.text_pages_copied += 1

    # ---- copy support sections ----
    for section in (".plt", ".rodata", ".got.plt", ".data", ".bss"):
        start, size = target.section_range(section)
        src_page = process.space.page_at(start)
        report.support_pages_copied += _copy_pages(
            process, start, start + shift, size,
            src_page.prot, src_page.pkey,
            f"variant:{target.tag}:{section}")

    # ---- the follower heap arena: map in full (the follower may allocate
    # fresh memory after creation, §3.4), copy only the used prefix ----
    heap_used = heap_brk - heap.base
    process.space.mmap(heap.base + shift, heap.size, prot=PROT_RW,
                       tag=f"variant:{target.tag}:heap")
    heap_pages = 0
    if heap_used > 0:
        for offset in range(0, page_align_up(heap_used), PAGE_SIZE):
            src_page = process.space.page_at(heap.base + offset)
            dst_page = process.space.page_at(heap.base + shift + offset)
            dst_page.data[:] = src_page.data
            dst_page.invalidate_decode()
            heap_pages += 1
    report.heap_pages_copied = heap_pages

    report.duplication_ns = (
        (report.text_pages_copied + report.support_pages_copied)
        * costs.page_copy_ns
        + heap_pages * costs.heap_remap_page_ns)
    process.charge(report.duplication_ns, "variant-copy")

    # ---- clone(): the follower thread ----
    before = process.counter.total_ns
    process.kernel.syscall(process, "clone", 0)
    thread = process.create_thread(f"follower:{root_function}",
                                   stack_pages=stack_pages)
    thread.variant = "follower"
    report.clone_ns = process.counter.total_ns - before

    # ---- the follower's address-space view (paper §3.1/Figure 5) ----
    # Shared pages for everything except the leader's image region and
    # heap: those are absent from the follower's view, so a pointer or
    # ROP gadget aimed at leader addresses faults in the follower.  The
    # copies made above are shared pages visible through both views
    # (the variants live in one process; the monitor writes emulated
    # buffers through either).
    follower_space = AddressSpace(f"{process.name}:follower")
    process.space.share_into(follower_space, exclude=[
        (target.base, target.base + page_align_up(target.image.load_size)),
        (heap.base, heap.base + heap.size),
    ])
    thread.space = follower_space
    # The follower computes on its own core: a private counter, not
    # attached to the wall clock.  Wall time only advances through the
    # leader and the lockstep waits the monitor charges.
    from repro.machine.costs import CycleCounter
    thread.counter = CycleCounter()
    thread.cpu = CPU(follower_space, counter=thread.counter,
                     costs=costs, syscall_handler=process._syscall_from_isa,
                     hl_dispatch=process._hl_dispatch)
    thread.cpu.trace_hook = process.cpu.trace_hook

    # ---- follower heap bookkeeping over the copied region ----
    follower_heap = Heap(process.space, heap.base + shift, heap.size)
    follower_heap.adopt_bookkeeping(heap.clone_bookkeeping(shift))
    process.thread_heaps[thread] = follower_heap

    # ---- pointer relocation ----
    relocator = PointerRelocator(process.space, old_ranges, shift, costs,
                                 charge=process.charge)
    relocation = RelocationReport(shift)
    for section in (".data", ".bss"):
        start, size = target.section_range(section)
        slots = None
        if alias_info is not None and section == ".data":
            slots = alias_info.data_pointer_offsets
        relocation.scans.append(relocator.scan_data_region(
            start + shift, size, section, slot_offsets=slots))
    if heap_used > 0:
        relocation.scans.append(relocator.scan_heap_region(
            heap.base + shift, heap_used))
    # .got.plt in the copy points at libc/monitor stubs, which are shared
    # (not part of the old ranges) — verified rather than assumed:
    got_start, got_size = target.section_range(".got.plt")
    relocation.scans.append(relocator.scan_data_region(
        got_start + shift, got_size, ".got.plt"))
    report.relocation = relocation

    relocated_args = [relocator.relocate_value(int(a)) for a in args]

    copy_view = process.loader.register_shifted_copy(
        target, shift, tag=f"variant:{target.tag}")
    entry = copy_view.symbol_address(root_function)

    image_region_size = page_align_up(target.image.load_size)
    variant = FollowerVariant(
        loaded=copy_view,
        thread=thread,
        heap=follower_heap,
        entry=entry,
        report=report,
        image_region=(target.base + shift, image_region_size),
        heap_region=(heap.base + shift, heap.size),
    )
    return variant, relocated_args
