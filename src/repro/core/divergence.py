"""Divergence detection records.

The sMVX monitor compares, at every intercepted libc call: the callee name,
the scalar (non-pointer) argument values, and — for calls both variants
execute locally — the return values (paper §3.3).  A fault in either
variant, or a mismatch in the *number* of libc calls the variants issue,
is likewise a divergence.  Each kind produces a structured report that
rides inside :class:`~repro.errors.MvxDivergence`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class DivergenceKind(enum.Enum):
    CALL_NAME = "libc call name mismatch"
    ARGUMENT = "scalar argument mismatch"
    RETVAL = "return value mismatch"
    ERRNO = "errno mismatch"
    FOLLOWER_FAULT = "follower variant faulted"
    LEADER_FAULT = "leader variant faulted"
    CALL_COUNT = "variants issued different numbers of libc calls"
    MONITOR = "monitor-internal failure"


@dataclass(frozen=True)
class CallRecord:
    """One variant's view of one libc call (sequence-numbered)."""

    seq: int
    name: str
    args: Tuple[int, ...]
    variant: str                       # "leader" | "follower"

    def scalar_args(self, pointer_indexes: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(value for index, value in enumerate(self.args)
                     if index not in pointer_indexes)


@dataclass(frozen=True)
class DivergenceReport:
    kind: DivergenceKind
    seq: int = -1
    libc_name: str = ""
    detail: str = ""
    leader: Optional[CallRecord] = None
    follower: Optional[CallRecord] = None
    #: guest task (thread) id observed at detection time; -1 if unknown.
    task_id: int = -1
    #: guest program counter at detection time; -1 if unknown.  For a
    #: follower fault this is the faulting address (e.g. the leader-space
    #: gadget the CVE-2013-2028 chain jumped to).
    guest_pc: int = -1
    #: owning process id; -1 if unknown.  Multi-worker servers share one
    #: AlarmLog and every worker's main thread is tid 1, so the pid is
    #: what actually identifies the diverged variant pair.
    pid: int = -1

    def __str__(self) -> str:
        parts = [self.kind.value]
        if self.libc_name:
            parts.append(f"call={self.libc_name}")
        if self.seq >= 0:
            parts.append(f"seq={self.seq}")
        if self.pid >= 0:
            parts.append(f"pid={self.pid}")
        if self.task_id >= 0:
            parts.append(f"task={self.task_id}")
        if self.guest_pc >= 0:
            parts.append(f"pc={self.guest_pc:#x}")
        if self.detail:
            parts.append(self.detail)
        return " | ".join(parts)


def compare_calls(leader: CallRecord, follower: CallRecord,
                  pointer_indexes: Tuple[int, ...]) -> Optional[DivergenceReport]:
    """Lockstep check for one call pair; None means consistent."""
    if leader.name != follower.name:
        return DivergenceReport(
            DivergenceKind.CALL_NAME, leader.seq, leader.name,
            f"leader called {leader.name!r}, follower {follower.name!r}",
            leader, follower)
    leader_scalars = leader.scalar_args(pointer_indexes)
    follower_scalars = follower.scalar_args(pointer_indexes)
    if leader_scalars != follower_scalars:
        return DivergenceReport(
            DivergenceKind.ARGUMENT, leader.seq, leader.name,
            f"scalar args differ: {leader_scalars} vs {follower_scalars}",
            leader, follower)
    return None


@dataclass
class AlarmLog:
    """Collects divergence alarms raised during a run (the paper's
    'trigger an alarm' channel; tests and benches read it)."""

    alarms: List[DivergenceReport] = field(default_factory=list)
    #: observers fn(report) notified on every alarm — the flight recorder
    #: snapshots a divergence capsule from here.
    listeners: List = field(default_factory=list)

    def raise_alarm(self, report: DivergenceReport) -> None:
        self.alarms.append(report)
        for listener in self.listeners:
            listener(report)

    @property
    def triggered(self) -> bool:
        return bool(self.alarms)

    def clear(self) -> None:
        self.alarms.clear()
