"""The application-facing sMVX API (paper Listing 1).

Applications link against ``libsmvx.so`` — a stub library exporting
``mvx_init`` / ``mvx_start`` / ``mvx_end``.  Run *without* the monitor
preloaded, the stubs are no-ops, so the same binary serves as the vanilla
baseline.  When :func:`attach_smvx` preloads a monitor, the monitor
redirects the target's ``mvx_*`` GOT slots to its own implementations,
exactly as §3.2 describes.

Usage shape (mirroring Listing 1, in hybrid-guest form)::

    def app_main(ctx):
        ctx.libc("mvx_init")
        ...
        ctx.libc("mvx_start", name_ptr, 2, arg1, arg2)
        ctx.call("protected_func", arg1, arg2)
        ctx.libc("mvx_end")
"""

from __future__ import annotations

from typing import Optional

from repro.core.divergence import AlarmLog
from repro.core.monitor import SmvxMonitor
from repro.errors import MvxSetupError
from repro.loader.image import ImageBuilder, ProgramImage
from repro.loader.loader import LoadedImage
from repro.machine.isa import INSTR_SIZE
from repro.process.process import GuestProcess

MVX_API = ("mvx_init", "mvx_start", "mvx_end")


def _stub_init(ctx) -> int:
    return 0


def _stub_start(ctx, name_ptr, nargs, *args) -> int:
    return 0


def _stub_end(ctx) -> int:
    return 0


def build_smvx_stub_image() -> ProgramImage:
    """``libsmvx.so``: the no-op stubs applications link against."""
    builder = ImageBuilder("libsmvx.so")
    builder.add_hl_function("mvx_init", _stub_init, 0,
                            size=4 * INSTR_SIZE)
    builder.add_hl_function("mvx_start", _stub_start, 8,
                            size=4 * INSTR_SIZE, variadic=True)
    builder.add_hl_function("mvx_end", _stub_end, 0, size=4 * INSTR_SIZE)
    builder.add_rodata("libsmvx_version", b"libsmvx stubs 1.0\x00")
    return builder.build()


def attach_smvx(process: GuestProcess, target: LoadedImage,
                profile_path: Optional[str] = None,
                alarm_log: Optional[AlarmLog] = None,
                alias_info=None,
                reuse_variants: bool = False,
                variant_strategy: str = "shift",
                strict_verify: bool = False,
                auto_scope: bool = False) -> SmvxMonitor:
    """Preload the sMVX monitor into ``process`` (the LD_PRELOAD step).

    Must run after the target image is loaded (the monitor patches its
    GOT) and before the application starts issuing libc calls.
    ``reuse_variants`` enables the §5 pre-scan/pre-update optimization
    (parked followers refreshed incrementally between regions).
    ``strict_verify`` runs the static verifier (``repro.analysis.verify``)
    over the live space at the end of setup and fails closed on any
    ERROR-severity finding.

    ``auto_scope`` *derives* the protected set instead of trusting the
    hand-picked one: the static taint analysis
    (:func:`repro.analysis.scope.compute_scope`) selects the code paths
    network input can reach, and ``process.app_config["protect"]`` is
    overwritten with the derived root (or ``None`` when nothing is
    tainted — the app then runs unprotected, which is the correct
    selection for compute-only workloads).  Fails closed with
    :class:`MvxSetupError` when something *is* tainted but no annotated
    ``mvx_start`` region covers it.
    """
    if target is None:
        raise MvxSetupError("no target image to protect")
    scope_report = None
    if auto_scope:
        from repro.analysis.scope import compute_scope
        scope_report = compute_scope(target.image)
        if scope_report.selected and scope_report.derived_root is None:
            raise MvxSetupError(
                f"auto_scope: {len(scope_report.selected)} function(s) "
                f"are statically tainted but no annotated mvx_start "
                f"region covers them (candidates: "
                f"{', '.join(scope_report.root_candidates) or 'none'})")
        config = dict(getattr(process, "app_config", None) or {})
        config["protect"] = scope_report.derived_root
        process.app_config = config
    monitor = SmvxMonitor(process, alarm_log=alarm_log,
                          alias_info=alias_info,
                          reuse_variants=reuse_variants,
                          variant_strategy=variant_strategy,
                          strict_verify=strict_verify,
                          scope_report=scope_report)
    monitor.setup(target, profile_path=profile_path)
    return monitor
