"""Variant reuse: the paper's §5 / Table 2 "pre-scanning and pre-updating"
optimization, implemented.

The paper observes that creating the follower *inside* a control loop
repeatedly pays duplication + pointer-scan costs, and points at
RuntimeASLR's fix: pre-scan and pre-update the variant.  This module
implements the incremental form:

* at ``mvx_end`` the follower's memory is **kept**, and a write observer
  starts recording which leader pages (image region + heap) get dirtied;
* at the next ``mvx_start`` with the same root, only the dirty pages are
  re-copied into the follower and re-scanned for pointers — everything
  clean since the last region is already correct.

Because the follower replays the leader's execution, any page the
follower dirtied in the previous region corresponds to a leader-dirtied
page, so refreshing the leader-dirty set restores full leader/follower
agreement.  (A leader that maps *new* regions mid-run defeats the cache;
``SmvxMonitor`` falls back to a full rebuild if the heap arena moved.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.relocate import OldRange, PointerRelocator
from repro.core.variant import FollowerVariant
from repro.machine.costs import CostModel
from repro.machine.memory import PAGE_SIZE, page_align_down, page_align_up
from repro.process.process import GuestProcess


class DirtyTracker:
    """Records which pages of the watched ranges are written."""

    def __init__(self, space, ranges: Sequence[Tuple[int, int]]):
        self.space = space
        self.ranges = list(ranges)          # (start, end)
        self.dirty_pages: Set[int] = set()
        self._attached = False

    def _observe(self, op: str, addr: int, size: int, value) -> None:
        if op != "write":
            return
        for start, end in self.ranges:
            if addr + size <= start or addr >= end:
                continue
            first = max(addr, start)
            last = min(addr + size, end)
            for page in range(page_align_down(first),
                              page_align_up(last), PAGE_SIZE):
                self.dirty_pages.add(page)

    def attach(self) -> "DirtyTracker":
        if not self._attached:
            self.space.add_observer(self._observe)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.space.remove_observer(self._observe)
            self._attached = False


@dataclass
class CachedVariant:
    """A parked follower plus the tracker watching for staleness."""

    variant: FollowerVariant
    tracker: DirtyTracker
    heap_brk: int                      # leader brk at park time
    refresh_count: int = 0


@dataclass
class RefreshStats:
    dirty_pages: int = 0
    data_pages_rescanned: int = 0
    heap_pages_rescanned: int = 0
    pointers_fixed: int = 0
    time_ns: float = 0.0


def watch_ranges(process: GuestProcess, variant: FollowerVariant,
                 target) -> List[Tuple[int, int]]:
    heap = process.heap
    return [
        (target.base, target.base + page_align_up(target.image.load_size)),
        (heap.base, heap.base + heap.size),
    ]


def park_variant(process: GuestProcess, variant: FollowerVariant,
                 target) -> CachedVariant:
    """Keep the follower alive after mvx_end and start dirty tracking."""
    tracker = DirtyTracker(process.space,
                           watch_ranges(process, variant, target)).attach()
    return CachedVariant(variant=variant, tracker=tracker,
                         heap_brk=process.heap.used_range()[1])


def refresh_variant(process: GuestProcess, cached: CachedVariant,
                    target, args: Sequence[int],
                    costs: CostModel) -> Tuple[FollowerVariant, List[int],
                                               RefreshStats]:
    """Bring a parked follower back in sync by touching only dirty pages."""
    cached.tracker.detach()
    variant = cached.variant
    shift = variant.report.shift
    heap = process.heap
    stats = RefreshStats()

    # pages dirtied since parking, plus any heap growth
    dirty = set(cached.tracker.dirty_pages)
    new_brk = heap.used_range()[1]
    for page in range(page_align_down(cached.heap_brk),
                      page_align_up(new_brk), PAGE_SIZE):
        dirty.add(page)
    stats.dirty_pages = len(dirty)

    text_start, text_size = target.section_range(".text")
    data_ranges = [target.section_range(s)
                   for s in (".plt", ".rodata", ".got.plt", ".data",
                             ".bss")]
    relocator = PointerRelocator(
        process.space,
        [OldRange(target.base,
                  target.base + target.image.load_size, "image"),
         OldRange(heap.base, heap.base + heap.size, "heap")],
        shift, costs, charge=process.charge)

    copied_ns = 0.0
    for page in sorted(dirty):
        src = process.space.page_at(page)
        dst = process.space.page_at(page + shift)
        if src is None or dst is None:
            continue
        dst.data[:] = src.data
        dst.invalidate_decode()
        copied_ns += costs.page_copy_ns
        # rescan the refreshed copy page for pointers
        if heap.base <= page < heap.base + heap.size:
            scan = relocator.scan_heap_region(page + shift, PAGE_SIZE,
                                              region="heap-dirty")
            stats.heap_pages_rescanned += 1
        elif any(start <= page < start + page_align_up(max(size, 1))
                 for start, size in data_ranges):
            scan = relocator.scan_data_region(page + shift, PAGE_SIZE,
                                              "data-dirty")
            stats.data_pages_rescanned += 1
        elif text_start <= page < text_start + page_align_up(text_size):
            continue                    # text is immutable; copy was enough
        else:
            continue
        stats.pointers_fixed += scan.pointers_found
    process.charge(copied_ns, "variant-refresh-copy")
    stats.time_ns = copied_ns

    # re-sync the follower allocator to the leader's current heap state
    variant.heap.adopt_bookkeeping(heap.clone_bookkeeping(shift))
    process.thread_heaps[variant.thread] = variant.heap
    variant.thread.reset_stack_pointer()
    variant.thread.errno = 0

    relocated_args = [relocator.relocate_value(int(a)) for a in args]
    cached.refresh_count += 1
    return variant, relocated_args, stats
