"""Lockstep IPC between the leader and follower variants.

The paper's monitor synchronizes variants through a shared-memory channel
with mutexes and condition variables set up by ``setup_mvx()`` (§3.2,
§3.3).  We reproduce that shape: a :class:`LockstepChannel` carries
sequence-numbered call records and results between the leader thread and
the follower thread.

**Strict baton serialization.**  Exactly one variant executes guest code
at any instant; the baton passes at libc-call boundaries:

1. the leader reaches libc call *k*, posts its record, hands the baton to
   the follower, and waits;
2. the follower (now running) reaches *its* call *k*, posts its record,
   hands the baton back, and waits for the call's result;
3. the leader compares the records (name + scalar args), executes the call
   (or marks it local), posts the result, and *keeps* the baton — it runs
   on to call *k+1* (or to ``mvx_end``), where handing the baton over
   releases the follower to consume the result and continue.

This serialization is faithful to lockstep MVX semantics and makes every
run bit-deterministic, which the virtual-time benchmarks rely on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.divergence import CallRecord, DivergenceKind, DivergenceReport
from repro.errors import MvxDivergence, MvxError

#: Wall-clock safety net so a protocol bug fails a test instead of hanging.
_WAIT_TIMEOUT_S = 30.0

LEADER = "leader"
FOLLOWER = "follower"


@dataclass
class LibcResult:
    """What the leader publishes after executing (or classifying) a call."""

    seq: int
    retval: int
    errno: int
    #: True when the call is LOCAL-category: the follower must execute it
    #: itself against its own memory instead of consuming emulated state.
    execute_locally: bool = False
    #: (follower_address, bytes) pairs the monitor already wrote — recorded
    #: for inspection/accounting.
    buffers_copied: Tuple[Tuple[int, int], ...] = ()


@dataclass(frozen=True)
class CallEvent:
    """One intercepted libc call, flattened for shipping over a cluster
    link (``repro.cluster.wire``): the leader-side :class:`CallRecord`
    plus everything the remote monitor needs to emulate the call for its
    follower — retval/errno and the bytes of every output buffer the call
    produced in the leader's memory.

    ``sync`` marks a security-sensitive call: the leader flushes the
    batch and waits for the remote verdict *before* executing it (the
    dMVX sensitive-operation sync point)."""

    seq: int
    name: str
    args: Tuple[int, ...]
    retval: int = 0
    errno: int = 0
    execute_locally: bool = False
    #: (arg_index, payload bytes) for each output buffer, captured from
    #: the leader's memory right after the call executed.
    buffers: Tuple[Tuple[int, bytes], ...] = ()
    sync: bool = False
    #: leader-side location of the call (for location-exact alarms).
    task: int = -1
    pc: int = -1

    def to_dict(self) -> Dict:
        return {
            "seq": self.seq, "name": self.name, "args": list(self.args),
            "retval": self.retval, "errno": self.errno,
            "local": self.execute_locally,
            "buffers": [[index, data.hex()] for index, data in self.buffers],
            "sync": self.sync, "task": self.task, "pc": self.pc,
        }

    @staticmethod
    def from_dict(raw: Dict) -> "CallEvent":
        return CallEvent(
            raw["seq"], raw["name"], tuple(raw["args"]), raw["retval"],
            raw["errno"], raw["local"],
            tuple((index, bytes.fromhex(data))
                  for index, data in raw["buffers"]),
            raw["sync"], raw["task"], raw["pc"])


@dataclass
class VariantStatus:
    done: bool = False
    fault: Optional[str] = None
    calls_made: int = 0
    #: guest PC at the fault (e.g. the unmapped gadget address); -1 if
    #: not applicable.
    fault_pc: int = -1
    #: guest task id of the faulting variant thread; -1 if unknown.
    fault_task: int = -1


class LockstepTimeout(MvxError):
    pass


class LockstepChannel:
    """The shared-memory rendezvous object (host model of the paper's
    mutex/condvar + ring buffer)."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._baton = LEADER
        self._pending: Dict[str, Optional[CallRecord]] = {
            LEADER: None, FOLLOWER: None}
        self._result: Optional[LibcResult] = None
        self.status: Dict[str, VariantStatus] = {
            LEADER: VariantStatus(), FOLLOWER: VariantStatus()}
        self.rendezvous_count = 0
        self.divergence: Optional[DivergenceReport] = None

    # -- internals -------------------------------------------------------------

    def _wait_for(self, predicate, who: str) -> None:
        deadline = _WAIT_TIMEOUT_S
        if not self._cond.wait_for(predicate, timeout=deadline):
            raise LockstepTimeout(
                f"{who}: lockstep wait timed out (protocol stall)")

    def _give_baton(self, to: str) -> None:
        self._baton = to
        self._cond.notify_all()

    def _flag_divergence(self, report: DivergenceReport) -> None:
        self.divergence = report
        self._cond.notify_all()

    # -- leader side --------------------------------------------------------------

    def leader_announce(self, record: CallRecord) -> CallRecord:
        """Post the leader's call, release the follower, wait for its
        matching record.  Returns the follower's record."""
        with self._cond:
            self._pending[LEADER] = record
            self.status[LEADER].calls_made += 1
            self._give_baton(FOLLOWER)
            self._wait_for(
                lambda: (self._pending[FOLLOWER] is not None
                         or self.status[FOLLOWER].done
                         or self.divergence is not None),
                LEADER)
            if self.divergence is not None:
                raise MvxDivergence(self.divergence)
            if self._pending[FOLLOWER] is None:
                # follower finished without making this call
                status = self.status[FOLLOWER]
                kind = (DivergenceKind.FOLLOWER_FAULT if status.fault
                        else DivergenceKind.CALL_COUNT)
                report = DivergenceReport(
                    kind, record.seq, record.name,
                    status.fault or
                    f"follower returned after {status.calls_made} calls; "
                    f"leader issued call #{record.seq} ({record.name})",
                    task_id=status.fault_task, guest_pc=status.fault_pc)
                self._flag_divergence(report)
                raise MvxDivergence(report)
            follower_record = self._pending[FOLLOWER]
            self._pending[FOLLOWER] = None
            self.rendezvous_count += 1
            return follower_record

    def leader_publish(self, result: LibcResult) -> None:
        """Publish the executed call's result; the baton stays with the
        leader (the follower picks the result up at the next handoff)."""
        with self._cond:
            self._pending[LEADER] = None
            self._result = result
            self._cond.notify_all()

    def leader_finish(self) -> VariantStatus:
        """mvx_end: mark the leader done, release the follower to drain,
        and wait for the follower to complete."""
        with self._cond:
            self.status[LEADER].done = True
            self._give_baton(FOLLOWER)
            self._wait_for(
                lambda: (self.status[FOLLOWER].done
                         or self.divergence is not None),
                LEADER)
            if self.divergence is not None:
                raise MvxDivergence(self.divergence)
            return self.status[FOLLOWER]

    def leader_abort(self, report: DivergenceReport) -> None:
        with self._cond:
            self._flag_divergence(report)

    # -- follower side ---------------------------------------------------------------

    def follower_wait_turn(self) -> None:
        """Block until the baton arrives (initial release and after each
        of the leader's call boundaries)."""
        with self._cond:
            self._wait_for(
                lambda: self._baton == FOLLOWER or self.divergence is not None,
                FOLLOWER)
            if self.divergence is not None:
                raise MvxDivergence(self.divergence)

    def follower_announce(self, record: CallRecord) -> LibcResult:
        """Post the follower's call, hand the baton back, wait for the
        leader's result."""
        with self._cond:
            if self.status[LEADER].done:
                report = DivergenceReport(
                    DivergenceKind.CALL_COUNT, record.seq, record.name,
                    f"follower issued extra call #{record.seq} "
                    f"({record.name}) after the leader finished")
                self._flag_divergence(report)
                raise MvxDivergence(report)
            self._pending[FOLLOWER] = record
            self.status[FOLLOWER].calls_made += 1
            self._result = None
            self._give_baton(LEADER)
            self._wait_for(
                lambda: self._result is not None or self.divergence is not None,
                FOLLOWER)
            if self.divergence is not None:
                raise MvxDivergence(self.divergence)
            result = self._result
            # wait for the baton before running on (strict serialization)
            self._wait_for(
                lambda: self._baton == FOLLOWER or self.divergence is not None,
                FOLLOWER)
            if self.divergence is not None:
                raise MvxDivergence(self.divergence)
            return result

    def follower_abort(self, report: DivergenceReport) -> None:
        """Follower-detected divergence (e.g. a local-call return value
        mismatch): flag it and wake the leader."""
        with self._cond:
            self._flag_divergence(report)

    def follower_finish(self, fault: Optional[str] = None,
                        fault_pc: int = -1, fault_task: int = -1) -> None:
        with self._cond:
            status = self.status[FOLLOWER]
            status.done = True
            status.fault = fault
            status.fault_pc = fault_pc
            status.fault_task = fault_task
            self._give_baton(LEADER)


__all__ = [
    "CallEvent",
    "FOLLOWER",
    "LEADER",
    "LibcResult",
    "LockstepChannel",
    "LockstepTimeout",
    "VariantStatus",
]
