"""The sMVX in-process monitor.

One :class:`SmvxMonitor` per protected process.  ``setup()`` plays the
role of the paper's ``LD_PRELOAD`` constructor ``setup_mvx()`` (§3.2):

1. read the profile file the pre-run script left in ``/tmp``;
2. read ``/proc/self/maps`` to locate the loaded target;
3. save the original libc addresses out of the target's ``.got.plt`` (so
   the monitor can call libc "internally without intercepting ourselves");
4. build + load the monitor image at a randomized base, key its pages
   with a freshly allocated protection key, make its text execute-only;
5. patch the target's GOT slots to the interposition stubs;
6. allocate the per-thread safe stacks and the lockstep IPC memory;
7. close the monitor pkey in every application thread's PKRU.

At runtime the monitor implements the ``mvx_init``/``mvx_start``/
``mvx_end`` API (§3.2), follower-variant creation (§3.4 via
``repro.core.variant``), and libc lockstep synchronization (§3.3 via
``repro.core.ipc`` + the Table 1 categories).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.divergence import (
    AlarmLog,
    CallRecord,
    DivergenceKind,
    DivergenceReport,
    compare_calls,
)
from repro.core.ipc import (
    FOLLOWER,
    LEADER,
    LibcResult,
    LockstepChannel,
    LockstepTimeout,
)
from repro.core.aligned import create_aligned_follower
from repro.core.relocate import OldRange, PointerRelocator
from repro.core.reuse import CachedVariant, park_variant, refresh_variant
from repro.core.trampoline import (
    allocate_monitor_memory,
    build_monitor_image,
    harden_monitor_text,
    randomized_monitor_base,
)
from repro.core.variant import FollowerVariant, create_follower
from repro.errors import (
    MachineFault,
    MvxDivergence,
    MvxSetupError,
    MvxStateError,
)
from repro.kernel.vfs import O_RDONLY
from repro.libc.categories import BufSize, Category, EmulationSpec, spec_for
from repro.libc.libc import LIBC_ARITIES, LIBC_FUNCTIONS
from repro.loader.loader import LoadedImage
from repro.loader.profile_tool import read_profile, write_profile
from repro.machine.mpk import PkeyAllocator
from repro.machine.registers import ARG_REGISTERS
from repro.process.context import GuestContext, to_signed
from repro.process.process import GuestProcess, GuestThread

_MASK64 = (1 << 64) - 1


@dataclass
class MonitorStats:
    intercepted_calls: int = 0
    passthrough_calls: int = 0
    leader_calls: int = 0
    follower_calls: int = 0
    emulated_calls: int = 0
    local_calls: int = 0
    bytes_copied: int = 0
    regions_entered: int = 0


@dataclass
class ActiveRegion:
    root: str
    leader: GuestThread
    variant: FollowerVariant
    channel: LockstepChannel
    relocator: PointerRelocator
    py_thread: threading.Thread
    leader_seq: int = 0
    follower_seq: int = 0


class SmvxMonitor:
    """The in-process, MPK-isolated sMVX monitor."""

    def __init__(self, process: GuestProcess,
                 alarm_log: Optional[AlarmLog] = None,
                 alias_info=None, reuse_variants: bool = False,
                 variant_strategy: str = "shift",
                 strict_verify: bool = False,
                 scope_report=None):
        if variant_strategy not in ("shift", "aligned"):
            raise MvxSetupError(
                f"unknown variant strategy {variant_strategy!r}")
        #: the static ScopeReport that derived the protected set, when
        #: bring-up used ``attach_smvx(auto_scope=True)`` (None for a
        #: hand-picked set); kept for explain_alarm-style tooling.
        self.scope_report = scope_report
        #: fail-closed bring-up: run the static verifier over the live
        #: space at the end of setup() and refuse to serve on any ERROR.
        self.strict_verify = strict_verify
        self.process = process
        self.costs = process.costs
        self.alarms = alarm_log or AlarmLog()
        self.alias_info = alias_info
        #: "shift" = the paper's prototype (non-overlapping addresses,
        #: pointer scan); "aligned" = the §5 alternative (same addresses,
        #: diversified function interiors, no relocation).
        self.variant_strategy = variant_strategy
        #: §5 optimization: keep the follower across regions of the same
        #: root and refresh only dirty pages (see repro.core.reuse).
        #: (shift strategy only; aligned creation is already cheap.)
        self.reuse_variants = reuse_variants and variant_strategy == "shift"
        self._cached_variants: Dict[str, CachedVariant] = {}
        self.last_refresh_stats = None
        #: cumulative refreshes per protected root (reuse mode)
        self.refresh_counts: Dict[str, int] = {}
        self.stats = MonitorStats()
        self.target: Optional[LoadedImage] = None
        self.monitor_image: Optional[LoadedImage] = None
        self.memory = None
        self.pkey: Optional[int] = None
        self.plt_names: List[str] = []
        self.real_libc: Dict[str, int] = {}
        self.region: Optional[ActiveRegion] = None
        self._libc_loaded: Optional[LoadedImage] = None
        self._region_lock = threading.Lock()
        self.last_variant_report = None
        #: flight-recorder taps: fn(variant, record) at every lockstep
        #: rendezvous ("leader"/"follower" announce).
        self.call_taps: List = []

    # ------------------------------------------------------------------
    # setup (the LD_PRELOAD constructor)
    # ------------------------------------------------------------------

    def setup(self, target: LoadedImage,
              profile_path: Optional[str] = None) -> None:
        process = self.process
        if process.smvx_monitor is not None:
            raise MvxSetupError("a monitor is already attached")
        self.target = target
        # mvx_*() entries are redirected to the monitor's own
        # implementations rather than run through the libc gate.
        self.plt_names = [name for name in target.image.plt_imports
                          if not name.startswith("mvx_")]
        self._mvx_imports = [name for name in target.image.plt_imports
                             if name.startswith("mvx_")]

        # 1. the profile file from the pre-run analysis script
        if profile_path is None:
            profile_path = write_profile(process.kernel.vfs, target.image)
        self.profile = read_profile(process.kernel.vfs, profile_path)

        # 2. /proc/self/maps — a real guest-visible read
        self._read_self_maps()

        # 3. original libc entry points, before any patching
        for name in self.plt_names:
            self.real_libc[name] = process.loader.read_got_slot(target, name)

        # find the loaded libc image (for building libc call contexts)
        for loaded in process.loader.images:
            if loaded.image.name == "libc.so":
                self._libc_loaded = loaded
        if self._libc_loaded is None:
            raise MvxSetupError("libc.so not loaded in target process")

        # 4. monitor image at a randomized, pkey-guarded location
        allocator = getattr(process, "pkey_allocator", None)
        if allocator is None:
            allocator = PkeyAllocator()
            process.pkey_allocator = allocator
        self.pkey = allocator.alloc()
        self.memory = allocate_monitor_memory(process.space, self.pkey)
        image = build_monitor_image(
            self.plt_names, self._gate, self._api_init, self._api_start,
            self._api_end, self.memory.pkru_open, self.memory.pkru_closed)
        base = randomized_monitor_base(f"{process.pid}:{target.tag}")
        self.monitor_image = process.loader.load(
            image, base=base, tag="smvx_monitor", pkey=self.pkey)
        harden_monitor_text(process.space, self.monitor_image)

        # 5. interpose on every libc import; redirect mvx_*() to the
        #    monitor's own implementations (paper §3.2: "calls to mvx_*()
        #    functions are redirected to the sMVX monitor")
        for name in self.plt_names:
            stub = self.monitor_image.symbol_address(f"smvx_stub_{name}")
            process.loader.patch_got_slot(target, name, stub)
        for name in self._mvx_imports:
            impl = self.monitor_image.symbol_address(name)
            process.loader.patch_got_slot(target, name, impl)

        # 6b. seal the interposed GOT: every slot now points into the
        # monitor, and nothing legitimate writes it again (linking was
        # eager, variant bookkeeping uses privileged stores), so leaving
        # it writable would only serve GOT-overwrite attacks.
        self.seal_target_got()

        # 7. hide the monitor from application code
        process.default_pkru = self.memory.pkru_closed
        for thread in process.threads:
            thread.state.pkru = self.memory.pkru_closed
        process.smvx_monitor = self

        # 8. opt-in fail-closed bring-up: prove the MPK/interception
        # invariants over the live space before serving anything.
        if self.strict_verify:
            from repro.analysis.verify import verify_process
            config = getattr(process, "app_config", None) or {}
            protect = config.get("protect")
            roots = (protect,) if protect \
                and target.has_symbol(protect) else ()
            report = verify_process(process, self, roots=roots)
            if not report.ok:
                raise MvxSetupError(
                    "strict verification failed:\n" + "\n".join(
                        f.format() for f in report.errors))

    def seal_target_got(self) -> None:
        """Write-protect the target's patched ``.got.plt`` pages."""
        from repro.machine.memory import PROT_READ, page_align_up
        start, size = self.target.section_range(".got.plt")
        self.process.space.mprotect(start, page_align_up(max(size, 1)),
                                    PROT_READ)

    def _read_self_maps(self) -> None:
        process = self.process
        kernel = process.kernel
        scratch = process.space.mmap(None, 8192, tag="smvx:setup-scratch")
        process.space.write(scratch, b"/proc/self/maps\x00",
                            privileged=True)
        # monitor-internal I/O is exempt from fault injection (rr keeps
        # its own recorder I/O outside the perturbed world): these raw
        # syscalls have no libc retry layer above them, and a schedule
        # models a hostile environment, not a self-sabotaging monitor.
        with kernel.faults.suspended():
            fd = kernel.syscall(process, "open", scratch, O_RDONLY)
            if fd < 0:
                raise MvxSetupError("cannot open /proc/self/maps")
            chunks = []
            while True:
                n = kernel.syscall(process, "read", fd, scratch + 256, 4096)
                if n <= 0:
                    break
                chunks.append(process.space.read(scratch + 256, n,
                                                 privileged=True))
            kernel.syscall(process, "close", fd)
        process.space.munmap(scratch, 8192)
        self.self_maps = b"".join(chunks).decode()

    # ------------------------------------------------------------------
    # the mvx_*() API implementations (called through the stub image)
    # ------------------------------------------------------------------

    def _api_init(self, ctx: GuestContext) -> int:
        # setup() already ran at preload; mvx_init() validates and charges
        # the pkey-association work.
        if self.target is None:
            return -1
        self.process.charge(self.costs.monitor_call_ns, "smvx-init")
        return 0

    def _api_start(self, ctx: GuestContext, name_ptr: int, nargs: int,
                   *raw_args: int) -> int:
        name = ctx.read_cstring(name_ptr).decode()
        nargs = min(int(nargs), len(raw_args))
        args = list(raw_args[:nargs])
        self.region_start(ctx.thread, name, args)
        return 0

    def _api_end(self, ctx: GuestContext) -> int:
        if self.region is None:
            return -1
        self.region_end(ctx.thread)
        return 0

    # ------------------------------------------------------------------
    # region lifecycle
    # ------------------------------------------------------------------

    def region_start(self, leader: GuestThread, root_function: str,
                     args: Sequence[int]) -> None:
        if self.region is not None:
            raise MvxStateError("nested mvx_start() is not supported")
        if not self.target.has_symbol(root_function):
            # resolve via the profile (the paper's name->address mapping)
            raise MvxSetupError(
                f"protected function {root_function!r} not in profile")
        self.stats.regions_entered += 1
        cached = (self._cached_variants.pop(root_function, None)
                  if self.reuse_variants else None)
        if cached is not None:
            variant, relocated_args, refresh = refresh_variant(
                self.process, cached, self.target, args, self.costs)
            self.last_refresh_stats = refresh
            self.refresh_counts[root_function] = \
                self.refresh_counts.get(root_function, 0) + 1
        elif self.variant_strategy == "aligned":
            variant, relocated_args = create_aligned_follower(
                self.process, self.target, root_function, args, self.costs)
        else:
            variant, relocated_args = create_follower(
                self.process, self.target, root_function, args, self.costs,
                alias_info=self.alias_info)
        self.last_variant_report = variant.report
        variant.thread.state.pkru = self.memory.pkru_closed
        channel = LockstepChannel()
        relocator = PointerRelocator(
            self.process.space,
            [OldRange(self.target.base,
                      self.target.base + self.target.image.load_size,
                      "image"),
             OldRange(self.process.heap.base,
                      self.process.heap.base + self.process.heap.size,
                      "heap")],
            variant.report.shift, self.costs)
        leader.variant = LEADER

        py_thread = threading.Thread(
            target=self._follower_main,
            args=(variant, relocated_args, channel),
            name=f"smvx-follower-{root_function}",
            daemon=True)
        self.region = ActiveRegion(root_function, leader, variant, channel,
                                   relocator, py_thread)
        py_thread.start()

    def _follower_main(self, variant: FollowerVariant,
                       args: Sequence[int],
                       channel: LockstepChannel) -> None:
        try:
            channel.follower_wait_turn()
            self.process.guest_call(variant.thread, variant.entry, *args)
        except MvxDivergence:
            # already flagged on the channel; just exit
            channel.follower_finish(fault="divergence")
            return
        except MachineFault as fault:
            channel.follower_finish(
                fault=f"{type(fault).__name__}: {fault} "
                      f"(address {fault.address:#x})",
                fault_pc=getattr(fault, "address", -1) or -1,
                fault_task=variant.thread.tid)
            return
        except LockstepTimeout as timeout:
            channel.follower_finish(fault=f"lockstep timeout: {timeout}")
            return
        channel.follower_finish()

    def region_end(self, leader: GuestThread) -> None:
        region = self.region
        if region is None:
            raise MvxStateError("mvx_end() without an active region")
        if leader is not region.leader:
            raise MvxStateError("mvx_end() from a non-leader thread")
        try:
            status = region.channel.leader_finish()
        except MvxDivergence as divergence:
            self._teardown_region(alarm=divergence.report)
            raise
        if status.fault:
            report = DivergenceReport(
                DivergenceKind.FOLLOWER_FAULT, detail=status.fault,
                task_id=status.fault_task, guest_pc=status.fault_pc)
            self._teardown_region(alarm=report)
            raise MvxDivergence(report)
        self._teardown_region()

    def abort_region(self, report: DivergenceReport) -> None:
        if self.region is not None:
            self.region.channel.leader_abort(report)
            self._teardown_region(alarm=report)

    def _teardown_region(self,
                         alarm: Optional[DivergenceReport] = None) -> None:
        region = self.region
        self.region = None
        if alarm is not None:
            if alarm.pid < 0:
                # stamp the owning process: multi-worker servers funnel
                # every monitor into one shared AlarmLog, and tids alone
                # (each worker's main thread is 1) cannot identify it
                alarm = replace(alarm, pid=self.process.pid)
            self.alarms.raise_alarm(alarm)
        region.leader.variant = "main"
        region.py_thread.join(timeout=30)
        if alarm is None and self.reuse_variants:
            # §5: park the follower and track dirtiness instead of paying
            # full duplication + scans on the next region entry
            self._cached_variants[region.root] = park_variant(
                self.process, region.variant, self.target)
        else:
            region.variant.destroy(self.process)

    def drop_variant_caches(self) -> None:
        """Destroy all parked followers (frees their memory)."""
        for cached in self._cached_variants.values():
            cached.tracker.detach()
            cached.variant.destroy(self.process)
        self._cached_variants.clear()

    def broadcast_privileged_word(self, symbol: str, offset: int,
                                  value: int) -> int:
        """Mirror a control-plane store into every follower copy of
        ``symbol``: the active region's variant and any parked reusable
        ones.  Privileged writes bypass the page observers, so the reuse
        ``DirtyTracker`` never records them — without this mirror a
        drain flag written into the leader's globals leaves the follower
        copies stale, and the very next protected region diverges on the
        drain branch (CALL_NAME at the first call past it).  Returns the
        number of copies written; aligned-strategy variants share the
        leader's view and need none."""
        if self.target is None:
            return 0
        base = self.target.symbol_address(symbol)
        views = []
        if self.region is not None:
            views.append(self.region.variant.loaded)
        views.extend(cached.variant.loaded
                     for cached in self._cached_variants.values())
        written = 0
        for view in views:
            addr = view.symbol_address(symbol)
            if addr == base:
                continue
            self.process.space.write_word(addr + offset, value,
                                          privileged=True)
            written += 1
        return written

    # ------------------------------------------------------------------
    # the gate: every intercepted libc call lands here
    # ------------------------------------------------------------------

    def _gate(self, ctx: GuestContext) -> int:
        process = self.process
        thread = ctx.thread
        regs = ctx.regs
        rsp = regs.get("rsp")
        # unsafe-stack frame laid out by the trampoline (see trampoline.py)
        rdx_saved = ctx.read_word(rsp + 8)
        rcx_saved = ctx.read_word(rsp + 16)
        rax_saved = ctx.read_word(rsp + 24)
        plt_index = ctx.read_word(rsp + 32)
        name = self.plt_names[plt_index]
        arity = LIBC_ARITIES[name]

        args = []
        for index in range(arity):
            if index == 2:
                args.append(rdx_saved)
            elif index == 3:
                args.append(rcx_saved)
            elif index < 6:
                args.append(regs.get(ARG_REGISTERS[index]))
            else:
                args.append(ctx.read_word(
                    rsp + 48 + 8 * (index - 6)))

        self.stats.intercepted_calls += 1
        # per-thread: a follower's interception work burns its own core
        thread.counter.charge(
            self.costs.trampoline_ns + self.costs.monitor_call_ns,
            "smvx-intercept")

        # stack pivot: monitor logic runs on the pkey-guarded safe stack
        slots = self.memory.safe_stack_size // (2 * 4096)
        slot = self.process.threads.index(thread) % slots
        unsafe_rsp = rsp
        regs.set("rsp", self.memory.safe_stack_top(slot))
        try:
            return self._dispatch(ctx, thread, name, args)
        finally:
            regs.set("rsp", unsafe_rsp)

    def _dispatch(self, ctx: GuestContext, thread: GuestThread,
                  name: str, args: List[int]) -> int:
        region = self.region
        if region is not None and thread is region.leader:
            return self._leader_call(ctx, thread, name, args)
        if region is not None and thread is region.variant.thread:
            return self._follower_call(ctx, thread, name, args)
        self.stats.passthrough_calls += 1
        return self._execute_libc(thread, name, args)

    def _execute_libc(self, thread: GuestThread, name: str,
                      args: List[int]) -> int:
        """Run the *real* libc implementation (saved at setup) directly —
        the monitor never re-enters its own interception."""
        fn, _arity = LIBC_FUNCTIONS[name]
        libc_ctx = GuestContext(self.process, thread, self._libc_loaded,
                                name)
        thread.func_stack.append(name)
        try:
            result = fn(libc_ctx, *args)
        finally:
            thread.func_stack.pop()
        return int(result or 0) & _MASK64

    # -- leader side ----------------------------------------------------------

    def _leader_call(self, ctx: GuestContext, thread: GuestThread,
                     name: str, args: List[int]) -> int:
        region = self.region
        spec = spec_for(name) or EmulationSpec(name, Category.LOCAL)
        region.leader_seq += 1
        record = CallRecord(region.leader_seq, name, tuple(args), LEADER)
        self.stats.leader_calls += 1
        self.process.charge(self.costs.rendezvous_ns, "smvx-rendezvous")
        for tap in self.call_taps:
            tap(LEADER, record)

        try:
            follower_record = region.channel.leader_announce(record)
        except MvxDivergence as divergence:
            self._teardown_region(alarm=divergence.report)
            raise

        report = compare_calls(record, follower_record, spec.pointer_args)
        if report is not None:
            report = replace(report, task_id=thread.tid,
                             guest_pc=thread.state.regs.rip)
            region.channel.leader_abort(report)
            self._teardown_region(alarm=report)
            raise MvxDivergence(report)

        if spec.category is Category.LOCAL:
            retval = self._execute_libc(thread, name, args)
            self.stats.local_calls += 1
            region.channel.leader_publish(LibcResult(
                record.seq, retval, thread.errno, execute_locally=True))
            return retval

        retval = self._execute_libc(thread, name, args)
        self.stats.emulated_calls += 1
        follower_ret, copied = self._emulate_for_follower(
            spec, retval, record, follower_record)
        region.channel.leader_publish(LibcResult(
            record.seq, follower_ret, thread.errno,
            buffers_copied=tuple(copied)))
        return retval

    def _emulate_for_follower(self, spec: EmulationSpec, retval: int,
                              leader: CallRecord, follower: CallRecord
                              ) -> Tuple[int, List[Tuple[int, int]]]:
        """Copy output buffers into the follower's memory and translate a
        pointer-valued return (paper §3.3 + the §3.3 'special' cases).

        Reads come from the leader's view, writes go through the
        follower's own view — under the aligned-variant strategy the same
        numeric address names *different* pages in the two views."""
        space = self.process.space
        follower_space = self.region.variant.thread.space
        region = self.region
        copied: List[Tuple[int, int]] = []
        signed_ret = to_signed(retval)

        if signed_ret >= 0:
            for buffer in spec.out_buffers:
                if buffer.arg_index >= len(leader.args):
                    continue
                leader_ptr = leader.args[buffer.arg_index]
                follower_ptr = follower.args[buffer.arg_index]
                if leader_ptr == 0 or follower_ptr == 0:
                    continue
                if buffer.size is BufSize.RETVAL:
                    size = signed_ret
                elif buffer.size is BufSize.RETVAL_TIMES:
                    size = signed_ret * buffer.fixed_size
                else:
                    size = buffer.fixed_size
                if size <= 0:
                    continue
                if spec.category is Category.SPECIAL and spec.name == "ioctl":
                    # pointer-in-address-space heuristic (paper §3.3)
                    if not space.is_mapped(leader_ptr):
                        continue
                data = space.read(leader_ptr, size, privileged=True)
                follower_space.write(follower_ptr, data, privileged=True)
                copied.append((follower_ptr, size))
                self.stats.bytes_copied += size
                self.process.charge(size * self.costs.ipc_copy_byte_ns,
                                    "smvx-ipc-copy")
            if spec.name in ("epoll_wait", "epoll_pwait") and signed_ret > 0:
                self._translate_epoll_data(follower.args[1], signed_ret)

        follower_ret = retval
        if spec.retval_is_pointer:
            # a pointer return usually aliases one of the arguments
            # (localtime_r returns its result buffer); map positionally,
            # else fall back to old-range relocation.
            follower_ret = None
            for index, value in enumerate(leader.args):
                if value == retval and index < len(follower.args):
                    follower_ret = follower.args[index]
                    break
            if follower_ret is None:
                follower_ret = region.relocator.relocate_value(retval)
        return follower_ret & _MASK64, copied

    def _translate_epoll_data(self, follower_events: int, count: int) -> None:
        """epoll_data is a union; when a value looks like a pointer into
        the leader's ranges, hand the follower its shifted equivalent."""
        space = self.region.variant.thread.space
        relocator = self.region.relocator
        for index in range(count):
            slot = follower_events + 16 * index + 8
            value = space.read_word(slot, privileged=True)
            translated = relocator.relocate_value(value)
            if translated != value:
                space.write_word(slot, translated, privileged=True)

    # -- follower side -----------------------------------------------------------

    def _follower_call(self, ctx: GuestContext, thread: GuestThread,
                       name: str, args: List[int]) -> int:
        region = self.region
        region.follower_seq += 1
        record = CallRecord(region.follower_seq, name, tuple(args), FOLLOWER)
        self.stats.follower_calls += 1
        for tap in self.call_taps:
            tap(FOLLOWER, record)
        # follower-side wait burns its own core, not wall time (the wall
        # cost of the rendezvous is charged once, on the leader side)
        thread.counter.charge(self.costs.rendezvous_ns, "smvx-rendezvous")
        result = region.channel.follower_announce(record)
        if result.execute_locally:
            mine = self._execute_libc(thread, name, args)
            spec = spec_for(name)
            # paper §3.3: return values are lockstep-checked too; pointer
            # returns legitimately differ between layouts and are skipped
            if (spec is None or not spec.retval_is_pointer) \
                    and mine != result.retval:
                report = DivergenceReport(
                    DivergenceKind.RETVAL, record.seq, name,
                    f"local call returned {mine:#x} in the follower vs "
                    f"{result.retval:#x} in the leader",
                    task_id=thread.tid, guest_pc=thread.state.regs.rip)
                region.channel.follower_abort(report)
                raise MvxDivergence(report)
            return mine
        thread.errno = result.errno
        return result.retval
