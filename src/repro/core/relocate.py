"""Runtime pointer scanning and relocation (paper §3.4).

After the follower's memory has been copied ``shift`` bytes away, pointers
stored *inside* the copied data still reference the leader's (old)
locations — function pointers into the old ``.text``, data pointers into
the old ``.data``/``.bss``/heap.  The relocator walks every 8-byte-aligned
slot of the follower's ``.data``, ``.bss`` and heap, verifies candidate
values against the known old ranges (the RuntimeASLR-style false-positive
filter), and rewrites hits by ``+shift``.

The paper is explicit that this is a strawman with a real cost (Table 2:
the lighttpd heap scan alone is ~131 ms) and a real inaccuracy (an integer
that *looks* like a pointer gets relocated).  Both behaviours are
reproduced: costs are charged per slot, and the misidentification hazard
is demonstrated in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.machine.costs import CostModel
from repro.machine.memory import AddressSpace, WORD_SIZE


@dataclass(frozen=True)
class OldRange:
    """One leader-side range whose pointers must be relocated."""

    start: int
    end: int
    label: str

    def contains(self, value: int) -> bool:
        return self.start <= value < self.end


@dataclass
class ScanStats:
    """Accounting for one region scan (feeds Table 2)."""

    region: str
    slots_scanned: int = 0
    pointers_found: int = 0
    time_ns: float = 0.0


@dataclass
class RelocationReport:
    shift: int
    scans: List[ScanStats] = field(default_factory=list)

    @property
    def total_pointers(self) -> int:
        return sum(scan.pointers_found for scan in self.scans)

    @property
    def total_time_ns(self) -> float:
        return sum(scan.time_ns for scan in self.scans)

    def scan_named(self, region: str) -> Optional[ScanStats]:
        for scan in self.scans:
            if scan.region == region:
                return scan
        return None


class PointerRelocator:
    """Scans follower regions and rewrites old-range pointers."""

    def __init__(self, space: AddressSpace, old_ranges: Iterable[OldRange],
                 shift: int, costs: CostModel, charge=None):
        self.space = space
        self.old_ranges = list(old_ranges)
        self.shift = shift
        self.costs = costs
        #: charge(ns, category) — wired to the process counter; optional
        #: so the relocator is unit-testable standalone.
        self._charge = charge or (lambda ns, category: None)

    # -- classification -------------------------------------------------------

    def classify(self, value: int) -> Optional[OldRange]:
        """The verification step: a slot value is a pointer candidate only
        if it falls inside a known old range."""
        for old_range in self.old_ranges:
            if old_range.contains(value):
                return old_range
        return None

    # -- scanning ----------------------------------------------------------------

    def scan_region(self, start: int, size: int, region: str,
                    slot_cost_ns: float,
                    slot_offsets: Optional[Iterable[int]] = None) -> ScanStats:
        """Scan ``[start, start+size)`` in the follower copy.

        ``slot_offsets`` restricts the walk to statically known pointer
        slots (the alias-analysis fast path); otherwise every aligned slot
        is visited.
        """
        stats = ScanStats(region)
        if slot_offsets is None:
            offsets = range(0, size - size % WORD_SIZE, WORD_SIZE)
        else:
            offsets = sorted(o for o in slot_offsets if o + WORD_SIZE <= size)
        for offset in offsets:
            address = start + offset
            value = self.space.read_word(address, privileged=True)
            stats.slots_scanned += 1
            if self.classify(value) is not None:
                self.space.write_word(address, value + self.shift,
                                      privileged=True)
                stats.pointers_found += 1
        stats.time_ns = (stats.slots_scanned * slot_cost_ns
                         + stats.pointers_found * self.costs.pointer_fixup_ns)
        self._charge(stats.time_ns, f"pointer-scan:{region}")
        return stats

    def scan_data_region(self, start: int, size: int, region: str,
                         slot_offsets=None) -> ScanStats:
        return self.scan_region(start, size, region,
                                self.costs.data_scan_slot_ns, slot_offsets)

    def scan_heap_region(self, start: int, size: int,
                         region: str = "heap") -> ScanStats:
        return self.scan_region(start, size, region,
                                self.costs.heap_scan_slot_ns)

    # -- scalar helpers --------------------------------------------------------------

    def relocate_value(self, value: int) -> int:
        """Relocate one scalar if it points into an old range (used for
        protected-function arguments and epoll_data unions)."""
        return value + self.shift if self.classify(value) else value
