"""The taint-tracking engine.

libdft tracks taint at byte granularity between memory and registers; our
hybrid guest's "registers" are the Python values HL functions hold between
a guest-memory read and the next write.  The engine therefore combines:

* a shadow set of tainted guest byte addresses,
* a taint *source* hook on kernel socket reads (network input — the
  paper's source),
* content-based propagation: a write whose bytes appeared (wholly or as a
  substring) in a recently read tainted buffer inherits the taint — this
  covers memcpy-style copies and parser-style substring extraction, the
  flows §3.2 cares about ("tracked as it is copied and altered").

Every *read* that touches a tainted byte records the access site (the
current guest function's entry address — the dft.out instruction-address
analogue).  Arithmetic laundering (int conversions) is not tracked, a
known under-approximation shared with real DTA and noted in DESIGN.md.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Set, Tuple

from repro.errors import SymbolNotFound
from repro.process.process import GuestProcess

#: how many recent tainted reads to keep for propagation matching
_RECENT_WINDOW = 48
#: ignore giant buffers in substring matching (cost guard)
_MAX_MATCH_LEN = 16384
#: a tainted read must be at least this long to count as "embedded" in a
#: longer write (concatenation propagation).  1–3 byte reads alias far
#: too easily — a single tainted space or NUL byte otherwise re-taints
#: any kernel-written struct that happens to contain that byte value.
_MIN_EMBED_LEN = 4


@dataclass(frozen=True)
class SiteRecord:
    """First observation of one guest function touching tainted bytes.

    Carries the *virtual time* of the first access and the function's
    entry address (None for HL-only frames with no load address), so a
    dynamic site can be matched 1:1 against a static
    :class:`~repro.analysis.scope.ScopeReport` entry and ordered on the
    taint-propagation timeline by ``explain_alarm``-style tooling.
    """

    function: str
    entry: Optional[int]
    first_seen_ns: int


class TaintEngine:
    """Attachable taint tracker for one guest process."""

    def __init__(self, process: GuestProcess):
        self.process = process
        self.tainted: Set[int] = set()
        #: access sites (guest addresses) whose reads touched taint
        self.access_sites: Set[int] = set()
        #: function names observed touching taint (resolved eagerly too,
        #: since sites are function entries in the hybrid model)
        self.site_names: Set[str] = set()
        #: first-seen record per observed function, keyed by name
        self.site_records: Dict[str, SiteRecord] = {}
        self._recent: Deque[Tuple[bytes, Tuple[bool, ...]]] = deque(
            maxlen=_RECENT_WINDOW)
        self._attached = False
        self.source_bytes = 0

    # -- lifecycle -------------------------------------------------------------

    def attach(self) -> "TaintEngine":
        if not self._attached:
            self.process.space.add_observer(self._observe)
            self.process.kernel.io_taint_hook = self._on_io
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.process.space.remove_observer(self._observe)
            self.process.kernel.io_taint_hook = None
            self._attached = False

    def __enter__(self) -> "TaintEngine":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- taint source -------------------------------------------------------------

    def _on_io(self, proc, buf: int, nbytes: int, kind: str) -> None:
        if proc is not self.process or kind != "socket":
            return
        for offset in range(nbytes):
            self.tainted.add(buf + offset)
        self.source_bytes += nbytes
        self._record_site()

    # -- propagation ----------------------------------------------------------------

    def _observe(self, op: str, addr: int, size: int,
                 value: Optional[bytes]) -> None:
        if value is None or size == 0 or size > _MAX_MATCH_LEN:
            return
        if op == "read":
            mask = tuple((addr + i) in self.tainted for i in range(size))
            if any(mask):
                self._record_site()
                self._recent.append((value, mask))
        elif op == "write":
            # overwriting clears old taint, then propagation may re-taint
            for offset in range(size):
                self.tainted.discard(addr + offset)
            self._propagate_write(addr, value)

    def _propagate_write(self, addr: int, value: bytes) -> None:
        for data, mask in self._recent:
            if len(value) <= len(data):
                # the written bytes are a slice of a tainted read
                start = data.find(value)
                while start >= 0:
                    if any(mask[start:start + len(value)]):
                        for i in range(len(value)):
                            if mask[start + i]:
                                self.tainted.add(addr + i)
                        return
                    start = data.find(value, start + 1)
            else:
                # a tainted read is embedded in the written bytes
                # (concatenation: e.g. a header built around the URI)
                if len(data) < _MIN_EMBED_LEN:
                    continue
                start = value.find(data)
                if start >= 0 and any(mask):
                    for i, bit in enumerate(mask):
                        if bit:
                            self.tainted.add(addr + start + i)
                    return

    # -- site recording --------------------------------------------------------------

    def _record_site(self) -> None:
        thread = self.process.active_thread
        if thread is None or not thread.func_stack:
            return
        name = thread.func_stack[-1]
        self.site_names.add(name)
        entry: Optional[int] = None
        try:
            entry = self.process.resolve(name)
            self.access_sites.add(entry)
        except SymbolNotFound:
            # HL-only frames (synthetic function names with no load
            # address) legitimately have no symbol; the name set above
            # still records the access.  Anything else must surface.
            pass
        if name not in self.site_records:
            self.site_records[name] = SiteRecord(
                name, entry, self.process.counter.total_ns)

    # -- queries ------------------------------------------------------------------------

    def is_tainted(self, addr: int, size: int = 1) -> bool:
        return any((addr + i) in self.tainted for i in range(size))

    def tainted_count(self) -> int:
        return len(self.tainted)
