"""Dynamic taint analysis (the libdft analogue, paper §3.2 + Figure 9).

* :class:`TaintEngine` — byte-granularity taint over guest memory, with
  network input as the taint source and content-based propagation through
  copies and substring extraction;
* :mod:`repro.taint.report` — the ``dft.out``-parsing + r2pipe-style step:
  tainted access sites → containing functions, filtered to the target's
  ``.text``;
* :mod:`repro.taint.authdiff` — authentication-code discovery by diffing
  execution traces of a successful vs failed login.
"""

from repro.taint.engine import SiteRecord, TaintEngine
from repro.taint.report import (
    DynamicSite,
    TaintReport,
    diff_against_static,
    functions_from_sites,
)
from repro.taint.authdiff import first_divergent_function, trace_diff

__all__ = [
    "DynamicSite",
    "SiteRecord",
    "TaintEngine",
    "TaintReport",
    "diff_against_static",
    "first_divergent_function",
    "functions_from_sites",
    "trace_diff",
]
