"""Authentication-code discovery via execution-trace diffing (§3.2).

The paper collects two execution-trace logs — one for a successful
authentication input, one for a failed one — and uses their diff as the
hint: "the first divergent basic block is likely to be
authentication-related, and functions containing these basic blocks are
likely used for authentication".

Our trace entries are ``(stack_depth, function_name)`` pairs recorded at
every guest-function entry (:attr:`GuestProcess.function_trace`).  The
divergence unit is therefore a call rather than a basic block, and the
*enclosing frame* of the first divergent call — the function whose branch
chose differently — is the auth-related candidate, carrying the same
signal the paper's basic-block diff does.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

TraceEntry = Tuple[int, str]


def trace_diff(success: Sequence[TraceEntry],
               failure: Sequence[TraceEntry]) -> List[Tuple[int, TraceEntry, TraceEntry]]:
    """All positions where the traces differ.

    Exhausted traces report ``(0, "<end>")``.
    """
    out = []
    sentinel: TraceEntry = (0, "<end>")
    for index in range(max(len(success), len(failure))):
        a = success[index] if index < len(success) else sentinel
        b = failure[index] if index < len(failure) else sentinel
        if a != b:
            out.append((index, a, b))
    return out


def first_divergent_function(success: Sequence[TraceEntry],
                             failure: Sequence[TraceEntry]) -> Optional[str]:
    """The function containing the first divergent control transfer.

    Walks back from the first differing entry to the nearest earlier
    entry with a strictly smaller stack depth — the frame that *made* the
    diverging call.  Falls back to the divergent entry itself when the
    divergence happens at the trace root.
    """
    diffs = trace_diff(success, failure)
    if not diffs:
        return None
    index, got_success, _got_failure = diffs[0]
    depth = got_success[0] if got_success[1] != "<end>" else (
        failure[index][0] if index < len(failure) else 0)
    for back in range(min(index, len(success)) - 1, -1, -1):
        entry_depth, name = success[back]
        if entry_depth < depth:
            return name
    if got_success[1] != "<end>":
        return got_success[1]
    return None


def collect_trace(process, request_fn) -> List[TraceEntry]:
    """Run ``request_fn()`` with tracing enabled; returns the trace."""
    process.function_trace = []
    try:
        request_fn()
        return list(process.function_trace)
    finally:
        process.function_trace = None
