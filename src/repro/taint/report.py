"""From tainted access sites to sensitive-function candidates.

Reproduces the paper's two-stage post-processing (Figure 3):

1. parse the engine's output and *filter by the application's .text
   address range* (``parse_libdft_output`` + "filter by .text addresses");
2. map each surviving address to the function containing it and dump the
   symbol names (the r2pipe step, ``parse_target_binary`` +
   ``dump_function_names``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.loader.loader import LoadedImage
from repro.taint.engine import TaintEngine


@dataclass
class TaintReport:
    """The candidate list handed to the sMVX user."""

    target: str
    sensitive_functions: Set[str] = field(default_factory=set)
    raw_site_count: int = 0
    tainted_bytes: int = 0

    @property
    def count(self) -> int:
        return len(self.sensitive_functions)

    def dump_function_names(self) -> str:
        lines = [f"# sensitive-function candidates for {self.target}"]
        lines += sorted(self.sensitive_functions)
        return "\n".join(lines) + "\n"


def functions_from_sites(sites, target: LoadedImage) -> Set[str]:
    """Filter sites to the target's .text and resolve containing symbols."""
    text_start, text_size = target.section_range(".text")
    names: Set[str] = set()
    for addr in sites:
        if not text_start <= addr < text_start + text_size:
            continue
        symbol = target.function_at(addr)
        if symbol is not None:
            names.add(symbol.name)
    return names


def build_report(engine: TaintEngine, target: LoadedImage) -> TaintReport:
    return TaintReport(
        target=target.image.name,
        sensitive_functions=functions_from_sites(engine.access_sites,
                                                 target),
        raw_site_count=len(engine.access_sites),
        tainted_bytes=engine.tainted_count(),
    )
