"""From tainted access sites to sensitive-function candidates.

Reproduces the paper's two-stage post-processing (Figure 3):

1. parse the engine's output and *filter by the application's .text
   address range* (``parse_libdft_output`` + "filter by .text addresses");
2. map each surviving address to the function containing it and dump the
   symbol names (the r2pipe step, ``parse_target_binary`` +
   ``dump_function_names``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Set, Tuple

from repro.loader.loader import LoadedImage
from repro.taint.engine import SiteRecord, TaintEngine


@dataclass(frozen=True)
class DynamicSite:
    """One dynamically observed tainted-access site, match-ready.

    Mirrors a static ``ScopeReport`` entry 1:1 — same function-name key —
    plus the two dynamic-only facts the engine records: the *virtual
    time* the taint first reached the function and the function's entry
    address.  ``statically_selected`` is filled in by
    :func:`diff_against_static`.
    """

    function: str
    entry: Optional[int]
    first_seen_ns: int
    statically_selected: Optional[bool] = None


@dataclass
class TaintReport:
    """The candidate list handed to the sMVX user."""

    target: str
    sensitive_functions: Set[str] = field(default_factory=set)
    raw_site_count: int = 0
    tainted_bytes: int = 0
    #: one entry per sensitive function, ordered by first-seen time
    sites: Tuple[DynamicSite, ...] = ()

    @property
    def count(self) -> int:
        return len(self.sensitive_functions)

    def dump_function_names(self) -> str:
        lines = [f"# sensitive-function candidates for {self.target}"]
        lines += sorted(self.sensitive_functions)
        return "\n".join(lines) + "\n"

    def timeline(self) -> str:
        """First-seen propagation order (explain_alarm companion)."""
        lines = [f"# taint propagation timeline for {self.target}"]
        for site in self.sites:
            entry = f"{site.entry:#x}" if site.entry is not None else "-"
            lines.append(f"{site.first_seen_ns:>12d}ns  {entry:>10}  "
                         f"{site.function}")
        return "\n".join(lines) + "\n"


def functions_from_sites(sites, target: LoadedImage) -> Set[str]:
    """Filter sites to the target's .text and resolve containing symbols."""
    text_start, text_size = target.section_range(".text")
    names: Set[str] = set()
    for addr in sites:
        if not text_start <= addr < text_start + text_size:
            continue
        symbol = target.function_at(addr)
        if symbol is not None:
            names.add(symbol.name)
    return names


def build_report(engine: TaintEngine, target: LoadedImage) -> TaintReport:
    sensitive = functions_from_sites(engine.access_sites, target)
    records: List[SiteRecord] = [
        record for name, record in engine.site_records.items()
        if name in sensitive]
    records.sort(key=lambda record: (record.first_seen_ns,
                                     record.function))
    return TaintReport(
        target=target.image.name,
        sensitive_functions=sensitive,
        raw_site_count=len(engine.access_sites),
        tainted_bytes=engine.tainted_count(),
        sites=tuple(DynamicSite(record.function, record.entry,
                                record.first_seen_ns)
                    for record in records),
    )


def diff_against_static(report: TaintReport,
                        scope_report) -> Tuple[Tuple[DynamicSite, ...],
                                               Tuple[str, ...]]:
    """Match dynamic sites 1:1 against a static ``ScopeReport``.

    Returns ``(sites, missed)``: every dynamic site with its
    ``statically_selected`` verdict filled in, and the names the static
    selection *missed* — the differential soundness gate requires
    ``missed`` to be empty (dynamic ⊆ static) for every covered workload.
    """
    selected = set(scope_report.selected)
    sites = tuple(replace(site, statically_selected=site.function
                          in selected)
                  for site in report.sites)
    missed = tuple(sorted(site.function for site in sites
                          if not site.statically_selected))
    return sites, missed
