"""Scenario matrix generation for deterministic simulation testing.

One *master seed* derives an arbitrarily long matrix of scenarios, each
a point in the space (workload × fault schedule × variant strategy ×
worker count × concurrency × client behaviour × attack × worker kill ×
clock skew).  Generation uses the same SHA-256 counter-stream idiom as
the fault plane (`repro.kernel.faults.FaultPlane._draw`), keyed by
``(master_seed, scenario index)``: the matrix is a pure function of the
master seed, so two swarms from the same seed sample the *same* points
and every scenario can be re-derived from ``(master_seed, index)``
alone — the precondition for deterministic shrinking.

Axis constraints are encoded here, not in the runner:

* attacks only run against a protected sMVX deployment (the oracle's
  "expected alarm" needs a monitor to raise it);
* the benign chunked-upload axis requires whole-delivery schedules
  (no segmentation, no short reads, no spurious EAGAIN): the guest's
  discard loop treats any empty read as end-of-body, so those faults
  would leave body bytes on the socket and poison the next keep-alive
  request — a guest fidelity limit, not a sim bug;
* worker kills need a scheduled multi-worker littled with a spare
  worker to absorb the load;
* chunked uploads target minx (littled has no chunked parser).
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.kernel.faults import FaultSchedule, battery

WORKLOADS = ("minx", "littled", "cluster")
CLASSES = ("clean", "expected-alarm", "unexpected-alarm", "divergence",
           "conformance-failure", "crash")
#: outcome classes a healthy swarm is allowed to produce.
OK_CLASSES = frozenset(("clean", "expected-alarm"))

MINX_PROTECT = "minx_http_process_request_line"
LITTLED_PROTECT = "server_main_loop"

#: known code mutations for validating the bug-finding pipeline
#: ("zero-read" forges EOF on every second short-read clamp — exactly
#: the bug class the fault plane's never-below-1-byte rule exists to
#: avoid).  "none" is the production setting.
MUTATIONS = ("none", "zero-read")


class SeedStream:
    """Deterministic uniform draws keyed by (master seed, index)."""

    def __init__(self, master_seed: str, index: "int | str"):
        self._key = f"{master_seed}|sim|{index}".encode()
        self._counter = 0

    def draw(self) -> float:
        block = hashlib.sha256(
            self._key + b"|" + self._counter.to_bytes(8, "little")
        ).digest()
        self._counter += 1
        return int.from_bytes(block[:8], "little") / float(1 << 64)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi]."""
        return lo + int(self.draw() * (hi - lo + 1))

    def choice(self, options: Sequence):
        return options[int(self.draw() * len(options))]

    def chance(self, p: float) -> bool:
        return self.draw() < p


def schedule_palette() -> List[FaultSchedule]:
    """The schedules a scenario may install: the standard battery plus
    sim-only entries for axes the battery never armed (spurious wakes,
    tight backlogs)."""
    return battery() + [
        FaultSchedule(name="spurious-wakes", spurious_wake_p=0.3),
        FaultSchedule(name="wakes-and-eintr", spurious_wake_p=0.15,
                      eintr_p=0.15),
        FaultSchedule(name="tight-backlog", backlog_cap=3,
                      eintr_p=0.05),
    ]


def _chunked_safe(schedule: Optional[FaultSchedule]) -> bool:
    if schedule is None:
        return True
    return (not schedule.segment_bytes and not schedule.short_read_p
            and not schedule.eagain_p)


@dataclass
class Scenario:
    """One fully-specified simulation run (plain data, serializable)."""

    index: int
    master_seed: str
    workload: str = "minx"
    protect: Optional[str] = MINX_PROTECT
    smvx: bool = True
    variant_strategy: str = "shift"
    workers: int = 0                 # littled only; 0 = classic pump
    concurrency: int = 1
    requests: int = 3
    #: FaultSchedule spec dict, or None for the happy path.
    schedule: Optional[Dict] = None
    client_mode: str = "normal"
    partial_preludes: int = 0
    chunk_bytes: int = 256
    attack: str = "none"             # "none" | "cve"
    worker_kill: bool = False
    #: run under the production control plane (supervisor restarts
    #: crashed workers); littled multi-worker only.
    supervise: bool = False
    #: schedule a graceful reload mid-run (requires ``supervise``).
    reload: bool = False
    clock_skew_ns: int = 0
    #: run the scenario twice and require bit-identical digests.
    recheck: bool = False
    #: injected known-bug mutation (validation of the pipeline itself).
    mutation: str = "none"

    @property
    def seed(self) -> str:
        """The kernel/cluster seed this scenario runs under."""
        return f"{self.master_seed}/sc{self.index}"

    def schedule_obj(self) -> Optional[FaultSchedule]:
        if self.schedule is None:
            return None
        return FaultSchedule.from_dict(self.schedule)

    def to_dict(self) -> Dict:
        return asdict(self)

    @staticmethod
    def from_dict(raw: Dict) -> "Scenario":
        known = Scenario.__dataclass_fields__
        unknown = [key for key in raw if key not in known]
        if unknown:
            raise ValueError(
                f"unknown scenario field(s) {', '.join(sorted(unknown))}")
        scenario = Scenario(**raw)
        if scenario.workload not in WORKLOADS:
            raise ValueError(f"unknown workload {scenario.workload!r}")
        if scenario.mutation not in MUTATIONS:
            raise ValueError(f"unknown mutation {scenario.mutation!r}")
        scenario.schedule_obj()      # validates the embedded schedule
        return scenario

    def describe(self) -> str:
        bits = [self.workload,
                self.schedule["name"] if self.schedule else "no-faults",
                f"c{self.concurrency}", f"n{self.requests}"]
        if self.workers:
            bits.append(f"w{self.workers}")
        if self.smvx:
            bits.append(self.variant_strategy)
        if self.client_mode != "normal":
            bits.append(self.client_mode)
        if self.partial_preludes:
            bits.append(f"partial×{self.partial_preludes}")
        if self.attack != "none":
            bits.append(self.attack)
        if self.worker_kill:
            bits.append("kill")
        if self.supervise:
            bits.append("supervised")
        if self.reload:
            bits.append("reload")
        if self.clock_skew_ns:
            bits.append(f"skew{self.clock_skew_ns}")
        if self.recheck:
            bits.append("recheck")
        if self.mutation != "none":
            bits.append(f"mut:{self.mutation}")
        return " ".join(bits)


def generate_scenario(master_seed: str, index: int) -> Scenario:
    """Derive scenario ``index`` of ``master_seed``'s matrix."""
    stream = SeedStream(master_seed, index)
    workload = stream.choice(WORKLOADS)
    palette: List[Optional[FaultSchedule]] = [None] + schedule_palette()
    schedule = stream.choice(palette)

    scenario = Scenario(index=index, master_seed=master_seed,
                        workload=workload,
                        schedule=schedule.to_dict() if schedule else None)
    scenario.requests = stream.randint(2, 6)
    scenario.concurrency = stream.randint(1, 3)
    scenario.variant_strategy = stream.choice(("shift", "aligned"))

    if workload == "cluster":
        # the distributed deployment is always protected (leader plain,
        # mirror sMVX — that is the deployment under test)
        scenario.smvx = True
        scenario.protect = MINX_PROTECT
    elif workload == "littled":
        scenario.workers = stream.randint(2, 3)
        scenario.smvx = stream.chance(0.7)
        scenario.protect = LITTLED_PROTECT if scenario.smvx else None
    else:
        scenario.smvx = stream.chance(0.7)
        scenario.protect = MINX_PROTECT if scenario.smvx else None

    modes = ["normal", "normal", "slowloris"]
    if workload != "littled" and _chunked_safe(schedule):
        modes.append("chunked")
    scenario.client_mode = stream.choice(modes)
    if scenario.client_mode == "chunked":
        scenario.chunk_bytes = stream.randint(32, 1024)
    if stream.chance(0.25):
        scenario.partial_preludes = stream.randint(1, 2)
    if schedule is not None and schedule.backlog_cap is not None:
        # a capped backlog refuses legitimate connects when the accept
        # queue saturates; keep offered load under the cap so refusals
        # stay a fault-plane behaviour, not an oracle false positive
        scenario.concurrency = min(scenario.concurrency,
                                   schedule.backlog_cap - 1)
        scenario.partial_preludes = 0

    if workload in ("minx", "cluster") and scenario.smvx \
            and stream.chance(0.3):
        scenario.attack = "cve"
    if workload == "littled" and scenario.workers >= 2 \
            and stream.chance(0.2):
        scenario.worker_kill = True
    if stream.chance(0.25) and workload != "minx":
        # classic minx has no scheduler or peer host to skew
        scenario.clock_skew_ns = stream.randint(50_000, 500_000)
    scenario.recheck = stream.chance(0.25)
    if workload == "littled" and scenario.workers >= 2:
        # production control plane: a supervisor watches the fleet (and
        # restarts a killed worker); half the supervised runs also take
        # a graceful reload mid-load
        scenario.supervise = stream.chance(0.35)
        scenario.reload = scenario.supervise and stream.chance(0.5)
    return scenario


def generate_matrix(master_seed: str, count: int,
                    start: int = 0) -> List[Scenario]:
    """The first ``count`` scenarios of the matrix (from ``start``)."""
    return [generate_scenario(master_seed, index)
            for index in range(start, start + count)]
