"""Execute one scenario and report everything the oracle needs.

A run builds the scenario's deployment from its derived seed, installs
the fault schedule, arms any known-bug mutation, drives the traffic and
attack, and collects:

* the server's alarm log (kind / libc call / guest PC per alarm),
* traffic statistics (completions, failures, status counts),
* the attack outcome, if one was fired,
* per-plane digests (fault stream, scheduler decisions, wire events,
  clock end) folded into one scenario digest — the bit-identity the
  determinism recheck and capsule replay compare,
* the fault plane's injected-event list (the raw material the shrinker
  converts into an explicit bisectable plan).

Everything here is a pure function of the scenario dict: no wall clock,
no host randomness.  ``run_scenario`` re-executes the scenario a second
time when ``recheck`` is set and classifies any digest mismatch as
``divergence`` — the determinism stack auditing itself.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import MvxDivergence, ReproError
from repro.kernel.faults import SHORT_READ_SYSCALLS
from repro.sim.scenario import Scenario
from repro.sim import oracle

#: patience for fault-schedule runs (matches the fault-battery suites).
SIM_MAX_STALLS = 64


@dataclass
class RawRun:
    """What actually happened, before classification."""

    completed: int = 0
    failures: int = 0
    status_counts: Dict[int, int] = field(default_factory=dict)
    alarms: List[Dict] = field(default_factory=list)
    attack: Optional[Dict] = None
    error: Optional[str] = None          # repr of an unhandled exception
    error_kind: Optional[str] = None     # exception class name
    digests: Dict[str, object] = field(default_factory=dict)
    fault_events: List[Dict] = field(default_factory=list)
    injected_by_kind: Dict[str, int] = field(default_factory=dict)
    sched_status: str = ""


@dataclass
class ScenarioOutcome:
    scenario: Scenario
    klass: str
    detail: str
    digest: str
    digests: Dict[str, object]
    raw: RawRun

    def to_dict(self) -> Dict:
        return {
            "index": self.scenario.index,
            "describe": self.scenario.describe(),
            "class": self.klass,
            "detail": self.detail,
            "digest": self.digest,
            "digests": self.digests,
            "completed": self.raw.completed,
            "failures": self.raw.failures,
            "alarms": self.raw.alarms,
            "attack": self.raw.attack,
            "error": self.raw.error,
            "injected_by_kind": self.raw.injected_by_kind,
        }


def _alarm_dicts(alarm_log) -> List[Dict]:
    out = []
    for report in alarm_log.alarms:
        out.append({
            "kind": getattr(getattr(report, "kind", None), "name",
                            getattr(report, "kind", None)),
            "libc_name": getattr(report, "libc_name", None),
            "guest_pc": getattr(report, "guest_pc", None),
        })
    return out


def _arm_mutation(scenario: Scenario, kernel) -> None:
    """Plant a seeded known bug so the swarm+shrinker pipeline can be
    validated end to end.  'zero-read': every second short-read clamp
    returns 0 bytes, forging EOF mid-request — exactly the bug class
    the fault plane's never-below-1-byte rule is there to prevent."""
    if scenario.mutation == "none":
        return
    if scenario.mutation != "zero-read":
        raise ValueError(f"unknown mutation {scenario.mutation!r}")
    plane = kernel.faults
    original = plane.clamp_io
    state = {"clamps": 0}

    def zero_read_clamp(name: str, count: int) -> int:
        granted = original(name, count)
        if granted < count and name in SHORT_READ_SYSCALLS:
            state["clamps"] += 1
            if state["clamps"] % 2 == 0:
                return 0
        return granted

    plane.clamp_io = zero_read_clamp


def _response_digest(result) -> str:
    blob = json.dumps({
        "completed": result.requests_completed,
        "failures": result.failures,
        "bytes": result.bytes_received,
        "statuses": sorted(result.status_counts.items()),
    }, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def _fill_traffic(raw: RawRun, result) -> None:
    raw.completed = result.requests_completed
    raw.failures = result.failures
    raw.status_counts = dict(result.status_counts)
    raw.sched_status = result.sched_status
    raw.digests["responses"] = _response_digest(result)


def _bench(scenario: Scenario, kernel, server):
    from repro.workloads.ab import ApacheBench
    return ApacheBench(kernel, server, max_stalls=SIM_MAX_STALLS,
                       client_mode=scenario.client_mode,
                       chunk_bytes=scenario.chunk_bytes,
                       partial_preludes=scenario.partial_preludes)


def _snapshot_plane(raw: RawRun, plane, key: str) -> None:
    raw.digests[key] = plane.digest
    raw.fault_events.extend(plane.injected_events)
    for kind, count in plane.injected_by_kind.items():
        raw.injected_by_kind[kind] = \
            raw.injected_by_kind.get(kind, 0) + count


def _run_attack(scenario: Scenario, server, raw: RawRun,
                vfs) -> None:
    from repro.attacks import run_exploit
    from repro.attacks.cve_2013_2028 import VICTIM_DIRECTORY
    outcome = run_exploit(server)
    raw.attack = {
        "directory_created": vfs.is_dir(VICTIM_DIRECTORY),
        "server_crashed": outcome.server_crashed,
        "divergence_detected": outcome.divergence_detected,
        "alarm_count": outcome.alarm_count,
    }


def _execute_minx(scenario: Scenario) -> RawRun:
    from repro.apps.minx import MinxServer
    from repro.kernel.kernel import Kernel

    raw = RawRun()
    kernel = Kernel(seed=scenario.seed)
    server = MinxServer(kernel, protect=scenario.protect,
                        smvx=scenario.smvx,
                        variant_strategy=scenario.variant_strategy)
    schedule = scenario.schedule_obj()
    if schedule is not None:
        kernel.faults.install(schedule)
    _arm_mutation(scenario, kernel)
    server.start()
    bench = _bench(scenario, kernel, server)
    try:
        result = bench.run(scenario.requests,
                           concurrency=scenario.concurrency)
        _fill_traffic(raw, result)
        if scenario.attack == "cve":
            _run_attack(scenario, server, raw, kernel.vfs)
    except MvxDivergence:
        # the alarm log below carries the details; traffic stops here
        raw.failures = scenario.requests - raw.completed
    raw.alarms = _alarm_dicts(server.alarms)
    _snapshot_plane(raw, kernel.faults, "fault")
    raw.digests["clock_end"] = round(kernel.clock.monotonic_ns, 3)
    return raw


def _execute_littled(scenario: Scenario) -> RawRun:
    from repro.apps.littled import LittledServer
    from repro.kernel.kernel import Kernel

    raw = RawRun()
    kernel = Kernel(seed=scenario.seed)
    server = LittledServer(kernel, protect=scenario.protect,
                           smvx=scenario.smvx, workers=scenario.workers,
                           variant_strategy=scenario.variant_strategy)
    schedule = scenario.schedule_obj()
    if schedule is not None:
        kernel.faults.install(schedule)
    _arm_mutation(scenario, kernel)
    server.start()
    sched = kernel.sched
    if scenario.clock_skew_ns and sched is not None:
        sched.apply_clock_skew(
            [i * scenario.clock_skew_ns
             for i in range(len(sched.cores))])

    supervisor = None
    if scenario.supervise and server.workers_n and sched is not None:
        from repro.apps.control import Supervisor
        supervisor = Supervisor(
            server,
            reload_at_ns=(kernel.clock.monotonic_ns + 4_000_000
                          if scenario.reload else None))
        supervisor.start()

    chaos_task = None
    if scenario.worker_kill and server.workers_n >= 2 \
            and sched is not None:
        victim = server.workers[scenario.index % server.workers_n]
        kill_at = kernel.clock.monotonic_ns + 2_000_000

        def chaos() -> None:
            sched.park(deadline_ns=kill_at)
            me = sched.current
            if me is not None and me.cancelled:
                return               # the run ended before the kill slot
            if victim.task is not None and not victim.task.done:
                sched.cancel(victim.task)

        chaos_task = sched.spawn("sim-chaos", chaos)

    bench = _bench(scenario, kernel, server)
    try:
        result = bench.run(scenario.requests,
                           concurrency=scenario.concurrency)
        _fill_traffic(raw, result)
    except MvxDivergence:
        raw.failures = scenario.requests - raw.completed
    if chaos_task is not None and not chaos_task.done:
        sched.cancel(chaos_task)
        sched.run_until(lambda: chaos_task.done)
    if supervisor is not None:
        # pin the whole control-plane history (restarts, reload,
        # final served counts) into the digests the oracle compares
        raw.digests["supervisor"] = json.dumps(supervisor.snapshot(),
                                               sort_keys=True)
    server.shutdown()
    raw.alarms = _alarm_dicts(server.alarms)
    _snapshot_plane(raw, kernel.faults, "fault")
    if sched is not None:
        raw.digests["sched"] = sched.digest
        raw.digests["sched_decisions"] = sched.decisions
    raw.digests["clock_end"] = round(kernel.clock.monotonic_ns, 3)
    return raw


def _execute_cluster(scenario: Scenario) -> RawRun:
    from repro.cluster.scenarios import build_minx_cluster

    raw = RawRun()
    schedule = scenario.schedule_obj()
    run = build_minx_cluster(seed=scenario.seed,
                             fault_schedule=schedule, start=False)
    # wire-event digest per host (the satellite's cross-host pin): the
    # recorder isn't attached in sim runs, so tap the hook directly
    wire = hashlib.sha256()
    for host in run.cluster.hosts:
        host_id = host.host_id

        def tap(direction, link, meta, _h=host_id):
            wire.update(
                f"{_h}:{direction}:{link}:{meta['frame']}:"
                f"{meta['lamport']}:{meta['bytes']}".encode())

        host.kernel.wire_hooks.append(tap)
    leader_kernel = run.cluster.host(0).kernel
    if schedule is not None:
        # host-plane faults on the leader too, not just the links: the
        # distributed monitor must survive the same hostile kernel the
        # in-process one does
        leader_kernel.faults.install(schedule)
    _arm_mutation(scenario, leader_kernel)
    if scenario.clock_skew_ns:
        # mirror host boots ahead of the leader: verdict timestamps skew
        run.cluster.host(1).clock.advance_to(
            run.cluster.host(1).clock.monotonic_ns
            + scenario.clock_skew_ns)
    run.leader.start()
    bench = _bench(scenario, leader_kernel, run.leader)
    try:
        result = bench.run(scenario.requests,
                           concurrency=scenario.concurrency)
        _fill_traffic(raw, result)
        if scenario.attack == "cve":
            _run_attack(scenario, run.leader, raw, leader_kernel.vfs)
    except MvxDivergence:
        raw.failures = scenario.requests - raw.completed
    run.dsmvx.settle()
    raw.alarms = _alarm_dicts(run.leader.alarms)
    _snapshot_plane(raw, leader_kernel.faults, "fault")
    for key, link in sorted(run.cluster.links.items()):
        _snapshot_plane(raw, link.faults, f"link{key[0]}-{key[1]}")
    raw.digests["wire"] = wire.hexdigest()
    raw.digests["clock_end"] = round(
        run.cluster.global_time_ns(), 3)
    return raw


_EXECUTORS = {
    "minx": _execute_minx,
    "littled": _execute_littled,
    "cluster": _execute_cluster,
}


def execute(scenario: Scenario) -> RawRun:
    """One raw run; unhandled exceptions become ``crash`` material."""
    executor = _EXECUTORS[scenario.workload]
    try:
        return executor(scenario)
    except ReproError as exc:
        raw = RawRun()
        raw.error = repr(exc)
        raw.error_kind = type(exc).__name__
        return raw
    except (RuntimeError, ValueError, KeyError, IndexError,
            AttributeError, TypeError) as exc:
        raw = RawRun()
        raw.error = repr(exc)
        raw.error_kind = type(exc).__name__
        return raw


def combined_digest(digests: Dict[str, object]) -> str:
    blob = json.dumps(digests, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def run_scenario(scenario: Scenario) -> ScenarioOutcome:
    """Execute, classify, and (for recheck scenarios) audit determinism
    by running the whole scenario twice and comparing digests."""
    raw = execute(scenario)
    klass, detail = oracle.classify(scenario, raw)
    digest = combined_digest(raw.digests)
    if scenario.recheck and klass != "crash":
        second = execute(scenario)
        if combined_digest(second.digests) != digest:
            first_d, second_d = raw.digests, second.digests
            diff = [key for key in sorted(set(first_d) | set(second_d))
                    if first_d.get(key) != second_d.get(key)]
            klass = "divergence"
            detail = ("recheck digests differ: "
                      + ", ".join(diff or ["<none>"]))
    return ScenarioOutcome(scenario=scenario, klass=klass, detail=detail,
                           digest=digest, digests=raw.digests, raw=raw)
