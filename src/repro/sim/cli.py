"""Command-line front end for the simulation swarm.

::

    python -m repro.sim swarm  --seed S --count N [--shrink] [--strict]
    python -m repro.sim shrink --seed S --index I [--mutate M]
    python -m repro.sim replay CAPSULE.json

``swarm`` runs a seeded slice of the scenario matrix and prints one
line per scenario plus a class histogram.  ``--strict`` exits non-zero
unless every outcome is clean or expected-alarm (the CI gate);
``--expect-failure`` inverts that for known-bug mutation runs, and
``--shrink`` minimizes the first failure into a capsule on the spot.
``shrink`` minimizes one (seed, index) scenario directly, and
``replay`` re-derives a saved capsule and verifies it bit-for-bit.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.sim.runner import ScenarioOutcome, run_scenario
from repro.sim.scenario import (MUTATIONS, OK_CLASSES, Scenario,
                                generate_matrix, generate_scenario)
from repro.sim.shrink import shrink
from repro.trace.capsule import ScenarioCapsule


def _say(message: str) -> None:
    print(message, flush=True)


def _apply_mutation(scenario: Scenario, mutation: str) -> Scenario:
    if mutation != "none":
        scenario.mutation = mutation
    return scenario


def _shrink_to_capsule(scenario: Scenario, capsule_path: Optional[str],
                       meta: dict) -> ScenarioCapsule:
    result = shrink(scenario, log=_say)
    capsule = result.capsule(meta=meta)
    if capsule_path:
        capsule.save(capsule_path)
        _say(f"capsule written to {capsule_path}")
    return capsule


def _cmd_swarm(args: argparse.Namespace) -> int:
    scenarios = generate_matrix(args.seed, args.count, start=args.start)
    outcomes: List[ScenarioOutcome] = []
    histogram: dict = {}
    first_failure: Optional[ScenarioOutcome] = None
    for scenario in scenarios:
        _apply_mutation(scenario, args.mutate)
        outcome = run_scenario(scenario)
        outcomes.append(outcome)
        histogram[outcome.klass] = histogram.get(outcome.klass, 0) + 1
        marker = " " if outcome.klass in OK_CLASSES else "!"
        detail = f" — {outcome.detail}" if outcome.detail else ""
        _say(f"{marker} [{scenario.index:4d}] {outcome.klass:20s} "
             f"{scenario.describe()}{detail}")
        if first_failure is None and outcome.klass not in OK_CLASSES:
            first_failure = outcome

    _say(f"\n{len(outcomes)} scenario(s): "
         + ", ".join(f"{k}={v}" for k, v in sorted(histogram.items())))

    capsule = None
    if first_failure is not None and args.shrink:
        _say("")
        capsule = _shrink_to_capsule(
            first_failure.scenario, args.capsule,
            meta={"master_seed": args.seed, "mutation": args.mutate})

    if args.json:
        report = {
            "master_seed": args.seed, "start": args.start,
            "count": args.count, "mutation": args.mutate,
            "histogram": histogram,
            "ok": first_failure is None,
            "outcomes": [outcome.to_dict() for outcome in outcomes],
        }
        if capsule is not None:
            report["capsule"] = capsule.to_dict()
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, sort_keys=True, indent=2)
        _say(f"report written to {args.json}")

    if args.expect_failure:
        if first_failure is None:
            _say("EXPECTED a failure, found none")
            return 1
        return 0
    if args.strict and first_failure is not None:
        return 1
    return 0


def _cmd_shrink(args: argparse.Namespace) -> int:
    scenario = _apply_mutation(
        generate_scenario(args.seed, args.index), args.mutate)
    try:
        capsule = _shrink_to_capsule(
            scenario, args.capsule,
            meta={"master_seed": args.seed, "mutation": args.mutate})
    except ValueError as exc:
        _say(str(exc))
        return 1
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(capsule.to_dict(), fh, sort_keys=True, indent=2)
        _say(f"capsule JSON written to {args.json}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        capsule = ScenarioCapsule.load(args.capsule)
    except (OSError, ValueError, KeyError) as exc:
        _say(f"cannot load capsule {args.capsule}: {exc}")
        return 1
    result = capsule.replay()
    _say(result.summary())
    if args.json:
        report = {"ok": result.ok, "reproduced": result.reproduced,
                  "bit_identical": result.bit_identical,
                  "class": result.klass, "digest": result.digest,
                  "mismatches": result.mismatches}
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, sort_keys=True, indent=2)
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim",
        description="deterministic simulation swarm for the repro stack")
    sub = parser.add_subparsers(dest="command", required=True)

    swarm = sub.add_parser("swarm", help="run a seeded scenario swarm")
    swarm.add_argument("--seed", required=True,
                       help="master seed deriving the scenario matrix")
    swarm.add_argument("--count", type=int, default=25,
                       help="number of scenarios to run (default 25)")
    swarm.add_argument("--start", type=int, default=0,
                       help="matrix index to start from (default 0)")
    swarm.add_argument("--mutate", choices=MUTATIONS, default="none",
                       help="arm a known-bug mutation in every scenario")
    swarm.add_argument("--shrink", action="store_true",
                       help="shrink the first failure into a capsule")
    swarm.add_argument("--capsule",
                       help="write the shrunk capsule to this path")
    swarm.add_argument("--json", help="write a full JSON report here")
    swarm.add_argument("--strict", action="store_true",
                       help="exit 1 unless every outcome is clean or "
                            "expected-alarm")
    swarm.add_argument("--expect-failure", action="store_true",
                       help="exit 1 unless at least one failure is "
                            "found (mutation runs)")
    swarm.set_defaults(func=_cmd_swarm)

    shrink_cmd = sub.add_parser(
        "shrink", help="minimize one scenario to a capsule")
    shrink_cmd.add_argument("--seed", required=True)
    shrink_cmd.add_argument("--index", type=int, required=True,
                            help="scenario index in the matrix")
    shrink_cmd.add_argument("--mutate", choices=MUTATIONS,
                            default="none")
    shrink_cmd.add_argument("--capsule",
                            help="write the capsule to this path")
    shrink_cmd.add_argument("--json",
                            help="also write the capsule JSON here")
    shrink_cmd.set_defaults(func=_cmd_shrink)

    replay = sub.add_parser(
        "replay", help="replay a saved scenario capsule")
    replay.add_argument("capsule", help="path to a capsule JSON file")
    replay.add_argument("--json", help="write the verdict JSON here")
    replay.set_defaults(func=_cmd_replay)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":            # pragma: no cover
    sys.exit(main())
