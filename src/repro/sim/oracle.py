"""Outcome classification: what *should* have happened?

The oracle turns a raw run into one of six classes:

* ``clean`` — traffic completed, no alarms, every expectation met;
* ``expected-alarm`` — an attack was fired against a protected
  deployment, the monitor raised a divergence, and the attack's payload
  (the mkdir) never landed: the paper's security property holding;
* ``unexpected-alarm`` — the monitor alarmed with no attack in play: a
  spurious divergence, the cardinal sin of an MVX deployment;
* ``conformance-failure`` — no alarm, but the serving contract broke
  (failed/missing/non-200 responses, or an attack payload landing);
* ``divergence`` — the determinism recheck produced different digests
  for the same scenario (assigned by the runner, not here);
* ``crash`` — an unhandled exception escaped the harness.

Expectations are mode-aware: a worker-kill scenario tolerates failed
requests (connections parked on a cancelled worker time out), and a
neutered attack (faults broke the exploit before the monitor saw it,
with no payload landing) is clean, matching the fault-battery
invariant: *detected or neutered, never successful*.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:                     # pragma: no cover
    from repro.sim.runner import RawRun
    from repro.sim.scenario import Scenario


def classify(scenario: "Scenario", raw: "RawRun") -> Tuple[str, str]:
    """(class, human detail) for one raw run."""
    if raw.error is not None:
        return "crash", f"{raw.error_kind}: {raw.error}"

    if raw.attack is not None:
        if raw.attack["directory_created"]:
            return ("conformance-failure",
                    "attack payload landed (victim directory created)")
        attack_seen = (raw.attack["divergence_detected"]
                       or raw.attack["alarm_count"] > 0)
    else:
        attack_seen = False
        if raw.alarms:
            first = raw.alarms[0]
            return ("unexpected-alarm",
                    f"{len(raw.alarms)} alarm(s) with no attack in "
                    f"play; first: {first['kind']} at "
                    f"{first['libc_name']}")

    expected = scenario.requests
    if scenario.worker_kill:
        # a killed worker's in-flight and parked connections may fail;
        # the surviving workers must still have made progress
        if raw.completed < 1:
            return ("conformance-failure",
                    f"worker-kill run completed {raw.completed} of "
                    f"{expected} requests (need >= 1)")
    else:
        if raw.completed < expected or raw.failures:
            return ("conformance-failure",
                    f"completed {raw.completed}/{expected}, "
                    f"{raw.failures} failure(s)")
        bad = {status: count
               for status, count in raw.status_counts.items()
               if status != 200}
        if bad:
            return ("conformance-failure",
                    f"non-200 responses: {bad}")

    if attack_seen:
        return ("expected-alarm",
                f"attack detected ({raw.attack['alarm_count']} "
                f"alarm(s)), payload blocked")
    if raw.attack is not None:
        return "clean", "attack neutered by faults; traffic clean"
    return "clean", ""
