"""Automatic shrinking: from a failing scenario to a minimal capsule.

The shrinker exploits the determinism contract end to end — every
candidate is judged by *re-running it from scratch* and comparing its
failure signature (outcome class + first alarm kind/site + exception
class + whether the attack payload landed) against the original.  A
reduction is kept only if the re-run reproduces the signature, so the
minimized scenario is guaranteed to fail the same way, not merely to
fail.

Three passes, largest hammer first:

1. **Axis ablation** — each scenario axis is reduced toward its neutral
   value in a fixed order (requests → 1, concurrency → 1, client mode →
   normal, preludes/skew/kill/attack off, variant strategy → shift,
   workers → 2, schedule → None), repeated to a fixpoint.  Fixed order
   + deterministic re-runs ⇒ the same failing scenario always shrinks
   to the same minimum.
2. **Plan conversion** — if a fault schedule survived, the failing
   run's ``injected_events`` (every injection with its per-site
   opportunity index) are converted into an explicit
   ``FaultSchedule(plan=[...])`` that replays exactly those events.
   Opportunity counters advance identically in both modes, so the plan
   run is the probabilistic run, re-expressed.
3. **ddmin over the plan** — classic delta-debugging minimization of
   the plan's event list: only events the failure actually needs
   survive.  (Link-fault events carry their link name, so cluster
   scenarios bisect across host and link planes in one list.)

The result is a :class:`repro.trace.capsule.ScenarioCapsule` whose
``replay()`` re-derives the minimized run and must reproduce the same
class with bit-identical digests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.kernel.faults import FaultSchedule
from repro.sim.runner import ScenarioOutcome, run_scenario
from repro.sim.scenario import OK_CLASSES, Scenario
from repro.trace.capsule import ScenarioCapsule


def signature_of(outcome: ScenarioOutcome) -> Dict:
    """The identity of a failure: what any reduction must preserve."""
    raw = outcome.raw
    first_alarm = raw.alarms[0] if raw.alarms else None
    return {
        "class": outcome.klass,
        "alarm_kind": first_alarm["kind"] if first_alarm else None,
        "alarm_libc": first_alarm["libc_name"] if first_alarm else None,
        "error_kind": raw.error_kind,
        "payload_landed": bool(raw.attack
                               and raw.attack["directory_created"]),
    }


@dataclass
class ShrinkResult:
    original: Scenario
    minimized: Scenario
    signature: Dict
    outcome: ScenarioOutcome          # final run of the minimized form
    steps: List[Dict] = field(default_factory=list)
    runs: int = 0

    def capsule(self, meta: Optional[Dict] = None) -> ScenarioCapsule:
        return ScenarioCapsule(
            scenario=self.minimized.to_dict(),
            original=self.original.to_dict(),
            signature=self.signature,
            digest=self.outcome.digest,
            digests=self.outcome.digests,
            shrink_steps=self.steps,
            meta=dict(meta or {}, runs=self.runs))


def _clone(scenario: Scenario, **overrides) -> Scenario:
    raw = scenario.to_dict()
    raw.update(overrides)
    return Scenario.from_dict(raw)


def _axis_candidates(scenario: Scenario) -> List[Dict]:
    """Reductions to try against ``scenario``, in fixed order.  Each is
    a dict of field overrides; only changes are listed."""
    out: List[Dict] = []
    if scenario.requests > 1:
        out.append({"requests": 1})
        if scenario.requests > 3:
            out.append({"requests": scenario.requests // 2})
    if scenario.concurrency > 1:
        out.append({"concurrency": 1})
    if scenario.partial_preludes:
        out.append({"partial_preludes": 0})
    if scenario.client_mode != "normal":
        out.append({"client_mode": "normal"})
    if scenario.clock_skew_ns:
        out.append({"clock_skew_ns": 0})
    if scenario.worker_kill:
        out.append({"worker_kill": False})
    if scenario.attack != "none":
        out.append({"attack": "none"})
    if scenario.variant_strategy != "shift":
        out.append({"variant_strategy": "shift"})
    if scenario.workers > 2:
        out.append({"workers": 2})
    if scenario.smvx and scenario.attack == "none":
        out.append({"smvx": False, "protect": None})
    if scenario.schedule is not None:
        out.append({"schedule": None})
    return out


def _ddmin(items: List, test: Callable[[List], bool]) -> List:
    """Zeller's ddmin: the smallest sublist (under chunk removal) for
    which ``test`` still holds.  ``test(items)`` must already hold."""
    n = 2
    while len(items) >= 2:
        chunk_len = max(1, len(items) // n)
        reduced = False
        for start in range(0, len(items), chunk_len):
            candidate = items[:start] + items[start + chunk_len:]
            if candidate and test(candidate):
                items = candidate
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if chunk_len == 1:
                break
            n = min(len(items), n * 2)
    if len(items) == 1 and not test(items):
        # degenerate guard: never return a non-failing singleton
        return items
    return items


def shrink(scenario: Scenario,
           log: Optional[Callable[[str], None]] = None,
           max_rounds: int = 3) -> ShrinkResult:
    """Minimize ``scenario`` (which must fail) to a reproducing capsule.

    Raises ``ValueError`` if the scenario does not fail to begin with.
    """
    say = log or (lambda message: None)
    state = {"runs": 0}
    steps: List[Dict] = []

    def run(candidate: Scenario) -> ScenarioOutcome:
        state["runs"] += 1
        return run_scenario(candidate)

    baseline = run(scenario)
    if baseline.klass in OK_CLASSES:
        raise ValueError(
            f"scenario {scenario.index} does not fail "
            f"(classified {baseline.klass}); nothing to shrink")
    signature = signature_of(baseline)
    say(f"shrinking {scenario.describe()} — signature {signature}")

    current, outcome = scenario, baseline
    if current.recheck and signature["class"] != "divergence":
        # the recheck axis doubles every probe; drop it first unless the
        # failure *is* the recheck
        candidate = _clone(current, recheck=False)
        trial = run(candidate)
        if signature_of(trial) == signature:
            current, outcome = candidate, trial
            steps.append({"step": "recheck=False", "kept": True})

    # pass 1: axis ablation to a fixpoint
    for _ in range(max_rounds):
        any_kept = False
        for overrides in _axis_candidates(current):
            label = ",".join(f"{k}={v!r}" for k, v in overrides.items())
            candidate = _clone(current, **overrides)
            trial = run(candidate)
            kept = signature_of(trial) == signature
            steps.append({"step": label, "kept": kept})
            if kept:
                say(f"  kept {label}")
                current, outcome = candidate, trial
                any_kept = True
        if not any_kept:
            break

    # pass 2: probabilistic schedule -> explicit plan
    schedule = current.schedule_obj()
    if schedule is not None and schedule.plan is None \
            and outcome.raw.fault_events:
        plan = FaultSchedule.plan_from_events(
            outcome.raw.fault_events, name=f"{schedule.name}-plan",
            backlog_cap=schedule.backlog_cap)
        candidate = _clone(current, schedule=plan.to_dict())
        trial = run(candidate)
        kept = signature_of(trial) == signature
        steps.append({"step": f"plan({len(plan.plan)} events)",
                      "kept": kept})
        if kept:
            say(f"  converted to explicit plan "
                f"({len(plan.plan)} events)")
            current, outcome = candidate, trial

    # pass 3: ddmin the plan's event list
    schedule = current.schedule_obj()
    if schedule is not None and schedule.plan:
        def still_fails(events: List[Dict]) -> bool:
            sub = FaultSchedule(name=schedule.name,
                                backlog_cap=schedule.backlog_cap,
                                plan=list(events))
            trial = run(_clone(current, schedule=sub.to_dict()))
            return signature_of(trial) == signature

        before = len(schedule.plan)
        minimal = _ddmin(list(schedule.plan), still_fails)
        if len(minimal) < before:
            sub = FaultSchedule(name=schedule.name,
                                backlog_cap=schedule.backlog_cap,
                                plan=minimal)
            current = _clone(current, schedule=sub.to_dict())
            outcome = run(current)
            steps.append({"step": f"ddmin {before}->{len(minimal)}",
                          "kept": True})
            say(f"  ddmin: {before} -> {len(minimal)} fault event(s)")

    say(f"minimized to: {current.describe()} "
        f"({state['runs']} probe runs)")
    return ShrinkResult(original=scenario, minimized=current,
                        signature=signature, outcome=outcome,
                        steps=steps, runs=state["runs"])
