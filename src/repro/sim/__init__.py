"""Deterministic simulation testing (`python -m repro.sim`).

FoundationDB-style swarm testing over the determinism stack: one master
seed derives a matrix of scenarios (`repro.sim.scenario`), each run and
classified (`repro.sim.runner` / `repro.sim.oracle`); failures shrink
to minimal replayable capsules (`repro.sim.shrink`).
"""

from repro.sim.scenario import (  # noqa: F401
    OK_CLASSES, Scenario, generate_matrix, generate_scenario,
    schedule_palette,
)
