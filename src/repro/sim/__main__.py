"""``python -m repro.sim`` entry point."""

import sys

from repro.sim.cli import main

sys.exit(main())
