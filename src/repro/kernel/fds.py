"""Kernel file descriptions.

One open-file object per ``open``/``accept4``/``epoll_create``; a process's
FD table maps small integers to these.  Each description knows how to
read/write/poll itself; the :class:`~repro.kernel.kernel.Kernel` handles
guest-buffer copying and errno conventions on top.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.kernel.epoll_impl import EpollInstance
from repro.kernel.errno_codes import Errno
from repro.kernel.net import Listener, Socket
from repro.kernel.vfs import (
    O_APPEND,
    O_RDONLY,
    O_RDWR,
    O_WRONLY,
    RegularFile,
    S_IFCHR,
    UrandomStream,
)


class FileDescription:
    """Base class: everything defaults to 'not supported'."""

    kind = "unknown"

    def read(self, count: int, now: float) -> "bytes | int":
        return -Errno.EINVAL

    def write(self, data: bytes, now: float) -> int:
        return -Errno.EINVAL

    def readable(self, now: float) -> bool:
        return False

    def writable(self, now: float) -> bool:
        return False

    def hup(self, now: float) -> bool:
        return False

    def next_ready_at(self) -> Optional[float]:
        return None

    def stat(self) -> "Tuple[int, int, int] | int":
        return -Errno.EINVAL

    def seek_set(self, offset: int) -> int:
        return -Errno.ESPIPE

    def add_watcher(self, fn) -> None:
        """Register a readiness watcher (epoll ready lists).  The default
        description has no delivery events, so this is a no-op: such fds
        stay on the armed list only while actually ready."""

    def remove_watcher(self, fn) -> None:
        pass

    def close(self) -> None:
        pass


class FileFD(FileDescription):
    """A regular file opened from the VFS, with a cursor."""

    kind = "file"

    def __init__(self, node: RegularFile, flags: int):
        self.node = node
        self.flags = flags
        self.offset = 0

    def _readable_mode(self) -> bool:
        return (self.flags & 0o3) in (O_RDONLY, O_RDWR)

    def _writable_mode(self) -> bool:
        return (self.flags & 0o3) in (O_WRONLY, O_RDWR)

    def read(self, count: int, now: float) -> "bytes | int":
        if not self._readable_mode():
            return -Errno.EBADF
        data = bytes(self.node.data[self.offset:self.offset + count])
        self.offset += len(data)
        return data

    def write(self, data: bytes, now: float) -> int:
        if not self._writable_mode():
            return -Errno.EBADF
        if self.flags & O_APPEND:
            # POSIX: append mode seeks to EOF before *every* write, not
            # once at open — interleaved writers must never clobber each
            # other's records.
            self.offset = len(self.node.data)
        end = self.offset + len(data)
        if self.offset > len(self.node.data):
            self.node.data.extend(b"\x00" * (self.offset - len(self.node.data)))
        self.node.data[self.offset:end] = data
        self.offset = end
        return len(data)

    def readable(self, now: float) -> bool:
        return self._readable_mode()

    def writable(self, now: float) -> bool:
        return self._writable_mode()

    def stat(self):
        return (self.node.mode, self.node.size, self.node.mtime_s)

    def seek_set(self, offset: int) -> int:
        if offset < 0:
            return -Errno.EINVAL
        self.offset = offset
        return offset


class UrandomFD(FileDescription):
    kind = "urandom"

    def __init__(self, stream: UrandomStream):
        self.stream = stream

    def read(self, count: int, now: float) -> bytes:
        return self.stream.read(count)

    def readable(self, now: float) -> bool:
        return True

    def stat(self):
        return (S_IFCHR | 0o666, 0, 0)


class SocketFD(FileDescription):
    kind = "socket"

    def __init__(self, sock: Socket):
        self.sock = sock

    def read(self, count: int, now: float) -> "bytes | int":
        return self.sock.recv(count)

    def write(self, data: bytes, now: float) -> int:
        return self.sock.send(data)

    def readable(self, now: float) -> bool:
        return self.sock.readable(now)

    def writable(self, now: float) -> bool:
        return self.sock.writable(now)

    def hup(self, now: float) -> bool:
        # Linux reports EPOLLHUP alongside EPOLLIN once the peer's FIN
        # has *arrived*, whether or not buffered data remains; the FIN
        # travels the latency path, so HUP never precedes in-flight data.
        return self.sock.fin_visible(now)

    def next_ready_at(self) -> Optional[float]:
        return self.sock.next_ready_at()

    def add_watcher(self, fn) -> None:
        self.sock.add_watcher(fn)

    def remove_watcher(self, fn) -> None:
        self.sock.remove_watcher(fn)

    def close(self) -> None:
        self.sock.close()


class ListenerFD(FileDescription):
    kind = "listener"

    def __init__(self, listener: Listener):
        self.listener = listener
        # pre-forked workers share one open file description: the
        # underlying listener closes when the *last* fd drops, not when
        # any one worker exits
        listener.refs = getattr(listener, "refs", 0) + 1
        self._closed = False

    def readable(self, now: float) -> bool:
        return self.listener.readable(now)

    def next_ready_at(self) -> Optional[float]:
        return self.listener.next_ready_at()

    def add_watcher(self, fn) -> None:
        self.listener.add_watcher(fn)

    def remove_watcher(self, fn) -> None:
        self.listener.remove_watcher(fn)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.listener.refs -= 1
        if self.listener.refs <= 0:
            self.listener.close()


class EpollFD(FileDescription):
    kind = "epoll"

    def __init__(self) -> None:
        self.instance = EpollInstance()

    def close(self) -> None:
        self.instance.close()
