"""Task management: PIDs/TIDs and the creation cost model.

The paper's Table 2 compares variant-creation strategies by latency:
``clone()`` of a thread with a shared VM (~9.5 us), ``fork()`` of an empty
process (~640 us), and ``fork()`` during lighttpd initialization (~697 us,
because COW setup scales with the number of mapped pages).  Those costs are
charged here so `benchmarks/test_tab2_variant_cost.py` can regenerate the
table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.machine.costs import CostModel, DEFAULT_COSTS


@dataclass
class TaskRecord:
    pid: int
    name: str
    parent: Optional[int] = None
    threads: int = 1
    alive: bool = True
    exit_code: Optional[int] = None
    children: list = field(default_factory=list)


class TaskManager:
    """Allocates pids/tids and accounts for task-creation costs."""

    def __init__(self, costs: CostModel = DEFAULT_COSTS):
        self.costs = costs
        self._next_pid = 100
        self.tasks: Dict[int, TaskRecord] = {}
        #: flight-recorder tap: fn(pid, name, parent) on every spawn —
        #: the task-creation order is a scheduler decision the replayer
        #: verifies against the recorded trace.
        self.spawn_hook = None

    def spawn(self, name: str, parent: Optional[int] = None) -> int:
        pid = self._next_pid
        self._next_pid += 1
        record = TaskRecord(pid, name, parent)
        self.tasks[pid] = record
        if parent is not None and parent in self.tasks:
            self.tasks[parent].children.append(pid)
        if self.spawn_hook is not None:
            self.spawn_hook(pid, name, parent)
        return pid

    def exit(self, pid: int, code: int = 0) -> None:
        record = self.tasks.get(pid)
        if record is not None:
            record.alive = False
            record.exit_code = code

    def clone_thread_cost_ns(self) -> float:
        """Cost of ``clone()`` with a shared VM (a plain thread)."""
        return self.costs.clone_thread_ns

    def fork_cost_ns(self, mapped_pages: int) -> float:
        """Cost of ``fork()`` given the parent's resident page count.

        An "empty main()" process still has a handful of mapped pages
        (text, stack, libc); the base constant covers those, and each
        additional page pays COW setup.
        """
        return self.costs.fork_base_ns + mapped_pages * self.costs.fork_per_page_ns

    def new_thread(self, pid: int) -> int:
        record = self.tasks.get(pid)
        if record is not None:
            record.threads += 1
        tid = self._next_pid
        self._next_pid += 1
        return tid
