"""Task management: PIDs/TIDs and the creation cost model.

The paper's Table 2 compares variant-creation strategies by latency:
``clone()`` of a thread with a shared VM (~9.5 us), ``fork()`` of an empty
process (~640 us), and ``fork()`` during lighttpd initialization (~697 us,
because COW setup scales with the number of mapped pages).  Those costs are
charged here so `benchmarks/test_tab2_variant_cost.py` can regenerate the
table.

Lifecycle semantics follow POSIX closely enough for the pre-fork serving
mode to be honest: threads are registered tasks (visible to the spawn
hook and the trace replayer), a dead task's children are reparented to
its nearest live ancestor (or to "init" — reaped immediately — when none
remains), dead tasks linger as zombies until a ``wait()``-style reap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.machine.costs import CostModel, DEFAULT_COSTS


@dataclass
class TaskRecord:
    pid: int
    name: str
    parent: Optional[int] = None
    threads: int = 1
    alive: bool = True
    exit_code: Optional[int] = None
    children: list = field(default_factory=list)
    #: "process" or "thread" (clone with shared VM).
    kind: str = "process"
    #: scheduler-visible run state ("live" until a scheduler manages it).
    state: str = "live"


class TaskManager:
    """Allocates pids/tids and accounts for task-creation costs."""

    def __init__(self, costs: CostModel = DEFAULT_COSTS):
        self.costs = costs
        self._next_pid = 100
        self.tasks: Dict[int, TaskRecord] = {}
        #: flight-recorder tap: fn(pid, name, parent) on every spawn —
        #: the task-creation order is a scheduler decision the replayer
        #: verifies against the recorded trace.
        self.spawn_hook = None
        #: flight-recorder tap: fn(pid, exit_code) on every exit.
        self.exit_hook = None
        self.reaped_total = 0

    def spawn(self, name: str, parent: Optional[int] = None) -> int:
        pid = self._next_pid
        self._next_pid += 1
        record = TaskRecord(pid, name, parent)
        self.tasks[pid] = record
        if parent is not None and parent in self.tasks:
            self.tasks[parent].children.append(pid)
        if self.spawn_hook is not None:
            self.spawn_hook(pid, name, parent)
        return pid

    def exit(self, pid: int, code: int = 0) -> None:
        record = self.tasks.get(pid)
        if record is None:
            return
        record.alive = False
        record.exit_code = code
        record.state = "zombie"
        # reparent surviving children (and unreaped zombies) to the
        # nearest live ancestor; with none left they go to "init", which
        # reaps zombies immediately and never leaves orphans unparented.
        heir = self._nearest_live_ancestor(record.parent)
        for child_pid in list(record.children):
            child = self.tasks.get(child_pid)
            if child is None:
                continue
            child.parent = heir
            if heir is not None:
                self.tasks[heir].children.append(child_pid)
            elif not child.alive:
                self._reap(child_pid)
        record.children = []
        if self.exit_hook is not None:
            self.exit_hook(pid, code)
        # an orphan's own zombie record has no waiter either: init reaps.
        parent = self.tasks.get(record.parent) \
            if record.parent is not None else None
        if parent is None or not parent.alive:
            self._reap(pid)

    def wait(self, parent_pid: int) -> Optional[Tuple[int, int]]:
        """Reap one zombie child of ``parent_pid`` (wait(2) with WNOHANG):
        returns ``(pid, exit_code)`` or None when no zombie is waiting."""
        parent = self.tasks.get(parent_pid)
        if parent is None:
            return None
        for child_pid in list(parent.children):
            child = self.tasks.get(child_pid)
            if child is None:
                parent.children.remove(child_pid)
                continue
            if not child.alive:
                parent.children.remove(child_pid)
                code = child.exit_code if child.exit_code is not None else 0
                self._reap(child_pid)
                return (child_pid, code)
        return None

    def zombies(self) -> list:
        """Unreaped dead tasks (pre-fork hygiene checks)."""
        return [record.pid for record in self.tasks.values()
                if not record.alive]

    def _nearest_live_ancestor(self, pid: Optional[int]) -> Optional[int]:
        seen = set()
        while pid is not None and pid not in seen:
            seen.add(pid)
            record = self.tasks.get(pid)
            if record is None:
                return None
            if record.alive:
                return pid
            pid = record.parent
        return None

    def _reap(self, pid: int) -> None:
        if self.tasks.pop(pid, None) is not None:
            self.reaped_total += 1

    def clone_thread_cost_ns(self) -> float:
        """Cost of ``clone()`` with a shared VM (a plain thread)."""
        return self.costs.clone_thread_ns

    def fork_cost_ns(self, mapped_pages: int) -> float:
        """Cost of ``fork()`` given the parent's resident page count.

        An "empty main()" process still has a handful of mapped pages
        (text, stack, libc); the base constant covers those, and each
        additional page pays COW setup.
        """
        return self.costs.fork_base_ns + mapped_pages * self.costs.fork_per_page_ns

    def new_thread(self, pid: int) -> int:
        """clone() with a shared VM: a thread is a task too — it gets a
        registered record (child of ``pid``) and fires the spawn hook, so
        ``exit()`` and the trace replayer can see it."""
        record = self.tasks.get(pid)
        tid = self._next_pid
        self._next_pid += 1
        if record is not None:
            record.threads += 1
            name = f"{record.name}-t{record.threads}"
        else:
            name = f"tid{tid}"
        thread_record = TaskRecord(tid, name, parent=pid, kind="thread")
        self.tasks[tid] = thread_record
        if record is not None:
            record.children.append(tid)
        if self.spawn_hook is not None:
            self.spawn_hook(tid, name, pid)
        return tid
