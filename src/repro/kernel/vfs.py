"""Virtual filesystem.

A small in-memory tree with regular files, directories, and the two special
files the paper's evaluation depends on:

* ``/dev/urandom`` — a deterministic per-boot stream.  MVX systems must
  emulate reads from it or the variants instantly diverge (paper §3.3);
  having it deterministic-per-kernel also lets tests assert on content.
* ``/proc/self/maps`` — synthesized from the calling process's address
  space; ``setup_mvx`` reads it to find where the dynamic loader put
  things (paper §3.2).

The VFS is shared machine-wide (all processes see one tree), which is what
makes the "both variants must not both write()" problem real: a duplicated
write really would corrupt the shared file.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.kernel.errno_codes import Errno

O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_CREAT = 0o100
O_TRUNC = 0o1000
O_APPEND = 0o2000

S_IFREG = 0o100000
S_IFDIR = 0o040000
S_IFCHR = 0o020000


def normalize(path: str) -> str:
    parts: List[str] = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            if parts:
                parts.pop()
            continue
        parts.append(part)
    return "/" + "/".join(parts)


@dataclass
class RegularFile:
    """A plain file: mutable byte content plus stat-ish metadata."""

    data: bytearray = field(default_factory=bytearray)
    mode: int = S_IFREG | 0o644
    mtime_s: int = 0

    @property
    def size(self) -> int:
        return len(self.data)


#: default /dev/urandom seed; override per-kernel with ``Kernel(seed=…)``.
DEFAULT_URANDOM_SEED = b"smvx-repro"


class UrandomStream:
    """Deterministic /dev/urandom: SHA-256 counter-mode stream."""

    def __init__(self, seed: "bytes | str" = DEFAULT_URANDOM_SEED):
        if isinstance(seed, str):
            seed = seed.encode()
        self.seed = seed
        self._counter = 0
        self.bytes_served = 0
        #: optional observer: fn(chunk) on every read — the flight
        #: recorder captures the nondeterminism stream through this.
        self.tap = None

    def read(self, count: int) -> bytes:
        out = bytearray()
        while len(out) < count:
            block = hashlib.sha256(
                self.seed + self._counter.to_bytes(8, "little")).digest()
            out += block
            self._counter += 1
        chunk = bytes(out[:count])
        self.bytes_served += len(chunk)
        if self.tap is not None:
            self.tap(chunk)
        return chunk


class VirtualFS:
    """The in-memory filesystem tree."""

    def __init__(self, urandom_seed: "bytes | str" = DEFAULT_URANDOM_SEED
                 ) -> None:
        self._files: Dict[str, RegularFile] = {}
        self._dirs = {"/", "/tmp", "/dev", "/proc", "/etc", "/var",
                      "/var/log", "/var/www"}
        self.urandom = UrandomStream(urandom_seed)

    # -- structure -----------------------------------------------------------

    def exists(self, path: str) -> bool:
        path = normalize(path)
        return path in self._files or path in self._dirs or \
            path in ("/dev/urandom",)

    def is_dir(self, path: str) -> bool:
        return normalize(path) in self._dirs

    def mkdir(self, path: str) -> int:
        """Create a directory; returns 0 or negative errno."""
        path = normalize(path)
        if self.exists(path):
            return -Errno.EEXIST
        parent = path.rsplit("/", 1)[0] or "/"
        if parent not in self._dirs:
            return -Errno.ENOENT
        self._dirs.add(path)
        return 0

    def listdir(self, path: str) -> List[str]:
        path = normalize(path)
        prefix = path.rstrip("/") + "/"
        names = set()
        for candidate in list(self._files) + list(self._dirs):
            if candidate != path and candidate.startswith(prefix):
                names.add(candidate[len(prefix):].split("/", 1)[0])
        return sorted(names)

    # -- file content ---------------------------------------------------------

    def write_file(self, path: str, data: bytes, mtime_s: int = 0) -> None:
        """Host-side helper to provision files (configs, web roots)."""
        path = normalize(path)
        parent = path.rsplit("/", 1)[0] or "/"
        if parent not in self._dirs:
            # auto-create intermediate dirs for provisioning convenience
            parts = parent.strip("/").split("/")
            for i in range(1, len(parts) + 1):
                self._dirs.add("/" + "/".join(parts[:i]))
        self._files[path] = RegularFile(bytearray(data), mtime_s=mtime_s)

    def read_file(self, path: str) -> Optional[bytes]:
        node = self._files.get(normalize(path))
        return bytes(node.data) if node is not None else None

    def lookup(self, path: str) -> Optional[RegularFile]:
        return self._files.get(normalize(path))

    def unlink(self, path: str) -> int:
        path = normalize(path)
        if path not in self._files:
            return -Errno.ENOENT
        del self._files[path]
        return 0

    def stat(self, path: str):
        """Return ``(mode, size, mtime_s)`` or negative errno."""
        path = normalize(path)
        if path == "/dev/urandom":
            return (S_IFCHR | 0o666, 0, 0)
        if path in self._dirs:
            return (S_IFDIR | 0o755, 4096, 0)
        node = self._files.get(path)
        if node is None:
            return -Errno.ENOENT
        return (node.mode, node.size, node.mtime_s)
