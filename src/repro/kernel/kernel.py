"""The simulated kernel: syscall surface, FD tables, accounting.

Calling convention: buffer arguments are *guest addresses*; the kernel
copies to/from the calling process's address space with privileged
accesses (the direct-map analogue).  Return values follow the Linux raw
convention — non-negative on success, ``-errno`` on failure — and the libc
layer converts them to the C ``-1 + errno`` shape.

Every syscall is counted per process (Figure 7 plots libc:syscall ratios
against these counters) and charged two user/kernel crossings plus a base
amount of in-kernel work.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import KernelError
from repro.kernel.clock import VirtualClock
from repro.kernel.epoll_impl import EpollInstance
from repro.kernel.errno_codes import Errno
from repro.kernel.faults import FaultPlane
from repro.kernel.fds import (
    EpollFD,
    FileDescription,
    FileFD,
    ListenerFD,
    SocketFD,
    UrandomFD,
)
from repro.kernel.net import Listener, Network, Socket
from repro.kernel.tasks import TaskManager
from repro.kernel.vfs import (
    DEFAULT_URANDOM_SEED,
    O_CREAT,
    O_TRUNC,
    VirtualFS,
    normalize,
)
from repro.machine.costs import CostModel, DEFAULT_COSTS

#: Syscall numbers (Linux x86-64 values where one exists).
SYSCALL_NUMBERS = {
    "read": 0, "write": 1, "open": 2, "close": 3, "stat": 4, "fstat": 5,
    "lseek": 8, "ioctl": 16, "writev": 20, "sendfile": 40,
    "shutdown": 48, "setsockopt": 54, "getsockopt": 55,
    "clone": 56, "fork": 57, "exit": 60, "unlink": 87, "mkdir": 83,
    "gettimeofday": 96, "getpid": 39,
    "epoll_wait": 232, "epoll_ctl": 233, "accept4": 288,
    "recvfrom": 45, "sendto": 44, "epoll_create1": 291, "epoll_pwait": 281,
    "listen_on": 900,  # simplified socket+bind+listen (no Linux equivalent)
}
SYSCALL_NAMES = {num: name for name, num in SYSCALL_NUMBERS.items()}


class SyscallError(KernelError):
    """Raised for kernel-API misuse that real hardware could not express."""


class _ProcState:
    """Kernel-side per-process state (the PCB)."""

    def __init__(self, proc, pid: int):
        self.proc = proc
        self.pid = pid
        self.fds: Dict[int, FileDescription] = {}
        self.next_fd = 3
        self.syscall_counts: Dict[str, int] = {}
        self.total_syscalls = 0

    def alloc_fd(self, description: FileDescription) -> int:
        fd = self.next_fd
        while fd in self.fds:
            fd += 1
        self.fds[fd] = description
        self.next_fd = fd + 1
        return fd


class Kernel:
    """One simulated machine's kernel."""

    def __init__(self, clock: Optional[VirtualClock] = None,
                 costs: CostModel = DEFAULT_COSTS,
                 latency_ns: Optional[int] = None,
                 seed: "bytes | str | None" = None,
                 host_id: int = 0):
        self.clock = clock or VirtualClock()
        self.costs = costs
        #: which cluster host this kernel is (0 for a standalone machine).
        #: ``repro.cluster`` gives every host its own kernel, seed, and
        #: virtual clock; the id keys per-host traces and wire events.
        self.host_id = host_id
        #: the one top-level determinism knob: every nondeterminism source
        #: the machine owns (today: /dev/urandom) derives from it.
        self.seed = seed if seed is not None else DEFAULT_URANDOM_SEED
        self.vfs = VirtualFS(urandom_seed=self.seed)
        #: seeded fault-injection plane; inert until a schedule is
        #: installed (`faults.install(...)`), decisions derive from the
        #: same top-level seed so schedules never break determinism.
        self.faults = FaultPlane(self.seed)
        self.network = Network(self.clock,
                               latency_ns if latency_ns is not None
                               else 100_000)
        self.network.fault_plane = self.faults
        self.tasks = TaskManager(costs)
        #: the deterministic preemptive scheduler, installed by
        #: ``repro.kernel.sched.Scheduler``; None = legacy pump mode.
        self.sched = None
        self._procs: Dict[int, _ProcState] = {}
        #: charged per syscall: enter + exit crossings + base work.
        self._syscall_cost_ns = 2 * costs.kernel_crossing_ns + costs.syscall_work_ns
        #: taint-source hook: fn(proc, buf_addr, nbytes, kind) called when
        #: external input enters guest memory (libdft's taint source).
        self.io_taint_hook = None
        #: syscall interposition hooks: fn(proc, name) on every syscall —
        #: how syscall-boundary MVX monitors (ReMon, ptrace) attach.
        self.syscall_hooks: List[Callable] = []
        #: cluster wire observers: fn(direction, link, frame_meta) when a
        #: wire frame leaves ("send") or reaches ("recv") this host — the
        #: flight recorder's cross-host causality tap.
        self.wire_hooks: List[Callable] = []
        #: post-syscall hooks: fn(proc, name, result) after the handler
        #: ran — the flight recorder digests the retval/errno stream here.
        self.syscall_result_hooks: List[Callable] = []
        self._handler_arity: Dict[str, int] = {}

    # -- process lifecycle -----------------------------------------------------

    def register_process(self, proc, name: str = "guest",
                         parent: Optional[int] = None) -> int:
        pid = self.tasks.spawn(name, parent)
        self._procs[pid] = _ProcState(proc, pid)
        return pid

    def state_of(self, pid: int) -> _ProcState:
        try:
            return self._procs[pid]
        except KeyError:
            raise SyscallError(f"unregistered pid {pid}") from None

    def syscall_count(self, pid: int) -> int:
        return self.state_of(pid).total_syscalls

    def release_process_fds(self, pid: int) -> int:
        """Process-exit fd sweep: close every description the process
        still holds, exactly as the real kernel does when a process dies.
        Sockets FIN their peers (a crashed worker's clients see the reset
        instead of hanging), shared listeners drop one reference, epoll
        instances detach their watchers.  Returns the number closed."""
        pcb = self._procs.get(pid)
        if pcb is None:
            return 0
        closed = 0
        for fd in list(pcb.fds):
            description = pcb.fds.pop(fd, None)
            if description is None:
                continue
            for other in pcb.fds.values():
                if isinstance(other, EpollFD):
                    other.instance.forget(fd)
            description.close()
            closed += 1
        return closed

    def syscall_breakdown(self, pid: int) -> Dict[str, int]:
        return dict(self.state_of(pid).syscall_counts)

    # -- accounting --------------------------------------------------------------

    def _charge(self, proc, ns: float, category: str = "kernel") -> None:
        # the active thread's counter (a follower's work must not extend
        # wall time); it advances the global clock when attached.
        counter = getattr(proc, "current_counter", None) or proc.counter
        counter.charge(ns, category)

    def attach_counter(self, counter) -> None:
        """Bind a process's cycle counter to this machine's clock."""
        counter.clock = self.clock

    # -- dispatch ------------------------------------------------------------------

    def syscall(self, proc, name: str, *args):
        """Issue a syscall on behalf of ``proc``; returns the raw result.

        Surplus arguments are ignored, like the real ABI: a raw SYSCALL
        instruction always supplies six registers regardless of how many
        the call consumes.
        """
        handler: Optional[Callable] = getattr(self, f"_sys_{name}", None)
        if handler is None:
            return -Errno.ENOSYS
        max_args = self._handler_arity.get(name)
        if max_args is None:
            import inspect
            parameters = inspect.signature(handler).parameters
            max_args = len(parameters) - 2          # minus proc, pcb
            self._handler_arity[name] = max_args
        pcb = self.state_of(proc.pid)
        pcb.total_syscalls += 1
        pcb.syscall_counts[name] = pcb.syscall_counts.get(name, 0) + 1
        self._charge(proc, self._syscall_cost_ns, "syscall")
        if self.sched is not None:
            # every syscall entry is a preemption point: a task past its
            # quantum yields *before* the handler runs, so e.g. a raced
            # accept4 observes the listener as a sibling left it.
            self.sched.maybe_preempt()
        for hook in self.syscall_hooks:
            hook(proc, name)
        # an injected fault is a real kernel crossing: it is counted,
        # charged, and visible to every hook, exactly like the handler's
        # own result would be.
        result = self.faults.before_syscall(name) if self.faults.active \
            else None
        if result is None:
            result = handler(proc, pcb, *args[:max_args])
        for hook in self.syscall_result_hooks:
            hook(proc, name, result)
        return result

    def syscall_by_number(self, proc, number: int, *args):
        name = SYSCALL_NAMES.get(number)
        if name is None:
            return -Errno.ENOSYS
        return self.syscall(proc, name, *args)

    # -- blocking helper -----------------------------------------------------------

    def _wait_readable(self, description: FileDescription,
                       timeout_ns: Optional[float]) -> bool:
        """Advance virtual time until ``description`` is readable.

        Returns True if it became readable; False on timeout / nothing
        pending (the caller then reports EAGAIN — nothing in the simulated
        future can make the fd ready without the host driving it).
        """
        now = self.clock.monotonic_ns
        if description.readable(now):
            return True
        ready_at = description.next_ready_at()
        if ready_at is None:
            return False
        if timeout_ns is not None and ready_at - now > timeout_ns:
            self.clock.advance_ns(timeout_ns)
            return False
        self.clock.advance_to(ready_at)
        return True

    def _sched_task_active(self) -> bool:
        """True when the calling thread is the scheduler's current task:
        blocking syscalls must then park instead of advancing the clock
        themselves (non-task contexts — legacy pump mode, follower
        threads — keep the co-simulation behaviour)."""
        return self.sched is not None and self.sched.in_task()

    def _park_until_readable(self, description: FileDescription) -> bool:
        """Scheduled blocking: park the current task until ``description``
        is readable.  Returns False when nothing is in flight (EAGAIN —
        only another task's future I/O could change that, and the epoll
        level is where we wait for it)."""
        while True:
            if description.readable(self.clock.monotonic_ns):
                return True
            if description.next_ready_at() is None:
                return False
            # re-check after every wake: a sibling may have consumed it
            self.sched.park(horizon=description.next_ready_at)

    # -- filesystem ------------------------------------------------------------------

    def _sys_open(self, proc, pcb, path_addr: int, flags: int = 0):
        path = proc.space.read_cstring(path_addr, privileged=True).decode(
            "utf-8", "replace")
        path = normalize(path)
        if path == "/dev/urandom":
            return pcb.alloc_fd(UrandomFD(self.vfs.urandom))
        if path == "/proc/self/maps":
            content = self._render_maps(proc)
            from repro.kernel.vfs import RegularFile
            return pcb.alloc_fd(FileFD(RegularFile(bytearray(content)), 0))
        node = self.vfs.lookup(path)
        if node is None:
            if not flags & O_CREAT:
                return -Errno.ENOENT
            self.vfs.write_file(path, b"")
            node = self.vfs.lookup(path)
        if flags & O_TRUNC:
            del node.data[:]
        return pcb.alloc_fd(FileFD(node, flags))

    def _render_maps(self, proc) -> bytes:
        lines = []
        for start, length, prot, tag in proc.space.mapped_regions():
            bits = "".join((
                "r" if prot & 1 else "-",
                "w" if prot & 2 else "-",
                "x" if prot & 4 else "-",
                "p",
            ))
            lines.append(f"{start:012x}-{start + length:012x} {bits} "
                         f"00000000 00:00 0  {tag}")
        return ("\n".join(lines) + "\n").encode()

    def _sys_close(self, proc, pcb, fd: int):
        description = pcb.fds.pop(fd, None)
        if description is None:
            return -Errno.EBADF
        for other in pcb.fds.values():
            if isinstance(other, EpollFD):
                other.instance.forget(fd)
        description.close()
        return 0

    def _sys_read(self, proc, pcb, fd: int, buf: int, count: int):
        description = pcb.fds.get(fd)
        if description is None:
            return -Errno.EBADF
        if count < 0:
            return -Errno.EINVAL
        if self.faults.active:
            count = self.faults.clamp_io("read", count)
        result = description.read(count, self.clock.monotonic_ns)
        if isinstance(result, int):
            return result
        if result:
            proc.space.write(buf, result, privileged=True)
        return len(result)

    def _sys_write(self, proc, pcb, fd: int, buf: int, count: int):
        description = pcb.fds.get(fd)
        if description is None:
            return -Errno.EBADF
        if self.faults.active:
            count = self.faults.clamp_io("write", count)
        data = proc.space.read(buf, count, privileged=True)
        return description.write(data, self.clock.monotonic_ns)

    def _sys_writev(self, proc, pcb, fd: int, iov_addr: int, iovcnt: int):
        description = pcb.fds.get(fd)
        if description is None:
            return -Errno.EBADF
        total = 0
        for i in range(iovcnt):
            base = proc.space.read_word(iov_addr + 16 * i, privileged=True)
            length = proc.space.read_word(iov_addr + 16 * i + 8,
                                          privileged=True)
            data = proc.space.read(base, length, privileged=True)
            wrote = description.write(data, self.clock.monotonic_ns)
            if wrote < 0:
                return wrote if total == 0 else total
            total += wrote
        return total

    def _pack_stat(self, proc, statbuf: int, mode: int, size: int,
                   mtime_s: int) -> None:
        proc.space.write(statbuf, struct.pack("<3q", mode, size, mtime_s),
                         privileged=True)

    def _sys_stat(self, proc, pcb, path_addr: int, statbuf: int):
        path = proc.space.read_cstring(path_addr, privileged=True).decode(
            "utf-8", "replace")
        result = self.vfs.stat(path)
        if isinstance(result, int):
            return result
        self._pack_stat(proc, statbuf, *result)
        return 0

    def _sys_fstat(self, proc, pcb, fd: int, statbuf: int):
        description = pcb.fds.get(fd)
        if description is None:
            return -Errno.EBADF
        result = description.stat()
        if isinstance(result, int):
            return result
        self._pack_stat(proc, statbuf, *result)
        return 0

    def _sys_lseek(self, proc, pcb, fd: int, offset: int, whence: int = 0):
        description = pcb.fds.get(fd)
        if description is None:
            return -Errno.EBADF
        if whence != 0:
            return -Errno.EINVAL
        return description.seek_set(offset)

    def _sys_mkdir(self, proc, pcb, path_addr: int, mode: int = 0o755):
        path = proc.space.read_cstring(path_addr, privileged=True).decode(
            "utf-8", "replace")
        return self.vfs.mkdir(path)

    def _sys_unlink(self, proc, pcb, path_addr: int):
        path = proc.space.read_cstring(path_addr, privileged=True).decode(
            "utf-8", "replace")
        return self.vfs.unlink(path)

    def _sys_sendfile(self, proc, pcb, out_fd: int, in_fd: int,
                      offset_addr: int, count: int):
        """sendfile(2): copy from a file to a socket inside the kernel."""
        out_desc = pcb.fds.get(out_fd)
        in_desc = pcb.fds.get(in_fd)
        if out_desc is None or in_desc is None:
            return -Errno.EBADF
        if not isinstance(in_desc, FileFD):
            return -Errno.EINVAL
        if offset_addr:
            offset = proc.space.read_word(offset_addr, privileged=True)
            in_desc.offset = offset
        data = in_desc.read(count, self.clock.monotonic_ns)
        if isinstance(data, int):
            return data
        sent = out_desc.write(data, self.clock.monotonic_ns)
        if sent < 0:
            return sent
        if offset_addr:
            proc.space.write_word(offset_addr, in_desc.offset,
                                  privileged=True)
        return sent

    # -- time ------------------------------------------------------------------------

    def _sys_gettimeofday(self, proc, pcb, tv_addr: int):
        sec, usec = self.clock.gettimeofday()
        proc.space.write(tv_addr, struct.pack("<2q", sec, usec),
                         privileged=True)
        return 0

    def _sys_getpid(self, proc, pcb):
        return proc.pid

    # -- networking --------------------------------------------------------------------

    def _sys_listen_on(self, proc, pcb, port: int, backlog: int = 128):
        """socket()+bind()+listen() in one call (simulation simplification;
        the libc layer exposes the familiar three-call shape on top)."""
        result = self.network.listen(port, backlog)
        if isinstance(result, int):
            return result
        return pcb.alloc_fd(ListenerFD(result))

    def _sys_accept4(self, proc, pcb, fd: int, flags: int = 0):
        description = pcb.fds.get(fd)
        if not isinstance(description, ListenerFD):
            return -Errno.ENOTSOCK
        if not self._sched_task_active():
            self._wait_readable(description, timeout_ns=None)
        # under the scheduler accept4 never parks: blocking lives at the
        # epoll level, so a worker woken for a connection that a sibling
        # already accepted takes EAGAIN and re-blocks in epoll_wait
        # rather than spinning (the thundering-herd contract).
        result = description.listener.accept()
        if isinstance(result, int):
            return result
        return pcb.alloc_fd(SocketFD(result))

    def _sys_recvfrom(self, proc, pcb, fd: int, buf: int, count: int,
                      flags: int = 0):
        description = pcb.fds.get(fd)
        if description is None:
            return -Errno.EBADF
        if not isinstance(description, SocketFD):
            return -Errno.ENOTSOCK
        if count < 0:
            # In C the size_t cast turns a negative length into a huge
            # positive one; the kernel then caps it (MAX_RW_COUNT) and
            # reads whatever is available.  This is the load-bearing
            # semantic of CVE-2013-2028 (paper §4.2).
            count = 1 << 31
        if self.faults.active:
            count = self.faults.clamp_io("recvfrom", count)
        if self._sched_task_active():
            # park only while bytes are actually in flight; an empty pipe
            # stays EAGAIN exactly as before.
            self._park_until_readable(description)
        else:
            self._wait_readable(description, timeout_ns=None)
        result = description.read(count, self.clock.monotonic_ns)
        if isinstance(result, int):
            return result
        if result:
            proc.space.write(buf, result, privileged=True)
            if self.io_taint_hook is not None:
                self.io_taint_hook(proc, buf, len(result), "socket")
        return len(result)

    def _sys_sendto(self, proc, pcb, fd: int, buf: int, count: int,
                    flags: int = 0):
        description = pcb.fds.get(fd)
        if description is None:
            return -Errno.EBADF
        if not isinstance(description, SocketFD):
            return -Errno.ENOTSOCK
        if self.faults.active:
            count = self.faults.clamp_io("sendto", count)
        data = proc.space.read(buf, count, privileged=True)
        return description.write(data, self.clock.monotonic_ns)

    def _sys_shutdown(self, proc, pcb, fd: int, how: int = 1):
        description = pcb.fds.get(fd)
        if not isinstance(description, SocketFD):
            return -Errno.ENOTSOCK
        description.sock.shutdown_write()
        return 0

    def _sys_setsockopt(self, proc, pcb, fd: int, level: int, optname: int,
                        optval_addr: int, optlen: int):
        description = pcb.fds.get(fd)
        if not isinstance(description, (SocketFD, ListenerFD)):
            return -Errno.ENOTSOCK
        value = 0
        if optval_addr and optlen:
            raw = proc.space.read(optval_addr, min(optlen, 8),
                                  privileged=True)
            value = int.from_bytes(raw, "little")
        if isinstance(description, SocketFD):
            description.sock.options[(level, optname)] = value
        return 0

    def _sys_getsockopt(self, proc, pcb, fd: int, level: int, optname: int,
                        optval_addr: int, optlen_addr: int):
        description = pcb.fds.get(fd)
        if not isinstance(description, SocketFD):
            return -Errno.ENOTSOCK
        value = description.sock.options.get((level, optname), 0)
        proc.space.write(optval_addr, struct.pack("<q", value),
                         privileged=True)
        if optlen_addr:
            proc.space.write(optlen_addr, struct.pack("<q", 8),
                             privileged=True)
        return 0

    # -- epoll ----------------------------------------------------------------------------

    def _sys_epoll_create1(self, proc, pcb, flags: int = 0):
        return pcb.alloc_fd(EpollFD())

    def _epoll_of(self, pcb, epfd: int) -> "EpollInstance | int":
        description = pcb.fds.get(epfd)
        if not isinstance(description, EpollFD):
            return -Errno.EINVAL
        return description.instance

    def _sys_epoll_ctl(self, proc, pcb, epfd: int, op: int, fd: int,
                       event_addr: int = 0):
        instance = self._epoll_of(pcb, epfd)
        if isinstance(instance, int):
            return instance
        if fd not in pcb.fds:
            return -Errno.EBADF
        events = data = 0
        if event_addr:
            events = proc.space.read_word(event_addr, privileged=True)
            data = proc.space.read_word(event_addr + 8, privileged=True)
        # The description is handed over as the re-arm channel: its
        # watcher puts the fd back on the instance's armed list whenever
        # a delivery/FIN/enqueue event targets it.
        return instance.ctl(op, fd, events, data, channel=pcb.fds[fd])

    def _epoll_probe(self, pcb):
        now = self.clock.monotonic_ns

        def probe(fd: int):
            description = pcb.fds.get(fd)
            if description is None:
                return None
            # 4-tuple probe: the trailing next_ready_at lets the armed
            # list disarm idle fds with nothing in flight (O(ready) poll).
            return (description.readable(now), description.writable(now),
                    description.hup(now), description.next_ready_at())
        return probe

    def _sys_epoll_wait(self, proc, pcb, epfd: int, events_addr: int,
                        maxevents: int, timeout_ms: int = -1):
        instance = self._epoll_of(pcb, epfd)
        if isinstance(instance, int):
            return instance
        if maxevents <= 0:
            return -Errno.EINVAL
        if self._sched_task_active() and self.sched.current.cancelled:
            # a kill interrupts at the syscall boundary (EINTR-style):
            # the cancelled worker must not keep pulling ready events
            # off a loaded epoll set, it must unwind now
            return 0
        ready = instance.poll(self.clock.monotonic_ns,
                              self._epoll_probe(pcb), maxevents)
        if not ready and self._sched_task_active():
            # Scheduled blocking: park until a watched fd becomes ready
            # (socket delivery, listener enqueue, FIN), re-polling after
            # every wake because a sibling worker may have raced us to
            # the event.  The horizon closure reads *live* kernel state,
            # so readiness produced after the park still wakes us.
            deadline = None if timeout_ms < 0 else \
                self.clock.monotonic_ns + timeout_ms * 1_000_000

            def sched_horizon():
                return instance.next_ready_at(
                    lambda fd: pcb.fds[fd].next_ready_at()
                    if fd in pcb.fds else None)

            while not ready:
                if deadline is not None \
                        and self.clock.monotonic_ns >= deadline:
                    break
                woke = self.sched.park(horizon=sched_horizon,
                                       deadline_ns=deadline)
                ready = instance.poll(self.clock.monotonic_ns,
                                      self._epoll_probe(pcb), maxevents)
                if not woke and not ready:
                    break                  # timed out
        elif not ready:
            # Legacy co-simulation: sleep until the earliest in-flight
            # event, bounded by the timeout.  With nothing in flight
            # there is nothing the simulated future can deliver: return
            # 0 (timeout) instead of blocking forever.
            def horizon(fd: int):
                description = pcb.fds.get(fd)
                return description.next_ready_at() if description else None
            soonest = instance.next_ready_at(horizon)
            now = self.clock.monotonic_ns
            if soonest is not None and (
                    timeout_ms < 0
                    or soonest - now <= timeout_ms * 1_000_000):
                self.clock.advance_to(soonest)
                ready = instance.poll(self.clock.monotonic_ns,
                                      self._epoll_probe(pcb), maxevents)
            elif timeout_ms > 0:
                self.clock.advance_ns(timeout_ms * 1_000_000)
        for index, (events, data) in enumerate(ready):
            proc.space.write(events_addr + 16 * index,
                             struct.pack("<2q", events, data),
                             privileged=True)
        return len(ready)

    def _sys_epoll_pwait(self, proc, pcb, epfd: int, events_addr: int,
                         maxevents: int, timeout_ms: int = -1,
                         sigmask: int = 0):
        return self._sys_epoll_wait(proc, pcb, epfd, events_addr, maxevents,
                                    timeout_ms)

    # -- misc ------------------------------------------------------------------------------

    FIONBIO = 0x5421
    FIONREAD = 0x541B

    def _sys_ioctl(self, proc, pcb, fd: int, request: int, arg_addr: int = 0):
        description = pcb.fds.get(fd)
        if description is None:
            return -Errno.EBADF
        if request == self.FIONBIO:
            # all our sockets are non-blocking already; accept and ignore
            return 0
        if request == self.FIONREAD:
            pending = 0
            if isinstance(description, SocketFD):
                now = self.clock.monotonic_ns
                pending = sum(len(seg) for at, seg in
                              description.sock._inbox if at <= now)
            proc.space.write_word(arg_addr, pending, privileged=True)
            return 0
        return -Errno.ENOTTY

    def _sys_clone(self, proc, pcb, flags: int = 0):
        """Thread-style clone: charge the Table-2 cost; the guest-process
        layer builds the actual execution context."""
        self._charge(proc, self.tasks.clone_thread_cost_ns(), "clone")
        return self.tasks.new_thread(proc.pid)

    def _sys_fork(self, proc, pcb):
        pages = proc.space.resident_bytes() // 4096
        self._charge(proc, self.tasks.fork_cost_ns(pages), "fork")
        return self.tasks.spawn(f"{self.tasks.tasks[proc.pid].name}-child",
                                proc.pid)

    def _sys_exit(self, proc, pcb, code: int = 0):
        self.tasks.exit(proc.pid, code)
        return 0
