"""Simulated operating-system kernel.

Provides everything the guest applications and the MVX monitors need from
an OS: a virtual wall/monotonic clock, a virtual filesystem (including
``/dev/urandom`` and ``/proc/self/maps``), loopback TCP-ish sockets with a
configurable latency, epoll, per-process file-descriptor tables, and task
management with a ``clone``/``fork`` cost model.

Syscalls are counted per process — Figure 7's libc:syscall ratio is
measured against these counters.
"""

from repro.kernel.errno_codes import Errno, errno_name
from repro.kernel.clock import VirtualClock, TmStruct
from repro.kernel.faults import FaultPlane, FaultSchedule, battery
from repro.kernel.vfs import VirtualFS, RegularFile
from repro.kernel.net import Network, Socket, Listener
from repro.kernel.epoll_impl import EpollInstance, EPOLLIN, EPOLLOUT
from repro.kernel.kernel import Kernel, SyscallError
from repro.kernel.sched import (
    CoreClock,
    RunState,
    Scheduler,
    SchedTask,
    TaskCancelled,
)

__all__ = [
    "Errno",
    "errno_name",
    "FaultPlane",
    "FaultSchedule",
    "battery",
    "VirtualClock",
    "TmStruct",
    "VirtualFS",
    "RegularFile",
    "Network",
    "Socket",
    "Listener",
    "EpollInstance",
    "EPOLLIN",
    "EPOLLOUT",
    "Kernel",
    "SyscallError",
    "CoreClock",
    "RunState",
    "Scheduler",
    "SchedTask",
    "TaskCancelled",
]
