"""Deterministic preemptive scheduler.

The paper's server evaluation (Fig. 7) assumes a server that multiplexes
concurrent connections; until now the simulation had no scheduler at all —
``LittledServer`` made progress only when the harness called ``pump()`` by
hand.  This module replaces that crutch with a real (but fully
deterministic) preemptive scheduler in the DiOS tradition: every
interleaving decision is a pure function of the machine state, so the same
seed and workload reproduce the same schedule bit-for-bit, and the
decision stream is digested so record/replay can pin it.

Execution model
---------------

Tasks are Python threads, but *exactly one* runs at a time: the driver
(whoever called :meth:`Scheduler.run_until`) hands a baton to one task,
which runs until it parks (blocking syscall), is preempted (virtual-time
quantum exhausted, checked at syscall entry), or exits; then the baton
returns to the driver.  The Python threads exist only so that guest call
stacks can be suspended mid-syscall — there is no host-level parallelism
to leak nondeterminism.

Virtual time is multi-core: each worker core owns a :class:`CoreClock`
whose local time advances as the tasks bound to it charge cycles; the
kernel's global :class:`~repro.kernel.clock.VirtualClock` is the frontier
(max over cores), and the scheduler always dispatches the runnable core
with the *lowest* local time, which bounds inter-core skew by one quantum
and is what lets N workers serve N requests in ~1 request's wall time.

Blocking semantics (the tentpole contract):

* ``epoll_wait`` parks the task; the driver re-evaluates each parked
  task's readiness *horizon* (a closure over live kernel state — socket
  delivery, listener enqueue, FIN) every iteration, so I/O readiness
  wakes the sleeper with no explicit wake hooks to forget.
* ``recvfrom`` parks only while data is actually in flight; otherwise it
  stays non-blocking (EAGAIN), as before.
* ``accept4`` never parks: blocking lives at the epoll level, so a worker
  woken for a connection that a sibling already accepted simply takes
  EAGAIN and re-enters ``epoll_wait`` (no thundering-herd spin).

When no task is runnable the driver advances the global clock to the
earliest wake instant; if there is none, the run has genuinely stalled
and ``run_until`` says so instead of hanging.
"""

from __future__ import annotations

import hashlib
import threading
from collections import deque
from enum import Enum
from typing import Callable, Deque, List, Optional

from repro.errors import KernelError
from repro.machine.costs import CostModel, DEFAULT_COSTS

#: default preemption quantum in virtual ns — a handful of requests'
#: worth of work; small enough that workers stay in rough lockstep.
DEFAULT_QUANTUM_NS = 100_000

#: hard bound on driver iterations per run_until call: a runaway
#: park/wake loop should fail loudly, not hang the harness.
MAX_DECISIONS_PER_RUN = 2_000_000


class SchedulerError(KernelError):
    pass


class TaskCancelled(BaseException):
    """A task function may raise this to terminate cleanly after
    observing ``task.cancelled`` (BaseException so guest-level ``except
    Exception`` cleanup cannot swallow it; the scheduler treats it as a
    normal exit, not an error).

    The scheduler itself never raises it into a task: cancellation is
    cooperative.  Forcing an exception out of ``park()`` would unwind a
    guest call stack from *inside* a blocking syscall — with sMVX
    attached that tears the leader out of a protected region while the
    follower still waits in lockstep, manufacturing a divergence.
    Instead a cancelled task's parks return False immediately, so the
    blocking syscall reports "nothing ready" (EINTR-style), the guest
    unwinds normally, and the task function exits at its next
    ``cancelled`` check."""


class RunState(Enum):
    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"
    ZOMBIE = "zombie"


class CoreClock:
    """One virtual core's local clock.

    Duck-types the one method :class:`~repro.machine.costs.CycleCounter`
    needs (``advance_ns``): charges advance the core's *local* time and
    drag the global clock forward only when this core becomes the
    frontier — that is what lets two workers each burn 1 ms of CPU while
    wall time advances only ~1 ms.
    """

    def __init__(self, global_clock, core_id: int):
        self._global = global_clock
        self.core_id = core_id
        self.local_ns: float = 0.0
        #: last task dispatched here (context-switch charging).
        self.last_task: Optional["SchedTask"] = None

    def advance_ns(self, ns: float) -> None:
        if ns < 0:
            raise ValueError("cannot advance a core clock backwards")
        self.local_ns += ns
        if self.local_ns > self._global.monotonic_ns:
            self._global.advance_to(self.local_ns)

    def catch_up(self, instant: float) -> None:
        """The core idled until ``instant`` (a wake): jump local time
        forward; never backwards."""
        if instant > self.local_ns:
            self.local_ns = instant


class SchedTask:
    """One schedulable task: run state + the suspended Python thread."""

    def __init__(self, sched: "Scheduler", name: str,
                 fn: Callable[[], object], core: Optional[CoreClock],
                 pid: Optional[int]):
        self.sched = sched
        self.name = name
        self.fn = fn
        self.core = core
        self.pid = pid
        self.state = RunState.RUNNABLE
        self.done = False
        self.error: Optional[BaseException] = None
        self.cancelled = False
        #: BLOCKED bookkeeping: earliest-ready closure + absolute deadline.
        self.wait_horizon: Optional[Callable[[], Optional[float]]] = None
        self.wait_deadline: Optional[float] = None
        #: injected spurious wake instant (fault plane), or None.
        self.spurious_at: Optional[float] = None
        #: park() return value set by the driver at wake time.
        self.wake_value = True
        #: core-local time at dispatch (quantum accounting).
        self.slice_start_ns = 0.0
        self._resume = threading.Event()
        self.thread = threading.Thread(
            target=self._main, name=f"sched:{name}", daemon=True)
        self.thread.start()

    # -- task-thread side ---------------------------------------------------

    def _main(self) -> None:
        self._resume.wait()
        self._resume.clear()
        try:
            if not self.cancelled:
                self.fn()
        except TaskCancelled:
            pass
        except BaseException as exc:          # noqa: BLE001 — reported
            self.error = exc                  # to the driver, not lost
        finally:
            self.sched._task_exited(self)

    def __repr__(self) -> str:
        core = self.core.core_id if self.core else "-"
        return f"<SchedTask {self.name} {self.state.value} core={core}>"


class SchedStats:
    def __init__(self) -> None:
        self.dispatches = 0
        self.preemptions = 0
        self.parks = 0
        self.wakeups = 0
        self.spurious_wakeups = 0
        self.idle_advances = 0
        self.context_switches = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class Scheduler:
    """The machine's deterministic preemptive scheduler.

    Construction registers it on the kernel (``kernel.sched``); from then
    on the blocking syscalls park the current task instead of advancing
    the clock themselves, and every syscall entry is a preemption point.
    """

    def __init__(self, kernel, cores: int = 1,
                 quantum_ns: float = DEFAULT_QUANTUM_NS,
                 costs: CostModel = DEFAULT_COSTS):
        if getattr(kernel, "sched", None) is not None:
            raise SchedulerError("kernel already has a scheduler")
        self.kernel = kernel
        self.clock = kernel.clock
        self.costs = costs
        self.quantum_ns = quantum_ns
        self.cores: List[CoreClock] = [CoreClock(kernel.clock, i)
                                       for i in range(max(1, cores))]
        self.tasks: List[SchedTask] = []
        self.current: Optional[SchedTask] = None
        self.stats = SchedStats()
        #: decision stream: counted and digested (FaultPlane idiom) so a
        #: trace footer pins the exact schedule a replay must reproduce.
        self.decisions = 0
        self._digest = hashlib.sha256()
        #: flight-recorder tap: fn(kind, task_name, detail_dict).
        self.decision_hook = None
        #: cross-host drain points: each fn() -> bool is called when no
        #: task is runnable; returning True means external progress was
        #: made (e.g. a cluster wire frame delivered) and dispatch should
        #: retry instead of going idle.  A *list* so the cluster pump and
        #: sim instrumentation can coexist (every hook runs each idle
        #: round, in registration order).
        self.idle_hooks: List[Callable[[], bool]] = []
        self._run_queues: List[Deque[SchedTask]] = \
            [deque() for _ in self.cores]
        self._coreless: Deque[SchedTask] = deque()
        self._driver_evt = threading.Event()
        self._in_run = False
        kernel.sched = self

    # -- idle hooks ----------------------------------------------------------

    @property
    def idle_hook(self):
        """Legacy single-hook view: the first chained hook, or None."""
        return self.idle_hooks[0] if self.idle_hooks else None

    @idle_hook.setter
    def idle_hook(self, fn) -> None:
        # legacy assignment API: None clears the chain; a callable is
        # appended (once) so older callers can no longer clobber hooks
        # registered by someone else.
        if fn is None:
            self.idle_hooks.clear()
        else:
            self.add_idle_hook(fn)

    def add_idle_hook(self, fn: Callable[[], bool]) -> None:
        """Chain an idle-time drain hook (idempotent per callable)."""
        if fn not in self.idle_hooks:
            self.idle_hooks.append(fn)

    def remove_idle_hook(self, fn: Callable[[], bool]) -> None:
        if fn in self.idle_hooks:
            self.idle_hooks.remove(fn)

    # -- decision stream ----------------------------------------------------

    @property
    def digest(self) -> str:
        return self._digest.hexdigest()

    def _decision(self, kind: str, task: SchedTask, **detail) -> None:
        self.decisions += 1
        core = task.core.core_id if task.core is not None else -1
        at = task.core.local_ns if task.core is not None \
            else self.clock.monotonic_ns
        self._digest.update(
            f"{kind}:{task.name}:{core}:{at!r}".encode())
        if self.decision_hook is not None:
            self.decision_hook(kind, task.name,
                               dict(detail, core=core, at_ns=at))

    # -- task lifecycle -----------------------------------------------------

    def spawn(self, name: str, fn: Callable[[], object],
              core: Optional[int] = None,
              pid: Optional[int] = None) -> SchedTask:
        """Register a new RUNNABLE task.  ``core`` binds it to a virtual
        core (workers); None means coreless (host-side clients, which
        charge no CPU and run at the global frontier)."""
        core_clock = self.cores[core] if core is not None else None
        task = SchedTask(self, name, fn, core_clock, pid)
        self.tasks.append(task)
        self._enqueue(task)
        if pid is not None:
            record = self.kernel.tasks.tasks.get(pid)
            if record is not None:
                record.state = RunState.RUNNABLE.value
        self._decision("spawn", task)
        return task

    def apply_clock_skew(self, skews_ns: "List[float]") -> None:
        """Pre-advance core-local clocks by per-core offsets (sim axis:
        workers booting out of phase).  Skews are plain virtual-time
        offsets, so a skewed run is exactly as deterministic as an
        unskewed one; the global frontier follows the fastest core."""
        for core, skew in zip(self.cores, skews_ns):
            if skew < 0:
                raise ValueError("clock skew must be non-negative")
            if skew:
                core.advance_ns(skew)

    def bind_core(self, counter, core: int) -> CoreClock:
        """Attach a process's cycle counter to a core's local clock (the
        multi-worker analogue of ``Kernel.attach_counter``)."""
        clock = self.cores[core]
        counter.clock = clock
        return clock

    def cancel(self, task: SchedTask) -> None:
        """Request cooperative cancellation.

        A blocked task is woken with False (its blocking syscall reports
        no readiness) and every later ``park`` returns False without
        blocking, so the guest call stack unwinds through its normal
        "nothing ready" paths — sMVX regions close in lockstep — and the
        task function exits at its next ``task.cancelled`` check.
        """
        if task.done:
            return
        task.cancelled = True
        self._decision("cancel", task)
        if task.state is RunState.BLOCKED:
            self._wake(task, value=False, instant=self.clock.monotonic_ns)

    def kick(self, task: SchedTask) -> bool:
        """Signal-style nudge: wake a BLOCKED task with False so its
        blocking syscall reports "nothing ready" and the guest unwinds to
        its control-plane checks (drain flags, cancellation) — without
        marking the task cancelled.  The control plane uses this to get a
        worker out of ``epoll_wait(-1)`` after flagging it to drain.

        Returns True if the task was actually woken."""
        if task.done or task.state is not RunState.BLOCKED:
            return False
        self._decision("kick", task)
        self._wake(task, value=False, instant=self.clock.monotonic_ns)
        return True

    def join(self, timeout: float = 10.0) -> None:
        """Join finished task threads (host hygiene; no virtual cost)."""
        for task in self.tasks:
            if task.done:
                task.thread.join(timeout)

    def _task_exited(self, task: SchedTask) -> None:
        task.state = RunState.ZOMBIE
        task.done = True
        if task.pid is not None:
            code = 0 if task.error is None else 1
            self.kernel.tasks.exit(task.pid, code)
        self._decision("exit", task)
        self._driver_evt.set()

    # -- queue machinery ----------------------------------------------------

    def _enqueue(self, task: SchedTask) -> None:
        task.state = RunState.RUNNABLE
        if task.core is None:
            self._coreless.append(task)
        else:
            self._run_queues[task.core.core_id].append(task)

    def _record_state(self, task: SchedTask) -> None:
        if task.pid is not None:
            record = self.kernel.tasks.tasks.get(task.pid)
            if record is not None:
                record.state = task.state.value

    def _wake(self, task: SchedTask, value: bool, instant: float,
              spurious: bool = False) -> None:
        task.wake_value = value
        task.wait_horizon = None
        task.wait_deadline = None
        task.spurious_at = None
        if task.core is not None:
            task.core.catch_up(instant)
        self._enqueue(task)
        self._record_state(task)
        self.stats.wakeups += 1
        if spurious:
            self.stats.spurious_wakeups += 1
        self._decision("wake", task, spurious=spurious)

    def _wake_ready(self) -> None:
        """Move every BLOCKED task whose horizon/deadline/spurious-wake
        instant has been reached back to RUNNABLE (deterministic order:
        spawn order)."""
        now = self.clock.monotonic_ns
        for task in self.tasks:
            if task.state is not RunState.BLOCKED:
                continue
            horizon = task.wait_horizon() if task.wait_horizon else None
            if horizon is not None and horizon <= now:
                self._wake(task, value=True, instant=horizon)
            elif task.wait_deadline is not None \
                    and task.wait_deadline <= now:
                self._wake(task, value=False, instant=task.wait_deadline)
            elif task.spurious_at is not None and task.spurious_at <= now:
                self._wake(task, value=True, instant=task.spurious_at,
                           spurious=True)

    def _next_wake_ns(self) -> Optional[float]:
        soonest: Optional[float] = None
        for task in self.tasks:
            if task.state is not RunState.BLOCKED:
                continue
            for candidate in (
                    task.wait_horizon() if task.wait_horizon else None,
                    task.wait_deadline, task.spurious_at):
                if candidate is not None and (soonest is None
                                              or candidate < soonest):
                    soonest = candidate
        return soonest

    def _pick(self) -> Optional[SchedTask]:
        """Coreless (host-side) tasks first, FIFO; then the runnable core
        with the lowest local time (tie: lowest core id)."""
        if self._coreless:
            return self._coreless.popleft()
        best: Optional[int] = None
        for index, queue in enumerate(self._run_queues):
            if not queue:
                continue
            if best is None or \
                    self.cores[index].local_ns < self.cores[best].local_ns:
                best = index
        if best is None:
            return None
        return self._run_queues[best].popleft()

    # -- the driver ---------------------------------------------------------

    def run_until(self, predicate: Optional[Callable[[], bool]] = None,
                  max_decisions: int = MAX_DECISIONS_PER_RUN) -> str:
        """Drive the machine until ``predicate()`` holds.

        Returns ``"done"`` (predicate satisfied), ``"idle"`` (every task
        is a zombie), or ``"stall"`` (live tasks remain but nothing can
        ever wake them — the deterministic analogue of a hang).
        """
        if self.in_task():
            raise SchedulerError("run_until called from inside a task")
        if self._in_run:
            raise SchedulerError("run_until is not reentrant")
        self._in_run = True
        try:
            for _ in range(max_decisions):
                if predicate is not None and predicate():
                    return "done"
                self._wake_ready()
                task = self._pick()
                if task is None:
                    # no runnable task: give cross-host machinery (the
                    # cluster's pending wire frames) a chance to make
                    # progress before declaring idle/stall — delivering a
                    # frame may unblock a parked task or close a region.
                    # Every chained hook runs, in registration order, so
                    # one hook's progress never starves another's.
                    progressed = False
                    for hook in tuple(self.idle_hooks):
                        if hook():
                            progressed = True
                    if progressed:
                        continue
                    if all(t.done for t in self.tasks):
                        if predicate is None:
                            return "idle"
                        return "idle"
                    wake_ns = self._next_wake_ns()
                    if wake_ns is None:
                        return "stall"
                    if wake_ns > self.clock.monotonic_ns:
                        self.clock.advance_to(wake_ns)
                    self.stats.idle_advances += 1
                    continue
                self._dispatch(task)
                if task.error is not None:
                    error, task.error = task.error, None
                    raise error
            raise SchedulerError(
                f"run_until exceeded {max_decisions} decisions")
        finally:
            self._in_run = False

    def _dispatch(self, task: SchedTask) -> None:
        core = task.core
        if core is not None:
            if core.last_task is not None and core.last_task is not task:
                # a real context switch on this core: charged to the
                # incoming task's core time (CostModel footnote-1 value)
                core.advance_ns(self.costs.context_switch_ns)
                self.stats.context_switches += 1
            core.last_task = task
            task.slice_start_ns = core.local_ns
        task.state = RunState.RUNNING
        self._record_state(task)
        self.current = task
        self.stats.dispatches += 1
        self._decision("dispatch", task)
        self._driver_evt.clear()
        task._resume.set()
        self._driver_evt.wait()
        self.current = None
        self._record_state(task)

    # -- task-side entry points (called from inside a running task) ---------

    def in_task(self) -> bool:
        task = self.current
        return task is not None \
            and threading.current_thread() is task.thread

    def _current_checked(self) -> SchedTask:
        task = self.current
        if task is None or threading.current_thread() is not task.thread:
            raise SchedulerError(
                "park/yield called from outside the running task")
        return task

    def _switch_to_driver(self, task: SchedTask) -> None:
        self._driver_evt.set()
        task._resume.wait()
        task._resume.clear()

    def park(self, horizon: Optional[Callable[[], Optional[float]]] = None,
             deadline_ns: Optional[float] = None) -> bool:
        """Block the current task.

        ``horizon`` is a closure returning the earliest instant the
        awaited condition could hold (None = unknowable yet); the driver
        re-evaluates it every iteration, so readiness produced by *other*
        tasks (a client's send, a listener enqueue, a FIN) wakes the
        sleeper.  ``deadline_ns`` is an absolute timeout.  Returns True
        if woken by readiness, False on deadline or cancellation (a
        cancelled task never blocks again — see :meth:`cancel`).
        """
        task = self._current_checked()
        if task.cancelled:
            return False
        task.wait_horizon = horizon
        task.wait_deadline = deadline_ns
        faults = self.kernel.faults
        if faults.active and faults.spurious_wake():
            task.spurious_at = self.clock.monotonic_ns
        task.state = RunState.BLOCKED
        self._record_state(task)
        self.stats.parks += 1
        self._decision("park", task)
        self._switch_to_driver(task)
        return task.wake_value

    def yield_now(self) -> None:
        """Voluntarily give up the slice (stays RUNNABLE)."""
        task = self._current_checked()
        self._enqueue(task)
        self._decision("yield", task)
        self._switch_to_driver(task)

    def maybe_preempt(self) -> None:
        """Preemption point (the kernel calls this at syscall entry):
        once the task has burned a full quantum of core-local time, it
        yields so lower-local-time cores catch up.  Cheap no-op for
        non-task contexts and coreless tasks."""
        task = self.current
        if task is None or threading.current_thread() is not task.thread:
            return
        core = task.core
        if core is None:
            return
        if core.local_ns - task.slice_start_ns < self.quantum_ns:
            return
        self.stats.preemptions += 1
        self._enqueue(task)
        self._decision("preempt", task)
        self._switch_to_driver(task)

    # -- introspection ------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "decisions": self.decisions,
            "digest": self.digest,
            "stats": self.stats.as_dict(),
            "cores": [c.local_ns for c in self.cores],
            "tasks": [(t.name, t.state.value) for t in self.tasks],
        }
